// Folds a Chrome trace (written by the obs tracer or --trace_out) into
// fixed-format per-category and per-name time tables for CI diffing:
//
//   trace_summary trace.json
//
// Output is stable-ordered (alphabetical keys, fixed column layout) so two
// summaries of comparable runs diff cleanly.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "obs/trace_reader.h"

namespace vsan {
namespace {

void PrintTable(const char* title,
                const std::map<std::string, obs::SpanTotals>& rows,
                double wall_us) {
  std::cout << title << "\n";
  std::cout << "  key                             count      total_ms   "
               "share     p50_ms     p95_ms     p99_ms\n";
  for (const auto& [key, totals] : rows) {
    std::string name = key;
    if (name.size() < 30) name.resize(30, ' ');
    const double share = wall_us > 0.0 ? totals.total_us / wall_us : 0.0;
    std::printf("  %s %9lld  %12.3f  %5.1f%%  %9.3f  %9.3f  %9.3f\n",
                name.c_str(), static_cast<long long>(totals.count),
                totals.total_us / 1e3, share * 100.0, totals.p50_us / 1e3,
                totals.p95_us / 1e3, totals.p99_us / 1e3);
  }
}

// The exporter embeds a scalar-metrics snapshot in the trace file; the
// allocator's pool.* counters are the ones worth a fixed-format table here
// (hit rate tells you whether the run amortized its allocations).  Traces
// from older builds have no metrics object — print nothing then.
void PrintPoolCounters(const std::map<std::string, double>& metrics) {
  std::map<std::string, double> pool_rows;
  for (const auto& [name, value] : metrics) {
    if (name.rfind("pool.", 0) == 0) pool_rows[name] = value;
  }
  if (pool_rows.empty()) return;
  std::cout << "pool\n";
  for (const auto& [name, value] : pool_rows) {
    std::string key = name;
    if (key.size() < 30) key.resize(30, ' ');
    std::printf("  %s %15.0f\n", key.c_str(), value);
  }
  const auto hits = pool_rows.find("pool.acquire.hits");
  const auto misses = pool_rows.find("pool.acquire.misses");
  if (hits != pool_rows.end() && misses != pool_rows.end() &&
      hits->second + misses->second > 0.0) {
    std::string key = "pool.hit_rate";
    key.resize(30, ' ');
    std::printf("  %s %15.4f\n", key.c_str(),
                hits->second / (hits->second + misses->second));
  }
}

int Main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: trace_summary <trace.json>\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "error: cannot open " << argv[1] << "\n";
    return 1;
  }
  std::vector<obs::ParsedSpan> spans;
  std::map<std::string, double> metrics;
  std::string error;
  if (!obs::ReadChromeTrace(in, &spans, &metrics, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  if (spans.empty()) {
    std::cerr << "error: trace has no complete (\"X\") events\n";
    return 1;
  }
  const obs::TraceSummary summary = obs::SummarizeTrace(spans);
  std::printf("spans    %lld\n", static_cast<long long>(spans.size()));
  std::printf("wall_ms  %.3f\n", summary.wall_us / 1e3);
  std::printf("coverage %.1f%%\n", summary.coverage * 100.0);
  PrintTable("by_category", summary.by_category, summary.wall_us);
  PrintTable("by_name", summary.by_name, summary.wall_us);
  PrintPoolCounters(metrics);
  return 0;
}

}  // namespace
}  // namespace vsan

int main(int argc, char** argv) { return vsan::Main(argc, argv); }
