// Online serving daemon: loads a VSAN checkpoint, optionally builds a
// quantized/IVF retrieval index, and serves per-user top-k recommendations
// over HTTP with dynamic request batching and an encoded-state cache
// (src/serve/).
//
//   vsan_serve --checkpoint=m.ckpt --port=8080 --retrieval=quantized
//
// Routes (see serve/daemon.h): POST /recommend, POST /reload (hot checkpoint
// swap), GET /healthz (503 until the checkpoint and index are loaded),
// GET /metrics (Prometheus, including the serve.* instruments vsan_top
// renders).
//
// Once serving, the process prints a machine-parsable line
//
//   READY port=<port> model=vsan items=<n>
//
// so scripts (tools/run_bench.sh --serve) can wait for readiness and
// discover an ephemeral port.  SIGTERM/SIGINT trigger a graceful shutdown:
// the HTTP server stops accepting, in-flight requests complete, the batch
// queue drains, then the process exits 0.  SIGHUP hot-reloads the current
// checkpoint path in place (same as POST /reload with no body): the new
// generation is built while the old one serves, then swapped in with zero
// downtime; a corrupt checkpoint is rejected and the old model keeps
// serving.

#include <atomic>
#include <csignal>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/vsan.h"
#include "eval/retrieval.h"
#include "obs/trace.h"
#include "serve/daemon.h"
#include "tensor/gemm.h"
#include "util/flags.h"

#if defined(_WIN32)
#error "vsan_serve is POSIX-only (signalfd-free sigwait shutdown)"
#endif
#include <unistd.h>

namespace vsan {
namespace {

int Usage() {
  std::cerr <<
      "usage: vsan_serve --checkpoint=m.ckpt [flags]\n"
      "  --port=0               listen port (0 = ephemeral, see READY line)\n"
      "  --threads=4            HTTP handler threads\n"
      "  --max-batch=32         dynamic batching: flush at this many requests\n"
      "  --max-wait-us=2000     ... or when the oldest waited this long\n"
      "  --max-queue=256        reject (HTTP 429) beyond this backlog\n"
      "  --cache-mb=64          encoded-state cache budget (0 disables)\n"
      "  --retrieval=exact      exact|quantized|ivf top-k backend\n"
      "  --clusters=0 --nprobe=8  ivf parameters (eval/retrieval.h)\n"
      "  --k-max=1000           largest accepted per-request k\n"
      "  --max-history=1024     reject (HTTP 400) histories longer than this\n"
      "  --deadline-us=0        default per-request deadline (0 = none;\n"
      "                         requests may override via deadline_us)\n"
      "  --include-seen         do not filter the user's history from results\n"
      "  --precision=fp32       fp32|bf16 encoder GEMM storage precision\n";
  return 2;
}

std::atomic<int> g_signal{0};
std::atomic<bool> g_reload{false};

void OnSignal(int sig) { g_signal.store(sig); }

void OnHup(int) { g_reload.store(true); }

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::string checkpoint = flags.GetString("checkpoint");
  if (checkpoint.empty()) return Usage();

#if !VSAN_OBS_ENABLED
  std::cerr << "error: vsan_serve needs the HTTP server; rebuild with "
               "-DVSAN_OBS=ON\n";
  return 1;
#endif

  auto loaded = core::Vsan::Load(checkpoint);
  if (!loaded.ok()) {
    std::cerr << "error: " << loaded.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<core::Vsan> model = std::move(loaded).value();
  const std::string precision = flags.GetString("precision", "fp32");
  if (precision == "bf16") {
    model->set_eval_precision(MatMulPrecision::kBf16);
  } else if (precision != "fp32") {
    std::cerr << "error: --precision must be fp32|bf16\n";
    return 1;
  }

  serve::DaemonOptions options;
  options.port = static_cast<int>(flags.GetInt("port", 0));
  options.handler_threads = static_cast<int>(flags.GetInt("threads", 4));
  options.batcher.max_batch =
      static_cast<int32_t>(flags.GetInt("max-batch", 32));
  options.batcher.max_wait_us = flags.GetInt("max-wait-us", 2000);
  options.batcher.max_queue =
      static_cast<int32_t>(flags.GetInt("max-queue", 256));
  options.cache_bytes = flags.GetInt("cache-mb", 64) << 20;
  options.service.max_k = static_cast<int32_t>(flags.GetInt("k-max", 1000));
  options.service.max_history =
      static_cast<int32_t>(flags.GetInt("max-history", 1024));
  options.service.default_deadline_us = flags.GetInt("deadline-us", 0);
  options.service.exclude_seen = !flags.GetBool("include-seen", false);
  const std::string backend = flags.GetString("retrieval", "exact");
  if (!eval::ParseRetrievalBackend(backend, &options.retrieval.backend)) {
    std::cerr << "error: --retrieval must be exact|quantized|ivf\n";
    return 1;
  }
  options.retrieval.clusters =
      static_cast<int32_t>(flags.GetInt("clusters", 0));
  options.retrieval.nprobe = static_cast<int32_t>(flags.GetInt("nprobe", 8));

  // Hot reload (POST /reload, SIGHUP): load through the same CRC-checked
  // VSANCKP1 path as startup, with the same eval precision.
  options.checkpoint_path = checkpoint;
  options.loader = [precision](const std::string& path,
                               serve::LoadedModel* out) {
    auto reloaded = core::Vsan::Load(path);
    if (!reloaded.ok()) return reloaded.status();
    std::unique_ptr<core::Vsan> fresh = std::move(reloaded).value();
    if (precision == "bf16") fresh->set_eval_precision(MatMulPrecision::kBf16);
    out->num_items = fresh->num_items();
    out->model =
        std::shared_ptr<const SequentialRecommender>(std::move(fresh));
    return Status::Ok();
  };

  const std::vector<std::string> typos = flags.UnqueriedFlags();
  if (!typos.empty()) {
    std::cerr << "error: unknown flag --" << typos.front() << "\n";
    return Usage();
  }

  serve::ServeDaemon daemon(model.get(), model->num_items(), options);
  if (!daemon.StartHttp()) {
    std::cerr << "error: could not bind port " << options.port << "\n";
    return 1;
  }
  daemon.Activate();

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  std::signal(SIGHUP, OnHup);

  std::cout << "READY port=" << daemon.port() << " model=vsan items="
            << model->num_items() << " retrieval=" << backend << "\n"
            << std::flush;

  while (g_signal.load() == 0) {
    if (g_reload.exchange(false)) {
      int64_t generation = -1;
      const Status status = daemon.Reload("", &generation);
      if (status.ok()) {
        std::cerr << "SIGHUP: reloaded, generation " << generation << "\n";
      } else {
        std::cerr << "SIGHUP: reload failed (" << status.ToString()
                  << "), old generation keeps serving\n";
      }
    }
    usleep(50 * 1000);
  }
  std::cerr << "signal " << g_signal.load() << ": draining\n";
  daemon.Shutdown();

  const serve::CacheStats cache = daemon.cache()->stats();
  const int64_t lookups = cache.hits + cache.misses;
  std::cerr << "served: cache hits=" << cache.hits << "/" << lookups
            << " evictions=" << cache.evictions << "\n";
  return 0;
}

}  // namespace
}  // namespace vsan

int main(int argc, char** argv) { return vsan::Main(argc, argv); }
