#!/usr/bin/env python3
"""Diffs a freshly distilled bench file against the checked-in baseline.

  check_bench.py BASELINE FRESH [--tolerance=0.15] [--metric=ns_per_iter]

Records are matched by identity key (op, shape, threads, precision, pool,
blocks, and — for the serving-daemon records of BENCH_serve.json — model,
policy, cache, workers; whichever are present in the baseline record); a
fresh record's `ns_per_iter` more than `tolerance` above its baseline twin
is a regression.  Serve records carry ns_per_iter = 1e9 / qps, so the same
time-per-unit gate direction applies (higher = slower).  Exit status:

  0  every matched record within tolerance
  1  at least one regression (or a baseline record with no fresh twin)
  2  usage / unreadable input

Improvements (fresh faster than baseline) and fresh-only records are
reported but never fail the check — new benchmarks land before their
baseline does.  Invoked by `tools/run_bench.sh --gate`, which distills to a
temp file and checks it against BENCH_micro.json without overwriting the
baseline; tune the threshold with --tolerance or the VSAN_BENCH_TOLERANCE
environment variable (the flag wins).
"""

import json
import os
import sys

KEY_FIELDS = ("op", "shape", "threads", "precision", "pool", "blocks",
              "model", "policy", "cache", "workers")


def record_key(rec):
    return tuple(rec.get(field) for field in KEY_FIELDS)


def load_records(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write(f"error: cannot read {path}: {e}\n")
        sys.exit(2)
    records = {}
    for rec in data.get("benchmarks", []):
        records[record_key(rec)] = rec
    return records


def describe(key):
    return " ".join(
        f"{field}={value}"
        for field, value in zip(KEY_FIELDS, key)
        if value is not None
    )


def main(argv):
    tolerance = float(os.environ.get("VSAN_BENCH_TOLERANCE", "0.15"))
    metric = "ns_per_iter"
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg.startswith("--metric="):
            metric = arg.split("=", 1)[1]
        elif arg.startswith("--"):
            sys.stderr.write(f"error: unknown flag {arg}\n{__doc__}")
            return 2
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.stderr.write(__doc__)
        return 2
    baseline = load_records(paths[0])
    fresh = load_records(paths[1])

    regressions = []
    improvements = []
    missing = []
    for key, base_rec in sorted(baseline.items(), key=str):
        fresh_rec = fresh.get(key)
        if fresh_rec is None:
            missing.append(key)
            continue
        base_value = base_rec.get(metric)
        fresh_value = fresh_rec.get(metric)
        if not base_value or fresh_value is None:
            continue
        ratio = fresh_value / base_value
        line = (f"{describe(key)}: {base_value:.1f} -> {fresh_value:.1f} "
                f"({100.0 * (ratio - 1.0):+.1f}%)")
        if ratio > 1.0 + tolerance:
            regressions.append(line)
        elif ratio < 1.0 - tolerance:
            improvements.append(line)

    new_records = [key for key in fresh if key not in baseline]

    print(f"checked {len(baseline)} baseline records against {paths[1]} "
          f"(metric {metric}, tolerance ±{100.0 * tolerance:.0f}%)")
    for line in improvements:
        print(f"  improved:   {line}")
    for key in new_records:
        print(f"  fresh-only: {describe(key)}")
    for key in missing:
        print(f"  MISSING:    {describe(key)} (in baseline, not in fresh run)")
    for line in regressions:
        print(f"  REGRESSED:  {line}")
    if regressions or missing:
        print(f"FAIL: {len(regressions)} regression(s), "
              f"{len(missing)} missing record(s)")
        return 1
    print("OK: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
