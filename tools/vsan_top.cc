// vsan_top: a terminal dashboard over a running process's /metrics
// endpoint (vsan_cli --metrics-port, or anything serving obs/http_server).
//
//   vsan_top --port=9108                 # refresh every 2 s until Ctrl-C
//   vsan_top --port=9108 --interval=0.5
//   vsan_top --port=9108 --once          # one plain snapshot (scripts/CI)
//
// Each refresh scrapes /metrics, parses the Prometheus exposition text, and
// renders counters as rates (delta between consecutive scrapes), gauges as
// values, and histograms as count plus p50/p95/p99 — sliding-window
// families (window="..." label) are the last-N-seconds view, so their
// quantiles move with the workload instead of averaging over the run.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/http_server.h"
#include "obs/prometheus.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace vsan {
namespace {

int Usage() {
  std::cerr
      << "usage: vsan_top --port=N [--host=127.0.0.1] [--interval=2]"
         " [--once]\n"
         "attaches to a /metrics endpoint (e.g. vsan_cli --metrics-port=N)\n";
  return 2;
}

struct Snapshot {
  bool ok = false;
  double at_seconds = 0.0;  // steady-clock scrape time
  std::map<std::string, double> values;            // plain sample name -> value
  std::map<std::string, std::string> types;        // family -> counter|gauge|...
  std::map<std::string, std::string> windows;      // family -> window label
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Snapshot Scrape(const std::string& host, int port) {
  Snapshot snap;
  int status = 0;
  std::string body;
  if (!obs::HttpGet(host, port, "/metrics", &status, &body) || status != 200) {
    return snap;
  }
  std::vector<obs::PrometheusSample> samples;
  std::string error;
  if (!obs::ParsePrometheusText(body, &samples, &snap.types, &error)) {
    std::cerr << "parse error: " << error << "\n";
    return snap;
  }
  snap.at_seconds = NowSeconds();
  for (const obs::PrometheusSample& sample : samples) {
    const auto window = sample.labels.find("window");
    if (window != sample.labels.end()) {
      // "vsan_http_request_us_bucket" -> family "vsan_http_request_us"
      std::string family = sample.name;
      const size_t suffix = family.rfind("_bucket");
      if (suffix != std::string::npos) family.resize(suffix);
      snap.windows[family] = window->second;
    }
    if (sample.labels.empty()) snap.values[sample.name] = sample.value;
  }
  snap.ok = true;
  return snap;
}

double Lookup(const Snapshot& snap, const std::string& name, double fallback) {
  const auto it = snap.values.find(name);
  return it == snap.values.end() ? fallback : it->second;
}

// Renders one dashboard frame.  `prev` supplies counter deltas; on the
// first frame rates show as "-".
std::string Render(const Snapshot& snap, const Snapshot& prev,
                   const std::string& target) {
  std::ostringstream os;
  const double dt =
      prev.ok ? std::max(1e-9, snap.at_seconds - prev.at_seconds) : 0.0;
  os << "vsan_top  " << target << (prev.ok ? "" : "  (first scrape)") << "\n\n";

  TablePrinter counters({"counter", "total", "rate/s"});
  TablePrinter gauges({"gauge", "value"});
  TablePrinter histograms({"histogram", "window", "count", "p50", "p95",
                           "p99"});
  bool any_counter = false, any_gauge = false, any_histogram = false;
  for (const auto& [family, type] : snap.types) {
    if (type == "counter") {
      const double value = Lookup(snap, family, 0.0);
      std::string rate = "-";
      if (prev.ok && prev.values.count(family) > 0) {
        rate = FormatDouble((value - prev.values.at(family)) / dt, 1);
      }
      counters.AddRow({family, FormatDouble(value, 0), rate});
      any_counter = true;
    } else if (type == "gauge") {
      // Quantile families render inside their histogram's row.
      if (family.size() > 4 &&
          (family.rfind("_p50") == family.size() - 4 ||
           family.rfind("_p95") == family.size() - 4 ||
           family.rfind("_p99") == family.size() - 4)) {
        continue;
      }
      gauges.AddRow({family, FormatDouble(Lookup(snap, family, 0.0), 4)});
      any_gauge = true;
    } else if (type == "histogram") {
      const auto window = snap.windows.find(family);
      histograms.AddRow(
          {family,
           window == snap.windows.end() ? "all" : window->second,
           FormatDouble(Lookup(snap, family + "_count", 0.0), 0),
           FormatDouble(Lookup(snap, family + "_p50", 0.0), 2),
           FormatDouble(Lookup(snap, family + "_p95", 0.0), 2),
           FormatDouble(Lookup(snap, family + "_p99", 0.0), 2)});
      any_histogram = true;
    }
  }

  // Derived headlines: pool hit rate (training/eval processes) and
  // encoded-state cache hit rate (a vsan_serve target), whichever counters
  // the scraped process exposes.
  const double hits = Lookup(snap, "vsan_pool_acquire_hits_total", -1.0);
  const double misses = Lookup(snap, "vsan_pool_acquire_misses_total", -1.0);
  if (hits >= 0.0 && misses >= 0.0 && hits + misses > 0.0) {
    os << "pool hit rate: "
       << FormatDouble(100.0 * hits / (hits + misses), 1) << "%\n\n";
  }
  const double cache_hits = Lookup(snap, "vsan_serve_cache_hits_total", -1.0);
  const double cache_misses =
      Lookup(snap, "vsan_serve_cache_misses_total", -1.0);
  if (cache_hits >= 0.0 && cache_misses >= 0.0 &&
      cache_hits + cache_misses > 0.0) {
    os << "serve cache hit rate: "
       << FormatDouble(100.0 * cache_hits / (cache_hits + cache_misses), 1)
       << "%  (" << FormatDouble(cache_hits, 0) << "/"
       << FormatDouble(cache_hits + cache_misses, 0) << " lookups)\n\n";
  }
  if (any_counter) {
    counters.Print(os);
    os << "\n";
  }
  if (any_gauge) {
    gauges.Print(os);
    os << "\n";
  }
  if (any_histogram) histograms.Print(os);
  return os.str();
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const int port = static_cast<int>(flags.GetInt("port", 0));
  if (port <= 0) return Usage();
  const std::string host = flags.GetString("host", "127.0.0.1");
  const double interval = flags.GetDouble("interval", 2.0);
  const bool once = flags.GetBool("once", false);
  const std::string target = host + ":" + std::to_string(port) + "/metrics";

  Snapshot prev;
  for (;;) {
    Snapshot snap = Scrape(host, port);
    if (!snap.ok) {
      std::cerr << "cannot scrape http://" << target
                << " (is the process running with --metrics-port?)\n";
      return 1;
    }
    const std::string frame = Render(snap, prev, target);
    if (once) {
      std::cout << frame;
      return 0;
    }
    // ANSI home+clear keeps the dashboard in place between refreshes.
    std::cout << "\x1b[H\x1b[2J" << frame << std::flush;
    prev = snap;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int64_t>(interval * 1000)));
  }
}

}  // namespace
}  // namespace vsan

int main(int argc, char** argv) { return vsan::Main(argc, argv); }
