// Closed-loop HTTP load generator for vsan_serve: N worker threads each
// fire one POST /recommend, wait for the response, and immediately fire the
// next — so offered load scales with workers and measured latency includes
// queueing inside the daemon, the regime the latency-vs-QPS curves in
// BENCH_serve.json sweep.
//
//   vsan_loadgen --port=8080 --dataset=beauty --workers=8 --duration-s=5
//
// Traffic model: user popularity is Zipf-skewed (rank r drawn with
// probability proportional to 1/r^zipf over the dataset's users), and with
// probability `repeat-mix` a request replays the chosen user's current
// history verbatim — a returning user whose state the daemon's encoded-
// state cache can hit.  Otherwise the request extends the user's history by
// one item (a fresh interaction: guaranteed cache miss, and the new history
// becomes what later repeats replay).  Histories come from the BeautyLike /
// ML1MLike synthetic corpora so sequence lengths and item skew match what
// the checkpoint was trained on.
//
// Overload behavior: a 429 (shed) or a transport failure (connection
// reset) is retried with capped exponential backoff plus jitter, up to
// --retries attempts; a request that exhausts its budget is a give-up.
// The summary reports retries and give-ups separately from errors, so an
// overload experiment can tell traffic the daemon deliberately shed (and
// the client absorbed) from traffic that was actually lost.
//
// Reports qps and p50/p95/p99 latency; --json emits one machine-readable
// line for tools/run_bench.sh --serve.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "obs/http_server.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace vsan {
namespace {

int Usage() {
  std::cerr <<
      "usage: vsan_loadgen --port=P [flags]\n"
      "  --host=127.0.0.1     daemon address\n"
      "  --dataset=beauty     beauty|ml1m synthetic corpus for histories\n"
      "  --scale=0.05         corpus scale (match the checkpoint's training)\n"
      "  --workers=4          closed-loop worker threads\n"
      "  --duration-s=5       measurement window\n"
      "  --repeat-mix=0.5     fraction of requests replaying a history\n"
      "  --zipf=1.0           user-popularity skew exponent\n"
      "  --k=10               top-k per request\n"
      "  --history-len=30     max history items sent per request\n"
      "  --retries=3          attempts per request on 429/connection reset\n"
      "                       (0 = fail immediately, the old behavior)\n"
      "  --backoff-ms=2       initial retry backoff (doubles per attempt,\n"
      "                       +/-50% jitter)\n"
      "  --backoff-cap-ms=50  backoff ceiling\n"
      "  --seed=1             traffic RNG seed\n"
      "  --json               print one JSON result line\n";
  return 2;
}

struct UserState {
  std::mutex mu;
  int64_t user_id;
  std::vector<int32_t> history;
};

struct WorkerResult {
  std::vector<double> latencies_ms;
  int64_t ok = 0;
  int64_t rejected = 0;   // HTTP 429 responses seen (including retried ones)
  int64_t resets = 0;     // transport failures seen (including retried ones)
  int64_t retries = 0;    // re-attempts after a 429 or reset
  int64_t gave_ups = 0;   // requests abandoned after the retry budget
  int64_t errors = 0;     // non-retryable statuses (400/5xx)
  int64_t cache_hits = 0; // from the response's cache_hit field
};

// Inverse-CDF Zipf sampler over ranks [0, n): rank r with probability
// proportional to 1/(r+1)^s.
class ZipfSampler {
 public:
  ZipfSampler(int64_t n, double s) : cdf_(static_cast<size_t>(n)) {
    double total = 0.0;
    for (int64_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[static_cast<size_t>(r)] = total;
    }
    for (double& c : cdf_) c /= total;
  }
  int64_t Sample(Rng* rng) const {
    const double u = rng->Uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? static_cast<int64_t>(cdf_.size()) - 1
                            : it - cdf_.begin();
  }

 private:
  std::vector<double> cdf_;
};

std::string BuildRequestBody(int64_t user, const std::vector<int32_t>& history,
                             int32_t k) {
  std::string body = "{\"user\": " + std::to_string(user) + ", \"k\": " +
                     std::to_string(k) + ", \"history\": [";
  for (size_t i = 0; i < history.size(); ++i) {
    if (i > 0) body += ", ";
    body += std::to_string(history[i]);
  }
  body += "]}";
  return body;
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted->size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted->size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (*sorted)[lo] * (1.0 - frac) + (*sorted)[hi] * frac;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const int port = static_cast<int>(flags.GetInt("port", 0));
  if (port == 0) return Usage();
  const std::string host = flags.GetString("host", "127.0.0.1");
  const std::string dataset_name = flags.GetString("dataset", "beauty");
  const double scale = flags.GetDouble("scale", 0.05);
  const int workers = static_cast<int>(flags.GetInt("workers", 4));
  const double duration_s = flags.GetDouble("duration-s", 5.0);
  const double repeat_mix = flags.GetDouble("repeat-mix", 0.5);
  const double zipf = flags.GetDouble("zipf", 1.0);
  const int32_t k = static_cast<int32_t>(flags.GetInt("k", 10));
  const size_t history_len =
      static_cast<size_t>(flags.GetInt("history-len", 30));
  const int64_t retries = flags.GetInt("retries", 3);
  const int64_t backoff_ms = flags.GetInt("backoff-ms", 2);
  const int64_t backoff_cap_ms = flags.GetInt("backoff-cap-ms", 50);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const bool as_json = flags.GetBool("json", false);

  data::SyntheticConfig config;
  if (dataset_name == "beauty") {
    config = data::BeautyLikeConfig(scale);
  } else if (dataset_name == "ml1m") {
    config = data::ML1MLikeConfig(scale);
  } else {
    std::cerr << "error: --dataset must be beauty|ml1m\n";
    return 1;
  }
  const data::SequenceDataset corpus = data::GenerateSynthetic(config);

  // Shared mutable user table: repeats replay the current history, fresh
  // interactions extend it (so the cacheable state evolves like a real
  // user's would).
  std::vector<std::unique_ptr<UserState>> users;
  users.reserve(static_cast<size_t>(corpus.num_users()));
  for (int32_t u = 0; u < corpus.num_users(); ++u) {
    auto state = std::make_unique<UserState>();
    state->user_id = u;
    state->history = corpus.sequence(u);
    if (state->history.size() > history_len) {
      state->history.erase(
          state->history.begin(),
          state->history.end() - static_cast<int64_t>(history_len));
    }
    users.push_back(std::move(state));
  }
  const ZipfSampler user_sampler(corpus.num_users(), zipf);

  std::atomic<bool> stop{false};
  std::vector<WorkerResult> results(static_cast<size_t>(workers));
  std::vector<std::thread> threads;
  Stopwatch wall;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      WorkerResult& result = results[static_cast<size_t>(w)];
      Rng rng(seed + 1000003ull * static_cast<uint64_t>(w + 1));
      std::vector<int32_t> history;
      while (!stop.load(std::memory_order_relaxed)) {
        UserState& user = *users[static_cast<size_t>(
            user_sampler.Sample(&rng))];
        const bool repeat = rng.Uniform() < repeat_mix;
        {
          std::lock_guard<std::mutex> lock(user.mu);
          if (!repeat) {
            user.history.push_back(static_cast<int32_t>(
                rng.UniformInt(1, corpus.num_items())));
            if (user.history.size() > history_len) {
              user.history.erase(user.history.begin());
            }
          }
          history = user.history;
        }
        const std::string body = BuildRequestBody(user.user_id, history, k);
        // One logical request: retry 429s and transport failures with
        // capped exponential backoff + jitter until the budget runs out.
        // Latency is the client's view — the whole loop, retries included.
        Stopwatch timer;
        for (int64_t attempt = 0;; ++attempt) {
          int status = 0;
          std::string response;
          const bool transported = obs::HttpPost(
              host, port, "/recommend", body, "application/json", &status,
              &response);
          if (transported && status == 200) {
            ++result.ok;
            result.latencies_ms.push_back(timer.ElapsedMillis());
            if (response.find("\"cache_hit\": true") != std::string::npos) {
              ++result.cache_hits;
            }
            break;
          }
          const bool retryable = !transported || status == 429;
          if (transported && status == 429) ++result.rejected;
          if (!transported) ++result.resets;
          if (!retryable) {
            ++result.errors;
            break;
          }
          if (attempt >= retries || stop.load(std::memory_order_relaxed)) {
            ++result.gave_ups;
            break;
          }
          ++result.retries;
          const double base = static_cast<double>(
              std::min(backoff_cap_ms, backoff_ms << std::min<int64_t>(
                                           attempt, 20)));
          // +/-50% jitter decorrelates workers that were shed together.
          const int64_t sleep_us = static_cast<int64_t>(
              base * 1000.0 * (0.5 + rng.Uniform()));
          std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
        }
      }
    });
  }
  while (wall.ElapsedSeconds() < duration_s) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (std::thread& t : threads) t.join();
  const double elapsed = wall.ElapsedSeconds();

  std::vector<double> latencies;
  int64_t ok = 0, rejected = 0, resets = 0, total_retries = 0, gave_ups = 0,
          errors = 0, cache_hits = 0;
  for (WorkerResult& r : results) {
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    ok += r.ok;
    rejected += r.rejected;
    resets += r.resets;
    total_retries += r.retries;
    gave_ups += r.gave_ups;
    errors += r.errors;
    cache_hits += r.cache_hits;
  }
  std::sort(latencies.begin(), latencies.end());
  const double qps = static_cast<double>(ok) / elapsed;
  const double p50 = Percentile(&latencies, 50.0);
  const double p95 = Percentile(&latencies, 95.0);
  const double p99 = Percentile(&latencies, 99.0);

  if (as_json) {
    std::cout << "{\"workers\": " << workers << ", \"duration_s\": " << elapsed
              << ", \"requests\": " << ok << ", \"rejected\": " << rejected
              << ", \"resets\": " << resets << ", \"retries\": "
              << total_retries << ", \"gave_ups\": " << gave_ups
              << ", \"errors\": " << errors << ", \"cache_hits\": "
              << cache_hits << ", \"repeat_mix\": " << repeat_mix
              << ", \"qps\": " << qps << ", \"p50_ms\": " << p50
              << ", \"p95_ms\": " << p95 << ", \"p99_ms\": " << p99 << "}\n";
  } else {
    std::cout << "workers=" << workers << " qps=" << qps << " ok=" << ok
              << " rejected=" << rejected << " resets=" << resets
              << " retries=" << total_retries << " gave_ups=" << gave_ups
              << " errors=" << errors << " cache_hits=" << cache_hits
              << "\np50=" << p50 << "ms p95=" << p95 << "ms p99=" << p99
              << "ms\n";
  }
  return errors > ok ? 1 : 0;
}

}  // namespace
}  // namespace vsan

int main(int argc, char** argv) { return vsan::Main(argc, argv); }
