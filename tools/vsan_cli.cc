// Command-line interface to the library: train, evaluate, checkpoint, and
// query any of the nine models without writing C++.
//
//   vsan_cli train --dataset=beauty --model=vsan --epochs=20 --save=m.ckpt
//   vsan_cli train --dataset=ratings.dat --format=movielens --model=sasrec
//   vsan_cli recommend --load=m.ckpt --history=12,7,33 --topn=10
//   vsan_cli inspect --load=m.ckpt --history=12,7,33
//
// Datasets: "beauty" / "ml1m" synthesize the Table II presets at --scale;
// any other value is treated as a ratings file parsed per --format
// (movielens | amazon-csv) and preprocessed per Sec. V-A.

#include <iostream>
#include <memory>

#include "core/vsan.h"
#include "data/loaders.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "models/bpr.h"
#include "models/caser.h"
#include "models/fpmc.h"
#include "models/gru4rec.h"
#include "models/pop.h"
#include "models/sasrec.h"
#include "models/svae.h"
#include "models/transrec.h"
#include "obs/http_server.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tensor/autotune.h"
#include "tensor/gemm.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace vsan {
namespace {

int Usage() {
  std::cerr <<
      "usage: vsan_cli <command> [flags]\n"
      "commands:\n"
      "  train      --dataset=beauty|ml1m|<file> [--format=movielens|amazon-csv]\n"
      "             [--model=vsan|sasrec|gru4rec|caser|svae|pop|bpr|fpmc|transrec]\n"
      "             [--scale=0.05] [--epochs=20] [--d=32] [--max-len=30]\n"
      "             [--h1=1] [--h2=1] [--k=1] [--dropout=0.2] [--lr=0.001]\n"
      "             [--batch=64] [--seed=7] [--heldout=50] [--save=path]\n"
      "             [--telemetry_out=train.jsonl] [--trace_out=trace.json]\n"
      "             [--checkpoint_dir=dir] [--checkpoint_every=1] [--resume]\n"
      "             [--on_divergence=skip|abort|rollback]\n"
      "             [--metrics-port=9108] [--profile_out=train.folded]\n"
      "  evaluate   --load=ckpt --dataset=... [--heldout=50] [--seed=7]\n"
      "             [--retrieval=exact|quantized|ivf] [--clusters=0]\n"
      "             [--nprobe=8] [--precision=fp32|bf16]\n"
      "             [--metrics-port=9108]\n"
      "  recommend  --load=ckpt --history=1,2,3 [--topn=10]\n"
      "             [--precision=fp32|bf16]\n"
      "  inspect    --load=ckpt --history=1,2,3\n"
      "global flags:\n"
      "  --tune-config=path   apply a VSANTUNE1 GEMM config (tools/autotune;\n"
      "                       env: VSAN_TUNE_CONFIG, sweep: VSAN_AUTOTUNE=1)\n";
  return 2;
}

// --precision=fp32|bf16: operand-storage precision for the model's scoring
// GEMMs (tensor/gemm.h).  Inference-only; training always runs fp32.
bool ApplyPrecisionFlag(const FlagParser& flags,
                        SequentialRecommender* model) {
  const std::string precision = flags.GetString("precision", "fp32");
  if (precision == "fp32") return true;
  if (precision == "bf16") {
    model->set_eval_precision(MatMulPrecision::kBf16);
    return true;
  }
  std::cerr << "error: --precision must be fp32|bf16\n";
  return false;
}

Result<data::SequenceDataset> LoadDataset(const FlagParser& flags) {
  const std::string dataset = flags.GetString("dataset", "beauty");
  const double scale = flags.GetDouble("scale", 0.05);
  if (dataset == "beauty") {
    return data::GenerateSynthetic(data::BeautyLikeConfig(scale));
  }
  if (dataset == "ml1m") {
    return data::GenerateSynthetic(data::ML1MLikeConfig(scale));
  }
  data::PreprocessOptions pre;
  pre.min_rating = flags.GetDouble("min-rating", 4.0);
  pre.k_core = static_cast<int32_t>(flags.GetInt("k-core", 5));
  return data::LoadRatingsFile(dataset,
                               flags.GetString("format", "movielens"), pre);
}

std::unique_ptr<SequentialRecommender> MakeModel(const FlagParser& flags) {
  const std::string name = flags.GetString("model", "vsan");
  const int64_t d = flags.GetInt("d", 32);
  const int64_t max_len = flags.GetInt("max-len", 30);
  const float dropout = static_cast<float>(flags.GetDouble("dropout", 0.2));
  if (name == "pop") return std::make_unique<models::Pop>();
  if (name == "bpr") return std::make_unique<models::Bpr>(models::Bpr::Config{.d = d});
  if (name == "fpmc") {
    return std::make_unique<models::Fpmc>(models::Fpmc::Config{.d = d});
  }
  if (name == "transrec") {
    return std::make_unique<models::TransRec>(models::TransRec::Config{.d = d});
  }
  if (name == "gru4rec") {
    models::Gru4Rec::Config cfg;
    cfg.max_len = max_len;
    cfg.d = d;
    cfg.hidden = d;
    cfg.dropout = dropout;
    return std::make_unique<models::Gru4Rec>(cfg);
  }
  if (name == "caser") {
    models::Caser::Config cfg;
    cfg.d = d;
    cfg.dropout = dropout;
    return std::make_unique<models::Caser>(cfg);
  }
  if (name == "svae") {
    models::Svae::Config cfg;
    cfg.max_len = max_len;
    cfg.d = d;
    cfg.hidden = d;
    cfg.latent = d / 2;
    cfg.dropout = dropout;
    return std::make_unique<models::Svae>(cfg);
  }
  if (name == "sasrec") {
    models::SasRec::Config cfg;
    cfg.max_len = max_len;
    cfg.d = d;
    cfg.num_blocks = static_cast<int32_t>(flags.GetInt("h1", 1));
    cfg.dropout = dropout;
    return std::make_unique<models::SasRec>(cfg);
  }
  if (name == "vsan") {
    core::VsanConfig cfg;
    cfg.max_len = max_len;
    cfg.d = d;
    cfg.h1 = static_cast<int32_t>(flags.GetInt("h1", 1));
    cfg.h2 = static_cast<int32_t>(flags.GetInt("h2", 1));
    cfg.next_k = static_cast<int32_t>(flags.GetInt("k", 1));
    cfg.dropout = dropout;
    cfg.beta_max = static_cast<float>(flags.GetDouble("beta", 0.002));
    return std::make_unique<core::Vsan>(cfg);
  }
  return nullptr;
}

// --metrics-port=N: expose /metrics, /healthz, and /trace on localhost:N
// for the duration of the command (obs/http_server.h; vsan_top attaches
// here).  Returns false when the port cannot be bound; a zero/absent flag
// leaves the server off.
bool MaybeStartMetricsServer(const FlagParser& flags, obs::HttpServer* server) {
  const int64_t port = flags.GetInt("metrics-port", 0);
  if (port <= 0) return true;
  obs::HttpServerOptions options;
  options.port = static_cast<int>(port);
  if (!server->Start(options)) {
    std::cerr << "error: cannot bind --metrics-port " << port
              << " (built with -DVSAN_OBS=OFF, or port in use)\n";
    return false;
  }
  std::cout << "metrics on http://127.0.0.1:" << server->port()
            << "/metrics\n";
  return true;
}

std::vector<int32_t> ParseHistory(const std::string& csv) {
  std::vector<int32_t> items;
  std::string token;
  for (char c : csv + ",") {
    if (c == ',') {
      if (!token.empty()) items.push_back(std::atoi(token.c_str()));
      token.clear();
    } else {
      token += c;
    }
  }
  return items;
}

int Train(const FlagParser& flags) {
  Result<data::SequenceDataset> dataset = LoadDataset(flags);
  if (!dataset.ok()) {
    std::cerr << "error: " << dataset.status().ToString() << "\n";
    return 1;
  }
  std::cout << dataset.value().Summary("dataset") << "\n";

  data::SplitOptions split_opts;
  const int32_t heldout = static_cast<int32_t>(flags.GetInt("heldout", 50));
  split_opts.num_validation_users = heldout;
  split_opts.num_test_users = heldout;
  split_opts.seed = flags.GetInt("seed", 7);
  const data::StrongSplit split =
      data::MakeStrongSplit(dataset.value(), split_opts);

  std::unique_ptr<SequentialRecommender> model = MakeModel(flags);
  if (model == nullptr) {
    std::cerr << "error: unknown --model\n";
    return Usage();
  }

  TrainOptions train_opts;
  train_opts.epochs = static_cast<int32_t>(flags.GetInt("epochs", 20));
  train_opts.batch_size = flags.GetInt("batch", 64);
  train_opts.learning_rate = static_cast<float>(flags.GetDouble("lr", 1e-3));
  train_opts.seed = flags.GetInt("seed", 7) + 101;
  // Crash safety: periodic full checkpoints and resume (see nn/checkpoint.h).
  train_opts.checkpoint_dir = flags.GetString("checkpoint_dir");
  train_opts.checkpoint_every_n_epochs =
      static_cast<int32_t>(flags.GetInt("checkpoint_every", 1));
  train_opts.resume = flags.GetBool("resume", false);
  const std::string on_divergence = flags.GetString("on_divergence", "skip");
  if (on_divergence == "abort") {
    train_opts.divergence_policy = DivergencePolicy::kAbort;
  } else if (on_divergence == "rollback") {
    train_opts.divergence_policy =
        DivergencePolicy::kRollbackToLastCheckpoint;
  } else if (on_divergence == "skip") {
    train_opts.divergence_policy = DivergencePolicy::kSkipBatch;
  } else {
    std::cerr << "error: --on_divergence must be skip|abort|rollback\n";
    return Usage();
  }
  train_opts.epoch_callback = [](const EpochStats& stats) {
    std::cout << "epoch " << stats.epoch << " loss "
              << FormatDouble(stats.loss, 4) << " ("
              << FormatDouble(stats.wall_ms, 1) << " ms, " << stats.batches
              << " batches)\n";
  };

  // Per-epoch JSONL telemetry (loss decomposition, grad norm, timings).
  std::unique_ptr<obs::TelemetryRecorder> telemetry;
  const std::string telemetry_out = flags.GetString("telemetry_out");
  if (!telemetry_out.empty()) {
    telemetry = std::make_unique<obs::TelemetryRecorder>(telemetry_out);
    if (!telemetry->ok()) {
      std::cerr << "error: cannot open --telemetry_out " << telemetry_out
                << "\n";
      return 1;
    }
    train_opts.telemetry = telemetry.get();
  }

  obs::HttpServer metrics_server;
  if (!MaybeStartMetricsServer(flags, &metrics_server)) return 1;

  // Chrome-trace span capture around training (open in Perfetto).
  const std::string trace_out = flags.GetString("trace_out");
  if (!trace_out.empty()) obs::Tracer::Global().StartSession({});

  // Sampling CPU profiler around training (obs/profiler.h); the folded
  // stacks feed flamegraph.pl / speedscope directly.
  const std::string profile_out = flags.GetString("profile_out");
  if (!profile_out.empty() && !obs::SamplingProfiler::Global().Start()) {
    std::cerr << "error: cannot start profiler for --profile_out "
              << "(built with -DVSAN_OBS=OFF?)\n";
    return 1;
  }

  model->Fit(split.train, train_opts);

  if (!profile_out.empty()) {
    const obs::ProfileStats stats = obs::SamplingProfiler::Global().Stop();
    if (!obs::SamplingProfiler::Global().WriteFolded(profile_out)) {
      std::cerr << "error: cannot write --profile_out " << profile_out << "\n";
      return 1;
    }
    std::cout << "wrote " << stats.samples << " profile samples to "
              << profile_out << " ("
              << FormatDouble(100.0 * stats.any_symbolized_fraction, 1)
              << "% symbolized)\n";
  }

  if (!trace_out.empty()) {
    obs::Tracer::Global().StopSession();
    if (!obs::ExportChromeTrace(trace_out)) {
      std::cerr << "error: cannot write --trace_out " << trace_out << "\n";
      return 1;
    }
    std::cout << "wrote trace to " << trace_out << "\n";
  }

  const eval::EvalResult val =
      eval::EvaluateRanking(*model, split.validation, {});
  const eval::EvalResult test = eval::EvaluateRanking(*model, split.test, {});
  std::cout << model->name() << " validation: " << val.ToString() << "\n";
  std::cout << model->name() << " test:       " << test.ToString() << "\n";

  const std::string save_path = flags.GetString("save");
  if (!save_path.empty()) {
    auto* vsan_model = dynamic_cast<core::Vsan*>(model.get());
    if (vsan_model == nullptr) {
      std::cerr << "error: --save currently supports --model=vsan only\n";
      return 1;
    }
    const Status s = vsan_model->Save(save_path);
    if (!s.ok()) {
      std::cerr << "error: " << s.ToString() << "\n";
      return 1;
    }
    std::cout << "saved checkpoint to " << save_path << "\n";
  }
  return 0;
}

int Evaluate(const FlagParser& flags) {
  auto loaded = core::Vsan::Load(flags.GetString("load"));
  if (!loaded.ok()) {
    std::cerr << "error: " << loaded.status().ToString() << "\n";
    return 1;
  }
  Result<data::SequenceDataset> dataset = LoadDataset(flags);
  if (!dataset.ok()) {
    std::cerr << "error: " << dataset.status().ToString() << "\n";
    return 1;
  }
  if (dataset.value().num_items() > loaded.value()->num_items()) {
    std::cerr << "error: dataset has " << dataset.value().num_items()
              << " items but the checkpoint was trained on "
              << loaded.value()->num_items() << "\n";
    return 1;
  }
  data::SplitOptions split_opts;
  const int32_t heldout = static_cast<int32_t>(flags.GetInt("heldout", 50));
  split_opts.num_validation_users = heldout;
  split_opts.num_test_users = heldout;
  split_opts.seed = flags.GetInt("seed", 7);
  const data::StrongSplit split =
      data::MakeStrongSplit(dataset.value(), split_opts);
  // Retrieval backend for the ranking pass (eval/retrieval.h): "exact" is
  // the full-scoring oracle; "quantized" / "ivf" trade exactness for speed
  // and fall back to exact when the model exposes no factorized head.
  eval::EvalOptions eval_opts;
  const std::string backend = flags.GetString("retrieval", "exact");
  if (!eval::ParseRetrievalBackend(backend, &eval_opts.retrieval.backend)) {
    std::cerr << "error: --retrieval must be exact|quantized|ivf\n";
    return Usage();
  }
  eval_opts.retrieval.clusters =
      static_cast<int32_t>(flags.GetInt("clusters", 0));
  eval_opts.retrieval.nprobe = static_cast<int32_t>(flags.GetInt("nprobe", 8));
  if (!ApplyPrecisionFlag(flags, loaded.value().get())) return Usage();
  obs::HttpServer metrics_server;
  if (!MaybeStartMetricsServer(flags, &metrics_server)) return 1;
  const eval::EvalResult r =
      eval::EvaluateRanking(*loaded.value(), split.test, eval_opts);
  std::cout << loaded.value()->name() << " test: " << r.ToString() << "\n";
  return 0;
}

int Recommend(const FlagParser& flags) {
  auto loaded = core::Vsan::Load(flags.GetString("load"));
  if (!loaded.ok()) {
    std::cerr << "error: " << loaded.status().ToString() << "\n";
    return 1;
  }
  const std::vector<int32_t> history =
      ParseHistory(flags.GetString("history"));
  if (history.empty()) {
    std::cerr << "error: --history=1,2,3 required\n";
    return Usage();
  }
  if (!ApplyPrecisionFlag(flags, loaded.value().get())) return Usage();
  const std::vector<float> scores = loaded.value()->Score(history);
  std::vector<bool> excluded(scores.size(), false);
  excluded[data::kPaddingItem] = true;
  for (int32_t item : history) {
    if (item >= 0 && item < static_cast<int32_t>(excluded.size())) {
      excluded[item] = true;
    }
  }
  const int32_t topn = static_cast<int32_t>(flags.GetInt("topn", 10));
  for (int32_t item : eval::TopNIndices(scores, excluded, topn)) {
    std::cout << item << "\t" << FormatDouble(scores[item], 4) << "\n";
  }
  return 0;
}

int Inspect(const FlagParser& flags) {
  auto loaded = core::Vsan::Load(flags.GetString("load"));
  if (!loaded.ok()) {
    std::cerr << "error: " << loaded.status().ToString() << "\n";
    return 1;
  }
  const std::vector<int32_t> history =
      ParseHistory(flags.GetString("history"));
  if (history.empty()) {
    std::cerr << "error: --history=1,2,3 required\n";
    return Usage();
  }
  const core::PosteriorStats stats =
      loaded.value()->InspectPosterior(history);
  std::cout << "mean sigma " << FormatDouble(stats.MeanSigma(), 4) << "\n";
  std::cout << "dim\tmu\tsigma\n";
  for (size_t i = 0; i < stats.mu.size(); ++i) {
    std::cout << i << "\t" << FormatDouble(stats.mu[i], 4) << "\t"
              << FormatDouble(stats.sigma[i], 4) << "\n";
  }
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.positional().empty()) return Usage();
  const std::string tune_config = flags.GetString("tune-config");
  if (!tune_config.empty()) {
    const Status s = autotune::ApplyTuneConfig(tune_config);
    if (!s.ok()) {
      std::cerr << "error: --tune-config: " << s.ToString() << "\n";
      return 1;
    }
  }
  const std::string command = flags.positional()[0];
  if (command == "train") return Train(flags);
  if (command == "evaluate") return Evaluate(flags);
  if (command == "recommend") return Recommend(flags);
  if (command == "inspect") return Inspect(flags);
  return Usage();
}

}  // namespace
}  // namespace vsan

int main(int argc, char** argv) { return vsan::Main(argc, argv); }
