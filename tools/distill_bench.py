#!/usr/bin/env python3
"""Distills google-benchmark JSON into the repo's checked-in BENCH files.

Two modes, both invoked by tools/run_bench.sh:

  distill_bench.py OPS_JSON TRAIN_JSON POOLOFF_JSON OUT
      The full micro sweep -> BENCH_micro.json.  POOLOFF_JSON is the
      VSAN_POOL=0 rerun of the allocation-churn probe; its records are
      tagged pool=off so both pool modes sit side by side.

  distill_bench.py --autotune DEFAULT_JSON TUNED_JSON OUT
      The GEMM-family A/B against tools/autotune's winner ->
      BENCH_autotune.json.  Records from the first file are tagged
      blocks=default, from the second blocks=tuned.

One record per benchmark with op, shape, threads, ns/iter, GFLOP/s for the
GEMM family (items_processed counts multiply-adds, FLOPs = 2 * items), and
`precision` (fp32 | bf16) on GEMM records so the bf16 storage path's rows
pair up with their fp32 twins at equal shapes.
"""

import json
import sys

# Benchmarks whose last argument is the thread-pool size (the ThreadCounts()
# sweep in bench/*.cc).  Everything else is single-thread.
THREADED = {
    "BM_MatMul2D", "BM_MatMul2DTransposed", "BM_BatchedMatMul",
    "BM_GemmBf16", "BM_SoftmaxLastDim", "BM_AttentionBlockForward",
    "BM_VsanTrainEpoch_SeqLen", "BM_VsanTrainEpoch_Dim",
    "BM_SasRecTrainEpoch_SeqLen", "BM_Gru4RecTrainEpoch_SeqLen",
    "BM_EvaluateRanking",
}
# GEMM-family benchmarks: items_processed counts multiply-adds, so
# FLOPs/s = 2 * items/s.
GEMM_OPS = {
    "BM_MatMul2D", "BM_MatMul2DTransposed", "BM_MatMul2DBlockSweep",
    "BM_BatchedMatMul", "BM_GemmBf16", "BM_GemmModelShape",
}
# Names ScoreBatch/logits/attention shapes in BM_GemmModelShape's args, in
# registration order (bench/bench_micro_ops.cc).
MODEL_SHAPE_NAMES = {
    (256, 4096, 64): "score_batch",
    (1024, 4096, 64): "logits",
    (200, 200, 64): "attn_scores",
}


def parse_record(b):
    """One google-benchmark entry -> one distilled record, or None."""
    if b.get("run_type") == "aggregate":
        return None
    parts = b["name"].split("/")
    op, args = parts[0], parts[1:]
    precision = None
    if op in THREADED and args:
        threads = int(args[-1])
        shape = "x".join(args[:-1]) or "-"
    elif op == "BM_MatMul2DBlockSweep":
        threads = 1
        shape = "256x256x256 mc={} nc={} kc={}".format(*args)
    elif op == "BM_GemmModelShape":
        # Args are (m, n, k, precision-flag); name the known model shapes.
        threads = 1
        m, n, k, prec = (int(a) for a in args)
        name = MODEL_SHAPE_NAMES.get((m, n, k))
        shape = f"{m}x{n}x{k}" + (f" ({name})" if name else "")
        precision = "bf16" if prec else "fp32"
    else:
        threads = 1
        shape = "x".join(args) or "-"
    unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    rec = {
        "op": op,
        "shape": shape,
        "threads": threads,
        "ns_per_iter": round(
            b["real_time"] * unit_ns[b.get("time_unit", "ns")], 1),
    }
    if op in GEMM_OPS:
        if precision is None:
            precision = "bf16" if op == "BM_GemmBf16" else "fp32"
        rec["precision"] = precision
        if "items_per_second" in b:
            rec["gflops"] = round(2.0 * b["items_per_second"] / 1e9, 2)
    if op == "BM_GemmBf16" and b.get("label"):
        rec["kernel"] = b["label"]
    if op == "BM_AllocChurn":
        if "pool_hit_rate" in b:
            rec["pool_hit_rate"] = round(b["pool_hit_rate"], 4)
    return rec


def make_context(data):
    return {
        "date": data["context"].get("date"),
        "num_cpus": data["context"].get("num_cpus"),
        "mhz_per_cpu": data["context"].get("mhz_per_cpu"),
        # How the google-benchmark library itself was built (the project is
        # always built Release by run_bench.sh; a "debug" here means the
        # distro's benchmark package carries assertion overhead in the
        # measurement loop — see VSAN_BENCHMARK_SOURCE_DIR).
        "benchmark_library_build_type":
            data["context"].get("library_build_type"),
    }


def distill_micro(ops_path, train_path, pooloff_path, out_path):
    records = []
    context = None
    for path in (ops_path, train_path, pooloff_path):
        pool_mode = "off" if path == pooloff_path else "on"
        with open(path) as f:
            data = json.load(f)
        if context is None:
            context = make_context(data)
        for b in data.get("benchmarks", []):
            rec = parse_record(b)
            if rec is None:
                continue
            if rec["op"] == "BM_AllocChurn":
                rec["pool"] = pool_mode
            records.append(rec)
    write_out(out_path, context, records)


def distill_autotune(default_path, tuned_path, out_path):
    records = []
    context = None
    for path, blocks in ((default_path, "default"), (tuned_path, "tuned")):
        with open(path) as f:
            data = json.load(f)
        if context is None:
            context = make_context(data)
        for b in data.get("benchmarks", []):
            rec = parse_record(b)
            if rec is None:
                continue
            rec["blocks"] = blocks
            records.append(rec)
    write_out(out_path, context, records)


def write_out(out_path, context, records):
    with open(out_path, "w") as f:
        json.dump({"context": context, "benchmarks": records}, f, indent=1)
        f.write("\n")
    print(f"wrote {out_path} ({len(records)} records)")


def main(argv):
    if len(argv) == 5 and argv[1] == "--autotune":
        distill_autotune(argv[2], argv[3], argv[4])
    elif len(argv) == 5:
        distill_micro(argv[1], argv[2], argv[3], argv[4])
    else:
        sys.stderr.write(__doc__)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
