#!/usr/bin/env bash
# Benchmark-regression harness: builds the tree in Release mode, runs the
# kernel (bench_micro_ops) and end-to-end (bench_micro_train) suites, and
# distills the google-benchmark JSON into BENCH_micro.json at the repo root
# — one record per benchmark with op, shape, threads, ns/iter and GFLOP/s
# (GFLOP/s only for the GEMM family, where items_processed counts
# multiply-adds, i.e. FLOPs = 2 * items).
#
# Usage:
#   tools/run_bench.sh [build_dir] [benchmark_filter]
#   tools/run_bench.sh --trace [build_dir]
#   tools/run_bench.sh --retrieval [build_dir]
#   tools/run_bench.sh --autotune [build_dir]
#   tools/run_bench.sh --gate [build_dir] [benchmark_filter]
#
# The distilled records carry a `precision` field on the GEMM family
# (fp32, or bf16 for BM_GemmBf16 and the bf16 rows of BM_GemmModelShape),
# so fp32/bf16 pairs at equal shapes sit side by side in the file.
#
# If the google-benchmark library itself was a debug build (distro packages
# often are; the binary self-reports via library_build_type), the script
# warns — the project code is still Release, but the measurement loop
# carries extra overhead.  Set VSAN_REQUIRE_RELEASE_BENCH=1 to make that a
# hard failure, or configure with -DVSAN_BENCHMARK_SOURCE_DIR=<checkout> to
# build the library Release in-tree.
#
# --autotune: A/B the GEMM family against tools/autotune's winner.  Runs
# the offline tuner (budget VSAN_AUTOTUNE_BUDGET_MS, default 15000 ms),
# then runs the GEMM benchmarks once with default block sizes and once
# with the tuned config applied via VSAN_TUNE_CONFIG, landing both in
# BENCH_autotune.json with records tagged blocks=default|tuned.
#
# Compare the emitted file against a checked-in BENCH_micro.json from before
# a kernel change to spot regressions; the 256^3 single-thread MatMul2D row
# is the headline number the blocked GEMM is tuned against.
#
# --trace: instead of the benchmark sweep, capture a span trace of one
# single-thread VsanTrainEpoch/80 run (VSAN_TRACE_OUT), fold it with
# trace_summary, and fail if the summary is empty — a smoke check that the
# tracer and its toolchain stay wired end to end.
#
# --gate: regression gate for CI.  Runs the same sweep as the default mode
# but distills into a temp file and diffs it against the committed
# BENCH_micro.json with tools/check_bench.py (tolerance ±15% ns/iter by
# default; override with VSAN_BENCH_TOLERANCE=0.25).  The baseline file is
# never overwritten; exit status 1 on any regression.
#
# --retrieval: run the million-item recall-vs-speedup sweep
# (bench/bench_retrieval.cc) and land its JSON curve in
# BENCH_retrieval.json at the repo root — exact baseline, quantized scan,
# and the IVF nprobe frontier, single-thread.  The checked-in file is the
# regression reference for the >= 10x quantized speedup claim.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if [[ "${1:-}" == "--retrieval" ]]; then
  BUILD_DIR="${2:-$REPO_ROOT/build}"
  OUT="$REPO_ROOT/BENCH_retrieval.json"
  cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_retrieval
  "$BUILD_DIR/bench/bench_retrieval" > "$OUT"
  echo "wrote $OUT"
  exit 0
fi

if [[ "${1:-}" == "--trace" ]]; then
  BUILD_DIR="${2:-$REPO_ROOT/build}"
  cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target bench_micro_train trace_summary
  TRACE_JSON="$(mktemp --suffix=.json)"
  SUMMARY="$(mktemp)"
  trap 'rm -f "$TRACE_JSON" "$SUMMARY"' EXIT
  VSAN_TRACE_OUT="$TRACE_JSON" "$BUILD_DIR/bench/bench_micro_train" \
    --benchmark_filter='BM_VsanTrainEpoch_SeqLen/80/1$' \
    --benchmark_min_time=0.1
  "$BUILD_DIR/tools/trace_summary" "$TRACE_JSON" | tee "$SUMMARY"
  if ! grep -q '^by_category' "$SUMMARY"; then
    echo "error: trace_summary produced no category table" >&2
    exit 1
  fi
  exit 0
fi

# Warn (or, under VSAN_REQUIRE_RELEASE_BENCH=1, fail) when the
# google-benchmark library linked into a just-produced JSON was a debug
# build.  $1 = benchmark JSON path.
check_bench_library() {
  local build_type
  build_type="$(python3 -c '
import json, sys
print(json.load(open(sys.argv[1]))["context"].get("library_build_type", "unknown"))
' "$1")"
  if [[ "$build_type" != "release" ]]; then
    echo "warning: google-benchmark library build type is '$build_type'," \
      "not 'release'; timings include debug-library overhead (configure" \
      "with -DVSAN_BENCHMARK_SOURCE_DIR=<checkout> for a Release lib)" >&2
    if [[ "${VSAN_REQUIRE_RELEASE_BENCH:-0}" == "1" ]]; then
      echo "error: VSAN_REQUIRE_RELEASE_BENCH=1 and the benchmark library" \
        "is not a release build" >&2
      exit 1
    fi
  fi
}

if [[ "${1:-}" == "--autotune" ]]; then
  BUILD_DIR="${2:-$REPO_ROOT/build}"
  OUT="$REPO_ROOT/BENCH_autotune.json"
  cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_micro_ops autotune
  TUNE_CONFIG="$(mktemp --suffix=.vsantune)"
  DEFAULT_JSON="$(mktemp)"
  TUNED_JSON="$(mktemp)"
  trap 'rm -f "$TUNE_CONFIG" "$DEFAULT_JSON" "$TUNED_JSON"' EXIT
  "$BUILD_DIR/tools/autotune" --out="$TUNE_CONFIG" \
    --budget-ms="${VSAN_AUTOTUNE_BUDGET_MS:-15000}" --apply-check
  GEMM_FILTER='BM_MatMul2D|BM_BatchedMatMul|BM_GemmBf16|BM_GemmModelShape'
  "$BUILD_DIR/bench/bench_micro_ops" --benchmark_format=json \
    --benchmark_filter="$GEMM_FILTER" > "$DEFAULT_JSON"
  check_bench_library "$DEFAULT_JSON"
  VSAN_TUNE_CONFIG="$TUNE_CONFIG" "$BUILD_DIR/bench/bench_micro_ops" \
    --benchmark_format=json \
    --benchmark_filter="$GEMM_FILTER" > "$TUNED_JSON"
  python3 "$REPO_ROOT/tools/distill_bench.py" --autotune \
    "$DEFAULT_JSON" "$TUNED_JSON" "$OUT"
  exit 0
fi

GATE=0
if [[ "${1:-}" == "--gate" ]]; then
  GATE=1
  shift
fi

BUILD_DIR="${1:-$REPO_ROOT/build}"
FILTER="${2:-}"
OUT="$REPO_ROOT/BENCH_micro.json"
if [[ "$GATE" == "1" ]]; then
  if [[ ! -f "$OUT" ]]; then
    echo "error: --gate needs a committed $OUT baseline" >&2
    exit 1
  fi
  BASELINE="$OUT"
  OUT="$(mktemp --suffix=.json)"
fi

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target bench_micro_ops bench_micro_train

OPS_JSON="$(mktemp)"
TRAIN_JSON="$(mktemp)"
POOLOFF_JSON="$(mktemp)"
if [[ "$GATE" == "1" ]]; then
  trap 'rm -f "$OPS_JSON" "$TRAIN_JSON" "$POOLOFF_JSON" "$OUT"' EXIT
else
  trap 'rm -f "$OPS_JSON" "$TRAIN_JSON" "$POOLOFF_JSON"' EXIT
fi

BENCH_ARGS=(--benchmark_format=json)
if [[ -n "$FILTER" ]]; then
  BENCH_ARGS+=("--benchmark_filter=$FILTER")
fi

"$BUILD_DIR/bench/bench_micro_ops" "${BENCH_ARGS[@]}" > "$OPS_JSON"
check_bench_library "$OPS_JSON"
"$BUILD_DIR/bench/bench_micro_train" "${BENCH_ARGS[@]}" > "$TRAIN_JSON"
# The allocation-churn probe again with the tensor pool disabled, so the
# emitted file carries a pool-on / pool-off pair for the same workload.
VSAN_POOL=0 "$BUILD_DIR/bench/bench_micro_train" \
  --benchmark_format=json \
  --benchmark_filter='BM_AllocChurn' > "$POOLOFF_JSON"

python3 "$REPO_ROOT/tools/distill_bench.py" \
  "$OPS_JSON" "$TRAIN_JSON" "$POOLOFF_JSON" "$OUT"

if [[ "$GATE" == "1" ]]; then
  python3 "$REPO_ROOT/tools/check_bench.py" \
    ${VSAN_BENCH_TOLERANCE:+--tolerance="$VSAN_BENCH_TOLERANCE"} \
    "$BASELINE" "$OUT"
fi
