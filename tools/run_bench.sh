#!/usr/bin/env bash
# Benchmark-regression harness: builds the tree in Release mode, runs the
# kernel (bench_micro_ops) and end-to-end (bench_micro_train) suites, and
# distills the google-benchmark JSON into BENCH_micro.json at the repo root
# — one record per benchmark with op, shape, threads, ns/iter and GFLOP/s
# (GFLOP/s only for the GEMM family, where items_processed counts
# multiply-adds, i.e. FLOPs = 2 * items).
#
# Usage:
#   tools/run_bench.sh [build_dir] [benchmark_filter]
#   tools/run_bench.sh --trace [build_dir]
#   tools/run_bench.sh --retrieval [build_dir]
#
# Compare the emitted file against a checked-in BENCH_micro.json from before
# a kernel change to spot regressions; the 256^3 single-thread MatMul2D row
# is the headline number the blocked GEMM is tuned against.
#
# --trace: instead of the benchmark sweep, capture a span trace of one
# single-thread VsanTrainEpoch/80 run (VSAN_TRACE_OUT), fold it with
# trace_summary, and fail if the summary is empty — a smoke check that the
# tracer and its toolchain stay wired end to end.
#
# --retrieval: run the million-item recall-vs-speedup sweep
# (bench/bench_retrieval.cc) and land its JSON curve in
# BENCH_retrieval.json at the repo root — exact baseline, quantized scan,
# and the IVF nprobe frontier, single-thread.  The checked-in file is the
# regression reference for the >= 10x quantized speedup claim.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if [[ "${1:-}" == "--retrieval" ]]; then
  BUILD_DIR="${2:-$REPO_ROOT/build}"
  OUT="$REPO_ROOT/BENCH_retrieval.json"
  cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_retrieval
  "$BUILD_DIR/bench/bench_retrieval" > "$OUT"
  echo "wrote $OUT"
  exit 0
fi

if [[ "${1:-}" == "--trace" ]]; then
  BUILD_DIR="${2:-$REPO_ROOT/build}"
  cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target bench_micro_train trace_summary
  TRACE_JSON="$(mktemp --suffix=.json)"
  SUMMARY="$(mktemp)"
  trap 'rm -f "$TRACE_JSON" "$SUMMARY"' EXIT
  VSAN_TRACE_OUT="$TRACE_JSON" "$BUILD_DIR/bench/bench_micro_train" \
    --benchmark_filter='BM_VsanTrainEpoch_SeqLen/80/1$' \
    --benchmark_min_time=0.1
  "$BUILD_DIR/tools/trace_summary" "$TRACE_JSON" | tee "$SUMMARY"
  if ! grep -q '^by_category' "$SUMMARY"; then
    echo "error: trace_summary produced no category table" >&2
    exit 1
  fi
  exit 0
fi

BUILD_DIR="${1:-$REPO_ROOT/build}"
FILTER="${2:-}"
OUT="$REPO_ROOT/BENCH_micro.json"

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target bench_micro_ops bench_micro_train

OPS_JSON="$(mktemp)"
TRAIN_JSON="$(mktemp)"
POOLOFF_JSON="$(mktemp)"
trap 'rm -f "$OPS_JSON" "$TRAIN_JSON" "$POOLOFF_JSON"' EXIT

BENCH_ARGS=(--benchmark_format=json)
if [[ -n "$FILTER" ]]; then
  BENCH_ARGS+=("--benchmark_filter=$FILTER")
fi

"$BUILD_DIR/bench/bench_micro_ops" "${BENCH_ARGS[@]}" > "$OPS_JSON"
"$BUILD_DIR/bench/bench_micro_train" "${BENCH_ARGS[@]}" > "$TRAIN_JSON"
# The allocation-churn probe again with the tensor pool disabled, so the
# emitted file carries a pool-on / pool-off pair for the same workload.
VSAN_POOL=0 "$BUILD_DIR/bench/bench_micro_train" \
  --benchmark_format=json \
  --benchmark_filter='BM_AllocChurn' > "$POOLOFF_JSON"

python3 - "$OPS_JSON" "$TRAIN_JSON" "$POOLOFF_JSON" "$OUT" <<'PY'
import json
import sys

# Benchmarks whose last argument is the thread-pool size (the ThreadCounts()
# sweep in bench/*.cc).  Everything else is single-thread.
THREADED = {
    "BM_MatMul2D", "BM_MatMul2DTransposed", "BM_BatchedMatMul",
    "BM_SoftmaxLastDim", "BM_AttentionBlockForward",
    "BM_VsanTrainEpoch_SeqLen", "BM_VsanTrainEpoch_Dim",
    "BM_SasRecTrainEpoch_SeqLen", "BM_Gru4RecTrainEpoch_SeqLen",
    "BM_EvaluateRanking",
}
# GEMM-family benchmarks: items_processed counts multiply-adds, so
# FLOPs/s = 2 * items/s.
GEMM_OPS = {
    "BM_MatMul2D", "BM_MatMul2DTransposed", "BM_MatMul2DBlockSweep",
    "BM_BatchedMatMul",
}

records = []
context = None
# argv[3] is the VSAN_POOL=0 rerun of the allocation-churn probe; its
# records are tagged pool=off (pool-sensitive records from the normal run
# get pool=on) so regressions in either mode are visible side by side.
for path in sys.argv[1:4]:
    pool_mode = "off" if path == sys.argv[3] else "on"
    with open(path) as f:
        data = json.load(f)
    if context is None:
        context = {
            "date": data["context"].get("date"),
            "num_cpus": data["context"].get("num_cpus"),
            "mhz_per_cpu": data["context"].get("mhz_per_cpu"),
            # How the google-benchmark library itself was built (the
            # project is always built Release by this script).
            "benchmark_library_build_type":
                data["context"].get("library_build_type"),
        }
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        parts = b["name"].split("/")
        op, args = parts[0], parts[1:]
        if op in THREADED and args:
            threads = int(args[-1])
            shape = "x".join(args[:-1]) or "-"
        elif op == "BM_MatMul2DBlockSweep":
            threads = 1
            shape = "256x256x256 mc={} nc={} kc={}".format(*args)
        else:
            threads = 1
            shape = "x".join(args) or "-"
        unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
        rec = {
            "op": op,
            "shape": shape,
            "threads": threads,
            "ns_per_iter": round(
                b["real_time"] * unit_ns[b.get("time_unit", "ns")], 1),
        }
        if op in GEMM_OPS and "items_per_second" in b:
            rec["gflops"] = round(2.0 * b["items_per_second"] / 1e9, 2)
        if op == "BM_AllocChurn":
            rec["pool"] = pool_mode
            if "pool_hit_rate" in b:
                rec["pool_hit_rate"] = round(b["pool_hit_rate"], 4)
        records.append(rec)

with open(sys.argv[4], "w") as f:
    json.dump({"context": context, "benchmarks": records}, f, indent=1)
    f.write("\n")
print(f"wrote {sys.argv[4]} ({len(records)} records)")
PY
