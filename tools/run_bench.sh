#!/usr/bin/env bash
# Benchmark-regression harness: builds the tree in Release mode, runs the
# kernel (bench_micro_ops) and end-to-end (bench_micro_train) suites, and
# distills the google-benchmark JSON into BENCH_micro.json at the repo root
# — one record per benchmark with op, shape, threads, ns/iter and GFLOP/s
# (GFLOP/s only for the GEMM family, where items_processed counts
# multiply-adds, i.e. FLOPs = 2 * items).
#
# Usage:
#   tools/run_bench.sh [build_dir] [benchmark_filter]
#   tools/run_bench.sh --trace [build_dir]
#   tools/run_bench.sh --retrieval [build_dir]
#   tools/run_bench.sh --autotune [build_dir]
#   tools/run_bench.sh --serve [build_dir]
#   tools/run_bench.sh --gate [build_dir] [benchmark_filter]
#
# The distilled records carry a `precision` field on the GEMM family
# (fp32, or bf16 for BM_GemmBf16 and the bf16 rows of BM_GemmModelShape),
# so fp32/bf16 pairs at equal shapes sit side by side in the file.
#
# If the google-benchmark library itself was a debug build (distro packages
# often are; the binary self-reports via library_build_type), the script
# warns — the project code is still Release, but the measurement loop
# carries extra overhead.  Set VSAN_REQUIRE_RELEASE_BENCH=1 to make that a
# hard failure, or configure with -DVSAN_BENCHMARK_SOURCE_DIR=<checkout> to
# build the library Release in-tree.
#
# --autotune: A/B the GEMM family against tools/autotune's winner.  Runs
# the offline tuner (budget VSAN_AUTOTUNE_BUDGET_MS, default 15000 ms),
# then runs the GEMM benchmarks once with default block sizes and once
# with the tuned config applied via VSAN_TUNE_CONFIG, landing both in
# BENCH_autotune.json with records tagged blocks=default|tuned.
#
# Compare the emitted file against a checked-in BENCH_micro.json from before
# a kernel change to spot regressions; the 256^3 single-thread MatMul2D row
# is the headline number the blocked GEMM is tuned against.
#
# --trace: instead of the benchmark sweep, capture a span trace of one
# single-thread VsanTrainEpoch/80 run (VSAN_TRACE_OUT), fold it with
# trace_summary, and fail if the summary is empty — a smoke check that the
# tracer and its toolchain stay wired end to end.
#
# --gate: regression gate for CI.  Runs the same sweep as the default mode
# but distills into a temp file and diffs it against the committed
# BENCH_micro.json with tools/check_bench.py (tolerance ±15% ns/iter by
# default; override with VSAN_BENCH_TOLERANCE=0.25).  The baseline file is
# never overwritten; exit status 1 on any regression.
#
# --retrieval: run the million-item recall-vs-speedup sweep
# (bench/bench_retrieval.cc) and land its JSON curve in
# BENCH_retrieval.json at the repo root — exact baseline, quantized scan,
# and the IVF nprobe frontier, single-thread.  The checked-in file is the
# regression reference for the >= 10x quantized speedup claim.
#
# --serve: latency-vs-QPS curves for the serving daemon.  Trains a vsan
# checkpoint on the full-scale beauty corpus (12k items, d=64, a
# 10-step recent-history window — a catalog large enough that head
# scoring dominates the request), then for each batching
# policy — batch1 (max_batch=1, cache off), dynamic (max_batch=32, cache
# off), dynamic_cache (max_batch=32, 64 MB encoded-state cache) — starts
# vsan_serve on the exact backend and sweeps closed-loop vsan_loadgen
# workers (1..16, Zipf-1.5 users, 70% returning-user repeat mix — the
# skew concentrates traffic enough that the cache's steady-state hit rate
# actually reaches the repeat mix inside a short window).  The exact
# backend is the interesting one for batching: its scoring stage runs one
# M=batch GEMM over the [num_items x d] head per flush, amortizing the
# B-panel packing that an M=1 call pays per request (tensor/gemm.h).
# max-wait-us is kept small (200) so a closed loop that never fills
# max_batch flushes promptly instead of idling out the window.  One record
# per (policy, workers) point lands in BENCH_serve.json with qps,
# p50/p95/p99 and ns_per_iter = 1e9/qps so the check_bench.py gate reads
# it like any other time-per-unit metric.  After the sweep, a hot-reload
# latency record (op=serve_reload): median time from POST /reload to its
# 200 response, which the daemon sends only once the next generation is
# built, published, and serving — the control-plane cost of a zero-
# downtime swap.  The checked-in file is the regression reference for the
# >= 2x dynamic-batching QPS claim and the >= 30% cached-p50 claim.
# Knobs: VSAN_SERVE_SCALE (corpus scale, default 1.0),
# VSAN_SERVE_DURATION_S (seconds per point, default 4),
# VSAN_SERVE_WORKERS (default "1 2 4 8 16").
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if [[ "${1:-}" == "--retrieval" ]]; then
  BUILD_DIR="${2:-$REPO_ROOT/build}"
  OUT="$REPO_ROOT/BENCH_retrieval.json"
  cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_retrieval
  "$BUILD_DIR/bench/bench_retrieval" > "$OUT"
  echo "wrote $OUT"
  exit 0
fi

if [[ "${1:-}" == "--serve" ]]; then
  BUILD_DIR="${2:-$REPO_ROOT/build}"
  OUT="$REPO_ROOT/BENCH_serve.json"
  SCALE="${VSAN_SERVE_SCALE:-1.0}"
  DURATION="${VSAN_SERVE_DURATION_S:-4}"
  WORKER_SWEEP="${VSAN_SERVE_WORKERS:-1 2 4 8 16}"
  cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target vsan_cli vsan_serve vsan_loadgen

  CKPT="$(mktemp --suffix=.ckpt)"
  SERVE_LOG="$(mktemp)"
  RESULTS="$(mktemp)"
  SERVE_PID=""
  cleanup_serve() {
    [[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null || true
    rm -f "$CKPT" "$SERVE_LOG" "$RESULTS"
  }
  trap cleanup_serve EXIT

  "$BUILD_DIR/tools/vsan_cli" train --dataset=beauty --scale="$SCALE" \
    --model=vsan --epochs=1 --d=64 --max-len=10 --batch=64 --seed=7 \
    --save="$CKPT"

  # policy  max_batch  cache_mb
  for spec in "batch1 1 0" "dynamic 32 0" "dynamic_cache 32 64"; do
    read -r POLICY MAX_BATCH CACHE_MB <<< "$spec"
    : > "$SERVE_LOG"
    "$BUILD_DIR/tools/vsan_serve" --checkpoint="$CKPT" --port=0 \
      --retrieval=exact --threads=16 --max-batch="$MAX_BATCH" \
      --max-wait-us=200 --max-queue=1024 --cache-mb="$CACHE_MB" \
      > "$SERVE_LOG" 2>&1 &
    SERVE_PID=$!
    for _ in $(seq 1 100); do
      grep -q '^READY' "$SERVE_LOG" && break
      sleep 0.2
    done
    PORT="$(sed -n 's/^READY port=\([0-9]*\).*/\1/p' "$SERVE_LOG")"
    if [[ -z "$PORT" ]]; then
      echo "error: vsan_serve did not come up for policy $POLICY" >&2
      cat "$SERVE_LOG" >&2
      exit 1
    fi
    for WORKERS in $WORKER_SWEEP; do
      echo "serve: policy=$POLICY workers=$WORKERS" >&2
      LINE="$("$BUILD_DIR/tools/vsan_loadgen" --port="$PORT" \
        --dataset=beauty --scale="$SCALE" --workers="$WORKERS" \
        --duration-s="$DURATION" --repeat-mix=0.7 --zipf=1.5 \
        --history-len=10 --seed=1 --json)"
      printf '%s\t%s\t%s\n' "$POLICY" "$CACHE_MB" "$LINE" >> "$RESULTS"
    done
    kill -TERM "$SERVE_PID"
    wait "$SERVE_PID" || true
    SERVE_PID=""
  done

  # Hot-reload latency: POST /reload with no body re-loads the same
  # checkpoint; the 200 comes back only after the next generation is
  # loaded, index/stages built, published, and the superseded cache
  # entries purged — so response time IS time-to-first-new-generation-
  # response.  The old generation serves throughout (zero downtime); this
  # measures the control-plane swap cost, median of 5.
  : > "$SERVE_LOG"
  "$BUILD_DIR/tools/vsan_serve" --checkpoint="$CKPT" --port=0 \
    --retrieval=exact --threads=16 --max-batch=32 --max-wait-us=200 \
    --max-queue=1024 --cache-mb=64 > "$SERVE_LOG" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    grep -q '^READY' "$SERVE_LOG" && break
    sleep 0.2
  done
  PORT="$(sed -n 's/^READY port=\([0-9]*\).*/\1/p' "$SERVE_LOG")"
  if [[ -z "$PORT" ]]; then
    echo "error: vsan_serve did not come up for the reload measurement" >&2
    cat "$SERVE_LOG" >&2
    exit 1
  fi
  RELOAD_JSON="$(python3 - "$PORT" <<'EOF'
import http.client, json, statistics, sys, time
port = int(sys.argv[1])
reload_ms = []
for _ in range(5):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    start = time.monotonic_ns()
    conn.request("POST", "/reload", body=b"",
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    body = response.read()
    elapsed_ms = (time.monotonic_ns() - start) / 1e6
    conn.close()
    if response.status != 200:
        sys.stderr.write(f"error: POST /reload -> {response.status}: "
                         f"{body!r}\n")
        sys.exit(1)
    reload_ms.append(elapsed_ms)
print(json.dumps({"reloads": len(reload_ms),
                  "p50_ms": round(statistics.median(reload_ms), 3),
                  "max_ms": round(max(reload_ms), 3)}))
EOF
)"
  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID" || true
  SERVE_PID=""

  python3 - "$RESULTS" "$OUT" "$RELOAD_JSON" <<'EOF'
import json, sys
benchmarks = []
for line in open(sys.argv[1]):
    policy, cache_mb, payload = line.rstrip("\n").split("\t", 2)
    rec = json.loads(payload)
    benchmarks.append({
        "op": "serve",
        "model": "vsan",
        "policy": policy,
        "cache": "on" if int(cache_mb) > 0 else "off",
        "workers": rec["workers"],
        "qps": round(rec["qps"], 2),
        "p50_ms": round(rec["p50_ms"], 4),
        "p95_ms": round(rec["p95_ms"], 4),
        "p99_ms": round(rec["p99_ms"], 4),
        "requests": rec["requests"],
        "rejected": rec["rejected"],
        "resets": rec.get("resets", 0),
        "retries": rec.get("retries", 0),
        "gave_ups": rec.get("gave_ups", 0),
        "errors": rec["errors"],
        "cache_hits": rec["cache_hits"],
        "repeat_mix": rec["repeat_mix"],
        # 1e9 / qps: time per served request, so check_bench.py's default
        # higher-is-worse gate applies unchanged.
        "ns_per_iter": round(1e9 / rec["qps"], 1) if rec["qps"] > 0 else None,
    })
reload_rec = json.loads(sys.argv[3])
benchmarks.append({
    "op": "serve_reload",
    "model": "vsan",
    "policy": "dynamic_cache",
    "reloads": reload_rec["reloads"],
    "p50_ms": reload_rec["p50_ms"],
    "max_ms": reload_rec["max_ms"],
    # Median swap latency as ns so a check_bench.py diff of two
    # BENCH_serve.json files gates reload cost like any other record.
    "ns_per_iter": round(reload_rec["p50_ms"] * 1e6, 1),
})
json.dump({"op_note": "serving daemon latency-vs-QPS (closed loop)",
           "benchmarks": benchmarks}, open(sys.argv[2], "w"), indent=1)
print(f"wrote {sys.argv[2]} ({len(benchmarks)} records)")
EOF
  exit 0
fi

if [[ "${1:-}" == "--trace" ]]; then
  BUILD_DIR="${2:-$REPO_ROOT/build}"
  cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target bench_micro_train trace_summary
  TRACE_JSON="$(mktemp --suffix=.json)"
  SUMMARY="$(mktemp)"
  trap 'rm -f "$TRACE_JSON" "$SUMMARY"' EXIT
  VSAN_TRACE_OUT="$TRACE_JSON" "$BUILD_DIR/bench/bench_micro_train" \
    --benchmark_filter='BM_VsanTrainEpoch_SeqLen/80/1$' \
    --benchmark_min_time=0.1
  "$BUILD_DIR/tools/trace_summary" "$TRACE_JSON" | tee "$SUMMARY"
  if ! grep -q '^by_category' "$SUMMARY"; then
    echo "error: trace_summary produced no category table" >&2
    exit 1
  fi
  exit 0
fi

# Warn (or, under VSAN_REQUIRE_RELEASE_BENCH=1, fail) when the
# google-benchmark library linked into a just-produced JSON was a debug
# build.  $1 = benchmark JSON path.
check_bench_library() {
  local build_type
  build_type="$(python3 -c '
import json, sys
print(json.load(open(sys.argv[1]))["context"].get("library_build_type", "unknown"))
' "$1")"
  if [[ "$build_type" != "release" ]]; then
    echo "warning: google-benchmark library build type is '$build_type'," \
      "not 'release'; timings include debug-library overhead (configure" \
      "with -DVSAN_BENCHMARK_SOURCE_DIR=<checkout> for a Release lib)" >&2
    if [[ "${VSAN_REQUIRE_RELEASE_BENCH:-0}" == "1" ]]; then
      echo "error: VSAN_REQUIRE_RELEASE_BENCH=1 and the benchmark library" \
        "is not a release build" >&2
      exit 1
    fi
  fi
}

if [[ "${1:-}" == "--autotune" ]]; then
  BUILD_DIR="${2:-$REPO_ROOT/build}"
  OUT="$REPO_ROOT/BENCH_autotune.json"
  cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_micro_ops autotune
  TUNE_CONFIG="$(mktemp --suffix=.vsantune)"
  DEFAULT_JSON="$(mktemp)"
  TUNED_JSON="$(mktemp)"
  trap 'rm -f "$TUNE_CONFIG" "$DEFAULT_JSON" "$TUNED_JSON"' EXIT
  "$BUILD_DIR/tools/autotune" --out="$TUNE_CONFIG" \
    --budget-ms="${VSAN_AUTOTUNE_BUDGET_MS:-15000}" --apply-check
  GEMM_FILTER='BM_MatMul2D|BM_BatchedMatMul|BM_GemmBf16|BM_GemmModelShape'
  "$BUILD_DIR/bench/bench_micro_ops" --benchmark_format=json \
    --benchmark_filter="$GEMM_FILTER" > "$DEFAULT_JSON"
  check_bench_library "$DEFAULT_JSON"
  VSAN_TUNE_CONFIG="$TUNE_CONFIG" "$BUILD_DIR/bench/bench_micro_ops" \
    --benchmark_format=json \
    --benchmark_filter="$GEMM_FILTER" > "$TUNED_JSON"
  python3 "$REPO_ROOT/tools/distill_bench.py" --autotune \
    "$DEFAULT_JSON" "$TUNED_JSON" "$OUT"
  exit 0
fi

GATE=0
if [[ "${1:-}" == "--gate" ]]; then
  GATE=1
  shift
fi

BUILD_DIR="${1:-$REPO_ROOT/build}"
FILTER="${2:-}"
OUT="$REPO_ROOT/BENCH_micro.json"
if [[ "$GATE" == "1" ]]; then
  if [[ ! -f "$OUT" ]]; then
    echo "error: --gate needs a committed $OUT baseline" >&2
    exit 1
  fi
  BASELINE="$OUT"
  OUT="$(mktemp --suffix=.json)"
fi

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target bench_micro_ops bench_micro_train

OPS_JSON="$(mktemp)"
TRAIN_JSON="$(mktemp)"
POOLOFF_JSON="$(mktemp)"
if [[ "$GATE" == "1" ]]; then
  trap 'rm -f "$OPS_JSON" "$TRAIN_JSON" "$POOLOFF_JSON" "$OUT"' EXIT
else
  trap 'rm -f "$OPS_JSON" "$TRAIN_JSON" "$POOLOFF_JSON"' EXIT
fi

BENCH_ARGS=(--benchmark_format=json)
if [[ -n "$FILTER" ]]; then
  BENCH_ARGS+=("--benchmark_filter=$FILTER")
fi

"$BUILD_DIR/bench/bench_micro_ops" "${BENCH_ARGS[@]}" > "$OPS_JSON"
check_bench_library "$OPS_JSON"
"$BUILD_DIR/bench/bench_micro_train" "${BENCH_ARGS[@]}" > "$TRAIN_JSON"
# The allocation-churn probe again with the tensor pool disabled, so the
# emitted file carries a pool-on / pool-off pair for the same workload.
VSAN_POOL=0 "$BUILD_DIR/bench/bench_micro_train" \
  --benchmark_format=json \
  --benchmark_filter='BM_AllocChurn' > "$POOLOFF_JSON"

python3 "$REPO_ROOT/tools/distill_bench.py" \
  "$OPS_JSON" "$TRAIN_JSON" "$POOLOFF_JSON" "$OUT"

if [[ "$GATE" == "1" ]]; then
  python3 "$REPO_ROOT/tools/check_bench.py" \
    ${VSAN_BENCH_TOLERANCE:+--tolerance="$VSAN_BENCH_TOLERANCE"} \
    "$BASELINE" "$OUT"
fi
