// Offline GEMM autotuner (tensor/autotune.h).  Sweeps cache-derived block-
// size candidates on the repo's real GEMM shapes with a generous budget and
// writes a VSANTUNE1 config, which vsan_cli --tune-config= / the
// VSAN_TUNE_CONFIG env var apply at startup.  Run once per host; applying
// the result never changes numerical results (the blocked GEMM is bitwise-
// invariant to block sizes).

#include <cstdio>
#include <iostream>
#include <string>

#include "tensor/autotune.h"
#include "tensor/gemm.h"
#include "util/flags.h"

namespace vsan {
namespace {

int Usage() {
  std::cerr <<
      "usage: autotune [--out=tuned.vsantune] [--budget-ms=15000]\n"
      "                [--repeats=3] [--apply-check]\n"
      "  --out         write the winning block sizes as a VSANTUNE1 file\n"
      "  --budget-ms   sweep time budget (candidates are visited most-\n"
      "                promising-first, so a small budget still helps)\n"
      "  --repeats     timed repetitions per candidate/shape (min is kept)\n"
      "  --apply-check reload the written file and verify it round-trips\n";
  return 2;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (!flags.positional().empty()) return Usage();

  autotune::TuneOptions options;
  options.budget_ms = flags.GetDouble("budget-ms", 15000.0);
  options.repeats = static_cast<int>(flags.GetInt("repeats", 3));

  const autotune::CacheInfo cache = autotune::DetectCacheInfo();
  std::printf("cache: L1d %lld KiB, L2 %lld KiB, L3 %lld KiB (%s)\n",
              static_cast<long long>(cache.l1d_bytes / 1024),
              static_cast<long long>(cache.l2_bytes / 1024),
              static_cast<long long>(cache.l3_bytes / 1024),
              cache.detected ? "sysfs" : "fallback defaults");

  const autotune::TuneResult result = autotune::TuneGemmBlockSizes(options);
  std::printf("candidates: %lld of %lld within budget\n",
              static_cast<long long>(result.candidates_tried),
              static_cast<long long>(result.candidates_total));
  std::printf("baseline: mc=%lld nc=%lld kc=%lld\n",
              static_cast<long long>(result.baseline.mc),
              static_cast<long long>(result.baseline.nc),
              static_cast<long long>(result.baseline.kc));
  std::printf("best:     mc=%lld nc=%lld kc=%lld\n",
              static_cast<long long>(result.best.mc),
              static_cast<long long>(result.best.nc),
              static_cast<long long>(result.best.kc));
  std::printf("%-14s %14s %14s %8s\n", "shape", "default_ns", "tuned_ns",
              "speedup");
  for (const autotune::ShapeTiming& t : result.timings) {
    std::printf("%-14s %14.0f %14.0f %7.3fx\n", t.shape.name.c_str(),
                t.default_ns, t.tuned_ns, t.speedup);
  }
  std::printf("total: %.0f ns -> %.0f ns (%.3fx)\n", result.total_default_ns,
              result.total_best_ns,
              result.total_best_ns > 0
                  ? result.total_default_ns / result.total_best_ns
                  : 0.0);

  const std::string out = flags.GetString("out");
  if (!out.empty()) {
    Status status = autotune::SaveTuneConfig(out, result.best, result.cache);
    if (!status.ok()) {
      std::cerr << "error: " << status.ToString() << "\n";
      return 1;
    }
    std::printf("wrote %s\n", out.c_str());
    if (flags.GetBool("apply-check", false)) {
      Result<GemmBlockSizes> loaded = autotune::LoadTuneConfig(out);
      if (!loaded.ok()) {
        std::cerr << "error: round-trip failed: "
                  << loaded.status().ToString() << "\n";
        return 1;
      }
      if (loaded.value().mc != result.best.mc ||
          loaded.value().nc != result.best.nc ||
          loaded.value().kc != result.best.kc) {
        std::cerr << "error: round-trip mismatch\n";
        return 1;
      }
      std::printf("round-trip ok\n");
    }
  }
  return 0;
}

}  // namespace
}  // namespace vsan

int main(int argc, char** argv) { return vsan::Main(argc, argv); }
