// Kernel micro-benchmarks (google-benchmark) backing the complexity
// analysis of Sec. IV-F: attention is O(n^2 d), the FFN O(n d^2), the output
// projection O(n d N).
//
// The parallelized kernels carry a trailing `threads` argument
// (1/2/4/hardware_concurrency, deduplicated) that resizes the global
// ThreadPool, so the emitted JSON captures the scaling curve of each kernel
// rather than a single-thread point.  Results are bitwise-identical across
// the sweep (tests/parallel_equivalence_test.cc); only the time changes.

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "autograd/ops.h"
#include "nn/attention.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace vsan {
namespace {

std::vector<int64_t> ThreadCounts() {
  std::vector<int64_t> counts = {1, 2, 4};
  const int64_t hw = std::thread::hardware_concurrency();
  if (hw > 4) counts.push_back(hw);
  return counts;
}

// The last benchmark argument is the pool size for this run.
void UseThreads(const benchmark::State& state, int arg_index) {
  ThreadPool::SetGlobalNumThreads(
      static_cast<int>(state.range(arg_index)));
}

void BM_MatMul2D(benchmark::State& state) {
  const int64_t n = state.range(0);
  UseThreads(state, 1);
  Rng rng(1);
  Tensor a = Tensor::RandomNormal({n, n}, &rng);
  Tensor b = Tensor::RandomNormal({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul2D(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul2D)->ArgsProduct({{32, 64, 128, 256}, ThreadCounts()});

// Sweeps the GemmBlockSizes tuning struct on the single-thread 256^3 GEMM;
// results are bitwise-identical across configs (tests/gemm_blocked_test.cc),
// only the time changes.  Args are (mc, nc, kc).
void BM_MatMul2DBlockSweep(benchmark::State& state) {
  ThreadPool::SetGlobalNumThreads(1);
  const GemmBlockSizes previous = GetGemmBlockSizes();
  GemmBlockSizes bs;
  bs.mc = state.range(0);
  bs.nc = state.range(1);
  bs.kc = state.range(2);
  SetGemmBlockSizes(bs);
  Rng rng(1);
  const int64_t n = 256;
  Tensor a = Tensor::RandomNormal({n, n}, &rng);
  Tensor b = Tensor::RandomNormal({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul2D(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  SetGemmBlockSizes(previous);
}
BENCHMARK(BM_MatMul2DBlockSweep)
    ->Args({24, 256, 128})
    ->Args({48, 128, 128})
    ->Args({48, 256, 256})
    ->Args({96, 256, 256})
    ->Args({48, 512, 512})
    ->Args({192, 512, 256});

void BM_MatMul2DTransposed(benchmark::State& state) {
  const int64_t n = state.range(0);
  UseThreads(state, 1);
  Rng rng(2);
  Tensor a = Tensor::RandomNormal({n, n}, &rng);
  Tensor b = Tensor::RandomNormal({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul2D(a, b, false, true));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul2DTransposed)->ArgsProduct({{64, 128}, ThreadCounts()});

void BM_BatchedMatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  UseThreads(state, 1);
  Rng rng(3);
  Tensor a = Tensor::RandomNormal({16, n, n}, &rng);
  Tensor b = Tensor::RandomNormal({16, n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BatchedMatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 16 * n * n * n);
}
BENCHMARK(BM_BatchedMatMul)->ArgsProduct({{16, 32, 64}, ThreadCounts()});

// The bf16-storage GEMM through the MatMulPrecision dispatch, on the same
// cube sizes as BM_MatMul2D so the fp32/bf16 ratio reads off directly at
// equal args.  The label records which micro-kernel variant was compiled
// in (avx512bf16 / vector-widen / scalar) — the ratio is meaningless
// without it: on parts where vdpbf16ps is microcoded, bf16 loses to the
// fp32 FMA path even though it moves half the panel bytes (see
// EXPERIMENTS.md).
void BM_GemmBf16(benchmark::State& state) {
  const int64_t n = state.range(0);
  UseThreads(state, 1);
  Rng rng(1);
  Tensor a = Tensor::RandomNormal({n, n}, &rng);
  Tensor b = Tensor::RandomNormal({n, n}, &rng);
  ScopedMatMulPrecision precision(MatMulPrecision::kBf16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul2D(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  state.SetLabel(GemmBf16KernelVariant());
}
BENCHMARK(BM_GemmBf16)->ArgsProduct({{32, 64, 128, 256}, ThreadCounts()});

// Real model shapes (the autotuner's sweep set): ScoreBatch's item-matrix
// product, the training logits projection, and the attention score block.
// Args are (m, n, k, precision) with precision 0=fp32, 1=bf16.
void BM_GemmModelShape(benchmark::State& state) {
  ThreadPool::SetGlobalNumThreads(1);
  const int64_t m = state.range(0);
  const int64_t n = state.range(1);
  const int64_t k = state.range(2);
  Rng rng(5);
  Tensor a = Tensor::RandomNormal({m, k}, &rng);
  Tensor b = Tensor::RandomNormal({k, n}, &rng);
  ScopedMatMulPrecision precision(state.range(3) != 0
                                      ? MatMulPrecision::kBf16
                                      : MatMulPrecision::kFp32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul2D(a, b));
  }
  state.SetItemsProcessed(state.iterations() * m * n * k);
}
BENCHMARK(BM_GemmModelShape)
    ->ArgsProduct({{256}, {4096}, {64}, {0, 1}})     // score_batch
    ->ArgsProduct({{1024}, {4096}, {64}, {0, 1}})    // logits
    ->ArgsProduct({{200}, {200}, {64}, {0, 1}});     // attn_scores

void BM_SoftmaxLastDim(benchmark::State& state) {
  const int64_t cols = state.range(0);
  UseThreads(state, 1);
  Rng rng(4);
  Tensor x = Tensor::RandomNormal({256, cols}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxLastDim(x));
  }
  state.SetItemsProcessed(state.iterations() * 256 * cols);
}
BENCHMARK(BM_SoftmaxLastDim)
    ->ArgsProduct({{128, 1024, 4096}, ThreadCounts()});

void BM_LayerNormForwardBackward(benchmark::State& state) {
  const int64_t d = state.range(0);
  ThreadPool::SetGlobalNumThreads(1);  // not a parallelized kernel
  Rng rng(5);
  Tensor x = Tensor::RandomNormal({256, d}, &rng);
  Tensor gamma = Tensor::Ones({d});
  Tensor beta = Tensor::Zeros({d});
  for (auto _ : state) {
    Variable xv(x, /*requires_grad=*/true);
    Variable gv(gamma, true);
    Variable bv(beta, true);
    Variable loss = ops::Mean(ops::LayerNorm(xv, gv, bv));
    loss.Backward();
    benchmark::DoNotOptimize(xv.grad());
  }
  state.SetItemsProcessed(state.iterations() * 256 * d);
}
BENCHMARK(BM_LayerNormForwardBackward)->Arg(32)->Arg(128);

void BM_EmbeddingLookup(benchmark::State& state) {
  const int64_t steps = state.range(0);
  ThreadPool::SetGlobalNumThreads(1);  // not a parallelized kernel
  Rng rng(6);
  Tensor table = Tensor::RandomNormal({5000, 64}, &rng);
  std::vector<int32_t> indices(64 * steps);
  for (auto& idx : indices) {
    idx = static_cast<int32_t>(rng.UniformInt(1, 4999));
  }
  Variable tv(table, /*requires_grad=*/false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::EmbeddingLookup(tv, indices, 64, steps));
  }
  state.SetItemsProcessed(state.iterations() * 64 * steps);
}
BENCHMARK(BM_EmbeddingLookup)->Arg(30)->Arg(60);

// The O(n^2 d) claim: one self-attention block forward over [8, n, d].
void BM_AttentionBlockForward(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t d = state.range(1);
  UseThreads(state, 2);
  Rng rng(7);
  nn::SelfAttentionBlockConfig cfg;
  cfg.d = d;
  cfg.dropout = 0.0f;
  nn::SelfAttentionBlock block(cfg, &rng);
  block.SetTraining(false);
  Tensor mask = nn::MakeCausalMask(n);
  Tensor x = Tensor::RandomNormal({8, n, d}, &rng);
  Rng drop(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        block.Forward(Variable::Constant(x), mask, &drop));
  }
  state.SetItemsProcessed(state.iterations() * 8 * n * n * d);
}
BENCHMARK(BM_AttentionBlockForward)
    ->ArgsProduct({{16, 32, 64, 128}, {32}, ThreadCounts()})
    ->ArgsProduct({{64}, {64}, ThreadCounts()});

}  // namespace
}  // namespace vsan

BENCHMARK_MAIN();
