// Ablation bench (DESIGN.md, not in the paper): the output projection of
// Eq. 19.  The paper uses a free W_g in R^{N x d}; this implementation
// defaults to tying the projection to the item-embedding table (plus a free
// per-item bias) because the free matrix starves in the sparse small-corpus
// regime.  This bench quantifies the choice on both presets.

#include <iostream>

#include "common/experiment.h"
#include "util/table_printer.h"

namespace vsan {
namespace bench {
namespace {

void RunDataset(DatasetKind kind,
                std::vector<std::vector<std::string>>* csv_rows) {
  const BenchConfig config = MakeBenchConfig(kind);
  const data::StrongSplit split = MakeSplit(config);
  std::cout << "\n=== Output-projection ablation -- " << DatasetName(kind)
            << " ===\n";

  TablePrinter table({"Variant", "NDCG@10", "Recall@10", "Recall@20"});
  for (const bool tie : {false, true}) {
    RunResult r = RunModelAveraged(
        [&] {
          core::VsanConfig cfg = MakeVsanConfig(config);
          cfg.tie_output = tie;
          cfg.next_k = (kind == DatasetKind::kML1M) ? 2 : 1;
          return std::make_unique<core::Vsan>(cfg);
        },
        split, config);
    const std::string variant = tie ? "tied (impl. default)" : "free W_g (Eq. 19)";
    table.AddRow({variant, Pct(r.metrics.ndcg.at(10)),
                  Pct(r.metrics.recall.at(10)), Pct(r.metrics.recall.at(20))});
    csv_rows->push_back({DatasetName(kind), variant,
                         Pct(r.metrics.ndcg.at(10)),
                         Pct(r.metrics.recall.at(10)),
                         Pct(r.metrics.recall.at(20))});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace vsan

int main() {
  using namespace vsan::bench;
  std::vector<std::vector<std::string>> csv_rows = {
      {"dataset", "variant", "ndcg@10", "recall@10", "recall@20"}};
  RunDataset(DatasetKind::kBeauty, &csv_rows);
  RunDataset(DatasetKind::kML1M, &csv_rows);
  WriteCsv("ablation_output", csv_rows);
  return 0;
}
