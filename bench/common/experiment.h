#ifndef VSAN_BENCH_COMMON_EXPERIMENT_H_
#define VSAN_BENCH_COMMON_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/vsan.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/recommender.h"

// Shared harness for the experiment binaries that regenerate the paper's
// tables and figures.  Every binary:
//   * builds the two synthetic dataset presets at VSAN_BENCH_SCALE,
//   * trains the models it needs with the per-dataset hyper-parameters below,
//   * prints the paper's table/figure shape and writes a CSV next to the
//     binary.
//
// Environment knobs (see EXPERIMENTS.md):
//   VSAN_BENCH_SCALE   corpus scale factor vs Table II   (default 0.05)
//   VSAN_BENCH_EPOCHS  training epochs per model          (default 8)
//   VSAN_BENCH_D       embedding dimension                (default 32)

namespace vsan {
namespace bench {

enum class DatasetKind { kBeauty, kML1M };

std::string DatasetName(DatasetKind kind);

// Per-dataset experiment defaults, derived from Sec. V-D scaled to the
// single-core budget.
struct BenchConfig {
  DatasetKind kind = DatasetKind::kBeauty;
  double scale = 0.05;
  int64_t d = 32;
  int64_t max_len = 30;     // n (paper: 50 Beauty / 200 ML-1M)
  int32_t h1 = 1, h2 = 1;   // paper: (1,1) Beauty, (3,1) ML-1M
  float dropout = 0.5f;     // paper: 0.5 Beauty / 0.2 ML-1M
  int32_t epochs = 8;
  int64_t batch_size = 64;
  float learning_rate = 1e-3f;  // paper setting
  int32_t heldout_users = 60;   // per split (validation == test size)
  uint64_t seed = 7;
};

// Reads the env knobs and produces the config for one dataset.
BenchConfig MakeBenchConfig(DatasetKind kind);

// Synthesizes the corpus for `config` and splits it (strong generalization).
data::StrongSplit MakeSplit(const BenchConfig& config);

// Result of training + evaluating one model.
struct RunResult {
  std::string model;
  eval::EvalResult metrics;
  double train_seconds = 0.0;
  double eval_seconds = 0.0;
};

// Trains `model` on the split's training users and evaluates on its test
// users at cutoffs {10, 20}.
RunResult RunModel(SequentialRecommender* model, const data::StrongSplit& split,
                   const BenchConfig& config);

// Trains `runs` fresh models (different training seeds) via `factory` and
// returns metrics averaged across runs, mirroring the paper's
// "average performance under five times" (Sec. V-D).  `runs` defaults to
// the VSAN_BENCH_SEEDS env knob (2).
RunResult RunModelAveraged(
    const std::function<std::unique_ptr<SequentialRecommender>()>& factory,
    const data::StrongSplit& split, const BenchConfig& config, int32_t runs = 0);

// --- Model factories with the bench defaults ---------------------------------

core::VsanConfig MakeVsanConfig(const BenchConfig& config);
std::unique_ptr<SequentialRecommender> MakeModel(const std::string& name,
                                                 const BenchConfig& config);
// All nine Table III models, in the paper's row order.
std::vector<std::string> TableIIIModelNames();

// --- Reporting ----------------------------------------------------------------

// Formats a fraction as the paper's percentage cells ("6.776").
std::string Pct(double fraction);

// Writes rows to "<name>.csv" in the working directory and logs the path.
void WriteCsv(const std::string& name,
              const std::vector<std::vector<std::string>>& rows);

}  // namespace bench
}  // namespace vsan

#endif  // VSAN_BENCH_COMMON_EXPERIMENT_H_
