#include "common/experiment.h"

#include <algorithm>

#include "models/bpr.h"
#include "models/caser.h"
#include "models/fpmc.h"
#include "models/gru4rec.h"
#include "models/pop.h"
#include "models/sasrec.h"
#include "models/svae.h"
#include "models/transrec.h"
#include "util/csv_writer.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace vsan {
namespace bench {

std::string DatasetName(DatasetKind kind) {
  return kind == DatasetKind::kBeauty ? "Beauty" : "ML-1M";
}

BenchConfig MakeBenchConfig(DatasetKind kind) {
  BenchConfig config;
  config.kind = kind;
  config.scale = GetEnvDouble("VSAN_BENCH_SCALE", 0.05);
  config.d = GetEnvInt("VSAN_BENCH_D", 32);
  config.epochs = static_cast<int32_t>(GetEnvInt("VSAN_BENCH_EPOCHS", 25));
  if (kind == DatasetKind::kBeauty) {
    config.max_len = 30;
    // Validation-selected at bench scale (the Table IV sweep): one
    // inference block, latent decoded directly.  The paper's full-scale
    // choice is (1, 1).
    config.h1 = 1;
    config.h2 = 0;
    // The paper uses 0.5 at full scale; the Fig. 5 sweep at bench scale
    // peaks at 0.2 (smaller corpora need less regularization).
    config.dropout = 0.2f;
    // Paper holds out 1,200 Beauty users.
    config.heldout_users = std::max<int32_t>(
        40, static_cast<int32_t>(1200 * config.scale));
  } else {
    config.max_len = 60;
    // Validation-selected at bench scale; the paper's full-scale choice is
    // (3, 1).
    config.h1 = 1;
    config.h2 = 1;
    config.dropout = 0.2f;
    // Paper holds out 750 ML-1M users.
    config.heldout_users = std::max<int32_t>(
        30, static_cast<int32_t>(750 * config.scale));
  }
  return config;
}

data::StrongSplit MakeSplit(const BenchConfig& config) {
  const data::SyntheticConfig syn =
      config.kind == DatasetKind::kBeauty
          ? data::BeautyLikeConfig(config.scale)
          : data::ML1MLikeConfig(config.scale);
  const data::SequenceDataset dataset = data::GenerateSynthetic(syn);
  data::SplitOptions split_opts;
  split_opts.num_validation_users = config.heldout_users;
  split_opts.num_test_users = config.heldout_users;
  split_opts.fold_in_fraction = 0.8;  // Sec. V-A
  split_opts.seed = config.seed;
  return data::MakeStrongSplit(dataset, split_opts);
}

RunResult RunModel(SequentialRecommender* model,
                   const data::StrongSplit& split, const BenchConfig& config) {
  TrainOptions train_opts;
  train_opts.epochs = config.epochs;
  train_opts.batch_size = config.batch_size;
  train_opts.learning_rate = config.learning_rate;
  train_opts.seed = config.seed + 101;

  RunResult result;
  result.model = model->name();
  Stopwatch train_timer;
  model->Fit(split.train, train_opts);
  result.train_seconds = train_timer.ElapsedSeconds();

  eval::EvalOptions eval_opts;
  eval_opts.cutoffs = {10, 20};
  Stopwatch eval_timer;
  result.metrics = eval::EvaluateRanking(*model, split.test, eval_opts);
  result.eval_seconds = eval_timer.ElapsedSeconds();
  return result;
}

RunResult RunModelAveraged(
    const std::function<std::unique_ptr<SequentialRecommender>()>& factory,
    const data::StrongSplit& split, const BenchConfig& config, int32_t runs) {
  if (runs <= 0) {
    runs = static_cast<int32_t>(GetEnvInt("VSAN_BENCH_SEEDS", 2));
  }
  RunResult total;
  for (int32_t r = 0; r < runs; ++r) {
    BenchConfig run_config = config;
    run_config.seed = config.seed + 1000 * r;
    std::unique_ptr<SequentialRecommender> model = factory();
    RunResult one = RunModel(model.get(), split, run_config);
    total.model = one.model;
    total.train_seconds += one.train_seconds;
    total.eval_seconds += one.eval_seconds;
    for (const auto& [n, v] : one.metrics.ndcg) total.metrics.ndcg[n] += v;
    for (const auto& [n, v] : one.metrics.recall) total.metrics.recall[n] += v;
    for (const auto& [n, v] : one.metrics.precision) {
      total.metrics.precision[n] += v;
    }
  }
  for (auto& [n, v] : total.metrics.ndcg) v /= runs;
  for (auto& [n, v] : total.metrics.recall) v /= runs;
  for (auto& [n, v] : total.metrics.precision) v /= runs;
  return total;
}

core::VsanConfig MakeVsanConfig(const BenchConfig& config) {
  core::VsanConfig cfg;
  cfg.max_len = config.max_len;
  cfg.d = config.d;
  cfg.h1 = config.h1;
  cfg.h2 = config.h2;
  cfg.dropout = config.dropout;
  // KL weight re-tuned at bench scale via the Fig. 6 sweep: annealed to a
  // small beta_max (large beta collapses the posterior on small corpora).
  cfg.beta_max = 0.002f;
  cfg.anneal_steps = 400;
  cfg.next_k = 1;
  return cfg;
}

std::vector<std::string> TableIIIModelNames() {
  return {"POP",   "BPR",   "FPMC", "TransRec", "GRU4Rec",
          "Caser", "SVAE",  "SASRec", "VSAN"};
}

std::unique_ptr<SequentialRecommender> MakeModel(const std::string& name,
                                                 const BenchConfig& config) {
  const int64_t d = config.d;
  if (name == "POP") return std::make_unique<models::Pop>();
  if (name == "BPR") {
    models::Bpr::Config cfg;
    cfg.d = d;
    return std::make_unique<models::Bpr>(cfg);
  }
  if (name == "FPMC") {
    models::Fpmc::Config cfg;
    cfg.d = d;
    return std::make_unique<models::Fpmc>(cfg);
  }
  if (name == "TransRec") {
    models::TransRec::Config cfg;
    cfg.d = d;
    return std::make_unique<models::TransRec>(cfg);
  }
  if (name == "GRU4Rec") {
    models::Gru4Rec::Config cfg;
    cfg.max_len = config.max_len;
    cfg.d = d;
    cfg.hidden = d;
    cfg.dropout = config.dropout;
    return std::make_unique<models::Gru4Rec>(cfg);
  }
  if (name == "Caser") {
    models::Caser::Config cfg;
    cfg.window = 5;
    cfg.target_k = 2;
    cfg.d = d;
    cfg.dropout = config.dropout;
    return std::make_unique<models::Caser>(cfg);
  }
  if (name == "SVAE") {
    models::Svae::Config cfg;
    cfg.max_len = config.max_len;
    cfg.d = d;
    cfg.hidden = d;
    cfg.latent = d / 2;
    cfg.next_k = 4;  // the paper's best-k for SVAE (Sec. V-G.1)
    cfg.dropout = config.dropout;
    return std::make_unique<models::Svae>(cfg);
  }
  if (name == "SASRec") {
    models::SasRec::Config cfg;
    cfg.max_len = config.max_len;
    cfg.d = d;
    cfg.num_blocks = std::max(config.h1, 1);
    cfg.dropout = config.dropout;
    return std::make_unique<models::SasRec>(cfg);
  }
  if (name == "VSAN") {
    core::VsanConfig cfg = MakeVsanConfig(config);
    // The paper's best k is 2; at bench scale the Fig. 3 sweep finds k=2
    // best on the dense preset and k=1 on the sparse one.
    cfg.next_k = (config.kind == DatasetKind::kML1M) ? 2 : 1;
    return std::make_unique<core::Vsan>(cfg);
  }
  VSAN_LOG_FATAL << "unknown model " << name;
  return nullptr;
}

std::string Pct(double fraction) { return FormatDouble(fraction * 100.0, 3); }

void WriteCsv(const std::string& name,
              const std::vector<std::vector<std::string>>& rows) {
  const std::string path = name + ".csv";
  CsvWriter writer(path);
  if (!writer.ok()) {
    VSAN_LOG_WARNING << "could not open " << path << " for writing";
    return;
  }
  for (const auto& row : rows) writer.WriteRow(row);
  VSAN_LOG_INFO << "wrote " << path;
}

}  // namespace bench
}  // namespace vsan
