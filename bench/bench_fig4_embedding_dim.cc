// Reproduces Fig. 4: performance of VSAN and SASRec as the embedding
// dimension d varies.  The paper's claims: performance rises with d then
// saturates/declines, and VSAN tracks above SASRec.  The paper sweeps
// 10..400 at full scale; the bench sweeps a proportionally scaled grid.

#include <iostream>

#include "common/experiment.h"
#include "models/sasrec.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace vsan {
namespace bench {
namespace {

void RunDataset(DatasetKind kind,
                std::vector<std::vector<std::string>>* csv_rows) {
  const BenchConfig base = MakeBenchConfig(kind);
  const data::StrongSplit split = MakeSplit(base);
  std::cout << "\n=== Fig. 4 -- " << DatasetName(kind)
            << " (NDCG@10 vs embedding dimension d) ===\n";

  TablePrinter table({"d", "VSAN NDCG@10", "SASRec NDCG@10"});
  for (int64_t d : {4, 8, 16, 32, 48, 64}) {
    BenchConfig config = base;
    config.d = d;
    RunResult vsan = RunModelAveraged(
        [&] {
          core::VsanConfig cfg = MakeVsanConfig(config);
          cfg.next_k = (kind == DatasetKind::kML1M) ? 2 : 1;
          return std::make_unique<core::Vsan>(cfg);
        },
        split, config, /*runs=*/1);
    RunResult sasrec = RunModelAveraged(
        [&] {
          models::SasRec::Config cfg;
          cfg.max_len = config.max_len;
          cfg.d = d;
          cfg.num_blocks = 1;
          cfg.dropout = config.dropout;
          return std::make_unique<models::SasRec>(cfg);
        },
        split, config, /*runs=*/1);
    table.AddRow({StrCat(d), Pct(vsan.metrics.ndcg.at(10)),
                  Pct(sasrec.metrics.ndcg.at(10))});
    csv_rows->push_back({DatasetName(kind), StrCat(d),
                         Pct(vsan.metrics.ndcg.at(10)),
                         Pct(sasrec.metrics.ndcg.at(10))});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace vsan

int main() {
  using namespace vsan::bench;
  std::vector<std::vector<std::string>> csv_rows = {
      {"dataset", "d", "vsan_ndcg@10", "sasrec_ndcg@10"}};
  RunDataset(DatasetKind::kBeauty, &csv_rows);
  RunDataset(DatasetKind::kML1M, &csv_rows);
  WriteCsv("fig4_embedding_dim", csv_rows);
  return 0;
}
