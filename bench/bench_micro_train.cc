// Training-step micro-benchmarks (google-benchmark) for the Sec. IV-F
// complexity comparison: VSAN's per-step cost vs sequence length n
// (expected ~quadratic once attention dominates) and vs SASRec / GRU4Rec
// at matched sizes (VSAN adds the latent layer without changing the
// asymptotics; the RNN is O(n d^2) but strictly sequential).

// Each benchmark carries a trailing `threads` argument
// (1/2/4/hardware_concurrency, deduplicated) that resizes the global
// ThreadPool so the JSON captures how a full training step scales: the
// GEMMs inside the forward/backward passes parallelize, the optimizer and
// tape walk do not, so this measures the end-to-end Amdahl ceiling rather
// than kernel-only scaling.

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "autograd/ops.h"
#include "core/vsan.h"
#include "data/synthetic.h"
#include "models/gru4rec.h"
#include "models/sasrec.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "tensor/pool.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace vsan {
namespace {

std::vector<int64_t> ThreadCounts() {
  std::vector<int64_t> counts = {1, 2, 4};
  const int64_t hw = std::thread::hardware_concurrency();
  if (hw > 4) counts.push_back(hw);
  return counts;
}

data::SequenceDataset MakeCorpus(int32_t seq_len) {
  data::SyntheticConfig cfg;
  cfg.num_users = 128;
  cfg.num_items = 300;
  cfg.num_categories = 10;
  cfg.min_seq_len = seq_len;
  cfg.max_seq_len = seq_len;
  cfg.seed = 11;
  return data::GenerateSynthetic(cfg);
}

// One Fit() epoch == 2 batches of 64 over 128 fixed-length users.
TrainOptions OneEpoch() {
  TrainOptions t;
  t.epochs = 1;
  t.batch_size = 64;
  return t;
}

void BM_VsanTrainEpoch_SeqLen(benchmark::State& state) {
  const int64_t n = state.range(0);
  ThreadPool::SetGlobalNumThreads(static_cast<int>(state.range(1)));
  data::SequenceDataset ds = MakeCorpus(static_cast<int32_t>(n));
  core::VsanConfig cfg;
  cfg.max_len = n;
  cfg.d = 32;
  cfg.dropout = 0.0f;
  for (auto _ : state) {
    core::Vsan model(cfg);
    model.Fit(ds, OneEpoch());
  }
}
BENCHMARK(BM_VsanTrainEpoch_SeqLen)
    ->ArgsProduct({{10, 20, 40, 80}, ThreadCounts()})
    ->Unit(benchmark::kMillisecond);

void BM_VsanTrainEpoch_Dim(benchmark::State& state) {
  const int64_t d = state.range(0);
  ThreadPool::SetGlobalNumThreads(static_cast<int>(state.range(1)));
  data::SequenceDataset ds = MakeCorpus(20);
  core::VsanConfig cfg;
  cfg.max_len = 20;
  cfg.d = d;
  cfg.dropout = 0.0f;
  for (auto _ : state) {
    core::Vsan model(cfg);
    model.Fit(ds, OneEpoch());
  }
}
BENCHMARK(BM_VsanTrainEpoch_Dim)
    ->ArgsProduct({{16, 32, 64}, ThreadCounts()})
    ->Unit(benchmark::kMillisecond);

// Crash-safety overhead probe at the n=80 point: the same epoch with (arg0
// = 1) and without (arg0 = 0) an end-of-epoch VSANCKP1 write
// (checkpoint_every_n_epochs=1, the default cadence).  The delta between
// the two rows bounds the cost of the divergence guards plus one atomic
// checkpoint write per epoch; the acceptance bar is <= 3%.
void BM_VsanTrainEpoch_Checkpointed(benchmark::State& state) {
  const bool checkpointed = state.range(0) != 0;
  ThreadPool::SetGlobalNumThreads(static_cast<int>(state.range(1)));
  data::SequenceDataset ds = MakeCorpus(80);
  core::VsanConfig cfg;
  cfg.max_len = 80;
  cfg.d = 32;
  cfg.dropout = 0.0f;
  TrainOptions opts = OneEpoch();
  if (checkpointed) {
    opts.checkpoint_dir = "/tmp/vsan_bench_ckpt";
    opts.checkpoint_every_n_epochs = 1;
  }
  for (auto _ : state) {
    core::Vsan model(cfg);
    model.Fit(ds, opts);
  }
}
BENCHMARK(BM_VsanTrainEpoch_Checkpointed)
    ->ArgsProduct({{0, 1}, ThreadCounts()})
    ->Unit(benchmark::kMillisecond);

void BM_SasRecTrainEpoch_SeqLen(benchmark::State& state) {
  const int64_t n = state.range(0);
  ThreadPool::SetGlobalNumThreads(static_cast<int>(state.range(1)));
  data::SequenceDataset ds = MakeCorpus(static_cast<int32_t>(n));
  models::SasRec::Config cfg;
  cfg.max_len = n;
  cfg.d = 32;
  cfg.num_blocks = 2;  // match VSAN's h1 + h2
  cfg.dropout = 0.0f;
  for (auto _ : state) {
    models::SasRec model(cfg);
    model.Fit(ds, OneEpoch());
  }
}
BENCHMARK(BM_SasRecTrainEpoch_SeqLen)
    ->ArgsProduct({{10, 20, 40, 80}, ThreadCounts()})
    ->Unit(benchmark::kMillisecond);

void BM_Gru4RecTrainEpoch_SeqLen(benchmark::State& state) {
  const int64_t n = state.range(0);
  ThreadPool::SetGlobalNumThreads(static_cast<int>(state.range(1)));
  data::SequenceDataset ds = MakeCorpus(static_cast<int32_t>(n));
  models::Gru4Rec::Config cfg;
  cfg.max_len = n;
  cfg.d = 32;
  cfg.hidden = 32;
  cfg.dropout = 0.0f;
  for (auto _ : state) {
    models::Gru4Rec model(cfg);
    model.Fit(ds, OneEpoch());
  }
}
BENCHMARK(BM_Gru4RecTrainEpoch_SeqLen)
    ->ArgsProduct({{10, 20, 40, 80}, ThreadCounts()})
    ->Unit(benchmark::kMillisecond);

// Allocation-churn probe: builds and drops one VSAN-shaped training tape
// per iteration (QKV projections, attention matmuls, softmax, FFN,
// backward) at the Table III step size, without the optimizer or data
// pipeline.  This isolates exactly the traffic the tensor pool absorbs;
// run it with VSAN_POOL=0 to measure the plain-new[] floor (run_bench.sh
// records both variants).
void BM_AllocChurn(benchmark::State& state) {
  ThreadPool::SetGlobalNumThreads(1);
  Rng rng(7);
  const int64_t b = 64, n = 80, d = 32;
  Variable w(Tensor::RandomNormal({d, d}, &rng, 0.02f),
             /*requires_grad=*/true);
  const Tensor x0 = Tensor::RandomNormal({b, n, d}, &rng, 1.0f);
  for (auto _ : state) {
    Variable x = Variable::Constant(x0);
    Variable q = ops::MatMul(x, w);
    Variable k = ops::MatMul(x, w);
    Variable v = ops::MatMul(x, w);
    Variable scores = ops::MatMul(q, ops::TransposeLast2(k));
    Variable attn = ops::Softmax(scores);
    Variable h = ops::MatMul(attn, v);
    Variable f = ops::Relu(ops::MatMul(h, w));
    Variable loss = ops::Mean(f);
    loss.Backward();
    benchmark::DoNotOptimize(w.grad().data());
    w.ZeroGrad();
    // Leaving the scope drops the tape; every interior tensor returns to
    // the pool (or the system allocator under VSAN_POOL=0).
  }
  const pool::PoolStats stats = pool::GetStats();
  state.counters["pool_hit_rate"] = stats.HitRate();
}
BENCHMARK(BM_AllocChurn)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vsan

// BENCHMARK_MAIN plus an optional span-trace capture: with VSAN_TRACE_OUT
// set, a tracer session wraps the benchmark run and the collected spans are
// exported as Chrome-trace JSON to that path (tools/run_bench.sh --trace
// summarizes it with trace_summary for CI diffing).  VSAN_PROFILE_OUT does
// the same with the sampling CPU profiler, writing folded stacks for
// flamegraph.pl / speedscope.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const std::string trace_out = vsan::GetEnvString("VSAN_TRACE_OUT", "");
  if (!trace_out.empty()) vsan::obs::Tracer::Global().StartSession({});
  const std::string profile_out = vsan::GetEnvString("VSAN_PROFILE_OUT", "");
  if (!profile_out.empty() &&
      !vsan::obs::SamplingProfiler::Global().Start()) {
    std::cerr << "error: cannot start profiler for VSAN_PROFILE_OUT"
                 " (built with -DVSAN_OBS=OFF?)\n";
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  if (!profile_out.empty()) {
    const vsan::obs::ProfileStats stats =
        vsan::obs::SamplingProfiler::Global().Stop();
    if (!vsan::obs::SamplingProfiler::Global().WriteFolded(profile_out)) {
      std::cerr << "error: cannot write VSAN_PROFILE_OUT=" << profile_out
                << "\n";
      return 1;
    }
    std::cerr << "profile: " << stats.samples << " samples ("
              << 100.0 * stats.any_symbolized_fraction << "% symbolized, "
              << stats.dropped << " dropped) -> " << profile_out << "\n";
  }
  if (!trace_out.empty()) {
    vsan::obs::Tracer::Global().StopSession();
    if (!vsan::obs::ExportChromeTrace(trace_out)) {
      std::cerr << "error: cannot write VSAN_TRACE_OUT=" << trace_out << "\n";
      return 1;
    }
  }
  benchmark::Shutdown();
  return 0;
}
