// Reproduces Fig. 3: performance of VSAN and SVAE as the number of predicted
// next items k varies (Eq. 18).  The paper's claims: VSAN > SVAE at every k,
// and performance first rises then falls with k.

#include <iostream>

#include "common/experiment.h"
#include "models/svae.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace vsan {
namespace bench {
namespace {

void RunDataset(DatasetKind kind,
                std::vector<std::vector<std::string>>* csv_rows) {
  const BenchConfig config = MakeBenchConfig(kind);
  const data::StrongSplit split = MakeSplit(config);
  std::cout << "\n=== Fig. 3 -- " << DatasetName(kind)
            << " (NDCG@10 / Recall@10 vs k) ===\n";

  TablePrinter table({"k", "VSAN NDCG@10", "VSAN Recall@10", "SVAE NDCG@10",
                      "SVAE Recall@10"});
  for (int32_t k = 1; k <= 6; ++k) {
    RunResult vsan = RunModelAveraged(
        [&] {
          core::VsanConfig cfg = MakeVsanConfig(config);
          cfg.next_k = k;
          return std::make_unique<core::Vsan>(cfg);
        },
        split, config, /*runs=*/1);
    RunResult svae = RunModelAveraged(
        [&] {
          models::Svae::Config cfg;
          cfg.max_len = config.max_len;
          cfg.d = config.d;
          cfg.hidden = config.d;
          cfg.latent = config.d / 2;
          cfg.next_k = k;
          cfg.dropout = config.dropout;
          return std::make_unique<models::Svae>(cfg);
        },
        split, config, /*runs=*/1);
    table.AddRow({StrCat(k), Pct(vsan.metrics.ndcg.at(10)),
                  Pct(vsan.metrics.recall.at(10)),
                  Pct(svae.metrics.ndcg.at(10)),
                  Pct(svae.metrics.recall.at(10))});
    csv_rows->push_back({DatasetName(kind), StrCat(k),
                         Pct(vsan.metrics.ndcg.at(10)),
                         Pct(vsan.metrics.recall.at(10)),
                         Pct(svae.metrics.ndcg.at(10)),
                         Pct(svae.metrics.recall.at(10))});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace vsan

int main() {
  using namespace vsan::bench;
  std::vector<std::vector<std::string>> csv_rows = {
      {"dataset", "k", "vsan_ndcg@10", "vsan_recall@10", "svae_ndcg@10",
       "svae_recall@10"}};
  RunDataset(DatasetKind::kBeauty, &csv_rows);
  RunDataset(DatasetKind::kML1M, &csv_rows);
  WriteCsv("fig3_next_k", csv_rows);
  return 0;
}
