// Ablation bench (extension beyond the paper): number of attention heads.
// The paper and SASRec use single-head attention; the Transformer default
// is multi-head.  Measures whether splitting the same d across heads helps
// at bench scale.

#include <iostream>

#include "common/experiment.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace vsan {
namespace bench {
namespace {

void RunDataset(DatasetKind kind,
                std::vector<std::vector<std::string>>* csv_rows) {
  const BenchConfig config = MakeBenchConfig(kind);
  const data::StrongSplit split = MakeSplit(config);
  std::cout << "\n=== Attention-head ablation -- " << DatasetName(kind)
            << " ===\n";

  TablePrinter table({"heads", "NDCG@10", "Recall@10", "Recall@20"});
  for (const int32_t heads : {1, 2, 4}) {
    RunResult r = RunModelAveraged(
        [&] {
          core::VsanConfig cfg = MakeVsanConfig(config);
          cfg.num_heads = heads;
          cfg.next_k = (kind == DatasetKind::kML1M) ? 2 : 1;
          return std::make_unique<core::Vsan>(cfg);
        },
        split, config, /*runs=*/1);
    table.AddRow({StrCat(heads), Pct(r.metrics.ndcg.at(10)),
                  Pct(r.metrics.recall.at(10)), Pct(r.metrics.recall.at(20))});
    csv_rows->push_back({DatasetName(kind), StrCat(heads),
                         Pct(r.metrics.ndcg.at(10)),
                         Pct(r.metrics.recall.at(10)),
                         Pct(r.metrics.recall.at(20))});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace vsan

int main() {
  using namespace vsan::bench;
  std::vector<std::vector<std::string>> csv_rows = {
      {"dataset", "heads", "ndcg@10", "recall@10", "recall@20"}};
  RunDataset(DatasetKind::kBeauty, &csv_rows);
  RunDataset(DatasetKind::kML1M, &csv_rows);
  WriteCsv("ablation_heads", csv_rows);
  return 0;
}
