// Extension bench: accuracy by item-popularity segment (head / torso /
// tail of the training catalogue).  Aggregate Table III metrics can hide
// popularity bias; this shows where each model's recall actually comes
// from, and whether the variational model's sparse-signal advantage
// concentrates in the tail.

#include <iostream>
#include <memory>

#include "common/experiment.h"
#include "eval/segmented.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace vsan {
namespace bench {
namespace {

void RunDataset(DatasetKind kind,
                std::vector<std::vector<std::string>>* csv_rows) {
  const BenchConfig config = MakeBenchConfig(kind);
  const data::StrongSplit split = MakeSplit(config);

  std::vector<float> popularity(split.train.num_items() + 1, 0.0f);
  for (int32_t u = 0; u < split.train.num_users(); ++u) {
    for (int32_t item : split.train.sequence(u)) popularity[item] += 1.0f;
  }

  TrainOptions train;
  train.epochs = config.epochs;
  train.batch_size = config.batch_size;
  train.learning_rate = config.learning_rate;
  train.seed = config.seed + 101;

  eval::PopularitySegments segments;  // head 10% / torso 40% / tail 50%
  segments.head_fraction = 0.1;
  segments.tail_fraction = 0.5;
  eval::EvalOptions eval_opts;
  eval_opts.cutoffs = {20};

  std::cout << "\n=== Recall@20 by popularity segment -- "
            << DatasetName(kind) << " ===\n";
  TablePrinter table(
      {"Model", "head(top10%)", "torso", "tail(bottom50%)"});
  for (const std::string& name :
       {std::string("POP"), std::string("SASRec"), std::string("VSAN")}) {
    std::unique_ptr<SequentialRecommender> model = MakeModel(name, config);
    model->Fit(split.train, train);
    const eval::SegmentedEvalResult r = eval::EvaluateByPopularity(
        *model, split.test, popularity, segments, eval_opts);
    table.AddRow({name, Pct(r.head.recall.at(20)), Pct(r.torso.recall.at(20)),
                  Pct(r.tail.recall.at(20))});
    csv_rows->push_back({DatasetName(kind), name, Pct(r.head.recall.at(20)),
                         Pct(r.torso.recall.at(20)),
                         Pct(r.tail.recall.at(20)),
                         StrCat(r.head_users), StrCat(r.torso_users),
                         StrCat(r.tail_users)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace vsan

int main() {
  using namespace vsan::bench;
  std::vector<std::vector<std::string>> csv_rows = {
      {"dataset", "model", "head_recall20", "torso_recall20", "tail_recall20",
       "head_users", "torso_users", "tail_users"}};
  RunDataset(DatasetKind::kBeauty, &csv_rows);
  RunDataset(DatasetKind::kML1M, &csv_rows);
  WriteCsv("segmented_popularity", csv_rows);
  return 0;
}
