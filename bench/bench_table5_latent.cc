// Reproduces Table V: the influence of the latent variable z.  VSAN-z
// removes the variational layer entirely (the inference output feeds the
// generative layer directly); the paper's claim is that the full model wins
// on every metric.

#include <iostream>

#include "common/experiment.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace vsan {
namespace bench {
namespace {

void RunDataset(DatasetKind kind,
                std::vector<std::vector<std::string>>* csv_rows) {
  const BenchConfig config = MakeBenchConfig(kind);
  const data::StrongSplit split = MakeSplit(config);
  std::cout << "\n=== Table V -- " << DatasetName(kind) << " ===\n";

  auto make = [&](bool use_latent) {
    return RunModelAveraged(
        [&] {
          core::VsanConfig cfg = MakeVsanConfig(config);
          cfg.use_latent = use_latent;
          cfg.next_k = (kind == DatasetKind::kML1M) ? 2 : 1;
          return std::make_unique<core::Vsan>(cfg);
        },
        split, config);
  };
  RunResult without = make(false);
  RunResult with = make(true);

  TablePrinter table(
      {"Method", "NDCG@10", "Recall@10", "NDCG@20", "Recall@20"});
  auto add = [&](const RunResult& r) {
    table.AddRow({r.model, Pct(r.metrics.ndcg.at(10)),
                  Pct(r.metrics.recall.at(10)), Pct(r.metrics.ndcg.at(20)),
                  Pct(r.metrics.recall.at(20))});
    csv_rows->push_back({DatasetName(kind), r.model,
                         Pct(r.metrics.ndcg.at(10)),
                         Pct(r.metrics.recall.at(10)),
                         Pct(r.metrics.ndcg.at(20)),
                         Pct(r.metrics.recall.at(20))});
  };
  add(without);
  add(with);
  auto improv = [&](double a, double b) {
    return b > 0.0 ? FormatDouble((a - b) / b * 100.0, 2) : std::string("n/a");
  };
  table.AddSeparator();
  table.AddRow({"Improv.%",
                improv(with.metrics.ndcg.at(10), without.metrics.ndcg.at(10)),
                improv(with.metrics.recall.at(10),
                       without.metrics.recall.at(10)),
                improv(with.metrics.ndcg.at(20), without.metrics.ndcg.at(20)),
                improv(with.metrics.recall.at(20),
                       without.metrics.recall.at(20))});
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace vsan

int main() {
  using namespace vsan::bench;
  std::vector<std::vector<std::string>> csv_rows = {
      {"dataset", "method", "ndcg@10", "recall@10", "ndcg@20", "recall@20"}};
  RunDataset(DatasetKind::kBeauty, &csv_rows);
  RunDataset(DatasetKind::kML1M, &csv_rows);
  WriteCsv("table5_latent", csv_rows);
  return 0;
}
