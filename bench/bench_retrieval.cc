// Recall-vs-speedup curve for the fast-retrieval backends at production
// catalog scale (ROADMAP item 2; run via tools/run_bench.sh --retrieval,
// which lands the JSON in BENCH_retrieval.json).
//
// Setup: an EmbeddingMips catalog (default 10^6 items, d = 64) and a fixed
// set of synthetic user queries.  For each backend configuration the
// harness measures single-thread per-query latency and recall@10 against
// the exact full-ranking oracle:
//   * exact      — ScoreInto (blocked GEMM over the fp32 table) + TopNIndices,
//                  the evaluator's original path; recall 1.0 by definition.
//   * quantized  — int8 scan + streaming top-k.
//   * ivf:nprobe — coarse quantizer at several probe widths, tracing the
//                  recall/speed frontier; nprobe == clusters is the
//                  oracle-equivalent end of the curve.
//
// Output: a JSON array on stdout, one record per configuration.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "eval/retrieval.h"
#include "models/embedding_mips.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace vsan {
namespace {

struct QuerySet {
  std::vector<std::vector<int32_t>> fold_ins;
  std::vector<std::vector<float>> queries;        // encoded vectors
  std::vector<std::vector<int32_t>> exact_top10;  // oracle answers
};

double Recall10(const std::vector<eval::ScoredItem>& got,
                const std::vector<int32_t>& want) {
  int hits = 0;
  for (const auto& g : got) {
    for (int32_t w : want) {
      if (g.index == w) {
        ++hits;
        break;
      }
    }
  }
  return want.empty() ? 1.0 : static_cast<double>(hits) / want.size();
}

void PrintRecord(bool* first, const std::string& backend, int64_t items,
                 int64_t d, int32_t clusters, int32_t nprobe, double build_ms,
                 double query_us, double speedup, double recall) {
  std::printf("%s  {\"backend\": \"%s\", \"items\": %lld, \"d\": %lld, "
              "\"clusters\": %d, \"nprobe\": %d, \"build_ms\": %.1f, "
              "\"mean_query_us\": %.1f, \"speedup_vs_exact\": %.2f, "
              "\"recall_at_10\": %.4f}",
              *first ? "" : ",\n", backend.c_str(),
              static_cast<long long>(items), static_cast<long long>(d),
              clusters, nprobe, build_ms, query_us, speedup, recall);
  *first = false;
}

int Run(int64_t num_items, int64_t d, int num_queries) {
  // Single thread throughout: the headline claim is a single-core speedup,
  // not a parallelism win.
  ThreadPool::SetGlobalNumThreads(1);

  std::fprintf(stderr, "building catalog: %lld items, d=%lld\n",
               static_cast<long long>(num_items), static_cast<long long>(d));
  models::EmbeddingMips::Config config;
  config.d = d;
  models::EmbeddingMips model(config);
  model.FitCatalog(static_cast<int32_t>(num_items));
  FactorizedHead head;
  model.GetFactorizedHead(&head);

  QuerySet qs;
  Rng rng(53);
  for (int q = 0; q < num_queries; ++q) {
    std::vector<int32_t> fold_in;
    for (int i = 0; i < 8; ++i) {
      fold_in.push_back(static_cast<int32_t>(rng.UniformInt(1, num_items)));
    }
    qs.fold_ins.push_back(std::move(fold_in));
    std::vector<float> query;
    model.EncodeQueryInto(qs.fold_ins.back(), &query);
    qs.queries.push_back(std::move(query));
  }

  // Exact oracle: full ScoreInto + TopNIndices, timed.
  std::fprintf(stderr, "exact baseline over %d queries...\n", num_queries);
  double exact_us = 0.0;
  {
    std::vector<float> scores;
    std::vector<bool> excluded;
    Stopwatch timer;
    for (const auto& fold_in : qs.fold_ins) {
      model.ScoreInto(fold_in, &scores);
      excluded.assign(scores.size(), false);
      excluded[0] = true;
      qs.exact_top10.push_back(eval::TopNIndices(scores, excluded, 10));
    }
    exact_us = timer.ElapsedNanos() * 1e-3 / num_queries;
  }

  std::printf("[\n");
  bool first = true;
  PrintRecord(&first, "exact", num_items, d, 0, 0, 0.0, exact_us, 1.0, 1.0);

  // Quantized scan.
  {
    std::fprintf(stderr, "quantized backend...\n");
    eval::RetrievalOptions opts;
    opts.backend = eval::RetrievalBackend::kQuantized;
    Stopwatch build_timer;
    const eval::RetrievalIndex index = eval::RetrievalIndex::Build(head, opts);
    const double build_ms = build_timer.ElapsedNanos() * 1e-6;

    eval::RetrievalIndex::Scratch scratch;
    std::vector<eval::ScoredItem> got;
    double recall_sum = 0.0;
    Stopwatch timer;
    for (int q = 0; q < num_queries; ++q) {
      index.Search(qs.queries[q].data(), 10, &scratch, &got);
      recall_sum += Recall10(got, qs.exact_top10[q]);
    }
    const double query_us = timer.ElapsedNanos() * 1e-3 / num_queries;
    PrintRecord(&first, "quantized", num_items, d, 0, 0, build_ms, query_us,
                exact_us / query_us, recall_sum / num_queries);
  }

  // IVF at several probe widths (clusters fixed).
  {
    eval::RetrievalOptions opts;
    opts.backend = eval::RetrievalBackend::kIvf;
    opts.clusters = 256;
    opts.kmeans_iters = 2;
    std::fprintf(stderr, "ivf build (%d clusters)...\n", opts.clusters);
    Stopwatch build_timer;
    eval::RetrievalIndex index = eval::RetrievalIndex::Build(head, opts);
    const double build_ms = build_timer.ElapsedNanos() * 1e-6;
    for (int32_t nprobe : {1, 4, 16, 64, 256}) {
      index.set_nprobe(nprobe);
      std::fprintf(stderr, "ivf nprobe=%d...\n", nprobe);
      eval::RetrievalIndex::Scratch scratch;
      std::vector<eval::ScoredItem> got;
      double recall_sum = 0.0;
      Stopwatch timer;
      for (int q = 0; q < num_queries; ++q) {
        index.Search(qs.queries[q].data(), 10, &scratch, &got);
        recall_sum += Recall10(got, qs.exact_top10[q]);
      }
      const double query_us = timer.ElapsedNanos() * 1e-3 / num_queries;
      PrintRecord(&first, "ivf", num_items, d, opts.clusters, nprobe,
                  build_ms, query_us, exact_us / query_us,
                  recall_sum / num_queries);
    }
  }

  std::printf("\n]\n");
  return 0;
}

}  // namespace
}  // namespace vsan

int main(int argc, char** argv) {
  int64_t items = 1'000'000;
  int64_t d = 64;
  int queries = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--items=", 8) == 0) {
      items = std::atoll(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--d=", 4) == 0) {
      d = std::atoll(argv[i] + 4);
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      queries = std::atoi(argv[i] + 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--items=N] [--d=N] [--queries=N]\n", argv[0]);
      return 2;
    }
  }
  return vsan::Run(items, d, queries);
}
