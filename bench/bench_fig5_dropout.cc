// Reproduces Fig. 5: VSAN performance as the dropout rate sweeps 0 -> 0.9.
// The paper's claim: an inverted-U -- no dropout underperforms, moderate
// dropout is best, heavy dropout collapses.

#include <iostream>

#include "common/experiment.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace vsan {
namespace bench {
namespace {

void RunDataset(DatasetKind kind,
                std::vector<std::vector<std::string>>* csv_rows) {
  const BenchConfig base = MakeBenchConfig(kind);
  const data::StrongSplit split = MakeSplit(base);
  std::cout << "\n=== Fig. 5 -- " << DatasetName(kind)
            << " (NDCG@10 / Recall@10 vs dropout) ===\n";

  TablePrinter table({"dropout", "NDCG@10", "Recall@10"});
  for (float rate : {0.0f, 0.1f, 0.2f, 0.3f, 0.5f, 0.7f, 0.9f}) {
    BenchConfig config = base;
    config.dropout = rate;
    RunResult r = RunModelAveraged(
        [&] {
          core::VsanConfig cfg = MakeVsanConfig(config);
          cfg.next_k = (kind == DatasetKind::kML1M) ? 2 : 1;
          return std::make_unique<core::Vsan>(cfg);
        },
        split, config, /*runs=*/1);
    table.AddRow({FormatDouble(rate, 1), Pct(r.metrics.ndcg.at(10)),
                  Pct(r.metrics.recall.at(10))});
    csv_rows->push_back({DatasetName(kind), FormatDouble(rate, 1),
                         Pct(r.metrics.ndcg.at(10)),
                         Pct(r.metrics.recall.at(10))});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace vsan

int main() {
  using namespace vsan::bench;
  std::vector<std::vector<std::string>> csv_rows = {
      {"dataset", "dropout", "ndcg@10", "recall@10"}};
  RunDataset(DatasetKind::kBeauty, &csv_rows);
  RunDataset(DatasetKind::kML1M, &csv_rows);
  WriteCsv("fig5_dropout", csv_rows);
  return 0;
}
