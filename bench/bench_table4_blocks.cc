// Reproduces Table IV: Recall@20 of VSAN over the grid of inference (h1)
// and generative (h2) self-attention block counts, per dataset.

#include <iostream>

#include "common/experiment.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace vsan {
namespace bench {
namespace {

void RunDataset(DatasetKind kind,
                std::vector<std::vector<std::string>>* csv_rows) {
  const BenchConfig config = MakeBenchConfig(kind);
  const data::StrongSplit split = MakeSplit(config);
  std::cout << "\n=== Table IV -- " << DatasetName(kind)
            << " (Recall@20, h1 across columns, h2 down rows) ===\n";

  TablePrinter table({"Recall@20", "h1=0", "h1=1", "h1=2", "h1=3"});
  for (int32_t h2 = 0; h2 <= 3; ++h2) {
    std::vector<std::string> cells = {StrCat("h2=", h2)};
    for (int32_t h1 = 0; h1 <= 3; ++h1) {
      RunResult r = RunModelAveraged(
          [&] {
            core::VsanConfig cfg = MakeVsanConfig(config);
            cfg.h1 = h1;
            cfg.h2 = h2;
            cfg.next_k = (kind == DatasetKind::kML1M) ? 2 : 1;
            return std::make_unique<core::Vsan>(cfg);
          },
          split, config, /*runs=*/1);
      cells.push_back(Pct(r.metrics.recall[20]));
      csv_rows->push_back({DatasetName(kind), StrCat(h1), StrCat(h2),
                           Pct(r.metrics.recall[20])});
    }
    table.AddRow(cells);
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace vsan

int main() {
  using namespace vsan::bench;
  std::vector<std::vector<std::string>> csv_rows = {
      {"dataset", "h1", "h2", "recall@20"}};
  RunDataset(DatasetKind::kBeauty, &csv_rows);
  RunDataset(DatasetKind::kML1M, &csv_rows);
  WriteCsv("table4_blocks", csv_rows);
  return 0;
}
