// Extension bench: evaluation-protocol sensitivity.  The paper evaluates
// under strong generalization with full ranking (Sec. V-A); much of the
// literature (incl. the SASRec paper) uses weak-generalization
// leave-one-out with sampled negatives.  This bench runs VSAN and SASRec
// under three protocols on the same corpus to show how much the protocol
// alone moves the numbers -- context for comparing across papers.

#include <iostream>
#include <memory>

#include "common/experiment.h"
#include "eval/evaluator.h"
#include "models/sasrec.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace vsan {
namespace bench {
namespace {

void RunDataset(DatasetKind kind,
                std::vector<std::vector<std::string>>* csv_rows) {
  const BenchConfig config = MakeBenchConfig(kind);
  const data::SyntheticConfig syn = config.kind == DatasetKind::kBeauty
                                        ? data::BeautyLikeConfig(config.scale)
                                        : data::ML1MLikeConfig(config.scale);
  const data::SequenceDataset dataset = data::GenerateSynthetic(syn);

  // Protocol A/B: strong generalization (full ranking / 100 sampled
  // negatives).  Protocol C: leave-one-out (weak generalization).
  data::SplitOptions strong_opts;
  strong_opts.num_validation_users = config.heldout_users;
  strong_opts.num_test_users = config.heldout_users;
  strong_opts.seed = config.seed;
  const data::StrongSplit strong = data::MakeStrongSplit(dataset, strong_opts);
  const data::StrongSplit loo = data::MakeLeaveOneOutSplit(dataset);

  std::cout << "\n=== Protocol comparison -- " << DatasetName(kind)
            << " (NDCG@10 / Recall@10) ===\n";
  TablePrinter table({"Model", "strong+full", "strong+sampled100",
                      "leave-one-out+full"});

  TrainOptions train_opts;
  train_opts.epochs = config.epochs;
  train_opts.batch_size = config.batch_size;
  train_opts.learning_rate = config.learning_rate;
  train_opts.seed = config.seed + 101;

  auto cell = [](const eval::EvalResult& r) {
    return Pct(r.ndcg.at(10)) + " / " + Pct(r.recall.at(10));
  };

  for (const std::string& name : {std::string("SASRec"), std::string("VSAN")}) {
    // One model per protocol-corpus (leave-one-out trains on more users).
    std::unique_ptr<SequentialRecommender> on_strong =
        MakeModel(name, config);
    on_strong->Fit(strong.train, train_opts);
    std::unique_ptr<SequentialRecommender> on_loo = MakeModel(name, config);
    on_loo->Fit(loo.train, train_opts);

    eval::EvalOptions full;
    eval::EvalOptions sampled;
    sampled.num_sampled_negatives = 100;
    const auto a = eval::EvaluateRanking(*on_strong, strong.test, full);
    const auto b = eval::EvaluateRanking(*on_strong, strong.test, sampled);
    const auto c = eval::EvaluateRanking(*on_loo, loo.test, full);
    table.AddRow({name, cell(a), cell(b), cell(c)});
    csv_rows->push_back({DatasetName(kind), name, Pct(a.ndcg.at(10)),
                         Pct(b.ndcg.at(10)), Pct(c.ndcg.at(10))});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace vsan

int main() {
  using namespace vsan::bench;
  std::vector<std::vector<std::string>> csv_rows = {
      {"dataset", "model", "strong_full_ndcg10", "strong_sampled_ndcg10",
       "loo_full_ndcg10"}};
  RunDataset(DatasetKind::kBeauty, &csv_rows);
  RunDataset(DatasetKind::kML1M, &csv_rows);
  WriteCsv("protocol_comparison", csv_rows);
  return 0;
}
