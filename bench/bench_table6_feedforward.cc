// Reproduces Table VI: the influence of the point-wise feed-forward network.
// Four variants: all FFNs removed, inference-side removed, generative-side
// removed, and the full model.  Uses h1 = h2 = 1 on both datasets so that
// both ablation sides exist.

#include <iostream>

#include "common/experiment.h"
#include "util/table_printer.h"

namespace vsan {
namespace bench {
namespace {

void RunDataset(DatasetKind kind,
                std::vector<std::vector<std::string>>* csv_rows) {
  BenchConfig config = MakeBenchConfig(kind);
  config.h1 = 1;
  config.h2 = 1;
  const data::StrongSplit split = MakeSplit(config);
  std::cout << "\n=== Table VI -- " << DatasetName(kind) << " ===\n";

  struct VariantSpec {
    bool infer_ffn;
    bool gen_ffn;
  };
  const VariantSpec variants[] = {
      {false, false},  // VSAN-all-feed
      {false, true},   // VSAN-infer-feed
      {true, false},   // VSAN-gene-feed
      {true, true},    // VSAN
  };

  TablePrinter table(
      {"Method", "NDCG@10", "Recall@10", "NDCG@20", "Recall@20"});
  for (const VariantSpec& v : variants) {
    RunResult r = RunModelAveraged(
        [&] {
          core::VsanConfig cfg = MakeVsanConfig(config);
          cfg.infer_ffn = v.infer_ffn;
          cfg.gen_ffn = v.gen_ffn;
          cfg.next_k = (kind == DatasetKind::kML1M) ? 2 : 1;
          return std::make_unique<core::Vsan>(cfg);
        },
        split, config);
    table.AddRow({r.model, Pct(r.metrics.ndcg.at(10)),
                  Pct(r.metrics.recall.at(10)), Pct(r.metrics.ndcg.at(20)),
                  Pct(r.metrics.recall.at(20))});
    csv_rows->push_back({DatasetName(kind), r.model,
                         Pct(r.metrics.ndcg.at(10)),
                         Pct(r.metrics.recall.at(10)),
                         Pct(r.metrics.ndcg.at(20)),
                         Pct(r.metrics.recall.at(20))});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace vsan

int main() {
  using namespace vsan::bench;
  std::vector<std::vector<std::string>> csv_rows = {
      {"dataset", "method", "ndcg@10", "recall@10", "ndcg@20", "recall@20"}};
  RunDataset(DatasetKind::kBeauty, &csv_rows);
  RunDataset(DatasetKind::kML1M, &csv_rows);
  WriteCsv("table6_feedforward", csv_rows);
  return 0;
}
