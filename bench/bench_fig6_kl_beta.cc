// Reproduces Fig. 6: VSAN with a fixed KL weight beta swept over a grid,
// compared against the KL-annealing schedule (the paper's dashed line).
// The paper's claim: annealing beats every fixed beta, and large fixed
// betas hurt (posterior collapse).

#include <iostream>

#include "common/experiment.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace vsan {
namespace bench {
namespace {

void RunDataset(DatasetKind kind,
                std::vector<std::vector<std::string>>* csv_rows) {
  const BenchConfig config = MakeBenchConfig(kind);
  const data::StrongSplit split = MakeSplit(config);
  std::cout << "\n=== Fig. 6 -- " << DatasetName(kind)
            << " (NDCG@10 vs fixed beta; last row = KL annealing) ===\n";

  TablePrinter table({"beta", "NDCG@10", "Recall@10"});
  auto run = [&](float fixed_beta) {
    return RunModelAveraged(
        [&] {
          core::VsanConfig cfg = MakeVsanConfig(config);
          cfg.fixed_beta = fixed_beta;  // < 0 = annealing
          cfg.next_k = (kind == DatasetKind::kML1M) ? 2 : 1;
          return std::make_unique<core::Vsan>(cfg);
        },
        split, config, /*runs=*/1);
  };
  for (float beta : {0.0f, 0.001f, 0.01f, 0.05f, 0.1f, 0.3f, 0.5f, 0.9f}) {
    RunResult r = run(beta);
    table.AddRow({FormatDouble(beta, 3), Pct(r.metrics.ndcg.at(10)),
                  Pct(r.metrics.recall.at(10))});
    csv_rows->push_back({DatasetName(kind), FormatDouble(beta, 3),
                         Pct(r.metrics.ndcg.at(10)),
                         Pct(r.metrics.recall.at(10))});
  }
  RunResult annealed = run(-1.0f);
  table.AddSeparator();
  table.AddRow({"annealed", Pct(annealed.metrics.ndcg.at(10)),
                Pct(annealed.metrics.recall.at(10))});
  csv_rows->push_back({DatasetName(kind), "annealed",
                       Pct(annealed.metrics.ndcg.at(10)),
                       Pct(annealed.metrics.recall.at(10))});
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace vsan

int main() {
  using namespace vsan::bench;
  std::vector<std::vector<std::string>> csv_rows = {
      {"dataset", "beta", "ndcg@10", "recall@10"}};
  RunDataset(DatasetKind::kBeauty, &csv_rows);
  RunDataset(DatasetKind::kML1M, &csv_rows);
  WriteCsv("fig6_kl_beta", csv_rows);
  return 0;
}
