// Reproduces Table III: overall performance of all nine models on the
// Beauty-like and ML-1M-like corpora, reporting NDCG / Recall / Precision at
// 10 and 20 (in percent), plus VSAN's improvement over the best baseline.

#include <iostream>
#include <memory>

#include "common/experiment.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace vsan {
namespace bench {
namespace {

void RunDataset(DatasetKind kind,
                std::vector<std::vector<std::string>>* csv_rows) {
  const BenchConfig config = MakeBenchConfig(kind);
  const data::StrongSplit split = MakeSplit(config);
  std::cout << "\n=== Table III -- " << DatasetName(kind) << " (scale "
            << config.scale << ", " << split.train.num_users()
            << " train users, " << split.train.num_items() << " items, "
            << split.test.size() << " held-out test users) ===\n";

  TablePrinter table({"Model", "NDCG@10", "NDCG@20", "Recall@10", "Recall@20",
                      "Prec@10", "Prec@20", "train(s)"});
  std::vector<RunResult> results;
  for (const std::string& name : TableIIIModelNames()) {
    RunResult r = RunModelAveraged(
        [&] { return MakeModel(name, config); }, split, config);
    results.push_back(r);
    if (name == "SASRec") table.AddSeparator();
    table.AddRow({r.model, Pct(r.metrics.ndcg[10]), Pct(r.metrics.ndcg[20]),
                  Pct(r.metrics.recall[10]), Pct(r.metrics.recall[20]),
                  Pct(r.metrics.precision[10]), Pct(r.metrics.precision[20]),
                  FormatDouble(r.train_seconds, 1)});
    csv_rows->push_back({DatasetName(kind), r.model, Pct(r.metrics.ndcg[10]),
                         Pct(r.metrics.ndcg[20]), Pct(r.metrics.recall[10]),
                         Pct(r.metrics.recall[20]),
                         Pct(r.metrics.precision[10]),
                         Pct(r.metrics.precision[20]),
                         FormatDouble(r.train_seconds, 2)});
  }

  // Improvement row: VSAN vs the strongest baseline per metric (the paper's
  // "Improv." row).
  const RunResult& vsan = results.back();
  auto improv = [&](auto metric_of) {
    double best = 0.0;
    for (size_t i = 0; i + 1 < results.size(); ++i) {
      best = std::max(best, metric_of(results[i]));
    }
    if (best <= 0.0) return std::string("n/a");
    return FormatDouble((metric_of(vsan) - best) / best * 100.0, 2);
  };
  table.AddSeparator();
  table.AddRow(
      {"Improv.%",
       improv([](const RunResult& r) { return r.metrics.ndcg.at(10); }),
       improv([](const RunResult& r) { return r.metrics.ndcg.at(20); }),
       improv([](const RunResult& r) { return r.metrics.recall.at(10); }),
       improv([](const RunResult& r) { return r.metrics.recall.at(20); }),
       improv([](const RunResult& r) { return r.metrics.precision.at(10); }),
       improv([](const RunResult& r) { return r.metrics.precision.at(20); }),
       ""});
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace vsan

int main() {
  using namespace vsan::bench;
  vsan::Stopwatch total;
  std::vector<std::vector<std::string>> csv_rows = {
      {"dataset", "model", "ndcg@10", "ndcg@20", "recall@10", "recall@20",
       "precision@10", "precision@20", "train_seconds"}};
  RunDataset(DatasetKind::kBeauty, &csv_rows);
  RunDataset(DatasetKind::kML1M, &csv_rows);
  WriteCsv("table3_overall", csv_rows);
  std::cout << "total " << total.ElapsedSeconds() << "s\n";
  return 0;
}
