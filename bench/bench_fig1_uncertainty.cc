// Quantifies the paper's (illustrative) Fig. 1: VSAN represents users as
// densities, so for users with multimodal tastes the posterior should be
// operationally wider.  Cohorts: focused users (history spans 1 latent
// category) vs eclectic users (3+ categories).  Measures, per cohort:
//   * agreement (Jaccard) between top-10 lists decoded from two
//     independently sampled z (lower = wider posterior),
//   * beyond-accuracy profile of the mean-decoded lists (coverage/Gini),
//   * mean posterior sigma.

#include <iostream>
#include <unordered_set>

#include "common/experiment.h"
#include "eval/beyond_accuracy.h"
#include "eval/metrics.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace vsan {
namespace bench {
namespace {

int32_t CategoryOf(int32_t item, const data::SyntheticConfig& cfg) {
  return static_cast<int32_t>((static_cast<int64_t>(item - 1) *
                               cfg.num_categories) /
                              cfg.num_items);
}

std::vector<int32_t> TopTen(const std::vector<float>& scores,
                            const std::vector<int32_t>& history) {
  std::vector<bool> excluded(scores.size(), false);
  excluded[data::kPaddingItem] = true;
  for (int32_t item : history) excluded[item] = true;
  return eval::TopNIndices(scores, excluded, 10);
}

double Jaccard(const std::vector<int32_t>& a, const std::vector<int32_t>& b) {
  std::unordered_set<int32_t> sa(a.begin(), a.end());
  int32_t inter = 0;
  for (int32_t x : b) inter += sa.count(x) > 0;
  const double uni = static_cast<double>(sa.size() + b.size() - inter);
  return uni > 0 ? inter / uni : 1.0;
}

}  // namespace
}  // namespace bench
}  // namespace vsan

int main() {
  using namespace vsan;
  using namespace vsan::bench;

  data::SyntheticConfig syn;
  syn.num_users = 1500;
  syn.num_items = 500;
  syn.num_categories = 10;
  syn.min_categories_per_user = 1;
  syn.max_categories_per_user = 4;
  syn.min_seq_len = 8;
  syn.max_seq_len = 16;
  syn.seed = 77;
  const data::SequenceDataset dataset = data::GenerateSynthetic(syn);

  core::VsanConfig cfg;
  cfg.max_len = 16;
  cfg.d = 32;
  cfg.h1 = 1;
  cfg.h2 = 1;
  cfg.dropout = 0.2f;
  cfg.beta_max = 0.02f;
  cfg.anneal_steps = 200;
  core::Vsan model(cfg);
  TrainOptions train;
  train.epochs = 25;
  train.batch_size = 64;
  model.Fit(dataset, train);

  struct Cohort {
    double jaccard = 0.0;
    double sigma = 0.0;
    int32_t n = 0;
    std::vector<std::vector<int32_t>> lists;
  };
  Cohort focused, eclectic;
  std::vector<float> popularity(dataset.num_items() + 1, 0.0f);
  for (int32_t u = 0; u < dataset.num_users(); ++u) {
    for (int32_t item : dataset.sequence(u)) popularity[item] += 1.0f;
  }
  for (int32_t u = 0; u < dataset.num_users(); ++u) {
    const std::vector<int32_t>& seq = dataset.sequence(u);
    std::unordered_set<int32_t> cats;
    for (int32_t item : seq) cats.insert(CategoryOf(item, syn));
    Cohort* cohort = nullptr;
    if (cats.size() <= 1) cohort = &focused;
    if (cats.size() >= 3) cohort = &eclectic;
    if (cohort == nullptr) continue;
    cohort->jaccard += Jaccard(TopTen(model.ScoreWithSampledLatent(seq), seq),
                               TopTen(model.ScoreWithSampledLatent(seq), seq));
    cohort->sigma += model.InspectPosterior(seq).MeanSigma();
    cohort->lists.push_back(TopTen(model.Score(seq), seq));
    ++cohort->n;
  }

  TablePrinter table({"Cohort", "users", "sampled-list Jaccard",
                      "mean sigma", "coverage", "Gini"});
  std::vector<std::vector<std::string>> csv_rows = {
      {"cohort", "users", "jaccard", "sigma", "coverage", "gini"}};
  auto add = [&](const char* name, Cohort& c) {
    const auto ba = eval::ComputeBeyondAccuracy(c.lists, dataset.num_items(),
                                                popularity);
    table.AddRow({name, StrCat(c.n), FormatDouble(c.jaccard / c.n, 3),
                  FormatDouble(c.sigma / c.n, 3),
                  FormatDouble(ba.catalogue_coverage, 3),
                  FormatDouble(ba.gini, 3)});
    csv_rows.push_back({name, StrCat(c.n), FormatDouble(c.jaccard / c.n, 4),
                        FormatDouble(c.sigma / c.n, 4),
                        FormatDouble(ba.catalogue_coverage, 4),
                        FormatDouble(ba.gini, 4)});
  };
  add("focused(1 cat)", focused);
  add("eclectic(3+ cats)", eclectic);
  std::cout << "\n=== Fig. 1, quantified: posterior width by taste "
               "ambiguity ===\n";
  table.Print(std::cout);
  std::cout << "(lower Jaccard between sampled lists = wider posterior)\n";
  WriteCsv("fig1_uncertainty", csv_rows);
  return 0;
}
