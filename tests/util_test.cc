#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "util/csv_writer.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace vsan {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(6);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.UniformInt(5)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(RngTest, UniformIntLoHiInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(8);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits, 3000, 200);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(10);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0], 1000, 200);
  EXPECT_NEAR(counts[1], 3000, 300);
  EXPECT_NEAR(counts[3], 6000, 300);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(11);
  auto s = rng.SampleWithoutReplacement(20, 10);
  ASSERT_EQ(s.size(), 10u);
  std::sort(s.begin(), s.end());
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_GE(s[i], 0);
    EXPECT_LT(s[i], 20);
    if (i > 0) {
      EXPECT_NE(s[i], s[i - 1]);
    }
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(12);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(StringUtilTest, StrCatAndJoin) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrJoin({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 3), "2.000");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%s=%d", "k", 7), "k=7");
  EXPECT_EQ(StrFormat("%.1f%%", 12.34), "12.3%");
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("bad"), std::string::npos);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(5);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  Result<int> err(Status::NotFound("missing"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"Model", "Metric"});
  t.AddRow({"SASRec", "5.1"});
  t.AddSeparator();
  t.AddRow({"VSAN", "6.77"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| Model "), std::string::npos);
  EXPECT_NE(s.find("| SASRec | 5.1    |"), std::string::npos);
  EXPECT_NE(s.find("| VSAN   | 6.77   |"), std::string::npos);
}

TEST(CsvWriterTest, EscapesSpecialCharacters) {
  const std::string path = ::testing::TempDir() + "/vsan_csv_test.csv";
  {
    CsvWriter w(path);
    ASSERT_TRUE(w.ok());
    w.WriteRow({"a", "b,c", "d\"e"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,\"b,c\",\"d\"\"e\"");
  std::remove(path.c_str());
}

TEST(EnvTest, ReturnsDefaultWhenUnset) {
  EXPECT_EQ(GetEnvInt("VSAN_DEFINITELY_UNSET_VAR", 42), 42);
  EXPECT_DOUBLE_EQ(GetEnvDouble("VSAN_DEFINITELY_UNSET_VAR", 1.5), 1.5);
  EXPECT_EQ(GetEnvString("VSAN_DEFINITELY_UNSET_VAR", "x"), "x");
}

TEST(EnvTest, ParsesSetValues) {
  setenv("VSAN_TEST_ENV_INT", "17", 1);
  setenv("VSAN_TEST_ENV_DOUBLE", "2.25", 1);
  EXPECT_EQ(GetEnvInt("VSAN_TEST_ENV_INT", 0), 17);
  EXPECT_DOUBLE_EQ(GetEnvDouble("VSAN_TEST_ENV_DOUBLE", 0.0), 2.25);
  unsetenv("VSAN_TEST_ENV_INT");
  unsetenv("VSAN_TEST_ENV_DOUBLE");
}

}  // namespace
}  // namespace vsan
