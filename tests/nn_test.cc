#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "nn/attention.h"
#include "nn/caser_conv.h"
#include "nn/embedding.h"
#include "nn/gru.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "util/rng.h"

namespace vsan {
namespace nn {
namespace {

TEST(LinearTest, ShapesAndBias) {
  Rng rng(1);
  Linear lin(4, 3, &rng);
  Variable x = Variable::Constant(Tensor::Ones({2, 4}));
  Variable y = lin.Forward(x);
  EXPECT_EQ(y.value().dim(0), 2);
  EXPECT_EQ(y.value().dim(1), 3);
}

TEST(LinearTest, BroadcastsOverBatchDim) {
  Rng rng(2);
  Linear lin(4, 5, &rng);
  Variable x = Variable::Constant(Tensor::Ones({3, 7, 4}));
  Variable y = lin.Forward(x);
  ASSERT_EQ(y.value().ndim(), 3);
  EXPECT_EQ(y.value().dim(0), 3);
  EXPECT_EQ(y.value().dim(1), 7);
  EXPECT_EQ(y.value().dim(2), 5);
  // Every row is the same input, so every output row must match.
  for (int64_t b = 0; b < 3; ++b) {
    for (int64_t i = 0; i < 7; ++i) {
      for (int64_t j = 0; j < 5; ++j) {
        EXPECT_FLOAT_EQ(y.value().at(b, i, j), y.value().at(0, 0, j));
      }
    }
  }
}

TEST(LinearTest, NoBiasOption) {
  Rng rng(3);
  Linear lin(2, 2, &rng, /*use_bias=*/false);
  EXPECT_EQ(lin.Parameters().size(), 1u);
  Variable zero = Variable::Constant(Tensor::Zeros({1, 2}));
  Variable y = lin.Forward(zero);
  EXPECT_FLOAT_EQ(y.value()[0], 0.0f);
  EXPECT_FLOAT_EQ(y.value()[1], 0.0f);
}

TEST(LinearTest, GradientsReachParameters) {
  Rng rng(4);
  Linear lin(3, 2, &rng);
  Variable x = Variable::Constant(Tensor::Ones({2, 3}));
  ops::Sum(lin.Forward(x)).Backward();
  for (const Variable& p : lin.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
}

TEST(EmbeddingTest, PaddingRowIsZeroAndGetsNoGradient) {
  Rng rng(5);
  Embedding emb(6, 4, &rng);
  Variable out = emb.Forward({0, 2, 0, 3}, /*batch=*/2, /*steps=*/2);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out.value().at(0, 0, j), 0.0f);
    EXPECT_FLOAT_EQ(out.value().at(1, 0, j), 0.0f);
  }
  ops::Sum(out).Backward();
  const Tensor& g = emb.table().grad();
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(g.at(0, j), 0.0f);   // padding row
    EXPECT_FLOAT_EQ(g.at(2, j), 1.0f);   // looked-up rows
    EXPECT_FLOAT_EQ(g.at(3, j), 1.0f);
    EXPECT_FLOAT_EQ(g.at(1, j), 0.0f);   // untouched rows
  }
}

TEST(EmbeddingTest, RepeatedIndexAccumulatesGradient) {
  Rng rng(6);
  Embedding emb(4, 2, &rng);
  Variable out = emb.Forward({1, 1, 1}, 1, 3);
  ops::Sum(out).Backward();
  EXPECT_FLOAT_EQ(emb.table().grad().at(1, 0), 3.0f);
}

TEST(LayerNormTest, NormalizesRows) {
  LayerNorm norm(8);
  Rng rng(7);
  Variable x(Tensor::RandomNormal({3, 8}, &rng, 5.0f), false);
  Variable y = norm.Forward(x);
  for (int64_t r = 0; r < 3; ++r) {
    double mean = 0.0, var = 0.0;
    for (int64_t j = 0; j < 8; ++j) mean += y.value().at(r, j);
    mean /= 8;
    for (int64_t j = 0; j < 8; ++j) {
      const double d = y.value().at(r, j) - mean;
      var += d * d;
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(CausalMaskTest, UpperTriangleBlocked) {
  Tensor m = MakeCausalMask(4);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      if (j > i) {
        EXPECT_LT(m.at(i, j), -1e8f);
      } else {
        EXPECT_FLOAT_EQ(m.at(i, j), 0.0f);
      }
    }
  }
}

// Property: causality.  Perturbing the input at a future position must not
// change the block's output at earlier positions.
TEST(SelfAttentionBlockTest, NoFuturePositionLeakage) {
  Rng rng(8);
  SelfAttentionBlockConfig cfg;
  cfg.d = 8;
  cfg.dropout = 0.0f;
  SelfAttentionBlock block(cfg, &rng);
  block.SetTraining(false);
  const Tensor mask = MakeCausalMask(5);

  Rng data_rng(9);
  Tensor base = Tensor::RandomNormal({1, 5, 8}, &data_rng);
  Tensor perturbed = base;
  for (int64_t j = 0; j < 8; ++j) perturbed.at(0, 4, j) += 3.0f;

  Rng d1(1), d2(1);
  Variable out_a = block.Forward(Variable::Constant(base), mask, &d1);
  Variable out_b = block.Forward(Variable::Constant(perturbed), mask, &d2);
  for (int64_t t = 0; t < 4; ++t) {  // all positions before the perturbation
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_FLOAT_EQ(out_a.value().at(0, t, j), out_b.value().at(0, t, j))
          << "leak at position " << t;
    }
  }
  // And the perturbed position itself must change.
  bool changed = false;
  for (int64_t j = 0; j < 8; ++j) {
    changed |= out_a.value().at(0, 4, j) != out_b.value().at(0, 4, j);
  }
  EXPECT_TRUE(changed);
}

TEST(SelfAttentionBlockTest, FfnToggleChangesParameterCount) {
  Rng rng(10);
  SelfAttentionBlockConfig with;
  with.d = 8;
  SelfAttentionBlockConfig without = with;
  without.use_ffn = false;
  SelfAttentionBlock a(with, &rng), b(without, &rng);
  EXPECT_GT(a.NumParameters(), b.NumParameters());
}

TEST(SelfAttentionBlockTest, OutputShapeMatchesInput) {
  Rng rng(11);
  SelfAttentionBlockConfig cfg;
  cfg.d = 6;
  SelfAttentionBlock block(cfg, &rng);
  block.SetTraining(false);
  Rng drop(1);
  Variable x = Variable::Constant(Tensor::Ones({2, 3, 6}));
  Variable y = block.Forward(x, MakeCausalMask(3), &drop);
  EXPECT_TRUE(y.value().SameShape(x.value()));
  EXPECT_TRUE(y.value().AllFinite());
}

TEST(SelfAttentionBlockTest, MultiHeadPreservesShapeAndCausality) {
  Rng rng(30);
  SelfAttentionBlockConfig cfg;
  cfg.d = 8;
  cfg.num_heads = 4;
  cfg.dropout = 0.0f;
  SelfAttentionBlock block(cfg, &rng);
  block.SetTraining(false);
  const Tensor mask = MakeCausalMask(5);
  Rng data_rng(31);
  Tensor base = Tensor::RandomNormal({2, 5, 8}, &data_rng);
  Tensor perturbed = base;
  perturbed.at(0, 4, 0) += 2.0f;
  Rng d1(1), d2(1);
  Variable a = block.Forward(Variable::Constant(base), mask, &d1);
  Variable b = block.Forward(Variable::Constant(perturbed), mask, &d2);
  EXPECT_TRUE(a.value().SameShape(base));
  for (int64_t t = 0; t < 4; ++t) {
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_FLOAT_EQ(a.value().at(0, t, j), b.value().at(0, t, j));
    }
  }
}

TEST(SelfAttentionBlockTest, HeadCountDoesNotChangeParameterCount) {
  Rng rng(32);
  SelfAttentionBlockConfig one;
  one.d = 8;
  SelfAttentionBlockConfig four = one;
  four.num_heads = 4;
  SelfAttentionBlock a(one, &rng), b(four, &rng);
  EXPECT_EQ(a.NumParameters(), b.NumParameters());
}

TEST(SelfAttentionBlockDeathTest, HeadsMustDivideWidth) {
  Rng rng(33);
  SelfAttentionBlockConfig cfg;
  cfg.d = 8;
  cfg.num_heads = 3;
  EXPECT_DEATH(SelfAttentionBlock(cfg, &rng), "num_heads");
}

TEST(GruTest, OutputShape) {
  Rng rng(12);
  Gru gru(4, 6, &rng);
  Variable x = Variable::Constant(Tensor::Ones({2, 5, 4}));
  Variable h = gru.Forward(x);
  EXPECT_EQ(h.value().dim(0), 2);
  EXPECT_EQ(h.value().dim(1), 5);
  EXPECT_EQ(h.value().dim(2), 6);
}

TEST(GruTest, StateEvolvesOverTime) {
  Rng rng(13);
  Gru gru(3, 4, &rng);
  Rng data_rng(14);
  Variable x = Variable::Constant(Tensor::RandomNormal({1, 4, 3}, &data_rng));
  Variable h = gru.Forward(x);
  // Consecutive states should differ (non-degenerate recurrence).
  bool differs = false;
  for (int64_t j = 0; j < 4; ++j) {
    differs |= h.value().at(0, 1, j) != h.value().at(0, 2, j);
  }
  EXPECT_TRUE(differs);
}

TEST(GruTest, CausalByConstruction) {
  // Changing x at t=3 must not affect h at t<=2.
  Rng rng(15);
  Gru gru(3, 4, &rng);
  Rng data_rng(16);
  Tensor base = Tensor::RandomNormal({1, 4, 3}, &data_rng);
  Tensor perturbed = base;
  perturbed.at(0, 3, 0) += 2.0f;
  Variable ha = gru.Forward(Variable::Constant(base));
  Variable hb = gru.Forward(Variable::Constant(perturbed));
  for (int64_t t = 0; t < 3; ++t) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(ha.value().at(0, t, j), hb.value().at(0, t, j));
    }
  }
}

TEST(GruTest, GradientsFlowThroughTime) {
  Rng rng(17);
  Gru gru(2, 3, &rng);
  Variable x(Tensor::Ones({1, 6, 2}), /*requires_grad=*/true);
  ops::Sum(gru.Forward(x)).Backward();
  ASSERT_TRUE(x.has_grad());
  // The earliest timestep must receive gradient through the recurrence.
  bool nonzero = false;
  for (int64_t j = 0; j < 2; ++j) nonzero |= x.grad().at(0, 0, j) != 0.0f;
  EXPECT_TRUE(nonzero);
}

TEST(HorizontalConvTest, OutputSizeAndFinite) {
  Rng rng(18);
  HorizontalConv conv(6, 4, {2, 3}, 5, &rng);
  EXPECT_EQ(conv.output_size(), 10);
  Rng data_rng(19);
  Variable x = Variable::Constant(Tensor::RandomNormal({3, 6, 4}, &data_rng));
  Variable y = conv.Forward(x);
  EXPECT_EQ(y.value().dim(0), 3);
  EXPECT_EQ(y.value().dim(1), 10);
  EXPECT_TRUE(y.value().AllFinite());
}

TEST(VerticalConvTest, ComputesWeightedTimeSums) {
  Rng rng(20);
  VerticalConv conv(3, 2, 1, &rng);
  EXPECT_EQ(conv.output_size(), 2);
  Variable x = Variable::Constant(
      Tensor::FromVector({1, 3, 2}, {1, 2, 3, 4, 5, 6}));
  Variable y = conv.Forward(x);
  // Output dim j = sum_t w[t] * x[t, j]; verify against the parameter.
  const Tensor& w = conv.Parameters()[0].value();
  const float expect0 = w.at(0, 0) * 1 + w.at(1, 0) * 3 + w.at(2, 0) * 5;
  const float expect1 = w.at(0, 0) * 2 + w.at(1, 0) * 4 + w.at(2, 0) * 6;
  EXPECT_NEAR(y.value()[0], expect0, 1e-5f);
  EXPECT_NEAR(y.value()[1], expect1, 1e-5f);
}

TEST(ModuleTest, ParameterAggregationAndTrainingFlag) {
  Rng rng(21);
  SelfAttentionBlockConfig cfg;
  cfg.d = 4;
  SelfAttentionBlock block(cfg, &rng);
  // wq/wk/wv (1 param each, no bias) + ffn1/ffn2 (2 each) + 2 norms (2 each).
  EXPECT_EQ(block.Parameters().size(), 3u + 4u + 4u);
  EXPECT_GT(block.NumParameters(), 0);
  EXPECT_TRUE(block.training());
  block.SetTraining(false);
  EXPECT_FALSE(block.training());
}

}  // namespace
}  // namespace nn
}  // namespace vsan
