// Tests for the analysis/introspection features: leave-one-out splits,
// beyond-accuracy metrics, and attention-map inspection.

#include <cmath>

#include <gtest/gtest.h>

#include "core/vsan.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/beyond_accuracy.h"
#include "util/rng.h"

namespace vsan {
namespace {

TEST(LeaveOneOutSplitTest, LastTwoItemsBecomeValAndTest) {
  data::SequenceDataset ds(10);
  ds.AddUser({1, 2, 3, 4, 5});
  data::StrongSplit split = data::MakeLeaveOneOutSplit(ds);
  ASSERT_EQ(split.train.num_users(), 1);
  EXPECT_EQ(split.train.sequence(0), (std::vector<int32_t>{1, 2, 3}));
  ASSERT_EQ(split.validation.size(), 1u);
  EXPECT_EQ(split.validation[0].fold_in, (std::vector<int32_t>{1, 2, 3}));
  EXPECT_EQ(split.validation[0].holdout, (std::vector<int32_t>{4}));
  ASSERT_EQ(split.test.size(), 1u);
  EXPECT_EQ(split.test[0].fold_in, (std::vector<int32_t>{1, 2, 3, 4}));
  EXPECT_EQ(split.test[0].holdout, (std::vector<int32_t>{5}));
}

TEST(LeaveOneOutSplitTest, ShortUsersStayInTraining) {
  data::SequenceDataset ds(10);
  ds.AddUser({1, 2});           // too short: train only
  ds.AddUser({3, 4, 5, 6});
  data::StrongSplit split = data::MakeLeaveOneOutSplit(ds);
  EXPECT_EQ(split.train.num_users(), 2);
  EXPECT_EQ(split.train.sequence(0), (std::vector<int32_t>{1, 2}));
  EXPECT_EQ(split.test.size(), 1u);
}

TEST(LeaveOneOutSplitTest, InteractionConservation) {
  data::SyntheticConfig cfg;
  cfg.num_users = 40;
  cfg.num_items = 30;
  cfg.num_categories = 3;
  data::SequenceDataset ds = data::GenerateSynthetic(cfg);
  data::StrongSplit split = data::MakeLeaveOneOutSplit(ds);
  // Every eligible user loses exactly 2 items from the training corpus.
  EXPECT_EQ(split.train.num_interactions() +
                2 * static_cast<int64_t>(split.test.size()),
            ds.num_interactions());
}

TEST(BeyondAccuracyTest, PerfectlyEvenListsHaveZeroGini) {
  // 4 items, each recommended exactly once.
  const std::vector<std::vector<int32_t>> lists = {{1, 2}, {3, 4}};
  const std::vector<float> pop = {0, 4, 3, 2, 1};
  const auto r = eval::ComputeBeyondAccuracy(lists, 4, pop);
  EXPECT_DOUBLE_EQ(r.catalogue_coverage, 1.0);
  EXPECT_NEAR(r.gini, 0.0, 1e-12);
}

TEST(BeyondAccuracyTest, SingleItemConcentrationHasHighGini) {
  const std::vector<std::vector<int32_t>> lists = {{1}, {1}, {1}, {1}};
  const std::vector<float> pop = {0, 4, 3, 2, 1};
  const auto r = eval::ComputeBeyondAccuracy(lists, 4, pop);
  EXPECT_DOUBLE_EQ(r.catalogue_coverage, 0.25);
  EXPECT_NEAR(r.gini, 0.75, 1e-12);  // (n-1)/n for all mass on one of n
}

TEST(BeyondAccuracyTest, NoveltyReflectsPopularityRank) {
  // Item 1 is the most popular (rank 0 -> novelty 0); item 4 is the least
  // popular (rank 3/4 = 0.75).
  const std::vector<float> pop = {0, 100, 50, 20, 5};
  const auto popular = eval::ComputeBeyondAccuracy({{1}}, 4, pop);
  const auto niche = eval::ComputeBeyondAccuracy({{4}}, 4, pop);
  EXPECT_DOUBLE_EQ(popular.novelty, 0.0);
  EXPECT_DOUBLE_EQ(niche.novelty, 0.75);
  EXPECT_GT(niche.novelty, popular.novelty);
}

TEST(BeyondAccuracyTest, EndToEndWithModel) {
  struct Identity : SequentialRecommender {
    std::string name() const override { return "id"; }
    void Fit(const data::SequenceDataset&, const TrainOptions&) override {}
    std::vector<float> Score(const std::vector<int32_t>&) const override {
      std::vector<float> s(11);
      for (int i = 0; i <= 10; ++i) s[i] = static_cast<float>(i);
      return s;
    }
  };
  Identity model;
  std::vector<data::HeldOutUser> users(2);
  users[0].fold_in = {10};  // excluded, so top-3 = 9, 8, 7
  users[1].fold_in = {1};   // top-3 = 10, 9, 8
  std::vector<float> pop(11, 1.0f);
  const auto r = eval::EvaluateBeyondAccuracy(model, users, 3, 10, pop);
  // Items recommended: {9, 8, 7, 10} -> coverage 4/10.
  EXPECT_DOUBLE_EQ(r.catalogue_coverage, 0.4);
}

data::SequenceDataset CycleDataset(int32_t num_items, int32_t num_users,
                                   int32_t seq_len) {
  Rng rng(3);
  data::SequenceDataset ds(num_items);
  for (int32_t u = 0; u < num_users; ++u) {
    int32_t cur = static_cast<int32_t>(rng.UniformInt(1, num_items));
    std::vector<int32_t> seq;
    for (int32_t t = 0; t < seq_len; ++t) {
      seq.push_back(cur);
      cur = cur % num_items + 1;
    }
    ds.AddUser(std::move(seq));
  }
  return ds;
}

TEST(AttentionInspectionTest, RowsAreStochasticAndCausal) {
  core::VsanConfig cfg;
  cfg.max_len = 8;
  cfg.d = 16;
  cfg.dropout = 0.0f;
  core::Vsan model(cfg);
  TrainOptions opts;
  opts.epochs = 3;
  opts.batch_size = 16;
  model.Fit(CycleDataset(12, 40, 8), opts);

  const Tensor attn = model.InspectAttention({3, 4, 5, 6, 7, 8, 9, 10});
  ASSERT_EQ(attn.ndim(), 2);
  ASSERT_EQ(attn.dim(0), 8);
  ASSERT_EQ(attn.dim(1), 8);
  for (int64_t i = 0; i < 8; ++i) {
    double row_sum = 0.0;
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_GE(attn.at(i, j), 0.0f);
      if (j > i) {
        EXPECT_NEAR(attn.at(i, j), 0.0f, 1e-6f);  // causal: no future mass
      }
      row_sum += attn.at(i, j);
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-4);
  }
}

TEST(AttentionInspectionTest, MultiHeadAverageIsStillStochastic) {
  core::VsanConfig cfg;
  cfg.max_len = 6;
  cfg.d = 16;
  cfg.num_heads = 4;
  cfg.dropout = 0.0f;
  core::Vsan model(cfg);
  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 16;
  model.Fit(CycleDataset(10, 30, 6), opts);
  const Tensor attn = model.InspectAttention({1, 2, 3, 4, 5, 6});
  for (int64_t i = 0; i < 6; ++i) {
    double row_sum = 0.0;
    for (int64_t j = 0; j < 6; ++j) row_sum += attn.at(i, j);
    EXPECT_NEAR(row_sum, 1.0, 1e-4);
  }
}

TEST(AttentionInspectionTest, RequiresInferenceBlocks) {
  core::VsanConfig cfg;
  cfg.max_len = 6;
  cfg.d = 8;
  cfg.h1 = 0;
  core::Vsan model(cfg);
  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 16;
  model.Fit(CycleDataset(10, 30, 6), opts);
  EXPECT_DEATH(model.InspectAttention({1, 2}), "h1");
}

}  // namespace
}  // namespace vsan
