// bf16 storage path (tensor/bf16.h + GemmBf16): round-to-nearest-even
// conversion edge cases, the documented dot-product error bound (the same
// discipline as int8_dot's bound in retrieval_test.cc), determinism of the
// bf16 GEMM across thread counts and block sizes, the thread-local
// MatMulPrecision dispatch, and the end-to-end eval accuracy delta on the
// BeautyLike synthetic benchmark.
//
// All bit access goes through std::memcpy (never unions or
// reinterpret_cast), so this suite is also run under the ASan and UBSan
// configs: conversion code is a classic aliasing/UB trap and the sanitized
// builds are the proof it isn't one here.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/vsan.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "tensor/bf16.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace vsan {
namespace {

uint32_t FloatBits(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

float FloatFromBits(uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

// --- Conversion: exact values and RNE edges ------------------------------

TEST(Bf16ConversionTest, ExactValuesRoundTrip) {
  // Values with <= 8 significand bits convert without rounding.
  const float exact[] = {0.0f,   1.0f,   -1.0f, 2.0f,  -2.0f,  0.5f,
                         -0.375f, 1.5f,  100.0f, -256.0f, 0.0078125f};
  for (float f : exact) {
    EXPECT_EQ(Bf16ToFloat(Bf16FromFloat(f)), f) << f;
  }
  EXPECT_EQ(Bf16FromFloat(1.0f), 0x3f80);
  EXPECT_EQ(Bf16FromFloat(-2.0f), 0xc000);
}

TEST(Bf16ConversionTest, AllBf16PatternsRoundTripThroughFloat) {
  // Widening then re-rounding must be the identity for every non-NaN bf16
  // pattern; NaN patterns come back quieted (mantissa MSB set) with sign
  // and remaining payload intact.
  for (uint32_t h = 0; h <= 0xffff; ++h) {
    const Bf16 in = static_cast<Bf16>(h);
    const Bf16 out = Bf16FromFloat(Bf16ToFloat(in));
    const bool is_nan = (h & 0x7fffu) > 0x7f80u;
    if (is_nan) {
      EXPECT_EQ(out, static_cast<Bf16>(h | 0x0040u)) << std::hex << h;
    } else {
      EXPECT_EQ(out, in) << std::hex << h;
    }
  }
}

TEST(Bf16ConversionTest, RoundsToNearestEvenOnTies) {
  // Exactly half-way: low 16 bits are 0x8000.  The kept mantissa LSB (bit
  // 16) decides: even stays, odd rounds up.
  const uint32_t even_kept = 0x3f800000u;  // 1.0, bit 16 clear
  EXPECT_EQ(Bf16FromFloat(FloatFromBits(even_kept | 0x8000u)), 0x3f80)
      << "tie at even kept LSB must truncate";
  const uint32_t odd_kept = 0x3f810000u;  // bit 16 set
  EXPECT_EQ(Bf16FromFloat(FloatFromBits(odd_kept | 0x8000u)), 0x3f82)
      << "tie at odd kept LSB must round up";
  // One ULP above/below the tie rounds to nearest regardless of parity.
  EXPECT_EQ(Bf16FromFloat(FloatFromBits(even_kept | 0x8001u)), 0x3f81);
  EXPECT_EQ(Bf16FromFloat(FloatFromBits(even_kept | 0x7fffu)), 0x3f80);
}

TEST(Bf16ConversionTest, RelativeErrorWithinUnitRoundoff) {
  // RNE with an 8-bit significand: unit roundoff 2^-8, so relative error
  // <= 2^-8 for normal values (tight at the bottom of a binade, where the
  // half-ULP of 2^(e-8) is largest relative to |f|).  Sweep a few thousand
  // pseudo-random normals.
  Rng rng(123);
  for (int i = 0; i < 5000; ++i) {
    const float f = static_cast<float>(rng.Normal()) * 100.0f;
    if (f == 0.0f) continue;
    const float back = Bf16ToFloat(Bf16FromFloat(f));
    EXPECT_LE(std::fabs(back - f), std::fabs(f) * (1.0f / 256.0f) * 1.0001f)
        << f;
  }
}

TEST(Bf16ConversionTest, NaNIsQuietedNeverInfinity) {
  // A signaling NaN whose mantissa would carry into the exponent under the
  // rounding add must NOT become an infinity.
  const uint32_t snan = 0x7f800001u;
  const Bf16 h1 = Bf16FromFloat(FloatFromBits(snan));
  EXPECT_TRUE(std::isnan(Bf16ToFloat(h1)));
  EXPECT_EQ(h1, 0x7fc0);  // truncated payload, quiet bit set
  // All-ones mantissa: the carry case the quieting path exists for.
  const uint32_t worst = 0x7fffffffu;
  const Bf16 h2 = Bf16FromFloat(FloatFromBits(worst));
  EXPECT_TRUE(std::isnan(Bf16ToFloat(h2))) << "NaN carried into inf";
  // Negative NaN keeps its sign.
  const Bf16 h3 = Bf16FromFloat(FloatFromBits(0xffc00001u));
  EXPECT_TRUE(std::isnan(Bf16ToFloat(h3)));
  EXPECT_TRUE(std::signbit(Bf16ToFloat(h3)));
}

TEST(Bf16ConversionTest, InfinityAndOverflow) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(Bf16ToFloat(Bf16FromFloat(inf)), inf);
  EXPECT_EQ(Bf16ToFloat(Bf16FromFloat(-inf)), -inf);
  // Finite values above the largest finite bf16 (0x7f7f) round to inf.
  EXPECT_EQ(Bf16ToFloat(Bf16FromFloat(std::numeric_limits<float>::max())),
            inf);
  // The largest finite bf16 itself survives.
  const float max_bf16 = Bf16ToFloat(0x7f7f);
  EXPECT_EQ(Bf16FromFloat(max_bf16), 0x7f7f);
  // Just below the rounding threshold to inf stays finite.
  EXPECT_EQ(Bf16FromFloat(FloatFromBits(0x7f7f7fffu)), 0x7f7f);
}

TEST(Bf16ConversionTest, SubnormalsAndSignedZero) {
  // bf16 shares the fp32 exponent, so fp32 subnormals round onto bf16
  // subnormals: 2^-133 is exactly representable (bf16 pattern 0x0001).
  EXPECT_EQ(Bf16FromFloat(FloatFromBits(0x00010000u)), 0x0001);
  EXPECT_EQ(FloatBits(Bf16ToFloat(0x0001)), 0x00010000u);
  // The smallest fp32 subnormal is far below half a bf16 ULP: rounds to 0.
  EXPECT_EQ(Bf16FromFloat(std::numeric_limits<float>::denorm_min()), 0x0000);
  // Signed zero keeps its sign bit.
  EXPECT_EQ(Bf16FromFloat(-0.0f), 0x8000);
  EXPECT_TRUE(std::signbit(Bf16ToFloat(Bf16FromFloat(-0.0f))));
  EXPECT_EQ(Bf16FromFloat(0.0f), 0x0000);
}

TEST(Bf16ConversionTest, BulkConversionsMatchScalar) {
  Rng rng(7);
  std::vector<float> src(1031);
  for (float& f : src) f = static_cast<float>(rng.Normal());
  std::vector<Bf16> packed(src.size());
  Bf16FromFloatN(src.data(), packed.data(), static_cast<int64_t>(src.size()));
  std::vector<float> widened(src.size());
  Bf16ToFloatN(packed.data(), widened.data(),
               static_cast<int64_t>(src.size()));
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(packed[i], Bf16FromFloat(src[i])) << i;
    EXPECT_EQ(widened[i], Bf16ToFloat(packed[i])) << i;
  }
}

// --- Documented dot-product error bound ----------------------------------
//
// DotBf16 rounds both operands to bf16 (each a relative perturbation of at
// most 2^-8) and accumulates in fp32.  Against the exact (double) dot:
//   |DotBf16(a,b) - dot(a,b)|
//     <= [ (1 + 2^-8)^2 - 1 ] * sum_i |a_i b_i|      (operand rounding)
//      + n * 2^-24 * (1 + 2^-7)^2 * max partial sum   (fp32 accumulation)
// which this test asserts in the slightly loosened, easy-to-state form
//   bound = (2^-7 + 2^-16) * sum_abs + n * 2^-23 * sum_abs + tiny.
// This is the bf16 analogue of the int8 quantization bound asserted in
// retrieval_test.cc.
TEST(Bf16DotTest, DocumentedErrorBoundHolds) {
  Rng rng(991);
  for (int64_t n : {1, 2, 7, 64, 301, 1000}) {
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<float> a(n);
      std::vector<float> b(n);
      for (int64_t i = 0; i < n; ++i) {
        a[i] = static_cast<float>(rng.Normal()) * 2.0f;
        b[i] = static_cast<float>(rng.Normal()) * 2.0f;
      }
      double exact = 0.0;
      double sum_abs = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        exact += static_cast<double>(a[i]) * static_cast<double>(b[i]);
        sum_abs += std::fabs(static_cast<double>(a[i]) * b[i]);
      }
      const float approx = internal::DotBf16(a.data(), b.data(), n);
      const double bound = (1.0 / 128.0 + 1.0 / 65536.0) * sum_abs +
                           static_cast<double>(n) / 8388608.0 * sum_abs +
                           1e-12;
      EXPECT_LE(std::fabs(static_cast<double>(approx) - exact), bound)
          << "n=" << n << " trial=" << trial;
    }
  }
}

// --- GemmBf16 correctness and determinism --------------------------------

class GemmBf16Test : public ::testing::Test {
 protected:
  void TearDown() override {
    ThreadPool::SetGlobalNumThreads(ThreadPool::DefaultNumThreads());
    SetGemmBlockSizes(GemmBlockSizes{});
    SetMatMulPrecision(MatMulPrecision::kFp32);
  }
};

// Every element of GemmBf16's output must stay within the documented bound
// of the exact (double) product of the bf16-rounded operands' fp32 values
// — the operand rounding is shared with DotBf16; only the fp32 accumulation
// order differs between kernel variants, and that error is covered by the
// n*2^-23 term.
TEST_F(GemmBf16Test, MatchesReferenceWithinBoundAllTransposes) {
  Rng rng(55);
  for (int64_t m : {1, 5, 6, 37}) {
    for (int64_t n : {1, 16, 33}) {
      for (int64_t k : {1, 7, 129}) {
        for (bool trans_a : {false, true}) {
          for (bool trans_b : {false, true}) {
            std::vector<float> a(static_cast<size_t>(m * k));
            std::vector<float> b(static_cast<size_t>(k * n));
            for (float& f : a) f = static_cast<float>(rng.Normal());
            for (float& f : b) f = static_cast<float>(rng.Normal());
            std::vector<float> c(static_cast<size_t>(m * n), 0.25f);
            GemmBf16(a.data(), b.data(), c.data(), m, n, k, trans_a,
                     trans_b);
            for (int64_t i = 0; i < m; ++i) {
              for (int64_t j = 0; j < n; ++j) {
                double exact = 0.25;
                double sum_abs = 0.0;
                for (int64_t p = 0; p < k; ++p) {
                  const float av = Bf16ToFloat(Bf16FromFloat(
                      trans_a ? a[p * m + i] : a[i * k + p]));
                  const float bv = Bf16ToFloat(Bf16FromFloat(
                      trans_b ? b[j * k + p] : b[p * n + j]));
                  exact += static_cast<double>(av) * bv;
                  sum_abs += std::fabs(static_cast<double>(av) * bv);
                }
                const double bound =
                    static_cast<double>(k + 2) / 8388608.0 *
                        (sum_abs + 0.25) +
                    1e-12;
                EXPECT_LE(std::fabs(c[static_cast<size_t>(i * n + j)] -
                                    exact),
                          bound)
                    << m << "x" << n << "x" << k << " ta=" << trans_a
                    << " tb=" << trans_b << " at (" << i << "," << j << ")";
              }
            }
          }
        }
      }
    }
  }
}

TEST_F(GemmBf16Test, BitwiseIdenticalAcrossThreadCounts) {
  Rng rng(77);
  const int64_t m = 67;
  const int64_t n = 53;
  const int64_t k = 129;
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  for (float& f : a) f = static_cast<float>(rng.Normal());
  for (float& f : b) f = static_cast<float>(rng.Normal());

  ThreadPool::SetGlobalNumThreads(1);
  std::vector<float> ref(static_cast<size_t>(m * n), 0.0f);
  GemmBf16(a.data(), b.data(), ref.data(), m, n, k, false, false);
  for (int threads : {2, 4}) {
    ThreadPool::SetGlobalNumThreads(threads);
    std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
    GemmBf16(a.data(), b.data(), c.data(), m, n, k, false, false);
    EXPECT_EQ(0, std::memcmp(ref.data(), c.data(),
                             sizeof(float) * ref.size()))
        << threads << " threads";
  }
}

TEST_F(GemmBf16Test, BitwiseIdenticalAcrossBlockSizes) {
  // Includes odd kc (rounded up to a K-pair multiple internally) and
  // deliberately tiny blocks, so K-block boundaries land everywhere.
  Rng rng(78);
  const int64_t m = 37;
  const int64_t n = 50;
  const int64_t k = 131;
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  for (float& f : a) f = static_cast<float>(rng.Normal());
  for (float& f : b) f = static_cast<float>(rng.Normal());
  std::vector<float> ref(static_cast<size_t>(m * n), 0.0f);
  GemmBf16(a.data(), b.data(), ref.data(), m, n, k, false, false);
  const GemmBlockSizes sweeps[] = {
      {6, 16, 2}, {12, 16, 5}, {6, 32, 33}, {48, 256, 64}, {24, 2048, 512}};
  for (const GemmBlockSizes& bs : sweeps) {
    SetGemmBlockSizes(bs);
    std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
    GemmBf16(a.data(), b.data(), c.data(), m, n, k, false, false);
    EXPECT_EQ(0, std::memcmp(ref.data(), c.data(),
                             sizeof(float) * ref.size()))
        << "mc=" << bs.mc << " nc=" << bs.nc << " kc=" << bs.kc;
  }
}

TEST_F(GemmBf16Test, BatchedMatchesPerMatrixCalls) {
  Rng rng(79);
  const int64_t batch = 3;
  const int64_t m = 11;
  const int64_t n = 19;
  const int64_t k = 23;
  std::vector<float> a(static_cast<size_t>(batch * m * k));
  std::vector<float> b(static_cast<size_t>(batch * k * n));
  for (float& f : a) f = static_cast<float>(rng.Normal());
  for (float& f : b) f = static_cast<float>(rng.Normal());
  std::vector<float> c_batched(static_cast<size_t>(batch * m * n), 0.0f);
  BatchedGemmBf16(a.data(), b.data(), c_batched.data(), batch, m * k, k * n,
                  m * n, m, n, k, false, false);
  for (int64_t i = 0; i < batch; ++i) {
    std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
    GemmBf16(a.data() + i * m * k, b.data() + i * k * n, c.data(), m, n, k,
             false, false);
    EXPECT_EQ(0, std::memcmp(c.data(), c_batched.data() + i * m * n,
                             sizeof(float) * c.size()))
        << "batch " << i;
  }
}

// --- MatMulPrecision dispatch --------------------------------------------

TEST_F(GemmBf16Test, ScopedPrecisionRestoresAndNests) {
  EXPECT_EQ(GetMatMulPrecision(), MatMulPrecision::kFp32);
  {
    ScopedMatMulPrecision outer(MatMulPrecision::kBf16);
    EXPECT_EQ(GetMatMulPrecision(), MatMulPrecision::kBf16);
    {
      ScopedMatMulPrecision inner(MatMulPrecision::kFp32);
      EXPECT_EQ(GetMatMulPrecision(), MatMulPrecision::kFp32);
    }
    EXPECT_EQ(GetMatMulPrecision(), MatMulPrecision::kBf16);
  }
  EXPECT_EQ(GetMatMulPrecision(), MatMulPrecision::kFp32);
}

TEST_F(GemmBf16Test, GemmDispatchesOnThreadLocalPrecision) {
  Rng rng(80);
  const int64_t m = 23;
  const int64_t n = 31;
  const int64_t k = 47;
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  for (float& f : a) f = static_cast<float>(rng.Normal());
  for (float& f : b) f = static_cast<float>(rng.Normal());
  std::vector<float> direct(static_cast<size_t>(m * n), 0.0f);
  GemmBf16(a.data(), b.data(), direct.data(), m, n, k, false, false);
  std::vector<float> dispatched(static_cast<size_t>(m * n), 0.0f);
  {
    ScopedMatMulPrecision guard(MatMulPrecision::kBf16);
    Gemm(a.data(), b.data(), dispatched.data(), m, n, k, false, false);
  }
  EXPECT_EQ(0, std::memcmp(direct.data(), dispatched.data(),
                           sizeof(float) * direct.size()));
  // And back on fp32, Gemm must NOT take the bf16 path.
  std::vector<float> fp32(static_cast<size_t>(m * n), 0.0f);
  Gemm(a.data(), b.data(), fp32.data(), m, n, k, false, false);
  std::vector<float> ref(static_cast<size_t>(m * n), 0.0f);
  ReferenceGemm(a.data(), b.data(), ref.data(), m, n, k, false, false);
  EXPECT_EQ(0,
            std::memcmp(fp32.data(), ref.data(), sizeof(float) * ref.size()));
}

TEST_F(GemmBf16Test, TensorMatMulHonorsPrecision) {
  Rng rng(81);
  Tensor a = Tensor::RandomNormal({9, 33}, &rng);
  Tensor b = Tensor::RandomNormal({33, 21}, &rng);
  std::vector<float> direct(9 * 21, 0.0f);
  GemmBf16(a.data(), b.data(), direct.data(), 9, 21, 33, false, false);
  ScopedMatMulPrecision guard(MatMulPrecision::kBf16);
  const Tensor c = MatMul2D(a, b);
  EXPECT_EQ(0, std::memcmp(direct.data(), c.data(),
                           sizeof(float) * direct.size()));
}

TEST(Bf16KernelVariantTest, NameIsOneOfTheCompiledKernels) {
  const std::string variant = GemmBf16KernelVariant();
  EXPECT_TRUE(variant == "avx512bf16" || variant == "vector-widen" ||
              variant == "scalar")
      << variant;
}

// --- End-to-end eval accuracy delta (acceptance criterion) ---------------
//
// HR@10 (the evaluator's recall@10 on single-holdout users) and NDCG@10
// under bf16 scoring must stay within 0.5% *relative* of the fp32 values
// on the BeautyLike synthetic benchmark.  The evaluation is fully
// deterministic (fixed seeds, content-hashed negative sampling), so this
// is a hard assertion, not a flaky tolerance: the bf16 score perturbation
// (~2^-8 relative) flips item ranks only at near-ties, and the test
// documents exactly how much metric movement that causes here.
TEST(Bf16EvalAccuracyTest, BeautyLikeMetricsWithinHalfPercentOfFp32) {
  const data::SyntheticConfig data_config = data::BeautyLikeConfig(0.05);
  const data::SequenceDataset dataset = data::GenerateSynthetic(data_config);
  data::SplitOptions split_options;
  split_options.num_test_users = 80;
  const data::StrongSplit split =
      data::MakeStrongSplit(dataset, split_options);

  core::VsanConfig config;
  config.max_len = 16;
  config.d = 16;
  core::Vsan model(config);
  TrainOptions train;
  train.epochs = 2;
  train.batch_size = 32;
  model.Fit(split.train, train);

  eval::EvalOptions options;
  options.cutoffs = {10};

  ASSERT_EQ(model.eval_precision(), MatMulPrecision::kFp32);
  const eval::EvalResult fp32 =
      eval::EvaluateRanking(model, split.test, options);

  model.set_eval_precision(MatMulPrecision::kBf16);
  const eval::EvalResult bf16 =
      eval::EvaluateRanking(model, split.test, options);

  const double hr_fp32 = fp32.recall.at(10);
  const double hr_bf16 = bf16.recall.at(10);
  const double ndcg_fp32 = fp32.ndcg.at(10);
  const double ndcg_bf16 = bf16.ndcg.at(10);
  // Logged so EXPERIMENTS.md's accuracy-delta table can be regenerated
  // from a plain test run.
  std::cout << "bf16-eval-delta: HR@10 fp32=" << hr_fp32
            << " bf16=" << hr_bf16 << " NDCG@10 fp32=" << ndcg_fp32
            << " bf16=" << ndcg_bf16 << "\n";
  ASSERT_GT(hr_fp32, 0.0) << "model learned nothing; test is vacuous";
  EXPECT_LE(std::fabs(hr_bf16 - hr_fp32), 0.005 * hr_fp32)
      << "HR@10 fp32=" << hr_fp32 << " bf16=" << hr_bf16;
  EXPECT_LE(std::fabs(ndcg_bf16 - ndcg_fp32), 0.005 * ndcg_fp32)
      << "NDCG@10 fp32=" << ndcg_fp32 << " bf16=" << ndcg_bf16;

  // Restoring fp32 reproduces the original result bit for bit: the knob is
  // fully reversible and scoped to the model.
  model.set_eval_precision(MatMulPrecision::kFp32);
  const eval::EvalResult again =
      eval::EvaluateRanking(model, split.test, options);
  EXPECT_EQ(fp32.recall, again.recall);
  EXPECT_EQ(fp32.ndcg, again.ndcg);
}

}  // namespace
}  // namespace vsan
