#include "nn/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/batcher.h"
#include "data/synthetic.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "optim/adam.h"
#include "util/early_stopping.h"
#include "util/fileio.h"
#include "util/rng.h"

namespace vsan {
namespace {

struct TwoLayer : nn::Module {
  explicit TwoLayer(Rng* rng) : a(4, 6, rng), b(6, 2, rng) {
    RegisterSubmodule(&a);
    RegisterSubmodule(&b);
  }
  nn::Linear a;
  nn::Linear b;
};

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Deterministic fake gradients so optimizer steps are reproducible across
// the save/load boundary.
void ApplyFakeGrads(const nn::Module& module, uint64_t seed) {
  Rng rng(seed);
  for (const Variable& p : module.Parameters()) {
    autograd::AccumulateGrad(p.node().get(),
                             Tensor::RandomNormal(p.value().shape(), &rng,
                                                  /*stddev=*/0.1f));
  }
}

std::vector<std::string> ParamBytes(const nn::Module& module) {
  std::vector<std::string> out;
  for (const Variable& p : module.Parameters()) {
    const Tensor& t = p.value();
    out.emplace_back(reinterpret_cast<const char*>(t.data()),
                     sizeof(float) * t.numel());
  }
  return out;
}

nn::TrainerState MakeTrainerState() {
  nn::TrainerState trainer;
  trainer.epochs_completed = 3;
  trainer.global_step = 77;
  Rng r1(11), r2(22);
  r1.Normal();  // populate the Box-Muller cache so it must round-trip
  trainer.rng_states.emplace_back();
  r1.SaveState(&trainer.rng_states.back());
  trainer.rng_states.emplace_back();
  r2.SaveState(&trainer.rng_states.back());
  trainer.data_state = std::string("opaque-batcher-bytes\0with-nul", 29);
  EarlyStopper stopper(/*patience=*/3);
  stopper.Update(0.5);
  stopper.Update(0.4);
  stopper.SaveState(&trainer.early_stopping_state);
  return trainer;
}

// --- Component state round-trips --------------------------------------

TEST(RngStateTest, RoundTripResumesStreamExactly) {
  Rng src(42);
  for (int i = 0; i < 7; ++i) src.Next();
  src.Normal();  // leaves a cached second deviate
  std::string blob;
  src.SaveState(&blob);
  EXPECT_EQ(blob.size(), Rng::kStateBytes);

  Rng dst(999);  // different seed, must be overwritten
  ASSERT_TRUE(dst.RestoreState(blob.data(), blob.size()).ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(src.Next(), dst.Next());
    EXPECT_EQ(src.Normal(), dst.Normal());
  }
}

TEST(RngStateTest, RejectsWrongSize) {
  Rng rng(1);
  std::string blob;
  rng.SaveState(&blob);
  EXPECT_FALSE(rng.RestoreState(blob.data(), blob.size() - 1).ok());
  EXPECT_FALSE(rng.RestoreState(blob.data(), 0).ok());
}

TEST(EarlyStopperStateTest, RoundTripKeepsPatienceCountdown) {
  EarlyStopper src(/*patience=*/2, /*min_delta=*/0.01);
  src.Update(0.30);
  src.Update(0.25);  // one bad round
  std::string blob;
  src.SaveState(&blob);

  EarlyStopper dst(/*patience=*/2, /*min_delta=*/0.01);
  ASSERT_TRUE(dst.RestoreState(blob.data(), blob.size()).ok());
  EXPECT_EQ(dst.best(), src.best());
  EXPECT_EQ(dst.rounds(), src.rounds());
  EXPECT_EQ(dst.best_round(), src.best_round());
  // Second consecutive bad round trips the stopper in both.
  EXPECT_TRUE(src.Update(0.24));
  EXPECT_TRUE(dst.Update(0.24));
}

TEST(EarlyStopperStateTest, RejectsMismatchedConfiguration) {
  EarlyStopper src(/*patience=*/3);
  src.Update(0.5);
  std::string blob;
  src.SaveState(&blob);
  EarlyStopper other_patience(/*patience=*/2);
  EXPECT_FALSE(other_patience.RestoreState(blob.data(), blob.size()).ok());
  EarlyStopper other_delta(/*patience=*/3, /*min_delta=*/0.1);
  EXPECT_FALSE(other_delta.RestoreState(blob.data(), blob.size()).ok());
  EarlyStopper ok(/*patience=*/3);
  EXPECT_FALSE(ok.RestoreState(blob.data(), blob.size() - 3).ok());
}

std::vector<data::TrainBatch> DrainEpochs(data::SequenceBatcher* batcher,
                                          int epochs) {
  std::vector<data::TrainBatch> out;
  for (int e = 0; e < epochs; ++e) {
    batcher->NewEpoch();
    data::TrainBatch batch;
    while (batcher->NextBatch(&batch)) out.push_back(batch);
  }
  return out;
}

TEST(BatcherStateTest, RoundTripResumesBatchOrderAcrossEpochs) {
  data::SyntheticConfig dc;
  dc.num_users = 50;
  dc.num_items = 30;
  const data::SequenceDataset ds = data::GenerateSynthetic(dc);
  data::SequenceBatcher::Options opts;
  opts.max_len = 8;
  opts.batch_size = 16;

  data::SequenceBatcher src(&ds, opts);
  src.NewEpoch();
  data::TrainBatch scratch;
  ASSERT_TRUE(src.NextBatch(&scratch));  // mid-epoch snapshot
  std::string blob;
  src.SaveState(&blob);

  data::SequenceBatcher dst(&ds, opts);
  ASSERT_TRUE(dst.RestoreState(blob).ok());

  // Remainder of the current epoch matches batch for batch...
  data::TrainBatch a, b;
  while (true) {
    const bool more_src = src.NextBatch(&a);
    const bool more_dst = dst.NextBatch(&b);
    ASSERT_EQ(more_src, more_dst);
    if (!more_src) break;
    EXPECT_EQ(a.inputs, b.inputs);
    EXPECT_EQ(a.next_targets, b.next_targets);
  }
  // ...and so do the next two reshuffled epochs (the restored RNG and
  // permutation reproduce the uninterrupted shuffle sequence).
  const auto ea = DrainEpochs(&src, 2);
  const auto eb = DrainEpochs(&dst, 2);
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].inputs, eb[i].inputs);
    EXPECT_EQ(ea[i].next_targets, eb[i].next_targets);
  }
}

TEST(BatcherStateTest, RejectsForeignOrTruncatedState) {
  data::SyntheticConfig dc;
  dc.num_users = 50;
  dc.num_items = 30;
  const data::SequenceDataset ds = data::GenerateSynthetic(dc);
  data::SyntheticConfig dc2 = dc;
  dc2.num_users = 20;
  const data::SequenceDataset other = data::GenerateSynthetic(dc2);
  data::SequenceBatcher::Options opts;
  opts.max_len = 8;

  data::SequenceBatcher src(&ds, opts);
  std::string blob;
  src.SaveState(&blob);

  data::SequenceBatcher wrong_dataset(&other, opts);
  EXPECT_FALSE(wrong_dataset.RestoreState(blob).ok());
  data::SequenceBatcher truncated(&ds, opts);
  EXPECT_FALSE(truncated.RestoreState(blob.substr(0, blob.size() / 2)).ok());
  EXPECT_FALSE(truncated.RestoreState("").ok());
}

// --- Full checkpoint round-trips --------------------------------------

TEST(CheckpointTest, RoundTripWithOptimizerResumesExactly) {
  Rng rng(3);
  TwoLayer src(&rng);
  optim::Adam::Options adam_opts;
  optim::Adam src_opt(src.Parameters(), adam_opts);
  for (uint64_t s = 0; s < 3; ++s) {
    ApplyFakeGrads(src, 100 + s);
    src_opt.Step();
    src_opt.ZeroGrad();
  }

  const nn::TrainerState trainer = MakeTrainerState();
  const std::string path = TempPath("ckpt_roundtrip.ckpt");
  const int64_t saves_before =
      obs::MetricsRegistry::Global().GetCounter("ckpt.saves")->value();
  ASSERT_TRUE(nn::SaveCheckpoint(path, src, &src_opt, trainer).ok());
  EXPECT_EQ(
      obs::MetricsRegistry::Global().GetCounter("ckpt.saves")->value(),
      saves_before + 1);

  Rng rng2(777);  // different init, must be overwritten
  TwoLayer dst(&rng2);
  optim::Adam dst_opt(dst.Parameters(), adam_opts);
  nn::TrainerState restored;
  ASSERT_TRUE(nn::LoadCheckpoint(path, &dst, &dst_opt, &restored).ok());

  EXPECT_EQ(ParamBytes(src), ParamBytes(dst));
  EXPECT_EQ(restored.epochs_completed, trainer.epochs_completed);
  EXPECT_EQ(restored.global_step, trainer.global_step);
  EXPECT_EQ(restored.rng_states, trainer.rng_states);
  EXPECT_EQ(restored.data_state, trainer.data_state);
  EXPECT_EQ(restored.early_stopping_state, trainer.early_stopping_state);
  EXPECT_EQ(dst_opt.step_count(), src_opt.step_count());

  // Identical further steps stay bitwise identical — proof the moment
  // buffers and bias-correction counter round-tripped, not just weights.
  for (uint64_t s = 0; s < 3; ++s) {
    ApplyFakeGrads(src, 200 + s);
    ApplyFakeGrads(dst, 200 + s);
    src_opt.Step();
    dst_opt.Step();
    src_opt.ZeroGrad();
    dst_opt.ZeroGrad();
    EXPECT_EQ(ParamBytes(src), ParamBytes(dst));
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, RoundTripWithoutOptimizer) {
  Rng rng(4);
  TwoLayer src(&rng);
  const nn::TrainerState trainer = MakeTrainerState();
  const std::string path = TempPath("ckpt_noopt.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(path, src, nullptr, trainer).ok());

  Rng rng2(5);
  TwoLayer dst(&rng2);
  nn::TrainerState restored;
  ASSERT_TRUE(nn::LoadCheckpoint(path, &dst, nullptr, &restored).ok());
  EXPECT_EQ(ParamBytes(src), ParamBytes(dst));
  EXPECT_EQ(restored.global_step, trainer.global_step);
  std::remove(path.c_str());
}

TEST(CheckpointTest, OptimizerPresenceMismatchIsRejected) {
  Rng rng(6);
  TwoLayer m(&rng);
  optim::Adam opt(m.Parameters(), {});
  nn::TrainerState trainer;

  const std::string with_opt = TempPath("ckpt_with_opt.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(with_opt, m, &opt, trainer).ok());
  nn::TrainerState out;
  Status status = nn::LoadCheckpoint(with_opt, &m, nullptr, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("optimizer"), std::string::npos);

  const std::string without_opt = TempPath("ckpt_without_opt.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(without_opt, m, nullptr, trainer).ok());
  status = nn::LoadCheckpoint(without_opt, &m, &opt, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("optimizer"), std::string::npos);

  std::remove(with_opt.c_str());
  std::remove(without_opt.c_str());
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  Rng rng(7);
  TwoLayer m(&rng);
  nn::TrainerState out;
  Status status =
      nn::LoadCheckpoint(TempPath("no_such.ckpt"), &m, nullptr, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, WrongArchitectureIsRejectedDescriptively) {
  Rng rng(8);
  TwoLayer src(&rng);
  const std::string path = TempPath("ckpt_arch.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(path, src, nullptr, MakeTrainerState()).ok());
  nn::Linear other(3, 3, &rng);
  nn::TrainerState out;
  Status status = nn::LoadCheckpoint(path, &other, nullptr, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("mismatch"), std::string::npos);
  std::remove(path.c_str());
}

// --- Corruption: every byte flip and every truncation must be rejected
// with a clean Status, never a crash (this suite also runs under ASan and
// UBSan, where any out-of-bounds or misaligned parse would trap).

std::string WriteReferenceCheckpoint(const std::string& path) {
  Rng rng(9);
  nn::Linear m(2, 3, &rng);  // small module keeps the sweep fast
  optim::Adam opt(m.Parameters(), {});
  ApplyFakeGrads(m, 1);
  opt.Step();
  opt.ZeroGrad();
  VSAN_CHECK(nn::SaveCheckpoint(path, m, &opt, MakeTrainerState()).ok());
  std::string bytes;
  VSAN_CHECK(ReadFileToString(path, &bytes).ok());
  return bytes;
}

Status TryLoad(const std::string& path) {
  Rng rng(9);
  nn::Linear m(2, 3, &rng);
  optim::Adam opt(m.Parameters(), {});
  nn::TrainerState out;
  return nn::LoadCheckpoint(path, &m, &opt, &out);
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  VSAN_CHECK(out.good());
}

TEST(CheckpointCorruptionTest, EveryByteFlipIsRejected) {
  const std::string ref_path = TempPath("ckpt_flip_ref.ckpt");
  const std::string bytes = WriteReferenceCheckpoint(ref_path);
  ASSERT_TRUE(TryLoad(ref_path).ok());  // sanity: pristine file loads

  const std::string mut_path = TempPath("ckpt_flip_mut.ckpt");
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    WriteRaw(mut_path, mutated);
    Status status = TryLoad(mut_path);
    EXPECT_FALSE(status.ok()) << "byte " << i << " flip was accepted";
    EXPECT_FALSE(status.message().empty()) << "byte " << i;
  }
  std::remove(ref_path.c_str());
  std::remove(mut_path.c_str());
}

TEST(CheckpointCorruptionTest, EveryTruncationIsRejected) {
  const std::string ref_path = TempPath("ckpt_trunc_ref.ckpt");
  const std::string bytes = WriteReferenceCheckpoint(ref_path);
  const std::string mut_path = TempPath("ckpt_trunc_mut.ckpt");
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteRaw(mut_path, bytes.substr(0, len));
    Status status = TryLoad(mut_path);
    EXPECT_FALSE(status.ok()) << "prefix of " << len << " bytes accepted";
  }
  std::remove(ref_path.c_str());
  std::remove(mut_path.c_str());
}

TEST(CheckpointCorruptionTest, TrailingGarbageIsRejected) {
  const std::string ref_path = TempPath("ckpt_tail_ref.ckpt");
  const std::string bytes = WriteReferenceCheckpoint(ref_path);
  const std::string mut_path = TempPath("ckpt_tail_mut.ckpt");
  WriteRaw(mut_path, bytes + "garbage");
  EXPECT_FALSE(TryLoad(mut_path).ok());
  std::remove(ref_path.c_str());
  std::remove(mut_path.c_str());
}

TEST(CheckpointCorruptionTest, ChecksumFailureIsDescriptive) {
  const std::string ref_path = TempPath("ckpt_crc_ref.ckpt");
  const std::string bytes = WriteReferenceCheckpoint(ref_path);
  // Flip one payload byte: the outer CRC must name the problem.
  std::string mutated = bytes;
  mutated[20] = static_cast<char>(mutated[20] ^ 0x01);
  const std::string mut_path = TempPath("ckpt_crc_mut.ckpt");
  WriteRaw(mut_path, mutated);
  Status status = TryLoad(mut_path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("checksum"), std::string::npos);
  std::remove(ref_path.c_str());
  std::remove(mut_path.c_str());
}

// --- Parameter blob (VSANPAR2) retrofit -------------------------------

TEST(ParamBlobTest, LegacyV1BlobStillLoads) {
  Rng rng(10);
  TwoLayer src(&rng);
  // Hand-write the pre-CRC V1 layout: magic, i64 count, then per parameter
  // i32 ndim + i64 dims + raw float data, no trailing checksum.
  std::ostringstream out;
  out.write("VSANPAR1", 8);
  const auto params = src.Parameters();
  const int64_t count = static_cast<int64_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Variable& p : params) {
    const Tensor& t = p.value();
    const int32_t ndim = t.ndim();
    out.write(reinterpret_cast<const char*>(&ndim), sizeof(ndim));
    for (int d = 0; d < ndim; ++d) {
      const int64_t dim = t.dim(d);
      out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    }
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(sizeof(float) * t.numel()));
  }

  Rng rng2(11);
  TwoLayer dst(&rng2);
  std::istringstream in(out.str());
  ASSERT_TRUE(nn::LoadParameters(&dst, in).ok());
  EXPECT_EQ(ParamBytes(src), ParamBytes(dst));
}

TEST(ParamBlobTest, V2CorruptionIsCaughtByCrc) {
  Rng rng(12);
  TwoLayer m(&rng);
  std::ostringstream out;
  ASSERT_TRUE(nn::SaveParameters(m, out).ok());
  std::string bytes = out.str();
  // Flip a float payload byte: shapes stay valid, only the CRC notices —
  // exactly the corruption class V1 silently accepted.
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  std::istringstream in(bytes);
  Status status = nn::LoadParameters(&m, in);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("checksum"), std::string::npos);
}

TEST(ParamBlobTest, FileLoadDistinguishesMissingFromCorrupt) {
  Rng rng(13);
  TwoLayer m(&rng);
  Status missing = nn::LoadParametersFromFile(&m, TempPath("absent.params"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);

  const std::string path = TempPath("corrupt.params");
  WriteRaw(path, "VSANPAR2 but then nonsense");
  Status corrupt = nn::LoadParametersFromFile(&m, path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vsan
