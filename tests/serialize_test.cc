#include "nn/serialize.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/vsan.h"
#include "data/dataset.h"
#include "nn/linear.h"
#include "util/rng.h"

namespace vsan {
namespace {

// Two stacked layers to exercise the submodule tree.
struct TwoLayer : nn::Module {
  TwoLayer(Rng* rng) : a(4, 6, rng), b(6, 2, rng) {
    RegisterSubmodule(&a);
    RegisterSubmodule(&b);
  }
  nn::Linear a;
  nn::Linear b;
};

TEST(SerializeTest, RoundTripRestoresExactValues) {
  Rng rng(3);
  TwoLayer src(&rng);
  std::ostringstream out;
  ASSERT_TRUE(nn::SaveParameters(src, out).ok());

  Rng rng2(999);  // different init, must be overwritten
  TwoLayer dst(&rng2);
  std::istringstream in(out.str());
  ASSERT_TRUE(nn::LoadParameters(&dst, in).ok());

  const auto ps = src.Parameters();
  const auto pd = dst.Parameters();
  ASSERT_EQ(ps.size(), pd.size());
  for (size_t i = 0; i < ps.size(); ++i) {
    ASSERT_TRUE(ps[i].value().SameShape(pd[i].value()));
    for (int64_t j = 0; j < ps[i].value().numel(); ++j) {
      EXPECT_EQ(ps[i].value()[j], pd[i].value()[j]);
    }
  }
}

TEST(SerializeTest, RejectsBadMagic) {
  Rng rng(4);
  TwoLayer m(&rng);
  std::istringstream in("definitely-not-a-parameter-blob");
  EXPECT_FALSE(nn::LoadParameters(&m, in).ok());
}

TEST(SerializeTest, RejectsParameterCountMismatch) {
  Rng rng(5);
  nn::Linear small(2, 2, &rng);
  std::ostringstream out;
  ASSERT_TRUE(nn::SaveParameters(small, out).ok());
  TwoLayer big(&rng);
  std::istringstream in(out.str());
  auto status = nn::LoadParameters(&big, in);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("count mismatch"), std::string::npos);
}

TEST(SerializeTest, RejectsShapeMismatch) {
  Rng rng(6);
  nn::Linear a(2, 3, &rng);
  nn::Linear b(3, 2, &rng);
  std::ostringstream out;
  ASSERT_TRUE(nn::SaveParameters(a, out).ok());
  std::istringstream in(out.str());
  EXPECT_FALSE(nn::LoadParameters(&b, in).ok());
}

TEST(SerializeTest, RejectsTruncatedBlob) {
  Rng rng(7);
  TwoLayer m(&rng);
  std::ostringstream out;
  ASSERT_TRUE(nn::SaveParameters(m, out).ok());
  const std::string full = out.str();
  std::istringstream in(full.substr(0, full.size() / 2));
  EXPECT_FALSE(nn::LoadParameters(&m, in).ok());
}

TEST(SerializeTest, FileHelpersReportMissingPath) {
  Rng rng(8);
  TwoLayer m(&rng);
  EXPECT_FALSE(nn::LoadParametersFromFile(&m, "/no/such/file.bin").ok());
  EXPECT_FALSE(
      nn::SaveParametersToFile(m, "/no/such/dir/file.bin").ok());
}

data::SequenceDataset CycleDataset(int32_t num_items, int32_t num_users,
                                   int32_t seq_len) {
  Rng rng(3);
  data::SequenceDataset ds(num_items);
  for (int32_t u = 0; u < num_users; ++u) {
    int32_t cur = static_cast<int32_t>(rng.UniformInt(1, num_items));
    std::vector<int32_t> seq;
    for (int32_t t = 0; t < seq_len; ++t) {
      seq.push_back(cur);
      cur = cur % num_items + 1;
    }
    ds.AddUser(std::move(seq));
  }
  return ds;
}

TEST(VsanCheckpointTest, SaveLoadReproducesScoresExactly) {
  core::VsanConfig cfg;
  cfg.max_len = 8;
  cfg.d = 16;
  cfg.dropout = 0.0f;
  core::Vsan model(cfg);
  TrainOptions opts;
  opts.epochs = 5;
  opts.batch_size = 16;
  model.Fit(CycleDataset(12, 40, 8), opts);

  const std::string path = ::testing::TempDir() + "/vsan_ckpt.bin";
  ASSERT_TRUE(model.Save(path).ok());

  auto loaded = core::Vsan::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->config().d, cfg.d);
  EXPECT_EQ(loaded.value()->NumParameters(), model.NumParameters());
  EXPECT_EQ(loaded.value()->Score({3, 4, 5}), model.Score({3, 4, 5}));
  EXPECT_EQ(loaded.value()->Score({9, 1}), model.Score({9, 1}));
  std::remove(path.c_str());
}

TEST(VsanCheckpointTest, LoadPreservesAblationFlags) {
  core::VsanConfig cfg;
  cfg.max_len = 6;
  cfg.d = 8;
  cfg.use_latent = false;
  cfg.infer_ffn = false;
  core::Vsan model(cfg);
  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 16;
  model.Fit(CycleDataset(10, 30, 6), opts);

  const std::string path = ::testing::TempDir() + "/vsan_ckpt2.bin";
  ASSERT_TRUE(model.Save(path).ok());
  auto loaded = core::Vsan::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->name(), "VSAN-z");
  EXPECT_FALSE(loaded.value()->config().infer_ffn);
  EXPECT_EQ(loaded.value()->Score({1, 2}), model.Score({1, 2}));
  std::remove(path.c_str());
}

TEST(VsanCheckpointTest, SaveBeforeFitFails) {
  core::Vsan model({});
  EXPECT_FALSE(model.Save("/tmp/never.bin").ok());
}

TEST(VsanCheckpointTest, LoadRejectsGarbageFile) {
  const std::string path = ::testing::TempDir() + "/vsan_garbage.bin";
  {
    std::ofstream out(path);
    out << "hello world\n";
  }
  EXPECT_FALSE(core::Vsan::Load(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vsan
