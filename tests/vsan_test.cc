// Behaviour tests for the VSAN core model: training dynamics, ablation
// switches, evaluation determinism, the next-k extension, and the posterior
// introspection API.

#include "core/vsan.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "util/rng.h"

namespace vsan {
namespace core {
namespace {

data::SequenceDataset CycleDataset(int32_t num_items, int32_t num_users,
                                   int32_t seq_len, uint64_t seed = 3) {
  Rng rng(seed);
  data::SequenceDataset ds(num_items);
  for (int32_t u = 0; u < num_users; ++u) {
    int32_t cur = static_cast<int32_t>(rng.UniformInt(1, num_items));
    std::vector<int32_t> seq;
    for (int32_t t = 0; t < seq_len; ++t) {
      seq.push_back(cur);
      cur = cur % num_items + 1;
    }
    ds.AddUser(std::move(seq));
  }
  return ds;
}

TrainOptions FastOptions(int32_t epochs) {
  TrainOptions opts;
  opts.epochs = epochs;
  opts.batch_size = 16;
  opts.learning_rate = 5e-3f;
  opts.seed = 19;
  return opts;
}

VsanConfig SmallConfig() {
  VsanConfig cfg;
  cfg.max_len = 8;
  cfg.d = 16;
  cfg.h1 = 1;
  cfg.h2 = 1;
  cfg.dropout = 0.0f;
  cfg.beta_max = 0.1f;
  cfg.anneal_steps = 50;
  return cfg;
}

int32_t RankOf(const std::vector<float>& scores, int32_t target) {
  int32_t rank = 1;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (static_cast<int32_t>(i) != target && scores[i] > scores[target]) {
      ++rank;
    }
  }
  return rank;
}

TEST(VsanTest, LossDecreasesAndLearnsCycle) {
  data::SequenceDataset ds = CycleDataset(12, 60, 8);
  Vsan model(SmallConfig());
  double first_loss = 0, last_loss = 0;
  TrainOptions opts = FastOptions(15);
  opts.epoch_callback = [&](const EpochStats& stats) {
    if (stats.epoch == 0) first_loss = stats.loss;
    last_loss = stats.loss;
  };
  model.Fit(ds, opts);
  EXPECT_LT(last_loss, first_loss);
  const auto scores = model.Score({9, 10, 11});
  EXPECT_LE(RankOf(scores, 12), 2);
  // Guard against degenerate all-equal scores (a tie makes every rank 1).
  EXPECT_GT(scores[12], scores[5]);
  EXPECT_NE(*std::max_element(scores.begin() + 1, scores.end()),
            *std::min_element(scores.begin() + 1, scores.end()));
}

TEST(VsanTest, EvalIsDeterministicDespiteStochasticLatent) {
  // Sec. IV-E: evaluation decodes from z = mu, so repeated scoring of the
  // same history must be bit-identical even though training samples z.
  data::SequenceDataset ds = CycleDataset(10, 30, 6);
  Vsan model(SmallConfig());
  model.Fit(ds, FastOptions(2));
  EXPECT_EQ(model.Score({1, 2, 3}), model.Score({1, 2, 3}));
}

TEST(VsanTest, AblationNames) {
  VsanConfig cfg = SmallConfig();
  EXPECT_EQ(Vsan(cfg).name(), "VSAN");
  cfg.use_latent = false;
  EXPECT_EQ(Vsan(cfg).name(), "VSAN-z");
  cfg.use_latent = true;
  cfg.infer_ffn = false;
  EXPECT_EQ(Vsan(cfg).name(), "VSAN-infer-feed");
  cfg.infer_ffn = true;
  cfg.gen_ffn = false;
  EXPECT_EQ(Vsan(cfg).name(), "VSAN-gene-feed");
  cfg.infer_ffn = false;
  EXPECT_EQ(Vsan(cfg).name(), "VSAN-all-feed");
}

TEST(VsanTest, VsanZSkipsLatentAndStillLearns) {
  VsanConfig cfg = SmallConfig();
  cfg.use_latent = false;
  data::SequenceDataset ds = CycleDataset(12, 60, 8);
  Vsan model(cfg);
  model.Fit(ds, FastOptions(12));
  const auto scores = model.Score({5, 6, 7});
  EXPECT_LE(RankOf(scores, 8), 3);
}

TEST(VsanTest, FfnAblationsTrain) {
  data::SequenceDataset ds = CycleDataset(10, 30, 6);
  for (const bool infer_ffn : {false, true}) {
    for (const bool gen_ffn : {false, true}) {
      VsanConfig cfg = SmallConfig();
      cfg.infer_ffn = infer_ffn;
      cfg.gen_ffn = gen_ffn;
      Vsan model(cfg);
      model.Fit(ds, FastOptions(2));
      const auto scores = model.Score({1, 2});
      for (float s : scores) EXPECT_TRUE(std::isfinite(s));
    }
  }
}

TEST(VsanTest, ZeroBlockConfigurations) {
  // Table IV includes h1 = 0 (no inference attention: raw embeddings feed
  // the latent layer) and h2 = 0 (z is decoded directly).
  data::SequenceDataset ds = CycleDataset(10, 30, 6);
  for (const auto& [h1, h2] :
       std::vector<std::pair<int32_t, int32_t>>{{0, 1}, {1, 0}, {0, 0}}) {
    VsanConfig cfg = SmallConfig();
    cfg.h1 = h1;
    cfg.h2 = h2;
    Vsan model(cfg);
    model.Fit(ds, FastOptions(2));
    const auto scores = model.Score({1, 2});
    ASSERT_EQ(scores.size(), 11u);
    for (float s : scores) EXPECT_TRUE(std::isfinite(s));
  }
}

TEST(VsanTest, NextKTrainingWorks) {
  VsanConfig cfg = SmallConfig();
  cfg.next_k = 2;  // Eq. 18 multi-hot targets
  data::SequenceDataset ds = CycleDataset(12, 60, 8);
  Vsan model(cfg);
  double last_loss = 1e9, first_loss = 0;
  TrainOptions opts = FastOptions(10);
  opts.epoch_callback = [&](const EpochStats& stats) {
    if (stats.epoch == 0) first_loss = stats.loss;
    last_loss = stats.loss;
  };
  model.Fit(ds, opts);
  EXPECT_LT(last_loss, first_loss);
  const auto scores = model.Score({5, 6, 7});
  // With k=2 both 8 and 9 should be highly ranked.
  EXPECT_LE(RankOf(scores, 8), 3);
  EXPECT_LE(RankOf(scores, 9), 3);
}

TEST(VsanTest, FixedBetaMode) {
  VsanConfig cfg = SmallConfig();
  cfg.fixed_beta = 0.3f;
  data::SequenceDataset ds = CycleDataset(10, 30, 6);
  Vsan model(cfg);
  model.Fit(ds, FastOptions(3));
  for (float s : model.Score({1, 2})) EXPECT_TRUE(std::isfinite(s));
}

TEST(VsanTest, PosteriorStatsExposeUncertainty) {
  data::SequenceDataset ds = CycleDataset(12, 60, 8);
  VsanConfig cfg = SmallConfig();
  Vsan model(cfg);
  model.Fit(ds, FastOptions(5));
  const PosteriorStats stats = model.InspectPosterior({3, 4, 5});
  ASSERT_EQ(stats.mu.size(), static_cast<size_t>(cfg.d));
  ASSERT_EQ(stats.sigma.size(), static_cast<size_t>(cfg.d));
  for (float s : stats.sigma) EXPECT_GT(s, 0.0f);
  EXPECT_GT(stats.MeanSigma(), 0.0f);
  for (float m : stats.mu) EXPECT_TRUE(std::isfinite(m));
}

TEST(VsanTest, PosteriorOnVsanZDies) {
  VsanConfig cfg = SmallConfig();
  cfg.use_latent = false;
  data::SequenceDataset ds = CycleDataset(10, 30, 6);
  Vsan model(cfg);
  model.Fit(ds, FastOptions(1));
  EXPECT_DEATH(model.InspectPosterior({1}), "posterior");
}

TEST(VsanTest, ParameterCountGrowsWithBlocks) {
  VsanConfig small = SmallConfig();
  VsanConfig big = SmallConfig();
  big.h1 = 3;
  big.h2 = 2;
  data::SequenceDataset ds = CycleDataset(10, 30, 6);
  Vsan a(small), b(big);
  a.Fit(ds, FastOptions(1));
  b.Fit(ds, FastOptions(1));
  EXPECT_GT(b.NumParameters(), a.NumParameters());
}

TEST(VsanTest, SampledLatentScoresVaryButMeanScoresDoNot) {
  data::SequenceDataset ds = CycleDataset(12, 60, 8);
  Vsan model(SmallConfig());
  model.Fit(ds, FastOptions(5));
  // Mean-decoded scores are deterministic...
  EXPECT_EQ(model.Score({3, 4, 5}), model.Score({3, 4, 5}));
  // ...while sampled-z scores differ between draws (sigma > 0).
  const auto a = model.ScoreWithSampledLatent({3, 4, 5});
  const auto b = model.ScoreWithSampledLatent({3, 4, 5});
  ASSERT_EQ(a.size(), b.size());
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) any_diff |= (a[i] != b[i]);
  EXPECT_TRUE(any_diff);
  for (float v : a) EXPECT_TRUE(std::isfinite(v));
}

TEST(VsanTest, SampledLatentOnVsanZDies) {
  VsanConfig cfg = SmallConfig();
  cfg.use_latent = false;
  data::SequenceDataset ds = CycleDataset(10, 30, 6);
  Vsan model(cfg);
  model.Fit(ds, FastOptions(1));
  EXPECT_DEATH(model.ScoreWithSampledLatent({1}), "posterior");
}

TEST(VsanTest, UntiedOutputMatchesEq19AndTrains) {
  VsanConfig cfg = SmallConfig();
  cfg.tie_output = false;  // the paper's free W_g
  data::SequenceDataset ds = CycleDataset(12, 60, 8);
  Vsan model(cfg);
  model.Fit(ds, FastOptions(15));
  const auto scores = model.Score({5, 6, 7});
  EXPECT_LE(RankOf(scores, 8), 3);
  EXPECT_GT(scores[8], scores[3]);
}

TEST(VsanTest, ScoreBeforeFitDies) {
  Vsan model(SmallConfig());
  EXPECT_DEATH(model.Score({1}), "Fit");
}

}  // namespace
}  // namespace core
}  // namespace vsan
