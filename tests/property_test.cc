// Parameterized property suites: mathematical invariants that must hold
// across a sweep of shapes and configurations (gtest TEST_P).

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "data/batcher.h"
#include "nn/attention.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace vsan {
namespace {

// --- Softmax properties over shapes ------------------------------------------

class SoftmaxProperty : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(SoftmaxProperty, ShiftInvariantAndNormalized) {
  const auto [rows, cols] = GetParam();
  Rng rng(rows * 100 + cols);
  Tensor x = Tensor::RandomNormal({rows, cols}, &rng, 2.0f);
  Tensor shifted = AddScalar(x, 37.5f);
  Tensor a = SoftmaxLastDim(x);
  Tensor b = SoftmaxLastDim(shifted);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-5f);
  }
  for (int64_t r = 0; r < rows; ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < cols; ++c) sum += a.at(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SoftmaxProperty,
                         ::testing::Combine(::testing::Values(1, 3, 16),
                                            ::testing::Values(2, 7, 64)));

// --- LayerNorm properties -----------------------------------------------------

class LayerNormProperty : public ::testing::TestWithParam<int> {};

TEST_P(LayerNormProperty, InvariantToAffineInputTransform) {
  // With unit gain and zero bias, LayerNorm(a*x + b) == LayerNorm(x) for
  // a > 0 (per-row standardization).
  const int d = GetParam();
  Rng rng(d);
  Variable gamma(Tensor::Ones({d}), false);
  Variable beta(Tensor::Zeros({d}), false);
  Tensor x = Tensor::RandomNormal({4, d}, &rng);
  Tensor transformed = AddScalar(MulScalar(x, 3.0f), -1.25f);
  Variable ya = ops::LayerNorm(Variable::Constant(x), gamma, beta);
  Variable yb = ops::LayerNorm(Variable::Constant(transformed), gamma, beta);
  for (int64_t i = 0; i < ya.value().numel(); ++i) {
    EXPECT_NEAR(ya.value()[i], yb.value()[i], 2e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, LayerNormProperty,
                         ::testing::Values(2, 8, 33, 64));

// --- KL properties ------------------------------------------------------------

TEST(KlProperty, ZeroAtStandardNormalPositiveElsewhere) {
  Variable mu0(Tensor::Zeros({3, 4}), true);
  Variable lv0(Tensor::Zeros({3, 4}), true);
  EXPECT_NEAR(ops::KlStandardNormal(mu0, lv0).value()[0], 0.0f, 1e-6f);

  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    Variable mu(Tensor::RandomNormal({2, 3}, &rng), true);
    Variable lv(Tensor::RandomNormal({2, 3}, &rng, 0.5f), true);
    EXPECT_GT(ops::KlStandardNormal(mu, lv).value()[0], 0.0f);
  }
}

TEST(KlProperty, GrowsWithMeanMagnitude) {
  Variable lv(Tensor::Zeros({1, 8}), false);
  float prev = -1.0f;
  for (float m : {0.0f, 0.5f, 1.0f, 2.0f}) {
    Variable mu(Tensor::Full({1, 8}, m), false);
    // KL needs at least one grad-requiring parent to build a node; attach
    // a dummy requires-grad logvar.
    Variable lv_grad(Tensor::Zeros({1, 8}), true);
    const float kl = ops::KlStandardNormal(mu, lv_grad).value()[0];
    EXPECT_GT(kl, prev);
    prev = kl;
  }
  (void)lv;
}

// --- Reparameterization statistics ---------------------------------------------

class ReparamProperty : public ::testing::TestWithParam<float> {};

TEST_P(ReparamProperty, SampleMomentsMatchPosterior) {
  const float sigma = GetParam();
  const float logvar = 2.0f * std::log(sigma);
  const float mu = 0.7f;
  Variable mu_v(Tensor::Full({1, 1}, mu), true);
  Variable lv_v(Tensor::Full({1, 1}, logvar), true);
  Rng rng(42);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const float z =
        ops::Reparameterize(mu_v, lv_v, &rng, /*sample=*/true).value()[0];
    sum += z;
    sq += static_cast<double>(z) * z;
  }
  const double mean = sum / n;
  const double std = std::sqrt(sq / n - mean * mean);
  EXPECT_NEAR(mean, mu, 4.0 * sigma / std::sqrt(n) + 1e-3);
  EXPECT_NEAR(std, sigma, 0.05 * sigma + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, ReparamProperty,
                         ::testing::Values(0.1f, 0.5f, 1.0f, 2.0f));

// --- Attention causality over a grid -------------------------------------------

class AttentionCausality
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(AttentionCausality, NoLeakAtAnyPerturbedPosition) {
  const auto [n, d, heads] = GetParam();
  Rng rng(n * 1000 + d * 10 + heads);
  nn::SelfAttentionBlockConfig cfg;
  cfg.d = d;
  cfg.num_heads = heads;
  cfg.dropout = 0.0f;
  nn::SelfAttentionBlock block(cfg, &rng);
  block.SetTraining(false);
  const Tensor mask = nn::MakeCausalMask(n);
  Rng data_rng(7);
  Tensor base = Tensor::RandomNormal({1, n, d}, &data_rng);

  for (int64_t p = 1; p < n; ++p) {  // perturb each position in turn
    Tensor perturbed = base;
    perturbed.at(0, p, 0) += 1.5f;
    Rng d1(1), d2(1);
    Variable a = block.Forward(Variable::Constant(base), mask, &d1);
    Variable b = block.Forward(Variable::Constant(perturbed), mask, &d2);
    for (int64_t t = 0; t < p; ++t) {
      for (int64_t j = 0; j < d; ++j) {
        ASSERT_FLOAT_EQ(a.value().at(0, t, j), b.value().at(0, t, j))
            << "perturbed " << p << " leaked to " << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AttentionCausality,
    ::testing::Values(std::make_tuple(3, 4, 1), std::make_tuple(6, 8, 1),
                      std::make_tuple(6, 8, 2), std::make_tuple(4, 12, 4)));

// --- Batcher properties over lengths --------------------------------------------

class BatcherProperty : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(BatcherProperty, TargetsAlwaysFollowInputsInTheSequence) {
  const auto [seq_len, max_len] = GetParam();
  data::SequenceDataset ds(100);
  std::vector<int32_t> seq;
  for (int i = 0; i < seq_len; ++i) seq.push_back(i + 1);  // 1, 2, 3, ...
  ds.AddUser(seq);
  data::SequenceBatcher::Options opts;
  opts.max_len = max_len;
  opts.batch_size = 1;
  data::SequenceBatcher batcher(&ds, opts);
  data::TrainBatch batch;
  ASSERT_TRUE(batcher.NextBatch(&batch));
  for (int64_t i = 0; i < batch.seq_len; ++i) {
    if (batch.next_targets[i] == -1) {
      EXPECT_EQ(batch.inputs[i], data::kPaddingItem);
      EXPECT_EQ(batch.position_mask[i], 0.0f);
    } else {
      // The increasing ramp makes "next" checkable: target == input + 1.
      EXPECT_EQ(batch.next_targets[i], batch.inputs[i] + 1);
      EXPECT_EQ(batch.position_mask[i], 1.0f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, BatcherProperty,
                         ::testing::Combine(::testing::Values(2, 5, 9, 20),
                                            ::testing::Values(4, 8, 16)));

// --- GEMM near-associativity -----------------------------------------------------

TEST(MatMulProperty, AssociativityWithinTolerance) {
  Rng rng(21);
  Tensor a = Tensor::RandomNormal({5, 6}, &rng);
  Tensor b = Tensor::RandomNormal({6, 7}, &rng);
  Tensor c = Tensor::RandomNormal({7, 4}, &rng);
  Tensor left = MatMul2D(MatMul2D(a, b), c);
  Tensor right = MatMul2D(a, MatMul2D(b, c));
  for (int64_t i = 0; i < left.numel(); ++i) {
    EXPECT_NEAR(left[i], right[i], 1e-3f);
  }
}

TEST(MatMulProperty, TransposeIdentity) {
  // (A B)^T == B^T A^T.
  Rng rng(22);
  Tensor a = Tensor::RandomNormal({4, 5}, &rng);
  Tensor b = Tensor::RandomNormal({5, 3}, &rng);
  Tensor lhs = Transpose2D(MatMul2D(a, b));
  Tensor rhs = MatMul2D(Transpose2D(b), Transpose2D(a));
  for (int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_NEAR(lhs[i], rhs[i], 1e-4f);
  }
}

}  // namespace
}  // namespace vsan
