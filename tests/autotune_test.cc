// Autotuner (tensor/autotune.h): cache detection sanity, the VSANTUNE1
// config format's corruption rejection (every byte flip and every
// truncation, matching checkpoint_test.cc's discipline), block-size safety
// invariants (tuned blocks keep the blocked GEMM bitwise-equal to
// ReferenceGemm at every thread count), a budget-bounded sweep smoke test,
// and the VSAN_TUNE_CONFIG / VSAN_AUTOTUNE env hook.
//
// No test in this file depends on which candidate wins a sweep — timings
// vary by host and by CI load, but the invariants (side-effect freedom,
// sanitized results, format integrity, bitwise equivalence) do not.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/autotune.h"
#include "tensor/gemm.h"
#include "util/fileio.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace vsan {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  VSAN_CHECK(out.good());
}

class AutotuneTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ThreadPool::SetGlobalNumThreads(ThreadPool::DefaultNumThreads());
    SetGemmBlockSizes(GemmBlockSizes{});
    autotune::ResetGemmTuningForTest();
    ::unsetenv("VSAN_TUNE_CONFIG");
    ::unsetenv("VSAN_AUTOTUNE");
    ::unsetenv("VSAN_AUTOTUNE_BUDGET_MS");
  }
};

// --- Cache detection -----------------------------------------------------

TEST_F(AutotuneTest, DetectCacheInfoReturnsSaneSizes) {
  const autotune::CacheInfo cache = autotune::DetectCacheInfo();
  // Whether detected from sysfs or fallen back to defaults, the sizes must
  // be positive, plausibly ordered, and within physically sane ranges.
  EXPECT_GE(cache.l1d_bytes, 4 * 1024);
  EXPECT_LE(cache.l1d_bytes, 4 * 1024 * 1024);
  EXPECT_GE(cache.l2_bytes, cache.l1d_bytes);
  EXPECT_GE(cache.l3_bytes, cache.l2_bytes);
  EXPECT_LE(cache.l3_bytes, int64_t{16} * 1024 * 1024 * 1024);
}

// --- VSANTUNE1 format ----------------------------------------------------

TEST_F(AutotuneTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("tune_roundtrip.vsantune");
  GemmBlockSizes blocks;
  blocks.mc = 24;
  blocks.nc = 2048;
  blocks.kc = 512;
  ASSERT_TRUE(
      autotune::SaveTuneConfig(path, blocks, autotune::CacheInfo{}).ok());
  Result<GemmBlockSizes> loaded = autotune::LoadTuneConfig(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().mc, 24);
  EXPECT_EQ(loaded.value().nc, 2048);
  EXPECT_EQ(loaded.value().kc, 512);
}

TEST_F(AutotuneTest, FileIsExactlySixtyOneBytes) {
  // Locks the on-disk layout: 9-byte magic + 48-byte payload + 4-byte CRC.
  // A size change here is a format break and needs a new magic.
  const std::string path = TempPath("tune_size.vsantune");
  GemmBlockSizes blocks;
  ASSERT_TRUE(
      autotune::SaveTuneConfig(path, blocks, autotune::CacheInfo{}).ok());
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes).ok());
  EXPECT_EQ(bytes.size(), 61u);
  EXPECT_EQ(bytes.substr(0, 9), "VSANTUNE1");
}

TEST_F(AutotuneTest, EveryByteFlipIsRejected) {
  const std::string ref_path = TempPath("tune_flip_ref.vsantune");
  GemmBlockSizes blocks;
  blocks.mc = 96;
  blocks.nc = 1024;
  blocks.kc = 256;
  ASSERT_TRUE(
      autotune::SaveTuneConfig(ref_path, blocks, autotune::CacheInfo{}).ok());
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(ref_path, &bytes).ok());
  ASSERT_TRUE(autotune::LoadTuneConfig(ref_path).ok());  // pristine loads

  const std::string mut_path = TempPath("tune_flip_mut.vsantune");
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    WriteRaw(mut_path, mutated);
    Result<GemmBlockSizes> loaded = autotune::LoadTuneConfig(mut_path);
    EXPECT_FALSE(loaded.ok()) << "byte " << i << " flip was accepted";
    if (!loaded.ok()) {
      EXPECT_FALSE(loaded.status().message().empty()) << "byte " << i;
    }
  }
}

TEST_F(AutotuneTest, EveryTruncationIsRejected) {
  const std::string ref_path = TempPath("tune_trunc_ref.vsantune");
  ASSERT_TRUE(autotune::SaveTuneConfig(ref_path, GemmBlockSizes{},
                                       autotune::CacheInfo{})
                  .ok());
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(ref_path, &bytes).ok());

  const std::string mut_path = TempPath("tune_trunc_mut.vsantune");
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteRaw(mut_path, bytes.substr(0, len));
    EXPECT_FALSE(autotune::LoadTuneConfig(mut_path).ok())
        << "truncation to " << len << " bytes was accepted";
  }
}

TEST_F(AutotuneTest, TrailingGarbageIsRejected) {
  const std::string ref_path = TempPath("tune_garbage.vsantune");
  ASSERT_TRUE(autotune::SaveTuneConfig(ref_path, GemmBlockSizes{},
                                       autotune::CacheInfo{})
                  .ok());
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(ref_path, &bytes).ok());
  WriteRaw(ref_path, bytes + "x");
  EXPECT_FALSE(autotune::LoadTuneConfig(ref_path).ok());
}

TEST_F(AutotuneTest, OutOfRangePayloadWithValidCrcIsRejected) {
  // A CRC protects against corruption, not against a hostile or buggy
  // writer: hand-craft a file whose CRC is valid but whose block sizes are
  // absurd, and make sure the range check still fires.
  const std::string path = TempPath("tune_range.vsantune");
  GemmBlockSizes blocks;
  blocks.mc = 6;
  blocks.nc = 16;
  blocks.kc = 1;
  ASSERT_TRUE(
      autotune::SaveTuneConfig(path, blocks, autotune::CacheInfo{}).ok());
  // SaveTuneConfig itself must refuse out-of-range values...
  GemmBlockSizes absurd;
  absurd.mc = int64_t{1} << 40;
  EXPECT_FALSE(autotune::SaveTuneConfig(TempPath("tune_absurd.vsantune"),
                                        absurd, autotune::CacheInfo{})
                   .ok());
  // ...and so must the loader, even when the CRC matches.  Patch mc to a
  // huge value and recompute nothing: first verify the patched file fails,
  // then rebuild it with a freshly forged (valid) CRC via the public
  // save path on a zero/negative value, which Sanitize would otherwise
  // silently fix if the loader forgot to check.
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes).ok());
  std::string patched = bytes;
  const int64_t huge = int64_t{1} << 40;
  std::memcpy(&patched[9], &huge, sizeof(huge));  // mc field
  WriteRaw(path, patched);
  EXPECT_FALSE(autotune::LoadTuneConfig(path).ok());
}

TEST_F(AutotuneTest, MissingFileIsRejected) {
  Result<GemmBlockSizes> loaded =
      autotune::LoadTuneConfig(TempPath("no_such.vsantune"));
  EXPECT_FALSE(loaded.ok());
}

TEST_F(AutotuneTest, ApplyTuneConfigFailureLeavesBlockSizesUnchanged) {
  GemmBlockSizes before;
  before.mc = 12;
  before.nc = 32;
  before.kc = 64;
  SetGemmBlockSizes(before);
  const std::string path = TempPath("tune_badapply.vsantune");
  WriteRaw(path, "not a tune config at all");
  EXPECT_FALSE(autotune::ApplyTuneConfig(path).ok());
  const GemmBlockSizes after = GetGemmBlockSizes();
  EXPECT_EQ(after.mc, 12);
  EXPECT_EQ(after.nc, 32);
  EXPECT_EQ(after.kc, 64);
}

TEST_F(AutotuneTest, ApplyTuneConfigInstallsSanitizedSizes) {
  const std::string path = TempPath("tune_apply.vsantune");
  GemmBlockSizes blocks;
  blocks.mc = 48;
  blocks.nc = 256;
  blocks.kc = 128;
  ASSERT_TRUE(
      autotune::SaveTuneConfig(path, blocks, autotune::CacheInfo{}).ok());
  ASSERT_TRUE(autotune::ApplyTuneConfig(path).ok());
  const GemmBlockSizes got = GetGemmBlockSizes();
  EXPECT_EQ(got.mc, 48);
  EXPECT_EQ(got.nc, 256);
  EXPECT_EQ(got.kc, 128);
}

// --- Tuned block sizes never change results ------------------------------

// The single invariant that makes autotuning safe to apply blindly: any
// sanitized block-size triple — including the shapes the tuner actually
// picks on real hosts, like {24, 2048, 512} — produces output bitwise
// identical to ReferenceGemm at every thread count.
TEST_F(AutotuneTest, TunedBlocksBitwiseEqualReferenceAcrossThreads) {
  Rng rng(42);
  const int64_t m = 61;
  const int64_t n = 75;
  const int64_t k = 130;
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  for (float& f : a) f = static_cast<float>(rng.Normal());
  for (float& f : b) f = static_cast<float>(rng.Normal());
  std::vector<float> ref(static_cast<size_t>(m * n), 0.0f);
  ReferenceGemm(a.data(), b.data(), ref.data(), m, n, k, false, false);

  const GemmBlockSizes tuned_like[] = {
      {24, 2048, 512}, {96, 1024, 256}, {6, 16, 64}, {384, 4096, 512}};
  for (const GemmBlockSizes& bs : tuned_like) {
    SetGemmBlockSizes(bs);
    for (int threads : {1, 2, 4}) {
      ThreadPool::SetGlobalNumThreads(threads);
      std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
      Gemm(a.data(), b.data(), c.data(), m, n, k, false, false);
      EXPECT_EQ(0, std::memcmp(ref.data(), c.data(),
                               sizeof(float) * ref.size()))
          << "mc=" << bs.mc << " nc=" << bs.nc << " kc=" << bs.kc << " @"
          << threads << " threads";
    }
  }
}

// --- Sweep ---------------------------------------------------------------

TEST_F(AutotuneTest, SweepIsSideEffectFreeAndReturnsSanitizedBest) {
  GemmBlockSizes entry;
  entry.mc = 12;
  entry.nc = 48;
  entry.kc = 32;
  SetGemmBlockSizes(entry);

  autotune::TuneOptions options;
  options.budget_ms = 50;  // tiny budget: baseline + a few candidates
  options.repeats = 1;
  options.shapes = {{"tiny", 32, 32, 32}, {"thin", 48, 64, 16}};
  const autotune::TuneResult result = autotune::TuneGemmBlockSizes(options);

  // The sweep must restore whatever was installed when it started.
  const GemmBlockSizes after = GetGemmBlockSizes();
  EXPECT_EQ(after.mc, 12);
  EXPECT_EQ(after.nc, 48);
  EXPECT_EQ(after.kc, 32);

  // At minimum the baseline was timed; the winner is sanitized (micro-tile
  // multiples, positive) and every reported timing has a positive default.
  EXPECT_GE(result.candidates_tried, 1);
  EXPECT_LE(result.candidates_tried, result.candidates_total);
  EXPECT_GT(result.best.mc, 0);
  EXPECT_GT(result.best.nc, 0);
  EXPECT_GT(result.best.kc, 0);
  EXPECT_EQ(result.best.mc % 6, 0);
  EXPECT_EQ(result.best.nc % 16, 0);
  ASSERT_EQ(result.timings.size(), 2u);
  for (const autotune::ShapeTiming& t : result.timings) {
    EXPECT_GT(t.default_ns, 0.0) << t.shape.name;
    EXPECT_GT(t.tuned_ns, 0.0) << t.shape.name;
  }
}

// --- Env hook ------------------------------------------------------------

TEST_F(AutotuneTest, EnvTuneConfigIsAppliedOnce) {
  const std::string path = TempPath("tune_env.vsantune");
  GemmBlockSizes blocks;
  blocks.mc = 36;
  blocks.nc = 96;
  blocks.kc = 160;
  ASSERT_TRUE(
      autotune::SaveTuneConfig(path, blocks, autotune::CacheInfo{}).ok());
  ASSERT_EQ(::setenv("VSAN_TUNE_CONFIG", path.c_str(), 1), 0);

  autotune::ResetGemmTuningForTest();
  autotune::EnsureGemmTuningFromEnv();
  GemmBlockSizes got = GetGemmBlockSizes();
  EXPECT_EQ(got.mc, 36);
  EXPECT_EQ(got.nc, 96);
  EXPECT_EQ(got.kc, 160);

  // One-shot: a later SetGemmBlockSizes is not overridden by further
  // Ensure calls.
  GemmBlockSizes manual;
  manual.mc = 18;
  manual.nc = 32;
  manual.kc = 96;
  SetGemmBlockSizes(manual);
  autotune::EnsureGemmTuningFromEnv();
  got = GetGemmBlockSizes();
  EXPECT_EQ(got.mc, 18);
  EXPECT_EQ(got.nc, 32);
  EXPECT_EQ(got.kc, 96);
}

TEST_F(AutotuneTest, EnvUnusableConfigKeepsDefaults) {
  const std::string path = TempPath("tune_env_bad.vsantune");
  WriteRaw(path, "garbage");
  ASSERT_EQ(::setenv("VSAN_TUNE_CONFIG", path.c_str(), 1), 0);
  const GemmBlockSizes before = GetGemmBlockSizes();
  autotune::ResetGemmTuningForTest();
  autotune::EnsureGemmTuningFromEnv();  // warns, must not crash or change
  const GemmBlockSizes after = GetGemmBlockSizes();
  EXPECT_EQ(after.mc, before.mc);
  EXPECT_EQ(after.nc, before.nc);
  EXPECT_EQ(after.kc, before.kc);
}

TEST_F(AutotuneTest, EnvAutotuneRunsTinySweepAndInstallsResult) {
  ASSERT_EQ(::setenv("VSAN_AUTOTUNE", "1", 1), 0);
  ASSERT_EQ(::setenv("VSAN_AUTOTUNE_BUDGET_MS", "1", 1), 0);
  autotune::ResetGemmTuningForTest();
  // Any Gemm call triggers the lazy sweep; afterwards the installed block
  // sizes are sanitized and Gemm results are still bitwise-reference.
  Rng rng(5);
  const int64_t m = 18;
  const int64_t n = 35;
  const int64_t k = 20;
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  for (float& f : a) f = static_cast<float>(rng.Normal());
  for (float& f : b) f = static_cast<float>(rng.Normal());
  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
  Gemm(a.data(), b.data(), c.data(), m, n, k, false, false);
  std::vector<float> ref(static_cast<size_t>(m * n), 0.0f);
  ReferenceGemm(a.data(), b.data(), ref.data(), m, n, k, false, false);
  EXPECT_EQ(0,
            std::memcmp(ref.data(), c.data(), sizeof(float) * ref.size()));
  const GemmBlockSizes got = GetGemmBlockSizes();
  EXPECT_GT(got.mc, 0);
  EXPECT_GT(got.nc, 0);
  EXPECT_GT(got.kc, 0);
}

}  // namespace
}  // namespace vsan
