// Coverage for corners not exercised elsewhere: logging/CHECK macros,
// stopwatch, right-padded batching, axis-0/axis-2 shape ops, and a
// composed multi-head attention gradient check.

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"
#include "data/batcher.h"
#include "testing/gradcheck.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace vsan {
namespace {

TEST(LoggingTest, CheckMacrosPassOnTrueConditions) {
  VSAN_CHECK(true) << "never printed";
  VSAN_CHECK_EQ(1, 1);
  VSAN_CHECK_NE(1, 2);
  VSAN_CHECK_LT(1, 2);
  VSAN_CHECK_LE(2, 2);
  VSAN_CHECK_GT(3, 2);
  VSAN_CHECK_GE(3, 3);
}

TEST(LoggingDeathTest, CheckFailureIncludesExpressionAndValues) {
  const int a = 3, b = 4;
  EXPECT_DEATH(VSAN_CHECK_EQ(a, b), "Check failed: .*3 vs 4");
  EXPECT_DEATH(VSAN_CHECK(a > b) << "custom context", "custom context");
}

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotonic) {
  Stopwatch sw;
  const double t1 = sw.ElapsedSeconds();
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  // Keep the loop from being optimized away.
  ASSERT_GT(sink, 0.0);
  const double t2 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  EXPECT_NEAR(sw.ElapsedMillis(), sw.ElapsedSeconds() * 1e3,
              sw.ElapsedSeconds() * 1e3 * 0.5 + 1.0);
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), t2 + 1.0);
}

TEST(BatcherTest, RightPaddedBatchesAlignFromPositionZero) {
  data::SequenceDataset ds(9);
  ds.AddUser({1, 2, 3, 4});
  data::SequenceBatcher::Options opts;
  opts.max_len = 6;
  opts.batch_size = 1;
  opts.pad_left = false;
  data::SequenceBatcher batcher(&ds, opts);
  data::TrainBatch batch;
  ASSERT_TRUE(batcher.NextBatch(&batch));
  EXPECT_EQ(batch.inputs, (std::vector<int32_t>{1, 2, 3, 0, 0, 0}));
  EXPECT_EQ(batch.next_targets, (std::vector<int32_t>{2, 3, 4, -1, -1, -1}));
}

TEST(BatcherTest, RightPaddedLongSequenceStillKeepsMostRecent) {
  data::SequenceDataset ds(9);
  ds.AddUser({1, 2, 3, 4, 5, 6, 7});
  data::SequenceBatcher::Options opts;
  opts.max_len = 3;
  opts.batch_size = 1;
  opts.pad_left = false;
  data::SequenceBatcher batcher(&ds, opts);
  data::TrainBatch batch;
  ASSERT_TRUE(batcher.NextBatch(&batch));
  EXPECT_EQ(batch.inputs, (std::vector<int32_t>{4, 5, 6}));
  EXPECT_EQ(batch.next_targets, (std::vector<int32_t>{5, 6, 7}));
}

Tensor Rand(std::vector<int64_t> shape, uint64_t seed, float stddev = 1.0f) {
  Rng rng(seed);
  return Tensor::RandomNormal(std::move(shape), &rng, stddev);
}

TEST(GradCheckMore, ConcatAxis0) {
  testing::ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        Variable c = ops::Concat({v[0], v[1]}, /*axis=*/0);
        return ops::Mean(ops::Mul(c, c));
      },
      {Rand({2, 3}, 200), Rand({4, 3}, 201)});
}

TEST(GradCheckMore, SliceLastAxisOf3D) {
  testing::ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        Variable s = ops::Slice(v[0], /*axis=*/2, /*start=*/1, /*len=*/2);
        return ops::Mean(ops::Mul(s, s));
      },
      {Rand({2, 3, 4}, 202)});
}

TEST(GradCheckMore, SliceFirstAxis) {
  testing::ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        Variable s = ops::Slice(v[0], /*axis=*/0, /*start=*/1, /*len=*/1);
        return ops::Mean(ops::Mul(s, s));
      },
      {Rand({3, 4}, 203)});
}

TEST(GradCheckMore, ComposedMultiHeadAttention) {
  // Exact multi-head composition used by SelfAttentionBlock: slice the
  // feature axis per head, attend, concat.
  Tensor mask = Tensor::Zeros({3, 3});
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = i + 1; j < 3; ++j) mask.at(i, j) = -1e9f;
  }
  testing::ExpectGradientsClose(
      [mask](const std::vector<Variable>& v) {
        const Variable& x = v[0];
        Variable q = ops::MatMul(x, v[1]);
        Variable k = ops::MatMul(x, v[2]);
        Variable val = ops::MatMul(x, v[3]);
        std::vector<Variable> heads;
        for (int h = 0; h < 2; ++h) {
          Variable qh = ops::Slice(q, 2, h * 2, 2);
          Variable kh = ops::Slice(k, 2, h * 2, 2);
          Variable vh = ops::Slice(val, 2, h * 2, 2);
          Variable scores =
              ops::Scale(ops::MatMul(qh, ops::TransposeLast2(kh)), 0.7f);
          Variable attn =
              ops::Softmax(ops::AddBroadcastMatrix(scores, mask));
          heads.push_back(ops::MatMul(attn, vh));
        }
        Variable out = ops::Concat(heads, 2);
        return ops::Mean(ops::Mul(out, out));
      },
      {Rand({1, 3, 4}, 204), Rand({4, 4}, 205, 0.5f), Rand({4, 4}, 206, 0.5f),
       Rand({4, 4}, 207, 0.5f)},
      /*eps=*/1e-2, /*rel_tol=*/6e-2, /*abs_tol=*/1.5e-2);
}

TEST(Tensor4DTest, ElementwiseOpsWorkOn4D) {
  Rng rng(208);
  Tensor a = Tensor::RandomNormal({2, 2, 2, 2}, &rng);
  Tensor b = Tensor::RandomNormal({2, 2, 2, 2}, &rng);
  Tensor sum = vsan::Add(a, b);
  for (int64_t i = 0; i < sum.numel(); ++i) {
    EXPECT_FLOAT_EQ(sum[i], a[i] + b[i]);
  }
  Tensor soft = vsan::SoftmaxLastDim(a);
  for (int64_t r = 0; r < 8; ++r) {
    EXPECT_NEAR(soft[2 * r] + soft[2 * r + 1], 1.0f, 1e-5f);
  }
}

TEST(VariableMiscTest, ReshapeRoundTripPreservesGradient) {
  Variable x(Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6}), true);
  Variable r = ops::Reshape(ops::Reshape(x, {3, 2}), {6});
  ops::Sum(ops::Mul(r, r)).Backward();
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_FLOAT_EQ(x.grad()[i], 2.0f * x.value()[i]);
  }
}

}  // namespace
}  // namespace vsan
