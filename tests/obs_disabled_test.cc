// Compile-time check of the VSAN_OBS=OFF story: this translation unit is
// built with VSAN_OBS_ENABLED=0 (see tests/CMakeLists.txt), under which
// VSAN_TRACE_SPAN must expand to nothing — zero tokens, zero overhead —
// while still being a valid statement wherever instrumentation placed it.

#include <string>

#include <gtest/gtest.h>

#include "obs/http_server.h"
#include "obs/profiler.h"
#include "obs/trace.h"

#if VSAN_OBS_ENABLED
#error "this test must be compiled with VSAN_OBS_ENABLED=0"
#endif

namespace vsan {
namespace obs {
namespace {

#define VSAN_OBS_TEST_STR_INNER(x) #x
#define VSAN_OBS_TEST_STR(x) VSAN_OBS_TEST_STR_INNER(x)

TEST(ObsDisabledTest, TraceSpanMacroExpandsToNothing) {
  // Double-indirection stringification captures the post-expansion tokens.
  const std::string expansion =
      VSAN_OBS_TEST_STR(VSAN_TRACE_SPAN("gemm/pack", kKernel));
  EXPECT_EQ(expansion, "");
}

TEST(ObsDisabledTest, TraceSpanIsAValidStatementEverywhere) {
  // The macro invocation plus `;` must compile in every position the
  // instrumented code uses it: statement scope, branch bodies, loops.
  VSAN_TRACE_SPAN("a", kTrain);
  if (true) {
    VSAN_TRACE_SPAN("b", kKernel);
  }
  for (int i = 0; i < 2; ++i) {
    VSAN_TRACE_SPAN("c", kPool);
  }
  SUCCEED();
}

TEST(ObsDisabledTest, RuntimeApiStillLinksWhenCompiledOut) {
  // The tracer library itself stays available (tools may still read
  // traces); only the instrumentation macro is compiled out.
  Tracer& tracer = Tracer::Global();
  tracer.StartSession({});
  tracer.StopSession();
  EXPECT_TRUE(tracer.Collect().empty());
}

TEST(ObsDisabledTest, HttpServerIsANoop) {
  // This TU sees the header-only no-op HttpServer: Start() refuses and
  // nothing ever listens, so --metrics-port degrades cleanly in OBS=OFF
  // builds rather than serving stale data.
  HttpServer server;
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  EXPECT_FALSE(server.Start({}));
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
  EXPECT_EQ(server.requests_served(), 0);
  server.Stop();  // must be callable, must do nothing
}

TEST(ObsDisabledTest, ProfilerIsANoop) {
  SamplingProfiler& profiler = SamplingProfiler::Global();
  EXPECT_FALSE(profiler.Start());
  EXPECT_FALSE(profiler.running());
  const ProfileStats stats = profiler.Stop();
  EXPECT_EQ(stats.samples, 0);
  EXPECT_EQ(stats.dropped, 0);
  EXPECT_EQ(profiler.FoldedStacks(), "");
  EXPECT_FALSE(profiler.WriteFolded("/tmp/never-written.folded"));
}

}  // namespace
}  // namespace obs
}  // namespace vsan
