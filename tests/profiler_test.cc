// Tests for the SIGPROF sampling profiler: sample capture on a CPU-bound
// workload, symbolization quality (the acceptance bar: >= 80% of samples
// attribute to at least one symbolized frame), folded-stack output shape,
// and clean start/stop/restart.  ITIMER_PROF only ticks on CPU time, so
// every workload here must burn cycles, not sleep.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/profiler.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace vsan {
namespace obs {

// A named, out-of-line workload so the profiler has a frame to attribute
// samples to.  Deliberately OUTSIDE the anonymous namespace: -rdynamic only
// exports external-linkage symbols to .dynsym, and dladdr cannot name local
// ones.  `noclone` stops GCC from const-propagating the literal call-site
// arguments into `.constprop` clones, which are local symbols again.
// Burns CPU via GEMMs (the hot path the profiler exists to explain).
__attribute__((noinline, noclone)) double BurnCpuWithGemms(int iterations) {
  Rng rng(5);
  const Tensor a = Tensor::RandomNormal({256, 256}, &rng, 1.0f);
  const Tensor b = Tensor::RandomNormal({256, 256}, &rng, 1.0f);
  double sink = 0.0;
  for (int i = 0; i < iterations; ++i) {
    const Tensor c = MatMul2D(a, b);
    sink += static_cast<double>(c.data()[0]);
  }
  return sink;
}

namespace {

#if VSAN_OBS_ENABLED

TEST(ProfilerTest, CapturesAndSymbolizesCpuBoundWork) {
  SamplingProfiler& profiler = SamplingProfiler::Global();
  ASSERT_TRUE(profiler.Start());
  EXPECT_TRUE(profiler.running());
  // Double-start must refuse rather than re-arm.
  EXPECT_FALSE(profiler.Start());

  volatile double sink = BurnCpuWithGemms(700);
  (void)sink;

  const ProfileStats stats = profiler.Stop();
  EXPECT_FALSE(profiler.running());
  // ~99 Hz over a few hundred ms of CPU: expect a healthy sample count.
  EXPECT_GT(stats.samples, 10);
  EXPECT_EQ(stats.dropped, 0);
  // Acceptance bar: >= 80% of samples attribute to symbolized frames.
  EXPECT_GE(stats.any_symbolized_fraction, 0.8);

  const std::string folded = profiler.FoldedStacks();
  ASSERT_FALSE(folded.empty());
  // Every line is "frame;frame;... count" with a positive trailing count.
  std::istringstream lines(folded);
  std::string line;
  int64_t total = 0;
  while (std::getline(lines, line)) {
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const int64_t count = std::atoll(line.c_str() + space + 1);
    EXPECT_GT(count, 0) << line;
    total += count;
  }
  EXPECT_EQ(total, stats.samples);
  // The workload function must appear somewhere in the folded output
  // (it is noinline and the binary links -rdynamic).
  EXPECT_NE(folded.find("BurnCpuWithGemms"), std::string::npos)
      << folded.substr(0, 2000);
}

TEST(ProfilerTest, WriteFoldedAndRestart) {
  SamplingProfiler& profiler = SamplingProfiler::Global();
  ASSERT_TRUE(profiler.Start());
  volatile double sink = BurnCpuWithGemms(200);
  (void)sink;
  const ProfileStats first = profiler.Stop();
  EXPECT_GT(first.samples, 0);

  const std::string path = ::testing::TempDir() + "/profile.folded";
  ASSERT_TRUE(profiler.WriteFolded(path));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, profiler.FoldedStacks());
  std::remove(path.c_str());

  // A second session starts clean (samples do not accumulate across runs).
  ASSERT_TRUE(profiler.Start());
  const ProfileStats second = profiler.Stop();
  EXPECT_LT(second.samples, first.samples + 5);
  EXPECT_FALSE(profiler.WriteFolded("/nonexistent-dir/x.folded"));
}

TEST(ProfilerTest, StopWithoutStartIsNoop) {
  SamplingProfiler& profiler = SamplingProfiler::Global();
  const ProfileStats stats = profiler.Stop();
  EXPECT_EQ(stats.samples, 0);
  EXPECT_EQ(stats.dropped, 0);
}

TEST(ProfilerTest, TinyBufferCountsDrops) {
  SamplingProfiler& profiler = SamplingProfiler::Global();
  ProfilerOptions options;
  options.hz = 500;  // dense sampling into a buffer a few records deep
  options.buffer_words = 128;
  ASSERT_TRUE(profiler.Start(options));
  volatile double sink = BurnCpuWithGemms(700);
  (void)sink;
  const ProfileStats stats = profiler.Stop();
  // The buffer holds only a handful of stacks; the rest must be counted,
  // not silently lost — and symbolization must not walk past the cap.
  EXPECT_GT(stats.dropped, 0);
  EXPECT_GE(stats.samples, 1);
}

#else  // !VSAN_OBS_ENABLED

TEST(ProfilerDisabledTest, AllCallsAreNoops) {
  SamplingProfiler& profiler = SamplingProfiler::Global();
  EXPECT_FALSE(profiler.Start());
  EXPECT_FALSE(profiler.running());
  const ProfileStats stats = profiler.Stop();
  EXPECT_EQ(stats.samples, 0);
  EXPECT_EQ(profiler.FoldedStacks(), "");
  EXPECT_FALSE(profiler.WriteFolded("/tmp/never.folded"));
}

#endif  // VSAN_OBS_ENABLED

}  // namespace
}  // namespace obs
}  // namespace vsan
