// Edge-case behaviour across modules: degenerate histories, extreme
// configurations, and protocol option combinations.

#include <cmath>

#include <gtest/gtest.h>

#include "core/vsan.h"
#include "data/dataset.h"
#include "eval/evaluator.h"
#include "models/caser.h"
#include "models/fpmc.h"
#include "models/svae.h"
#include "models/transrec.h"
#include "util/rng.h"

namespace vsan {
namespace {

data::SequenceDataset CycleDataset(int32_t num_items, int32_t num_users,
                                   int32_t seq_len) {
  Rng rng(3);
  data::SequenceDataset ds(num_items);
  for (int32_t u = 0; u < num_users; ++u) {
    int32_t cur = static_cast<int32_t>(rng.UniformInt(1, num_items));
    std::vector<int32_t> seq;
    for (int32_t t = 0; t < seq_len; ++t) {
      seq.push_back(cur);
      cur = cur % num_items + 1;
    }
    ds.AddUser(std::move(seq));
  }
  return ds;
}

TrainOptions Fast(int32_t epochs = 2) {
  TrainOptions t;
  t.epochs = epochs;
  t.batch_size = 16;
  return t;
}

TEST(EdgeCaseTest, SingleItemHistoryIsScoreable) {
  data::SequenceDataset ds = CycleDataset(10, 30, 6);
  core::VsanConfig cfg;
  cfg.max_len = 6;
  cfg.d = 8;
  core::Vsan model(cfg);
  model.Fit(ds, Fast());
  const auto scores = model.Score({7});
  ASSERT_EQ(scores.size(), 11u);
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(EdgeCaseTest, HistoryLongerThanMaxLenUsesRecentSuffix) {
  data::SequenceDataset ds = CycleDataset(12, 40, 8);
  core::VsanConfig cfg;
  cfg.max_len = 4;
  cfg.d = 8;
  cfg.dropout = 0.0f;
  core::Vsan model(cfg);
  model.Fit(ds, Fast(10));
  // Two histories that agree on the last max_len items must score equal:
  // the older prefix is truncated away.
  std::vector<int32_t> long_a = {1, 2, 3, 5, 6, 7, 8};
  std::vector<int32_t> long_b = {9, 10, 5, 6, 7, 8};
  EXPECT_EQ(model.Score(long_a), model.Score(long_b));
}

TEST(EdgeCaseTest, FpmcAndTransRecHandleSingleItemHistory) {
  data::SequenceDataset ds = CycleDataset(10, 40, 6);
  models::Fpmc fpmc({.d = 8});
  fpmc.Fit(ds, Fast());
  models::TransRec transrec({.d = 8});
  transrec.Fit(ds, Fast());
  for (float s : fpmc.Score({3})) EXPECT_TRUE(std::isfinite(s));
  for (float s : transrec.Score({3})) EXPECT_TRUE(std::isfinite(s));
}

TEST(EdgeCaseTest, CaserHistoryShorterThanWindowIsPadded) {
  data::SequenceDataset ds = CycleDataset(10, 40, 6);
  models::Caser::Config cfg;
  cfg.window = 5;
  cfg.d = 8;
  cfg.heights = {2, 3};
  cfg.h_filters = 4;
  cfg.v_filters = 2;
  models::Caser model(cfg);
  model.Fit(ds, Fast());
  const auto scores = model.Score({4, 5});  // shorter than the window
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(EdgeCaseTest, SvaeWithNextKOneStillTrains) {
  data::SequenceDataset ds = CycleDataset(10, 40, 6);
  models::Svae::Config cfg;
  cfg.max_len = 6;
  cfg.d = 8;
  cfg.hidden = 8;
  cfg.latent = 4;
  cfg.next_k = 1;
  models::Svae model(cfg);
  model.Fit(ds, Fast(4));
  for (float s : model.Score({1, 2})) EXPECT_TRUE(std::isfinite(s));
}

TEST(EdgeCaseTest, EvaluatorWithoutFoldInExclusion) {
  // With exclusion off, a fold-in item can be "recommended" again.
  struct FoldInFan : SequentialRecommender {
    std::string name() const override { return "fan"; }
    void Fit(const data::SequenceDataset&, const TrainOptions&) override {}
    std::vector<float> Score(
        const std::vector<int32_t>& fold_in) const override {
      std::vector<float> s(11, 0.0f);
      s[fold_in.back()] = 10.0f;  // re-recommend the last consumed item
      return s;
    }
  };
  FoldInFan model;
  std::vector<data::HeldOutUser> users(1);
  users[0].fold_in = {4};
  users[0].holdout = {7};
  eval::EvalOptions keep;
  keep.cutoffs = {1};
  keep.exclude_fold_in = false;
  // Top-1 is the fold-in item itself -> miss.
  EXPECT_DOUBLE_EQ(eval::EvaluateRanking(model, users, keep).recall.at(1),
                   0.0);
  eval::EvalOptions drop;
  drop.cutoffs = {1};
  drop.exclude_fold_in = true;
  // Item 4 excluded; ties rank by index; top-1 becomes item 1 -> still a
  // miss, but the excluded item must not occupy the slot.
  const auto r = eval::EvaluateRanking(model, users, drop);
  EXPECT_DOUBLE_EQ(r.recall.at(1), 0.0);
}

TEST(EdgeCaseTest, MaxLenOneModelDegeneratesGracefully) {
  // n = 1: no sequential context at all; the model reduces to a per-item
  // prior and must still train and score.
  data::SequenceDataset ds = CycleDataset(8, 30, 5);
  core::VsanConfig cfg;
  cfg.max_len = 1;
  cfg.d = 8;
  core::Vsan model(cfg);
  model.Fit(ds, Fast());
  for (float s : model.Score({2, 3, 4})) EXPECT_TRUE(std::isfinite(s));
}

TEST(EdgeCaseTest, DatasetWithDuplicateItemsInSequence) {
  data::SequenceDataset ds(5);
  ds.AddUser({2, 2, 2, 2, 2});  // pathological but legal
  ds.AddUser({1, 2, 1, 2, 1});
  core::VsanConfig cfg;
  cfg.max_len = 5;
  cfg.d = 8;
  core::Vsan model(cfg);
  TrainOptions opts = Fast(3);
  opts.batch_size = 2;
  model.Fit(ds, opts);
  for (float s : model.Score({2, 2})) EXPECT_TRUE(std::isfinite(s));
}

}  // namespace
}  // namespace vsan
