// Finite-difference gradient checks for every differentiable op.  These are
// the load-bearing correctness tests for the training substrate: if these
// pass, backprop through any composition of ops is trustworthy.

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "testing/gradcheck.h"
#include "util/rng.h"

namespace vsan {
namespace {

using testing::ExpectGradientsClose;

Tensor Rand(std::vector<int64_t> shape, uint64_t seed, float stddev = 1.0f) {
  Rng rng(seed);
  return Tensor::RandomNormal(std::move(shape), &rng, stddev);
}

TEST(GradCheck, Add) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ops::Mean(ops::Add(v[0], v[1]));
      },
      {Rand({2, 3}, 1), Rand({2, 3}, 2)});
}

TEST(GradCheck, Sub) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ops::Mean(ops::Sub(v[0], v[1]));
      },
      {Rand({2, 3}, 3), Rand({2, 3}, 4)});
}

TEST(GradCheck, Mul) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ops::Mean(ops::Mul(v[0], v[1]));
      },
      {Rand({2, 3}, 5), Rand({2, 3}, 6)});
}

TEST(GradCheck, ScaleAndAddConst) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ops::Sum(ops::AddConst(ops::Scale(v[0], -1.7f), 0.3f));
      },
      {Rand({4}, 7)});
}

TEST(GradCheck, AddBias) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ops::Mean(ops::AddBias(v[0], v[1]));
      },
      {Rand({3, 4}, 8), Rand({4}, 9)});
}

TEST(GradCheck, AddBroadcastMatrix) {
  Tensor m = Rand({2, 3}, 100);
  ExpectGradientsClose(
      [m](const std::vector<Variable>& v) {
        return ops::Mean(ops::AddBroadcastMatrix(v[0], m));
      },
      {Rand({4, 2, 3}, 10)});
}

TEST(GradCheck, Reshape) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        // Mix with a square so the gradient is non-constant.
        Variable r = ops::Reshape(v[0], {3, 2});
        return ops::Mean(ops::Mul(r, r));
      },
      {Rand({2, 3}, 11)});
}

TEST(GradCheck, ConcatAxis1) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        Variable c = ops::Concat({v[0], v[1]}, /*axis=*/1);
        return ops::Mean(ops::Mul(c, c));
      },
      {Rand({2, 2, 3}, 12), Rand({2, 4, 3}, 13)});
}

TEST(GradCheck, ConcatLastAxis) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        Variable c = ops::Concat({v[0], v[1], v[2]}, /*axis=*/1);
        return ops::Mean(ops::Mul(c, c));
      },
      {Rand({2, 3}, 14), Rand({2, 1}, 15), Rand({2, 2}, 16)});
}

TEST(GradCheck, Slice) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        Variable s = ops::Slice(v[0], /*axis=*/1, /*start=*/1, /*len=*/2);
        return ops::Mean(ops::Mul(s, s));
      },
      {Rand({2, 4, 3}, 17)});
}

TEST(GradCheck, Transpose2D) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        Variable t = ops::Transpose(v[0]);
        return ops::Mean(ops::Mul(t, t));
      },
      {Rand({3, 4}, 18)});
}

TEST(GradCheck, TransposeLast2) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        Variable t = ops::TransposeLast2(v[0]);
        return ops::Mean(ops::Mul(t, t));
      },
      {Rand({2, 3, 4}, 19)});
}

TEST(GradCheck, MatMul2D) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ops::Mean(ops::MatMul(v[0], v[1]));
      },
      {Rand({3, 4}, 20), Rand({4, 2}, 21)});
}

TEST(GradCheck, MatMulBatched) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ops::Mean(ops::MatMul(v[0], v[1]));
      },
      {Rand({2, 3, 4}, 22), Rand({2, 4, 2}, 23)});
}

TEST(GradCheck, MatMulBroadcast) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ops::Mean(ops::MatMul(v[0], v[1]));
      },
      {Rand({2, 3, 4}, 24), Rand({4, 5}, 25)});
}

TEST(GradCheck, ReluAwayFromKink) {
  // Shift inputs away from 0 where ReLU is non-differentiable.
  Tensor x = Rand({3, 3}, 26);
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (std::abs(x[i]) < 0.05f) x[i] = 0.5f;
  }
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ops::Mean(ops::Relu(v[0]));
      },
      {x});
}

TEST(GradCheck, Sigmoid) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ops::Mean(ops::Sigmoid(v[0]));
      },
      {Rand({2, 5}, 27)});
}

TEST(GradCheck, Tanh) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ops::Mean(ops::Tanh(v[0]));
      },
      {Rand({2, 5}, 28)});
}

TEST(GradCheck, Exp) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ops::Mean(ops::Exp(v[0]));
      },
      {Rand({6}, 29, 0.5f)});
}

TEST(GradCheck, Log) {
  Tensor x = Rand({6}, 30);
  for (int64_t i = 0; i < x.numel(); ++i) x[i] = std::abs(x[i]) + 0.5f;
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ops::Mean(ops::Log(v[0]));
      },
      {x});
}

TEST(GradCheck, Softmax) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        Variable s = ops::Softmax(v[0]);
        // Weighted sum so gradient differs per element.
        return ops::Mean(ops::Mul(s, s));
      },
      {Rand({3, 5}, 31)});
}

TEST(GradCheck, SumAndMean) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ops::Add(ops::Sum(ops::Mul(v[0], v[0])), ops::Mean(v[0]));
      },
      {Rand({7}, 32)});
}

TEST(GradCheck, MaxOverAxis1) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ops::Mean(ops::MaxOverAxis1(v[0]));
      },
      {Rand({2, 4, 3}, 33)});
}

TEST(GradCheck, MeanOverAxis1) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        Variable m = ops::MeanOverAxis1(v[0]);
        return ops::Mean(ops::Mul(m, m));
      },
      {Rand({2, 4, 3}, 34)});
}

TEST(GradCheck, LayerNorm) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        Variable y = ops::LayerNorm(v[0], v[1], v[2]);
        return ops::Mean(ops::Mul(y, y));
      },
      {Rand({3, 6}, 35), Rand({6}, 36, 0.5f), Rand({6}, 37, 0.5f)},
      /*eps=*/1e-2, /*rel_tol=*/6e-2, /*abs_tol=*/1.5e-2);
}

TEST(GradCheck, LayerNorm3D) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        Variable y = ops::LayerNorm(v[0], v[1], v[2]);
        return ops::Mean(ops::Mul(y, y));
      },
      {Rand({2, 2, 5}, 38), Rand({5}, 39, 0.5f), Rand({5}, 40, 0.5f)},
      /*eps=*/1e-2, /*rel_tol=*/6e-2, /*abs_tol=*/1.5e-2);
}

TEST(GradCheck, EmbeddingLookup) {
  const std::vector<int32_t> idx = {1, 2, 0, 3, 2, 1};
  ExpectGradientsClose(
      [idx](const std::vector<Variable>& v) {
        Variable e = ops::EmbeddingLookup(v[0], idx, /*batch=*/2, /*steps=*/3);
        return ops::Mean(ops::Mul(e, e));
      },
      {Rand({4, 3}, 41)});
}

TEST(GradCheck, GatherRows) {
  const std::vector<int64_t> idx = {2, 0, 2, 1};  // duplicate row 2
  ExpectGradientsClose(
      [idx](const std::vector<Variable>& v) {
        Variable g = ops::GatherRows(v[0], idx);
        return ops::Mean(ops::Mul(g, g));
      },
      {Rand({3, 4}, 140)});
}

TEST(GradCheck, AddBroadcastMatrixVar) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        Variable y = ops::AddBroadcastMatrixVar(v[0], v[1]);
        return ops::Mean(ops::Mul(y, y));
      },
      {Rand({3, 2, 4}, 141), Rand({2, 4}, 142)});
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  const std::vector<int32_t> targets = {2, 0, -1, 4};
  ExpectGradientsClose(
      [targets](const std::vector<Variable>& v) {
        return ops::SoftmaxCrossEntropy(v[0], targets, /*ignore_index=*/-1);
      },
      {Rand({4, 5}, 42)});
}

TEST(GradCheck, MultiLabelSoftmaxCrossEntropy) {
  const std::vector<std::vector<int32_t>> targets = {{1, 3}, {}, {0}};
  ExpectGradientsClose(
      [targets](const std::vector<Variable>& v) {
        return ops::MultiLabelSoftmaxCrossEntropy(v[0], targets);
      },
      {Rand({3, 5}, 43)});
}

TEST(GradCheck, KlStandardNormal) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ops::KlStandardNormal(v[0], v[1]);
      },
      {Rand({3, 4}, 44, 0.5f), Rand({3, 4}, 45, 0.5f)});
}

TEST(GradCheck, KlStandardNormalWithRowMask) {
  const std::vector<float> mask = {1.0f, 0.0f, 1.0f};
  ExpectGradientsClose(
      [mask](const std::vector<Variable>& v) {
        return ops::KlStandardNormal(v[0], v[1], mask);
      },
      {Rand({3, 4}, 46, 0.5f), Rand({3, 4}, 47, 0.5f)});
}

TEST(GradCheck, ReparameterizeFixedNoise) {
  // Re-seeding the Rng inside the loss makes the sampled noise identical
  // across evaluations, so finite differences are valid.
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        Rng rng(123);
        Variable z = ops::Reparameterize(v[0], v[1], &rng, /*sample=*/true);
        return ops::Mean(ops::Mul(z, z));
      },
      {Rand({2, 3}, 48, 0.5f), Rand({2, 3}, 49, 0.5f)});
}

TEST(GradCheck, DropoutFixedMask) {
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        Rng rng(321);
        Variable y = ops::Dropout(v[0], 0.3f, &rng, /*training=*/true);
        return ops::Mean(ops::Mul(y, y));
      },
      {Rand({4, 4}, 50)});
}

TEST(GradCheck, ComposedAttentionLikeGraph) {
  // A miniature causal-attention block: checks gradients flow correctly
  // through the exact op composition the models use.
  Tensor mask = Tensor::Zeros({3, 3});
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = i + 1; j < 3; ++j) mask.at(i, j) = -1e9f;
  }
  ExpectGradientsClose(
      [mask](const std::vector<Variable>& v) {
        const Variable& x = v[0];
        Variable q = ops::MatMul(x, v[1]);
        Variable k = ops::MatMul(x, v[2]);
        Variable val = ops::MatMul(x, v[3]);
        Variable scores =
            ops::Scale(ops::MatMul(q, ops::TransposeLast2(k)), 0.5f);
        Variable attn = ops::Softmax(ops::AddBroadcastMatrix(scores, mask));
        Variable out = ops::MatMul(attn, val);
        return ops::Mean(ops::Mul(out, out));
      },
      {Rand({2, 3, 4}, 51), Rand({4, 4}, 52, 0.5f), Rand({4, 4}, 53, 0.5f),
       Rand({4, 4}, 54, 0.5f)},
      /*eps=*/1e-2, /*rel_tol=*/6e-2, /*abs_tol=*/1.5e-2);
}

}  // namespace
}  // namespace vsan
