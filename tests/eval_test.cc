#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace vsan {
namespace eval {
namespace {

TEST(MetricsTest, PerfectRankingScoresOne) {
  const std::vector<int32_t> ranked = {3, 7, 9};
  const std::vector<int32_t> holdout = {3, 7, 9};
  TopNMetrics m = ComputeTopN(ranked, holdout, 3);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.ndcg, 1.0);
}

TEST(MetricsTest, NoHitsScoreZero) {
  TopNMetrics m = ComputeTopN({1, 2, 3}, {9}, 3);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.ndcg, 0.0);
}

TEST(MetricsTest, HandComputedPartialHit) {
  // N=4, ranked = [5, 1, 7, 2], holdout = {1, 2, 9}.
  // hits at ranks 2 and 4 -> precision 2/4, recall 2/3.
  // DCG = 1/log2(3) + 1/log2(5); IDCG = 1/log2(2)+1/log2(3)+1/log2(4).
  TopNMetrics m = ComputeTopN({5, 1, 7, 2}, {1, 2, 9}, 4);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_NEAR(m.recall, 2.0 / 3.0, 1e-12);
  const double dcg = 1.0 / std::log2(3.0) + 1.0 / std::log2(5.0);
  const double idcg =
      1.0 / std::log2(2.0) + 1.0 / std::log2(3.0) + 1.0 / std::log2(4.0);
  EXPECT_NEAR(m.ndcg, dcg / idcg, 1e-12);
}

TEST(MetricsTest, RanksBeyondNIgnored) {
  TopNMetrics at2 = ComputeTopN({4, 5, 1}, {1}, 2);
  EXPECT_DOUBLE_EQ(at2.recall, 0.0);
  TopNMetrics at3 = ComputeTopN({4, 5, 1}, {1}, 3);
  EXPECT_DOUBLE_EQ(at3.recall, 1.0);
}

TEST(MetricsTest, DuplicateHoldoutCountsOnce) {
  TopNMetrics m = ComputeTopN({1, 2}, {1, 1}, 2);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);      // |T| = 1 distinct
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
}

TEST(MetricsTest, IdcgCapsAtHoldoutSize) {
  // One relevant item ranked first out of N=10: NDCG must be exactly 1.
  TopNMetrics m = ComputeTopN({3, 1, 2, 4, 5, 6, 7, 8, 9, 10}, {3}, 10);
  EXPECT_DOUBLE_EQ(m.ndcg, 1.0);
}

TEST(TopNIndicesTest, SortsByScoreSkippingExcluded) {
  const std::vector<float> scores = {99.0f, 0.1f, 0.9f, 0.5f, 0.7f};
  std::vector<bool> excluded(5, false);
  excluded[0] = true;  // padding
  excluded[4] = true;  // fold-in item
  const auto top = TopNIndices(scores, excluded, 2);
  EXPECT_EQ(top, (std::vector<int32_t>{2, 3}));
}

TEST(TopNIndicesTest, DeterministicTieBreakByIndex) {
  const std::vector<float> scores = {0.0f, 1.0f, 1.0f, 1.0f};
  const std::vector<bool> excluded(4, false);
  const auto top = TopNIndices(scores, excluded, 3);
  EXPECT_EQ(top, (std::vector<int32_t>{1, 2, 3}));
}

// Oracle that always ranks the next item in a fixed cycle highest.
class OracleModel : public SequentialRecommender {
 public:
  explicit OracleModel(int32_t num_items) : num_items_(num_items) {}
  std::string name() const override { return "Oracle"; }
  void Fit(const data::SequenceDataset&, const TrainOptions&) override {}
  std::vector<float> Score(const std::vector<int32_t>& fold_in) const override {
    std::vector<float> scores(num_items_ + 1, 0.0f);
    const int32_t last = fold_in.back();
    // Next in cycle gets the highest score, then the one after, etc.
    for (int32_t offset = 1; offset <= num_items_; ++offset) {
      const int32_t item = (last - 1 + offset) % num_items_ + 1;
      scores[item] = static_cast<float>(num_items_ - offset);
    }
    return scores;
  }

 private:
  int32_t num_items_;
};

TEST(EvaluatorTest, OracleGetsPerfectRecallOnCycleData) {
  const int32_t num_items = 20;
  std::vector<data::HeldOutUser> users;
  for (int32_t start = 1; start <= 5; ++start) {
    data::HeldOutUser u;
    for (int32_t i = 0; i < 8; ++i) {
      u.fold_in.push_back((start - 1 + i) % num_items + 1);
    }
    for (int32_t i = 8; i < 10; ++i) {
      u.holdout.push_back((start - 1 + i) % num_items + 1);
    }
    users.push_back(u);
  }
  OracleModel oracle(num_items);
  EvalOptions opts;
  opts.cutoffs = {2, 10};
  EvalResult r = EvaluateRanking(oracle, users, opts);
  EXPECT_DOUBLE_EQ(r.recall[2], 1.0);   // the 2 holdout items rank 1-2
  EXPECT_DOUBLE_EQ(r.ndcg[2], 1.0);
  EXPECT_DOUBLE_EQ(r.precision[2], 1.0);
  EXPECT_DOUBLE_EQ(r.recall[10], 1.0);
  EXPECT_DOUBLE_EQ(r.precision[10], 0.2);  // 2 of 10 slots relevant
}

// Deterministic per-user scorer for the invariance regressions below.
class HashScoreModel : public SequentialRecommender {
 public:
  explicit HashScoreModel(int32_t num_items) : num_items_(num_items) {}
  std::string name() const override { return "HashScore"; }
  void Fit(const data::SequenceDataset&, const TrainOptions&) override {}
  std::vector<float> Score(const std::vector<int32_t>& fold_in) const override {
    std::vector<float> scores(num_items_ + 1, 0.0f);
    const int32_t last = fold_in.back();
    for (int32_t i = 1; i <= num_items_; ++i) {
      scores[i] = static_cast<float>((i * 31 + last * 7) % 97);
    }
    return scores;
  }

 private:
  int32_t num_items_;
};

std::vector<data::HeldOutUser> MakeDistinctUsers(int32_t count,
                                                 int32_t num_items) {
  Rng rng(7);
  std::vector<data::HeldOutUser> users(count);
  for (int32_t u = 0; u < count; ++u) {
    for (int i = 0; i < 5; ++i) {
      users[u].fold_in.push_back(
          static_cast<int32_t>(rng.UniformInt(1, num_items)));
    }
    users[u].holdout.push_back(
        static_cast<int32_t>(rng.UniformInt(1, num_items)));
  }
  return users;
}

// Regression for the evaluator RNG determinism bug: negative-sampling seeds
// used to come from one sequential generator, so each user's candidate set
// depended on how many users were processed before it.  Seeds are now
// derived per user from the user's own history, making results invariant
// to user ordering.
TEST(EvaluatorTest, SampledNegativesInvariantToUserOrdering) {
  const int32_t num_items = 120;
  HashScoreModel model(num_items);
  std::vector<data::HeldOutUser> users = MakeDistinctUsers(11, num_items);

  eval::EvalOptions opts;
  // Cutoff 1 with single-item holdouts keeps every per-user metric in
  // {0, 1}, so the averaged sums are exact and comparable bitwise even
  // though reordering changes the summation order; @5 metrics are compared
  // within float-sum tolerance.
  opts.cutoffs = {1, 5};
  opts.num_sampled_negatives = 30;

  const eval::EvalResult forward = eval::EvaluateRanking(model, users, opts);
  std::reverse(users.begin(), users.end());
  const eval::EvalResult reversed = eval::EvaluateRanking(model, users, opts);
  Rng shuffle_rng(3);
  shuffle_rng.Shuffle(&users);
  const eval::EvalResult shuffled = eval::EvaluateRanking(model, users, opts);

  for (const eval::EvalResult* other : {&reversed, &shuffled}) {
    EXPECT_DOUBLE_EQ(forward.recall.at(1), other->recall.at(1));
    EXPECT_DOUBLE_EQ(forward.precision.at(1), other->precision.at(1));
    EXPECT_DOUBLE_EQ(forward.ndcg.at(1), other->ndcg.at(1));
    EXPECT_NEAR(forward.recall.at(5), other->recall.at(5), 1e-12);
    EXPECT_NEAR(forward.precision.at(5), other->precision.at(5), 1e-12);
    EXPECT_NEAR(forward.ndcg.at(5), other->ndcg.at(5), 1e-12);
  }
}

TEST(EvaluatorTest, SampledNegativesInvariantToThreadCount) {
  const int32_t num_items = 120;
  HashScoreModel model(num_items);
  const std::vector<data::HeldOutUser> users = MakeDistinctUsers(9, num_items);

  eval::EvalOptions opts;
  opts.cutoffs = {5};
  opts.num_sampled_negatives = 25;

  ThreadPool::SetGlobalNumThreads(1);
  const eval::EvalResult serial = eval::EvaluateRanking(model, users, opts);
  for (int threads : {2, 4}) {
    ThreadPool::SetGlobalNumThreads(threads);
    const eval::EvalResult parallel = eval::EvaluateRanking(model, users, opts);
    // Per-user metrics are merged serially in user order, so this holds
    // bitwise, not just approximately.
    EXPECT_DOUBLE_EQ(serial.recall.at(5), parallel.recall.at(5));
    EXPECT_DOUBLE_EQ(serial.precision.at(5), parallel.precision.at(5));
    EXPECT_DOUBLE_EQ(serial.ndcg.at(5), parallel.ndcg.at(5));
  }
  ThreadPool::SetGlobalNumThreads(ThreadPool::DefaultNumThreads());
}

TEST(EvaluatorTest, ResultToStringIsPercentages) {
  EvalResult r;
  r.ndcg[10] = 0.0678;
  r.recall[10] = 0.0934;
  r.precision[10] = 0.0229;
  const std::string s = r.ToString();
  EXPECT_NE(s.find("NDCG@10=6.780"), std::string::npos);
  EXPECT_NE(s.find("Recall@10=9.340"), std::string::npos);
}

}  // namespace
}  // namespace eval
}  // namespace vsan
