#include <cmath>

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "eval/metrics.h"

namespace vsan {
namespace eval {
namespace {

TEST(MetricsTest, PerfectRankingScoresOne) {
  const std::vector<int32_t> ranked = {3, 7, 9};
  const std::vector<int32_t> holdout = {3, 7, 9};
  TopNMetrics m = ComputeTopN(ranked, holdout, 3);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.ndcg, 1.0);
}

TEST(MetricsTest, NoHitsScoreZero) {
  TopNMetrics m = ComputeTopN({1, 2, 3}, {9}, 3);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.ndcg, 0.0);
}

TEST(MetricsTest, HandComputedPartialHit) {
  // N=4, ranked = [5, 1, 7, 2], holdout = {1, 2, 9}.
  // hits at ranks 2 and 4 -> precision 2/4, recall 2/3.
  // DCG = 1/log2(3) + 1/log2(5); IDCG = 1/log2(2)+1/log2(3)+1/log2(4).
  TopNMetrics m = ComputeTopN({5, 1, 7, 2}, {1, 2, 9}, 4);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_NEAR(m.recall, 2.0 / 3.0, 1e-12);
  const double dcg = 1.0 / std::log2(3.0) + 1.0 / std::log2(5.0);
  const double idcg =
      1.0 / std::log2(2.0) + 1.0 / std::log2(3.0) + 1.0 / std::log2(4.0);
  EXPECT_NEAR(m.ndcg, dcg / idcg, 1e-12);
}

TEST(MetricsTest, RanksBeyondNIgnored) {
  TopNMetrics at2 = ComputeTopN({4, 5, 1}, {1}, 2);
  EXPECT_DOUBLE_EQ(at2.recall, 0.0);
  TopNMetrics at3 = ComputeTopN({4, 5, 1}, {1}, 3);
  EXPECT_DOUBLE_EQ(at3.recall, 1.0);
}

TEST(MetricsTest, DuplicateHoldoutCountsOnce) {
  TopNMetrics m = ComputeTopN({1, 2}, {1, 1}, 2);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);      // |T| = 1 distinct
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
}

TEST(MetricsTest, IdcgCapsAtHoldoutSize) {
  // One relevant item ranked first out of N=10: NDCG must be exactly 1.
  TopNMetrics m = ComputeTopN({3, 1, 2, 4, 5, 6, 7, 8, 9, 10}, {3}, 10);
  EXPECT_DOUBLE_EQ(m.ndcg, 1.0);
}

TEST(TopNIndicesTest, SortsByScoreSkippingExcluded) {
  const std::vector<float> scores = {99.0f, 0.1f, 0.9f, 0.5f, 0.7f};
  std::vector<bool> excluded(5, false);
  excluded[0] = true;  // padding
  excluded[4] = true;  // fold-in item
  const auto top = TopNIndices(scores, excluded, 2);
  EXPECT_EQ(top, (std::vector<int32_t>{2, 3}));
}

TEST(TopNIndicesTest, DeterministicTieBreakByIndex) {
  const std::vector<float> scores = {0.0f, 1.0f, 1.0f, 1.0f};
  const std::vector<bool> excluded(4, false);
  const auto top = TopNIndices(scores, excluded, 3);
  EXPECT_EQ(top, (std::vector<int32_t>{1, 2, 3}));
}

// Oracle that always ranks the next item in a fixed cycle highest.
class OracleModel : public SequentialRecommender {
 public:
  explicit OracleModel(int32_t num_items) : num_items_(num_items) {}
  std::string name() const override { return "Oracle"; }
  void Fit(const data::SequenceDataset&, const TrainOptions&) override {}
  std::vector<float> Score(const std::vector<int32_t>& fold_in) const override {
    std::vector<float> scores(num_items_ + 1, 0.0f);
    const int32_t last = fold_in.back();
    // Next in cycle gets the highest score, then the one after, etc.
    for (int32_t offset = 1; offset <= num_items_; ++offset) {
      const int32_t item = (last - 1 + offset) % num_items_ + 1;
      scores[item] = static_cast<float>(num_items_ - offset);
    }
    return scores;
  }

 private:
  int32_t num_items_;
};

TEST(EvaluatorTest, OracleGetsPerfectRecallOnCycleData) {
  const int32_t num_items = 20;
  std::vector<data::HeldOutUser> users;
  for (int32_t start = 1; start <= 5; ++start) {
    data::HeldOutUser u;
    for (int32_t i = 0; i < 8; ++i) {
      u.fold_in.push_back((start - 1 + i) % num_items + 1);
    }
    for (int32_t i = 8; i < 10; ++i) {
      u.holdout.push_back((start - 1 + i) % num_items + 1);
    }
    users.push_back(u);
  }
  OracleModel oracle(num_items);
  EvalOptions opts;
  opts.cutoffs = {2, 10};
  EvalResult r = EvaluateRanking(oracle, users, opts);
  EXPECT_DOUBLE_EQ(r.recall[2], 1.0);   // the 2 holdout items rank 1-2
  EXPECT_DOUBLE_EQ(r.ndcg[2], 1.0);
  EXPECT_DOUBLE_EQ(r.precision[2], 1.0);
  EXPECT_DOUBLE_EQ(r.recall[10], 1.0);
  EXPECT_DOUBLE_EQ(r.precision[10], 0.2);  // 2 of 10 slots relevant
}

TEST(EvaluatorTest, ResultToStringIsPercentages) {
  EvalResult r;
  r.ndcg[10] = 0.0678;
  r.recall[10] = 0.0934;
  r.precision[10] = 0.0229;
  const std::string s = r.ToString();
  EXPECT_NE(s.find("NDCG@10=6.780"), std::string::npos);
  EXPECT_NE(s.find("Recall@10=9.340"), std::string::npos);
}

}  // namespace
}  // namespace eval
}  // namespace vsan
