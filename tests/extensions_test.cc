// Tests for the extension features: sampled-BCE training loss, learning-rate
// schedules, early stopping, and the sampled-negative evaluation protocol.

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "data/dataset.h"
#include "eval/evaluator.h"
#include "models/sasrec.h"
#include "optim/adam.h"
#include "optim/lr_schedule.h"
#include "testing/gradcheck.h"
#include "util/early_stopping.h"
#include "util/rng.h"

namespace vsan {
namespace {

TEST(SampledBceTest, GradCheck) {
  const std::vector<int32_t> positives = {2, -1, 0};
  const std::vector<std::vector<int32_t>> negatives = {{1, 3}, {}, {4}};
  Rng rng(1);
  testing::ExpectGradientsClose(
      [&](const std::vector<Variable>& v) {
        return ops::SampledBinaryCrossEntropy(v[0], positives, negatives);
      },
      {Tensor::RandomNormal({3, 5}, &rng)});
}

TEST(SampledBceTest, LossDropsAsPositiveLogitRises) {
  const std::vector<int32_t> positives = {1};
  const std::vector<std::vector<int32_t>> negatives = {{2}};
  auto loss_at = [&](float pos_logit) {
    Variable logits(Tensor::FromVector({1, 3}, {0.0f, pos_logit, 0.0f}),
                    true);
    return ops::SampledBinaryCrossEntropy(logits, positives, negatives)
        .value()[0];
  };
  EXPECT_GT(loss_at(-2.0f), loss_at(0.0f));
  EXPECT_GT(loss_at(0.0f), loss_at(3.0f));
}

TEST(SampledBceTest, StableForExtremeLogits) {
  const std::vector<int32_t> positives = {0};
  const std::vector<std::vector<int32_t>> negatives = {{1}};
  Variable logits(Tensor::FromVector({1, 2}, {60.0f, -60.0f}), true);
  Variable loss =
      ops::SampledBinaryCrossEntropy(logits, positives, negatives);
  EXPECT_TRUE(std::isfinite(loss.value()[0]));
  EXPECT_NEAR(loss.value()[0], 0.0f, 1e-4f);
  loss.Backward();
  EXPECT_TRUE(logits.grad().AllFinite());
}

data::SequenceDataset CycleDataset(int32_t num_items, int32_t num_users,
                                   int32_t seq_len) {
  Rng rng(3);
  data::SequenceDataset ds(num_items);
  for (int32_t u = 0; u < num_users; ++u) {
    int32_t cur = static_cast<int32_t>(rng.UniformInt(1, num_items));
    std::vector<int32_t> seq;
    for (int32_t t = 0; t < seq_len; ++t) {
      seq.push_back(cur);
      cur = cur % num_items + 1;
    }
    ds.AddUser(std::move(seq));
  }
  return ds;
}

TEST(SampledBceTest, SasRecTrainsWithOriginalObjective) {
  models::SasRec::Config cfg;
  cfg.max_len = 8;
  cfg.d = 16;
  cfg.num_blocks = 1;
  cfg.dropout = 0.0f;
  cfg.loss = models::SasRec::LossType::kSampledBce;
  cfg.num_negatives = 2;
  models::SasRec model(cfg);
  TrainOptions opts;
  opts.epochs = 20;
  opts.batch_size = 16;
  opts.learning_rate = 5e-3f;
  model.Fit(CycleDataset(12, 60, 8), opts);
  const auto scores = model.Score({9, 10, 11});
  // Successor 12 should outrank a random other item.
  EXPECT_GT(scores[12], scores[5]);
}

TEST(LrScheduleTest, ConstantIsConstant) {
  optim::ConstantLr lr(0.01f);
  EXPECT_FLOAT_EQ(lr.LearningRate(0), 0.01f);
  EXPECT_FLOAT_EQ(lr.LearningRate(1000000), 0.01f);
}

TEST(LrScheduleTest, StepDecayHalvesOnSchedule) {
  optim::StepDecayLr lr(1.0f, 0.5f, 10);
  EXPECT_FLOAT_EQ(lr.LearningRate(0), 1.0f);
  EXPECT_FLOAT_EQ(lr.LearningRate(9), 1.0f);
  EXPECT_FLOAT_EQ(lr.LearningRate(10), 0.5f);
  EXPECT_FLOAT_EQ(lr.LearningRate(19), 0.5f);
  EXPECT_FLOAT_EQ(lr.LearningRate(20), 0.25f);
}

TEST(LrScheduleTest, WarmupLinearRampsUpThenDown) {
  optim::WarmupLinearLr lr(1.0f, 10, 110);
  EXPECT_LT(lr.LearningRate(0), 0.2f);
  EXPECT_LT(lr.LearningRate(4), lr.LearningRate(9));
  EXPECT_NEAR(lr.LearningRate(10), 1.0f, 1e-5f);
  EXPECT_GT(lr.LearningRate(10), lr.LearningRate(60));
  EXPECT_NEAR(lr.LearningRate(110), 0.0f, 1e-6f);
  EXPECT_NEAR(lr.LearningRate(500), 0.0f, 1e-6f);  // clamped past the end
}

TEST(LrScheduleTest, OptimizerAppliesScheduledRate) {
  Variable x(Tensor::Zeros({1}), true);
  optim::Adam::Options o;
  o.lr = 1.0f;
  optim::Adam adam({x}, o);
  adam.set_learning_rate(0.25f);
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.25f);
}

TEST(LrScheduleTest, ScheduleFlowsThroughTraining) {
  // A zero-ish rate schedule must freeze the model; a real one must not.
  data::SequenceDataset ds = CycleDataset(10, 30, 6);
  auto final_loss = [&](const optim::LrSchedule* schedule) {
    models::SasRec::Config cfg;
    cfg.max_len = 6;
    cfg.d = 8;
    cfg.num_blocks = 1;
    cfg.dropout = 0.0f;
    models::SasRec model(cfg);
    TrainOptions opts;
    opts.epochs = 6;
    opts.batch_size = 16;
    opts.lr_schedule = schedule;
    double last = 0.0;
    opts.epoch_callback = [&](const EpochStats& stats) {
      last = stats.loss;
    };
    model.Fit(ds, opts);
    return last;
  };
  optim::ConstantLr frozen(1e-12f);
  optim::ConstantLr normal(5e-3f);
  EXPECT_GT(final_loss(&frozen), final_loss(&normal) + 0.1);
}

TEST(EarlyStopperTest, StopsAfterPatienceExhausted) {
  EarlyStopper stopper(2);
  EXPECT_FALSE(stopper.Update(0.5));   // round 1: best
  EXPECT_FALSE(stopper.Update(0.4));   // 1 bad
  EXPECT_TRUE(stopper.Update(0.45));   // 2 bad -> stop
  EXPECT_DOUBLE_EQ(stopper.best(), 0.5);
  EXPECT_EQ(stopper.best_round(), 1);
}

TEST(EarlyStopperTest, ImprovementResetsPatience) {
  EarlyStopper stopper(2);
  EXPECT_FALSE(stopper.Update(0.1));
  EXPECT_FALSE(stopper.Update(0.05));
  EXPECT_FALSE(stopper.Update(0.2));  // new best resets the counter
  EXPECT_FALSE(stopper.Update(0.15));
  EXPECT_TRUE(stopper.Update(0.1));
  EXPECT_EQ(stopper.best_round(), 3);
}

TEST(EarlyStopperTest, MinDeltaIgnoresTinyImprovements) {
  EarlyStopper stopper(1, /*min_delta=*/0.1);
  EXPECT_FALSE(stopper.Update(0.5));
  EXPECT_TRUE(stopper.Update(0.55));  // +0.05 < min_delta: counts as bad
}

// A model that scores items by identity (higher id = higher score).
struct IdentityModel : SequentialRecommender {
  explicit IdentityModel(int32_t n) : n_(n) {}
  std::string name() const override { return "identity"; }
  void Fit(const data::SequenceDataset&, const TrainOptions&) override {}
  std::vector<float> Score(const std::vector<int32_t>&) const override {
    std::vector<float> s(n_ + 1);
    for (int32_t i = 0; i <= n_; ++i) s[i] = static_cast<float>(i);
    return s;
  }
  int32_t n_;
};

TEST(SampledNegativeEvalTest, RestrictsRankingToCandidates) {
  // Catalogue of 1000 items; holdout is item 500.  Under full ranking,
  // 500 items outrank it (recall@10 = 0).  Against only 5 sampled
  // negatives, item 500 usually lands in the top 10 of the 6 candidates.
  IdentityModel model(1000);
  std::vector<data::HeldOutUser> users(1);
  users[0].fold_in = {1};
  users[0].holdout = {500};

  eval::EvalOptions full;
  full.cutoffs = {10};
  EXPECT_DOUBLE_EQ(eval::EvaluateRanking(model, users, full).recall.at(10),
                   0.0);

  eval::EvalOptions sampled = full;
  sampled.num_sampled_negatives = 5;
  // 6 candidates, cutoff 10 >= 6: the holdout is always within the list.
  EXPECT_DOUBLE_EQ(
      eval::EvaluateRanking(model, users, sampled).recall.at(10), 1.0);
}

TEST(SampledNegativeEvalTest, DeterministicForFixedSeed) {
  IdentityModel model(100);
  std::vector<data::HeldOutUser> users(3);
  for (int u = 0; u < 3; ++u) {
    users[u].fold_in = {1, 2};
    users[u].holdout = {static_cast<int32_t>(40 + u)};
  }
  eval::EvalOptions opts;
  opts.cutoffs = {5};
  opts.num_sampled_negatives = 20;
  const auto a = eval::EvaluateRanking(model, users, opts);
  const auto b = eval::EvaluateRanking(model, users, opts);
  EXPECT_DOUBLE_EQ(a.ndcg.at(5), b.ndcg.at(5));
}

}  // namespace
}  // namespace vsan
