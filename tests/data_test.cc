#include <gtest/gtest.h>

#include <unordered_set>

#include "data/batcher.h"
#include "data/dataset.h"
#include "data/split.h"
#include "data/synthetic.h"

namespace vsan {
namespace data {
namespace {

SequenceDataset TinyDataset() {
  SequenceDataset ds(10);
  ds.AddUser({1, 2, 3, 4, 5});
  ds.AddUser({6, 7});
  ds.AddUser({8, 9, 10, 1});
  return ds;
}

TEST(DatasetTest, BasicStats) {
  SequenceDataset ds = TinyDataset();
  EXPECT_EQ(ds.num_users(), 3);
  EXPECT_EQ(ds.num_items(), 10);
  EXPECT_EQ(ds.num_interactions(), 11);
  EXPECT_NEAR(ds.MeanSequenceLength(), 11.0 / 3.0, 1e-9);
  EXPECT_NEAR(ds.Sparsity(), 1.0 - 11.0 / 30.0, 1e-9);
}

TEST(DatasetTest, SummaryMentionsCounts) {
  const std::string s = TinyDataset().Summary("tiny");
  EXPECT_NE(s.find("3 users"), std::string::npos);
  EXPECT_NE(s.find("10 items"), std::string::npos);
  EXPECT_NE(s.find("11 interactions"), std::string::npos);
}

TEST(DatasetDeathTest, RejectsOutOfRangeItems) {
  SequenceDataset ds(5);
  EXPECT_DEATH(ds.AddUser({1, 6}), "Check failed");
  EXPECT_DEATH(ds.AddUser({0}), "Check failed");
}

TEST(SplitTest, PartitionsUsersDisjointly) {
  SyntheticConfig cfg;
  cfg.num_users = 100;
  cfg.num_items = 50;
  cfg.num_categories = 5;
  SequenceDataset ds = GenerateSynthetic(cfg);
  SplitOptions opts;
  opts.num_validation_users = 10;
  opts.num_test_users = 15;
  StrongSplit split = MakeStrongSplit(ds, opts);
  EXPECT_EQ(split.train.num_users(), 75);
  EXPECT_EQ(split.validation.size(), 10u);
  EXPECT_EQ(split.test.size(), 15u);
  EXPECT_EQ(split.train.num_items(), ds.num_items());
  // Interactions are conserved.
  int64_t held = 0;
  for (const auto& u : split.validation) {
    held += u.fold_in.size() + u.holdout.size();
  }
  for (const auto& u : split.test) {
    held += u.fold_in.size() + u.holdout.size();
  }
  EXPECT_EQ(split.train.num_interactions() + held, ds.num_interactions());
}

TEST(SplitTest, FoldInFractionRespected) {
  SequenceDataset ds(20);
  for (int u = 0; u < 10; ++u) {
    std::vector<int32_t> seq;
    for (int i = 1; i <= 10; ++i) seq.push_back(i);
    ds.AddUser(seq);
  }
  SplitOptions opts;
  opts.num_test_users = 5;
  opts.fold_in_fraction = 0.8;
  StrongSplit split = MakeStrongSplit(ds, opts);
  for (const auto& u : split.test) {
    EXPECT_EQ(u.fold_in.size(), 8u);
    EXPECT_EQ(u.holdout.size(), 2u);
  }
}

TEST(SplitTest, EveryHeldOutUserHasBothParts) {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 40;
  cfg.num_categories = 4;
  cfg.min_seq_len = 3;
  cfg.max_seq_len = 6;
  StrongSplit split = MakeStrongSplit(GenerateSynthetic(cfg),
                                      {.num_validation_users = 10,
                                       .num_test_users = 10,
                                       .fold_in_fraction = 0.8,
                                       .min_heldout_length = 3,
                                       .seed = 3});
  for (const auto& u : split.test) {
    EXPECT_GE(u.fold_in.size(), 1u);
    EXPECT_GE(u.holdout.size(), 1u);
  }
}

TEST(BatcherTest, PadSequenceLeftAndRight) {
  const std::vector<int32_t> seq = {1, 2, 3};
  auto left = SequenceBatcher::PadSequence(seq, 5);
  EXPECT_EQ(left, (std::vector<int32_t>{0, 0, 1, 2, 3}));
  auto right = SequenceBatcher::PadSequence(seq, 5, /*pad_left=*/false);
  EXPECT_EQ(right, (std::vector<int32_t>{1, 2, 3, 0, 0}));
}

TEST(BatcherTest, PadSequenceTruncatesToMostRecent) {
  const std::vector<int32_t> seq = {1, 2, 3, 4, 5, 6};
  auto padded = SequenceBatcher::PadSequence(seq, 4);
  EXPECT_EQ(padded, (std::vector<int32_t>{3, 4, 5, 6}));
}

TEST(BatcherTest, NextItemTargetsAreShiftedInputs) {
  SequenceDataset ds(9);
  ds.AddUser({1, 2, 3, 4});
  SequenceBatcher::Options opts;
  opts.max_len = 5;
  opts.batch_size = 1;
  SequenceBatcher batcher(&ds, opts);
  TrainBatch batch;
  ASSERT_TRUE(batcher.NextBatch(&batch));
  // Inputs: items [0..len-2] left-padded; targets: the following item.
  EXPECT_EQ(batch.inputs, (std::vector<int32_t>{0, 0, 1, 2, 3}));
  EXPECT_EQ(batch.next_targets, (std::vector<int32_t>{-1, -1, 2, 3, 4}));
  EXPECT_EQ(batch.position_mask,
            (std::vector<float>{0, 0, 1, 1, 1}));
  EXPECT_FALSE(batcher.NextBatch(&batch));
}

TEST(BatcherTest, LongSequenceKeepsMostRecentWindow) {
  SequenceDataset ds(9);
  ds.AddUser({1, 2, 3, 4, 5, 6, 7});
  SequenceBatcher::Options opts;
  opts.max_len = 3;
  opts.batch_size = 1;
  SequenceBatcher batcher(&ds, opts);
  TrainBatch batch;
  ASSERT_TRUE(batcher.NextBatch(&batch));
  EXPECT_EQ(batch.inputs, (std::vector<int32_t>{4, 5, 6}));
  EXPECT_EQ(batch.next_targets, (std::vector<int32_t>{5, 6, 7}));
}

TEST(BatcherTest, NextKTargetSetsStopAtSequenceEnd) {
  SequenceDataset ds(9);
  ds.AddUser({1, 2, 3, 4});
  SequenceBatcher::Options opts;
  opts.max_len = 4;
  opts.batch_size = 1;
  opts.next_k = 2;
  SequenceBatcher batcher(&ds, opts);
  TrainBatch batch;
  ASSERT_TRUE(batcher.NextBatch(&batch));
  ASSERT_EQ(batch.nextk_targets.size(), 4u);
  EXPECT_TRUE(batch.nextk_targets[0].empty());  // padding position
  EXPECT_EQ(batch.nextk_targets[1], (std::vector<int32_t>{2, 3}));
  EXPECT_EQ(batch.nextk_targets[2], (std::vector<int32_t>{3, 4}));
  EXPECT_EQ(batch.nextk_targets[3], (std::vector<int32_t>{4}));  // truncated
}

TEST(BatcherTest, SkipsUsersWithoutTargets) {
  SequenceDataset ds(9);
  ds.AddUser({1});        // too short to train on
  ds.AddUser({1, 2});
  SequenceBatcher::Options opts;
  opts.max_len = 3;
  opts.batch_size = 8;
  SequenceBatcher batcher(&ds, opts);
  EXPECT_EQ(batcher.num_training_users(), 1);
}

TEST(BatcherTest, CoversAllUsersOncePerEpoch) {
  SequenceDataset ds(9);
  for (int u = 0; u < 10; ++u) ds.AddUser({1, 2, 3});
  SequenceBatcher::Options opts;
  opts.max_len = 3;
  opts.batch_size = 4;
  SequenceBatcher batcher(&ds, opts);
  EXPECT_EQ(batcher.num_batches(), 3);
  TrainBatch batch;
  int64_t rows = 0;
  while (batcher.NextBatch(&batch)) rows += batch.batch_size;
  EXPECT_EQ(rows, 10);
}

TEST(SyntheticTest, RespectsConfiguredSizes) {
  SyntheticConfig cfg;
  cfg.num_users = 50;
  cfg.num_items = 30;
  cfg.num_categories = 3;
  cfg.min_seq_len = 4;
  cfg.max_seq_len = 8;
  SequenceDataset ds = GenerateSynthetic(cfg);
  EXPECT_EQ(ds.num_users(), 50);
  EXPECT_EQ(ds.num_items(), 30);
  for (int32_t u = 0; u < ds.num_users(); ++u) {
    EXPECT_GE(ds.sequence(u).size(), 4u);
    EXPECT_LE(ds.sequence(u).size(), 8u);
    for (int32_t item : ds.sequence(u)) {
      EXPECT_GE(item, 1);
      EXPECT_LE(item, 30);
    }
  }
}

TEST(SyntheticTest, DeterministicForSameSeed) {
  SyntheticConfig cfg;
  cfg.num_users = 20;
  cfg.num_items = 15;
  cfg.num_categories = 3;
  SequenceDataset a = GenerateSynthetic(cfg);
  SequenceDataset b = GenerateSynthetic(cfg);
  ASSERT_EQ(a.num_users(), b.num_users());
  for (int32_t u = 0; u < a.num_users(); ++u) {
    EXPECT_EQ(a.sequence(u), b.sequence(u));
  }
}

TEST(SyntheticTest, UsersConcentrateOnFewCategories) {
  // With contiguous category blocks, a user's items should span at most
  // max_categories_per_user categories (plus chain successors inside them).
  SyntheticConfig cfg;
  cfg.num_users = 30;
  cfg.num_items = 100;
  cfg.num_categories = 10;
  cfg.min_categories_per_user = 2;
  cfg.max_categories_per_user = 3;
  cfg.min_seq_len = 20;
  cfg.max_seq_len = 30;
  SequenceDataset ds = GenerateSynthetic(cfg);
  for (int32_t u = 0; u < ds.num_users(); ++u) {
    std::unordered_set<int32_t> cats;
    for (int32_t item : ds.sequence(u)) {
      cats.insert((item - 1) * cfg.num_categories / cfg.num_items);
    }
    EXPECT_LE(cats.size(), 3u) << "user " << u;
    EXPECT_GE(cats.size(), 1u);
  }
}

TEST(SyntheticTest, BeautyPresetMatchesTableIIShape) {
  data::SyntheticConfig cfg = BeautyLikeConfig(0.05);
  SequenceDataset ds = GenerateSynthetic(cfg);
  // Sparse regime: short sequences, items comparable to users.
  EXPECT_GT(ds.Sparsity(), 0.95);
  EXPECT_LT(ds.MeanSequenceLength(), 15.0);
  EXPECT_GT(ds.MeanSequenceLength(), 4.0);
}

TEST(SyntheticTest, ML1MPresetIsDenserWithLongSequences) {
  SequenceDataset beauty = GenerateSynthetic(BeautyLikeConfig(0.05));
  SequenceDataset ml = GenerateSynthetic(ML1MLikeConfig(0.05));
  EXPECT_GT(ml.MeanSequenceLength(), 4.0 * beauty.MeanSequenceLength());
  EXPECT_LT(ml.Sparsity(), beauty.Sparsity());
}

}  // namespace
}  // namespace data
}  // namespace vsan
