// Subprocess driver for the crash-and-resume fault tests: trains a small
// model on a deterministic synthetic dataset with checkpointing enabled and
// writes the final parameters to a file.  The test harness runs it three
// ways — clean, with VSAN_FAULT=abort_at_step=N (hard _Exit mid-run), and
// again with --resume — then compares the parameter files byte for byte.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/vsan.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "models/recommender.h"
#include "models/sasrec.h"
#include "nn/module.h"
#include "nn/serialize.h"
#include "util/status.h"

namespace {

vsan::data::SequenceDataset MakeDataset() {
  vsan::data::SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 40;
  config.seed = 13;
  return vsan::data::GenerateSynthetic(config);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <vsan|sasrec> <checkpoint_dir> <params_out> "
                 "[--resume]\n",
                 argv[0]);
    return 2;
  }
  const std::string which = argv[1];
  vsan::TrainOptions opts;
  opts.epochs = 3;
  opts.batch_size = 16;
  opts.checkpoint_dir = argv[2];
  opts.checkpoint_every_n_epochs = 1;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--resume") == 0) opts.resume = true;
  }

  const vsan::data::SequenceDataset dataset = MakeDataset();
  const vsan::nn::Module* module = nullptr;
  std::unique_ptr<vsan::SequentialRecommender> keep_alive;
  if (which == "vsan") {
    vsan::core::VsanConfig config;
    config.max_len = 8;
    config.d = 8;
    config.anneal_steps = 8;  // short anneal so beta varies across epochs
    auto model = std::make_unique<vsan::core::Vsan>(config);
    model->Fit(dataset, opts);
    module = model->module();
    keep_alive = std::move(model);
  } else if (which == "sasrec") {
    vsan::models::SasRec::Config config;
    config.max_len = 8;
    config.d = 8;
    config.num_blocks = 1;
    auto model = std::make_unique<vsan::models::SasRec>(config);
    model->Fit(dataset, opts);
    module = model->module();
    keep_alive = std::move(model);
  } else {
    std::fprintf(stderr, "unknown model: %s\n", which.c_str());
    return 2;
  }

  const vsan::Status status = vsan::nn::SaveParametersToFile(*module, argv[3]);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", argv[3],
                 status.ToString().c_str());
    return 3;
  }
  return 0;
}
