#ifndef VSAN_TESTS_TESTING_GRADCHECK_H_
#define VSAN_TESTS_TESTING_GRADCHECK_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/variable.h"

namespace vsan {
namespace testing {

// Loss builder: constructs a fresh graph from leaf variables and returns a
// scalar.  Must be deterministic across calls (seed any Rng inside).
using LossFn = std::function<Variable(const std::vector<Variable>&)>;

// Verifies analytic gradients of `f` against central finite differences for
// every element of every input.  Inputs are float32, so tolerances are loose
// by design; keep inputs small (tens of elements).
inline void ExpectGradientsClose(const LossFn& f,
                                 const std::vector<Tensor>& inits,
                                 double eps = 1e-3, double rel_tol = 4e-2,
                                 double abs_tol = 8e-3) {
  // Analytic pass.
  std::vector<Variable> vars;
  vars.reserve(inits.size());
  for (const Tensor& t : inits) vars.emplace_back(t, /*requires_grad=*/true);
  Variable loss = f(vars);
  ASSERT_EQ(loss.value().numel(), 1);
  loss.Backward();
  std::vector<Tensor> analytic;
  for (Variable& v : vars) {
    ASSERT_TRUE(v.has_grad());
    analytic.push_back(v.grad());
  }

  // Numeric pass, element by element.
  auto eval = [&](const std::vector<Tensor>& points) {
    std::vector<Variable> fresh;
    fresh.reserve(points.size());
    // requires_grad=true keeps the graph identical to the analytic pass
    // (pruning must not change forward values, but be safe).
    for (const Tensor& t : points) fresh.emplace_back(t, true);
    return static_cast<double>(f(fresh).value()[0]);
  };

  for (size_t p = 0; p < inits.size(); ++p) {
    for (int64_t i = 0; i < inits[p].numel(); ++i) {
      std::vector<Tensor> plus = inits;
      std::vector<Tensor> minus = inits;
      plus[p][i] += static_cast<float>(eps);
      minus[p][i] -= static_cast<float>(eps);
      const double numeric = (eval(plus) - eval(minus)) / (2.0 * eps);
      const double got = analytic[p][i];
      const double tol = abs_tol + rel_tol * std::abs(numeric);
      EXPECT_NEAR(got, numeric, tol)
          << "param " << p << " element " << i;
    }
  }
}

}  // namespace testing
}  // namespace vsan

#endif  // VSAN_TESTS_TESTING_GRADCHECK_H_
