#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace vsan {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.ndim(), 0);
  EXPECT_EQ(t.numel(), 0);
}

TEST(TensorTest, ZerosHasShapeAndZeroData) {
  Tensor t({2, 3});
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FullAndOnes) {
  Tensor f = Tensor::Full({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(f[i], 2.5f);
  Tensor o = Tensor::Ones({2, 2});
  EXPECT_EQ(o.Sum(), 4.0f);
}

TEST(TensorTest, FromVectorPreservesValues) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, ScalarFactory) {
  Tensor s = Tensor::Scalar(7.0f);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s[0], 7.0f);
}

TEST(TensorTest, ThreeDAndFourDIndexing) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 9.0f;
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 9.0f);
  Tensor u({2, 2, 2, 2});
  u.at(1, 0, 1, 0) = 3.0f;
  EXPECT_EQ(u[8 + 0 + 2 + 0], 3.0f);
}

TEST(TensorTest, ReshapedKeepsDataChangesShape) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r.at(2, 1), 6.0f);
}

TEST(TensorTest, SumMeanMinMax) {
  Tensor t = Tensor::FromVector({4}, {1, -2, 3, 6});
  EXPECT_FLOAT_EQ(t.Sum(), 8.0f);
  EXPECT_FLOAT_EQ(t.Mean(), 2.0f);
  EXPECT_FLOAT_EQ(t.Min(), -2.0f);
  EXPECT_FLOAT_EQ(t.Max(), 6.0f);
}

TEST(TensorTest, AllFiniteDetectsNanAndInf) {
  Tensor t = Tensor::Ones({3});
  EXPECT_TRUE(t.AllFinite());
  t[1] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(t.AllFinite());
  t[1] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(t.AllFinite());
}

TEST(TensorTest, RandomNormalMomentsRoughlyCorrect) {
  Rng rng(42);
  Tensor t = Tensor::RandomNormal({10000}, &rng, 2.0f);
  EXPECT_NEAR(t.Mean(), 0.0f, 0.1f);
  double var = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) var += t[i] * t[i];
  var /= t.numel();
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(TensorTest, RandomUniformRange) {
  Rng rng(7);
  Tensor t = Tensor::RandomUniform({1000}, &rng, -1.0f, 3.0f);
  EXPECT_GE(t.Min(), -1.0f);
  EXPECT_LT(t.Max(), 3.0f);
  EXPECT_NEAR(t.Mean(), 1.0f, 0.2f);
}

TEST(TensorTest, FillAndSetZero) {
  Tensor t({3});
  t.Fill(5.0f);
  EXPECT_EQ(t.Sum(), 15.0f);
  t.SetZero();
  EXPECT_EQ(t.Sum(), 0.0f);
}

TEST(TensorTest, ToStringTruncates) {
  Tensor t = Tensor::Ones({10});
  const std::string s = t.ToString(3);
  EXPECT_NE(s.find("Tensor[10]"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

TEST(TensorDeathTest, FromVectorSizeMismatchDies) {
  EXPECT_DEATH(Tensor::FromVector({2, 2}, {1, 2, 3}), "Check failed");
}

TEST(TensorDeathTest, ReshapeElementMismatchDies) {
  Tensor t({2, 3});
  EXPECT_DEATH(t.Reshaped({4, 2}), "Check failed");
}

}  // namespace
}  // namespace vsan
