#include "tensor/tensor_ops.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace vsan {
namespace {

// Reference triple-loop matmul used to validate the optimized kernels.
Tensor NaiveMatMul(const Tensor& a, const Tensor& b, bool trans_a,
                   bool trans_b) {
  const int64_t m = trans_a ? a.dim(1) : a.dim(0);
  const int64_t k = trans_a ? a.dim(0) : a.dim(1);
  const int64_t n = trans_b ? b.dim(0) : b.dim(1);
  Tensor c({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = trans_a ? a.at(p, i) : a.at(i, p);
        const float bv = trans_b ? b.at(j, p) : b.at(p, j);
        acc += static_cast<double>(av) * bv;
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

void ExpectTensorNear(const Tensor& a, const Tensor& b, float tol = 1e-4f) {
  ASSERT_TRUE(a.SameShape(b));
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "element " << i;
  }
}

// Parameterized over (m, k, n, trans_a, trans_b).
class MatMulParamTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool, bool>> {
};

TEST_P(MatMulParamTest, MatchesNaiveReference) {
  const auto [m, k, n, trans_a, trans_b] = GetParam();
  Rng rng(m * 1000 + k * 100 + n * 10 + trans_a * 2 + trans_b);
  Tensor a = Tensor::RandomNormal(
      trans_a ? std::vector<int64_t>{k, m} : std::vector<int64_t>{m, k}, &rng);
  Tensor b = Tensor::RandomNormal(
      trans_b ? std::vector<int64_t>{n, k} : std::vector<int64_t>{k, n}, &rng);
  ExpectTensorNear(MatMul2D(a, b, trans_a, trans_b),
                   NaiveMatMul(a, b, trans_a, trans_b), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulParamTest,
    ::testing::Combine(::testing::Values(1, 3, 7), ::testing::Values(1, 5, 8),
                       ::testing::Values(1, 4, 9), ::testing::Bool(),
                       ::testing::Bool()));

TEST(TensorOpsTest, BatchedMatMulMatchesPerBatch) {
  Rng rng(11);
  Tensor a = Tensor::RandomNormal({3, 4, 5}, &rng);
  Tensor b = Tensor::RandomNormal({3, 5, 2}, &rng);
  Tensor c = BatchedMatMul(a, b);
  ASSERT_EQ(c.ndim(), 3);
  for (int64_t i = 0; i < 3; ++i) {
    Tensor ai({4, 5});
    Tensor bi({5, 2});
    std::copy(a.data() + i * 20, a.data() + (i + 1) * 20, ai.data());
    std::copy(b.data() + i * 10, b.data() + (i + 1) * 10, bi.data());
    Tensor ci = MatMul2D(ai, bi);
    for (int64_t r = 0; r < 4; ++r) {
      for (int64_t col = 0; col < 2; ++col) {
        EXPECT_NEAR(c.at(i, r, col), ci.at(r, col), 1e-4f);
      }
    }
  }
}

TEST(TensorOpsTest, BatchedMatMulTransposeFlags) {
  Rng rng(12);
  Tensor a = Tensor::RandomNormal({2, 5, 4}, &rng);  // will be used as A^T
  Tensor b = Tensor::RandomNormal({2, 5, 3}, &rng);
  Tensor c = BatchedMatMul(a, b, /*trans_a=*/true, /*trans_b=*/false);
  EXPECT_EQ(c.dim(1), 4);
  EXPECT_EQ(c.dim(2), 3);
  // Check one element against the definition.
  double acc = 0.0;
  for (int64_t p = 0; p < 5; ++p) acc += a.at(1, p, 2) * b.at(1, p, 1);
  EXPECT_NEAR(c.at(1, 2, 1), acc, 1e-4f);
}

TEST(TensorOpsTest, BatchedMatMulBroadcastMatchesLoop) {
  Rng rng(13);
  Tensor a = Tensor::RandomNormal({3, 2, 4}, &rng);
  Tensor w = Tensor::RandomNormal({4, 6}, &rng);
  Tensor c = BatchedMatMulBroadcast(a, w);
  for (int64_t bi = 0; bi < 3; ++bi) {
    for (int64_t i = 0; i < 2; ++i) {
      for (int64_t j = 0; j < 6; ++j) {
        double acc = 0.0;
        for (int64_t p = 0; p < 4; ++p) acc += a.at(bi, i, p) * w.at(p, j);
        EXPECT_NEAR(c.at(bi, i, j), acc, 1e-4f);
      }
    }
  }
}

TEST(TensorOpsTest, BroadcastWithTransposedWeight) {
  Rng rng(14);
  Tensor a = Tensor::RandomNormal({2, 3, 4}, &rng);
  Tensor w = Tensor::RandomNormal({6, 4}, &rng);  // op(W) = W^T is [4, 6]
  Tensor c = BatchedMatMulBroadcast(a, w, /*trans_w=*/true);
  EXPECT_EQ(c.dim(2), 6);
  double acc = 0.0;
  for (int64_t p = 0; p < 4; ++p) acc += a.at(1, 2, p) * w.at(5, p);
  EXPECT_NEAR(c.at(1, 2, 5), acc, 1e-4f);
}

TEST(TensorOpsTest, AccumulateMatMulAddsIntoOutput) {
  Rng rng(15);
  Tensor a = Tensor::RandomNormal({3, 2}, &rng);
  Tensor g = Tensor::RandomNormal({3, 4}, &rng);
  Tensor out = Tensor::Full({2, 4}, 1.0f);
  AccumulateMatMul2D(a, g, /*trans_a=*/true, /*trans_b=*/false, &out);
  Tensor expected = Add(Tensor::Full({2, 4}, 1.0f),
                        MatMul2D(a, g, /*trans_a=*/true, /*trans_b=*/false));
  ExpectTensorNear(out, expected);
}

TEST(TensorOpsTest, ElementwiseAddSubMul) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {4, 5, 6});
  ExpectTensorNear(Add(a, b), Tensor::FromVector({3}, {5, 7, 9}));
  ExpectTensorNear(Sub(a, b), Tensor::FromVector({3}, {-3, -3, -3}));
  ExpectTensorNear(Mul(a, b), Tensor::FromVector({3}, {4, 10, 18}));
}

TEST(TensorOpsTest, ScalarOps) {
  Tensor a = Tensor::FromVector({2}, {1, -2});
  ExpectTensorNear(AddScalar(a, 3.0f), Tensor::FromVector({2}, {4, 1}));
  ExpectTensorNear(MulScalar(a, -2.0f), Tensor::FromVector({2}, {-2, 4}));
}

TEST(TensorOpsTest, AddBiasLastDimBroadcasts) {
  Tensor x = Tensor::FromVector({2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor b = Tensor::FromVector({3}, {1, 2, 3});
  ExpectTensorNear(AddBiasLastDim(x, b),
                   Tensor::FromVector({2, 3}, {1, 2, 3, 2, 3, 4}));
}

TEST(TensorOpsTest, AxpyAccumulates) {
  Tensor x = Tensor::FromVector({2}, {1, 2});
  Tensor out = Tensor::FromVector({2}, {10, 20});
  Axpy(0.5f, x, &out);
  ExpectTensorNear(out, Tensor::FromVector({2}, {10.5f, 21.0f}));
}

TEST(TensorOpsTest, ApplyMapsEveryElement) {
  Tensor x = Tensor::FromVector({3}, {1, 4, 9});
  Tensor y = Apply(x, [](float v) { return std::sqrt(v); });
  ExpectTensorNear(y, Tensor::FromVector({3}, {1, 2, 3}));
}

TEST(TensorOpsTest, Transpose2D) {
  Tensor x = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose2D(x);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.at(2, 1), 6.0f);
  EXPECT_EQ(t.at(0, 1), 4.0f);
}

TEST(TensorOpsTest, TransposeLast2SwapsWithinBatch) {
  Rng rng(16);
  Tensor x = Tensor::RandomNormal({2, 3, 4}, &rng);
  Tensor t = TransposeLast2(x);
  EXPECT_EQ(t.dim(1), 4);
  EXPECT_EQ(t.dim(2), 3);
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t i = 0; i < 3; ++i) {
      for (int64_t j = 0; j < 4; ++j) {
        EXPECT_EQ(t.at(b, j, i), x.at(b, i, j));
      }
    }
  }
}

TEST(TensorOpsTest, SoftmaxRowsSumToOne) {
  Rng rng(17);
  Tensor x = Tensor::RandomNormal({5, 7}, &rng, 3.0f);
  Tensor s = SoftmaxLastDim(x);
  for (int64_t r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (int64_t j = 0; j < 7; ++j) {
      EXPECT_GT(s.at(r, j), 0.0f);
      sum += s.at(r, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(TensorOpsTest, SoftmaxStableForLargeLogits) {
  Tensor x = Tensor::FromVector({1, 3}, {1000.0f, 1000.0f, 999.0f});
  Tensor s = SoftmaxLastDim(x);
  EXPECT_TRUE(s.AllFinite());
  EXPECT_NEAR(s.at(0, 0), s.at(0, 1), 1e-6f);
  EXPECT_LT(s.at(0, 2), s.at(0, 0));
}

TEST(TensorOpsTest, SoftmaxIsOrderPreserving) {
  Tensor x = Tensor::FromVector({1, 4}, {0.1f, 2.0f, -1.0f, 0.5f});
  Tensor s = SoftmaxLastDim(x);
  EXPECT_GT(s.at(0, 1), s.at(0, 3));
  EXPECT_GT(s.at(0, 3), s.at(0, 0));
  EXPECT_GT(s.at(0, 0), s.at(0, 2));
}

TEST(TensorOpsTest, SumLastDim) {
  Tensor x = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = SumLastDim(x);
  EXPECT_EQ(s.ndim(), 1);
  EXPECT_FLOAT_EQ(s.at(0), 6.0f);
  EXPECT_FLOAT_EQ(s.at(1), 15.0f);
}

TEST(TensorOpsDeathTest, MatMulInnerDimMismatchDies) {
  Tensor a({2, 3});
  Tensor b({4, 5});
  EXPECT_DEATH(MatMul2D(a, b), "mismatch");
}

TEST(TensorOpsDeathTest, ElementwiseShapeMismatchDies) {
  Tensor a({2, 3});
  Tensor b({3, 2});
  EXPECT_DEATH(Add(a, b), "Check failed");
}

}  // namespace
}  // namespace vsan
