// Tests for the NegativeSampler utility and the ItemKNN extension baseline.

#include <gtest/gtest.h>

#include <unordered_set>

#include "data/negative_sampler.h"
#include "models/itemknn.h"
#include "util/rng.h"

namespace vsan {
namespace {

data::SequenceDataset SkewedDataset() {
  // Item 1 appears in every sequence (very popular); items 2..10 rare.
  data::SequenceDataset ds(10);
  for (int u = 0; u < 20; ++u) {
    ds.AddUser({1, static_cast<int32_t>(u % 9 + 2)});
  }
  return ds;
}

TEST(NegativeSamplerTest, UniformCoversRangeAndRespectsExclusion) {
  data::SequenceDataset ds = SkewedDataset();
  data::NegativeSampler sampler(ds, data::NegativeSampler::Strategy::kUniform,
                                7);
  const std::unordered_set<int32_t> exclude = {1, 2, 3};
  std::unordered_set<int32_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int32_t s = sampler.Sample(exclude);
    EXPECT_GE(s, 4);
    EXPECT_LE(s, 10);
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 7u);  // all of 4..10 hit
}

TEST(NegativeSamplerTest, PopularityFavoursFrequentItems) {
  data::SequenceDataset ds = SkewedDataset();
  data::NegativeSampler sampler(
      ds, data::NegativeSampler::Strategy::kPopularity, 8);
  int32_t item1_hits = 0;
  const std::unordered_set<int32_t> exclude;
  const int n = 4000;
  for (int i = 0; i < n; ++i) item1_hits += sampler.Sample(exclude) == 1;
  // Item 1 holds 20 of 40 interactions (plus smoothing): expect far above
  // the uniform 10%.
  EXPECT_GT(item1_hits, n / 4);
}

TEST(NegativeSamplerTest, SampleKReturnsDistinctItems) {
  data::SequenceDataset ds = SkewedDataset();
  data::NegativeSampler sampler(ds, data::NegativeSampler::Strategy::kUniform,
                                9);
  const std::unordered_set<int32_t> exclude = {5};
  const auto batch = sampler.SampleK(exclude, 9);  // all items except 5
  std::unordered_set<int32_t> unique(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), 9u);
  EXPECT_EQ(unique.count(5), 0u);
}

TEST(NegativeSamplerDeathTest, ImpossibleRequestsDie) {
  data::SequenceDataset ds = SkewedDataset();
  data::NegativeSampler sampler(ds, data::NegativeSampler::Strategy::kUniform,
                                10);
  std::unordered_set<int32_t> everything;
  for (int32_t i = 1; i <= 10; ++i) everything.insert(i);
  EXPECT_DEATH(sampler.Sample(everything), "nothing left");
  EXPECT_DEATH(sampler.SampleK({}, 11), "not enough");
}

TEST(ItemKnnTest, CoConsumedItemsAreSimilar) {
  data::SequenceDataset ds(6);
  // Items 1 and 2 always co-occur; 5 and 6 never co-occur with 1.
  for (int u = 0; u < 10; ++u) ds.AddUser({1, 2});
  for (int u = 0; u < 10; ++u) ds.AddUser({5, 6});
  models::ItemKnn knn({});
  knn.Fit(ds, {});
  EXPECT_NEAR(knn.Similarity(1, 2), 1.0f, 1e-5f);
  EXPECT_FLOAT_EQ(knn.Similarity(1, 5), 0.0f);
  EXPECT_NEAR(knn.Similarity(5, 6), 1.0f, 1e-5f);
}

TEST(ItemKnnTest, ScoresNeighborsOfHistory) {
  data::SequenceDataset ds(6);
  for (int u = 0; u < 10; ++u) ds.AddUser({1, 2});
  for (int u = 0; u < 10; ++u) ds.AddUser({5, 6});
  models::ItemKnn knn({});
  knn.Fit(ds, {});
  const auto scores = knn.Score({1});
  EXPECT_GT(scores[2], scores[5]);
  EXPECT_GT(scores[2], scores[6]);
  EXPECT_FLOAT_EQ(scores[5], 0.0f);
}

TEST(ItemKnnTest, RecencyDecayPrefersRecentContext) {
  data::SequenceDataset ds(9);
  // 1 co-occurs with 2; 8 co-occurs with 9.
  for (int u = 0; u < 10; ++u) ds.AddUser({1, 2});
  for (int u = 0; u < 10; ++u) ds.AddUser({8, 9});
  models::ItemKnn::Config cfg;
  cfg.recency_decay = 0.3;
  models::ItemKnn knn(cfg);
  knn.Fit(ds, {});
  // History ends with 8: neighbour 9 should outrank neighbour 2 of the
  // older item 1.
  const auto scores = knn.Score({1, 8});
  EXPECT_GT(scores[9], scores[2]);
  // Reversed history flips the preference.
  const auto flipped = knn.Score({8, 1});
  EXPECT_GT(flipped[2], flipped[9]);
}

TEST(ItemKnnTest, TopKTruncationKeepsStrongestNeighbors) {
  data::SequenceDataset ds(5);
  // Item 1 co-occurs with 2 often, with 3 rarely.
  for (int u = 0; u < 9; ++u) ds.AddUser({1, 2});
  ds.AddUser({1, 3});
  models::ItemKnn::Config cfg;
  cfg.k = 1;  // keep only the single best neighbour
  models::ItemKnn knn(cfg);
  knn.Fit(ds, {});
  EXPECT_GT(knn.Similarity(1, 2), 0.0f);
  EXPECT_FLOAT_EQ(knn.Similarity(1, 3), 0.0f);  // truncated away
}

TEST(ItemKnnTest, LearnsCycleNeighborhoods) {
  Rng rng(3);
  data::SequenceDataset ds(12);
  for (int32_t u = 0; u < 60; ++u) {
    int32_t cur = static_cast<int32_t>(rng.UniformInt(1, 12));
    std::vector<int32_t> seq;
    for (int32_t t = 0; t < 4; ++t) {
      seq.push_back(cur);
      cur = cur % 12 + 1;
    }
    ds.AddUser(std::move(seq));
  }
  models::ItemKnn knn({});
  knn.Fit(ds, {});
  // Ring neighbours of the last item should rank above distant items.
  const auto scores = knn.Score({5, 6, 7});
  EXPECT_GT(scores[8], scores[1]);
}

}  // namespace
}  // namespace vsan
