// Tests for the pooled tensor allocator (src/tensor/pool.h): bucket
// rounding, thread-local and cross-thread reuse, the VSAN_POOL kill-switch,
// ASAN poison-on-release, and the end-to-end guarantee the pool is built
// on: training numerics are bitwise-identical with the pool on or off.

#include "tensor/pool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/vsan.h"
#include "data/synthetic.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define VSAN_POOL_TEST_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define VSAN_POOL_TEST_ASAN 1
#endif
#ifdef VSAN_POOL_TEST_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace vsan {
namespace {

// Restores the pool-enabled flag on scope exit so tests that flip it do not
// leak state into later tests.
class PoolEnabledGuard {
 public:
  PoolEnabledGuard() : was_enabled_(pool::PoolEnabled()) {}
  ~PoolEnabledGuard() { pool::SetPoolEnabledForTesting(was_enabled_); }

 private:
  bool was_enabled_;
};

TEST(PoolBucketTest, RoundsUpToPowerOfTwoClasses) {
  const int64_t min_cap = int64_t{1} << pool::kMinBucketLog2;
  EXPECT_EQ(pool::BucketCapacity(1), min_cap);
  EXPECT_EQ(pool::BucketCapacity(min_cap), min_cap);
  EXPECT_EQ(pool::BucketCapacity(min_cap + 1), min_cap * 2);
  EXPECT_EQ(pool::BucketCapacity(100), 128);
  EXPECT_EQ(pool::BucketCapacity(128), 128);
  EXPECT_EQ(pool::BucketCapacity(129), 256);
  const int64_t max_cap = int64_t{1} << pool::kMaxBucketLog2;
  EXPECT_EQ(pool::BucketCapacity(max_cap), max_cap);
  // Oversize requests are not rounded: they bypass the pool.
  EXPECT_EQ(pool::BucketCapacity(max_cap + 1), max_cap + 1);
}

TEST(PoolBufferTest, ThreadLocalFreeListReusesLifo) {
  PoolEnabledGuard guard;
  pool::SetPoolEnabledForTesting(true);
  pool::Buffer a = pool::Buffer::Zeroed(100);
  ASSERT_TRUE(a.pooled());
  EXPECT_EQ(a.size(), 100);
  EXPECT_EQ(a.capacity(), 128);
  float* ptr = a.data();
  a.Reset();
  // The free list is LIFO, so the next same-bucket acquire must return the
  // buffer just released.
  pool::Buffer b = pool::Buffer::Uninitialized(128);
  EXPECT_EQ(b.data(), ptr);
}

TEST(PoolBufferTest, ZeroedClearsReusedPoolMemory) {
  PoolEnabledGuard guard;
  pool::SetPoolEnabledForTesting(true);
  {
    pool::Buffer dirty = pool::Buffer::Uninitialized(200);
    for (int64_t i = 0; i < dirty.size(); ++i) dirty.data()[i] = 42.0f;
  }
  pool::Buffer clean = pool::Buffer::Zeroed(200);
  for (int64_t i = 0; i < clean.size(); ++i) {
    ASSERT_EQ(clean.data()[i], 0.0f) << "stale pool memory at " << i;
  }
}

TEST(PoolBufferTest, CopyAssignmentReusesSameBucketAllocation) {
  PoolEnabledGuard guard;
  pool::SetPoolEnabledForTesting(true);
  pool::Buffer src = pool::Buffer::Zeroed(100);
  for (int64_t i = 0; i < src.size(); ++i) src.data()[i] = 3.5f;
  pool::Buffer dst = pool::Buffer::Zeroed(90);  // same 128-element bucket
  float* dst_ptr = dst.data();
  dst = src;
  EXPECT_EQ(dst.data(), dst_ptr) << "same-bucket copy should not reallocate";
  EXPECT_EQ(dst.size(), src.size());
  EXPECT_EQ(0, std::memcmp(dst.data(), src.data(),
                           src.size() * sizeof(float)));
}

TEST(PoolBufferTest, CrossThreadReleaseSpillsToArenaForReuse) {
  PoolEnabledGuard guard;
  pool::SetPoolEnabledForTesting(true);
  // Quiesce: empty this thread's cache and the arena so pointer identity
  // below is deterministic.
  pool::TrimForTesting();
  pool::Buffer a = pool::Buffer::Zeroed(3000);  // 4096-element bucket
  ASSERT_TRUE(a.pooled());
  float* ptr = a.data();
  std::thread releaser([buf = std::move(a)]() mutable { buf.Reset(); });
  releaser.join();
  // The releasing thread's cache flushed to the global arena at thread
  // exit; an acquire here (empty local list) must pull from the arena.
  pool::Buffer b = pool::Buffer::Uninitialized(3000);
  EXPECT_EQ(b.data(), ptr);
}

TEST(PoolBufferTest, KillSwitchFallsBackToPlainAllocation) {
  PoolEnabledGuard guard;
  pool::SetPoolEnabledForTesting(false);
  pool::Buffer b = pool::Buffer::Zeroed(100);
  EXPECT_FALSE(b.pooled());
  EXPECT_EQ(b.size(), 100);
  EXPECT_EQ(b.capacity(), 100) << "unpooled buffers are exact-sized";
  // Tensors allocated while the pool is off behave identically.
  Tensor t = Tensor::Ones({4, 25});
  EXPECT_EQ(t.Sum(), 100.0f);
}

TEST(PoolBufferTest, OversizeRequestsBypassThePool) {
  PoolEnabledGuard guard;
  pool::SetPoolEnabledForTesting(true);
  const int64_t oversize = (int64_t{1} << pool::kMaxBucketLog2) + 1;
  pool::Buffer b = pool::Buffer::Uninitialized(oversize);
  EXPECT_FALSE(b.pooled());
  EXPECT_EQ(b.capacity(), oversize);
}

TEST(PoolBufferTest, BuffersRememberPoolingAcrossKillSwitchFlips) {
  PoolEnabledGuard guard;
  pool::SetPoolEnabledForTesting(true);
  pool::Buffer pooled = pool::Buffer::Zeroed(64);
  ASSERT_TRUE(pooled.pooled());
  pool::SetPoolEnabledForTesting(false);
  pool::Buffer plain = pool::Buffer::Zeroed(64);
  ASSERT_FALSE(plain.pooled());
  pool::SetPoolEnabledForTesting(true);
  // Both destructors run with flags that differ from their acquire-time
  // state; each must release down its own path (checked by ASAN builds).
  pooled.Reset();
  plain.Reset();
}

TEST(PoolStatsTest, HitsAndMissesAccumulate) {
  PoolEnabledGuard guard;
  pool::SetPoolEnabledForTesting(true);
  const pool::PoolStats before = pool::GetStats();
  {
    pool::Buffer warm = pool::Buffer::Zeroed(777);  // 1024-element bucket
  }
  pool::Buffer reused = pool::Buffer::Zeroed(777);
  const pool::PoolStats after = pool::GetStats();
  EXPECT_GT(after.hits + after.misses, before.hits + before.misses);
  EXPECT_GE(after.hits, before.hits + 1) << "second acquire must be a hit";
  EXPECT_GE(after.releases, before.releases + 1);
}

#ifdef VSAN_POOL_TEST_ASAN
TEST(PoolAsanTest, ReleasedPooledMemoryIsPoisoned) {
  PoolEnabledGuard guard;
  pool::SetPoolEnabledForTesting(true);
  pool::Buffer a = pool::Buffer::Zeroed(100);
  ASSERT_TRUE(a.pooled());
  float* ptr = a.data();
  a.Reset();
  // The buffer sits in a free list now; its bytes must be poisoned so a
  // stale read faults like a use-after-free.
  EXPECT_TRUE(__asan_address_is_poisoned(ptr));
  // Re-acquiring the same bucket unpoisons it for legitimate use.
  pool::Buffer b = pool::Buffer::Uninitialized(128);
  ASSERT_EQ(b.data(), ptr);
  EXPECT_FALSE(__asan_address_is_poisoned(ptr));
}
#endif

// --- End-to-end guarantees -------------------------------------------------

data::SequenceDataset SmallCorpus() {
  data::SyntheticConfig cfg;
  cfg.num_users = 32;
  cfg.num_items = 60;
  cfg.num_categories = 5;
  cfg.min_seq_len = 12;
  cfg.max_seq_len = 12;
  cfg.seed = 23;
  return data::GenerateSynthetic(cfg);
}

std::vector<double> TrainThreeEpochLosses(const data::SequenceDataset& ds,
                                          std::vector<double>* hit_rates) {
  core::VsanConfig cfg;
  cfg.max_len = 12;
  cfg.d = 16;
  TrainOptions opts;
  opts.epochs = 3;
  opts.batch_size = 16;
  opts.seed = 99;
  std::vector<double> losses;
  pool::PoolStats prev = pool::GetStats();
  opts.epoch_callback = [&](const EpochStats& stats) {
    losses.push_back(stats.loss);
    if (hit_rates != nullptr) {
      const pool::PoolStats now = pool::GetStats();
      const int64_t hits = now.hits - prev.hits;
      const int64_t misses = now.misses - prev.misses;
      hit_rates->push_back(
          hits + misses > 0
              ? static_cast<double>(hits) / static_cast<double>(hits + misses)
              : 0.0);
      prev = now;
    }
  };
  core::Vsan model(cfg);
  model.Fit(ds, opts);
  return losses;
}

TEST(PoolEquivalenceTest, VsanLossesBitwiseIdenticalPoolOnVsOff) {
  PoolEnabledGuard guard;
  ThreadPool::SetGlobalNumThreads(1);
  const data::SequenceDataset ds = SmallCorpus();

  pool::SetPoolEnabledForTesting(true);
  const std::vector<double> pooled =
      TrainThreeEpochLosses(ds, /*hit_rates=*/nullptr);
  pool::SetPoolEnabledForTesting(false);
  const std::vector<double> plain =
      TrainThreeEpochLosses(ds, /*hit_rates=*/nullptr);

  ASSERT_EQ(pooled.size(), 3u);
  ASSERT_EQ(plain.size(), 3u);
  for (size_t e = 0; e < pooled.size(); ++e) {
    // Bitwise: pooling must be invisible to numerics, not merely close.
    EXPECT_EQ(0, std::memcmp(&pooled[e], &plain[e], sizeof(double)))
        << "epoch " << e << ": pool=" << pooled[e] << " plain=" << plain[e];
  }
}

TEST(PoolEquivalenceTest, HitRateReachesSteadyStateByEpochTwo) {
  PoolEnabledGuard guard;
  ThreadPool::SetGlobalNumThreads(1);
  pool::SetPoolEnabledForTesting(true);
  const data::SequenceDataset ds = SmallCorpus();
  std::vector<double> hit_rates;
  TrainThreeEpochLosses(ds, &hit_rates);
  ASSERT_EQ(hit_rates.size(), 3u);
  // Epoch 1 warms the free lists; from epoch 2 on the tape's allocations
  // should be served almost entirely from the pool.
  EXPECT_GE(hit_rates[1], 0.9) << "epoch 2 hit rate";
  EXPECT_GE(hit_rates[2], 0.9) << "epoch 3 hit rate";
}

}  // namespace
}  // namespace vsan
