// End-to-end integration tests: synthetic corpus -> strong split -> train ->
// full-ranking evaluation, exercising the same pipeline the experiment
// harness uses, at miniature scale.

#include <cmath>

#include <gtest/gtest.h>

#include "core/vsan.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/pop.h"
#include "models/sasrec.h"

namespace vsan {
namespace {

data::StrongSplit MakeTinySplit() {
  data::SyntheticConfig cfg;
  cfg.num_users = 300;
  cfg.num_items = 120;
  cfg.num_categories = 6;
  cfg.min_seq_len = 6;
  cfg.max_seq_len = 12;
  cfg.seed = 5;
  data::SplitOptions split;
  split.num_validation_users = 30;
  split.num_test_users = 30;
  split.seed = 6;
  return data::MakeStrongSplit(data::GenerateSynthetic(cfg), split);
}

TrainOptions Fast() {
  TrainOptions t;
  t.epochs = 12;
  t.batch_size = 32;
  return t;
}

TEST(IntegrationTest, VsanBeatsPopularityOnStructuredData) {
  const data::StrongSplit split = MakeTinySplit();
  models::Pop pop;
  pop.Fit(split.train, Fast());
  core::VsanConfig cfg;
  cfg.max_len = 12;
  cfg.d = 16;
  cfg.dropout = 0.1f;
  cfg.beta_max = 0.002f;
  core::Vsan vsan(cfg);
  vsan.Fit(split.train, Fast());

  eval::EvalOptions opts;
  const auto pop_result = eval::EvaluateRanking(pop, split.test, opts);
  const auto vsan_result = eval::EvaluateRanking(vsan, split.test, opts);
  EXPECT_GT(vsan_result.ndcg.at(10), pop_result.ndcg.at(10));
  EXPECT_GT(vsan_result.recall.at(10), pop_result.recall.at(10));
}

TEST(IntegrationTest, MetricsAreWithinValidRanges) {
  const data::StrongSplit split = MakeTinySplit();
  models::SasRec model({.max_len = 12, .d = 16, .num_blocks = 1});
  model.Fit(split.train, Fast());
  eval::EvalOptions opts;
  opts.cutoffs = {5, 10, 20};
  const auto r = eval::EvaluateRanking(model, split.test, opts);
  for (int32_t n : opts.cutoffs) {
    EXPECT_GE(r.ndcg.at(n), 0.0);
    EXPECT_LE(r.ndcg.at(n), 1.0);
    EXPECT_GE(r.recall.at(n), 0.0);
    EXPECT_LE(r.recall.at(n), 1.0);
    EXPECT_GE(r.precision.at(n), 0.0);
    EXPECT_LE(r.precision.at(n), 1.0);
  }
  // Recall is monotone in the cutoff.
  EXPECT_LE(r.recall.at(5), r.recall.at(10));
  EXPECT_LE(r.recall.at(10), r.recall.at(20));
  // Precision is non-increasing in the cutoff once lists saturate; at the
  // very least it cannot grow faster than recall allows.
  EXPECT_GE(r.precision.at(5) + 1e-9, r.precision.at(20) * 0.99);
}

TEST(IntegrationTest, ValidationAndTestMetricsAreComparable) {
  // Both held-out splits are drawn from the same population, so a trained
  // model should score in the same ballpark on each (sanity against split
  // leakage or protocol asymmetry).
  const data::StrongSplit split = MakeTinySplit();
  core::VsanConfig cfg;
  cfg.max_len = 12;
  cfg.d = 16;
  cfg.dropout = 0.1f;
  core::Vsan model(cfg);
  model.Fit(split.train, Fast());
  const auto val = eval::EvaluateRanking(model, split.validation, {});
  const auto test = eval::EvaluateRanking(model, split.test, {});
  EXPECT_GT(val.recall.at(20), 0.0);
  EXPECT_GT(test.recall.at(20), 0.0);
  EXPECT_LT(std::abs(val.recall.at(20) - test.recall.at(20)), 0.35);
}

TEST(IntegrationTest, TrainingIsDeterministicForFixedSeeds) {
  const data::StrongSplit split = MakeTinySplit();
  auto run = [&] {
    core::VsanConfig cfg;
    cfg.max_len = 12;
    cfg.d = 16;
    core::Vsan model(cfg);
    TrainOptions t = Fast();
    t.epochs = 3;
    t.seed = 99;
    model.Fit(split.train, t);
    return model.Score({5, 9, 2});
  };
  EXPECT_EQ(run(), run());
}

TEST(IntegrationTest, DifferentTrainingSeedsGiveDifferentModels) {
  const data::StrongSplit split = MakeTinySplit();
  auto run = [&](uint64_t seed) {
    core::VsanConfig cfg;
    cfg.max_len = 12;
    cfg.d = 16;
    core::Vsan model(cfg);
    TrainOptions t = Fast();
    t.epochs = 2;
    t.seed = seed;
    model.Fit(split.train, t);
    return model.Score({5, 9, 2});
  };
  EXPECT_NE(run(1), run(2));
}

TEST(IntegrationTest, EvaluatorExcludesFoldInItemsFromRecommendations) {
  // A model that scores every item identically will be ranked purely by the
  // deterministic tie-break; fold-in items must not appear in the top list.
  struct Constant : SequentialRecommender {
    std::string name() const override { return "const"; }
    void Fit(const data::SequenceDataset&, const TrainOptions&) override {}
    std::vector<float> Score(const std::vector<int32_t>&) const override {
      return std::vector<float>(21, 1.0f);
    }
  };
  Constant model;
  std::vector<data::HeldOutUser> users(1);
  users[0].fold_in = {1, 2, 3};
  users[0].holdout = {4};
  eval::EvalOptions opts;
  opts.cutoffs = {3};
  // With items 1..3 excluded, ranks become 4,5,6 -> holdout item 4 is a hit.
  const auto r = eval::EvaluateRanking(model, users, opts);
  EXPECT_DOUBLE_EQ(r.recall.at(3), 1.0);
}

TEST(IntegrationTest, HoldoutItemsRepeatedInFoldInStayScoreable) {
  struct Constant : SequentialRecommender {
    std::string name() const override { return "const"; }
    void Fit(const data::SequenceDataset&, const TrainOptions&) override {}
    std::vector<float> Score(const std::vector<int32_t>&) const override {
      return std::vector<float>(21, 1.0f);
    }
  };
  Constant model;
  std::vector<data::HeldOutUser> users(1);
  users[0].fold_in = {1, 2, 3};
  users[0].holdout = {2};  // re-consumed item
  eval::EvalOptions opts;
  opts.cutoffs = {3};
  // Item 2 must not be excluded (it is in the holdout): ranks are 2,4,5.
  const auto r = eval::EvaluateRanking(model, users, opts);
  EXPECT_DOUBLE_EQ(r.recall.at(3), 1.0);
}

}  // namespace
}  // namespace vsan
