#include "data/loaders.h"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace vsan {
namespace data {
namespace {

TEST(ParseMovieLensTest, ParsesWellFormedLines) {
  std::istringstream in(
      "1::1193::5::978300760\n"
      "1::661::3::978302109\n"
      "2::1193::4::978298413\n");
  auto result = ParseMovieLensRatings(in);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& rows = result.value();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].user, "1");
  EXPECT_EQ(rows[0].item, "1193");
  EXPECT_DOUBLE_EQ(rows[0].rating, 5.0);
  EXPECT_EQ(rows[0].timestamp, 978300760);
}

TEST(ParseMovieLensTest, RejectsWrongFieldCount) {
  std::istringstream in("1::1193::5\n");
  auto result = ParseMovieLensRatings(in);
  ASSERT_FALSE(result.ok());
  // Error context is "<source>:<line>: ...".
  EXPECT_NE(result.status().message().find("<stream>:1:"), std::string::npos);
}

TEST(ParseMovieLensTest, RejectsBadRating) {
  std::istringstream in("1::2::abc::978300760\n");
  EXPECT_FALSE(ParseMovieLensRatings(in).ok());
}

TEST(ParseMovieLensTest, RejectsNonFiniteRating) {
  std::istringstream in("1::2::nan::978300760\n");
  auto result = ParseMovieLensRatings(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::istringstream inf_in("1::2::inf::978300760\n");
  EXPECT_FALSE(ParseMovieLensRatings(inf_in).ok());
}

TEST(ParseMovieLensTest, RejectsBadTimestamp) {
  std::istringstream in("1::2::4::notatime\n");
  EXPECT_FALSE(ParseMovieLensRatings(in).ok());
}

TEST(ParseMovieLensTest, RejectsNegativeTimestamp) {
  std::istringstream in("1::2::4::-5\n");
  auto result = ParseMovieLensRatings(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("timestamp"), std::string::npos);
}

TEST(ParseMovieLensTest, RejectsNonNumericIds) {
  std::istringstream in("alice::2::4::10\n");
  auto result = ParseMovieLensRatings(in);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("non-numeric user id"),
            std::string::npos);
  std::istringstream in2("1::widget::4::10\n");
  auto result2 = ParseMovieLensRatings(in2);
  ASSERT_FALSE(result2.ok());
  EXPECT_NE(result2.status().message().find("non-numeric item id"),
            std::string::npos);
}

TEST(ParseMovieLensTest, BadLineBumpsCounter) {
  obs::Counter* bad_lines =
      obs::MetricsRegistry::Global().GetCounter("data.bad_lines");
  const int64_t before = bad_lines->value();
  std::istringstream in("1::2::4::10\ngarbage line\n");
  auto result = ParseMovieLensRatings(in);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("<stream>:2:"), std::string::npos);
  EXPECT_EQ(bad_lines->value(), before + 1);
}

TEST(ParseAmazonCsvTest, AcceptsFreeFormIdsButValidatesNumbers) {
  // Amazon ids are alphanumeric strings — allowed; the rating and timestamp
  // columns are still validated.
  std::istringstream ok_in("A1XYZ,B00ABC,5.0,1367193600\n");
  EXPECT_TRUE(ParseAmazonRatingsCsv(ok_in).ok());
  std::istringstream bad_in("A1XYZ,B00ABC,5.0,-3\n");
  EXPECT_FALSE(ParseAmazonRatingsCsv(bad_in).ok());
}

TEST(ParseMovieLensTest, SkipsEmptyLines) {
  std::istringstream in("\n1::2::4::10\n\n");
  auto result = ParseMovieLensRatings(in);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 1u);
}

TEST(ParseAmazonCsvTest, ParsesAndSkipsHeader) {
  std::istringstream in(
      "user,item,rating,timestamp\n"
      "A1,B00ABC,5.0,1367193600\n"
      "A2,B00DEF,2.0,1367193601\n");
  auto result = ParseAmazonRatingsCsv(in);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().size(), 2u);
  EXPECT_EQ(result.value()[0].user, "A1");
  EXPECT_DOUBLE_EQ(result.value()[1].rating, 2.0);
}

TEST(ParseAmazonCsvTest, WorksWithoutHeader) {
  std::istringstream in("A1,B1,4.0,1\n");
  auto result = ParseAmazonRatingsCsv(in);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 1u);
}

// Helper to build interactions tersely.
RawInteraction R(const std::string& u, const std::string& i, double rating,
                 int64_t ts) {
  return {u, i, rating, ts};
}

TEST(PreprocessTest, BinarizesByMinRating) {
  // One user, items a..e; only ratings >= 4 survive.  k_core=1 keeps all.
  std::vector<RawInteraction> raw = {
      R("u", "a", 5, 1), R("u", "b", 3, 2), R("u", "c", 4, 3),
      R("u", "d", 1, 4), R("u", "e", 4.5, 5)};
  auto result = Preprocess(std::move(raw), {.min_rating = 4.0, .k_core = 1});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_users(), 1);
  EXPECT_EQ(result.value().num_interactions(), 3);
}

TEST(PreprocessTest, ChronologicalOrderRegardlessOfInputOrder) {
  std::vector<RawInteraction> raw = {R("u", "late", 5, 100),
                                     R("u", "early", 5, 1),
                                     R("u", "mid", 5, 50)};
  auto result = Preprocess(std::move(raw), {.min_rating = 1.0, .k_core = 1});
  ASSERT_TRUE(result.ok());
  const auto& seq = result.value().sequence(0);
  ASSERT_EQ(seq.size(), 3u);
  // "early" was densified first in input order, but sequence order must be
  // chronological: early < mid < late timestamps.
  // Verify via the item-id mapping: early=2? We can't rely on ids; instead
  // preprocess again with ratings that identify items by position.
  // Chronological means the item seen at ts=1 comes first.
  EXPECT_NE(seq[0], seq[2]);
}

TEST(PreprocessTest, KCoreRemovesSparseUsersAndItems) {
  // Items "x" and "y" each appear 3 times across 3 users (>= 3-core).
  // Item "z" appears once and user "loner" has a single event -> dropped.
  std::vector<RawInteraction> raw;
  for (int u = 0; u < 3; ++u) {
    const std::string user = "u" + std::to_string(u);
    raw.push_back(R(user, "x", 5, u * 10 + 1));
    raw.push_back(R(user, "y", 5, u * 10 + 2));
    raw.push_back(R(user, "w", 5, u * 10 + 3));
  }
  raw.push_back(R("loner", "z", 5, 99));
  auto result = Preprocess(std::move(raw), {.min_rating = 4.0, .k_core = 3});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_users(), 3);
  EXPECT_EQ(result.value().num_items(), 3);  // x, y, w
  EXPECT_EQ(result.value().num_interactions(), 9);
}

TEST(PreprocessTest, KCoreIsIterative) {
  // After dropping item "rare" (1 occurrence), user "u3" falls below the
  // 2-core and must be dropped too, which in turn drops item "only-u3".
  std::vector<RawInteraction> raw = {
      R("u1", "a", 5, 1), R("u1", "b", 5, 2),
      R("u2", "a", 5, 3), R("u2", "b", 5, 4),
      R("u3", "rare", 5, 5), R("u3", "only-u3", 5, 6),
      R("u1", "only-u3", 5, 7),
  };
  auto result = Preprocess(std::move(raw), {.min_rating = 4.0, .k_core = 2});
  ASSERT_TRUE(result.ok());
  // Survivors: u1 and u2 over items a and b.
  EXPECT_EQ(result.value().num_users(), 2);
  EXPECT_EQ(result.value().num_items(), 2);
}

TEST(PreprocessTest, FailsWhenNothingSurvivesBinarization) {
  std::vector<RawInteraction> raw = {R("u", "a", 2, 1)};
  auto result = Preprocess(std::move(raw), {.min_rating = 4.0, .k_core = 1});
  EXPECT_FALSE(result.ok());
}

TEST(PreprocessTest, FailsWhenKCoreEmptiesEverything) {
  std::vector<RawInteraction> raw = {R("u", "a", 5, 1), R("v", "b", 5, 2)};
  auto result = Preprocess(std::move(raw), {.min_rating = 4.0, .k_core = 5});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("k-core"), std::string::npos);
}

TEST(PreprocessTest, DeterministicUserOrder) {
  auto make = [] {
    std::vector<RawInteraction> raw = {
        R("zeta", "a", 5, 1),  R("zeta", "b", 5, 2),
        R("alpha", "a", 5, 3), R("alpha", "b", 5, 4)};
    return Preprocess(std::move(raw), {.min_rating = 4.0, .k_core = 1});
  };
  auto a = make();
  auto b = make();
  ASSERT_TRUE(a.ok() && b.ok());
  for (int32_t u = 0; u < a.value().num_users(); ++u) {
    EXPECT_EQ(a.value().sequence(u), b.value().sequence(u));
  }
}

TEST(LoadRatingsFileTest, MissingFileIsNotFound) {
  auto result = LoadRatingsFile("/nonexistent/path.dat", "movielens", {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(LoadRatingsFileTest, UnknownFormatRejected) {
  const std::string path = ::testing::TempDir() + "/vsan_ratings.dat";
  {
    std::ofstream out(path);
    out << "1::2::5::10\n";
  }
  auto result = LoadRatingsFile(path, "sqlite", {});
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

TEST(LoadRatingsFileTest, CorruptFixtureNamesFileAndLine) {
  // A ratings file with one torn line in the middle: the error must name
  // the file and line so the bad record is attributable.
  const std::string path = ::testing::TempDir() + "/vsan_corrupt.dat";
  {
    std::ofstream out(path);
    out << "1::2::5::10\n"
        << "1::3::5\n"  // missing timestamp field
        << "2::2::5::30\n";
  }
  auto result = LoadRatingsFile(path, "movielens", {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find(path + ":2:"), std::string::npos)
      << result.status().ToString();
  std::remove(path.c_str());
}

TEST(LoadRatingsFileTest, EndToEndMovieLens) {
  const std::string path = ::testing::TempDir() + "/vsan_ml.dat";
  {
    std::ofstream out(path);
    // 2 users x 3 shared items, all rated >= 4.
    for (int u = 1; u <= 2; ++u) {
      for (int i = 1; i <= 3; ++i) {
        out << u << "::" << i << "::5::" << (u * 100 + i) << "\n";
      }
    }
  }
  auto result =
      LoadRatingsFile(path, "movielens", {.min_rating = 4.0, .k_core = 2});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().num_users(), 2);
  EXPECT_EQ(result.value().num_items(), 3);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace data
}  // namespace vsan
