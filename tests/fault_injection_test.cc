// Crash-safety integration tests: kill-and-resume determinism, divergence
// guard policies, and the fault-injection harness (util/fault.h), driven
// through the public Fit() API of the two attention models.
#include <sys/wait.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/vsan.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "models/recommender.h"
#include "models/sasrec.h"
#include "nn/module.h"
#include "obs/metrics.h"
#include "tensor/pool.h"
#include "util/fault.h"
#include "util/fileio.h"

namespace vsan {
namespace {

// 60 users / batch 16 -> 4 optimizer steps per epoch, so with
// checkpoint_every_n_epochs=1 the end-of-epoch checkpoints land at steps
// 4, 8, 12; a fault at step 5..8 strikes mid-epoch 2 with a checkpoint
// available.
data::SequenceDataset MakeDataset() {
  data::SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 40;
  config.seed = 13;
  return data::GenerateSynthetic(config);
}

struct Trainee {
  std::unique_ptr<SequentialRecommender> rec;
  std::function<const nn::Module*()> module;
};

Trainee MakeTrainee(const std::string& which) {
  Trainee out;
  if (which == "vsan") {
    core::VsanConfig config;
    config.max_len = 8;
    config.d = 8;
    config.anneal_steps = 8;  // beta still ramping when the fault strikes
    auto model = std::make_unique<core::Vsan>(config);
    auto* raw = model.get();
    out.rec = std::move(model);
    out.module = [raw] { return raw->module(); };
  } else {
    models::SasRec::Config config;
    config.max_len = 8;
    config.d = 8;
    config.num_blocks = 1;
    auto model = std::make_unique<models::SasRec>(config);
    auto* raw = model.get();
    out.rec = std::move(model);
    out.module = [raw] { return raw->module(); };
  }
  return out;
}

TrainOptions BaseOptions(const std::string& checkpoint_dir) {
  TrainOptions options;
  options.epochs = 3;
  options.batch_size = 16;
  options.checkpoint_dir = checkpoint_dir;
  options.checkpoint_every_n_epochs = 1;
  return options;
}

std::vector<std::string> ParamBytes(const nn::Module* module) {
  std::vector<std::string> out;
  for (const Variable& p : module->Parameters()) {
    const Tensor& t = p.value();
    out.emplace_back(reinterpret_cast<const char*>(t.data()),
                     sizeof(float) * t.numel());
  }
  return out;
}

void ExpectAllFinite(const nn::Module* module) {
  for (const Variable& p : module->Parameters()) {
    for (int64_t i = 0; i < p.value().numel(); ++i) {
      ASSERT_TRUE(std::isfinite(p.value()[i]));
    }
  }
}

int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

// Keeps the process-global fault spec and pool override from leaking
// between tests.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::SetSpecForTest(nullptr); }
  void TearDown() override { fault::SetSpecForTest(nullptr); }
};

// --- Kill-and-resume determinism --------------------------------------

class KillResumeTest
    : public ::testing::TestWithParam<std::tuple<const char*, bool>> {
 protected:
  void SetUp() override {
    pool_was_ = pool::PoolEnabled();
    fault::SetSpecForTest(nullptr);
  }
  void TearDown() override {
    fault::SetSpecForTest(nullptr);
    pool::SetPoolEnabledForTesting(pool_was_);
  }
  bool pool_was_ = true;
};

TEST_P(KillResumeTest, ResumedRunMatchesUninterruptedBitwise) {
  const std::string which = std::get<0>(GetParam());
  const bool pool_on = std::get<1>(GetParam());
  pool::SetPoolEnabledForTesting(pool_on);
  const std::string tag = which + std::string(pool_on ? "_p1" : "_p0");
  const data::SequenceDataset dataset = MakeDataset();

  // Reference: one uninterrupted run.
  Trainee clean = MakeTrainee(which);
  clean.rec->Fit(dataset, BaseOptions(::testing::TempDir() + "/krc_" + tag));
  const std::vector<std::string> want = ParamBytes(clean.module());

  // Interrupted run: simulated kill at step 6, mid-epoch 2 (the epoch-1
  // checkpoint at step 4 is on disk).
  const std::string dir = ::testing::TempDir() + "/kri_" + tag;
  fault::SetSpecForTest("stop_at_step=6");
  {
    Trainee interrupted = MakeTrainee(which);
    interrupted.rec->Fit(dataset, BaseOptions(dir));
  }
  fault::SetSpecForTest(nullptr);

  // Resume in a fresh process-equivalent: a brand-new model instance.
  Trainee resumed = MakeTrainee(which);
  TrainOptions options = BaseOptions(dir);
  options.resume = true;
  resumed.rec->Fit(dataset, options);

  EXPECT_EQ(ParamBytes(resumed.module()), want);
  // Identical parameters must score identically too.
  EXPECT_EQ(resumed.rec->Score({1, 2, 3}), clean.rec->Score({1, 2, 3}));
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndPool, KillResumeTest,
    ::testing::Combine(::testing::Values("vsan", "sasrec"),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<KillResumeTest::ParamType>& info) {
      return std::string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_PoolOn" : "_PoolOff");
    });

// --- Divergence guard policies ----------------------------------------

TEST_F(FaultTest, SkipBatchSurvivesInjectedNanLoss) {
  const data::SequenceDataset dataset = MakeDataset();
  const int64_t before = CounterValue("fault.nonfinite_loss");
  fault::SetSpecForTest("nan_loss_at_step=5");

  Trainee t = MakeTrainee("vsan");
  TrainOptions options = BaseOptions(::testing::TempDir() + "/nan_skip");
  options.divergence_policy = DivergencePolicy::kSkipBatch;
  int epochs_reported = 0;
  options.epoch_callback = [&](const EpochStats&) { ++epochs_reported; };
  t.rec->Fit(dataset, options);

  EXPECT_EQ(epochs_reported, 3);  // training ran to completion
  EXPECT_EQ(CounterValue("fault.nonfinite_loss"), before + 1);
  ExpectAllFinite(t.module());
}

TEST_F(FaultTest, RollbackRestoresTheCleanTrajectory) {
  const data::SequenceDataset dataset = MakeDataset();

  Trainee clean = MakeTrainee("vsan");
  clean.rec->Fit(dataset, BaseOptions(::testing::TempDir() + "/rb_clean"));
  const std::vector<std::string> want = ParamBytes(clean.module());

  const int64_t before = CounterValue("fault.rollbacks");
  // NaN at step 6: steps 5-6 of epoch 2 have already moved the parameters,
  // so only a rollback to the epoch-1 checkpoint (params, Adam moments,
  // RNG streams, batch order) can reproduce the clean run.  The injected
  // fault is one-shot, so the replay goes through clean.
  fault::SetSpecForTest("nan_loss_at_step=6");
  Trainee t = MakeTrainee("vsan");
  TrainOptions options = BaseOptions(::testing::TempDir() + "/rb_fault");
  options.divergence_policy = DivergencePolicy::kRollbackToLastCheckpoint;
  t.rec->Fit(dataset, options);

  EXPECT_EQ(CounterValue("fault.rollbacks"), before + 1);
  EXPECT_EQ(ParamBytes(t.module()), want);
}

TEST_F(FaultTest, AbortStopsTrainingImmediately) {
  const data::SequenceDataset dataset = MakeDataset();
  const int64_t before = CounterValue("fault.nonfinite_loss");
  fault::SetSpecForTest("nan_loss_at_step=1");

  Trainee t = MakeTrainee("sasrec");
  TrainOptions options = BaseOptions(::testing::TempDir() + "/abort");
  options.divergence_policy = DivergencePolicy::kAbort;
  int epochs_reported = 0;
  options.epoch_callback = [&](const EpochStats&) { ++epochs_reported; };
  t.rec->Fit(dataset, options);

  EXPECT_EQ(epochs_reported, 0);  // aborted before any epoch completed
  EXPECT_EQ(CounterValue("fault.nonfinite_loss"), before + 1);
}

TEST_F(FaultTest, RollbackWithoutCheckpointDegradesToSkip) {
  const data::SequenceDataset dataset = MakeDataset();
  fault::SetSpecForTest("nan_loss_at_step=2");

  Trainee t = MakeTrainee("sasrec");
  TrainOptions options;  // no checkpoint_dir: nothing to roll back to
  options.epochs = 2;
  options.batch_size = 16;
  options.divergence_policy = DivergencePolicy::kRollbackToLastCheckpoint;
  int epochs_reported = 0;
  options.epoch_callback = [&](const EpochStats&) { ++epochs_reported; };
  t.rec->Fit(dataset, options);

  EXPECT_EQ(epochs_reported, 2);  // degraded to skip, completed anyway
  ExpectAllFinite(t.module());
}

// --- Corrupt checkpoints at resume time --------------------------------

TEST_F(FaultTest, CorruptCheckpointRefusesToResume) {
  const data::SequenceDataset dataset = MakeDataset();
  const std::string dir = ::testing::TempDir() + "/corrupt_resume";

  // Arm the corruption tap: the checkpoint is flipped right after the
  // atomic write, as bit rot or a torn disk would.
  fault::SetSpecForTest("corrupt_checkpoint_bytes=3");
  {
    Trainee t = MakeTrainee("sasrec");
    TrainOptions options = BaseOptions(dir);
    options.epochs = 1;
    t.rec->Fit(dataset, options);
  }
  fault::SetSpecForTest(nullptr);
  ASSERT_TRUE(FileExists(dir + "/sasrec.ckpt"));

  // Resume must refuse to train rather than overwrite the evidence.
  Trainee resumed = MakeTrainee("sasrec");
  TrainOptions options = BaseOptions(dir);
  options.resume = true;
  int epochs_reported = 0;
  options.epoch_callback = [&](const EpochStats&) { ++epochs_reported; };
  resumed.rec->Fit(dataset, options);
  EXPECT_EQ(epochs_reported, 0);
  // The corrupt file is still there for post-mortem.
  EXPECT_TRUE(FileExists(dir + "/sasrec.ckpt"));
}

TEST_F(FaultTest, ResumeWithoutCheckpointStartsFresh) {
  const data::SequenceDataset dataset = MakeDataset();
  Trainee t = MakeTrainee("sasrec");
  const std::string dir = ::testing::TempDir() + "/fresh_resume";
  std::remove((dir + "/sasrec.ckpt").c_str());  // drop prior runs' leftovers
  TrainOptions options = BaseOptions(dir);
  options.epochs = 1;
  options.resume = true;  // nothing on disk yet: trains from scratch
  int epochs_reported = 0;
  options.epoch_callback = [&](const EpochStats&) { ++epochs_reported; };
  t.rec->Fit(dataset, options);
  EXPECT_EQ(epochs_reported, 1);
}

// --- Subprocess hard-kill (_Exit: no destructors, no flushes) -----------

TEST(SubprocessCrashTest, HardKillThenResumeMatchesCleanRun) {
  const std::string helper = FAULT_HELPER_PATH;
  for (const std::string which : {"vsan", "sasrec"}) {
    SCOPED_TRACE(which);
    const std::string base = ::testing::TempDir() + "/sub_" + which;
    const std::string clean_dir = base + "_clean";
    const std::string crash_dir = base + "_crash";
    const std::string clean_params = base + "_clean.params";
    const std::string crash_params = base + "_crash.params";
    std::remove(clean_params.c_str());
    std::remove(crash_params.c_str());

    // Uninterrupted reference run.
    std::string cmd =
        helper + " " + which + " " + clean_dir + " " + clean_params;
    int rc = std::system(cmd.c_str());
    ASSERT_TRUE(WIFEXITED(rc));
    ASSERT_EQ(WEXITSTATUS(rc), 0) << cmd;

    // Hard kill at step 6: _Exit(134), no destructors, no flushes — the
    // epoch-1 checkpoint on disk is all that survives.
    cmd = "VSAN_FAULT=abort_at_step=6 " + helper + " " + which + " " +
          crash_dir + " " + crash_params;
    rc = std::system(cmd.c_str());
    ASSERT_TRUE(WIFEXITED(rc));
    ASSERT_EQ(WEXITSTATUS(rc), 134) << cmd;
    EXPECT_FALSE(FileExists(crash_params));  // died before writing output

    // Resume in a fresh process and finish.
    cmd = helper + " " + which + " " + crash_dir + " " + crash_params +
          " --resume";
    rc = std::system(cmd.c_str());
    ASSERT_TRUE(WIFEXITED(rc));
    ASSERT_EQ(WEXITSTATUS(rc), 0) << cmd;

    std::string clean_bytes, crash_bytes;
    ASSERT_TRUE(ReadFileToString(clean_params, &clean_bytes).ok());
    ASSERT_TRUE(ReadFileToString(crash_params, &crash_bytes).ok());
    EXPECT_EQ(clean_bytes, crash_bytes);
  }
}

}  // namespace
}  // namespace vsan
