// Behaviour tests for the eight baseline models: every model must train
// without numerical failures, produce well-formed scores for unseen users,
// decrease its training loss, and (for the sequential ones) learn a
// deterministic successor structure.

#include <cmath>

#include <gtest/gtest.h>

#include <memory>

#include "data/dataset.h"
#include "models/bpr.h"
#include "models/caser.h"
#include "models/fpmc.h"
#include "models/gru4rec.h"
#include "models/pop.h"
#include "models/sasrec.h"
#include "models/svae.h"
#include "models/transrec.h"
#include "util/rng.h"

namespace vsan {
namespace {

// Ring dataset: every sequence walks the cycle 1 -> 2 -> ... -> M -> 1.
// The optimal next-item predictor is the successor function.
data::SequenceDataset CycleDataset(int32_t num_items, int32_t num_users,
                                   int32_t seq_len, uint64_t seed = 3) {
  Rng rng(seed);
  data::SequenceDataset ds(num_items);
  for (int32_t u = 0; u < num_users; ++u) {
    int32_t cur = static_cast<int32_t>(rng.UniformInt(1, num_items));
    std::vector<int32_t> seq;
    for (int32_t t = 0; t < seq_len; ++t) {
      seq.push_back(cur);
      cur = cur % num_items + 1;
    }
    ds.AddUser(std::move(seq));
  }
  return ds;
}

TrainOptions FastOptions(int32_t epochs) {
  TrainOptions opts;
  opts.epochs = epochs;
  opts.batch_size = 16;
  opts.learning_rate = 5e-3f;
  opts.seed = 11;
  return opts;
}

// Rank of `target` within `scores` (1 = best), ignoring index 0.
int32_t RankOf(const std::vector<float>& scores, int32_t target) {
  int32_t rank = 1;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (static_cast<int32_t>(i) != target && scores[i] > scores[target]) {
      ++rank;
    }
  }
  return rank;
}

void ExpectWellFormedScores(const SequentialRecommender& model,
                            int32_t num_items) {
  const std::vector<float> scores = model.Score({1, 2, 3});
  ASSERT_EQ(scores.size(), static_cast<size_t>(num_items + 1));
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(PopTest, RanksByFrequency) {
  data::SequenceDataset ds(4);
  ds.AddUser({1, 2, 2, 3});
  ds.AddUser({2, 3});
  models::Pop pop;
  pop.Fit(ds, {});
  const auto scores = pop.Score({1});
  EXPECT_GT(scores[2], scores[3]);
  EXPECT_GT(scores[3], scores[1]);
  EXPECT_FLOAT_EQ(scores[4], 0.0f);
  EXPECT_EQ(RankOf(scores, 2), 1);
}

TEST(PopTest, ScoresIndependentOfHistory) {
  data::SequenceDataset ds(4);
  ds.AddUser({1, 2, 3});
  models::Pop pop;
  pop.Fit(ds, {});
  EXPECT_EQ(pop.Score({1}), pop.Score({3, 2}));
}

TEST(BprTest, TrainsAndScoresUnseenUsers) {
  data::SequenceDataset ds = CycleDataset(20, 60, 8);
  models::Bpr model({.d = 16});
  double first_loss = 0, last_loss = 0;
  TrainOptions opts = FastOptions(5);
  opts.learning_rate = 0.05f;
  opts.epoch_callback = [&](const EpochStats& stats) {
    if (stats.epoch == 0) first_loss = stats.loss;
    last_loss = stats.loss;
  };
  model.Fit(ds, opts);
  EXPECT_LT(last_loss, first_loss);
  ExpectWellFormedScores(model, 20);
}

TEST(BprTest, PositiveItemsOutscoreRandomNegatives) {
  // Users interact only with items 1..5; after training those must outrank
  // the never-seen items 6..20 for a user composed of items 1..5.
  data::SequenceDataset ds(20);
  Rng rng(5);
  for (int u = 0; u < 50; ++u) {
    std::vector<int32_t> seq;
    for (int t = 0; t < 6; ++t) {
      seq.push_back(static_cast<int32_t>(rng.UniformInt(1, 5)));
    }
    ds.AddUser(seq);
  }
  models::Bpr model({.d = 8});
  TrainOptions opts = FastOptions(8);
  opts.learning_rate = 0.05f;
  model.Fit(ds, opts);
  const auto scores = model.Score({1, 2, 3});
  float min_pos = 1e30f, max_neg = -1e30f;
  for (int32_t i = 1; i <= 5; ++i) min_pos = std::min(min_pos, scores[i]);
  for (int32_t i = 6; i <= 20; ++i) max_neg = std::max(max_neg, scores[i]);
  EXPECT_GT(min_pos, max_neg);
}

TEST(FpmcTest, LearnsFirstOrderTransitions) {
  data::SequenceDataset ds = CycleDataset(15, 80, 10);
  models::Fpmc model({.d = 16});
  TrainOptions opts = FastOptions(10);
  opts.learning_rate = 0.05f;
  model.Fit(ds, opts);
  // After item 7 the successor 8 should rank near the top.
  const auto scores = model.Score({5, 6, 7});
  EXPECT_LE(RankOf(scores, 8), 3);
  ExpectWellFormedScores(model, 15);
}

TEST(TransRecTest, LearnsTranslationStructure) {
  data::SequenceDataset ds = CycleDataset(15, 80, 10);
  models::TransRec model({.d = 16});
  TrainOptions opts = FastOptions(10);
  opts.learning_rate = 0.05f;
  model.Fit(ds, opts);
  const auto scores = model.Score({3, 4, 5});
  EXPECT_LE(RankOf(scores, 6), 3);
  ExpectWellFormedScores(model, 15);
}

TEST(Gru4RecTest, LearnsCycleSuccessor) {
  data::SequenceDataset ds = CycleDataset(12, 60, 8);
  models::Gru4Rec model({.max_len = 8, .d = 16, .hidden = 16, .dropout = 0.0f});
  double first_loss = 0, last_loss = 0;
  TrainOptions opts = FastOptions(15);
  opts.epoch_callback = [&](const EpochStats& stats) {
    if (stats.epoch == 0) first_loss = stats.loss;
    last_loss = stats.loss;
  };
  model.Fit(ds, opts);
  EXPECT_LT(last_loss, first_loss);
  const auto scores = model.Score({9, 10, 11});
  EXPECT_LE(RankOf(scores, 12), 2);
}

TEST(CaserTest, LearnsCycleSuccessor) {
  data::SequenceDataset ds = CycleDataset(12, 60, 8);
  models::Caser::Config cfg;
  cfg.window = 4;
  cfg.d = 16;
  cfg.heights = {2, 3};
  cfg.h_filters = 8;
  cfg.v_filters = 2;
  cfg.dropout = 0.0f;
  models::Caser model(cfg);
  TrainOptions opts = FastOptions(10);
  model.Fit(ds, opts);
  const auto scores = model.Score({5, 6, 7});
  EXPECT_LE(RankOf(scores, 8), 3);
  ExpectWellFormedScores(model, 12);
}

TEST(SvaeTest, TrainsWithElboAndScores) {
  data::SequenceDataset ds = CycleDataset(12, 60, 8);
  models::Svae::Config cfg;
  cfg.max_len = 8;
  cfg.d = 16;
  cfg.hidden = 16;
  cfg.latent = 8;
  cfg.dropout = 0.0f;
  models::Svae model(cfg);
  double first_loss = 0, last_loss = 0;
  TrainOptions opts = FastOptions(15);
  opts.epoch_callback = [&](const EpochStats& stats) {
    if (stats.epoch == 0) first_loss = stats.loss;
    last_loss = stats.loss;
  };
  model.Fit(ds, opts);
  EXPECT_LT(last_loss, first_loss);
  const auto scores = model.Score({9, 10, 11});
  EXPECT_LE(RankOf(scores, 12), 3);
}

TEST(SasRecTest, LearnsCycleSuccessor) {
  data::SequenceDataset ds = CycleDataset(12, 60, 8);
  models::SasRec::Config cfg;
  cfg.max_len = 8;
  cfg.d = 16;
  cfg.num_blocks = 1;
  cfg.dropout = 0.0f;
  models::SasRec model(cfg);
  double first_loss = 0, last_loss = 0;
  TrainOptions opts = FastOptions(15);
  opts.epoch_callback = [&](const EpochStats& stats) {
    if (stats.epoch == 0) first_loss = stats.loss;
    last_loss = stats.loss;
  };
  model.Fit(ds, opts);
  EXPECT_LT(last_loss, first_loss);
  const auto scores = model.Score({9, 10, 11});
  EXPECT_LE(RankOf(scores, 12), 2);
  EXPECT_GT(model.NumParameters(), 0);
}

TEST(SasRecTest, EvalScoresAreDeterministic) {
  data::SequenceDataset ds = CycleDataset(10, 30, 6);
  models::SasRec model({.max_len = 6, .d = 8, .num_blocks = 1});
  model.Fit(ds, FastOptions(2));
  EXPECT_EQ(model.Score({1, 2, 3}), model.Score({1, 2, 3}));
}

TEST(SasRecTest, ScoreBeforeFitDies) {
  models::SasRec model({});
  EXPECT_DEATH(model.Score({1}), "Fit");
}

TEST(ModelNamesMatchPaper, AllEight) {
  EXPECT_EQ(models::Pop().name(), "POP");
  EXPECT_EQ(models::Bpr({}).name(), "BPR");
  EXPECT_EQ(models::Fpmc({}).name(), "FPMC");
  EXPECT_EQ(models::TransRec({}).name(), "TransRec");
  EXPECT_EQ(models::Gru4Rec({}).name(), "GRU4Rec");
  EXPECT_EQ(models::Caser({}).name(), "Caser");
  EXPECT_EQ(models::Svae({}).name(), "SVAE");
  EXPECT_EQ(models::SasRec({}).name(), "SASRec");
}

}  // namespace
}  // namespace vsan
