// Exact-oracle lockdown of the fast-retrieval layer (eval/retrieval.h).
//
// The exact backend (the evaluator's original full-scoring path) is the
// oracle for everything here:
//   - streaming bounded-heap top-k must equal std::partial_sort over the
//     backend's own full score vector, for every k and thread count;
//   - int8 quantization must respect its documented error bounds;
//   - IVF with nprobe == clusters must reproduce the exact backend's
//     ranking (and EvaluateRanking's result maps) bit for bit;
//   - a million-item quantized evaluation must not retain the memory a
//     full-score-vector evaluation would.

#include "eval/retrieval.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/vsan.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "eval/topk.h"
#include "models/embedding_mips.h"
#include "models/gru4rec.h"
#include "models/pop.h"
#include "tensor/int8_dot.h"
#include "obs/metrics.h"
#include "tensor/pool.h"
#include "util/rng.h"
#include "util/thread_pool.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define VSAN_RETRIEVAL_TEST_SANITIZED 1
#endif
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define VSAN_RETRIEVAL_TEST_SANITIZED 1
#endif

namespace vsan {
namespace eval {
namespace {

const int kThreadCounts[] = {1, 2, 4};

// Restores the default global pool after each test (some tests sweep
// thread counts).
class RetrievalTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ThreadPool::SetGlobalNumThreads(ThreadPool::DefaultNumThreads());
  }
};

// Reference top-k: std::partial_sort over the full (index, score) set under
// the same total order the collector uses.
std::vector<ScoredItem> PartialSortTopK(const std::vector<float>& scores,
                                        int32_t k) {
  std::vector<ScoredItem> items;
  for (int32_t i = 1; i < static_cast<int32_t>(scores.size()); ++i) {
    items.push_back({scores[i], i});
  }
  const size_t take = std::min<size_t>(items.size(), static_cast<size_t>(k));
  std::partial_sort(items.begin(), items.begin() + take, items.end(),
                    RanksHigher);
  items.resize(take);
  return items;
}

void ExpectSameItems(const std::vector<ScoredItem>& got,
                     const std::vector<ScoredItem>& want,
                     const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index) << what << " rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << what << " rank " << i;
  }
}

// A FactorizedHead over a test-owned weight buffer (row layout).
FactorizedHead MakeHead(const std::vector<float>& weights,
                        const std::vector<float>& bias, int64_t dim) {
  FactorizedHead head;
  head.dim = dim;
  head.num_rows = static_cast<int64_t>(weights.size()) / dim;
  head.weights = weights.data();
  head.items_are_rows = true;
  head.bias = bias.empty() ? nullptr : bias.data();
  return head;
}

int64_t ReadCurrentRssKb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) != 0) continue;
    long long kb = -1;
    if (std::sscanf(line.c_str(), "VmRSS: %lld", &kb) == 1) return kb;
    return -1;
  }
  return -1;
}

TEST(RetrievalBackendNames, RoundTrip) {
  RetrievalBackend backend = RetrievalBackend::kExact;
  for (const char* name : {"exact", "quantized", "ivf"}) {
    ASSERT_TRUE(ParseRetrievalBackend(name, &backend)) << name;
    EXPECT_STREQ(RetrievalBackendName(backend), name);
  }
  EXPECT_FALSE(ParseRetrievalBackend("bogus", &backend));
}

// --- Satellite 1: streaming top-k == std::partial_sort ------------------

TEST_F(RetrievalTest, CollectorMatchesPartialSortWithTies) {
  Rng rng(7);
  const int32_t catalog = 997;  // odd, not a block multiple
  std::vector<float> scores(catalog + 1, 0.0f);
  for (int32_t i = 1; i <= catalog; ++i) {
    // Quantized to few distinct values: dense exact-score ties, so the
    // index tiebreak is load-bearing.
    scores[i] = static_cast<float>(rng.UniformInt(0, 30)) * 0.125f;
  }
  for (int32_t k : {1, 5, 10, 50, catalog, catalog + 13}) {
    TopKCollector collector(k);
    for (int32_t i = 1; i <= catalog; ++i) collector.Offer(i, scores[i]);
    std::vector<ScoredItem> got;
    collector.DrainSortedTo(&got);
    ExpectSameItems(got, PartialSortTopK(scores, k), "k=" + std::to_string(k));
  }
  // k = 0 accepts nothing.
  TopKCollector empty(0);
  empty.Offer(1, 1.0f);
  EXPECT_EQ(empty.size(), 0);
}

TEST_F(RetrievalTest, CollectorOfferOrderIrrelevant) {
  Rng rng(11);
  std::vector<ScoredItem> items;
  for (int32_t i = 1; i <= 300; ++i) {
    items.push_back({static_cast<float>(rng.UniformInt(0, 10)), i});
  }
  TopKCollector forward(17);
  for (const auto& it : items) forward.Offer(it.index, it.score);
  std::vector<ScoredItem> a;
  forward.DrainSortedTo(&a);

  rng.Shuffle(&items);
  TopKCollector shuffled(17);
  for (const auto& it : items) shuffled.Offer(it.index, it.score);
  std::vector<ScoredItem> b;
  shuffled.DrainSortedTo(&b);
  ExpectSameItems(a, b, "shuffled offer order");
}

// Search over a multi-block catalog (> one 65536-row scan block) must equal
// partial_sort over the backend's own full score vector, for both backends,
// every k, and every thread count — bitwise.
TEST_F(RetrievalTest, SearchMatchesPartialSortAcrossThreadCounts) {
  models::EmbeddingMips::Config config;
  config.d = 16;
  models::EmbeddingMips model(config);
  model.FitCatalog(70'000);  // two scan blocks
  FactorizedHead head;
  ASSERT_TRUE(model.GetFactorizedHead(&head));

  std::vector<float> query;
  model.EncodeQueryInto({3, 999, 41'234, 69'999}, &query);

  for (RetrievalBackend backend :
       {RetrievalBackend::kQuantized, RetrievalBackend::kIvf}) {
    RetrievalOptions opts;
    opts.backend = backend;
    opts.clusters = 32;
    opts.nprobe = 32;  // full probe: the scan covers every item
    opts.kmeans_iters = 2;
    const RetrievalIndex index = RetrievalIndex::Build(head, opts);
    std::vector<float> all;
    index.ScoreAllForTesting(query.data(), &all);
    for (int32_t k : {1, 5, 10, 50, 70'000}) {
      const std::vector<ScoredItem> want = PartialSortTopK(all, k);
      for (int threads : kThreadCounts) {
        ThreadPool::SetGlobalNumThreads(threads);
        RetrievalIndex::Scratch scratch;
        std::vector<ScoredItem> got;
        index.Search(query.data(), k, &scratch, &got);
        ExpectSameItems(got, want,
                        std::string(RetrievalBackendName(backend)) + " k=" +
                            std::to_string(k) + " threads=" +
                            std::to_string(threads));
      }
    }
  }
}

// --- Satellite 2: quantization error bounds ----------------------------

TEST_F(RetrievalTest, QuantizationRoundTripWithinHalfScale) {
  Rng rng(23);
  const int64_t dim = 48;
  std::vector<float> weights((1 + 64) * dim);
  for (float& w : weights) {
    w = static_cast<float>(rng.Normal(0.0, 2.0));
  }
  std::fill(weights.begin(), weights.begin() + dim, 0.0f);  // padding row
  const FactorizedHead head = MakeHead(weights, {}, dim);

  RetrievalOptions opts;
  opts.backend = RetrievalBackend::kQuantized;
  const RetrievalIndex index = RetrievalIndex::Build(head, opts);

  // Reconstruct each row through the backend: score a one-hot query picking
  // out coordinate j is awkward, so instead verify via the documented dot
  // bound specialized to unit queries below; here check the per-element
  // claim directly by re-deriving scale from the row max.
  std::vector<float> row(dim);
  for (int64_t r = 1; r < head.num_rows; ++r) {
    head.CopyItem(r, row.data());
    float max_abs = 0.0f;
    for (float v : row) max_abs = std::max(max_abs, std::fabs(v));
    const float scale = max_abs / 127.0f;
    // One-hot query: the quantized score of row r under e_j reduces to
    // s_r * s_q * q_r[j] * 127 with s_q = 1/127, i.e. s_r * q_r[j].
    std::vector<float> one_hot(dim, 0.0f);
    std::vector<float> scores;
    for (int64_t j = 0; j < dim; ++j) {
      one_hot[j] = 1.0f;
      index.ScoreAllForTesting(one_hot.data(), &scores);
      EXPECT_LE(std::fabs(scores[r] - row[j]), 0.5f * scale * 1.0001f)
          << "row " << r << " coord " << j;
      one_hot[j] = 0.0f;
    }
  }
}

TEST_F(RetrievalTest, QuantizedDotWithinDocumentedBound) {
  Rng rng(29);
  const int64_t dim = 64;
  const int64_t rows = 512 + 1;
  std::vector<float> weights(rows * dim, 0.0f);
  for (int64_t i = dim; i < rows * dim; ++i) {
    weights[i] = static_cast<float>(rng.Uniform(-3.0, 3.0));
  }
  const FactorizedHead head = MakeHead(weights, {}, dim);

  RetrievalOptions opts;
  opts.backend = RetrievalBackend::kQuantized;
  const RetrievalIndex index = RetrievalIndex::Build(head, opts);

  std::vector<float> query(dim);
  for (float& q : query) q = static_cast<float>(rng.Uniform(-1.5, 1.5));
  float max_q = 0.0f;
  for (float q : query) max_q = std::max(max_q, std::fabs(q));
  const float s_q = max_q / 127.0f;

  std::vector<float> approx;
  index.ScoreAllForTesting(query.data(), &approx);
  std::vector<float> row(dim);
  for (int64_t r = 1; r < rows; ++r) {
    head.CopyItem(r, row.data());
    float max_w = 0.0f;
    double exact = 0.0;
    for (int64_t j = 0; j < dim; ++j) {
      max_w = std::max(max_w, std::fabs(row[j]));
      exact += static_cast<double>(row[j]) * query[j];
    }
    const float s_r = max_w / 127.0f;
    // |dot - s_r s_q dot_int8| <= dim (max|w| s_q/2 + (max|q| + s_q/2) s_r/2)
    const double bound =
        dim * (max_w * s_q / 2.0 + (max_q + s_q / 2.0) * s_r / 2.0);
    EXPECT_LE(std::fabs(approx[r] - exact), bound * 1.0001 + 1e-6)
        << "row " << r;
  }
}

TEST_F(RetrievalTest, DegenerateCases) {
  const int64_t dim = 8;
  // Catalog of 3: an all-zero row, a normal row, a duplicate of it.
  std::vector<float> weights(4 * dim, 0.0f);
  for (int64_t j = 0; j < dim; ++j) {
    weights[2 * dim + j] = 0.25f * static_cast<float>(j + 1);
    weights[3 * dim + j] = 0.25f * static_cast<float>(j + 1);
  }
  std::vector<float> bias = {0.0f, -0.5f, 0.125f, 0.125f};
  const FactorizedHead head = MakeHead(weights, bias, dim);

  for (RetrievalBackend backend :
       {RetrievalBackend::kQuantized, RetrievalBackend::kIvf}) {
    RetrievalOptions opts;
    opts.backend = backend;
    opts.clusters = 2;
    opts.nprobe = 2;
    const RetrievalIndex index = RetrievalIndex::Build(head, opts);

    std::vector<float> query(dim, 1.0f);
    RetrievalIndex::Scratch scratch;
    std::vector<ScoredItem> got;
    // k far beyond the catalog: returns everything, still sorted.
    index.Search(query.data(), 100, &scratch, &got);
    ASSERT_EQ(got.size(), 3u);
    // Rows 2 and 3 are identical incl. bias: the tie breaks to index 2.
    EXPECT_EQ(got[0].index, 2);
    EXPECT_EQ(got[1].index, 3);
    EXPECT_EQ(got[0].score, got[1].score);
    // The all-zero row scores exactly its bias (scale 0 kills the dot).
    EXPECT_EQ(got[2].index, 1);
    EXPECT_EQ(got[2].score, -0.5f);
  }

  // Single-item catalog.
  std::vector<float> one_item(2 * dim, 1.0f);
  std::fill(one_item.begin(), one_item.begin() + dim, 0.0f);
  const FactorizedHead single = MakeHead(one_item, {}, dim);
  RetrievalOptions opts;
  opts.backend = RetrievalBackend::kQuantized;
  const RetrievalIndex index = RetrievalIndex::Build(single, opts);
  std::vector<float> query(dim, 0.5f);
  RetrievalIndex::Scratch scratch;
  std::vector<ScoredItem> got;
  index.Search(query.data(), 10, &scratch, &got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].index, 1);
}

// An all-zero *query* must not produce NaNs (query scale 0).
TEST_F(RetrievalTest, AllZeroQuery) {
  models::EmbeddingMips::Config config;
  config.d = 8;
  models::EmbeddingMips model(config);
  model.FitCatalog(100);
  FactorizedHead head;
  ASSERT_TRUE(model.GetFactorizedHead(&head));
  RetrievalOptions opts;
  opts.backend = RetrievalBackend::kQuantized;
  const RetrievalIndex index = RetrievalIndex::Build(head, opts);
  std::vector<float> query(8, 0.0f);
  RetrievalIndex::Scratch scratch;
  std::vector<ScoredItem> got;
  index.Search(query.data(), 5, &scratch, &got);
  ASSERT_EQ(got.size(), 5u);
  for (const auto& item : got) EXPECT_TRUE(std::isfinite(item.score));
}

// --- Satellite 3: oracle equivalence and recall regression --------------

// IVF fine scoring uses the same ascending-index FMA chain as the blocked
// GEMM behind the model's ScoreInto, so at full probe the dense score
// vectors must agree bit for bit (items-are-rows layout + bias).
TEST_F(RetrievalTest, IvfScoresBitwiseEqualExactScoreInto) {
  models::EmbeddingMips::Config config;
  config.d = 32;
  models::EmbeddingMips model(config);
  model.FitCatalog(3'000);
  FactorizedHead head;
  ASSERT_TRUE(model.GetFactorizedHead(&head));

  RetrievalOptions opts;
  opts.backend = RetrievalBackend::kIvf;
  opts.clusters = 16;
  opts.nprobe = 16;
  const RetrievalIndex index = RetrievalIndex::Build(head, opts);

  Rng rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<int32_t> fold_in;
    for (int i = 0; i < 8; ++i) {
      fold_in.push_back(static_cast<int32_t>(rng.UniformInt(1, 3'000)));
    }
    std::vector<float> exact;
    model.ScoreInto(fold_in, &exact);
    std::vector<float> query;
    model.EncodeQueryInto(fold_in, &query);
    std::vector<float> ivf;
    index.ScoreAllForTesting(query.data(), &ivf);
    ASSERT_EQ(exact.size(), ivf.size());
    for (size_t i = 1; i < exact.size(); ++i) {
      ASSERT_EQ(exact[i], ivf[i]) << "item " << i << " trial " << trial;
    }
  }
}

// Same bitwise claim for the strided (Linear [in, out]) head layout, via a
// briefly-trained GRU4Rec.
TEST_F(RetrievalTest, IvfScoresBitwiseEqualExactStridedHead) {
  data::SyntheticConfig data_config;
  data_config.num_users = 60;
  data_config.num_items = 120;
  data_config.seed = 5;
  const data::SequenceDataset dataset =
      data::GenerateSynthetic(data_config);

  models::Gru4Rec::Config config;
  config.max_len = 10;
  config.d = 12;
  config.hidden = 12;
  models::Gru4Rec model(config);
  TrainOptions train;
  train.epochs = 1;
  train.batch_size = 32;
  model.Fit(dataset, train);

  FactorizedHead head;
  ASSERT_TRUE(model.GetFactorizedHead(&head));
  EXPECT_FALSE(head.items_are_rows);
  ASSERT_NE(head.bias, nullptr);

  RetrievalOptions opts;
  opts.backend = RetrievalBackend::kIvf;
  opts.clusters = 8;
  opts.nprobe = 8;
  const RetrievalIndex index = RetrievalIndex::Build(head, opts);

  const std::vector<int32_t> fold_in = {5, 17, 80, 3};
  std::vector<float> exact;
  model.ScoreInto(fold_in, &exact);
  std::vector<float> query;
  ASSERT_TRUE(model.EncodeQueryInto(fold_in, &query));
  std::vector<float> ivf;
  index.ScoreAllForTesting(query.data(), &ivf);
  ASSERT_EQ(exact.size(), ivf.size());
  for (size_t i = 1; i < exact.size(); ++i) {
    ASSERT_EQ(exact[i], ivf[i]) << "item " << i;
  }
}

// Full-probe IVF through EvaluateRanking reproduces the exact backend's
// result maps exactly (not approximately): same per-user rankings, same
// serial merge order, so the averaged doubles are identical.
TEST_F(RetrievalTest, EvaluateRankingIvfFullProbeEqualsExact) {
  const data::SyntheticConfig data_config = data::BeautyLikeConfig(0.05);
  const data::SequenceDataset dataset =
      data::GenerateSynthetic(data_config);
  data::SplitOptions split_options;
  split_options.num_test_users = 40;
  const data::StrongSplit split = data::MakeStrongSplit(dataset, split_options);

  models::EmbeddingMips::Config config;
  config.d = 24;
  models::EmbeddingMips model(config);
  TrainOptions train;
  model.Fit(split.train, train);

  EvalOptions exact_options;
  const EvalResult exact = EvaluateRanking(model, split.test, exact_options);

  EvalOptions ivf_options;
  ivf_options.retrieval.backend = RetrievalBackend::kIvf;
  ivf_options.retrieval.clusters = 12;
  ivf_options.retrieval.nprobe = 12;
  const EvalResult ivf = EvaluateRanking(model, split.test, ivf_options);

  EXPECT_EQ(exact.precision, ivf.precision);
  EXPECT_EQ(exact.recall, ivf.recall);
  EXPECT_EQ(exact.ndcg, ivf.ndcg);
}

// Quantized recall regression on the BeautyLike preset, fixed seed: the
// int8 ranking's top-10 must overlap the exact top-10 at >= 0.99 on
// average, and the evaluator's recall@10 must not degrade materially.
TEST_F(RetrievalTest, QuantizedRecallRegressionBeautyLike) {
  const data::SyntheticConfig data_config = data::BeautyLikeConfig(0.1);
  const data::SequenceDataset dataset =
      data::GenerateSynthetic(data_config);
  data::SplitOptions split_options;
  split_options.num_test_users = 60;
  const data::StrongSplit split = data::MakeStrongSplit(dataset, split_options);

  models::EmbeddingMips::Config config;
  config.d = 32;
  models::EmbeddingMips model(config);
  TrainOptions train;
  model.Fit(split.train, train);
  FactorizedHead head;
  ASSERT_TRUE(model.GetFactorizedHead(&head));

  RetrievalOptions ropts;
  ropts.backend = RetrievalBackend::kQuantized;
  const RetrievalIndex index = RetrievalIndex::Build(head, ropts);

  // Direct top-10 overlap against the exact oracle.
  double overlap_sum = 0.0;
  int64_t queries = 0;
  RetrievalIndex::Scratch scratch;
  std::vector<float> exact_scores;
  std::vector<float> query;
  std::vector<ScoredItem> got;
  for (const data::HeldOutUser& user : split.test) {
    if (user.fold_in.empty()) continue;
    model.ScoreInto(user.fold_in, &exact_scores);
    const std::vector<ScoredItem> want = PartialSortTopK(exact_scores, 10);
    model.EncodeQueryInto(user.fold_in, &query);
    got.clear();
    index.Search(query.data(), 10, &scratch, &got);
    int hits = 0;
    for (const ScoredItem& g : got) {
      for (const ScoredItem& w : want) {
        if (g.index == w.index) {
          ++hits;
          break;
        }
      }
    }
    overlap_sum += static_cast<double>(hits) / 10.0;
    ++queries;
  }
  ASSERT_GT(queries, 0);
  EXPECT_GE(overlap_sum / queries, 0.99);

  // And through the evaluator: quantized recall@10 within noise of exact.
  EvalOptions exact_options;
  exact_options.cutoffs = {10};
  const EvalResult exact = EvaluateRanking(model, split.test, exact_options);
  EvalOptions quant_options = exact_options;
  quant_options.retrieval.backend = RetrievalBackend::kQuantized;
  quant_options.retrieval_index = &index;
  const EvalResult quant = EvaluateRanking(model, split.test, quant_options);
  EXPECT_NEAR(quant.recall.at(10), exact.recall.at(10), 0.005);
  EXPECT_NEAR(quant.ndcg.at(10), exact.ndcg.at(10), 0.005);
}

// A tied-head sequence model end to end: VSAN's factorized head (embedding
// table + output bias) through full-probe IVF equals its exact evaluation.
TEST_F(RetrievalTest, EvaluateRankingIvfEqualsExactVsanTiedHead) {
  data::SyntheticConfig data_config;
  data_config.num_users = 50;
  data_config.num_items = 80;
  data_config.seed = 9;
  const data::SequenceDataset dataset =
      data::GenerateSynthetic(data_config);
  data::SplitOptions split_options;
  split_options.num_test_users = 10;
  const data::StrongSplit split = data::MakeStrongSplit(dataset, split_options);

  core::VsanConfig config;
  config.max_len = 8;
  config.d = 8;
  core::Vsan model(config);
  TrainOptions train;
  train.epochs = 1;
  train.batch_size = 16;
  model.Fit(split.train, train);

  FactorizedHead head;
  ASSERT_TRUE(model.GetFactorizedHead(&head));
  EXPECT_TRUE(head.items_are_rows);
  ASSERT_NE(head.bias, nullptr);

  EvalOptions exact_options;
  const EvalResult exact = EvaluateRanking(model, split.test, exact_options);
  EvalOptions ivf_options;
  ivf_options.retrieval.backend = RetrievalBackend::kIvf;
  ivf_options.retrieval.clusters = 8;
  ivf_options.retrieval.nprobe = 8;
  const EvalResult ivf = EvaluateRanking(model, split.test, ivf_options);
  EXPECT_EQ(exact.precision, ivf.precision);
  EXPECT_EQ(exact.recall, ivf.recall);
  EXPECT_EQ(exact.ndcg, ivf.ndcg);
}

// Models without a factorized head silently fall back to the exact path:
// same result, no crash.
TEST_F(RetrievalTest, EvaluateRankingFallsBackWithoutFactorizedHead) {
  data::SyntheticConfig data_config;
  data_config.num_users = 40;
  data_config.num_items = 60;
  const data::SequenceDataset dataset =
      data::GenerateSynthetic(data_config);
  data::SplitOptions split_options;
  split_options.num_test_users = 8;
  const data::StrongSplit split = data::MakeStrongSplit(dataset, split_options);

  models::Pop model;
  TrainOptions train;
  model.Fit(split.train, train);
  FactorizedHead head;
  EXPECT_FALSE(model.GetFactorizedHead(&head));

  EvalOptions exact_options;
  const EvalResult exact = EvaluateRanking(model, split.test, exact_options);
  EvalOptions quant_options;
  quant_options.retrieval.backend = RetrievalBackend::kQuantized;
  const EvalResult fallback = EvaluateRanking(model, split.test, quant_options);
  EXPECT_EQ(exact.precision, fallback.precision);
  EXPECT_EQ(exact.recall, fallback.recall);
  EXPECT_EQ(exact.ndcg, fallback.ndcg);
}

// Sampled-negative evaluation also falls back (the fast path only serves
// full ranking).
TEST_F(RetrievalTest, EvaluateRankingSampledNegativesFallsBack) {
  data::SyntheticConfig data_config;
  data_config.num_users = 40;
  data_config.num_items = 60;
  const data::SequenceDataset dataset =
      data::GenerateSynthetic(data_config);
  data::SplitOptions split_options;
  split_options.num_test_users = 8;
  const data::StrongSplit split = data::MakeStrongSplit(dataset, split_options);

  models::EmbeddingMips::Config config;
  config.d = 16;
  models::EmbeddingMips model(config);
  TrainOptions train;
  model.Fit(split.train, train);

  EvalOptions sampled;
  sampled.num_sampled_negatives = 20;
  const EvalResult exact = EvaluateRanking(model, split.test, sampled);
  EvalOptions sampled_fast = sampled;
  sampled_fast.retrieval.backend = RetrievalBackend::kIvf;
  const EvalResult fallback = EvaluateRanking(model, split.test, sampled_fast);
  EXPECT_EQ(exact.precision, fallback.precision);
  EXPECT_EQ(exact.recall, fallback.recall);
  EXPECT_EQ(exact.ndcg, fallback.ndcg);
}

// --- Concurrency: shared index, per-thread scratch (TSan coverage) ------

TEST_F(RetrievalTest, ConcurrentSearchesShareOneIndex) {
  models::EmbeddingMips::Config config;
  config.d = 16;
  models::EmbeddingMips model(config);
  model.FitCatalog(5'000);
  FactorizedHead head;
  ASSERT_TRUE(model.GetFactorizedHead(&head));
  RetrievalOptions opts;
  opts.backend = RetrievalBackend::kQuantized;
  const RetrievalIndex index = RetrievalIndex::Build(head, opts);

  std::vector<float> query;
  model.EncodeQueryInto({10, 20, 30}, &query);
  RetrievalIndex::Scratch serial_scratch;
  std::vector<ScoredItem> serial;
  index.Search(query.data(), 25, &serial_scratch, &serial);

  constexpr int kThreads = 4;
  std::vector<std::vector<ScoredItem>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RetrievalIndex::Scratch scratch;
      for (int repeat = 0; repeat < 20; ++repeat) {
        results[t].clear();
        index.Search(query.data(), 25, &scratch, &results[t]);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    ExpectSameItems(results[t], serial, "thread " + std::to_string(t));
  }
}

// --- Satellite 4: million-item RSS / pool audit -------------------------

// A quantized million-item evaluation must not allocate (or leave cached)
// anything near the full-score-vector footprint: the exact path would
// materialize a 4 MB fp32 score vector per evaluation shard, the streaming
// path holds k * 8 bytes of heap plus the query.  Skipped under sanitizers
// (shadow memory makes RSS meaningless).
TEST_F(RetrievalTest, MillionItemEvalRssAndPoolBound) {
#ifdef VSAN_RETRIEVAL_TEST_SANITIZED
  GTEST_SKIP() << "RSS accounting is distorted by sanitizer shadow memory";
#else
  constexpr int32_t kCatalog = 1'000'000;
  models::EmbeddingMips::Config config;
  config.d = 8;
  models::EmbeddingMips model(config);
  model.FitCatalog(kCatalog);
  FactorizedHead head;
  ASSERT_TRUE(model.GetFactorizedHead(&head));

  RetrievalOptions ropts;
  ropts.backend = RetrievalBackend::kQuantized;
  const RetrievalIndex index = RetrievalIndex::Build(head, ropts);
  // d=8 pads to one 16-byte block per row: ~16 MB packed + 8 MB of scales
  // and bias copies.
  EXPECT_LT(index.MemoryBytes(), 40LL << 20);

  std::vector<data::HeldOutUser> users(20);
  Rng rng(43);
  for (auto& user : users) {
    for (int i = 0; i < 6; ++i) {
      user.fold_in.push_back(
          static_cast<int32_t>(rng.UniformInt(1, kCatalog)));
    }
    user.holdout.push_back(
        static_cast<int32_t>(rng.UniformInt(1, kCatalog)));
  }

  EvalOptions options;
  options.cutoffs = {10};
  options.retrieval.backend = RetrievalBackend::kQuantized;
  options.retrieval_index = &index;

  // Warm up once so lazily-faulted pages (code, metrics, scratch) do not
  // count against the steady-state delta.
  (void)EvaluateRanking(model, users, options);

  const int64_t rss_before_kb = ReadCurrentRssKb();
  ASSERT_GT(rss_before_kb, 0);
  (void)EvaluateRanking(model, users, options);
  const int64_t rss_after_kb = ReadCurrentRssKb();
  ASSERT_GT(rss_after_kb, 0);

  // Well below one full fp32 score vector (4000 KB); the streaming path's
  // steady state allocates nothing.
  EXPECT_LT(rss_after_kb - rss_before_kb, 2048)
      << "quantized evaluation grew RSS by " << (rss_after_kb - rss_before_kb)
      << " KB";

  // The pooled allocator must stay within its arena bound and must not be
  // holding per-user score vectors.
  const pool::PoolStats stats = pool::GetStats();
  EXPECT_LE(stats.bytes_cached, 512LL << 20);
#endif
}

// The evaluator's retrieval counters move when (and only when) a fast
// backend actually runs.
TEST_F(RetrievalTest, RetrievalMetricsAreRecorded) {
  models::EmbeddingMips::Config config;
  config.d = 16;
  models::EmbeddingMips model(config);
  model.FitCatalog(2'000);
  FactorizedHead head;
  ASSERT_TRUE(model.GetFactorizedHead(&head));
  RetrievalOptions ropts;
  ropts.backend = RetrievalBackend::kIvf;
  ropts.clusters = 8;
  ropts.nprobe = 2;
  const RetrievalIndex index = RetrievalIndex::Build(head, ropts);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const int64_t queries_before =
      registry.GetCounter(kMetricRetrievalQueries)->value();
  const int64_t rows_before =
      registry.GetCounter(kMetricRetrievalRowsScanned)->value();

  std::vector<data::HeldOutUser> users(5);
  Rng rng(47);
  for (auto& user : users) {
    user.fold_in = {static_cast<int32_t>(rng.UniformInt(1, 2'000))};
    user.holdout = {static_cast<int32_t>(rng.UniformInt(1, 2'000))};
  }
  EvalOptions options;
  options.cutoffs = {10};
  options.retrieval.backend = RetrievalBackend::kIvf;
  options.retrieval_index = &index;
  (void)EvaluateRanking(model, users, options);

  EXPECT_EQ(registry.GetCounter(kMetricRetrievalQueries)->value(),
            queries_before + 5);
  // nprobe=2 of 8 clusters: strictly fewer rows than a full scan per query.
  const int64_t rows_scanned =
      registry.GetCounter(kMetricRetrievalRowsScanned)->value() - rows_before;
  EXPECT_GT(rows_scanned, 0);
  EXPECT_LT(rows_scanned, 5LL * 2'000);
}

}  // namespace
}  // namespace eval
}  // namespace vsan
