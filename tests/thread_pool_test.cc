#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace vsan {
namespace {

// Runs fn over [begin, end) on `pool` and returns per-index visit counts.
std::vector<int> VisitCounts(ThreadPool* pool, int64_t begin, int64_t end,
                             int64_t grain) {
  std::vector<std::atomic<int>> counts(end > begin ? end - begin : 0);
  for (auto& c : counts) c = 0;
  pool->ParallelFor(begin, end, grain, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++counts[i - begin];
  });
  std::vector<int> out;
  out.reserve(counts.size());
  for (auto& c : counts) out.push_back(c.load());
  return out;
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool neg(-3);
  EXPECT_EQ(neg.num_threads(), 1);
}

TEST(ThreadPoolTest, WorkerLifecycleAcrossManyCalls) {
  // Workers start once, serve many ParallelFor calls, and join cleanly at
  // scope exit (the test would hang or crash otherwise).
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(0, 100, 1, [&](int64_t b, int64_t e) {
      int64_t local = 0;
      for (int64_t i = b; i < e; ++i) local += i;
      sum += local;
    });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
  }
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  // Range not divisible by the thread count, non-zero begin.
  EXPECT_EQ(VisitCounts(&pool, 3, 3 + 10, 1), std::vector<int>(10, 1));
  // Divisible range.
  EXPECT_EQ(VisitCounts(&pool, 0, 8, 1), std::vector<int>(8, 1));
  // Single element.
  EXPECT_EQ(VisitCounts(&pool, 0, 1, 1), std::vector<int>(1, 1));
}

TEST(ThreadPoolTest, RangeSmallerThanGrainRunsSerialOnCaller) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::pair<int64_t, int64_t>> shards;
  std::vector<std::thread::id> ids;
  std::mutex mu;
  pool.ParallelFor(0, 7, 16, [&](int64_t b, int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    shards.emplace_back(b, e);
    ids.push_back(std::this_thread::get_id());
  });
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0].first, 0);
  EXPECT_EQ(shards[0].second, 7);
  EXPECT_EQ(ids[0], caller);
}

TEST(ThreadPoolTest, ShardsAreContiguousAndRespectGrain) {
  ThreadPool pool(4);
  std::vector<std::pair<int64_t, int64_t>> shards;
  std::mutex mu;
  // Range 10, grain 3: at most floor(10/3) = 3 shards, each >= 3 long.
  pool.ParallelFor(0, 10, 3, [&](int64_t b, int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    shards.emplace_back(b, e);
  });
  ASSERT_LE(shards.size(), 3u);
  std::sort(shards.begin(), shards.end());
  int64_t expected_begin = 0;
  for (const auto& [b, e] : shards) {
    EXPECT_EQ(b, expected_begin);
    EXPECT_GE(e - b, 3);
    expected_begin = e;
  }
  EXPECT_EQ(expected_begin, 10);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsEverythingOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> ids;
  std::mutex mu;
  pool.ParallelFor(0, 1000, 1, [&](int64_t b, int64_t e) {
    (void)b;
    (void)e;
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(ids, std::set<std::thread::id>{caller});
}

TEST(ThreadPoolTest, NestedParallelForFallsBackToSerial) {
  ThreadPool pool(4);
  std::atomic<int> outer_shards{0};
  std::atomic<bool> nested_escaped{false};
  pool.ParallelFor(0, 4, 1, [&](int64_t, int64_t) {
    ++outer_shards;
    const std::thread::id self = std::this_thread::get_id();
    // The nested call must run its (single) shard on this same thread.
    pool.ParallelFor(0, 100, 1, [&](int64_t b, int64_t e) {
      EXPECT_EQ(e - b, 100);
      if (std::this_thread::get_id() != self) nested_escaped = true;
    });
  });
  EXPECT_GT(outer_shards.load(), 1);
  EXPECT_FALSE(nested_escaped.load());
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 100, 1,
                                [](int64_t b, int64_t) {
                                  if (b == 0) {
                                    throw std::runtime_error("shard failed");
                                  }
                                }),
               std::runtime_error);
  // The pool survives a throwing task and keeps serving work.
  EXPECT_EQ(VisitCounts(&pool, 0, 20, 1), std::vector<int>(20, 1));
}

TEST(ThreadPoolTest, ExceptionFromWorkerShardPropagates) {
  ThreadPool pool(4);
  // Throw from every shard so worker-executed shards (not just the
  // caller's) are guaranteed to hit the error path.
  EXPECT_THROW(pool.ParallelFor(0, 4, 1,
                                [](int64_t, int64_t) {
                                  throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, EnvVarOverridesDefaultThreadCount) {
  ASSERT_EQ(setenv("VSAN_NUM_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultNumThreads(), 3);
  ASSERT_EQ(setenv("VSAN_NUM_THREADS", "1", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultNumThreads(), 1);
  ASSERT_EQ(unsetenv("VSAN_NUM_THREADS"), 0);
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
}

TEST(ThreadPoolTest, NumThreadsOneForcesSerialExecution) {
  ASSERT_EQ(setenv("VSAN_NUM_THREADS", "1", 1), 0);
  ThreadPool pool(ThreadPool::DefaultNumThreads());
  EXPECT_EQ(pool.num_threads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> escaped{false};
  pool.ParallelFor(0, 256, 1, [&](int64_t, int64_t) {
    if (std::this_thread::get_id() != caller) escaped = true;
  });
  EXPECT_FALSE(escaped.load());
  ASSERT_EQ(unsetenv("VSAN_NUM_THREADS"), 0);
}

TEST(ThreadPoolTest, GlobalPoolResizable) {
  ThreadPool::SetGlobalNumThreads(2);
  EXPECT_EQ(ThreadPool::Global()->num_threads(), 2);
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 10, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 45);
  ThreadPool::SetGlobalNumThreads(ThreadPool::DefaultNumThreads());
}

}  // namespace
}  // namespace vsan
