#include "autograd/variable.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "util/rng.h"

namespace vsan {
namespace {

TEST(VariableTest, LeafProperties) {
  Variable v(Tensor::FromVector({2}, {1, 2}), /*requires_grad=*/true);
  EXPECT_TRUE(v.defined());
  EXPECT_TRUE(v.requires_grad());
  EXPECT_FALSE(v.has_grad());
  EXPECT_EQ(v.value().numel(), 2);
}

TEST(VariableTest, ConstantDoesNotRequireGrad) {
  Variable c = Variable::Constant(Tensor::Ones({3}));
  EXPECT_FALSE(c.requires_grad());
}

TEST(VariableTest, BackwardOnSumGivesOnes) {
  Variable x(Tensor::FromVector({3}, {1, 2, 3}), true);
  Variable loss = ops::Sum(x);
  loss.Backward();
  ASSERT_TRUE(x.has_grad());
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(x.grad()[i], 1.0f);
}

TEST(VariableTest, BackwardOnMeanDividesByCount) {
  Variable x(Tensor::FromVector({4}, {1, 2, 3, 4}), true);
  ops::Mean(x).Backward();
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x.grad()[i], 0.25f);
}

TEST(VariableTest, GradAccumulatesThroughSharedSubexpression) {
  // loss = sum(x + x) => dloss/dx = 2.
  Variable x(Tensor::FromVector({2}, {1, 2}), true);
  Variable y = ops::Add(x, x);
  ops::Sum(y).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 2.0f);
}

TEST(VariableTest, DiamondGraphAccumulatesOnce) {
  // y = x*x reused twice: loss = sum(y + y) => d/dx = 4x.
  Variable x(Tensor::FromVector({2}, {3, -1}), true);
  Variable y = ops::Mul(x, x);
  ops::Sum(ops::Add(y, y)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], -4.0f);
}

TEST(VariableTest, NoGradFlowsToConstants) {
  Variable x(Tensor::FromVector({2}, {1, 2}), true);
  Variable c = Variable::Constant(Tensor::FromVector({2}, {5, 5}));
  ops::Sum(ops::Mul(x, c)).Backward();
  EXPECT_TRUE(x.has_grad());
  EXPECT_FALSE(c.has_grad());
  EXPECT_FLOAT_EQ(x.grad()[0], 5.0f);
}

TEST(VariableTest, ZeroGradClears) {
  Variable x(Tensor::FromVector({1}, {2}), true);
  ops::Sum(x).Backward();
  ASSERT_TRUE(x.has_grad());
  x.ZeroGrad();
  EXPECT_FALSE(x.has_grad());
}

TEST(VariableTest, RepeatedBackwardAccumulates) {
  Variable x(Tensor::FromVector({1}, {3}), true);
  ops::Sum(x).Backward();
  ops::Sum(x).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(VariableTest, ChainRuleThroughScale) {
  // loss = mean(2 * x), d/dx = 2/n.
  Variable x(Tensor::FromVector({2}, {1, 1}), true);
  ops::Mean(ops::Scale(x, 2.0f)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
}

TEST(VariableTest, GraphWithoutParametersDies) {
  Variable c = Variable::Constant(Tensor::Scalar(1.0f));
  EXPECT_DEATH(c.Backward(), "no trainable parameters");
}

TEST(VariableTest, NonScalarBackwardDies) {
  Variable x(Tensor::Ones({2}), true);
  EXPECT_DEATH(x.Backward(), "scalar");
}

TEST(VariableTest, DeepChainBackward) {
  // 600 chained adds: exercises the iterative topological sort.
  Variable x(Tensor::Scalar(1.0f), true);
  Variable y = x;
  for (int i = 0; i < 600; ++i) y = ops::AddConst(y, 0.0f);
  ops::Sum(y).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
}

TEST(VariableTest, MatMulHandComputedGradient) {
  // loss = sum(A @ B); dA = ones @ B^T, dB = A^T @ ones.
  Variable a(Tensor::FromVector({2, 2}, {1, 2, 3, 4}), true);
  Variable b(Tensor::FromVector({2, 2}, {5, 6, 7, 8}), true);
  ops::Sum(ops::MatMul(a, b)).Backward();
  EXPECT_FLOAT_EQ(a.grad().at(0, 0), 11.0f);  // 5+6
  EXPECT_FLOAT_EQ(a.grad().at(0, 1), 15.0f);  // 7+8
  EXPECT_FLOAT_EQ(b.grad().at(0, 0), 4.0f);   // 1+3
  EXPECT_FLOAT_EQ(b.grad().at(1, 1), 6.0f);   // 2+4
}

TEST(VariableTest, ReluBlocksGradientAtNegativeInputs) {
  Variable x(Tensor::FromVector({3}, {-1, 0, 2}), true);
  ops::Sum(ops::Relu(x)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 0.0f);
  EXPECT_FLOAT_EQ(x.grad()[2], 1.0f);
}

TEST(VariableTest, DropoutEvalModeIsIdentity) {
  Rng rng(3);
  Variable x(Tensor::Ones({100}), true);
  Variable y = ops::Dropout(x, 0.5f, &rng, /*training=*/false);
  EXPECT_EQ(y.node_ptr(), x.node_ptr());
}

TEST(VariableTest, DropoutTrainingScalesKeptUnits) {
  Rng rng(4);
  Variable x(Tensor::Ones({4000}), true);
  Variable y = ops::Dropout(x, 0.25f, &rng, /*training=*/true);
  int zeros = 0;
  for (int64_t i = 0; i < y.value().numel(); ++i) {
    const float v = y.value()[i];
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.75f, 1e-5f);
    }
  }
  EXPECT_NEAR(zeros, 1000, 150);
  // E[y] stays ~= E[x].
  EXPECT_NEAR(y.value().Mean(), 1.0f, 0.05f);
}

}  // namespace
}  // namespace vsan
