// Chaos-injection suite for the serving plane (src/serve/, VSAN_FAULT
// serve directives): every test drives the *shipped* daemon through a
// production failure — a stalled encoder, flush-thread scheduler jitter,
// mid-response connection resets, a corrupt checkpoint offered for hot
// reload, silent cache-write failures, malformed request bodies — and
// asserts the failure stays contained: every request receives a response
// (200 bitwise-identical to the offline oracle, or a clean 400/409/429/
// 504), the old model generation keeps serving across a failed reload, and
// a reload under concurrent load drops nothing.  Labeled `chaos` (the
// reproduce.sh chaos sweep runs these plain, under TSan, and under ASan),
// plus `serve`.

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/vsan.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "obs/http_server.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/batcher.h"
#include "serve/daemon.h"
#include "serve/service.h"
#include "serve/state_cache.h"
#include "util/fault.h"
#include "util/status.h"

namespace vsan {
namespace serve {
namespace {

// ---------------------------------------------------------------------------
// Fault-tap unit tests (no HTTP server needed)

TEST(FaultTapTest, SocketResetFiresEveryKth) {
  fault::SetSpecForTest("socket_reset_after_bytes=7,socket_reset_every=3");
  int64_t truncate_to = -1;
  EXPECT_FALSE(fault::ShouldResetSocketSend(&truncate_to));
  EXPECT_FALSE(fault::ShouldResetSocketSend(&truncate_to));
  EXPECT_TRUE(fault::ShouldResetSocketSend(&truncate_to));
  EXPECT_EQ(truncate_to, 7);
  EXPECT_FALSE(fault::ShouldResetSocketSend(&truncate_to));
  fault::SetSpecForTest(nullptr);
  EXPECT_FALSE(fault::ShouldResetSocketSend(&truncate_to));
}

TEST(FaultTapTest, SocketResetDefaultsToEveryResponse) {
  // `socket_reset_after_bytes=0` alone is armed (0 is a valid cut point:
  // send nothing, close) and fires on every response.
  fault::SetSpecForTest("socket_reset_after_bytes=0");
  int64_t truncate_to = -1;
  EXPECT_TRUE(fault::ShouldResetSocketSend(&truncate_to));
  EXPECT_EQ(truncate_to, 0);
  EXPECT_TRUE(fault::ShouldResetSocketSend(&truncate_to));
  fault::SetSpecForTest(nullptr);
}

TEST(FaultTapTest, CacheInsertDropFiresEveryKth) {
  fault::SetSpecForTest("cache_insert_fail_every=2");
  EXPECT_FALSE(fault::ShouldDropCacheInsert());
  EXPECT_TRUE(fault::ShouldDropCacheInsert());
  EXPECT_FALSE(fault::ShouldDropCacheInsert());
  EXPECT_TRUE(fault::ShouldDropCacheInsert());
  fault::SetSpecForTest(nullptr);
  EXPECT_FALSE(fault::ShouldDropCacheInsert());
}

TEST(FaultTapTest, CacheInsertDropOnlyCostsHitRate) {
  // A dropped insert is a miss on the next lookup, never a wrong payload.
  fault::SetSpecForTest("cache_insert_fail_every=2");
  EncodedStateCache cache(1 << 20);
  cache.Insert(0, 1, 11, {1.0f});  // insert #1: kept
  cache.Insert(0, 2, 22, {2.0f});  // insert #2: dropped
  std::vector<float> out;
  EXPECT_TRUE(cache.Lookup(0, 1, 11, &out));
  EXPECT_EQ(out, std::vector<float>({1.0f}));
  EXPECT_FALSE(cache.Lookup(0, 2, 22, &out));
  EXPECT_EQ(cache.stats().entries, 1);
  fault::SetSpecForTest(nullptr);
}

// ---------------------------------------------------------------------------
// Daemon-level chaos (needs the real HTTP server: VSAN_OBS builds only)

#if VSAN_OBS_ENABLED

// Like serve_test's PostRecommend but tolerant of transport failure: a
// mid-response reset comes back as -1 instead of an EXPECT failure, so the
// socket-reset tests can tell "cleanly cut" from "wrong answer".
int TryPost(int port, const std::string& path, const std::string& body,
            std::string* response) {
  int status = 0;
  if (!obs::HttpPost("127.0.0.1", port, path, body, "application/json",
                     &status, response)) {
    return -1;
  }
  return status;
}

int TryRecommend(int port, const std::string& body, std::string* response) {
  return TryPost(port, "/recommend", body, response);
}

std::string RequestBody(int64_t user, const std::vector<int32_t>& history,
                        int32_t k) {
  std::string body = "{\"user\": " + std::to_string(user) +
                     ", \"k\": " + std::to_string(k) + ", \"history\": [";
  for (size_t i = 0; i < history.size(); ++i) {
    if (i > 0) body += ", ";
    body += std::to_string(history[i]);
  }
  body += "]}";
  return body;
}

// Trains the same tiny VSAN as serve_test's oracle fixture and saves it as
// a checkpoint, so reload tests can round-trip the real VSANCKP1 path and
// every response can be checked bitwise against the in-memory model.
class ChaosServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::SetSpecForTest(nullptr);
    data::SyntheticConfig data_config;
    data_config.num_users = 60;
    data_config.num_items = 100;
    data_config.seed = 21;
    dataset_ = data::GenerateSynthetic(data_config);
    core::VsanConfig config;
    config.max_len = 10;
    config.d = 12;
    model_ = std::make_unique<core::Vsan>(config);
    TrainOptions train;
    train.epochs = 1;
    train.batch_size = 16;
    model_->Fit(dataset_, train);
    checkpoint_ = ::testing::TempDir() + "/serve_chaos_model.ckpt";
    ASSERT_TRUE(model_->Save(checkpoint_).ok());
  }

  void TearDown() override { fault::SetSpecForTest(nullptr); }

  DaemonOptions ChaosOptions() {
    DaemonOptions options;
    options.handler_threads = 4;
    options.batcher.max_batch = 4;
    options.batcher.max_wait_us = 200;
    // Generous: overload shedding has its own tests; chaos runs want every
    // accepted request to complete so "bitwise or clean error" is sharp.
    options.batcher.max_queue = 64;
    options.service.exclude_seen = false;
    options.checkpoint_path = checkpoint_;
    options.loader = [](const std::string& path, LoadedModel* out) {
      auto loaded = core::Vsan::Load(path);
      if (!loaded.ok()) return loaded.status();
      std::unique_ptr<core::Vsan> fresh = std::move(loaded).value();
      out->num_items = fresh->num_items();
      out->model =
          std::shared_ptr<const SequentialRecommender>(std::move(fresh));
      return Status::Ok();
    };
    return options;
  }

  // Asserts `response` carries exactly the offline oracle for this history:
  // same items, same order, bitwise-identical scores (the %.9g float round
  // trip).  Holds across reloads too — every generation loads the same
  // checkpoint, so the forward pass is bit-for-bit reproducible.
  void VerifyBitwise(const std::string& response,
                     const std::vector<int32_t>& history, int32_t k) {
    obs::JsonValue doc;
    std::string error;
    ASSERT_TRUE(obs::ParseJson(response, &doc, &error))
        << error << " in: " << response;
    const obs::JsonValue* items = doc.Find("items");
    ASSERT_NE(items, nullptr) << response;
    std::vector<float> scores;
    model_->ScoreInto(history, &scores);
    const std::vector<int32_t> expected = eval::TopNIndices(
        scores, std::vector<bool>(scores.size(), false), k);
    ASSERT_EQ(items->array.size(), expected.size());
    for (size_t r = 0; r < expected.size(); ++r) {
      const obs::JsonValue& item = items->array[r];
      ASSERT_EQ(item.NumberOr("item", -1),
                static_cast<double>(expected[r]))
          << "rank " << r;
      ASSERT_EQ(static_cast<float>(item.NumberOr("score", 0.0)),
                scores[static_cast<size_t>(expected[r])])
          << "rank " << r;
    }
  }

  data::SequenceDataset dataset_;
  std::unique_ptr<core::Vsan> model_;
  std::string checkpoint_;
};

TEST_F(ChaosServeTest, MalformedBodyFuzzMatrix) {
  DaemonOptions options = ChaosOptions();
  options.service.max_history = 16;
  ServeDaemon daemon(model_.get(), model_->num_items(), options);
  ASSERT_TRUE(daemon.StartHttp());
  daemon.Activate();

  const std::string valid = "{\"user\": 1, \"history\": [3, 1, 4], \"k\": 5}";
  std::string response;
  ASSERT_EQ(TryRecommend(daemon.port(), valid, &response), 200);

  std::vector<std::string> bad = {
      // Not JSON / not an object.
      "", " ", "not json at all", "null", "true", "42", "\"a string\"",
      "[1, 2, 3]", "{", "}", "{]", "{\"user\": }", "{}",
      // Missing fields.
      "{\"user\": 1}", "{\"history\": [1]}",
      // Wrong-typed or out-of-range user.
      "{\"user\": -1, \"history\": [1]}",
      "{\"user\": \"1\", \"history\": [1]}",
      "{\"user\": 1.5, \"history\": [1]}",
      "{\"user\": true, \"history\": [1]}",
      "{\"user\": null, \"history\": [1]}",
      "{\"user\": 1e300, \"history\": [1]}",
      // Wrong-typed history / items.
      "{\"user\": 1, \"history\": 1}",
      "{\"user\": 1, \"history\": \"1,2\"}",
      "{\"user\": 1, \"history\": {\"a\": 1}}",
      "{\"user\": 1, \"history\": [\"1\"]}",
      "{\"user\": 1, \"history\": [1.5]}",
      "{\"user\": 1, \"history\": [null]}",
      "{\"user\": 1, \"history\": [[1]]}",
      "{\"user\": 1, \"history\": [99999999999]}",
      // Semantically invalid ids and k (the service's own 400s).
      "{\"user\": 1, \"history\": [0]}",
      "{\"user\": 1, \"history\": [101]}",
      "{\"user\": 1, \"history\": [1], \"k\": 0}",
      "{\"user\": 1, \"history\": [1], \"k\": -3}",
      "{\"user\": 1, \"history\": [1], \"k\": \"5\"}",
      "{\"user\": 1, \"history\": [1], \"k\": 2.5}",
      "{\"user\": 1, \"history\": [1], \"k\": 99999999999}",
      // Bad deadlines.
      "{\"user\": 1, \"history\": [1], \"deadline_us\": -1}",
      "{\"user\": 1, \"history\": [1], \"deadline_us\": \"soon\"}",
      "{\"user\": 1, \"history\": [1], \"deadline_us\": 1.5}",
  };
  // Deeply nested values must hit the parser's recursion cap, not the
  // process's stack guard.
  std::string deep_array(400, '[');
  deep_array.append(400, ']');
  bad.push_back(deep_array);
  std::string deep_history = "{\"user\": 1, \"history\": ";
  deep_history.append(300, '[');
  deep_history.append(300, ']');
  deep_history += "}";
  bad.push_back(deep_history);
  std::string deep_object;
  for (int i = 0; i < 300; ++i) deep_object += "{\"a\": ";
  deep_object += "1";
  deep_object.append(300, '}');
  bad.push_back(deep_object);
  // History over the semantic cap gets its own clear 400.
  std::string long_history = "{\"user\": 1, \"history\": [";
  for (int i = 0; i < 17; ++i) {
    if (i > 0) long_history += ", ";
    long_history += "1";
  }
  long_history += "]}";
  bad.push_back(long_history);
  // Every proper prefix of a valid body is truncated JSON.
  for (size_t len = 0; len < valid.size(); ++len) {
    bad.push_back(valid.substr(0, len));
  }

  for (const std::string& body : bad) {
    const int status = TryRecommend(daemon.port(), body, &response);
    EXPECT_EQ(status, 400) << "body: " << body.substr(0, 80);
  }
  // The matrix left no mark: the valid body still round-trips bitwise.
  ASSERT_EQ(TryRecommend(daemon.port(), valid, &response), 200);
  VerifyBitwise(response, {3, 1, 4}, 5);
  daemon.Shutdown();
}

TEST_F(ChaosServeTest, EncodeStallTripsDeadlinesWith504) {
  DaemonOptions options = ChaosOptions();
  // Daemon-wide default deadline: requests carrying none inherit it.
  options.service.default_deadline_us = 2000;
  ServeDaemon daemon(model_.get(), model_->num_items(), options);
  ASSERT_TRUE(daemon.StartHttp());
  daemon.Activate();
  obs::Counter* expired =
      obs::MetricsRegistry::Global().GetCounter("serve.deadline_expired");
  const int64_t expired_before = expired->value();

  // Every encode flush now takes 30ms against a 2ms budget, so a request
  // must come back 504 whichever way it expires: mid-flush (the service's
  // post-encode check), queued behind a stalled flush (the flush-loop shed
  // sweep), or late on arrival (the submit-time check).
  fault::SetSpecForTest("serve_encode_stall_ms=30");
  std::vector<int> statuses(3, 0);
  std::vector<std::thread> clients;
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&, i] {
      std::string response;
      std::string body = RequestBody(i, {static_cast<int32_t>(i + 1)}, 5);
      body.insert(body.size() - 1, ", \"deadline_us\": 2000");
      statuses[static_cast<size_t>(i)] =
          TryRecommend(daemon.port(), body, &response);
    });
  }
  // A fourth request exercises the default deadline (no deadline_us field).
  std::string response;
  EXPECT_EQ(TryRecommend(daemon.port(), RequestBody(9, {9}, 5), &response),
            504);
  for (std::thread& t : clients) t.join();
  for (const int status : statuses) EXPECT_EQ(status, 504);
  EXPECT_GE(expired->value() - expired_before, 4);

  // Stall gone: an explicit deadline_us of 0 opts out of the default and
  // the same request completes bitwise.
  fault::SetSpecForTest(nullptr);
  std::string body = RequestBody(9, {9}, 5);
  body.insert(body.size() - 1, ", \"deadline_us\": 0");
  ASSERT_EQ(TryRecommend(daemon.port(), body, &response), 200);
  VerifyBitwise(response, {9}, 5);
  daemon.Shutdown();
}

TEST_F(ChaosServeTest, StallAndJitterNeverCorruptResponses) {
  ServeDaemon daemon(model_.get(), model_->num_items(), ChaosOptions());
  ASSERT_TRUE(daemon.StartHttp());
  daemon.Activate();

  // Slow encoder plus flush-thread scheduler jitter, concurrent clients,
  // no deadlines: latency may be awful, answers may not be.
  fault::SetSpecForTest("serve_encode_stall_ms=2,serve_flush_delay_ms=1");
  constexpr int kClients = 4;
  constexpr int kPerClient = 5;
  std::vector<int> statuses(kClients * kPerClient, 0);
  std::vector<std::string> responses(kClients * kPerClient);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        const int64_t user = c * kPerClient + r;
        const size_t slot = static_cast<size_t>(user);
        statuses[slot] = TryRecommend(
            daemon.port(),
            RequestBody(user, dataset_.sequence(static_cast<int32_t>(user)),
                        10),
            &responses[slot]);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int i = 0; i < kClients * kPerClient; ++i) {
    const size_t slot = static_cast<size_t>(i);
    ASSERT_EQ(statuses[slot], 200) << "request " << i;
    VerifyBitwise(responses[slot], dataset_.sequence(i), 10);
  }
  daemon.Shutdown();
}

TEST_F(ChaosServeTest, SocketResetsAreVisibleFailuresNeverWrongAnswers) {
  ServeDaemon daemon(model_.get(), model_->num_items(), ChaosOptions());
  ASSERT_TRUE(daemon.StartHttp());
  daemon.Activate();
  const std::string body = RequestBody(7, dataset_.sequence(7), 10);
  std::string response;
  ASSERT_EQ(TryRecommend(daemon.port(), body, &response), 200);

  // Every second response is cut to zero bytes and the connection closed.
  // The client must see each request either fail visibly (reset) or
  // succeed bitwise — never a mangled 200 — and the server must shrug the
  // dead connections off.
  fault::SetSpecForTest("socket_reset_after_bytes=0,socket_reset_every=2");
  int resets = 0;
  int oks = 0;
  for (int i = 0; i < 10; ++i) {
    const int status = TryRecommend(daemon.port(), body, &response);
    if (status == -1) {
      ++resets;
      continue;
    }
    ASSERT_EQ(status, 200);
    VerifyBitwise(response, dataset_.sequence(7), 10);
    ++oks;
  }
  EXPECT_GE(resets, 1);
  EXPECT_GE(oks, 1);

  // Disarmed, the daemon is fully healthy: /healthz and a bitwise answer.
  fault::SetSpecForTest(nullptr);
  int status = 0;
  ASSERT_TRUE(obs::HttpGet("127.0.0.1", daemon.port(), "/healthz", &status,
                           &response));
  EXPECT_EQ(status, 200);
  ASSERT_EQ(TryRecommend(daemon.port(), body, &response), 200);
  VerifyBitwise(response, dataset_.sequence(7), 10);
  daemon.Shutdown();
}

TEST_F(ChaosServeTest, CacheInsertFailuresNeverChangeAnswers) {
  ServeDaemon daemon(model_.get(), model_->num_items(), ChaosOptions());
  ASSERT_TRUE(daemon.StartHttp());
  daemon.Activate();

  // Half the encoded-state cache writes silently vanish.  Repeated and
  // interleaved identical requests must stay bitwise-correct whether they
  // hit, miss, or miss-because-the-insert-was-dropped.
  fault::SetSpecForTest("cache_insert_fail_every=2");
  std::string response;
  for (int round = 0; round < 3; ++round) {
    for (const int32_t user : {5, 6}) {
      ASSERT_EQ(TryRecommend(daemon.port(),
                             RequestBody(user, dataset_.sequence(user), 10),
                             &response),
                200);
      VerifyBitwise(response, dataset_.sequence(user), 10);
    }
  }
  daemon.Shutdown();
}

TEST_F(ChaosServeTest, CorruptReloadRejectedOldGenerationKeepsServing) {
  ServeDaemon daemon(model_.get(), model_->num_items(), ChaosOptions());
  ASSERT_TRUE(daemon.StartHttp());
  daemon.Activate();
  obs::Counter* reload_failures =
      obs::MetricsRegistry::Global().GetCounter("serve.reload_failures");
  const int64_t failures_before = reload_failures->value();

  const std::string body = RequestBody(3, dataset_.sequence(3), 10);
  std::string response;
  ASSERT_EQ(TryRecommend(daemon.port(), body, &response), 200);
  EXPECT_NE(response.find("\"generation\": 0"), std::string::npos);
  VerifyBitwise(response, dataset_.sequence(3), 10);

  // Offer a corrupted copy for reload (a copy, so the pristine original
  // can still be reloaded afterwards).  The CRC'd loader must reject it
  // and generation 0 must keep serving, bit-for-bit.
  const std::string scratch = ::testing::TempDir() + "/serve_chaos_bad.ckpt";
  {
    std::ifstream in(checkpoint_, std::ios::binary);
    std::ofstream out(scratch, std::ios::binary | std::ios::trunc);
    out << in.rdbuf();
    ASSERT_TRUE(in.good() && out.good());
  }
  fault::SetSpecForTest("corrupt_reload_bytes=8");
  EXPECT_EQ(TryPost(daemon.port(), "/reload",
                    "{\"checkpoint\": \"" + scratch + "\"}", &response),
            409);
  EXPECT_EQ(daemon.generation(), 0);
  EXPECT_EQ(reload_failures->value() - failures_before, 1);
  ASSERT_EQ(TryRecommend(daemon.port(), body, &response), 200);
  EXPECT_NE(response.find("\"generation\": 0"), std::string::npos);
  VerifyBitwise(response, dataset_.sequence(3), 10);

  // Malformed reload bodies are client errors, not failed reloads.
  EXPECT_EQ(TryPost(daemon.port(), "/reload", "not json", &response), 400);
  EXPECT_EQ(TryPost(daemon.port(), "/reload", "{\"checkpoint\": 7}",
                    &response),
            400);

  // Disarmed, the pristine checkpoint swaps in as generation 1 and serves
  // the same bits (same file, deterministic forward pass).
  fault::SetSpecForTest(nullptr);
  ASSERT_EQ(TryPost(daemon.port(), "/reload", "", &response), 200);
  EXPECT_NE(response.find("\"generation\": 1"), std::string::npos);
  EXPECT_EQ(daemon.generation(), 1);
  ASSERT_EQ(TryRecommend(daemon.port(), body, &response), 200);
  EXPECT_NE(response.find("\"generation\": 1"), std::string::npos);
  VerifyBitwise(response, dataset_.sequence(3), 10);
  daemon.Shutdown();
}

TEST_F(ChaosServeTest, HotReloadUnderLoadDropsNothing) {
  ServeDaemon daemon(model_.get(), model_->num_items(), ChaosOptions());
  ASSERT_TRUE(daemon.StartHttp());
  daemon.Activate();
  obs::Gauge* generation_gauge =
      obs::MetricsRegistry::Global().GetGauge("serve.model_generation");

  // Three client threads hammer /recommend while the main thread swaps the
  // model three times.  The zero-downtime contract: every single request
  // is answered 200 with the oracle's bits (all generations load the same
  // checkpoint), and each response names a generation that existed.
  constexpr int kClients = 3;
  constexpr int kPerClient = 16;
  constexpr int kReloads = 3;
  std::vector<int> statuses(kClients * kPerClient, 0);
  std::vector<std::string> responses(kClients * kPerClient);
  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        const int64_t user = c * kPerClient + r;
        const size_t slot = static_cast<size_t>(user);
        statuses[slot] = TryRecommend(
            daemon.port(),
            RequestBody(user, dataset_.sequence(static_cast<int32_t>(user)),
                        10),
            &responses[slot]);
        completed.fetch_add(1);
      }
    });
  }
  for (int g = 1; g <= kReloads; ++g) {
    // Space the swaps through the traffic so every generation serves some.
    while (completed.load() < g * (kClients * kPerClient / (kReloads + 1))) {
      std::this_thread::yield();
    }
    int64_t generation = -1;
    ASSERT_TRUE(daemon.Reload("", &generation).ok());
    EXPECT_EQ(generation, g);
  }
  for (std::thread& t : clients) t.join();

  for (int i = 0; i < kClients * kPerClient; ++i) {
    const size_t slot = static_cast<size_t>(i);
    ASSERT_EQ(statuses[slot], 200) << "request " << i << " was dropped";
    VerifyBitwise(responses[slot], dataset_.sequence(i), 10);
    obs::JsonValue doc;
    std::string error;
    ASSERT_TRUE(obs::ParseJson(responses[slot], &doc, &error)) << error;
    const double generation = doc.NumberOr("generation", -1.0);
    EXPECT_GE(generation, 0.0);
    EXPECT_LE(generation, static_cast<double>(kReloads));
  }
  EXPECT_EQ(daemon.generation(), kReloads);
  EXPECT_EQ(generation_gauge->value(), static_cast<double>(kReloads));
  daemon.Shutdown();
}

TEST_F(ChaosServeTest, ShutdownDuringStallAnswersInFlight) {
  DaemonOptions options = ChaosOptions();
  options.batcher.max_batch = 1;  // one flush per request: progress is
                                  // observable as flushes + queue_depth
  ServeDaemon daemon(model_.get(), model_->num_items(), options);
  ASSERT_TRUE(daemon.StartHttp());
  daemon.Activate();

  // Shutdown races a flush thread that is mid-stall with more work queued
  // behind it.  The graceful-drain contract holds anyway: all three
  // accepted requests complete with the oracle's bits.
  fault::SetSpecForTest("serve_encode_stall_ms=20");
  std::vector<int> statuses(3, 0);
  std::vector<std::string> responses(3);
  std::vector<std::thread> clients;
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&, i] {
      const size_t slot = static_cast<size_t>(i);
      statuses[slot] = TryRecommend(
          daemon.port(), RequestBody(i, dataset_.sequence(i), 10),
          &responses[slot]);
    });
  }
  // All three submitted: each is either a taken flush or still queued.
  while (daemon.batcher()->flushes() + daemon.batcher()->queue_depth() < 3) {
    std::this_thread::yield();
  }
  daemon.Shutdown();
  for (std::thread& t : clients) t.join();
  for (int i = 0; i < 3; ++i) {
    const size_t slot = static_cast<size_t>(i);
    ASSERT_EQ(statuses[slot], 200) << "in-flight request " << i;
    VerifyBitwise(responses[slot], dataset_.sequence(i), 10);
  }
}

#endif  // VSAN_OBS_ENABLED

}  // namespace
}  // namespace serve
}  // namespace vsan
