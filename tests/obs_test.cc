// Tests for the observability subsystem: span tracer (ring buffers,
// sessions, Chrome-trace export round-trip), metrics registry (histogram
// bucket/percentile math), and training telemetry (JSONL golden run,
// including the Sec. IV-E beta anneal schedule).

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/vsan.h"
#include "data/dataset.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "obs/trace_reader.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace vsan {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Tracer

TEST(TracerTest, DisabledByDefaultRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.StopSession();
  { VSAN_TRACE_SPAN("never/recorded", kOther); }
  tracer.RecordSpan("also/never", SpanCategory::kOther, 0, 1);
  // A fresh session discards anything from previous tests and, once
  // stopped, keeps only what was recorded inside it.
  tracer.StartSession({});
  tracer.StopSession();
  EXPECT_TRUE(tracer.Collect().empty());
  EXPECT_EQ(tracer.NumThreads(), 0);
}

#if VSAN_OBS_ENABLED  // these three tests need the span macro compiled in

TEST(TracerTest, RecordsNestedSpansWithPlausibleTimes) {
  Tracer& tracer = Tracer::Global();
  tracer.StartSession({});
  {
    VSAN_TRACE_SPAN("outer", kTrain);
    { VSAN_TRACE_SPAN("inner", kKernel); }
  }
  tracer.StopSession();
  const std::vector<SpanEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time with ties broken longer-first: outer precedes
  // inner and fully contains it.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
  EXPECT_GE(events[1].dur_ns, 0);
}

TEST(TracerTest, CapturesSpansAcrossParallelForThreads) {
  ThreadPool pool(4);
  Tracer& tracer = Tracer::Global();
  tracer.StartSession({});
  pool.ParallelFor(0, 64, 1, [](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      VSAN_TRACE_SPAN("work/item", kOther);
    }
  });
  tracer.StopSession();
  const std::vector<SpanEvent> events = tracer.Collect();
  int64_t items = 0;
  bool saw_parallel_for = false;
  bool saw_shard = false;
  bool saw_queue_wait = false;
  for (const SpanEvent& e : events) {
    if (std::string(e.name) == "work/item") ++items;
    if (std::string(e.name) == "pool/parallel_for") saw_parallel_for = true;
    if (std::string(e.name) == "pool/shard") saw_shard = true;
    if (std::string(e.name) == "pool/queue_wait") saw_queue_wait = true;
  }
  EXPECT_EQ(items, 64);
  EXPECT_TRUE(saw_parallel_for);
  EXPECT_TRUE(saw_shard);
  EXPECT_TRUE(saw_queue_wait);
  // All four shards ran (the caller plus three workers); each recording
  // thread got its own buffer/tid.
  EXPECT_GE(tracer.NumThreads(), 2);
  EXPECT_EQ(tracer.DroppedEvents(), 0);
}

#endif  // VSAN_OBS_ENABLED

TEST(TracerTest, RingBufferWrapsAndCountsDrops) {
  Tracer& tracer = Tracer::Global();
  TracerOptions options;
  options.buffer_capacity = 8;
  tracer.StartSession(options);
  for (int i = 0; i < 20; ++i) {
    tracer.RecordSpan("wrap", SpanCategory::kOther, i, 1);
  }
  tracer.StopSession();
  const std::vector<SpanEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 8u);  // ring keeps the newest `capacity` events
  EXPECT_EQ(tracer.DroppedEvents(), 12);
  // The survivors are the 8 most recent, still in chronological order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].start_ns, static_cast<int64_t>(12 + i));
  }
}

TEST(TracerTest, NewSessionDiscardsPreviousEvents) {
  Tracer& tracer = Tracer::Global();
  tracer.StartSession({});
  tracer.RecordSpan("old", SpanCategory::kOther, 0, 1);
  tracer.StartSession({});
  tracer.RecordSpan("new", SpanCategory::kOther, 0, 1);
  tracer.StopSession();
  const std::vector<SpanEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "new");
}

// ---------------------------------------------------------------------------
// Chrome trace export / read-back

TEST(ChromeTraceTest, ExportParsesBackWithEscapedNames) {
  std::vector<SpanEvent> events;
  events.push_back(
      {"plain", SpanCategory::kKernel, /*tid=*/0, /*start=*/1000, /*dur=*/500});
  static const char kWeird[] = "q\"uote\\back\nline\ttab";
  events.push_back({kWeird, SpanCategory::kEval, 3, 2500, 1500});
  std::ostringstream os;
  WriteChromeTrace(events, os);

  // The export must be a valid JSON document...
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(os.str(), &doc, &error)) << error;
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.Find("traceEvents"), nullptr);

  // ...and the reader must recover names, categories, and microsecond
  // times exactly.
  std::istringstream is(os.str());
  std::vector<ParsedSpan> spans;
  ASSERT_TRUE(ReadChromeTrace(is, &spans, &error)) << error;
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "plain");
  EXPECT_EQ(spans[0].category, "kernel");
  EXPECT_EQ(spans[0].tid, 0);
  EXPECT_DOUBLE_EQ(spans[0].ts_us, 1.0);
  EXPECT_DOUBLE_EQ(spans[0].dur_us, 0.5);
  EXPECT_EQ(spans[1].name, kWeird);
  EXPECT_EQ(spans[1].category, "eval");
  EXPECT_EQ(spans[1].tid, 3);
}

TEST(ChromeTraceTest, SummarizeComputesWallCoverageAndTables) {
  // tid 0: [0, 100us] parent with [10, 30] + [40, 60] children (nested
  // intervals must not double-count); tid 1: [0, 40].
  std::vector<ParsedSpan> spans;
  spans.push_back({"epoch", "train", 0, 0.0, 100.0});
  spans.push_back({"gemm", "kernel", 0, 10.0, 20.0});
  spans.push_back({"gemm", "kernel", 0, 40.0, 20.0});
  spans.push_back({"shard", "pool", 1, 0.0, 40.0});
  const TraceSummary summary = SummarizeTrace(spans);
  EXPECT_DOUBLE_EQ(summary.wall_us, 100.0);
  // Busiest thread (tid 0) covers [0,100] fully via the parent span.
  EXPECT_DOUBLE_EQ(summary.coverage, 1.0);
  ASSERT_EQ(summary.by_category.count("kernel"), 1u);
  EXPECT_EQ(summary.by_category.at("kernel").count, 2);
  EXPECT_DOUBLE_EQ(summary.by_category.at("kernel").total_us, 40.0);
  ASSERT_EQ(summary.by_name.count("epoch"), 1u);
  EXPECT_DOUBLE_EQ(summary.by_name.at("epoch").total_us, 100.0);
}

TEST(ChromeTraceTest, ExportFileRoundTrip) {
  Tracer& tracer = Tracer::Global();
  tracer.StartSession({});
  tracer.RecordSpan("file/span", SpanCategory::kData, 0, 1000);
  tracer.StopSession();
  const std::string path = ::testing::TempDir() + "/vsan_trace.json";
  ASSERT_TRUE(ExportChromeTrace(path));
  std::ifstream in(path);
  std::vector<ParsedSpan> spans;
  std::string error;
  ASSERT_TRUE(ReadChromeTrace(in, &spans, &error)) << error;
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "file/span");
  EXPECT_EQ(spans[0].category, "data");
}

TEST(ChromeTraceTest, ExportEmbedsMetricsSnapshot) {
  MetricsRegistry::Global().GetCounter("test.trace.counter")->Increment(7);
  MetricsRegistry::Global().GetGauge("test.trace.gauge")->Set(2.5);
  Tracer& tracer = Tracer::Global();
  tracer.StartSession({});
  tracer.RecordSpan("metrics/span", SpanCategory::kAlloc, 0, 1000);
  tracer.StopSession();
  const std::string path = ::testing::TempDir() + "/vsan_trace_metrics.json";
  ASSERT_TRUE(ExportChromeTrace(path));
  std::ifstream in(path);
  std::vector<ParsedSpan> spans;
  std::map<std::string, double> metrics;
  std::string error;
  ASSERT_TRUE(ReadChromeTrace(in, &spans, &metrics, &error)) << error;
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].category, "alloc");
  ASSERT_EQ(metrics.count("test.trace.counter"), 1u);
  EXPECT_DOUBLE_EQ(metrics.at("test.trace.counter"), 7.0);
  ASSERT_EQ(metrics.count("test.trace.gauge"), 1u);
  EXPECT_DOUBLE_EQ(metrics.at("test.trace.gauge"), 2.5);
  // Traces without a metrics object read back as an empty map, not an
  // error (compatibility with externally produced traces).
  std::istringstream bare(R"([{"name":"x","ph":"X","ts":0,"dur":1}])");
  ASSERT_TRUE(ReadChromeTrace(bare, &spans, &metrics, &error)) << error;
  EXPECT_TRUE(metrics.empty());
}

// ---------------------------------------------------------------------------
// Metrics

TEST(MetricsTest, HistogramBucketAndPercentileMath) {
  Histogram hist({1.0, 10.0, 100.0});
  EXPECT_DOUBLE_EQ(hist.Percentile(50.0), 0.0);  // empty
  // 10 samples in [0,1], 80 in (1,10], 10 in (10,100].
  for (int i = 0; i < 10; ++i) hist.Observe(0.5);
  for (int i = 0; i < 80; ++i) hist.Observe(5.0);
  for (int i = 0; i < 10; ++i) hist.Observe(50.0);
  EXPECT_EQ(hist.count(), 100);
  EXPECT_DOUBLE_EQ(hist.sum(), 10 * 0.5 + 80 * 5.0 + 10 * 50.0);
  const std::vector<int64_t> buckets = hist.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 10);
  EXPECT_EQ(buckets[1], 80);
  EXPECT_EQ(buckets[2], 10);
  EXPECT_EQ(buckets[3], 0);
  // p50: rank 50 lands in bucket (1,10] at position 40 of 80 — linear
  // interpolation gives 1 + 9 * 40/80 = 5.5.
  EXPECT_NEAR(hist.Percentile(50.0), 5.5, 1e-9);
  // p5 lands inside the first bucket (lower edge 0).
  EXPECT_NEAR(hist.Percentile(5.0), 0.5, 1e-9);
  // p99 lands in the last finite bucket.
  EXPECT_NEAR(hist.Percentile(99.0), 10.0 + 90.0 * 9.0 / 10.0, 1e-9);
}

TEST(MetricsTest, HistogramOverflowSaturatesAtLastBound) {
  Histogram hist({1.0, 2.0});
  for (int i = 0; i < 4; ++i) hist.Observe(100.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(99.0), 2.0);
}

TEST(MetricsTest, ExponentialBucketsShape) {
  const std::vector<double> bounds = ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(MetricsTest, RegistryReusesInstrumentsAndScrapes) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* c = registry.GetCounter("test.counter");
  EXPECT_EQ(c, registry.GetCounter("test.counter"));
  c->Reset();
  c->Increment(3);
  registry.GetGauge("test.gauge")->Set(2.5);
  Histogram* h = registry.GetHistogram("test.hist", {1.0, 10.0});
  h->Reset();
  h->Observe(0.5);
  const std::string scrape = registry.ScrapeText();
  EXPECT_NE(scrape.find("counter test.counter 3"), std::string::npos);
  EXPECT_NE(scrape.find("gauge test.gauge 2.5"), std::string::npos);
  EXPECT_NE(scrape.find("histogram test.hist count=1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sliding-window histogram

constexpr int64_t kSecond = 1000000000ll;

TEST(SlidingWindowTest, QuantilesConvergeOnInjectedDistribution) {
  // 30 s window, 10 slices; fine buckets so interpolation error is small.
  SlidingWindowHistogram hist(ExponentialBuckets(1.0, 1.25, 40),
                              30 * kSecond, 10);
  // Inject a known three-mode distribution, spread over 20 s (inside the
  // window): 50% at 10, 45% at 100, 5% at 500.
  Rng rng(11);
  const int64_t t0 = 1000 * kSecond;
  for (int i = 0; i < 4000; ++i) {
    const int64_t at = t0 + static_cast<int64_t>(rng.Uniform() * 20) * kSecond;
    const double u = rng.Uniform();
    hist.ObserveAt(u < 0.5 ? 10.0 : (u < 0.95 ? 100.0 : 500.0), at);
  }
  const HistogramSnapshot snap = hist.SnapshotAt(t0 + 20 * kSecond);
  EXPECT_EQ(snap.count, 4000);
  EXPECT_EQ(snap.window_ns, 30 * kSecond);
  // Bucketed quantiles land within one exponential bucket (factor 1.25) of
  // the true value.
  EXPECT_NEAR(snap.Percentile(50.0), 10.0, 10.0 * 0.25);
  EXPECT_NEAR(snap.Percentile(90.0), 100.0, 100.0 * 0.25);
  EXPECT_NEAR(snap.Percentile(99.0), 500.0, 500.0 * 0.25);
}

TEST(SlidingWindowTest, OldSamplesAgeOut) {
  SlidingWindowHistogram hist({1.0, 10.0, 100.0}, 10 * kSecond, 5);
  const int64_t t0 = 50 * kSecond;
  for (int i = 0; i < 100; ++i) hist.ObserveAt(5.0, t0);
  EXPECT_EQ(hist.SnapshotAt(t0).count, 100);
  // Still inside the window…
  EXPECT_EQ(hist.SnapshotAt(t0 + 9 * kSecond).count, 100);
  // …and fully outside it.
  EXPECT_EQ(hist.SnapshotAt(t0 + 11 * kSecond).count, 0);
  EXPECT_DOUBLE_EQ(hist.SnapshotAt(t0 + 11 * kSecond).Percentile(50.0), 0.0);
}

TEST(SlidingWindowTest, WindowSlidesSampleBySample) {
  SlidingWindowHistogram hist({1.0, 10.0, 100.0}, 10 * kSecond, 10);
  const int64_t t0 = 100 * kSecond;
  // One low sample per second for 10 s, then a high stream.  Snapshots are
  // taken in time order — the ring recycles slices as time advances, so the
  // past cannot be queried after later observations overwrite it.
  for (int i = 0; i < 10; ++i) hist.ObserveAt(0.5, t0 + i * kSecond);
  for (int i = 10; i < 15; ++i) hist.ObserveAt(50.0, t0 + i * kSecond);
  // Mid-transition: both populations visible.
  const HistogramSnapshot mid = hist.SnapshotAt(t0 + 14 * kSecond);
  EXPECT_GT(mid.count, 5);
  EXPECT_LT(mid.count, 15);
  // After the low batch ages out, only high samples remain.
  for (int i = 15; i < 20; ++i) hist.ObserveAt(50.0, t0 + i * kSecond);
  const HistogramSnapshot late = hist.SnapshotAt(t0 + 20 * kSecond);
  EXPECT_LE(late.count, 10);
  EXPECT_GT(late.Percentile(50.0), 10.0);
}

TEST(SlidingWindowTest, ConcurrentObserversStaySane) {
  SlidingWindowHistogram hist(ExponentialBuckets(1.0, 2.0, 10), 5 * kSecond,
                              5);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Observe(static_cast<double>(1 + (t + i) % 100));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Everything was observed "now", so nothing has aged out yet.
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(MetricsTest, SnapshotScalarsCarriesHistogramQuantiles) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Histogram* h = registry.GetHistogram("scalar.hist", {1.0, 10.0, 100.0});
  h->Reset();
  for (int i = 0; i < 100; ++i) h->Observe(5.0);
  SlidingWindowHistogram* s =
      registry.GetSlidingHistogram("scalar.sliding", {1.0, 10.0, 100.0});
  s->Reset();
  for (int i = 0; i < 50; ++i) s->Observe(50.0);
  const std::map<std::string, double> scalars = registry.SnapshotScalars();
  EXPECT_EQ(scalars.at("scalar.hist.count"), 100.0);
  EXPECT_GT(scalars.at("scalar.hist.p50"), 1.0);
  EXPECT_GT(scalars.at("scalar.hist.p95"), 1.0);
  EXPECT_GT(scalars.at("scalar.hist.p99"), 1.0);
  EXPECT_EQ(scalars.at("scalar.sliding.count"), 50.0);
  EXPECT_GT(scalars.at("scalar.sliding.p50"), 10.0);
}

TEST(MetricsTest, SnapshotHistogramsExposesBuckets) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Histogram* h = registry.GetHistogram("snap.hist", {1.0, 10.0});
  h->Reset();
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(500.0);
  const std::map<std::string, HistogramSnapshot> snaps =
      registry.SnapshotHistograms();
  const HistogramSnapshot& snap = snaps.at("snap.hist");
  ASSERT_EQ(snap.buckets.size(), 3u);
  EXPECT_EQ(snap.buckets[0], 1);
  EXPECT_EQ(snap.buckets[1], 1);
  EXPECT_EQ(snap.buckets[2], 1);  // overflow
  EXPECT_EQ(snap.count, 3);
  EXPECT_EQ(snap.window_ns, 0);  // cumulative
  EXPECT_DOUBLE_EQ(snap.sum, 505.5);
}

// ---------------------------------------------------------------------------
// Trace-summary duration percentiles

TEST(ChromeTraceTest, SummaryFillsDurationPercentiles) {
  std::vector<ParsedSpan> spans;
  // 100 spans of one name: 1..100 us.
  for (int i = 1; i <= 100; ++i) {
    ParsedSpan s;
    s.name = "op";
    s.category = "train";
    s.ts_us = i * 1000.0;
    s.dur_us = static_cast<double>(i);
    spans.push_back(s);
  }
  const TraceSummary summary = SummarizeTrace(spans);
  const SpanTotals& totals = summary.by_name.at("op");
  EXPECT_EQ(totals.count, 100);
  EXPECT_DOUBLE_EQ(totals.p50_us, 50.0);   // nearest rank
  EXPECT_DOUBLE_EQ(totals.p95_us, 95.0);
  EXPECT_DOUBLE_EQ(totals.p99_us, 99.0);
  EXPECT_DOUBLE_EQ(summary.by_category.at("train").p99_us, 99.0);
}

TEST(ChromeTraceTest, SingleSpanPercentilesEqualItsDuration) {
  ParsedSpan s;
  s.name = "solo";
  s.category = "eval";
  s.dur_us = 7.0;
  const TraceSummary summary = SummarizeTrace({s});
  EXPECT_DOUBLE_EQ(summary.by_name.at("solo").p50_us, 7.0);
  EXPECT_DOUBLE_EQ(summary.by_name.at("solo").p99_us, 7.0);
}

// ---------------------------------------------------------------------------
// JSON parser

TEST(JsonTest, ParsesEscapesAndStructure) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(
      R"({"a":[1,2.5,-3e2],"s":"q\"\\\nA","b":true,"n":null})", &doc,
      &error))
      << error;
  const JsonValue* a = doc.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[2].number, -300.0);
  EXPECT_EQ(doc.StringOr("s", ""), "q\"\\\nA");
  EXPECT_TRUE(doc.Find("b")->boolean);
  EXPECT_EQ(doc.Find("n")->type, JsonValue::Type::kNull);
  EXPECT_FALSE(ParseJson("{\"unterminated\":", &doc, &error));
}

TEST(JsonTest, UnicodeEscapesAndNonAscii) {
  JsonValue doc;
  std::string error;
  // \u escapes decode to UTF-8 (2- and 3-byte); raw multi-byte UTF-8
  // passes through untouched.
  ASSERT_TRUE(ParseJson(R"({"u":"A\u00e9 \u20ac","raw":"héllo"})", &doc,
                        &error))
      << error;
  EXPECT_EQ(doc.StringOr("u", ""), "A\xc3\xa9 \xe2\x82\xac");
  EXPECT_EQ(doc.StringOr("raw", ""), "héllo");
  // Malformed \u escapes fail instead of emitting garbage.
  EXPECT_FALSE(ParseJson(R"({"u":"\u12"})", &doc, &error));
  EXPECT_FALSE(ParseJson(R"({"u":"\uzzzz"})", &doc, &error));
}

TEST(JsonTest, DeeplyNestedArraysAndObjects) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(R"([[1,[2,[3]]],{"a":{"b":[{"c":4}]}}])", &doc,
                        &error))
      << error;
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.array.size(), 2u);
  EXPECT_DOUBLE_EQ(doc.array[0].array[1].array[1].array[0].number, 3.0);
  const JsonValue* a = doc.array[1].Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->Find("b")->array[0].NumberOr("c", 0.0), 4.0);
}

TEST(JsonTest, TruncatedInputsFailCleanly) {
  JsonValue doc;
  std::string error;
  for (const char* bad :
       {"", "{", "[1,2", R"({"a")", R"({"a":)", R"({"a":1,)", "\"unclosed",
        "[1,]", "{,}", "tru", "nul", "-", "1e", R"({"a":1}extra)"}) {
    error.clear();
    EXPECT_FALSE(ParseJson(bad, &doc, &error)) << "input: " << bad;
    EXPECT_FALSE(error.empty()) << "input: " << bad;
  }
}

TEST(JsonTest, NumbersAtPrecisionEdges) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(
      R"({"big":1e300,"tiny":-2.5e-300,"zero":0,"neg":-0.125})", &doc,
      &error))
      << error;
  EXPECT_DOUBLE_EQ(doc.NumberOr("big", 0.0), 1e300);
  EXPECT_DOUBLE_EQ(doc.NumberOr("tiny", 0.0), -2.5e-300);
  EXPECT_DOUBLE_EQ(doc.NumberOr("zero", 1.0), 0.0);
  EXPECT_DOUBLE_EQ(doc.NumberOr("neg", 0.0), -0.125);
}

// ---------------------------------------------------------------------------
// Telemetry golden run

data::SequenceDataset CycleDataset(int32_t num_items, int32_t num_users,
                                   int32_t seq_len) {
  Rng rng(3);
  data::SequenceDataset ds(num_items);
  for (int32_t u = 0; u < num_users; ++u) {
    int32_t cur = static_cast<int32_t>(rng.UniformInt(1, num_items));
    std::vector<int32_t> seq;
    for (int32_t t = 0; t < seq_len; ++t) {
      seq.push_back(cur);
      cur = cur % num_items + 1;
    }
    ds.AddUser(std::move(seq));
  }
  return ds;
}

TEST(TelemetryTest, VsanRunEmitsParsableJsonlWithAnnealedBeta) {
  const std::string path = ::testing::TempDir() + "/vsan_telemetry.jsonl";
  core::VsanConfig cfg;
  cfg.max_len = 8;
  cfg.d = 16;
  cfg.h1 = 1;
  cfg.h2 = 1;
  cfg.dropout = 0.0f;
  cfg.beta_max = 0.1f;
  cfg.anneal_steps = 5;  // short enough that epoch 0 is mid-anneal

  TrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 16;
  opts.learning_rate = 5e-3f;
  opts.seed = 19;
  TelemetryRecorder recorder(path);
  ASSERT_TRUE(recorder.ok());
  opts.telemetry = &recorder;

  std::vector<EpochStats> stats;
  opts.epoch_callback = [&](const EpochStats& s) { stats.push_back(s); };

  core::Vsan model(cfg);
  model.Fit(CycleDataset(12, 60, 8), opts);
  EXPECT_EQ(recorder.records_written(), 2);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_GT(stats[0].wall_ms, 0.0);
  EXPECT_GT(stats[0].batches, 0);
  EXPECT_GT(stats[0].grad_norm, 0.0);  // pre-clip norm was measured
  EXPECT_FLOAT_EQ(stats[0].learning_rate, 5e-3f);

  std::ifstream in(path);
  std::string line;
  std::vector<JsonValue> records;
  while (std::getline(in, line)) {
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(ParseJson(line, &doc, &error)) << error << "\n" << line;
    records.push_back(doc);
  }
  ASSERT_EQ(records.size(), 2u);

  const int64_t batches = stats[0].batches;
  for (int32_t e = 0; e < 2; ++e) {
    const JsonValue& rec = records[e];
    EXPECT_EQ(rec.NumberOr("epoch", -1), e);
    EXPECT_GT(rec.NumberOr("wall_ms", -1), 0.0);
    EXPECT_EQ(rec.NumberOr("batches", -1), batches);
    EXPECT_GT(rec.NumberOr("grad_norm", -1), 0.0);
    EXPECT_GT(rec.NumberOr("steps_per_sec", -1), 0.0);
    EXPECT_NEAR(rec.NumberOr("lr", -1), 5e-3, 1e-9);
    // Eq. 20 decomposition: loss = recon + beta * kl.
    const double loss = rec.NumberOr("loss", -1);
    const double recon = rec.NumberOr("recon", -1);
    const double kl = rec.NumberOr("kl", -1);
    EXPECT_GT(recon, 0.0);
    EXPECT_GE(kl, 0.0);
    EXPECT_GT(loss, 0.0);
    // Sec. IV-E linear anneal: the recorded beta is the one used at the
    // epoch's last step, step index = step_after_epoch - 1.
    const double step_after = rec.NumberOr("step", -1);
    EXPECT_EQ(step_after, static_cast<double>((e + 1) * batches));
    const float expected_beta =
        cfg.beta_max *
        std::min(1.0f, static_cast<float>(step_after - 1) /
                           static_cast<float>(cfg.anneal_steps));
    EXPECT_NEAR(rec.NumberOr("beta", -1), expected_beta, 1e-7);
  }
  // The anneal actually progressed between the two epochs.
  EXPECT_GT(records[1].NumberOr("beta", -1), records[0].NumberOr("beta", -1));
}

TEST(TelemetryTest, OmitsNegativeSentinelsAndRejectsBadPath) {
  const std::string path = ::testing::TempDir() + "/vsan_telemetry2.jsonl";
  TelemetryRecorder recorder(path);
  ASSERT_TRUE(recorder.ok());
  EpochRecord record;
  record.epoch = 0;
  record.loss = 1.5;
  record.wall_ms = 0.0;  // suppresses steps_per_sec
  record.batches = 4;
  record.step = 4;
  recorder.RecordEpoch(record);  // grad_norm/lr left at -1 -> omitted
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.find("grad_norm"), std::string::npos);
  EXPECT_EQ(line.find("\"lr\""), std::string::npos);
  EXPECT_EQ(line.find("steps_per_sec"), std::string::npos);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(line, &doc, &error)) << error;
  EXPECT_DOUBLE_EQ(doc.NumberOr("loss", -1), 1.5);

  TelemetryRecorder bad("/nonexistent-dir/telemetry.jsonl");
  EXPECT_FALSE(bad.ok());
  bad.RecordEpoch(record);  // must not crash
  EXPECT_EQ(bad.records_written(), 0);
}

TEST(TelemetryTest, EpochLinesCarryPeakRss) {
  const int64_t peak = ReadPeakRssKb();
  ASSERT_GT(peak, 0) << "VmHWM should be readable on Linux";
  const std::string path = ::testing::TempDir() + "/vsan_telemetry3.jsonl";
  TelemetryRecorder recorder(path);
  ASSERT_TRUE(recorder.ok());
  EpochRecord record;
  record.epoch = 0;
  record.loss = 1.0;
  record.batches = 1;
  recorder.RecordEpoch(record);
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(line, &doc, &error)) << error;
  // The high-water mark only grows, so the recorded sample is at least the
  // one taken above.
  EXPECT_GE(doc.NumberOr("peak_rss_kb", -1), static_cast<double>(peak));
}

}  // namespace
}  // namespace obs
}  // namespace vsan
