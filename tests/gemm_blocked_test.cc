// Correctness suite for the cache-blocked, register-tiled GEMM
// (src/tensor/gemm.cc) against the retained serial naive reference
// (ReferenceGemm).  The kernel's contract is stronger than "numerically
// close": because every output element accumulates its k contributions in
// ascending p order starting from the existing C value — regardless of
// transpose flags, thread count, or block sizes — the blocked result must
// be bitwise-identical to the reference on every shape tested here.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace vsan {
namespace {

struct Shape {
  int64_t m, k, n;
};

// Tiny, odd and prime extents: every combination of full tiles, partial
// edge tiles, single-element matrices and multi-block M ranges.
const Shape kShapes[] = {{1, 1, 1}, {3, 5, 7}, {17, 31, 13}, {129, 65, 33}};
const int kThreadCounts[] = {1, 2, 4};

class GemmBlockedTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ThreadPool::SetGlobalNumThreads(ThreadPool::DefaultNumThreads());
    SetGemmBlockSizes(GemmBlockSizes{});
  }
};

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  if (!a.SameShape(b)) return false;
  return std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

// Builds the operands for op(A)[m,k] * op(B)[k,n] under the given flags.
void MakeOperands(const Shape& s, bool trans_a, bool trans_b, Rng* rng,
                  Tensor* a, Tensor* b) {
  *a = Tensor::RandomNormal(trans_a ? std::vector<int64_t>{s.k, s.m}
                                    : std::vector<int64_t>{s.m, s.k},
                            rng);
  *b = Tensor::RandomNormal(trans_b ? std::vector<int64_t>{s.n, s.k}
                                    : std::vector<int64_t>{s.k, s.n},
                            rng);
}

Tensor RunReference(const Tensor& a, const Tensor& b, const Shape& s,
                    bool trans_a, bool trans_b) {
  Tensor c({s.m, s.n});
  ReferenceGemm(a.data(), b.data(), c.data(), s.m, s.n, s.k, trans_a,
                trans_b);
  return c;
}

TEST_F(GemmBlockedTest, BitwiseMatchesReferenceAllCombosShapesThreads) {
  int seed = 500;
  for (const Shape& s : kShapes) {
    for (bool trans_a : {false, true}) {
      for (bool trans_b : {false, true}) {
        Rng rng(++seed);
        Tensor a, b;
        MakeOperands(s, trans_a, trans_b, &rng, &a, &b);
        const Tensor ref = RunReference(a, b, s, trans_a, trans_b);
        for (int threads : kThreadCounts) {
          ThreadPool::SetGlobalNumThreads(threads);
          const Tensor got = MatMul2D(a, b, trans_a, trans_b);
          EXPECT_TRUE(BitwiseEqual(ref, got))
              << s.m << "x" << s.k << "x" << s.n << " trans_a=" << trans_a
              << " trans_b=" << trans_b << " threads=" << threads;
        }
      }
    }
  }
}

TEST_F(GemmBlockedTest, AccumulateFromNonZeroOutputBitwise) {
  // AccumulateMatMul2D is the backward-pass entry point: C starts non-zero
  // and the kernel must extend each element's addition chain, not restart
  // it.
  int seed = 900;
  for (const Shape& s : kShapes) {
    for (bool trans_a : {false, true}) {
      for (bool trans_b : {false, true}) {
        Rng rng(++seed);
        Tensor a, b;
        MakeOperands(s, trans_a, trans_b, &rng, &a, &b);
        const Tensor init = Tensor::RandomNormal({s.m, s.n}, &rng);
        Tensor ref = init;
        ReferenceGemm(a.data(), b.data(), ref.data(), s.m, s.n, s.k, trans_a,
                      trans_b);
        for (int threads : kThreadCounts) {
          ThreadPool::SetGlobalNumThreads(threads);
          Tensor got = init;
          AccumulateMatMul2D(a, b, trans_a, trans_b, &got);
          EXPECT_TRUE(BitwiseEqual(ref, got))
              << s.m << "x" << s.k << "x" << s.n << " trans_a=" << trans_a
              << " trans_b=" << trans_b << " threads=" << threads;
        }
      }
    }
  }
}

TEST_F(GemmBlockedTest, BlockSizesNeverChangeResults) {
  // Sweeping the tuning struct — including degenerate single-tile blocks
  // and values that need rounding up to micro-tile multiples — must not
  // change a single bit, because K blocking reloads C between K blocks and
  // M/N blocking never splits an element's accumulation chain.
  const Shape s{129, 65, 33};
  Rng rng(321);
  Tensor a, b;
  MakeOperands(s, /*trans_a=*/false, /*trans_b=*/true, &rng, &a, &b);
  const Tensor ref = RunReference(a, b, s, false, true);
  const GemmBlockSizes configs[] = {
      {6, 16, 1}, {6, 16, 8}, {7, 18, 5}, {48, 32, 16}, {600, 600, 600}};
  for (const GemmBlockSizes& bs : configs) {
    SetGemmBlockSizes(bs);
    for (int threads : kThreadCounts) {
      ThreadPool::SetGlobalNumThreads(threads);
      const Tensor got = MatMul2D(a, b, false, true);
      EXPECT_TRUE(BitwiseEqual(ref, got))
          << "mc=" << bs.mc << " nc=" << bs.nc << " kc=" << bs.kc
          << " threads=" << threads;
    }
  }
}

TEST_F(GemmBlockedTest, SetGemmBlockSizesRoundsUpToMicroTiles) {
  SetGemmBlockSizes({7, 18, 5});
  const GemmBlockSizes bs = GetGemmBlockSizes();
  EXPECT_EQ(bs.mc % 6, 0);
  EXPECT_EQ(bs.nc % 16, 0);
  EXPECT_GE(bs.mc, 7);
  EXPECT_GE(bs.nc, 18);
  EXPECT_EQ(bs.kc, 5);
  SetGemmBlockSizes({0, -3, 0});
  const GemmBlockSizes clamped = GetGemmBlockSizes();
  EXPECT_GE(clamped.mc, 1);
  EXPECT_GE(clamped.nc, 1);
  EXPECT_GE(clamped.kc, 1);
}

TEST_F(GemmBlockedTest, BatchedMatMulBitwiseMatchesPerBatchReference) {
  Rng rng(777);
  const int64_t batch = 5, m = 17, k = 13, n = 31;
  const Tensor a = Tensor::RandomNormal({batch, m, k}, &rng);
  const Tensor b = Tensor::RandomNormal({batch, k, n}, &rng);
  Tensor ref({batch, m, n});
  for (int64_t i = 0; i < batch; ++i) {
    ReferenceGemm(a.data() + i * m * k, b.data() + i * k * n,
                  ref.data() + i * m * n, m, n, k, false, false);
  }
  for (int threads : kThreadCounts) {
    ThreadPool::SetGlobalNumThreads(threads);
    EXPECT_TRUE(BitwiseEqual(ref, BatchedMatMul(a, b)))
        << "threads=" << threads;
  }
}

TEST_F(GemmBlockedTest, BroadcastBitwiseMatchesFlattenedReference) {
  Rng rng(778);
  const Tensor a = Tensor::RandomNormal({3, 11, 8}, &rng);
  const Tensor w = Tensor::RandomNormal({19, 8}, &rng);  // used transposed
  Tensor ref({3 * 11, 19});
  ReferenceGemm(a.data(), w.data(), ref.data(), 3 * 11, 19, 8, false, true);
  for (int threads : kThreadCounts) {
    ThreadPool::SetGlobalNumThreads(threads);
    const Tensor got = BatchedMatMulBroadcast(a, w, /*trans_w=*/true);
    EXPECT_TRUE(BitwiseEqual(ref, got.Reshaped({3 * 11, 19})))
        << "threads=" << threads;
  }
}

TEST_F(GemmBlockedTest, TransposeCombosAgreeWithEachOtherBitwise) {
  // Packing canonicalizes both operands, so the same product computed
  // through any transpose combo runs the identical accumulation chain.
  Rng rng(779);
  const Tensor a = Tensor::RandomNormal({33, 17}, &rng);
  const Tensor b = Tensor::RandomNormal({17, 29}, &rng);
  const Tensor at = Transpose2D(a);
  const Tensor bt = Transpose2D(b);
  const Tensor nn = MatMul2D(a, b);
  EXPECT_TRUE(BitwiseEqual(nn, MatMul2D(a, bt, false, true)));
  EXPECT_TRUE(BitwiseEqual(nn, MatMul2D(at, b, true, false)));
  EXPECT_TRUE(BitwiseEqual(nn, MatMul2D(at, bt, true, true)));
}

}  // namespace
}  // namespace vsan
