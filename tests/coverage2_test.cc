// Second coverage batch: kernel transpose paths, optimizer weight decay,
// tape pruning, synthetic noise injection, and checkpoint round-trips of
// newer config fields.

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/vsan.h"
#include "data/synthetic.h"
#include "optim/adam.h"
#include "optim/sgd.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace vsan {
namespace {

TEST(TensorOpsCoverage, BatchedMatMulTransB) {
  Rng rng(301);
  Tensor a = Tensor::RandomNormal({2, 3, 4}, &rng);
  Tensor b = Tensor::RandomNormal({2, 5, 4}, &rng);  // op(B) = B^T: [4, 5]
  Tensor c = BatchedMatMul(a, b, /*trans_a=*/false, /*trans_b=*/true);
  ASSERT_EQ(c.dim(1), 3);
  ASSERT_EQ(c.dim(2), 5);
  double acc = 0.0;
  for (int64_t p = 0; p < 4; ++p) acc += a.at(1, 2, p) * b.at(1, 4, p);
  EXPECT_NEAR(c.at(1, 2, 4), acc, 1e-4);
}

TEST(TensorOpsCoverage, AccumulateMatMulAllTransposeCombos) {
  Rng rng(302);
  Tensor a = Tensor::RandomNormal({3, 4}, &rng);
  Tensor b = Tensor::RandomNormal({4, 2}, &rng);
  // NN into zeroed output equals MatMul2D.
  Tensor out({3, 2});
  AccumulateMatMul2D(a, b, false, false, &out);
  Tensor ref = MatMul2D(a, b);
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_NEAR(out[i], ref[i], 1e-5);
  }
  // TT: out2 = a^T(4x3) ... use shapes that conform: a [3,4] as A^T -> [4,3],
  // b2 [3,5] as B^T means b2 is [5,3].
  Tensor b2 = Tensor::RandomNormal({5, 3}, &rng);
  Tensor out2({4, 5});
  AccumulateMatMul2D(a, b2, true, true, &out2);
  double acc = 0.0;
  for (int64_t p = 0; p < 3; ++p) acc += a.at(p, 1) * b2.at(2, p);
  EXPECT_NEAR(out2.at(1, 2), acc, 1e-4);
}

TEST(OptimCoverage, WeightDecayShrinksParameters) {
  // Zero gradient + weight decay: parameters decay toward zero.
  Variable x(Tensor::Full({4}, 2.0f), true);
  // Build a loss that gives exactly zero gradient to x (multiply by 0).
  Variable zero = Variable::Constant(Tensor::Zeros({4}));
  optim::Sgd::Options o;
  o.lr = 0.1f;
  o.weight_decay = 0.5f;
  optim::Sgd sgd({x}, o);
  for (int step = 0; step < 3; ++step) {
    Variable loss = ops::Sum(ops::Mul(x, zero));
    sgd.ZeroGrad();
    loss.Backward();
    sgd.Step();
  }
  // Each step multiplies by (1 - lr*decay) = 0.95.
  EXPECT_NEAR(x.value()[0], 2.0f * std::pow(0.95f, 3), 1e-5f);
}

TEST(OptimCoverage, AdamWeightDecayAlsoShrinks) {
  Variable x(Tensor::Full({2}, 1.0f), true);
  Variable zero = Variable::Constant(Tensor::Zeros({2}));
  optim::Adam::Options o;
  o.lr = 0.05f;
  o.weight_decay = 1.0f;
  optim::Adam adam({x}, o);
  const float before = x.value()[0];
  for (int step = 0; step < 5; ++step) {
    Variable loss = ops::Sum(ops::Mul(x, zero));
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(x.value()[0], before);
}

TEST(TapePruning, ConstantSubgraphsCarryNoParents) {
  Variable a = Variable::Constant(Tensor::Ones({3}));
  Variable b = Variable::Constant(Tensor::Ones({3}));
  Variable c = ops::Add(a, b);
  EXPECT_FALSE(c.requires_grad());
  EXPECT_TRUE(c.node()->parents.empty());  // pruned at construction
  // Mixing in a trainable leaf re-enables the tape.
  Variable w(Tensor::Ones({3}), true);
  Variable d = ops::Add(c, w);
  EXPECT_TRUE(d.requires_grad());
  EXPECT_EQ(d.node()->parents.size(), 2u);
}

TEST(SyntheticNoise, InterruptionsIntroduceOutOfCategoryItems) {
  data::SyntheticConfig base;
  base.num_users = 200;
  base.num_items = 100;
  base.num_categories = 10;
  base.min_categories_per_user = 1;
  base.max_categories_per_user = 1;  // pure single-category users
  base.min_seq_len = 20;
  base.max_seq_len = 20;
  base.seed = 5;

  auto out_of_cat_fraction = [&](double noise) {
    data::SyntheticConfig cfg = base;
    cfg.noise_prob = noise;
    data::SequenceDataset ds = data::GenerateSynthetic(cfg);
    int64_t out_of_cat = 0, total = 0;
    for (int32_t u = 0; u < ds.num_users(); ++u) {
      const auto& seq = ds.sequence(u);
      const int32_t cat0 =
          static_cast<int32_t>((static_cast<int64_t>(seq[0] - 1) * 10) / 100);
      for (int32_t item : seq) {
        const int32_t c =
            static_cast<int32_t>((static_cast<int64_t>(item - 1) * 10) / 100);
        out_of_cat += c != cat0;
        ++total;
      }
    }
    return static_cast<double>(out_of_cat) / total;
  };
  EXPECT_LT(out_of_cat_fraction(0.0), 0.01);
  EXPECT_NEAR(out_of_cat_fraction(0.2), 0.18, 0.06);  // ~noise * (9/10)
}

data::SequenceDataset CycleDataset(int32_t num_items, int32_t num_users,
                                   int32_t seq_len) {
  Rng rng(3);
  data::SequenceDataset ds(num_items);
  for (int32_t u = 0; u < num_users; ++u) {
    int32_t cur = static_cast<int32_t>(rng.UniformInt(1, num_items));
    std::vector<int32_t> seq;
    for (int32_t t = 0; t < seq_len; ++t) {
      seq.push_back(cur);
      cur = cur % num_items + 1;
    }
    ds.AddUser(std::move(seq));
  }
  return ds;
}

TEST(CheckpointCoverage, MultiHeadAndUntiedRoundTrip) {
  core::VsanConfig cfg;
  cfg.max_len = 6;
  cfg.d = 8;
  cfg.num_heads = 2;
  cfg.tie_output = false;
  core::Vsan model(cfg);
  TrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 16;
  model.Fit(CycleDataset(10, 30, 6), opts);
  const std::string path = ::testing::TempDir() + "/vsan_mh.ckpt";
  ASSERT_TRUE(model.Save(path).ok());
  auto loaded = core::Vsan::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->config().num_heads, 2);
  EXPECT_FALSE(loaded.value()->config().tie_output);
  EXPECT_EQ(loaded.value()->Score({1, 2, 3}), model.Score({1, 2, 3}));
  std::remove(path.c_str());
}

TEST(CheckpointCoverage, NextKAndBetaSurviveRoundTrip) {
  core::VsanConfig cfg;
  cfg.max_len = 6;
  cfg.d = 8;
  cfg.next_k = 3;
  cfg.beta_max = 0.05f;
  cfg.fixed_beta = 0.125f;
  core::Vsan model(cfg);
  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 16;
  model.Fit(CycleDataset(10, 30, 6), opts);
  const std::string path = ::testing::TempDir() + "/vsan_k3.ckpt";
  ASSERT_TRUE(model.Save(path).ok());
  auto loaded = core::Vsan::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->config().next_k, 3);
  EXPECT_NEAR(loaded.value()->config().beta_max, 0.05f, 1e-6f);
  EXPECT_NEAR(loaded.value()->config().fixed_beta, 0.125f, 1e-6f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vsan
