// Serving-plane tests (src/serve/): encoded-state cache LRU semantics and
// byte budget, dynamic-batching coalescing / partial flush / overload
// rejection / drain-on-stop, batched-encode bitwise equality against the
// per-query path (vsan override, sasrec override, default fallback),
// batched-scoring bitwise equality against the per-request head scan (both
// head layouts, per-caller fetch sizes), service responses
// bitwise-identical to the offline oracle (full scoring + TopNIndices;
// RetrievalIndex::Search for the quantized backend), and the HTTP daemon
// end to end: readiness gating, JSON round-trip, cache hits, HTTP 429
// under queue overflow, and graceful shutdown answering in-flight
// requests.  Labeled `serve` (reproduce.sh selector); the batcher/cache
// concurrency also runs under the ASan and TSan builds.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/vsan.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "eval/retrieval.h"
#include "models/gru4rec.h"
#include "models/sasrec.h"
#include "obs/http_server.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/batcher.h"
#include "serve/daemon.h"
#include "serve/service.h"
#include "serve/state_cache.h"
#include "tensor/int8_dot.h"

namespace vsan {
namespace serve {
namespace {

// ---------------------------------------------------------------------------
// HashHistory / EncodedStateCache

TEST(HashHistoryTest, DistinguishesContentAndOrder) {
  EXPECT_EQ(HashHistory({1, 2, 3}), HashHistory({1, 2, 3}));
  EXPECT_NE(HashHistory({1, 2, 3}), HashHistory({3, 2, 1}));
  EXPECT_NE(HashHistory({1, 2, 3}), HashHistory({1, 2}));
  EXPECT_NE(HashHistory({}), HashHistory({0}));
}

TEST(EncodedStateCacheTest, LruEvictionUnderByteBudget) {
  const std::vector<float> q1 = {1.0f, 2.0f};
  // Each entry charges sizeof(float)*2 + 96 = 104 bytes; budget 220 holds
  // exactly two.
  EncodedStateCache cache(220);
  cache.Insert(0, 1, 11, q1);
  cache.Insert(0, 2, 22, {3.0f, 4.0f});
  EXPECT_EQ(cache.stats().entries, 2);

  // Touch user 1 so user 2 becomes the LRU tail, then overflow.
  std::vector<float> out;
  EXPECT_TRUE(cache.Lookup(0, 1, 11, &out));
  EXPECT_EQ(out, q1);
  cache.Insert(0, 3, 33, {5.0f, 6.0f});

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_TRUE(cache.Lookup(0, 1, 11, &out));   // refreshed -> survived
  EXPECT_FALSE(cache.Lookup(0, 2, 22, &out));  // LRU tail -> evicted
  EXPECT_TRUE(cache.Lookup(0, 3, 33, &out));
  EXPECT_EQ(out, std::vector<float>({5.0f, 6.0f}));
}

TEST(EncodedStateCacheTest, KeyIsUserAndHistoryHash) {
  EncodedStateCache cache(1 << 20);
  cache.Insert(0, 7, HashHistory({1, 2}), {1.0f});
  std::vector<float> out;
  // Same user, different history: miss (the stale-state invalidation rule).
  EXPECT_FALSE(cache.Lookup(0, 7, HashHistory({1, 2, 9}), &out));
  // Different user, same history: miss.
  EXPECT_FALSE(cache.Lookup(0, 8, HashHistory({1, 2}), &out));
  EXPECT_TRUE(cache.Lookup(0, 7, HashHistory({1, 2}), &out));
}

TEST(EncodedStateCacheTest, ZeroBudgetDisablesCaching) {
  EncodedStateCache cache(0);
  cache.Insert(0, 1, 11, {1.0f});
  std::vector<float> out;
  EXPECT_FALSE(cache.Lookup(0, 1, 11, &out));
  EXPECT_EQ(cache.stats().entries, 0);
}

TEST(EncodedStateCacheTest, KeyedByGenerationAndPurgeable) {
  // The stale-cache-on-swap regression (state_cache.cc once admitted it
  // would serve a pre-swap encoding after a model swap): an entry written
  // under generation 0 must be invisible to generation 1, and a publish-
  // time purge must reclaim superseded bytes.
  EncodedStateCache cache(1 << 20);
  const std::vector<float> old_q = {1.0f, 2.0f};
  const std::vector<float> new_q = {9.0f, 8.0f};
  cache.Insert(0, 7, 11, old_q);
  std::vector<float> out;
  // The new generation can never hit the old generation's encoding...
  EXPECT_FALSE(cache.Lookup(1, 7, 11, &out));
  // ...while the old generation (an in-flight request) still can.
  EXPECT_TRUE(cache.Lookup(0, 7, 11, &out));
  EXPECT_EQ(out, old_q);
  // Both generations may coexist under the same (user, hash).
  cache.Insert(1, 7, 11, new_q);
  EXPECT_EQ(cache.stats().entries, 2);
  EXPECT_TRUE(cache.Lookup(1, 7, 11, &out));
  EXPECT_EQ(out, new_q);

  // Publish-time purge drops everything below the new generation and
  // returns the byte accounting to just the survivors.
  EXPECT_EQ(cache.PurgeGenerationsBelow(1), 1);
  EXPECT_FALSE(cache.Lookup(0, 7, 11, &out));
  EXPECT_TRUE(cache.Lookup(1, 7, 11, &out));
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.bytes, static_cast<int64_t>(2 * sizeof(float)) + 96);
}

// ---------------------------------------------------------------------------
// RequestBatcher

// Encode function that records every batch it sees and can be gated shut
// so tests control exactly when a flush completes.
struct RecordingEncoder {
  int64_t dim = 2;
  std::mutex mu;
  std::condition_variable cv;
  bool gate_open = true;
  std::vector<size_t> batch_sizes;
  std::atomic<int> encodes_started{0};

  RequestBatcher::EncodeFn fn() {
    return [this](const std::vector<std::vector<int32_t>>& fold_ins,
                  std::vector<float>* queries) {
      encodes_started.fetch_add(1);
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return gate_open; });
      batch_sizes.push_back(fold_ins.size());
      queries->resize(fold_ins.size() * static_cast<size_t>(dim));
      for (size_t i = 0; i < fold_ins.size(); ++i) {
        // query = [first item, history length]: lets callers verify they
        // received their own slice of the batched result.
        (*queries)[i * 2] = static_cast<float>(fold_ins[i][0]);
        (*queries)[i * 2 + 1] = static_cast<float>(fold_ins[i].size());
      }
      return true;
    };
  }
  void Close() {
    std::lock_guard<std::mutex> lock(mu);
    gate_open = false;
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      gate_open = true;
    }
    cv.notify_all();
  }
  void WaitForEncodeStart(int n) {
    while (encodes_started.load() < n) std::this_thread::yield();
  }
};

TEST(RequestBatcherTest, CoalescesConcurrentRequestsIntoOneFlush) {
  RecordingEncoder encoder;
  RequestBatcher::Options options;
  options.max_batch = 4;
  options.max_wait_us = 200 * 1000;  // far longer than the test runs
  RequestBatcher batcher(encoder.fn(), encoder.dim, options);
  batcher.Start();

  std::vector<std::thread> callers;
  std::vector<std::vector<float>> queries(4);
  std::vector<EncodeStatus> statuses(4, EncodeStatus::kError);
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&, i] {
      const std::vector<int32_t> history(static_cast<size_t>(i + 1),
                                         10 * (i + 1));
      statuses[static_cast<size_t>(i)] =
          batcher.Encode(history, &queries[static_cast<size_t>(i)]);
    });
  }
  for (std::thread& t : callers) t.join();
  batcher.Stop();

  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(statuses[static_cast<size_t>(i)], EncodeStatus::kOk);
    EXPECT_EQ(queries[static_cast<size_t>(i)][0],
              static_cast<float>(10 * (i + 1)));
    EXPECT_EQ(queries[static_cast<size_t>(i)][1], static_cast<float>(i + 1));
  }
  // The four requests arrived while the flush window was open, so they
  // coalesced: strictly fewer flushes than requests (the common case is 1,
  // but a caller landing after the first cv wakeup can split the batch).
  size_t total = 0;
  for (size_t s : encoder.batch_sizes) total += s;
  EXPECT_EQ(total, 4u);
  EXPECT_LT(encoder.batch_sizes.size(), 4u);
}

TEST(RequestBatcherTest, MaxWaitFlushesPartialBatch) {
  RecordingEncoder encoder;
  RequestBatcher::Options options;
  options.max_batch = 64;  // never reached
  options.max_wait_us = 500;
  RequestBatcher batcher(encoder.fn(), encoder.dim, options);
  batcher.Start();
  std::vector<float> query;
  ASSERT_EQ(batcher.Encode({42}, &query), EncodeStatus::kOk);
  EXPECT_EQ(query[0], 42.0f);
  batcher.Stop();
  ASSERT_EQ(encoder.batch_sizes.size(), 1u);
  EXPECT_EQ(encoder.batch_sizes[0], 1u);
}

TEST(RequestBatcherTest, QueueFullRejects) {
  RecordingEncoder encoder;
  encoder.Close();
  RequestBatcher::Options options;
  options.max_batch = 1;
  options.max_wait_us = 0;
  options.max_queue = 1;
  RequestBatcher batcher(encoder.fn(), encoder.dim, options);
  obs::MetricsRegistry::Global().GetCounter("serve.rejected")->Reset();
  batcher.Start();

  // First request: popped by the flush thread, blocked in the encoder.
  std::vector<float> q1, q2, q3;
  EncodeStatus s1 = EncodeStatus::kError;
  std::thread t1([&] { s1 = batcher.Encode({1}, &q1); });
  encoder.WaitForEncodeStart(1);
  // Second request: sits in the queue (depth 1 of 1).
  EncodeStatus s2 = EncodeStatus::kError;
  std::thread t2([&] { s2 = batcher.Encode({2}, &q2); });
  while (batcher.queue_depth() < 1) std::this_thread::yield();
  // Third request: queue full -> immediate rejection, counted.
  EXPECT_EQ(batcher.Encode({3}, &q3), EncodeStatus::kRejected);
  EXPECT_EQ(
      obs::MetricsRegistry::Global().GetCounter("serve.rejected")->value(),
      1);

  encoder.Open();
  t1.join();
  t2.join();
  EXPECT_EQ(s1, EncodeStatus::kOk);
  EXPECT_EQ(s2, EncodeStatus::kOk);
  batcher.Stop();
}

TEST(RequestBatcherTest, StopDrainsQueueAndAnswersEveryCaller) {
  RecordingEncoder encoder;
  encoder.Close();
  RequestBatcher::Options options;
  options.max_batch = 2;
  options.max_wait_us = 0;
  options.max_queue = 64;
  RequestBatcher batcher(encoder.fn(), encoder.dim, options);
  batcher.Start();

  constexpr int kCallers = 6;
  std::vector<std::thread> callers;
  std::vector<std::vector<float>> queries(kCallers);
  std::vector<EncodeStatus> statuses(kCallers, EncodeStatus::kError);
  for (int i = 0; i < kCallers; ++i) {
    callers.emplace_back([&, i] {
      statuses[static_cast<size_t>(i)] = batcher.Encode(
          {i + 1}, &queries[static_cast<size_t>(i)]);
    });
  }
  encoder.WaitForEncodeStart(1);  // flush thread is mid-batch, rest queued

  // Stop with the gate still shut: the drain must wait for the in-flight
  // flush and then work through the backlog, answering everyone.
  std::thread stopper([&] { batcher.Stop(); });
  encoder.Open();
  stopper.join();
  for (std::thread& t : callers) t.join();

  for (int i = 0; i < kCallers; ++i) {
    ASSERT_EQ(statuses[static_cast<size_t>(i)], EncodeStatus::kOk) << i;
    EXPECT_EQ(queries[static_cast<size_t>(i)][0], static_cast<float>(i + 1));
  }
  // After Stop, new submissions are turned away.
  std::vector<float> late;
  EXPECT_EQ(batcher.Encode({9}, &late), EncodeStatus::kShutdown);
}

// ---------------------------------------------------------------------------
// ScoreBatcher

// A batched scoring flush (one M=batch GEMM over the head) must produce,
// for every row, bitwise the candidates of the per-request ascending-FMA
// scan — in both head layouts, with per-caller fetch sizes.
TEST(ScoreBatcherTest, BatchedGemmBitwiseEqualsPerQueryScan) {
  const int64_t dim = 12;
  const int64_t rows = 201;  // row 0 is the padding item
  std::mt19937 rng(5);
  std::uniform_real_distribution<float> uniform(-1.0f, 1.0f);
  std::vector<float> weights(static_cast<size_t>(rows * dim));
  std::vector<float> bias(static_cast<size_t>(rows));
  for (float& w : weights) w = uniform(rng);
  for (float& b : bias) b = uniform(rng);
  constexpr int kCallers = 8;
  std::vector<std::vector<float>> queries(kCallers);
  for (auto& q : queries) {
    q.resize(static_cast<size_t>(dim));
    for (float& v : q) v = uniform(rng);
  }

  for (const bool items_are_rows : {true, false}) {
    FactorizedHead head;
    head.dim = dim;
    head.num_rows = rows;
    head.weights = weights.data();  // reinterpreted [dim, rows] when strided
    head.items_are_rows = items_are_rows;
    head.bias = bias.data();

    ScoreBatcher::Options options;
    options.max_batch = kCallers;
    options.max_wait_us = 200 * 1000;  // coalesce all callers
    options.metric_prefix = "serve.score";
    ScoreBatcher scorer(head, options);
    scorer.Start();

    std::vector<std::vector<eval::ScoredItem>> tops(kCallers);
    std::vector<EncodeStatus> statuses(kCallers, EncodeStatus::kError);
    std::vector<std::thread> callers;
    for (int i = 0; i < kCallers; ++i) {
      callers.emplace_back([&, i] {
        statuses[static_cast<size_t>(i)] =
            scorer.Score(queries[static_cast<size_t>(i)], /*fetch=*/5 + i,
                         &tops[static_cast<size_t>(i)]);
      });
    }
    for (std::thread& t : callers) t.join();
    scorer.Stop();
    EXPECT_LT(scorer.flushes(), kCallers);  // they coalesced

    for (int i = 0; i < kCallers; ++i) {
      ASSERT_EQ(statuses[static_cast<size_t>(i)], EncodeStatus::kOk) << i;
      // Oracle: the inline per-request scan.
      const std::vector<float>& q = queries[static_cast<size_t>(i)];
      eval::TopKCollector collector(5 + i);
      for (int64_t row = 1; row < rows; ++row) {
        float score = items_are_rows
                          ? internal::DotFma(q.data(), weights.data() +
                                             row * dim, dim)
                          : internal::DotFmaStrided(q.data(),
                                                    weights.data() + row,
                                                    dim, rows);
        score += bias[static_cast<size_t>(row)];
        collector.Offer(static_cast<int32_t>(row), score);
      }
      std::vector<eval::ScoredItem> expected;
      collector.DrainSortedTo(&expected);
      const std::vector<eval::ScoredItem>& got = tops[static_cast<size_t>(i)];
      ASSERT_EQ(got.size(), expected.size()) << i;
      for (size_t r = 0; r < expected.size(); ++r) {
        ASSERT_EQ(got[r].index, expected[r].index) << i << " rank " << r;
        ASSERT_EQ(got[r].score, expected[r].score) << i << " rank " << r;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// EncodeBatchInto bitwise equality

template <typename Model>
void ExpectBatchEncodeBitwiseEqual(const Model& model,
                                   const std::vector<std::vector<int32_t>>&
                                       fold_ins,
                                   int64_t dim) {
  std::vector<float> batched;
  ASSERT_TRUE(model.EncodeBatchInto(fold_ins, &batched));
  ASSERT_EQ(batched.size(), fold_ins.size() * static_cast<size_t>(dim));
  for (size_t i = 0; i < fold_ins.size(); ++i) {
    std::vector<float> single;
    ASSERT_TRUE(model.EncodeQueryInto(fold_ins[i], &single));
    ASSERT_EQ(single.size(), static_cast<size_t>(dim));
    for (int64_t j = 0; j < dim; ++j) {
      ASSERT_EQ(single[static_cast<size_t>(j)],
                batched[i * static_cast<size_t>(dim) +
                        static_cast<size_t>(j)])
          << "query " << i << " dim " << j;
    }
  }
}

std::vector<std::vector<int32_t>> MixedLengthFoldIns(int32_t num_items) {
  return {
      {1},
      {5, 17, 3},
      {2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2},  // longer than short max_len
      {num_items, 1, num_items / 2},
      {4, 9, 16, 25},
  };
}

TEST(EncodeBatchIntoTest, VsanBatchedForwardBitwiseEqualsPerQuery) {
  data::SyntheticConfig data_config;
  data_config.num_users = 50;
  data_config.num_items = 80;
  data_config.seed = 9;
  const data::SequenceDataset dataset = data::GenerateSynthetic(data_config);
  core::VsanConfig config;
  config.max_len = 8;
  config.d = 8;
  core::Vsan model(config);
  TrainOptions train;
  train.epochs = 1;
  train.batch_size = 16;
  model.Fit(dataset, train);
  ExpectBatchEncodeBitwiseEqual(model, MixedLengthFoldIns(80), config.d);
}

TEST(EncodeBatchIntoTest, SasRecBatchedForwardBitwiseEqualsPerQuery) {
  data::SyntheticConfig data_config;
  data_config.num_users = 50;
  data_config.num_items = 80;
  data_config.seed = 11;
  const data::SequenceDataset dataset = data::GenerateSynthetic(data_config);
  models::SasRec::Config config;
  config.max_len = 8;
  config.d = 8;
  models::SasRec model(config);
  TrainOptions train;
  train.epochs = 1;
  train.batch_size = 16;
  model.Fit(dataset, train);
  ExpectBatchEncodeBitwiseEqual(model, MixedLengthFoldIns(80), config.d);
}

TEST(EncodeBatchIntoTest, DefaultFallbackMatchesPerQuery) {
  // Gru4Rec does not override EncodeBatchInto: the base-class loop must
  // produce exactly the concatenated per-query vectors.
  data::SyntheticConfig data_config;
  data_config.num_users = 40;
  data_config.num_items = 60;
  data_config.seed = 13;
  const data::SequenceDataset dataset = data::GenerateSynthetic(data_config);
  models::Gru4Rec::Config config;
  config.max_len = 8;
  config.d = 8;
  config.hidden = 8;
  models::Gru4Rec model(config);
  TrainOptions train;
  train.epochs = 1;
  train.batch_size = 16;
  model.Fit(dataset, train);
  ExpectBatchEncodeBitwiseEqual(model, MixedLengthFoldIns(60), config.d);
}

// ---------------------------------------------------------------------------
// RecommendService vs the offline oracle

class ServiceOracleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticConfig data_config;
    data_config.num_users = 60;
    data_config.num_items = 100;
    data_config.seed = 21;
    dataset_ = data::GenerateSynthetic(data_config);
    core::VsanConfig config;
    config.max_len = 10;
    config.d = 12;
    model_ = std::make_unique<core::Vsan>(config);
    TrainOptions train;
    train.epochs = 1;
    train.batch_size = 16;
    model_->Fit(dataset_, train);
  }

  std::unique_ptr<RequestBatcher> MakeBatcher(int32_t max_batch) {
    RequestBatcher::Options options;
    options.max_batch = max_batch;
    options.max_wait_us = 200;
    auto batcher = std::make_unique<RequestBatcher>(
        [this](const std::vector<std::vector<int32_t>>& fold_ins,
               std::vector<float>* queries) {
          return model_->EncodeBatchInto(fold_ins, queries);
        },
        12, options);
    batcher->Start();
    return batcher;
  }

  std::unique_ptr<ScoreBatcher> MakeScorer(int32_t max_batch) {
    FactorizedHead head;
    EXPECT_TRUE(model_->GetFactorizedHead(&head));
    ScoreBatcher::Options options;
    options.max_batch = max_batch;
    options.max_wait_us = 200;
    options.metric_prefix = "serve.score";
    auto scorer = std::make_unique<ScoreBatcher>(head, options);
    scorer->Start();
    return scorer;
  }

  data::SequenceDataset dataset_;
  std::unique_ptr<core::Vsan> model_;
};

TEST_F(ServiceOracleTest, ExactBackendBitwiseEqualsFullScoringTopN) {
  auto batcher = MakeBatcher(4);
  auto scorer = MakeScorer(4);
  EncodedStateCache cache(1 << 20);
  ServiceOptions options;
  options.exclude_seen = false;
  RecommendService service(model_.get(), model_->num_items(),
                           /*index=*/nullptr, batcher.get(), scorer.get(),
                           &cache, options);

  for (int32_t user = 0; user < 10; ++user) {
    RecommendRequest request;
    request.user_id = user;
    request.history = dataset_.sequence(user);
    request.k = 10;
    RecommendResult result;
    ASSERT_EQ(service.Recommend(request, &result), ServeStatus::kOk);
    ASSERT_EQ(result.items.size(), 10u);

    // Offline oracle: the model's full score vector ranked by the
    // evaluator's own top-n.  Served items, order, and scores must all be
    // bitwise-identical.
    std::vector<float> scores;
    model_->ScoreInto(request.history, &scores);
    const std::vector<int32_t> expected = eval::TopNIndices(
        scores, std::vector<bool>(scores.size(), false), request.k);
    ASSERT_EQ(expected.size(), result.items.size());
    for (size_t r = 0; r < expected.size(); ++r) {
      ASSERT_EQ(result.items[r].index, expected[r]) << "rank " << r;
      ASSERT_EQ(result.items[r].score,
                scores[static_cast<size_t>(expected[r])])
          << "rank " << r;
    }
  }
  batcher->Stop();
}

TEST_F(ServiceOracleTest, QuantizedBackendBitwiseEqualsOfflineSearch) {
  FactorizedHead head;
  ASSERT_TRUE(model_->GetFactorizedHead(&head));
  eval::RetrievalOptions retrieval;
  retrieval.backend = eval::RetrievalBackend::kQuantized;
  const eval::RetrievalIndex index = eval::RetrievalIndex::Build(head,
                                                                 retrieval);
  auto batcher = MakeBatcher(4);
  EncodedStateCache cache(1 << 20);
  ServiceOptions options;  // exclude_seen = true, the serving default
  RecommendService service(model_.get(), model_->num_items(), &index,
                           batcher.get(), /*scorer=*/nullptr, &cache, options);

  for (int32_t user = 0; user < 10; ++user) {
    RecommendRequest request;
    request.user_id = user;
    request.history = dataset_.sequence(user);
    request.k = 10;
    RecommendResult result;
    ASSERT_EQ(service.Recommend(request, &result), ServeStatus::kOk);

    // Offline oracle: encode per-query, over-fetch the same index, apply
    // the same exclusion filter.
    std::vector<float> query;
    ASSERT_TRUE(model_->EncodeQueryInto(request.history, &query));
    std::vector<int32_t> seen_sorted = request.history;
    std::sort(seen_sorted.begin(), seen_sorted.end());
    eval::RetrievalIndex::Scratch scratch;
    std::vector<eval::ScoredItem> fetched;
    index.Search(query.data(),
                 request.k + static_cast<int32_t>(
                                 std::set<int32_t>(request.history.begin(),
                                                   request.history.end())
                                     .size()),
                 &scratch, &fetched);
    std::vector<eval::ScoredItem> expected;
    for (const eval::ScoredItem& item : fetched) {
      if (static_cast<int32_t>(expected.size()) >= request.k) break;
      if (std::binary_search(seen_sorted.begin(), seen_sorted.end(),
                             item.index)) {
        continue;
      }
      expected.push_back(item);
    }
    ASSERT_EQ(result.items.size(), expected.size());
    for (size_t r = 0; r < expected.size(); ++r) {
      ASSERT_EQ(result.items[r].index, expected[r].index) << "rank " << r;
      ASSERT_EQ(result.items[r].score, expected[r].score) << "rank " << r;
      // The serving default never recommends something already in the
      // user's history.
      EXPECT_FALSE(std::binary_search(seen_sorted.begin(), seen_sorted.end(),
                                      result.items[r].index));
    }
  }
  batcher->Stop();
}

TEST_F(ServiceOracleTest, CacheHitReturnsIdenticalResponse) {
  auto batcher = MakeBatcher(4);
  auto scorer = MakeScorer(4);
  EncodedStateCache cache(1 << 20);
  ServiceOptions options;
  RecommendService service(model_.get(), model_->num_items(),
                           /*index=*/nullptr, batcher.get(), scorer.get(),
                           &cache, options);
  RecommendRequest request;
  request.user_id = 3;
  request.history = dataset_.sequence(3);
  request.k = 8;
  RecommendResult cold, warm;
  ASSERT_EQ(service.Recommend(request, &cold), ServeStatus::kOk);
  ASSERT_EQ(service.Recommend(request, &warm), ServeStatus::kOk);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(warm.cache_hit);
  ASSERT_EQ(cold.items.size(), warm.items.size());
  for (size_t r = 0; r < cold.items.size(); ++r) {
    EXPECT_EQ(cold.items[r].index, warm.items[r].index);
    EXPECT_EQ(cold.items[r].score, warm.items[r].score);
  }
  batcher->Stop();
}

TEST_F(ServiceOracleTest, RejectsMalformedRequests) {
  auto batcher = MakeBatcher(1);
  EncodedStateCache cache(0);
  ServiceOptions options;
  options.max_k = 50;
  RecommendService service(model_.get(), model_->num_items(),
                           /*index=*/nullptr, batcher.get(),
                           /*scorer=*/nullptr, &cache, options);
  RecommendResult result;
  RecommendRequest request;
  request.user_id = 1;
  request.history = {1, 2, 3};
  request.k = 0;
  EXPECT_EQ(service.Recommend(request, &result), ServeStatus::kInvalid);
  request.k = 51;
  EXPECT_EQ(service.Recommend(request, &result), ServeStatus::kInvalid);
  request.k = 10;
  request.history = {};
  EXPECT_EQ(service.Recommend(request, &result), ServeStatus::kInvalid);
  request.history = {0};  // padding item is not a valid interaction
  EXPECT_EQ(service.Recommend(request, &result), ServeStatus::kInvalid);
  request.history = {model_->num_items() + 1};
  EXPECT_EQ(service.Recommend(request, &result), ServeStatus::kInvalid);
  batcher->Stop();
}

// ---------------------------------------------------------------------------
// ServeDaemon over HTTP (needs the real server: VSAN_OBS builds only)

#if VSAN_OBS_ENABLED

// Minimal deterministic model for daemon-level tests where the interesting
// behavior is queueing, not ranking: a gateable EncodeBatchInto lets tests
// hold the flush mid-encode and observe 429s and drains deterministically.
class StubModel : public SequentialRecommender {
 public:
  StubModel() : weights_(static_cast<size_t>(kRows * kDim)) {
    for (size_t i = 0; i < weights_.size(); ++i) {
      weights_[i] = 0.001f * static_cast<float>((i * 37) % 101);
    }
  }

  std::string name() const override { return "stub"; }
  void Fit(const data::SequenceDataset&, const TrainOptions&) override {}
  std::vector<float> Score(const std::vector<int32_t>&) const override {
    return std::vector<float>(static_cast<size_t>(kRows), 0.0f);
  }
  bool GetFactorizedHead(FactorizedHead* head) const override {
    head->dim = kDim;
    head->num_rows = kRows;
    head->weights = weights_.data();
    head->items_are_rows = true;
    head->bias = nullptr;
    return true;
  }
  bool EncodeQueryInto(const std::vector<int32_t>& fold_in,
                       std::vector<float>* query) const override {
    query->assign(static_cast<size_t>(kDim), 0.0f);
    for (size_t i = 0; i < fold_in.size(); ++i) {
      (*query)[i % static_cast<size_t>(kDim)] +=
          0.01f * static_cast<float>(fold_in[i]);
    }
    return true;
  }
  bool EncodeBatchInto(const std::vector<std::vector<int32_t>>& fold_ins,
                       std::vector<float>* queries) const override {
    encodes_started_.fetch_add(1);
    encode_rows_.fetch_add(static_cast<int>(fold_ins.size()));
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return gate_open_; });
    }
    return SequentialRecommender::EncodeBatchInto(fold_ins, queries);
  }

  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    gate_open_ = false;
  }
  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      gate_open_ = true;
    }
    cv_.notify_all();
  }
  void WaitForEncodeStart(int n) const {
    while (encodes_started_.load() < n) std::this_thread::yield();
  }
  // Requests the flush thread has sliced out of the queue and carried into
  // EncodeBatchInto (counted before the gate, so gated rows are included).
  int encode_rows() const { return encode_rows_.load(); }

  static constexpr int64_t kDim = 4;
  static constexpr int64_t kRows = 51;  // 50 items + padding row

 private:
  std::vector<float> weights_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool gate_open_ = true;
  mutable std::atomic<int> encodes_started_{0};
  mutable std::atomic<int> encode_rows_{0};
};

int PostRecommend(int port, const std::string& body, std::string* response) {
  int status = 0;
  EXPECT_TRUE(obs::HttpPost("127.0.0.1", port, "/recommend", body,
                            "application/json", &status, response));
  return status;
}

TEST(ServeDaemonTest, ReadinessGateAndJsonRoundTrip) {
  StubModel model;
  DaemonOptions options;
  ServeDaemon daemon(&model, 50, options);
  ASSERT_TRUE(daemon.StartHttp());

  // Before Activate: health says loading, traffic is refused.
  int status = 0;
  std::string body;
  ASSERT_TRUE(obs::HttpGet("127.0.0.1", daemon.port(), "/healthz", &status,
                           &body));
  EXPECT_EQ(status, 503);
  std::string response;
  EXPECT_EQ(PostRecommend(daemon.port(), "{\"user\": 1, \"history\": [1]}",
                          &response),
            503);

  daemon.Activate();
  ASSERT_TRUE(obs::HttpGet("127.0.0.1", daemon.port(), "/healthz", &status,
                           &body));
  EXPECT_EQ(status, 200);

  EXPECT_EQ(PostRecommend(daemon.port(),
                          "{\"user\": 7, \"history\": [3, 1, 4], \"k\": 5}",
                          &response),
            200);
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(response, &doc, &error)) << error;
  EXPECT_EQ(doc.NumberOr("user", -1), 7.0);
  const obs::JsonValue* items = doc.Find("items");
  ASSERT_NE(items, nullptr);
  ASSERT_EQ(items->array.size(), 5u);

  // The JSON scores round-trip bitwise to what the service computes.
  RecommendRequest request;
  request.user_id = 7;
  request.history = {3, 1, 4};
  request.k = 5;
  RecommendResult oracle;
  ASSERT_EQ(daemon.service()->Recommend(request, &oracle), ServeStatus::kOk);
  for (size_t r = 0; r < 5; ++r) {
    const obs::JsonValue& item = items->array[r];
    EXPECT_EQ(item.NumberOr("item", -1),
              static_cast<double>(oracle.items[r].index));
    EXPECT_EQ(static_cast<float>(item.NumberOr("score", 0.0)),
              oracle.items[r].score);
  }

  // Malformed requests map to 400.
  EXPECT_EQ(PostRecommend(daemon.port(), "not json", &response), 400);
  EXPECT_EQ(PostRecommend(daemon.port(), "{\"user\": 1}", &response), 400);
  EXPECT_EQ(PostRecommend(daemon.port(),
                          "{\"user\": 1, \"history\": [9999]}", &response),
            400);
  // Cache hit on an identical repeat.
  EXPECT_EQ(PostRecommend(daemon.port(),
                          "{\"user\": 7, \"history\": [3, 1, 4], \"k\": 5}",
                          &response),
            200);
  EXPECT_NE(response.find("\"cache_hit\": true"), std::string::npos);
  daemon.Shutdown();
}

TEST(ServeDaemonTest, QueueOverflowReturns429) {
  StubModel model;
  model.CloseGate();
  DaemonOptions options;
  options.handler_threads = 4;
  options.cache_bytes = 0;  // every request must reach the batcher
  options.batcher.max_batch = 1;
  options.batcher.max_wait_us = 0;
  options.batcher.max_queue = 1;
  ServeDaemon daemon(&model, 50, options);
  obs::MetricsRegistry::Global().GetCounter("serve.rejected")->Reset();
  ASSERT_TRUE(daemon.StartHttp());
  daemon.Activate();

  // First request occupies the encoder; second fills the queue.
  std::string r1, r2;
  int s1 = 0, s2 = 0;
  std::thread t1([&] {
    s1 = PostRecommend(daemon.port(), "{\"user\": 1, \"history\": [1]}", &r1);
  });
  model.WaitForEncodeStart(1);
  std::thread t2([&] {
    s2 = PostRecommend(daemon.port(), "{\"user\": 2, \"history\": [2]}", &r2);
  });
  while (daemon.batcher()->queue_depth() < 1) std::this_thread::yield();

  // Third request: queue full -> HTTP 429, counted in serve.rejected.
  std::string r3;
  EXPECT_EQ(
      PostRecommend(daemon.port(), "{\"user\": 3, \"history\": [3]}", &r3),
      429);
  EXPECT_GE(
      obs::MetricsRegistry::Global().GetCounter("serve.rejected")->value(),
      1);

  model.OpenGate();
  t1.join();
  t2.join();
  EXPECT_EQ(s1, 200);
  EXPECT_EQ(s2, 200);
  daemon.Shutdown();
}

TEST(ServeDaemonTest, GracefulShutdownAnswersInFlightRequests) {
  StubModel model;
  model.CloseGate();
  DaemonOptions options;
  options.handler_threads = 3;
  options.cache_bytes = 0;
  options.batcher.max_batch = 2;
  options.batcher.max_wait_us = 0;
  ServeDaemon daemon(&model, 50, options);
  ASSERT_TRUE(daemon.StartHttp());
  daemon.Activate();

  // Three requests in flight, all blocked behind the encoder gate.
  std::vector<std::thread> clients;
  std::vector<int> statuses(3, 0);
  std::vector<std::string> responses(3);
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&, i] {
      statuses[static_cast<size_t>(i)] = PostRecommend(
          daemon.port(),
          "{\"user\": " + std::to_string(i) + ", \"history\": [" +
              std::to_string(i + 1) + "]}",
          &responses[static_cast<size_t>(i)]);
    });
  }
  // Wait until all three are provably admitted — sliced into the (gated)
  // encoder or sitting in its queue — before starting Shutdown.  Waiting on
  // encode-start alone races: a request still ahead of the handler's
  // readiness check when Shutdown flips it would be turned away with a 503.
  // The slice removes a request from the queue (under the queue lock)
  // strictly before the encoder counts it, so this sum never double-counts.
  while (model.encode_rows() + daemon.batcher()->queue_depth() < 3) {
    std::this_thread::yield();
  }

  // Shutdown while they are in flight; open the gate so the drain can run.
  std::thread shutdown([&] { daemon.Shutdown(); });
  model.OpenGate();
  shutdown.join();
  for (std::thread& t : clients) t.join();

  // Every accepted request received a real 200 with a full body — nothing
  // was dropped on the floor by the SIGTERM path.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(statuses[static_cast<size_t>(i)], 200) << i;
    EXPECT_NE(responses[static_cast<size_t>(i)].find("\"items\": ["),
              std::string::npos)
        << i;
  }
}

#endif  // VSAN_OBS_ENABLED

}  // namespace
}  // namespace serve
}  // namespace vsan
