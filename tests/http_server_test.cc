// Tests for the live observability plane: the Prometheus exposition
// writer/parser pair, the embedded HTTP/1.1 metrics server (/metrics,
// /healthz, /trace), concurrent scrapers against a training run, and the
// socket substrate.  Labeled `http` (reproduce.sh selector) and runs under
// the ASan/TSan builds — concurrent scrape-vs-train is exactly the traffic
// the server must survive race-free.

#include <atomic>
#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/vsan.h"
#include "data/dataset.h"
#include "obs/http_server.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "util/rng.h"
#include "util/socket.h"

namespace vsan {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Prometheus text format

TEST(PrometheusTest, NameMapping) {
  EXPECT_EQ(PrometheusName("pool.acquire.hits"), "vsan_pool_acquire_hits");
  EXPECT_EQ(PrometheusName("train.step_ms"), "vsan_train_step_ms");
  EXPECT_EQ(PrometheusName("weird-name!x"), "vsan_weird_name_x");
}

TEST(PrometheusTest, WriterEmitsAllInstrumentKinds) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  registry.GetCounter("prom.requests")->Increment(7);
  registry.GetGauge("prom.depth")->Set(1.5);
  Histogram* h = registry.GetHistogram("prom.lat_us", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(500.0);
  SlidingWindowHistogram* s =
      registry.GetSlidingHistogram("prom.win_us", {1.0, 10.0});
  s->Observe(5.0);

  const std::string text = WritePrometheusText(registry);
  EXPECT_NE(text.find("# TYPE vsan_prom_requests_total counter\n"
                      "vsan_prom_requests_total 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("vsan_prom_depth 1.5"), std::string::npos);
  // Cumulative le-buckets, +Inf last, then sum/count and quantile gauges.
  EXPECT_NE(text.find("vsan_prom_lat_us_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("vsan_prom_lat_us_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("vsan_prom_lat_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("vsan_prom_lat_us_count 3"), std::string::npos);
  EXPECT_NE(text.find("vsan_prom_lat_us_p50 "), std::string::npos);
  // Sliding windows carry the window label on bucket lines.
  EXPECT_NE(text.find("vsan_prom_win_us_bucket{le=\"1\",window=\"30s\"} 0"),
            std::string::npos);
  registry.Reset();
}

TEST(PrometheusTest, WriterParserRoundTrip) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  registry.GetCounter("rt.count")->Increment(42);
  registry.GetGauge("rt.gauge")->Set(-2.25);
  Histogram* h = registry.GetHistogram("rt.hist", {1.0, 10.0});
  for (int i = 0; i < 10; ++i) h->Observe(5.0);

  std::vector<PrometheusSample> samples;
  std::map<std::string, std::string> types;
  std::string error;
  ASSERT_TRUE(ParsePrometheusText(WritePrometheusText(registry), &samples,
                                  &types, &error))
      << error;
  EXPECT_EQ(types.at("vsan_rt_count_total"), "counter");
  EXPECT_EQ(types.at("vsan_rt_gauge"), "gauge");
  EXPECT_EQ(types.at("vsan_rt_hist"), "histogram");
  std::map<std::string, double> plain;
  double inf_bucket = -1.0;
  for (const PrometheusSample& sample : samples) {
    if (sample.labels.empty()) plain[sample.name] = sample.value;
    if (sample.name == "vsan_rt_hist_bucket" &&
        sample.labels.at("le") == "+Inf") {
      inf_bucket = sample.value;
    }
  }
  EXPECT_DOUBLE_EQ(plain.at("vsan_rt_count_total"), 42.0);
  EXPECT_DOUBLE_EQ(plain.at("vsan_rt_gauge"), -2.25);
  EXPECT_DOUBLE_EQ(plain.at("vsan_rt_hist_count"), 10.0);
  EXPECT_DOUBLE_EQ(inf_bucket, 10.0);
  registry.Reset();
}

TEST(PrometheusTest, ParserHandlesLabelEscapesAndRejectsGarbage) {
  std::vector<PrometheusSample> samples;
  std::map<std::string, std::string> types;
  std::string error;
  ASSERT_TRUE(ParsePrometheusText(
      "# a plain comment\n"
      "m{a=\"x\\\\y\",b=\"line\\nbreak\",c=\"qu\\\"ote\"} 3\n"
      "plain 1.5e3\n"
      "inf_val +Inf\n",
      &samples, &types, &error))
      << error;
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].labels.at("a"), "x\\y");
  EXPECT_EQ(samples[0].labels.at("b"), "line\nbreak");
  EXPECT_EQ(samples[0].labels.at("c"), "qu\"ote");
  EXPECT_DOUBLE_EQ(samples[1].value, 1500.0);
  EXPECT_TRUE(std::isinf(samples[2].value));

  EXPECT_FALSE(ParsePrometheusText("name_without_value\n", &samples, &types,
                                   &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParsePrometheusText("m{unterminated=\"x\n", &samples, &types,
                                   &error));
  EXPECT_FALSE(ParsePrometheusText("m bogus\n", &samples, &types, &error));
}

// ---------------------------------------------------------------------------
// Socket substrate

TEST(SocketTest, ListenConnectEcho) {
  ListenSocket listener;
  ASSERT_TRUE(listener.Listen(0));  // ephemeral port, read back
  ASSERT_GT(listener.port(), 0);
  std::thread server([&listener] {
    Socket conn = listener.Accept();
    ASSERT_TRUE(conn.valid());
    char buf[64];
    const int64_t n = conn.Recv(buf, sizeof(buf));
    ASSERT_GT(n, 0);
    ASSERT_TRUE(conn.SendAll(std::string(buf, static_cast<size_t>(n))));
  });
  Socket client = TcpConnect("127.0.0.1", listener.port());
  ASSERT_TRUE(client.valid());
  ASSERT_TRUE(client.SendAll("ping"));
  char buf[64];
  const int64_t n = client.Recv(buf, sizeof(buf));
  EXPECT_EQ(std::string(buf, static_cast<size_t>(n)), "ping");
  server.join();
}

TEST(SocketTest, ConnectToClosedPortFails) {
  // Grab an ephemeral port, close it, then connect to the now-dead port.
  int dead_port = 0;
  {
    ListenSocket listener;
    ASSERT_TRUE(listener.Listen(0));
    dead_port = listener.port();
  }
  Socket conn = TcpConnect("127.0.0.1", dead_port);
  EXPECT_FALSE(conn.valid());
}

#if VSAN_OBS_ENABLED

// ---------------------------------------------------------------------------
// HTTP server

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(server_.Start({}));  // port 0 = ephemeral
    ASSERT_GT(server_.port(), 0);
  }
  HttpServer server_;
};

TEST_F(HttpServerTest, HealthzAndUnknownPaths) {
  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet("127.0.0.1", server_.port(), "/healthz", &status,
                      &body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok\n");
  ASSERT_TRUE(HttpGet("127.0.0.1", server_.port(), "/nope", &status, &body));
  EXPECT_EQ(status, 404);
}

TEST_F(HttpServerTest, MetricsServesParsableExposition) {
  MetricsRegistry::Global().GetCounter("http_test.hits")->Increment(5);
  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet("127.0.0.1", server_.port(), "/metrics", &status,
                      &body));
  EXPECT_EQ(status, 200);
  std::vector<PrometheusSample> samples;
  std::map<std::string, std::string> types;
  std::string error;
  ASSERT_TRUE(ParsePrometheusText(body, &samples, &types, &error)) << error;
  bool found = false;
  for (const PrometheusSample& sample : samples) {
    if (sample.name == "vsan_http_test_hits_total" && sample.value >= 5.0) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << body;
}

TEST_F(HttpServerTest, MalformedAndUnsupportedRequests) {
  // Raw garbage instead of an HTTP request line.
  {
    Socket conn = TcpConnect("127.0.0.1", server_.port());
    ASSERT_TRUE(conn.valid());
    ASSERT_TRUE(conn.SendAll("complete garbage\r\n\r\n"));
    std::string raw;
    ASSERT_TRUE(conn.RecvUntilClosed(&raw));
    EXPECT_NE(raw.find("400"), std::string::npos);
  }
  // Well-formed but non-GET.
  {
    Socket conn = TcpConnect("127.0.0.1", server_.port());
    ASSERT_TRUE(conn.valid());
    ASSERT_TRUE(conn.SendAll("POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n"));
    std::string raw;
    ASSERT_TRUE(conn.RecvUntilClosed(&raw));
    EXPECT_NE(raw.find("405"), std::string::npos);
  }
  // Error responses count into http.errors.
  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet("127.0.0.1", server_.port(), "/metrics", &status,
                      &body));
  EXPECT_NE(body.find("vsan_http_errors_total"), std::string::npos);
}

TEST_F(HttpServerTest, CustomRouteAndQueryDecoding) {
  HttpServer server;
  server.Handle("/echo", [](const HttpRequest& request) {
    HttpResponse response;
    const auto it = request.query.find("msg");
    response.body = it == request.query.end() ? "none" : it->second;
    return response;
  });
  ASSERT_TRUE(server.Start({}));
  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/echo?msg=hi%20there",
                      &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "hi there");
  server.Stop();
}

TEST_F(HttpServerTest, TraceEndpointReturnsChromeJson) {
  Tracer::Global().StopSession();  // ensure no session is active
  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet("127.0.0.1", server_.port(), "/trace?ms=50", &status,
                      &body));
  EXPECT_EQ(status, 200);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(body, &doc, &error)) << error;
  ASSERT_TRUE(doc.is_object());
  EXPECT_NE(doc.Find("traceEvents"), nullptr);
  // Bad window is a client error, not a hung handler.
  ASSERT_TRUE(HttpGet("127.0.0.1", server_.port(), "/trace?ms=999999",
                      &status, &body));
  EXPECT_EQ(status, 400);
}

TEST_F(HttpServerTest, TraceConflictsWithActiveSession) {
  Tracer::Global().StartSession({});
  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet("127.0.0.1", server_.port(), "/trace?ms=50", &status,
                      &body));
  EXPECT_EQ(status, 409);
  Tracer::Global().StopSession();
}

TEST_F(HttpServerTest, StopIsIdempotentAndRestartable) {
  server_.Stop();
  server_.Stop();
  EXPECT_FALSE(server_.running());
  HttpServer second;
  ASSERT_TRUE(second.Start({}));
  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet("127.0.0.1", second.port(), "/healthz", &status,
                      &body));
  EXPECT_EQ(status, 200);
  second.Stop();
}

// The acceptance scenario: /metrics stays a valid exposition and every
// scrape succeeds while a real training run hammers the registry from the
// training thread and its ParallelFor shards — with 4 concurrent scrapers.
TEST(HttpLiveTest, ConcurrentScrapersDuringTraining) {
  MetricsRegistry::Global().Reset();
  HttpServer server;
  ASSERT_TRUE(server.Start({}));

  Rng rng(29);
  data::SequenceDataset dataset(40);
  for (int u = 0; u < 60; ++u) {
    std::vector<int32_t> seq;
    for (int t = 0; t < 12; ++t) {
      seq.push_back(static_cast<int32_t>(rng.UniformInt(1, 39)));
    }
    dataset.AddUser(std::move(seq));
  }

  std::atomic<bool> done{false};
  std::atomic<int64_t> scrapes{0};
  std::atomic<int64_t> failures{0};
  std::vector<std::thread> scrapers;
  for (int i = 0; i < 4; ++i) {
    scrapers.emplace_back([&server, &done, &scrapes, &failures] {
      while (!done.load(std::memory_order_acquire)) {
        int status = 0;
        std::string body;
        if (!HttpGet("127.0.0.1", server.port(), "/metrics", &status,
                     &body) ||
            status != 200) {
          failures.fetch_add(1);
          continue;
        }
        std::vector<PrometheusSample> samples;
        std::string error;
        if (!ParsePrometheusText(body, &samples, nullptr, &error)) {
          failures.fetch_add(1);
        }
        scrapes.fetch_add(1);
      }
    });
  }

  core::VsanConfig config;
  config.max_len = 12;
  config.d = 8;
  core::Vsan model(config);
  TrainOptions options;
  options.epochs = 3;
  options.batch_size = 16;
  model.Fit(dataset, options);

  done.store(true, std::memory_order_release);
  for (std::thread& t : scrapers) t.join();
  server.Stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(scrapes.load(), 0);
  // The training run itself must have shown up in the scraped registry.
  const std::map<std::string, double> scalars =
      MetricsRegistry::Global().SnapshotScalars();
  EXPECT_GT(scalars.at("train.steps"), 0.0);
  EXPECT_GT(scalars.at("train.step_ms.count"), 0.0);
}

#else  // !VSAN_OBS_ENABLED

TEST(HttpDisabledTest, ServerRefusesToStart) {
  HttpServer server;
  EXPECT_FALSE(server.Start({}));
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
}

#endif  // VSAN_OBS_ENABLED

}  // namespace
}  // namespace obs
}  // namespace vsan
