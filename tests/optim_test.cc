#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "optim/adam.h"
#include "optim/sgd.h"
#include "util/rng.h"

namespace vsan {
namespace optim {
namespace {

// Minimizes ||x - target||^2 with the given optimizer; returns final x.
template <typename Opt>
Tensor MinimizeQuadratic(Opt* opt, Variable* x, const Tensor& target,
                         int steps) {
  Variable t = Variable::Constant(target);
  for (int i = 0; i < steps; ++i) {
    Variable diff = ops::Sub(*x, t);
    Variable loss = ops::Sum(ops::Mul(diff, diff));
    opt->ZeroGrad();
    loss.Backward();
    opt->Step();
  }
  return x->value();
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Variable x(Tensor::FromVector({3}, {5, -4, 2}), true);
  Sgd::Options o;
  o.lr = 0.1f;
  Sgd sgd({x}, o);
  Tensor target = Tensor::FromVector({3}, {1, 2, 3});
  Tensor result = MinimizeQuadratic(&sgd, &x, target, 100);
  for (int64_t i = 0; i < 3; ++i) EXPECT_NEAR(result[i], target[i], 1e-3f);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  Variable a(Tensor::FromVector({1}, {10}), true);
  Variable b(Tensor::FromVector({1}, {10}), true);
  Sgd::Options plain;
  plain.lr = 0.01f;
  Sgd opt_plain({a}, plain);
  Sgd::Options mom = plain;
  mom.momentum = 0.9f;
  Sgd opt_mom({b}, mom);
  Tensor target = Tensor::FromVector({1}, {0});
  Tensor ra = MinimizeQuadratic(&opt_plain, &a, target, 30);
  Tensor rb = MinimizeQuadratic(&opt_mom, &b, target, 30);
  EXPECT_LT(std::abs(rb[0]), std::abs(ra[0]));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Variable x(Tensor::FromVector({2}, {8, -7}), true);
  Adam::Options o;
  o.lr = 0.2f;
  Adam adam({x}, o);
  Tensor target = Tensor::FromVector({2}, {-1, 4});
  Tensor result = MinimizeQuadratic(&adam, &x, target, 200);
  for (int64_t i = 0; i < 2; ++i) EXPECT_NEAR(result[i], target[i], 1e-2f);
}

TEST(AdamTest, SolvesLinearRegression) {
  // y = 2a - 3b fit from 64 random points.
  Rng rng(5);
  Tensor inputs = Tensor::RandomNormal({64, 2}, &rng);
  Tensor targets({64, 1});
  for (int64_t i = 0; i < 64; ++i) {
    targets.at(i, 0) = 2.0f * inputs.at(i, 0) - 3.0f * inputs.at(i, 1);
  }
  Variable w(Tensor::Zeros({2, 1}), true);
  Adam::Options o;
  o.lr = 0.1f;
  Adam adam({w}, o);
  Variable x = Variable::Constant(inputs);
  Variable y = Variable::Constant(targets);
  for (int step = 0; step < 300; ++step) {
    Variable diff = ops::Sub(ops::MatMul(x, w), y);
    Variable loss = ops::Mean(ops::Mul(diff, diff));
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
  }
  EXPECT_NEAR(w.value().at(0, 0), 2.0f, 0.05f);
  EXPECT_NEAR(w.value().at(1, 0), -3.0f, 0.05f);
}

TEST(AdamTest, SkipsParametersWithoutGradients) {
  Variable used(Tensor::FromVector({1}, {1}), true);
  Variable unused(Tensor::FromVector({1}, {7}), true);
  Adam::Options o;
  Adam adam({used, unused}, o);
  Variable loss = ops::Sum(ops::Mul(used, used));
  adam.ZeroGrad();
  loss.Backward();
  adam.Step();
  EXPECT_FLOAT_EQ(unused.value()[0], 7.0f);  // untouched
  EXPECT_NE(used.value()[0], 1.0f);          // updated
}

TEST(OptimizerTest, ClipGradNormScalesLargeGradients) {
  Variable x(Tensor::FromVector({2}, {0, 0}), true);
  // loss = 300*x0 + 400*x1 -> grad (300, 400), norm 500.
  Variable coef = Variable::Constant(Tensor::FromVector({2}, {300, 400}));
  Adam::Options o;
  Adam adam({x}, o);
  adam.ZeroGrad();
  ops::Sum(ops::Mul(x, coef)).Backward();
  const float pre = adam.ClipGradNorm(5.0f);
  EXPECT_NEAR(pre, 500.0f, 0.5f);
  const Tensor& g = x.grad();
  EXPECT_NEAR(std::sqrt(g[0] * g[0] + g[1] * g[1]), 5.0f, 1e-3f);
  // Direction preserved.
  EXPECT_NEAR(g[1] / g[0], 400.0f / 300.0f, 1e-3f);
}

TEST(OptimizerTest, ClipLeavesSmallGradientsAlone) {
  Variable x(Tensor::FromVector({1}, {0}), true);
  Adam::Options o;
  Adam adam({x}, o);
  adam.ZeroGrad();
  ops::Sum(x).Backward();
  adam.ClipGradNorm(10.0f);
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
}

TEST(OptimizerTest, ZeroGradClearsAll) {
  Variable x(Tensor::FromVector({1}, {1}), true);
  Adam::Options o;
  Adam adam({x}, o);
  ops::Sum(x).Backward();
  ASSERT_TRUE(x.has_grad());
  adam.ZeroGrad();
  EXPECT_FALSE(x.has_grad());
}

}  // namespace
}  // namespace optim
}  // namespace vsan
