// Locks down the determinism contract of the thread-pool rollout: every
// parallelized kernel, the autograd backward passes built on them, and
// EvaluateRanking must produce bitwise-identical results at thread counts
// 1, 2 and 4 on fixed-seed inputs.

#include <cstring>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "eval/evaluator.h"
#include "tensor/tensor_ops.h"
#include "testing/gradcheck.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace vsan {
namespace {

const int kThreadCounts[] = {1, 2, 4};

// Restores the default global pool after each test.
class ParallelEquivalenceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ThreadPool::SetGlobalNumThreads(ThreadPool::DefaultNumThreads());
  }
};

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  if (!a.SameShape(b)) return false;
  return std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

// Runs `fn` once per thread count and asserts every result is bitwise
// identical to the single-threaded one.
void ExpectSameAcrossThreadCounts(const std::function<Tensor()>& fn,
                                  const char* what) {
  ThreadPool::SetGlobalNumThreads(1);
  const Tensor serial = fn();
  for (int threads : kThreadCounts) {
    ThreadPool::SetGlobalNumThreads(threads);
    const Tensor parallel = fn();
    EXPECT_TRUE(BitwiseEqual(serial, parallel))
        << what << " differs at " << threads << " threads";
  }
}

TEST_F(ParallelEquivalenceTest, MatMul2DAllTransposeCombos) {
  Rng rng(101);
  // Odd sizes: not divisible by any tested thread count.
  const Tensor a = Tensor::RandomNormal({33, 17}, &rng);
  const Tensor b = Tensor::RandomNormal({17, 29}, &rng);
  const Tensor at = Transpose2D(a);
  const Tensor bt = Transpose2D(b);
  ExpectSameAcrossThreadCounts([&] { return MatMul2D(a, b); }, "NN");
  ExpectSameAcrossThreadCounts([&] { return MatMul2D(a, bt, false, true); },
                               "NT");
  ExpectSameAcrossThreadCounts([&] { return MatMul2D(at, b, true, false); },
                               "TN");
  ExpectSameAcrossThreadCounts([&] { return MatMul2D(at, bt, true, true); },
                               "TT");
}

TEST_F(ParallelEquivalenceTest, MatMul2DLargeEnoughToActuallyShard) {
  Rng rng(102);
  const Tensor a = Tensor::RandomNormal({67, 64}, &rng);
  const Tensor b = Tensor::RandomNormal({64, 61}, &rng);
  ExpectSameAcrossThreadCounts([&] { return MatMul2D(a, b); }, "large NN");
}

TEST_F(ParallelEquivalenceTest, BatchedMatMul) {
  Rng rng(103);
  const Tensor a = Tensor::RandomNormal({5, 13, 9}, &rng);
  const Tensor b = Tensor::RandomNormal({5, 9, 7}, &rng);
  ExpectSameAcrossThreadCounts([&] { return BatchedMatMul(a, b); },
                               "batched NN");
  const Tensor bt = TransposeLast2(b);
  ExpectSameAcrossThreadCounts(
      [&] { return BatchedMatMul(a, bt, false, true); }, "batched NT");
  const Tensor at = TransposeLast2(a);
  ExpectSameAcrossThreadCounts(
      [&] { return BatchedMatMul(at, b, true, false); }, "batched TN");
}

TEST_F(ParallelEquivalenceTest, BatchedMatMulBroadcast) {
  Rng rng(104);
  const Tensor a = Tensor::RandomNormal({3, 11, 8}, &rng);
  const Tensor w = Tensor::RandomNormal({8, 19}, &rng);
  ExpectSameAcrossThreadCounts([&] { return BatchedMatMulBroadcast(a, w); },
                               "broadcast");
  const Tensor wt = Transpose2D(w);
  ExpectSameAcrossThreadCounts(
      [&] { return BatchedMatMulBroadcast(a, wt, true); }, "broadcast T");
}

TEST_F(ParallelEquivalenceTest, AccumulateMatMul2D) {
  Rng rng(105);
  const Tensor a = Tensor::RandomNormal({21, 10}, &rng);
  const Tensor g = Tensor::RandomNormal({21, 15}, &rng);
  const Tensor init = Tensor::RandomNormal({10, 15}, &rng);
  ExpectSameAcrossThreadCounts(
      [&] {
        Tensor out = init;  // accumulation on top of non-zero contents
        AccumulateMatMul2D(a, g, /*trans_a=*/true, /*trans_b=*/false, &out);
        return out;
      },
      "accumulate");
}

TEST_F(ParallelEquivalenceTest, SoftmaxLastDim) {
  Rng rng(106);
  const Tensor x = Tensor::RandomNormal({37, 257}, &rng);
  ExpectSameAcrossThreadCounts([&] { return SoftmaxLastDim(x); }, "softmax");
}

TEST_F(ParallelEquivalenceTest, MatMulBackwardBitwiseAcrossThreadCounts) {
  Rng rng(107);
  const Tensor a0 = Tensor::RandomNormal({19, 12}, &rng);
  const Tensor b0 = Tensor::RandomNormal({12, 23}, &rng);
  auto grads = [&](Tensor* ga, Tensor* gb) {
    Variable a(a0, /*requires_grad=*/true);
    Variable b(b0, /*requires_grad=*/true);
    Variable loss = ops::Mean(ops::MatMul(a, b));
    loss.Backward();
    *ga = a.grad();
    *gb = b.grad();
  };
  ThreadPool::SetGlobalNumThreads(1);
  Tensor ga_serial, gb_serial;
  grads(&ga_serial, &gb_serial);
  for (int threads : kThreadCounts) {
    ThreadPool::SetGlobalNumThreads(threads);
    Tensor ga, gb;
    grads(&ga, &gb);
    EXPECT_TRUE(BitwiseEqual(ga_serial, ga)) << "dA at " << threads;
    EXPECT_TRUE(BitwiseEqual(gb_serial, gb)) << "dB at " << threads;
  }
}

TEST_F(ParallelEquivalenceTest, MatMul2DGradcheckUnderPool) {
  // Finite-difference check of the matmul backward while the pool is
  // active: the analytic gradients must stay correct, not merely stable.
  ThreadPool::SetGlobalNumThreads(4);
  Rng rng(108);
  const Tensor a = Tensor::RandomNormal({4, 3}, &rng);
  const Tensor b = Tensor::RandomNormal({3, 5}, &rng);
  testing::ExpectGradientsClose(
      [](const std::vector<Variable>& vars) {
        return ops::Mean(ops::MatMul(vars[0], vars[1]));
      },
      {a, b});
}

// Deterministic model: score of item i is a hash-like but fixed function of
// i and the last fold-in item, so rankings are stable and user-specific.
class FixedScoreModel : public SequentialRecommender {
 public:
  explicit FixedScoreModel(int32_t num_items) : num_items_(num_items) {}
  std::string name() const override { return "FixedScore"; }
  void Fit(const data::SequenceDataset&, const TrainOptions&) override {}
  std::vector<float> Score(const std::vector<int32_t>& fold_in) const override {
    std::vector<float> scores(num_items_ + 1, 0.0f);
    const int32_t last = fold_in.back();
    for (int32_t i = 1; i <= num_items_; ++i) {
      scores[i] = static_cast<float>((i * 37 + last * 13) % 101);
    }
    return scores;
  }

 private:
  int32_t num_items_;
};

std::vector<data::HeldOutUser> MakeUsers(int32_t count, int32_t num_items) {
  Rng rng(2024);
  std::vector<data::HeldOutUser> users(count);
  for (int32_t u = 0; u < count; ++u) {
    for (int i = 0; i < 6; ++i) {
      users[u].fold_in.push_back(
          static_cast<int32_t>(rng.UniformInt(1, num_items)));
    }
    for (int i = 0; i < 2; ++i) {
      users[u].holdout.push_back(
          static_cast<int32_t>(rng.UniformInt(1, num_items)));
    }
  }
  return users;
}

TEST_F(ParallelEquivalenceTest, EvaluateRankingBitwiseAcrossThreadCounts) {
  const int32_t num_items = 200;
  FixedScoreModel model(num_items);
  const std::vector<data::HeldOutUser> users = MakeUsers(17, num_items);

  for (int32_t negatives : {0, 50}) {
    eval::EvalOptions opts;
    opts.cutoffs = {5, 10};
    opts.num_sampled_negatives = negatives;

    ThreadPool::SetGlobalNumThreads(1);
    const eval::EvalResult serial = eval::EvaluateRanking(model, users, opts);
    for (int threads : kThreadCounts) {
      ThreadPool::SetGlobalNumThreads(threads);
      const eval::EvalResult parallel =
          eval::EvaluateRanking(model, users, opts);
      for (int32_t n : opts.cutoffs) {
        // Bitwise: the merge is serial in user order at every thread count.
        EXPECT_DOUBLE_EQ(serial.precision.at(n), parallel.precision.at(n))
            << "precision@" << n << " negatives=" << negatives << " threads="
            << threads;
        EXPECT_DOUBLE_EQ(serial.recall.at(n), parallel.recall.at(n))
            << "recall@" << n;
        EXPECT_DOUBLE_EQ(serial.ndcg.at(n), parallel.ndcg.at(n))
            << "ndcg@" << n;
      }
    }
  }
}

TEST_F(ParallelEquivalenceTest, ScoreBatchMatchesSerialScoring) {
  const int32_t num_items = 50;
  FixedScoreModel model(num_items);
  std::vector<std::vector<int32_t>> fold_ins;
  for (int32_t u = 1; u <= 9; ++u) fold_ins.push_back({u, u + 1});

  const auto serial = ScoreBatch(model, fold_ins, /*parallel=*/false);
  for (int threads : kThreadCounts) {
    ThreadPool::SetGlobalNumThreads(threads);
    const auto parallel = ScoreBatch(model, fold_ins, /*parallel=*/true);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t u = 0; u < serial.size(); ++u) {
      EXPECT_EQ(parallel[u], serial[u]) << "user " << u;
    }
  }
}

}  // namespace
}  // namespace vsan
