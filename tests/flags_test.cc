#include "util/flags.h"

#include <gtest/gtest.h>

namespace vsan {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagParser(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, EqualsForm) {
  FlagParser f = Parse({"--epochs=20", "--lr=0.01"});
  EXPECT_EQ(f.GetInt("epochs", 0), 20);
  EXPECT_DOUBLE_EQ(f.GetDouble("lr", 0), 0.01);
}

TEST(FlagParserTest, SpaceForm) {
  FlagParser f = Parse({"--model", "vsan", "--d", "64"});
  EXPECT_EQ(f.GetString("model"), "vsan");
  EXPECT_EQ(f.GetInt("d", 0), 64);
}

TEST(FlagParserTest, BareFlagIsTrue) {
  FlagParser f = Parse({"--verbose"});
  EXPECT_TRUE(f.GetBool("verbose"));
  EXPECT_FALSE(f.GetBool("quiet"));
}

TEST(FlagParserTest, ExplicitFalse) {
  FlagParser f = Parse({"--tie=false", "--mask=0"});
  EXPECT_FALSE(f.GetBool("tie", true));
  EXPECT_FALSE(f.GetBool("mask", true));
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser f = Parse({"train", "--epochs=5", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "train");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(FlagParserTest, DefaultsWhenMissing) {
  FlagParser f = Parse({});
  EXPECT_EQ(f.GetString("x", "def"), "def");
  EXPECT_EQ(f.GetInt("x", 7), 7);
  EXPECT_DOUBLE_EQ(f.GetDouble("x", 2.5), 2.5);
}

TEST(FlagParserTest, UnparsableNumbersFallBackToDefault) {
  FlagParser f = Parse({"--epochs=abc"});
  EXPECT_EQ(f.GetInt("epochs", 9), 9);
}

TEST(FlagParserTest, HasDetectsPresence) {
  FlagParser f = Parse({"--save=x.ckpt"});
  EXPECT_TRUE(f.Has("save"));
  EXPECT_FALSE(f.Has("load"));
}

TEST(FlagParserTest, UnqueriedFlagsReportTypos) {
  FlagParser f = Parse({"--epocs=3", "--model=vsan"});
  (void)f.GetString("model");
  const auto unqueried = f.UnqueriedFlags();
  ASSERT_EQ(unqueried.size(), 1u);
  EXPECT_EQ(unqueried[0], "epocs");
}

TEST(FlagParserTest, NegativeNumberAsValue) {
  FlagParser f = Parse({"--beta=-1.0"});
  EXPECT_DOUBLE_EQ(f.GetDouble("beta", 0), -1.0);
}

}  // namespace
}  // namespace vsan
