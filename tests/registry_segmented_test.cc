// Tests for the model registry, popularity-segmented evaluation, and a
// configuration-fuzz robustness sweep over VSAN.

#include <cmath>

#include <gtest/gtest.h>

#include "core/vsan.h"
#include "data/dataset.h"
#include "eval/segmented.h"
#include "models/registry.h"
#include "util/rng.h"

namespace vsan {
namespace {

data::SequenceDataset CycleDataset(int32_t num_items, int32_t num_users,
                                   int32_t seq_len) {
  Rng rng(3);
  data::SequenceDataset ds(num_items);
  for (int32_t u = 0; u < num_users; ++u) {
    int32_t cur = static_cast<int32_t>(rng.UniformInt(1, num_items));
    std::vector<int32_t> seq;
    for (int32_t t = 0; t < seq_len; ++t) {
      seq.push_back(cur);
      cur = cur % num_items + 1;
    }
    ds.AddUser(std::move(seq));
  }
  return ds;
}

TEST(RegistryTest, CreatesEveryRegisteredModel) {
  models::ModelSizing sizing;
  sizing.d = 8;
  sizing.max_len = 6;
  for (const std::string& name : models::RegisteredModelNames()) {
    auto model = models::CreateModel(name, sizing);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_FALSE(model->name().empty());
  }
}

TEST(RegistryTest, NamesAreCaseInsensitive) {
  models::ModelSizing sizing;
  auto a = models::CreateModel("VSAN", sizing);
  auto b = models::CreateModel("vsan", sizing);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->name(), b->name());
}

TEST(RegistryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(models::CreateModel("netflix-prize-winner", {}), nullptr);
}

// As a class, every registered model must train and produce well-formed
// scores on a tiny corpus (parameterized smoke sweep).
class RegistryTrainSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryTrainSweep, FitAndScoreSmoke) {
  models::ModelSizing sizing;
  sizing.d = 8;
  sizing.max_len = 6;
  sizing.dropout = 0.1f;
  auto model = models::CreateModel(GetParam(), sizing);
  ASSERT_NE(model, nullptr);
  data::SequenceDataset ds = CycleDataset(10, 30, 6);
  TrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 16;
  model->Fit(ds, opts);
  const auto scores = model->Score({1, 2, 3});
  ASSERT_EQ(scores.size(), 11u);
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, RegistryTrainSweep,
    ::testing::ValuesIn(vsan::models::RegisteredModelNames()));

// Oracle that perfectly retrieves the holdout regardless of popularity.
struct Oracle : SequentialRecommender {
  explicit Oracle(std::vector<int32_t> targets)
      : targets_(std::move(targets)) {}
  std::string name() const override { return "oracle"; }
  void Fit(const data::SequenceDataset&, const TrainOptions&) override {}
  std::vector<float> Score(const std::vector<int32_t>&) const override {
    std::vector<float> s(21, 0.0f);
    for (int32_t t : targets_) s[t] = 10.0f;
    return s;
  }
  std::vector<int32_t> targets_;
};

TEST(SegmentedEvalTest, SegmentsTargetsByTrainingPopularity) {
  // 20 items; popularity descending in item id: item 1 most popular.
  std::vector<float> popularity(21);
  for (int32_t i = 1; i <= 20; ++i) popularity[i] = 21.0f - i;
  // head 10% = {1, 2}; tail 50% = {11..20}; torso = {3..10}.
  eval::PopularitySegments segments;
  segments.head_fraction = 0.1;
  segments.tail_fraction = 0.5;

  // One user whose holdout has one head item and one tail item; oracle
  // retrieves both.
  std::vector<data::HeldOutUser> users(1);
  users[0].fold_in = {5};
  users[0].holdout = {1, 15};
  Oracle oracle({1, 15});
  eval::EvalOptions opts;
  opts.cutoffs = {5};
  const auto r = eval::EvaluateByPopularity(oracle, users, popularity,
                                            segments, opts);
  EXPECT_EQ(r.head_users, 1);
  EXPECT_EQ(r.tail_users, 1);
  EXPECT_EQ(r.torso_users, 0);
  EXPECT_DOUBLE_EQ(r.head.recall.at(5), 1.0);
  EXPECT_DOUBLE_EQ(r.tail.recall.at(5), 1.0);
}

TEST(SegmentedEvalTest, MissingTailShowsUpOnlyInTail) {
  std::vector<float> popularity(21);
  for (int32_t i = 1; i <= 20; ++i) popularity[i] = 21.0f - i;
  eval::PopularitySegments segments;
  segments.head_fraction = 0.1;
  segments.tail_fraction = 0.5;
  std::vector<data::HeldOutUser> users(1);
  users[0].fold_in = {5};
  users[0].holdout = {1, 15};
  // Retrieves the head item only.
  Oracle head_only({1});
  eval::EvalOptions opts;
  opts.cutoffs = {5};
  const auto r = eval::EvaluateByPopularity(head_only, users, popularity,
                                            segments, opts);
  EXPECT_DOUBLE_EQ(r.head.recall.at(5), 1.0);
  EXPECT_DOUBLE_EQ(r.tail.recall.at(5), 0.0);
}

// Config fuzz: random-but-valid VSAN configurations must train one epoch
// and produce finite scores -- no crashes, NaNs, or CHECK failures across
// the config space the benches and users can reach.
TEST(VsanConfigFuzzTest, RandomValidConfigsTrainWithoutFailure) {
  Rng rng(2024);
  data::SequenceDataset ds = CycleDataset(10, 30, 6);
  for (int trial = 0; trial < 12; ++trial) {
    core::VsanConfig cfg;
    cfg.max_len = 4 + rng.UniformInt(5);             // 4..8
    const int64_t heads = 1 + rng.UniformInt(2);     // 1..2
    cfg.num_heads = static_cast<int32_t>(heads);
    cfg.d = heads * (4 + 2 * rng.UniformInt(3));     // divisible by heads
    cfg.h1 = static_cast<int32_t>(rng.UniformInt(3));
    cfg.h2 = static_cast<int32_t>(rng.UniformInt(3));
    cfg.next_k = 1 + static_cast<int32_t>(rng.UniformInt(3));
    cfg.dropout = static_cast<float>(rng.Uniform(0.0, 0.6));
    cfg.beta_max = static_cast<float>(rng.Uniform(0.0, 0.1));
    cfg.tie_output = rng.Bernoulli(0.5);
    cfg.use_latent = rng.Bernoulli(0.8);
    cfg.infer_ffn = rng.Bernoulli(0.8);
    cfg.gen_ffn = rng.Bernoulli(0.8);
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << " d=" << cfg.d << " heads="
                 << cfg.num_heads << " h1=" << cfg.h1 << " h2=" << cfg.h2
                 << " k=" << cfg.next_k);
    core::Vsan model(cfg);
    TrainOptions opts;
    opts.epochs = 1;
    opts.batch_size = 16;
    opts.seed = 100 + trial;
    model.Fit(ds, opts);
    for (float s : model.Score({1, 2, 3})) {
      ASSERT_TRUE(std::isfinite(s));
    }
  }
}

}  // namespace
}  // namespace vsan
