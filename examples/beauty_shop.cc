// Domain example: a sparse e-commerce catalogue ("Beauty"-style, Sec. V-A).
// Trains the paper's headline comparison -- VSAN vs SASRec vs POP -- on a
// Beauty-like corpus and shows why the probabilistic model matters on
// sparse data: per-model metrics plus a side-by-side recommendation list
// for one shopper with a mixed-category history (the Fig. 1 scenario).

#include <iomanip>
#include <iostream>

#include "core/vsan.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "models/pop.h"
#include "models/sasrec.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

// Items are partitioned into contiguous category blocks by the generator;
// recover the category for display.
int32_t CategoryOf(int32_t item, const vsan::data::SyntheticConfig& cfg) {
  return static_cast<int32_t>((static_cast<int64_t>(item - 1) *
                               cfg.num_categories) /
                              cfg.num_items);
}

}  // namespace

int main() {
  using namespace vsan;

  const data::SyntheticConfig data_cfg = data::BeautyLikeConfig(0.04);
  const data::SequenceDataset dataset = data::GenerateSynthetic(data_cfg);
  std::cout << dataset.Summary("beauty-like corpus") << "\n\n";

  data::SplitOptions split_cfg;
  split_cfg.num_validation_users = 40;
  split_cfg.num_test_users = 40;
  const data::StrongSplit split = data::MakeStrongSplit(dataset, split_cfg);

  TrainOptions train_cfg;
  train_cfg.epochs = 20;
  train_cfg.batch_size = 64;

  models::Pop pop;
  pop.Fit(split.train, train_cfg);

  models::SasRec::Config sas_cfg;
  sas_cfg.max_len = 30;
  sas_cfg.d = 32;
  sas_cfg.num_blocks = 1;
  sas_cfg.dropout = 0.2f;
  models::SasRec sasrec(sas_cfg);
  sasrec.Fit(split.train, train_cfg);

  core::VsanConfig vsan_cfg;
  vsan_cfg.max_len = 30;
  vsan_cfg.d = 32;
  vsan_cfg.h1 = 1;
  vsan_cfg.h2 = 0;
  vsan_cfg.dropout = 0.2f;
  vsan_cfg.beta_max = 0.002f;
  core::Vsan vsan(vsan_cfg);
  vsan.Fit(split.train, train_cfg);

  eval::EvalOptions eval_cfg;
  TablePrinter table({"Model", "NDCG@10", "Recall@10", "Precision@10"});
  for (const SequentialRecommender* model :
       {static_cast<const SequentialRecommender*>(&pop),
        static_cast<const SequentialRecommender*>(&sasrec),
        static_cast<const SequentialRecommender*>(&vsan)}) {
    const eval::EvalResult r =
        eval::EvaluateRanking(*model, split.test, eval_cfg);
    table.AddRow({model->name(), FormatDouble(r.ndcg.at(10) * 100, 2),
                  FormatDouble(r.recall.at(10) * 100, 2),
                  FormatDouble(r.precision.at(10) * 100, 2)});
  }
  table.Print(std::cout);

  // Find a shopper whose history spans two categories and compare lists.
  for (const data::HeldOutUser& user : split.test) {
    int32_t first_cat = CategoryOf(user.fold_in.front(), data_cfg);
    bool mixed = false;
    for (int32_t item : user.fold_in) {
      mixed |= CategoryOf(item, data_cfg) != first_cat;
    }
    if (!mixed || user.fold_in.size() < 5) continue;

    std::cout << "\nshopper history (item:category): ";
    for (int32_t item : user.fold_in) {
      std::cout << item << ":" << CategoryOf(item, data_cfg) << " ";
    }
    std::cout << "\n";
    for (const SequentialRecommender* model :
         {static_cast<const SequentialRecommender*>(&sasrec),
          static_cast<const SequentialRecommender*>(&vsan)}) {
      const std::vector<float> scores = model->Score(user.fold_in);
      std::vector<bool> excluded(scores.size(), false);
      excluded[data::kPaddingItem] = true;
      for (int32_t item : user.fold_in) excluded[item] = true;
      std::cout << std::setw(8) << model->name() << " suggests: ";
      for (int32_t item : eval::TopNIndices(scores, excluded, 5)) {
        std::cout << item << ":" << CategoryOf(item, data_cfg) << " ";
      }
      std::cout << "\n";
    }
    std::cout << "ground truth: ";
    for (int32_t item : user.holdout) {
      std::cout << item << ":" << CategoryOf(item, data_cfg) << " ";
    }
    std::cout << "\n";
    break;
  }
  return 0;
}
