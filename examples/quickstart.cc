// Quickstart: train a Variational Self-Attention Network on a small
// synthetic interaction corpus and produce top-N recommendations for a
// brand-new user.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/vsan.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"

int main() {
  using namespace vsan;

  // 1. Data: a synthetic e-commerce-style corpus (users mix 2-4 latent
  //    interest categories; items chain within categories).
  data::SyntheticConfig data_cfg;
  data_cfg.num_users = 800;
  data_cfg.num_items = 400;
  data_cfg.num_categories = 10;
  data_cfg.seed = 42;
  const data::SequenceDataset dataset = data::GenerateSynthetic(data_cfg);
  std::cout << dataset.Summary("corpus") << "\n";

  // 2. Strong-generalization split: evaluation users are unseen in training.
  data::SplitOptions split_cfg;
  split_cfg.num_validation_users = 50;
  split_cfg.num_test_users = 50;
  const data::StrongSplit split = data::MakeStrongSplit(dataset, split_cfg);

  // 3. Model: VSAN with one inference and one generative attention block.
  core::VsanConfig model_cfg;
  model_cfg.max_len = 20;
  model_cfg.d = 32;
  model_cfg.h1 = 1;
  model_cfg.h2 = 1;
  model_cfg.dropout = 0.2f;
  core::Vsan model(model_cfg);

  TrainOptions train_cfg;
  train_cfg.epochs = 10;
  train_cfg.batch_size = 64;
  train_cfg.epoch_callback = [](const EpochStats& stats) {
    std::cout << "epoch " << stats.epoch << "  loss " << stats.loss << "\n";
  };
  model.Fit(split.train, train_cfg);

  // 4. Evaluate on the held-out users (Precision/Recall/NDCG @ 10 and 20).
  eval::EvalOptions eval_cfg;
  const eval::EvalResult result =
      eval::EvaluateRanking(model, split.test, eval_cfg);
  std::cout << "test metrics: " << result.ToString() << "\n";

  // 5. Recommend for one unseen user from their fold-in history alone.
  const data::HeldOutUser& user = split.test[0];
  const std::vector<float> scores = model.Score(user.fold_in);
  std::vector<bool> excluded(scores.size(), false);
  excluded[data::kPaddingItem] = true;
  for (int32_t item : user.fold_in) excluded[item] = true;
  const std::vector<int32_t> top = eval::TopNIndices(scores, excluded, 5);

  std::cout << "history (last 5): ";
  const size_t n = user.fold_in.size();
  for (size_t i = n > 5 ? n - 5 : 0; i < n; ++i) {
    std::cout << user.fold_in[i] << " ";
  }
  std::cout << "\ntop-5 recommendations: ";
  for (int32_t item : top) std::cout << item << " ";
  std::cout << "\nactually consumed next: ";
  for (int32_t item : user.holdout) std::cout << item << " ";
  std::cout << "\n";
  return 0;
}
