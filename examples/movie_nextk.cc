// Domain example: dense movie-watching sessions ("ML-1M"-style) and the
// next-k extension of Eq. 18.  Trains VSAN with k = 1, 2, 3 on a dense
// corpus and shows how multi-step targets change what the model surfaces
// for a session continuation (a "watch next" queue rather than a single
// next title).

#include <iostream>

#include "core/vsan.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace vsan;

  const data::SyntheticConfig data_cfg = data::ML1MLikeConfig(0.04);
  const data::SequenceDataset dataset = data::GenerateSynthetic(data_cfg);
  std::cout << dataset.Summary("movie corpus") << "\n\n";

  data::SplitOptions split_cfg;
  split_cfg.num_validation_users = 30;
  split_cfg.num_test_users = 30;
  const data::StrongSplit split = data::MakeStrongSplit(dataset, split_cfg);

  TrainOptions train_cfg;
  train_cfg.epochs = 15;
  train_cfg.batch_size = 64;

  TablePrinter table({"k", "NDCG@10", "Recall@10", "Recall@20"});
  std::vector<std::unique_ptr<core::Vsan>> models;
  for (int32_t k = 1; k <= 3; ++k) {
    core::VsanConfig cfg;
    cfg.max_len = 60;
    cfg.d = 32;
    cfg.h1 = 1;
    cfg.h2 = 1;
    cfg.dropout = 0.2f;
    cfg.beta_max = 0.002f;
    cfg.next_k = k;  // train each position against the next k titles
    models.push_back(std::make_unique<core::Vsan>(cfg));
    models.back()->Fit(split.train, train_cfg);

    const eval::EvalResult r =
        eval::EvaluateRanking(*models.back(), split.test, {});
    table.AddRow({std::to_string(k), FormatDouble(r.ndcg.at(10) * 100, 2),
                  FormatDouble(r.recall.at(10) * 100, 2),
                  FormatDouble(r.recall.at(20) * 100, 2)});
  }
  table.Print(std::cout);

  // Continue one viewer's session with each model's "watch next" queue.
  const data::HeldOutUser& viewer = split.test[0];
  std::cout << "\nviewer session tail: ";
  const size_t n = viewer.fold_in.size();
  for (size_t i = n > 8 ? n - 8 : 0; i < n; ++i) {
    std::cout << viewer.fold_in[i] << " ";
  }
  std::cout << "\n";
  for (size_t m = 0; m < models.size(); ++m) {
    const std::vector<float> scores = models[m]->Score(viewer.fold_in);
    std::vector<bool> excluded(scores.size(), false);
    excluded[data::kPaddingItem] = true;
    for (int32_t item : viewer.fold_in) excluded[item] = true;
    std::cout << "k=" << (m + 1) << " queue: ";
    for (int32_t item : eval::TopNIndices(scores, excluded, 6)) {
      std::cout << item << " ";
    }
    std::cout << "\n";
  }
  std::cout << "actually watched next: ";
  for (size_t i = 0; i < viewer.holdout.size() && i < 6; ++i) {
    std::cout << viewer.holdout[i] << " ";
  }
  std::cout << "\n";
  return 0;
}
