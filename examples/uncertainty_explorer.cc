// The Fig. 1 story, measured.  VSAN represents each user as a *density* in
// the latent space rather than a point.  This example makes that concrete
// with the public uncertainty APIs:
//
//   1. InspectPosterior(): the per-dimension (mu, sigma) of a user's
//      posterior.
//   2. Mode coverage: for "eclectic" users whose history mixes several
//      latent categories (the ambiguous user u of Fig. 1), the top-10 list
//      should span those modes instead of collapsing between them.
//   3. ScoreWithSampledLatent(): decoding from sampled z ~ N(mu, sigma^2)
//      yields a *spread* of plausible recommendation lists -- the dashed
//      ellipse made operational.  Focused users' sampled lists agree more
//      than eclectic users'.

#include <algorithm>
#include <iostream>
#include <unordered_set>

#include "core/vsan.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "util/string_util.h"

namespace {

int32_t CategoryOf(int32_t item, const vsan::data::SyntheticConfig& cfg) {
  return static_cast<int32_t>((static_cast<int64_t>(item - 1) *
                               cfg.num_categories) /
                              cfg.num_items);
}

// Top-10 items, excluding the history.
std::vector<int32_t> TopTen(const std::vector<float>& scores,
                            const std::vector<int32_t>& history) {
  std::vector<bool> excluded(scores.size(), false);
  excluded[vsan::data::kPaddingItem] = true;
  for (int32_t item : history) excluded[item] = true;
  return vsan::eval::TopNIndices(scores, excluded, 10);
}

double Jaccard(const std::vector<int32_t>& a, const std::vector<int32_t>& b) {
  std::unordered_set<int32_t> sa(a.begin(), a.end());
  int32_t inter = 0;
  for (int32_t x : b) inter += sa.count(x) > 0;
  const double uni = static_cast<double>(sa.size() + b.size() - inter);
  return uni > 0 ? inter / uni : 1.0;
}

}  // namespace

int main() {
  using namespace vsan;

  data::SyntheticConfig data_cfg;
  data_cfg.num_users = 1200;
  data_cfg.num_items = 400;
  data_cfg.num_categories = 10;
  data_cfg.min_categories_per_user = 1;
  data_cfg.max_categories_per_user = 4;  // mixes focused + eclectic users
  data_cfg.min_seq_len = 8;
  data_cfg.max_seq_len = 16;
  data_cfg.seed = 77;
  const data::SequenceDataset dataset = data::GenerateSynthetic(data_cfg);
  std::cout << dataset.Summary("corpus") << "\n";

  core::VsanConfig model_cfg;
  model_cfg.max_len = 16;
  model_cfg.d = 32;
  model_cfg.h1 = 1;
  model_cfg.h2 = 1;
  model_cfg.dropout = 0.2f;
  model_cfg.beta_max = 0.02f;
  model_cfg.anneal_steps = 200;
  core::Vsan model(model_cfg);

  TrainOptions train_cfg;
  train_cfg.epochs = 25;
  train_cfg.batch_size = 64;
  model.Fit(dataset, train_cfg);

  // Cohort statistics: category coverage of the mean-decoded top-10, and
  // agreement (Jaccard) between two sampled-latent top-10 lists.
  double cover_focused = 0.0, cover_eclectic = 0.0;
  double agree_focused = 0.0, agree_eclectic = 0.0;
  int32_t n_focused = 0, n_eclectic = 0;
  for (int32_t u = 0; u < dataset.num_users(); ++u) {
    const std::vector<int32_t>& seq = dataset.sequence(u);
    std::unordered_set<int32_t> cats;
    for (int32_t item : seq) cats.insert(CategoryOf(item, data_cfg));
    const bool focused = cats.size() <= 1;
    const bool eclectic = cats.size() >= 3;
    if (!focused && !eclectic) continue;

    const std::vector<int32_t> top = TopTen(model.Score(seq), seq);
    std::unordered_set<int32_t> top_cats;
    for (int32_t item : top) top_cats.insert(CategoryOf(item, data_cfg));

    const std::vector<int32_t> sample_a =
        TopTen(model.ScoreWithSampledLatent(seq), seq);
    const std::vector<int32_t> sample_b =
        TopTen(model.ScoreWithSampledLatent(seq), seq);
    const double agreement = Jaccard(sample_a, sample_b);

    if (focused) {
      cover_focused += top_cats.size();
      agree_focused += agreement;
      ++n_focused;
    } else {
      cover_eclectic += top_cats.size();
      agree_eclectic += agreement;
      ++n_eclectic;
    }
  }
  cover_focused /= std::max(n_focused, 1);
  cover_eclectic /= std::max(n_eclectic, 1);
  agree_focused /= std::max(n_focused, 1);
  agree_eclectic /= std::max(n_eclectic, 1);

  std::cout << "\ncohorts: focused (1 category, n=" << n_focused
            << ") vs eclectic (3+ categories, n=" << n_eclectic << ")\n";
  std::cout << "categories covered by the top-10 list:\n"
            << "  focused:  " << FormatDouble(cover_focused, 2) << "\n"
            << "  eclectic: " << FormatDouble(cover_eclectic, 2) << "\n";
  std::cout << "agreement between two sampled-z top-10 lists (Jaccard):\n"
            << "  focused:  " << FormatDouble(agree_focused, 3) << "\n"
            << "  eclectic: " << FormatDouble(agree_eclectic, 3) << "\n";
  if (agree_eclectic < agree_focused) {
    std::cout << "=> sampled recommendation lists disagree more for "
                 "ambiguous users: the\n   posterior density is genuinely "
                 "wider for them (Fig. 1's dashed ellipse),\n   while a "
                 "deterministic point estimate would treat both cohorts "
                 "identically.\n";
  }

  // Per-dimension posterior of one eclectic user via the inspection API.
  for (int32_t u = 0; u < dataset.num_users(); ++u) {
    const std::vector<int32_t>& seq = dataset.sequence(u);
    std::unordered_set<int32_t> cats;
    for (int32_t item : seq) cats.insert(CategoryOf(item, data_cfg));
    if (cats.size() < 3) continue;
    const core::PosteriorStats stats = model.InspectPosterior(seq);
    std::cout << "\nexample eclectic user " << u << " (" << cats.size()
              << " categories), mean sigma "
              << FormatDouble(stats.MeanSigma(), 3)
              << ", first 8 latent dims:\n  mu:    ";
    for (int i = 0; i < 8; ++i) {
      std::cout << FormatDouble(stats.mu[i], 3) << " ";
    }
    std::cout << "\n  sigma: ";
    for (int i = 0; i < 8; ++i) {
      std::cout << FormatDouble(stats.sigma[i], 3) << " ";
    }
    std::cout << "\n";
    break;
  }
  return 0;
}
