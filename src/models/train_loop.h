#ifndef VSAN_MODELS_TRAIN_LOOP_H_
#define VSAN_MODELS_TRAIN_LOOP_H_

#include <functional>

#include "autograd/variable.h"
#include "data/batcher.h"
#include "models/epoch_report.h"
#include "models/recommender.h"
#include "models/train_runtime.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/lr_schedule.h"
#include "optim/optimizer.h"
#include "util/stopwatch.h"

namespace vsan {
namespace models {

// Shared epoch/batch loop for the neural models: for each epoch, iterate the
// batcher, build the loss with `loss_fn`, backprop, clip, and step the
// optimizer.  Reports per-epoch stats (mean loss, wall time, mean pre-clip
// gradient norm, last learning rate) through TrainOptions::epoch_callback
// and, when set, TrainOptions::telemetry.
//
// `runtime` (see train_runtime.h) supplies crash safety: resume from a
// checkpoint at entry, divergence guards on every step's loss and post-clip
// gradient norm, end-of-epoch checkpoint writes, and the fault-injection
// taps.  A skipped batch still advances the step counter so lr schedules
// stay aligned with an uninterrupted run.
//
// The loop itself is sequential (each step depends on the previous
// parameter update), but the GEMMs inside loss_fn's forward and backward
// passes run on the global ThreadPool (util/thread_pool.h), so a training
// step uses all configured threads.  For post-training batched inference —
// e.g. an epoch_callback that evaluates on a validation split — use
// ScoreBatch() (models/recommender.h) or eval::EvaluateRanking, which
// parallelize over users instead.
inline void RunTrainLoop(
    data::SequenceBatcher* batcher, optim::Optimizer* optimizer,
    const TrainOptions& options, TrainRuntime* runtime,
    const std::function<Variable(const data::TrainBatch&)>& loss_fn) {
  obs::Counter* step_counter =
      obs::MetricsRegistry::Global().GetCounter("train.steps");
  obs::Histogram* loss_hist = obs::MetricsRegistry::Global().GetHistogram(
      "train.batch_loss", obs::ExponentialBuckets(1e-3, 2.0, 24));
  // Sliding window so a /metrics scrape reports the *recent* step latency
  // (p50/p95/p99 over the last 30 s), not a since-startup average.
  obs::SlidingWindowHistogram* step_ms_hist =
      obs::MetricsRegistry::Global().GetSlidingHistogram(
          "train.step_ms", obs::ExponentialBuckets(0.1, 2.0, 20));
  int64_t step = 0;
  int32_t epoch = 0;
  if (!runtime->Begin(&step, &epoch)) return;
  while (epoch < options.epochs) {
    VSAN_TRACE_SPAN("train/epoch", kTrain);
    Stopwatch epoch_timer;
    batcher->NewEpoch();
    double loss_sum = 0.0;
    double grad_norm_sum = 0.0;
    float last_lr = optimizer->learning_rate();
    int64_t batches = 0;
    bool rolled_back = false;
    bool stop = false;
    data::TrainBatch batch;
    while (batcher->NextBatch(&batch)) {
      VSAN_TRACE_SPAN("train/step", kTrain);
      Stopwatch step_timer;
      if (runtime->PreStep(step + 1)) return;  // simulated kill
      if (options.lr_schedule != nullptr) {
        optimizer->set_learning_rate(options.lr_schedule->LearningRate(step));
      }
      last_lr = optimizer->learning_rate();
      ++step;
      Variable loss = [&] {
        VSAN_TRACE_SPAN("train/forward", kTrain);
        return loss_fn(batch);
      }();
      float loss_value = loss.value()[0];
      TrainRuntime::StepAction action = runtime->GuardLoss(&loss_value, step);
      if (action == TrainRuntime::StepAction::kSkip) continue;
      if (action == TrainRuntime::StepAction::kStop) {
        stop = true;
        break;
      }
      if (action == TrainRuntime::StepAction::kRollback) {
        runtime->Rollback(&step, &epoch);
        rolled_back = true;
        break;
      }
      optimizer->ZeroGrad();
      {
        VSAN_TRACE_SPAN("train/backward", kTrain);
        loss.Backward();
      }
      {
        VSAN_TRACE_SPAN("train/optimizer", kTrain);
        if (options.grad_clip_norm > 0.0f) {
          const double norm = optimizer->ClipGradNorm(options.grad_clip_norm);
          action = runtime->GuardGradNorm(norm, step);
          if (action == TrainRuntime::StepAction::kSkip) continue;
          if (action == TrainRuntime::StepAction::kStop) {
            stop = true;
            break;
          }
          if (action == TrainRuntime::StepAction::kRollback) {
            runtime->Rollback(&step, &epoch);
            rolled_back = true;
            break;
          }
          grad_norm_sum += norm;
        }
        optimizer->Step();
      }
      loss_sum += loss_value;
      loss_hist->Observe(loss_value);
      step_ms_hist->Observe(step_timer.ElapsedMillis());
      step_counter->Increment();
      ++batches;
    }
    if (rolled_back) continue;  // replay the checkpointed epoch's successor
    if (batches > 0) {
      EpochStats stats;
      stats.epoch = epoch;
      stats.loss = loss_sum / batches;
      stats.wall_ms = epoch_timer.ElapsedMillis();
      stats.batches = batches;
      if (options.grad_clip_norm > 0.0f) {
        stats.grad_norm = grad_norm_sum / batches;
      }
      stats.learning_rate = last_lr;
      ReportEpoch(options, stats, step);
    }
    if (stop) return;
    runtime->EndEpoch(epoch, step);
    ++epoch;
  }
}

}  // namespace models
}  // namespace vsan

#endif  // VSAN_MODELS_TRAIN_LOOP_H_
