#ifndef VSAN_MODELS_TRAIN_LOOP_H_
#define VSAN_MODELS_TRAIN_LOOP_H_

#include <functional>

#include "autograd/variable.h"
#include "data/batcher.h"
#include "models/recommender.h"
#include "optim/lr_schedule.h"
#include "optim/optimizer.h"

namespace vsan {
namespace models {

// Shared epoch/batch loop for the neural models: for each epoch, iterate the
// batcher, build the loss with `loss_fn`, backprop, clip, and step the
// optimizer.  Reports the mean per-batch loss through
// TrainOptions::epoch_callback.
//
// The loop itself is sequential (each step depends on the previous
// parameter update), but the GEMMs inside loss_fn's forward and backward
// passes run on the global ThreadPool (util/thread_pool.h), so a training
// step uses all configured threads.  For post-training batched inference —
// e.g. an epoch_callback that evaluates on a validation split — use
// ScoreBatch() (models/recommender.h) or eval::EvaluateRanking, which
// parallelize over users instead.
inline void RunTrainLoop(
    data::SequenceBatcher* batcher, optim::Optimizer* optimizer,
    const TrainOptions& options,
    const std::function<Variable(const data::TrainBatch&)>& loss_fn) {
  int64_t step = 0;
  for (int32_t epoch = 0; epoch < options.epochs; ++epoch) {
    batcher->NewEpoch();
    double loss_sum = 0.0;
    int64_t batches = 0;
    data::TrainBatch batch;
    while (batcher->NextBatch(&batch)) {
      if (options.lr_schedule != nullptr) {
        optimizer->set_learning_rate(options.lr_schedule->LearningRate(step));
      }
      ++step;
      Variable loss = loss_fn(batch);
      optimizer->ZeroGrad();
      loss.Backward();
      if (options.grad_clip_norm > 0.0f) {
        optimizer->ClipGradNorm(options.grad_clip_norm);
      }
      optimizer->Step();
      loss_sum += loss.value()[0];
      ++batches;
    }
    if (options.epoch_callback && batches > 0) {
      options.epoch_callback(epoch, loss_sum / batches);
    }
  }
}

}  // namespace models
}  // namespace vsan

#endif  // VSAN_MODELS_TRAIN_LOOP_H_
