#ifndef VSAN_MODELS_TRAIN_LOOP_H_
#define VSAN_MODELS_TRAIN_LOOP_H_

#include <functional>

#include "autograd/variable.h"
#include "data/batcher.h"
#include "models/epoch_report.h"
#include "models/recommender.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/lr_schedule.h"
#include "optim/optimizer.h"
#include "util/stopwatch.h"

namespace vsan {
namespace models {

// Shared epoch/batch loop for the neural models: for each epoch, iterate the
// batcher, build the loss with `loss_fn`, backprop, clip, and step the
// optimizer.  Reports per-epoch stats (mean loss, wall time, mean pre-clip
// gradient norm, last learning rate) through TrainOptions::epoch_callback
// and, when set, TrainOptions::telemetry.
//
// The loop itself is sequential (each step depends on the previous
// parameter update), but the GEMMs inside loss_fn's forward and backward
// passes run on the global ThreadPool (util/thread_pool.h), so a training
// step uses all configured threads.  For post-training batched inference —
// e.g. an epoch_callback that evaluates on a validation split — use
// ScoreBatch() (models/recommender.h) or eval::EvaluateRanking, which
// parallelize over users instead.
inline void RunTrainLoop(
    data::SequenceBatcher* batcher, optim::Optimizer* optimizer,
    const TrainOptions& options,
    const std::function<Variable(const data::TrainBatch&)>& loss_fn) {
  obs::Counter* step_counter =
      obs::MetricsRegistry::Global().GetCounter("train.steps");
  obs::Histogram* loss_hist = obs::MetricsRegistry::Global().GetHistogram(
      "train.batch_loss", obs::ExponentialBuckets(1e-3, 2.0, 24));
  int64_t step = 0;
  for (int32_t epoch = 0; epoch < options.epochs; ++epoch) {
    VSAN_TRACE_SPAN("train/epoch", kTrain);
    Stopwatch epoch_timer;
    batcher->NewEpoch();
    double loss_sum = 0.0;
    double grad_norm_sum = 0.0;
    float last_lr = optimizer->learning_rate();
    int64_t batches = 0;
    data::TrainBatch batch;
    while (batcher->NextBatch(&batch)) {
      VSAN_TRACE_SPAN("train/step", kTrain);
      if (options.lr_schedule != nullptr) {
        optimizer->set_learning_rate(options.lr_schedule->LearningRate(step));
      }
      last_lr = optimizer->learning_rate();
      ++step;
      Variable loss = [&] {
        VSAN_TRACE_SPAN("train/forward", kTrain);
        return loss_fn(batch);
      }();
      optimizer->ZeroGrad();
      {
        VSAN_TRACE_SPAN("train/backward", kTrain);
        loss.Backward();
      }
      {
        VSAN_TRACE_SPAN("train/optimizer", kTrain);
        if (options.grad_clip_norm > 0.0f) {
          grad_norm_sum += optimizer->ClipGradNorm(options.grad_clip_norm);
        }
        optimizer->Step();
      }
      const double batch_loss = loss.value()[0];
      loss_sum += batch_loss;
      loss_hist->Observe(batch_loss);
      step_counter->Increment();
      ++batches;
    }
    if (batches == 0) continue;
    EpochStats stats;
    stats.epoch = epoch;
    stats.loss = loss_sum / batches;
    stats.wall_ms = epoch_timer.ElapsedMillis();
    stats.batches = batches;
    if (options.grad_clip_norm > 0.0f) {
      stats.grad_norm = grad_norm_sum / batches;
    }
    stats.learning_rate = last_lr;
    ReportEpoch(options, stats, step);
  }
}

}  // namespace models
}  // namespace vsan

#endif  // VSAN_MODELS_TRAIN_LOOP_H_
