#ifndef VSAN_MODELS_BPR_H_
#define VSAN_MODELS_BPR_H_

#include "models/recommender.h"
#include "util/rng.h"

namespace vsan {
namespace models {

// BPR-MF (Rendle et al. 2009): pairwise ranking over implicit feedback with
// matrix-factorization scores.
//
// Strong generalization twist: held-out users have no trained user factor,
// so the user vector is composed FISM-style as the mean of a learned
// item-as-context embedding over the (fold-in) history.  Training uses the
// same composition so train and eval match.  Scores ignore order entirely --
// BPR is the non-sequential baseline of Table III.
class Bpr : public SequentialRecommender {
 public:
  struct Config {
    int64_t d = 32;
    float l2_reg = 1e-4f;
    // Per epoch, one (pos, neg) pair is sampled per training interaction.
    int32_t max_context_items = 10;  // cap on history items composing a user
  };

  explicit Bpr(const Config& config) : config_(config) {}

  std::string name() const override { return "BPR"; }

  void Fit(const data::SequenceDataset& train,
           const TrainOptions& options) override;

  std::vector<float> Score(const std::vector<int32_t>& fold_in) const override;

 private:
  // Mean of context embeddings over (at most the last max_context_items of)
  // `items`, written to `out` (size d).
  void ComposeUser(const std::vector<int32_t>& items, float* out) const;

  Config config_;
  int32_t num_items_ = 0;
  std::vector<float> context_;  // [num_items+1, d] item-as-context factors
  std::vector<float> target_;   // [num_items+1, d] item-as-target factors
  std::vector<float> bias_;     // [num_items+1]
};

}  // namespace models
}  // namespace vsan

#endif  // VSAN_MODELS_BPR_H_
