#ifndef VSAN_MODELS_TRANSREC_H_
#define VSAN_MODELS_TRANSREC_H_

#include "models/recommender.h"
#include "util/rng.h"

namespace vsan {
namespace models {

// TransRec (He et al. 2017): items are points in a translation space and a
// user is a translation vector acting on their last consumed item:
//   score(u, l, j) = beta_j - || gamma_l + t + t_u - gamma_j ||^2.
//
// Held-out users are unseen, so scoring uses only the global translation
// vector t (their personal offset t_u is unknown and zero-initialized mass
// dominates anyway); training learns t_u for training users as in the
// original model.
class TransRec : public SequentialRecommender {
 public:
  struct Config {
    int64_t d = 32;
    float l2_reg = 1e-4f;
  };

  explicit TransRec(const Config& config) : config_(config) {}

  std::string name() const override { return "TransRec"; }

  void Fit(const data::SequenceDataset& train,
           const TrainOptions& options) override;

  std::vector<float> Score(const std::vector<int32_t>& fold_in) const override;

 private:
  Config config_;
  int32_t num_items_ = 0;
  std::vector<float> gamma_;        // [N+1, d] item points
  std::vector<float> beta_;         // [N+1] item biases
  std::vector<float> global_t_;     // [d] shared translation
  std::vector<float> user_t_;       // [num_train_users, d] personal offsets
};

}  // namespace models
}  // namespace vsan

#endif  // VSAN_MODELS_TRANSREC_H_
