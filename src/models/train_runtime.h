#ifndef VSAN_MODELS_TRAIN_RUNTIME_H_
#define VSAN_MODELS_TRAIN_RUNTIME_H_

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "models/recommender.h"
#include "nn/checkpoint.h"
#include "nn/module.h"
#include "obs/metrics.h"
#include "optim/optimizer.h"
#include "util/fault.h"
#include "util/fileio.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace vsan {
namespace models {

// Crash-safety companion for a model's Fit loop: checkpoint/resume,
// divergence guards, and the fault-injection taps, factored out so the
// shared RunTrainLoop and the custom loops (VSAN, SVAE, Caser) behave
// identically.  Header-only because vsan_core uses it without linking
// vsan_models.
//
// Protocol (all steps 1-based):
//
//   TrainRuntime rt(options, hooks);
//   int64_t step = 0; int32_t epoch = 0;
//   if (!rt.Begin(&step, &epoch)) return;          // resume or refuse
//   for (; epoch < options.epochs;) {
//     NewEpoch();
//     bool rolled_back = false;
//     while (NextBatch()) {
//       if (rt.PreStep(step + 1)) return;          // simulated kill
//       ++step;
//       forward -> loss;
//       switch (rt.GuardLoss(&loss_value, step)) { kSkip: continue;
//         kStop: goto done; kRollback: rt.Rollback(&step, &epoch);
//         rolled_back = true; break; }
//       backward; clip -> norm;
//       switch (rt.GuardGradNorm(norm, step)) { ...same, skip = no Step() }
//       optimizer.Step();
//     }
//     if (rolled_back) continue;                   // replay from checkpoint
//     rt.EndEpoch(epoch, step);                    // checkpoint when due
//     ++epoch;
//   }
//
// A skipped batch still advances `step` so lr schedules and the VSAN beta
// anneal stay aligned with an uninterrupted run.  Rollback restores
// parameters, optimizer moments, RNG streams, and the data order from the
// last end-of-epoch checkpoint, then replays from there; one-shot fault
// latches (util/fault.h) guarantee the replay does not re-trigger the
// injected fault.
class TrainRuntime {
 public:
  enum class StepAction { kProceed, kSkip, kRollback, kStop };

  // What the runtime needs from the model to checkpoint and restore it.
  // `optimizer` may be null (models trained without an optim::Optimizer);
  // `rngs` are restored positionally, so order must be stable across runs.
  struct Hooks {
    const nn::Module* module = nullptr;
    nn::Module* mutable_module = nullptr;
    optim::Optimizer* optimizer = nullptr;
    std::vector<Rng*> rngs;
    std::function<void(std::string*)> save_data_state;
    std::function<Status(const std::string&)> load_data_state;
    std::string model_name;
  };

  TrainRuntime(const TrainOptions& options, Hooks hooks)
      : options_(options), hooks_(std::move(hooks)) {
    if (!options_.checkpoint_dir.empty()) {
      path_ = options_.checkpoint_dir + "/" + hooks_.model_name + ".ckpt";
    }
    auto& metrics = obs::MetricsRegistry::Global();
    nonfinite_loss_ = metrics.GetCounter("fault.nonfinite_loss");
    nonfinite_grad_ = metrics.GetCounter("fault.nonfinite_grad");
    rollbacks_ = metrics.GetCounter("fault.rollbacks");
  }

  // Resumes from the checkpoint when requested.  Returns false when
  // training must not proceed (a resume checkpoint exists but is corrupt —
  // starting fresh would overwrite the evidence).  On a successful resume
  // *step / *next_epoch jump forward; otherwise they are left at zero.
  bool Begin(int64_t* step, int32_t* next_epoch) {
    if (path_.empty()) return true;
    Status status = EnsureDirectory(options_.checkpoint_dir);
    if (!status.ok()) {
      VSAN_LOG_ERROR << "checkpoint dir unusable: " << status.ToString();
      return false;
    }
    if (!options_.resume) return true;
    if (!FileExists(path_)) {
      VSAN_LOG_INFO << "resume requested but no checkpoint at " << path_
                    << "; starting fresh";
      return true;
    }
    nn::TrainerState trainer;
    status = nn::LoadCheckpoint(path_, hooks_.mutable_module,
                                hooks_.optimizer, &trainer);
    if (status.ok()) status = RestoreTrainerState(trainer);
    if (!status.ok()) {
      VSAN_LOG_ERROR << "cannot resume from " << path_ << ": "
                     << status.ToString();
      return false;
    }
    *step = trainer.global_step;
    *next_epoch = trainer.epochs_completed;
    obs::MetricsRegistry::Global()
        .GetGauge("ckpt.resume_epoch")
        ->Set(trainer.epochs_completed);
    VSAN_LOG_INFO << hooks_.model_name << ": resumed from " << path_
                  << " at epoch " << trainer.epochs_completed << ", step "
                  << trainer.global_step;
    return true;
  }

  // Fault taps for the step about to run.  May _Exit (simulated crash);
  // returns true on a soft stop (simulated kill the caller can observe
  // in-process) — abandon training immediately, no checkpoint write.
  bool PreStep(int64_t step) {
    if (!fault::Enabled()) return false;
    fault::MaybeCrashAtStep(step);
    if (fault::ShouldStopAtStep(step)) {
      VSAN_LOG_WARNING << hooks_.model_name << ": fault stop at step "
                       << step;
      return true;
    }
    return false;
  }

  // Checks the batch loss (after the fault harness optionally poisons it)
  // for NaN/Inf.  kSkip: drop the batch.  kRollback: call Rollback().
  StepAction GuardLoss(float* loss, int64_t step) {
    if (fault::Enabled() && fault::ShouldInjectNanLoss(step)) {
      *loss = std::numeric_limits<float>::quiet_NaN();
    }
    if (std::isfinite(*loss)) return StepAction::kProceed;
    nonfinite_loss_->Increment();
    return OnNonFinite("loss", *loss, step);
  }

  // Checks the post-clip gradient norm.  On kSkip the caller must not run
  // optimizer Step() for this batch.
  StepAction GuardGradNorm(double norm, int64_t step) {
    if (std::isfinite(norm)) return StepAction::kProceed;
    nonfinite_grad_->Increment();
    return OnNonFinite("gradient norm", norm, step);
  }

  // Restores the last checkpoint after a guard returned kRollback and
  // rewinds *step / *next_epoch so the caller replays from there.
  void Rollback(int64_t* step, int32_t* next_epoch) {
    nn::TrainerState trainer;
    Status status = nn::LoadCheckpoint(path_, hooks_.mutable_module,
                                       hooks_.optimizer, &trainer);
    if (status.ok()) status = RestoreTrainerState(trainer);
    VSAN_CHECK(status.ok()) << "rollback failed: " << status.ToString();
    *step = trainer.global_step;
    *next_epoch = trainer.epochs_completed;
    rollbacks_->Increment();
    VSAN_LOG_WARNING << hooks_.model_name << ": rolled back to epoch "
                     << trainer.epochs_completed << ", step "
                     << trainer.global_step;
  }

  // Writes a checkpoint when the cadence (or the final epoch) says so.
  // `epoch` is the 0-based epoch just completed; `step` is cumulative.
  void EndEpoch(int32_t epoch, int64_t step) {
    if (path_.empty()) return;
    const int32_t done = epoch + 1;
    const int32_t every = std::max(1, options_.checkpoint_every_n_epochs);
    if (done % every != 0 && done != options_.epochs) return;
    nn::TrainerState trainer;
    trainer.epochs_completed = done;
    trainer.global_step = step;
    for (const Rng* rng : hooks_.rngs) {
      trainer.rng_states.emplace_back();
      rng->SaveState(&trainer.rng_states.back());
    }
    if (hooks_.save_data_state) hooks_.save_data_state(&trainer.data_state);
    if (options_.early_stopper != nullptr) {
      options_.early_stopper->SaveState(&trainer.early_stopping_state);
    }
    Status status =
        nn::SaveCheckpoint(path_, *hooks_.module, hooks_.optimizer, trainer);
    if (!status.ok()) {
      VSAN_LOG_ERROR << "checkpoint save failed: " << status.ToString();
      return;
    }
    have_checkpoint_ = true;
    if (options_.verbose) {
      VSAN_LOG_INFO << hooks_.model_name << ": checkpointed epoch " << done
                    << " to " << path_;
    }
  }

  const std::string& checkpoint_path() const { return path_; }

 private:
  StepAction OnNonFinite(const char* what, double value, int64_t step) {
    switch (options_.divergence_policy) {
      case DivergencePolicy::kAbort:
        VSAN_LOG_ERROR << hooks_.model_name << ": non-finite " << what
                       << " (" << value << ") at step " << step
                       << "; aborting training";
        return StepAction::kStop;
      case DivergencePolicy::kRollbackToLastCheckpoint:
        if (have_checkpoint_ || (!path_.empty() && FileExists(path_))) {
          VSAN_LOG_WARNING << hooks_.model_name << ": non-finite " << what
                           << " at step " << step
                           << "; rolling back to last checkpoint";
          return StepAction::kRollback;
        }
        VSAN_LOG_WARNING << hooks_.model_name << ": non-finite " << what
                         << " at step " << step
                         << " but no checkpoint exists; skipping batch";
        return StepAction::kSkip;
      case DivergencePolicy::kSkipBatch:
        break;
    }
    VSAN_LOG_WARNING << hooks_.model_name << ": non-finite " << what
                     << " (" << value << ") at step " << step
                     << "; skipping batch";
    return StepAction::kSkip;
  }

  Status RestoreTrainerState(const nn::TrainerState& trainer) {
    if (trainer.rng_states.size() != hooks_.rngs.size()) {
      return Status::InvalidArgument(
          StrCat("checkpoint has ", trainer.rng_states.size(),
                 " rng streams, trainer expects ", hooks_.rngs.size()));
    }
    for (size_t i = 0; i < hooks_.rngs.size(); ++i) {
      Status status = hooks_.rngs[i]->RestoreState(
          trainer.rng_states[i].data(), trainer.rng_states[i].size());
      if (!status.ok()) return status;
    }
    if (hooks_.load_data_state) {
      Status status = hooks_.load_data_state(trainer.data_state);
      if (!status.ok()) return status;
    }
    if (options_.early_stopper != nullptr &&
        !trainer.early_stopping_state.empty()) {
      Status status = options_.early_stopper->RestoreState(
          trainer.early_stopping_state.data(),
          trainer.early_stopping_state.size());
      if (!status.ok()) return status;
    }
    return Status::Ok();
  }

  TrainOptions options_;
  Hooks hooks_;
  std::string path_;
  bool have_checkpoint_ = false;
  obs::Counter* nonfinite_loss_ = nullptr;
  obs::Counter* nonfinite_grad_ = nullptr;
  obs::Counter* rollbacks_ = nullptr;
};

}  // namespace models
}  // namespace vsan

#endif  // VSAN_MODELS_TRAIN_RUNTIME_H_
