#ifndef VSAN_MODELS_CASER_H_
#define VSAN_MODELS_CASER_H_

#include <memory>
#include <vector>

#include "models/recommender.h"
#include "nn/caser_conv.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "util/rng.h"

namespace vsan {
namespace models {

// Caser (Tang & Wang 2018): the last L items form an L x d "image";
// horizontal and vertical convolutional filters extract union-level and
// point-level sequential patterns, followed by fully connected layers that
// predict the next T items (multi-hot softmax loss here).
//
// The personal user embedding of the original is omitted: held-out users
// are unseen under strong generalization, so only the convolutional
// sequence features are usable (recorded in DESIGN.md).
class Caser : public SequentialRecommender {
 public:
  struct Config {
    int64_t window = 5;                      // L, items per training image
    int32_t target_k = 2;                    // T, next items as targets
    int64_t d = 64;                          // embedding size
    std::vector<int64_t> heights = {2, 3, 4};  // horizontal filter heights
    int64_t h_filters = 16;                  // filters per height
    int64_t v_filters = 4;                   // vertical filters
    float dropout = 0.2f;
    uint64_t seed = 37;
  };

  explicit Caser(const Config& config) : config_(config) {}

  std::string name() const override { return "Caser"; }

  void Fit(const data::SequenceDataset& train,
           const TrainOptions& options) override;

  std::vector<float> Score(const std::vector<int32_t>& fold_in) const override;
  void ScoreInto(const std::vector<int32_t>& fold_in,
                 std::vector<float>* scores) const override;

  // Fast-retrieval seam: the output Linear's [d, V+1] weight columns are
  // the item vectors; the query is the convolutional feature vector after
  // the fc layer (Net::Hidden).
  bool GetFactorizedHead(FactorizedHead* head) const override;
  bool EncodeQueryInto(const std::vector<int32_t>& fold_in,
                       std::vector<float>* query) const override;

 private:
  struct Net : public nn::Module {
    Net(const Config& config, int32_t num_items, Rng* rng);

    // windows: flattened [B * window] left-padded ids -> [B, d] features
    // (everything before the output projection).
    Variable Hidden(const std::vector<int32_t>& windows, int64_t batch,
                    Rng* rng) const;

    // windows: flattened [B * window] left-padded ids -> [B, V+1] logits.
    Variable Forward(const std::vector<int32_t>& windows, int64_t batch,
                     Rng* rng) const;

    Config config;
    nn::Embedding item_emb;
    nn::HorizontalConv hconv;
    nn::VerticalConv vconv;
    nn::Linear fc;
    nn::Linear output;
  };

  Config config_;
  int32_t num_items_ = 0;
  std::unique_ptr<Net> net_;
  mutable Rng rng_{37};
};

}  // namespace models
}  // namespace vsan

#endif  // VSAN_MODELS_CASER_H_
