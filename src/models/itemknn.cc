#include "models/itemknn.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace vsan {
namespace models {

void ItemKnn::Fit(const data::SequenceDataset& train, const TrainOptions&) {
  num_items_ = train.num_items();

  // Co-occurrence counts over user item-sets and per-item user counts.
  std::vector<float> item_count(num_items_ + 1, 0.0f);
  // Sparse upper-triangle co-occurrence: co[a][b] for a < b.
  std::vector<std::unordered_map<int32_t, float>> co(num_items_ + 1);
  for (int32_t u = 0; u < train.num_users(); ++u) {
    std::unordered_set<int32_t> item_set(train.sequence(u).begin(),
                                         train.sequence(u).end());
    std::vector<int32_t> items(item_set.begin(), item_set.end());
    std::sort(items.begin(), items.end());
    for (size_t i = 0; i < items.size(); ++i) {
      item_count[items[i]] += 1.0f;
      for (size_t j = i + 1; j < items.size(); ++j) {
        co[items[i]][items[j]] += 1.0f;
      }
    }
  }

  // Cosine similarity + top-k truncation.
  neighbors_.assign(num_items_ + 1, {});
  std::vector<std::vector<Neighbor>> full(num_items_ + 1);
  for (int32_t a = 1; a <= num_items_; ++a) {
    for (const auto& [b, count] : co[a]) {
      const float denom =
          std::sqrt(item_count[a]) * std::sqrt(item_count[b]);
      if (denom <= 0.0f) continue;
      const float sim = count / denom;
      full[a].push_back({b, sim});
      full[b].push_back({a, sim});
    }
  }
  for (int32_t a = 1; a <= num_items_; ++a) {
    auto& list = full[a];
    std::sort(list.begin(), list.end(), [](const Neighbor& x, const Neighbor& y) {
      if (x.similarity != y.similarity) return x.similarity > y.similarity;
      return x.item < y.item;
    });
    if (config_.k > 0 && static_cast<int32_t>(list.size()) > config_.k) {
      list.resize(config_.k);
    }
    neighbors_[a] = std::move(list);
  }
}

float ItemKnn::Similarity(int32_t a, int32_t b) const {
  VSAN_CHECK_GE(a, 1);
  VSAN_CHECK_LE(a, num_items_);
  for (const Neighbor& n : neighbors_[a]) {
    if (n.item == b) return n.similarity;
  }
  return 0.0f;
}

std::vector<float> ItemKnn::Score(const std::vector<int32_t>& fold_in) const {
  VSAN_CHECK_GT(num_items_, 0) << "Fit() must be called before Score()";
  std::vector<float> scores(num_items_ + 1, 0.0f);
  const int64_t len = static_cast<int64_t>(fold_in.size());
  const int64_t take =
      std::min<int64_t>(len, config_.max_history > 0 ? config_.max_history
                                                     : len);
  double weight = 1.0;
  // Walk history from most recent to oldest with decaying weights.
  for (int64_t i = len - 1; i >= len - take; --i) {
    const int32_t item = fold_in[i];
    if (item >= 1 && item <= num_items_) {
      for (const Neighbor& n : neighbors_[item]) {
        scores[n.item] += static_cast<float>(weight) * n.similarity;
      }
    }
    weight *= config_.recency_decay;
  }
  return scores;
}

}  // namespace models
}  // namespace vsan
