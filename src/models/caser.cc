#include "models/caser.h"

#include <algorithm>

#include <cstring>

#include "autograd/ops.h"
#include "data/batcher.h"
#include "models/epoch_report.h"
#include "models/train_runtime.h"
#include "obs/trace.h"
#include "optim/adam.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace vsan {
namespace models {

Caser::Net::Net(const Config& cfg, int32_t num_items, Rng* rng)
    : config(cfg),
      item_emb(num_items + 1, cfg.d, rng),
      hconv(cfg.window, cfg.d, cfg.heights, cfg.h_filters, rng),
      vconv(cfg.window, cfg.d, cfg.v_filters, rng),
      fc(hconv.output_size() + vconv.output_size(), cfg.d, rng),
      output(cfg.d, num_items + 1, rng) {
  RegisterSubmodule(&item_emb);
  RegisterSubmodule(&hconv);
  RegisterSubmodule(&vconv);
  RegisterSubmodule(&fc);
  RegisterSubmodule(&output);
}

Variable Caser::Net::Hidden(const std::vector<int32_t>& windows,
                            int64_t batch, Rng* rng) const {
  Variable x = item_emb.Forward(windows, batch, config.window);
  Variable h = hconv.Forward(x);
  Variable v = vconv.Forward(x);
  Variable features = ops::Concat({h, v}, /*axis=*/1);
  features = ops::Dropout(features, config.dropout, rng, training());
  return ops::Relu(fc.Forward(features));
}

Variable Caser::Net::Forward(const std::vector<int32_t>& windows,
                             int64_t batch, Rng* rng) const {
  return output.Forward(Hidden(windows, batch, rng));
}

void Caser::Fit(const data::SequenceDataset& train, const TrainOptions& opts) {
  num_items_ = train.num_items();
  rng_ = Rng(opts.seed);
  net_ = std::make_unique<Net>(config_, num_items_, &rng_);
  net_->SetTraining(true);

  // Training instances: one per (user, position t >= 1); the window is the
  // (left-padded) L items before t, the targets are the next T items.
  struct Instance {
    int32_t user;
    int32_t t;
  };
  std::vector<Instance> instances;
  for (int32_t u = 0; u < train.num_users(); ++u) {
    const auto& seq = train.sequence(u);
    for (int32_t t = 1; t < static_cast<int32_t>(seq.size()); ++t) {
      instances.push_back({u, t});
    }
  }
  VSAN_CHECK(!instances.empty());

  optim::Adam::Options adam_opts;
  adam_opts.lr = opts.learning_rate;
  optim::Adam optimizer(net_->Parameters(), adam_opts);

  Rng shuffle_rng(opts.seed + 1);

  TrainRuntime::Hooks hooks;
  hooks.module = net_.get();
  hooks.mutable_module = net_.get();
  hooks.optimizer = &optimizer;
  hooks.rngs = {&rng_, &shuffle_rng};
  // Data order: the instance permutation (the Shuffle at each epoch's top
  // permutes the *current* order, so the shuffle RNG alone is not enough).
  hooks.save_data_state = [&instances](std::string* out) {
    const int64_t count = static_cast<int64_t>(instances.size());
    out->append(reinterpret_cast<const char*>(&count), sizeof(count));
    out->append(reinterpret_cast<const char*>(instances.data()),
                sizeof(Instance) * instances.size());
  };
  hooks.load_data_state = [&instances](const std::string& blob) {
    const size_t expected =
        sizeof(int64_t) + sizeof(Instance) * instances.size();
    int64_t count = 0;
    if (blob.size() >= sizeof(count)) {
      std::memcpy(&count, blob.data(), sizeof(count));
    }
    if (blob.size() != expected ||
        count != static_cast<int64_t>(instances.size())) {
      return Status::InvalidArgument("caser instance state size mismatch");
    }
    std::memcpy(instances.data(), blob.data() + sizeof(count),
                sizeof(Instance) * instances.size());
    return Status::Ok();
  };
  hooks.model_name = "caser";
  TrainRuntime runtime(opts, std::move(hooks));

  const int64_t L = config_.window;
  int64_t step = 0;
  int32_t epoch = 0;
  if (!runtime.Begin(&step, &epoch)) return;
  while (epoch < opts.epochs) {
    VSAN_TRACE_SPAN("train/epoch", kTrain);
    Stopwatch epoch_timer;
    shuffle_rng.Shuffle(&instances);
    double loss_sum = 0.0;
    double grad_norm_sum = 0.0;
    int64_t batches = 0;
    bool rolled_back = false;
    bool stop = false;
    for (size_t begin = 0; begin < instances.size();
         begin += opts.batch_size) {
      const int64_t rows = std::min<int64_t>(
          opts.batch_size, instances.size() - begin);
      std::vector<int32_t> windows(rows * L, data::kPaddingItem);
      std::vector<std::vector<int32_t>> targets(rows);
      for (int64_t r = 0; r < rows; ++r) {
        const auto [u, t] = instances[begin + r];
        const auto& seq = train.sequence(u);
        const int64_t take = std::min<int64_t>(t, L);
        for (int64_t i = 0; i < take; ++i) {
          windows[r * L + (L - take) + i] = seq[t - take + i];
        }
        for (int32_t j = 0;
             j < config_.target_k &&
             t + j < static_cast<int32_t>(seq.size());
             ++j) {
          targets[r].push_back(seq[t + j]);
        }
      }
      if (runtime.PreStep(step + 1)) return;  // simulated kill
      ++step;
      Variable logits = net_->Forward(windows, rows, &rng_);
      Variable loss = ops::MultiLabelSoftmaxCrossEntropy(logits, targets);
      float loss_value = loss.value()[0];
      TrainRuntime::StepAction action = runtime.GuardLoss(&loss_value, step);
      if (action == TrainRuntime::StepAction::kSkip) continue;
      if (action == TrainRuntime::StepAction::kStop) {
        stop = true;
        break;
      }
      if (action == TrainRuntime::StepAction::kRollback) {
        runtime.Rollback(&step, &epoch);
        rolled_back = true;
        break;
      }
      optimizer.ZeroGrad();
      loss.Backward();
      if (opts.grad_clip_norm > 0.0f) {
        const double norm = optimizer.ClipGradNorm(opts.grad_clip_norm);
        action = runtime.GuardGradNorm(norm, step);
        if (action == TrainRuntime::StepAction::kSkip) continue;
        if (action == TrainRuntime::StepAction::kStop) {
          stop = true;
          break;
        }
        if (action == TrainRuntime::StepAction::kRollback) {
          runtime.Rollback(&step, &epoch);
          rolled_back = true;
          break;
        }
        grad_norm_sum += norm;
      }
      optimizer.Step();
      loss_sum += loss_value;
      ++batches;
    }
    if (rolled_back) continue;  // replay from the last checkpoint
    if (batches > 0) {
      EpochStats stats;
      stats.epoch = epoch;
      stats.loss = loss_sum / batches;
      stats.wall_ms = epoch_timer.ElapsedMillis();
      stats.batches = batches;
      if (opts.grad_clip_norm > 0.0f) {
        stats.grad_norm = grad_norm_sum / batches;
      }
      stats.learning_rate = optimizer.learning_rate();
      ReportEpoch(opts, stats, step);
    }
    if (stop) break;
    runtime.EndEpoch(epoch, step);
    ++epoch;
  }
  net_->SetTraining(false);
}

std::vector<float> Caser::Score(const std::vector<int32_t>& fold_in) const {
  std::vector<float> scores;
  ScoreInto(fold_in, &scores);
  return scores;
}

void Caser::ScoreInto(const std::vector<int32_t>& fold_in,
                     std::vector<float>* scores) const {
  VSAN_CHECK(net_ != nullptr) << "Fit() must be called before Score()";
  ScopedMatMulPrecision precision_guard(eval_precision());
  const std::vector<int32_t> window =
      data::SequenceBatcher::PadSequence(fold_in, config_.window);
  Variable logits = net_->Forward(window, /*batch=*/1, &rng_);
  const Tensor& out = logits.value();
  scores->resize(num_items_ + 1);
  const float* src = out.data();
  std::copy(src, src + num_items_ + 1, scores->data());
}

bool Caser::GetFactorizedHead(FactorizedHead* head) const {
  VSAN_CHECK(net_ != nullptr)
      << "Fit() must be called before GetFactorizedHead()";
  head->dim = config_.d;
  head->num_rows = num_items_ + 1;
  head->weights = net_->output.weight_value().data();
  head->items_are_rows = false;
  head->bias =
      net_->output.has_bias() ? net_->output.bias_value().data() : nullptr;
  return true;
}

bool Caser::EncodeQueryInto(const std::vector<int32_t>& fold_in,
                            std::vector<float>* query) const {
  VSAN_CHECK(net_ != nullptr)
      << "Fit() must be called before EncodeQueryInto()";
  ScopedMatMulPrecision precision_guard(eval_precision());
  const std::vector<int32_t> window =
      data::SequenceBatcher::PadSequence(fold_in, config_.window);
  Variable hidden = net_->Hidden(window, /*batch=*/1, &rng_);
  query->resize(static_cast<size_t>(config_.d));
  const float* src = hidden.value().data();
  std::copy(src, src + config_.d, query->data());
  return true;
}

}  // namespace models
}  // namespace vsan
