#ifndef VSAN_MODELS_EMBEDDING_MIPS_H_
#define VSAN_MODELS_EMBEDDING_MIPS_H_

#include <string>
#include <vector>

#include "models/recommender.h"

namespace vsan {
namespace models {

// Minimal maximum-inner-product model for exercising the retrieval layer at
// catalog sizes no trainable model here could fit in a test's time budget
// (the million-item benchmarks and RSS audits).  The "model" is just a
// random item-embedding table plus optional per-item bias; a user's query
// vector is the mean of their fold-in items' embeddings, and scoring is the
// same dense matmul every factorized model ends with — so its exact
// ScoreInto is an honest baseline for the fast backends, not a strawman.
//
// FitCatalog() initializes the table directly from a catalog size, skipping
// dataset construction entirely; Fit() forwards to it so the model still
// satisfies the SequentialRecommender contract on real datasets.
class EmbeddingMips : public SequentialRecommender {
 public:
  struct Config {
    int64_t d = 64;
    bool with_bias = true;  // exercise the bias path of the backends
    uint64_t seed = 97;
  };

  explicit EmbeddingMips(const Config& config) : config_(config) {}

  std::string name() const override { return "EmbeddingMIPS"; }

  void Fit(const data::SequenceDataset& train,
           const TrainOptions& options) override;

  // Builds the random table for a catalog of `num_items` items (row 0 is
  // the padding item and stays zero).
  void FitCatalog(int32_t num_items);

  std::vector<float> Score(const std::vector<int32_t>& fold_in) const override;
  void ScoreInto(const std::vector<int32_t>& fold_in,
                 std::vector<float>* scores) const override;

  bool GetFactorizedHead(FactorizedHead* head) const override;
  bool EncodeQueryInto(const std::vector<int32_t>& fold_in,
                       std::vector<float>* query) const override;

  int32_t num_items() const { return num_items_; }

 private:
  Config config_;
  int32_t num_items_ = 0;
  std::vector<float> table_;  // [num_items + 1, d] row-major
  std::vector<float> bias_;   // [num_items + 1]; empty when !with_bias
};

}  // namespace models
}  // namespace vsan

#endif  // VSAN_MODELS_EMBEDDING_MIPS_H_
