#ifndef VSAN_MODELS_GRU4REC_H_
#define VSAN_MODELS_GRU4REC_H_

#include <memory>

#include "models/recommender.h"
#include "nn/embedding.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "util/rng.h"

namespace vsan {
namespace models {

// GRU4Rec (Hidasi et al. 2016): item embeddings feed a GRU; each hidden
// state predicts the next item.  Trained here with full-softmax
// cross-entropy (the original's sampled pairwise losses are a training-cost
// optimization; the softmax objective is loss-consistent with the other
// sequence models, see DESIGN.md).  Sequences are right-padded so leading
// padding never pollutes the recurrent state.
class Gru4Rec : public SequentialRecommender {
 public:
  struct Config {
    int64_t max_len = 50;
    int64_t d = 64;       // embedding size
    int64_t hidden = 64;  // GRU state size
    float dropout = 0.2f;
    uint64_t seed = 31;
  };

  explicit Gru4Rec(const Config& config) : config_(config) {}

  std::string name() const override { return "GRU4Rec"; }

  void Fit(const data::SequenceDataset& train,
           const TrainOptions& options) override;

  std::vector<float> Score(const std::vector<int32_t>& fold_in) const override;
  void ScoreInto(const std::vector<int32_t>& fold_in,
                 std::vector<float>* scores) const override;

  // Fast-retrieval seam: the output Linear's [hidden, V+1] weight columns
  // are the item vectors; the query is the last real position's GRU state.
  bool GetFactorizedHead(FactorizedHead* head) const override;
  bool EncodeQueryInto(const std::vector<int32_t>& fold_in,
                       std::vector<float>* query) const override;

 private:
  struct Net : public nn::Module {
    Net(const Config& config, int32_t num_items, Rng* rng);

    // inputs: flattened [B * max_len] right-padded ids.
    // Returns hidden states [B, max_len, hidden].
    Variable Encode(const std::vector<int32_t>& inputs, int64_t batch,
                    Rng* rng) const;

    // Output projection on 2-D rows [R, hidden] -> [R, num_items+1].
    Variable Logits(const Variable& rows) const { return output.Forward(rows); }

    Config config;
    nn::Embedding item_emb;
    nn::Gru gru;
    nn::Linear output;
  };

  Config config_;
  int32_t num_items_ = 0;
  std::unique_ptr<Net> net_;
  mutable Rng rng_{31};
};

}  // namespace models
}  // namespace vsan

#endif  // VSAN_MODELS_GRU4REC_H_
