#ifndef VSAN_MODELS_REGISTRY_H_
#define VSAN_MODELS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "models/recommender.h"

namespace vsan {
namespace models {

// One place that knows how to construct every recommender by name, shared
// by the CLI and the experiment harness.  Sizes come from `ModelSizing`;
// model-specific details (paper-faithful defaults, k, loss variants) are
// set by the registry itself and can be overridden by the caller through
// the returned object where the model exposes a config.
struct ModelSizing {
  int64_t d = 32;        // embedding / hidden width
  int64_t max_len = 30;  // modeled sequence length n
  int32_t blocks = 1;    // attention blocks (SASRec) / h1 (VSAN)
  float dropout = 0.2f;
  uint64_t seed = 29;
};

// Case-insensitive names: pop, itemknn, bpr, fpmc, transrec, gru4rec,
// caser, svae, sasrec, vsan.  Returns nullptr for unknown names.
std::unique_ptr<SequentialRecommender> CreateModel(const std::string& name,
                                                   const ModelSizing& sizing);

// All registered names, in Table III order plus extensions.
std::vector<std::string> RegisteredModelNames();

}  // namespace models
}  // namespace vsan

#endif  // VSAN_MODELS_REGISTRY_H_
