#ifndef VSAN_MODELS_RECOMMENDER_H_
#define VSAN_MODELS_RECOMMENDER_H_

#include <functional>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace vsan {
namespace optim {
class LrSchedule;
}  // namespace optim
}  // namespace vsan

namespace vsan {

// Options shared by every trainable recommender.
struct TrainOptions {
  int32_t epochs = 10;
  int64_t batch_size = 128;
  float learning_rate = 1e-3f;  // paper: Adam, lr 1e-3
  // Optional per-step schedule (not owned); overrides learning_rate when
  // set.  See optim/lr_schedule.h.
  const optim::LrSchedule* lr_schedule = nullptr;
  float grad_clip_norm = 5.0f;  // 0 disables clipping
  uint64_t seed = 17;
  bool verbose = false;
  // Invoked after each epoch with (epoch index, mean training loss).
  std::function<void(int32_t, double)> epoch_callback;
};

// Common interface for the paper's nine models (Table III).
//
// Evaluation follows strong generalization: held-out users are unseen at
// training time, so Score() receives only a fold-in item sequence and must
// return a preference score for every item.
class SequentialRecommender {
 public:
  virtual ~SequentialRecommender() = default;

  virtual std::string name() const = 0;

  // Trains on full histories of training users.
  virtual void Fit(const data::SequenceDataset& train,
                   const TrainOptions& options) = 0;

  // Scores all items for a previously unseen user given their fold-in
  // history (chronological, item ids in [1, num_items]).  Returns a vector
  // of size num_items + 1; index 0 (the padding item) is ignored by the
  // evaluator.  Higher means more likely to be interacted with next.
  virtual std::vector<float> Score(
      const std::vector<int32_t>& fold_in) const = 0;
};

}  // namespace vsan

#endif  // VSAN_MODELS_RECOMMENDER_H_
