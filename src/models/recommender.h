#ifndef VSAN_MODELS_RECOMMENDER_H_
#define VSAN_MODELS_RECOMMENDER_H_

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "tensor/gemm.h"
#include "util/early_stopping.h"
#include "util/thread_pool.h"

namespace vsan {
namespace optim {
class LrSchedule;
}  // namespace optim
namespace obs {
class TelemetryRecorder;
}  // namespace obs
}  // namespace vsan

namespace vsan {

// Per-epoch training summary handed to TrainOptions::epoch_callback.
// grad_norm is the mean pre-clip gradient norm over the epoch's steps
// (-1 when clipping is disabled or the trainer does not use autograd);
// learning_rate is the value used on the epoch's last step (-1 when the
// trainer has no notion of a per-step rate).
struct EpochStats {
  int32_t epoch = 0;
  double loss = 0.0;
  double wall_ms = 0.0;
  int64_t batches = 0;
  double grad_norm = -1.0;
  float learning_rate = -1.0f;
};

// What to do when a training step produces a non-finite loss or a
// non-finite post-clip gradient norm.
enum class DivergencePolicy {
  kAbort,                     // stop training immediately
  kSkipBatch,                 // drop the poisoned batch, keep going
  kRollbackToLastCheckpoint,  // reload the last checkpoint and continue
};

// Options shared by every trainable recommender.
struct TrainOptions {
  int32_t epochs = 10;
  int64_t batch_size = 128;
  float learning_rate = 1e-3f;  // paper: Adam, lr 1e-3
  // Optional per-step schedule (not owned); overrides learning_rate when
  // set.  See optim/lr_schedule.h.
  const optim::LrSchedule* lr_schedule = nullptr;
  float grad_clip_norm = 5.0f;  // 0 disables clipping
  uint64_t seed = 17;
  bool verbose = false;
  // Invoked after each epoch with that epoch's summary stats.
  std::function<void(const EpochStats&)> epoch_callback;
  // Optional per-epoch JSONL sink (not owned); see obs/telemetry.h.
  obs::TelemetryRecorder* telemetry = nullptr;

  // --- Crash safety ---------------------------------------------------
  // When non-empty, a full VSANCKP1 checkpoint (params + optimizer moments
  // + RNG streams + data order) is written to
  // `<checkpoint_dir>/<model>.ckpt` every `checkpoint_every_n_epochs`
  // epochs, atomically.  See nn/checkpoint.h.
  std::string checkpoint_dir;
  int32_t checkpoint_every_n_epochs = 1;
  // Resume from the checkpoint in checkpoint_dir if one exists.  The
  // resumed run's final parameters are bitwise identical to an
  // uninterrupted run with the same options.
  bool resume = false;
  // Reaction to a non-finite loss or gradient norm mid-epoch.  Rollback
  // degrades to skip (with a warning) when no checkpoint exists yet.
  DivergencePolicy divergence_policy = DivergencePolicy::kSkipBatch;
  // Optional early stopper (not owned).  The caller drives Update() from
  // epoch_callback; the trainer only persists/restores its progress inside
  // checkpoints so a resumed run keeps the patience countdown.
  EarlyStopper* early_stopper = nullptr;
};

// A model's final scoring layer exposed as raw fp32 buffers, the seam the
// fast-retrieval backends (eval/retrieval.h) build on.  For every sequence
// model here the score vector decomposes as
//
//   score[i] = dot(query, item_vector(i)) + bias[i]
//
// where `query` comes from SequentialRecommender::EncodeQueryInto — the
// same eval-mode forward pass as ScoreInto, stopped just before the output
// projection.  With that decomposition the evaluator can rank a large
// catalog without materializing the full score vector: quantized scans and
// IVF cluster pruning only need the item vectors.
//
// `weights` and `bias` point into the model's own parameters; they are not
// owned and stay valid only while the model is alive and not refitted.
struct FactorizedHead {
  int64_t dim = 0;       // width of the query and item vectors
  int64_t num_rows = 0;  // num_items + 1; row 0 is the padding item
  // Item i's vector is the contiguous row weights[i*dim .. i*dim+dim) when
  // items_are_rows (an embedding-table layout), otherwise the strided
  // column weights[p*num_rows + i] for p in [0, dim) (a Linear layer's
  // [in, out] weight).
  const float* weights = nullptr;
  bool items_are_rows = true;
  const float* bias = nullptr;  // optional [num_rows]; nullptr when absent

  // Copies item i's vector into out[0..dim).
  void CopyItem(int64_t i, float* out) const {
    if (items_are_rows) {
      std::memcpy(out, weights + i * dim,
                  sizeof(float) * static_cast<size_t>(dim));
    } else {
      for (int64_t p = 0; p < dim; ++p) out[p] = weights[p * num_rows + i];
    }
  }
};

// Common interface for the paper's nine models (Table III).
//
// Evaluation follows strong generalization: held-out users are unseen at
// training time, so Score() receives only a fold-in item sequence and must
// return a preference score for every item.
class SequentialRecommender {
 public:
  virtual ~SequentialRecommender() = default;

  virtual std::string name() const = 0;

  // Trains on full histories of training users.
  virtual void Fit(const data::SequenceDataset& train,
                   const TrainOptions& options) = 0;

  // Scores all items for a previously unseen user given their fold-in
  // history (chronological, item ids in [1, num_items]).  Returns a vector
  // of size num_items + 1; index 0 (the padding item) is ignored by the
  // evaluator.  Higher means more likely to be interacted with next.
  virtual std::vector<float> Score(
      const std::vector<int32_t>& fold_in) const = 0;

  // Like Score(), but writes into a caller-owned vector so repeated calls
  // (the evaluator scores thousands of users in a loop) reuse one
  // allocation instead of constructing a fresh vector per user.  `scores`
  // is resized to num_items + 1 and fully overwritten.  The default
  // forwards to Score(); models with a custom fast path override it.
  virtual void ScoreInto(const std::vector<int32_t>& fold_in,
                         std::vector<float>* scores) const {
    *scores = Score(fold_in);
  }

  // --- Fast-retrieval seam (see FactorizedHead above) -------------------
  //
  // Models whose scoring head is an affine projection of a user vector
  // fill `head` / `query` and return true; the defaults report no
  // factorization, which restricts such a model to the exact backend.
  // Both must only be called after Fit(), and EncodeQueryInto must be
  // thread-safe for concurrent const calls exactly like Score().

  virtual bool GetFactorizedHead(FactorizedHead* head) const {
    (void)head;
    return false;
  }

  // Writes the query-side vector (size head.dim) for one user: the same
  // deterministic eval-mode forward as ScoreInto, minus the projection
  // onto the item vocabulary.
  virtual bool EncodeQueryInto(const std::vector<int32_t>& fold_in,
                               std::vector<float>* query) const {
    (void)fold_in;
    (void)query;
    return false;
  }

  // Batched encode: writes fold_ins.size() query vectors contiguously into
  // `queries` ([count, head.dim] row-major).  The hot path of the serving
  // daemon's dynamic batching queue (src/serve/batcher.h): models whose
  // eval forward is a fixed-shape sequence stack (vsan, sasrec) override
  // this with ONE forward pass over the whole batch — a single set of
  // blocked GEMMs over [count * max_len] rows instead of count per-query
  // GEMM cascades.  Results are bitwise-identical to calling
  // EncodeQueryInto per query: every per-row accumulation chain in the
  // blocked GEMM is a pure function of the row's operands and the K
  // blocking, never of how many other rows share the call (the same
  // invariance tests/gemm_blocked_test.cc locks down across block sizes),
  // and no eval-mode op reduces across batch entries.  Asserted in
  // tests/serve_test.cc.  The default falls back to the per-query path, so
  // every model with EncodeQueryInto batches correctly, just without the
  // fused-GEMM win.  Thread-safety matches EncodeQueryInto (concurrent
  // const calls are safe).
  virtual bool EncodeBatchInto(
      const std::vector<std::vector<int32_t>>& fold_ins,
      std::vector<float>* queries) const {
    queries->clear();
    std::vector<float> one;
    for (const std::vector<int32_t>& fold_in : fold_ins) {
      if (!EncodeQueryInto(fold_in, &one)) return false;
      queries->insert(queries->end(), one.begin(), one.end());
    }
    return true;
  }

  // --- Inference precision ----------------------------------------------
  //
  // Operand-storage precision for the GEMMs inside Score / ScoreInto /
  // EncodeQueryInto (tensor/gemm.h).  Each model's scoring path installs a
  // ScopedMatMulPrecision guard with this value *inside* the virtual call,
  // so the setting follows the model onto whatever thread scores it
  // (ScoreBatch fans ScoreInto out over pool workers) and can never leak
  // into training: Fit() never consults it.  With kBf16, the accuracy cost
  // is tracked — not assumed away — by the eval-delta test
  // (tests/bf16_test.cc) and the EXPERIMENTS.md table.
  void set_eval_precision(MatMulPrecision precision) {
    eval_precision_ = precision;
  }
  MatMulPrecision eval_precision() const { return eval_precision_; }

 private:
  MatMulPrecision eval_precision_ = MatMulPrecision::kFp32;
};

// Batched inference: scores every fold-in history and returns the score
// vectors positionally aligned with `fold_ins`.  With `parallel` set (the
// opt-in path), users are distributed over the global ThreadPool; Score()
// must then be thread-safe for concurrent const calls, which holds for all
// models in this library because eval-mode forwards never mutate model
// state (dropout and latent sampling are training-only).  The kernels a
// Score() call reaches fall back to serial inside the pool, so the two
// levels compose without oversubscription, and results are identical to
// the serial path at every thread count.
inline std::vector<std::vector<float>> ScoreBatch(
    const SequentialRecommender& model,
    const std::vector<std::vector<int32_t>>& fold_ins, bool parallel = true) {
  std::vector<std::vector<float>> scores(fold_ins.size());
  const int64_t count = static_cast<int64_t>(fold_ins.size());
  if (!parallel) {
    for (int64_t i = 0; i < count; ++i) {
      model.ScoreInto(fold_ins[i], &scores[i]);
    }
    return scores;
  }
  ParallelFor(0, count, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      model.ScoreInto(fold_ins[i], &scores[i]);
    }
  });
  return scores;
}

}  // namespace vsan

#endif  // VSAN_MODELS_RECOMMENDER_H_
