#ifndef VSAN_MODELS_SVAE_H_
#define VSAN_MODELS_SVAE_H_

#include <memory>

#include "models/recommender.h"
#include "nn/embedding.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "util/rng.h"

namespace vsan {
namespace models {

// SVAE (Sachdeva et al. 2019): a recurrent VAE.  A GRU consumes the item
// sequence; each hidden state parameterizes a Gaussian posterior whose
// sample is decoded by a feed-forward network into next-k item
// probabilities.  Trained on the ELBO with KL annealing.  The VAE+RNN
// baseline that VSAN's attention-based inference/generation replaces.
class Svae : public SequentialRecommender {
 public:
  struct Config {
    int64_t max_len = 50;
    int64_t d = 64;        // embedding size
    int64_t hidden = 64;   // GRU state size
    int64_t latent = 32;   // z dimension
    int32_t next_k = 1;    // how many future items each position predicts
    float dropout = 0.2f;
    float beta_max = 0.2f;       // KL weight after annealing
    int64_t anneal_steps = 500;  // linear warm-up steps
    uint64_t seed = 41;
  };

  explicit Svae(const Config& config) : config_(config) {}

  std::string name() const override { return "SVAE"; }

  void Fit(const data::SequenceDataset& train,
           const TrainOptions& options) override;

  std::vector<float> Score(const std::vector<int32_t>& fold_in) const override;
  void ScoreInto(const std::vector<int32_t>& fold_in,
                 std::vector<float>* scores) const override;

  // Fast-retrieval seam: the output Linear's weight columns are the item
  // vectors; the query is the decoder's pre-projection feature vector
  // (Net::DecodeHidden) at the last real position's posterior mean.
  bool GetFactorizedHead(FactorizedHead* head) const override;
  bool EncodeQueryInto(const std::vector<int32_t>& fold_in,
                       std::vector<float>* query) const override;

 private:
  struct Net : public nn::Module {
    Net(const Config& config, int32_t num_items, Rng* rng);

    struct Outputs {
      Variable z;       // [B*n, latent] sampled latent (mu at eval time)
      Variable mu;      // [B*n, latent]
      Variable logvar;  // [B*n, latent]
    };

    // inputs: flattened [B * max_len] right-padded ids.  Runs the encoder
    // and latent layer; decode selected rows with Decode().
    Outputs Forward(const std::vector<int32_t>& inputs, int64_t batch,
                    Rng* rng) const;

    // Decoder feed-forward stack on 2-D latent rows [R, latent], stopped
    // before the output projection: -> [R, hidden].
    Variable DecodeHidden(const Variable& z_rows, Rng* rng) const;

    // Decoder on 2-D latent rows [R, latent] -> [R, num_items+1].
    Variable Decode(const Variable& z_rows, Rng* rng) const;

    Config config;
    nn::Embedding item_emb;
    nn::Gru gru;
    nn::Linear mu_head;
    nn::Linear logvar_head;
    nn::Linear dec1;
    nn::Linear output;
  };

  Config config_;
  int32_t num_items_ = 0;
  std::unique_ptr<Net> net_;
  mutable Rng rng_{41};
};

}  // namespace models
}  // namespace vsan

#endif  // VSAN_MODELS_SVAE_H_
