#ifndef VSAN_MODELS_SASREC_H_
#define VSAN_MODELS_SASREC_H_

#include <memory>
#include <vector>

#include "models/recommender.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/module.h"
#include "util/rng.h"

namespace vsan {
namespace models {

// SASRec (Kang & McAuley 2018): item + learned position embeddings feed a
// stack of causal self-attention blocks; per-position next-item logits come
// from the tied item-embedding table.  The strongest deterministic baseline
// in Table III and the skeleton VSAN builds on.
class SasRec : public SequentialRecommender {
 public:
  enum class LossType {
    kFullSoftmax,  // exact softmax over all items (this repo's default;
                   // loss-consistent with the other sequence models)
    kSampledBce,   // the original paper's binary CE with sampled negatives
  };

  struct Config {
    int64_t max_len = 50;
    int64_t d = 64;
    int32_t num_blocks = 2;
    float dropout = 0.2f;
    LossType loss = LossType::kFullSoftmax;
    int32_t num_negatives = 1;  // negatives per positive for kSampledBce
    uint64_t seed = 29;
  };

  explicit SasRec(const Config& config) : config_(config) {}

  std::string name() const override { return "SASRec"; }

  void Fit(const data::SequenceDataset& train,
           const TrainOptions& options) override;

  std::vector<float> Score(const std::vector<int32_t>& fold_in) const override;
  void ScoreInto(const std::vector<int32_t>& fold_in,
                 std::vector<float>* scores) const override;

  // Fast-retrieval seam: logits are hidden . item_emb row (tied table, no
  // bias), so the head is the embedding table and the query is the last
  // position's hidden state.
  bool GetFactorizedHead(FactorizedHead* head) const override;
  bool EncodeQueryInto(const std::vector<int32_t>& fold_in,
                       std::vector<float>* query) const override;
  // One Encode over the whole batch; bitwise-identical per query to
  // EncodeQueryInto (see models/recommender.h).
  bool EncodeBatchInto(const std::vector<std::vector<int32_t>>& fold_ins,
                       std::vector<float>* queries) const override;

  int64_t NumParameters() const {
    return net_ ? net_->NumParameters() : 0;
  }

  // Trained network (null before Fit); exposed for checkpoint tests that
  // compare parameters bitwise across resumed runs.
  const nn::Module* module() const { return net_.get(); }

 private:
  // The trainable network, built lazily in Fit() once the item count is
  // known.
  struct Net : public nn::Module {
    Net(const Config& config, int32_t num_items, Rng* rng);

    // inputs: flattened [B * max_len] left-padded item ids.
    // Returns per-position hidden states [B, max_len, d].
    Variable Encode(const std::vector<int32_t>& inputs, int64_t batch,
                    Rng* rng) const;

    // Tied output projection: [B, n, d] -> [B, n, num_items+1].
    Variable Logits(const Variable& hidden) const;

    Config config;
    nn::Embedding item_emb;
    Variable pos_emb;  // [max_len, d]
    std::vector<std::unique_ptr<nn::SelfAttentionBlock>> blocks;
    Tensor causal_mask;
  };

  Config config_;
  int32_t num_items_ = 0;
  std::unique_ptr<Net> net_;
  mutable Rng rng_{29};
};

}  // namespace models
}  // namespace vsan

#endif  // VSAN_MODELS_SASREC_H_
