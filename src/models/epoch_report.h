#ifndef VSAN_MODELS_EPOCH_REPORT_H_
#define VSAN_MODELS_EPOCH_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "models/recommender.h"
#include "obs/telemetry.h"

namespace vsan {
namespace models {

// Forwards one epoch's stats to TrainOptions::epoch_callback and, when set,
// TrainOptions::telemetry.  `step` is the cumulative step count after the
// epoch; `extras` are model-specific key/value pairs (e.g. the VSAN loss
// decomposition) appended to the telemetry record verbatim.
inline void ReportEpoch(
    const TrainOptions& options, const EpochStats& stats, int64_t step,
    std::vector<std::pair<std::string, double>> extras = {}) {
  if (options.telemetry != nullptr) {
    obs::EpochRecord record;
    record.epoch = stats.epoch;
    record.loss = stats.loss;
    record.wall_ms = stats.wall_ms;
    record.batches = stats.batches;
    record.step = step;
    record.grad_norm = stats.grad_norm;
    record.learning_rate = stats.learning_rate;
    record.extras = std::move(extras);
    options.telemetry->RecordEpoch(record);
  }
  if (options.epoch_callback) options.epoch_callback(stats);
}

}  // namespace models
}  // namespace vsan

#endif  // VSAN_MODELS_EPOCH_REPORT_H_
