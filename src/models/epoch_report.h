#ifndef VSAN_MODELS_EPOCH_REPORT_H_
#define VSAN_MODELS_EPOCH_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "models/recommender.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace vsan {
namespace models {

// Forwards one epoch's stats to TrainOptions::epoch_callback and, when set,
// TrainOptions::telemetry.  `step` is the cumulative step count after the
// epoch; `extras` are model-specific key/value pairs (e.g. the VSAN loss
// decomposition) appended to the telemetry record verbatim.
//
// Crash-safety counters (cumulative, process-wide) ride along in the
// telemetry record once they become nonzero, so a JSONL tail shows when a
// run started skipping batches, rolling back, or writing checkpoints —
// clean runs emit exactly the same record shape as before.
inline void ReportEpoch(
    const TrainOptions& options, const EpochStats& stats, int64_t step,
    std::vector<std::pair<std::string, double>> extras = {}) {
  if (options.telemetry != nullptr) {
    obs::EpochRecord record;
    record.epoch = stats.epoch;
    record.loss = stats.loss;
    record.wall_ms = stats.wall_ms;
    record.batches = stats.batches;
    record.step = step;
    record.grad_norm = stats.grad_norm;
    record.learning_rate = stats.learning_rate;
    record.extras = std::move(extras);
    auto& metrics = obs::MetricsRegistry::Global();
    const int64_t nonfinite =
        metrics.GetCounter("fault.nonfinite_loss")->value() +
        metrics.GetCounter("fault.nonfinite_grad")->value();
    if (nonfinite > 0) {
      record.extras.emplace_back("fault_nonfinite",
                                 static_cast<double>(nonfinite));
    }
    const int64_t rollbacks = metrics.GetCounter("fault.rollbacks")->value();
    if (rollbacks > 0) {
      record.extras.emplace_back("fault_rollbacks",
                                 static_cast<double>(rollbacks));
    }
    const int64_t saves = metrics.GetCounter("ckpt.saves")->value();
    if (saves > 0) {
      record.extras.emplace_back("ckpt_saves", static_cast<double>(saves));
    }
    options.telemetry->RecordEpoch(record);
  }
  if (options.epoch_callback) options.epoch_callback(stats);
}

}  // namespace models
}  // namespace vsan

#endif  // VSAN_MODELS_EPOCH_REPORT_H_
