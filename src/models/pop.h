#ifndef VSAN_MODELS_POP_H_
#define VSAN_MODELS_POP_H_

#include "models/recommender.h"

namespace vsan {
namespace models {

// POP baseline: ranks items by global interaction count in the training
// corpus, identically for every user.
class Pop : public SequentialRecommender {
 public:
  Pop() = default;

  std::string name() const override { return "POP"; }

  void Fit(const data::SequenceDataset& train,
           const TrainOptions& options) override;

  std::vector<float> Score(const std::vector<int32_t>& fold_in) const override;

 private:
  std::vector<float> counts_;  // indexed by item id (0 = padding)
};

}  // namespace models
}  // namespace vsan

#endif  // VSAN_MODELS_POP_H_
