#include "models/fpmc.h"

#include <algorithm>
#include <cmath>

#include "models/epoch_report.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace vsan {
namespace models {
namespace {

float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

void Fpmc::ComposeUser(const std::vector<int32_t>& items, int64_t end,
                       float* out) const {
  const int64_t d = config_.d;
  std::fill(out, out + d, 0.0f);
  const int64_t take = std::min<int64_t>(end, config_.max_context_items);
  if (take <= 0) return;
  for (int64_t i = end - take; i < end; ++i) {
    const float* c = context_.data() + static_cast<int64_t>(items[i]) * d;
    for (int64_t j = 0; j < d; ++j) out[j] += c[j];
  }
  const float inv = 1.0f / static_cast<float>(take);
  for (int64_t j = 0; j < d; ++j) out[j] *= inv;
}

void Fpmc::Fit(const data::SequenceDataset& train, const TrainOptions& opts) {
  num_items_ = train.num_items();
  const int64_t d = config_.d;
  Rng rng(opts.seed);
  auto init = [&](std::vector<float>* v) {
    v->resize(static_cast<int64_t>(num_items_ + 1) * d);
    for (float& x : *v) x = static_cast<float>(rng.Normal(0.0, 0.05));
  };
  init(&context_);
  init(&mf_item_);
  init(&mc_prev_);
  init(&mc_next_);

  // Training positions: (user, t) with t >= 1 so a previous item exists.
  std::vector<std::pair<int32_t, int32_t>> positions;
  for (int32_t u = 0; u < train.num_users(); ++u) {
    const auto& seq = train.sequence(u);
    for (int32_t t = 1; t < static_cast<int32_t>(seq.size()); ++t) {
      positions.emplace_back(u, t);
    }
  }
  VSAN_CHECK(!positions.empty());

  const float lr = opts.learning_rate;
  const float reg = config_.l2_reg;
  std::vector<float> user_vec(d);
  std::vector<float> u_diff(d);

  int64_t step = 0;
  for (int32_t epoch = 0; epoch < opts.epochs; ++epoch) {
    VSAN_TRACE_SPAN("train/epoch", kTrain);
    Stopwatch epoch_timer;
    double loss_sum = 0.0;
    for (size_t s = 0; s < positions.size(); ++s) {
      const auto [u, t] = positions[rng.UniformInt(positions.size())];
      const auto& seq = train.sequence(u);
      const int32_t prev = seq[t - 1];
      const int32_t pos = seq[t];
      int32_t neg = static_cast<int32_t>(rng.UniformInt(1, num_items_));
      while (neg == pos) {
        neg = static_cast<int32_t>(rng.UniformInt(1, num_items_));
      }

      ComposeUser(seq, t, user_vec.data());
      float* up = mf_item_.data() + static_cast<int64_t>(pos) * d;
      float* un = mf_item_.data() + static_cast<int64_t>(neg) * d;
      float* w = mc_prev_.data() + static_cast<int64_t>(prev) * d;
      float* zp = mc_next_.data() + static_cast<int64_t>(pos) * d;
      float* zn = mc_next_.data() + static_cast<int64_t>(neg) * d;

      float x = 0.0f;
      for (int64_t j = 0; j < d; ++j) {
        x += user_vec[j] * (up[j] - un[j]) + w[j] * (zp[j] - zn[j]);
      }
      if (!std::isfinite(x)) {
        // Divergence guard: drop the poisoned sample instead of spreading
        // NaN through the factor tables.
        obs::MetricsRegistry::Global()
            .GetCounter("fault.nonfinite_loss")
            ->Increment();
        continue;
      }
      const float coeff = SigmoidF(-x);
      loss_sum += std::log1p(std::exp(-x));

      for (int64_t j = 0; j < d; ++j) u_diff[j] = up[j] - un[j];
      for (int64_t j = 0; j < d; ++j) {
        const float gz = coeff * w[j];
        const float gw = coeff * (zp[j] - zn[j]);
        const float gu = coeff * user_vec[j];
        up[j] += lr * (gu - reg * up[j]);
        un[j] += lr * (-gu - reg * un[j]);
        zp[j] += lr * (gz - reg * zp[j]);
        zn[j] += lr * (-gz - reg * zn[j]);
        w[j] += lr * (gw - reg * w[j]);
      }
      // Distribute the user-factor gradient to the context embeddings.
      const int64_t take = std::min<int64_t>(t, config_.max_context_items);
      if (take > 0) {
        const float ctx_scale = coeff / static_cast<float>(take);
        for (int64_t i = t - take; i < t; ++i) {
          float* c = context_.data() + static_cast<int64_t>(seq[i]) * d;
          for (int64_t j = 0; j < d; ++j) {
            c[j] += lr * (ctx_scale * u_diff[j] - reg * c[j]);
          }
        }
      }
    }
    step += static_cast<int64_t>(positions.size());
    EpochStats stats;
    stats.epoch = epoch;
    stats.loss = loss_sum / positions.size();
    stats.wall_ms = epoch_timer.ElapsedMillis();
    stats.batches = static_cast<int64_t>(positions.size());
    stats.learning_rate = lr;
    ReportEpoch(opts, stats, step);
  }
}

std::vector<float> Fpmc::Score(const std::vector<int32_t>& fold_in) const {
  VSAN_CHECK_GT(num_items_, 0) << "Fit() must be called before Score()";
  const int64_t d = config_.d;
  std::vector<float> user_vec(d);
  ComposeUser(fold_in, static_cast<int64_t>(fold_in.size()), user_vec.data());
  const int32_t prev = fold_in.empty() ? 0 : fold_in.back();
  const float* w = mc_prev_.data() + static_cast<int64_t>(prev) * d;

  std::vector<float> scores(num_items_ + 1, 0.0f);
  for (int32_t item = 1; item <= num_items_; ++item) {
    const float* u = mf_item_.data() + static_cast<int64_t>(item) * d;
    const float* z = mc_next_.data() + static_cast<int64_t>(item) * d;
    float s = 0.0f;
    for (int64_t j = 0; j < d; ++j) s += user_vec[j] * u[j];
    if (prev != 0) {
      for (int64_t j = 0; j < d; ++j) s += w[j] * z[j];
    }
    scores[item] = s;
  }
  return scores;
}

}  // namespace models
}  // namespace vsan
