#include "models/bpr.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "models/epoch_report.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace vsan {
namespace models {
namespace {

float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

void Bpr::ComposeUser(const std::vector<int32_t>& items, float* out) const {
  const int64_t d = config_.d;
  std::fill(out, out + d, 0.0f);
  const int64_t take = std::min<int64_t>(
      static_cast<int64_t>(items.size()), config_.max_context_items);
  if (take == 0) return;
  const int64_t start = static_cast<int64_t>(items.size()) - take;
  for (int64_t i = start; i < static_cast<int64_t>(items.size()); ++i) {
    const float* c = context_.data() + static_cast<int64_t>(items[i]) * d;
    for (int64_t j = 0; j < d; ++j) out[j] += c[j];
  }
  const float inv = 1.0f / static_cast<float>(take);
  for (int64_t j = 0; j < d; ++j) out[j] *= inv;
}

void Bpr::Fit(const data::SequenceDataset& train, const TrainOptions& opts) {
  num_items_ = train.num_items();
  const int64_t d = config_.d;
  Rng rng(opts.seed);
  auto init = [&](std::vector<float>* v, int64_t count) {
    v->resize(count);
    for (float& x : *v) x = static_cast<float>(rng.Normal(0.0, 0.05));
  };
  init(&context_, static_cast<int64_t>(num_items_ + 1) * d);
  init(&target_, static_cast<int64_t>(num_items_ + 1) * d);
  bias_.assign(num_items_ + 1, 0.0f);

  // Users with at least one interaction, and their item sets for negative
  // sampling.
  std::vector<int32_t> users;
  std::vector<std::unordered_set<int32_t>> item_sets(train.num_users());
  for (int32_t u = 0; u < train.num_users(); ++u) {
    if (train.sequence(u).empty()) continue;
    users.push_back(u);
    item_sets[u].insert(train.sequence(u).begin(), train.sequence(u).end());
  }
  VSAN_CHECK(!users.empty());

  const int64_t samples_per_epoch = train.num_interactions();
  std::vector<float> user_vec(d);
  std::vector<float> diff(d);
  const float lr = opts.learning_rate;
  const float reg = config_.l2_reg;

  int64_t step = 0;
  for (int32_t epoch = 0; epoch < opts.epochs; ++epoch) {
    VSAN_TRACE_SPAN("train/epoch", kTrain);
    Stopwatch epoch_timer;
    double loss_sum = 0.0;
    for (int64_t s = 0; s < samples_per_epoch; ++s) {
      const int32_t u = users[rng.UniformInt(users.size())];
      const std::vector<int32_t>& seq = train.sequence(u);
      const int32_t pos = seq[rng.UniformInt(seq.size())];
      int32_t neg = static_cast<int32_t>(rng.UniformInt(1, num_items_));
      while (item_sets[u].count(neg) > 0) {
        neg = static_cast<int32_t>(rng.UniformInt(1, num_items_));
      }

      ComposeUser(seq, user_vec.data());
      float* vp = target_.data() + static_cast<int64_t>(pos) * d;
      float* vn = target_.data() + static_cast<int64_t>(neg) * d;
      float x = bias_[pos] - bias_[neg];
      for (int64_t j = 0; j < d; ++j) x += user_vec[j] * (vp[j] - vn[j]);
      if (!std::isfinite(x)) {
        // Divergence guard: drop the poisoned sample instead of spreading
        // NaN through the factor tables.
        obs::MetricsRegistry::Global()
            .GetCounter("fault.nonfinite_loss")
            ->Increment();
        continue;
      }
      const float coeff = SigmoidF(-x);  // d(-log sigma(x))/dx = -sigma(-x)
      loss_sum += std::log1p(std::exp(-x));

      // SGD updates (user composition treated as fixed per step; context
      // factors receive the distributed gradient).
      bias_[pos] += lr * (coeff - reg * bias_[pos]);
      bias_[neg] += lr * (-coeff - reg * bias_[neg]);
      const int64_t take = std::min<int64_t>(
          static_cast<int64_t>(seq.size()), config_.max_context_items);
      const float ctx_scale = coeff / static_cast<float>(take);
      const int64_t start = static_cast<int64_t>(seq.size()) - take;
      // Gradient of the score w.r.t. the composed user vector, captured
      // before the target factors are updated.
      for (int64_t j = 0; j < d; ++j) diff[j] = vp[j] - vn[j];
      for (int64_t j = 0; j < d; ++j) {
        const float gp = coeff * user_vec[j];
        vp[j] += lr * (gp - reg * vp[j]);
        vn[j] += lr * (-gp - reg * vn[j]);
      }
      // Distribute the user gradient into the context embeddings.
      for (int64_t i = start; i < static_cast<int64_t>(seq.size()); ++i) {
        float* c = context_.data() + static_cast<int64_t>(seq[i]) * d;
        for (int64_t j = 0; j < d; ++j) {
          c[j] += lr * (ctx_scale * diff[j] - reg * c[j]);
        }
      }
    }
    step += samples_per_epoch;
    EpochStats stats;
    stats.epoch = epoch;
    stats.loss = loss_sum / samples_per_epoch;
    stats.wall_ms = epoch_timer.ElapsedMillis();
    stats.batches = samples_per_epoch;
    stats.learning_rate = lr;
    ReportEpoch(opts, stats, step);
  }
}

std::vector<float> Bpr::Score(const std::vector<int32_t>& fold_in) const {
  VSAN_CHECK_GT(num_items_, 0) << "Fit() must be called before Score()";
  const int64_t d = config_.d;
  std::vector<float> user_vec(d);
  ComposeUser(fold_in, user_vec.data());
  std::vector<float> scores(num_items_ + 1, 0.0f);
  for (int32_t item = 1; item <= num_items_; ++item) {
    const float* v = target_.data() + static_cast<int64_t>(item) * d;
    float s = bias_[item];
    for (int64_t j = 0; j < d; ++j) s += user_vec[j] * v[j];
    scores[item] = s;
  }
  return scores;
}

}  // namespace models
}  // namespace vsan
