#include "models/gru4rec.h"

#include <algorithm>

#include "autograd/ops.h"
#include "data/batcher.h"
#include "models/train_loop.h"
#include "optim/adam.h"
#include "util/logging.h"

namespace vsan {
namespace models {

Gru4Rec::Net::Net(const Config& cfg, int32_t num_items, Rng* rng)
    : config(cfg),
      item_emb(num_items + 1, cfg.d, rng),
      gru(cfg.d, cfg.hidden, rng),
      output(cfg.hidden, num_items + 1, rng) {
  RegisterSubmodule(&item_emb);
  RegisterSubmodule(&gru);
  RegisterSubmodule(&output);
}

Variable Gru4Rec::Net::Encode(const std::vector<int32_t>& inputs,
                              int64_t batch, Rng* rng) const {
  Variable x = item_emb.Forward(inputs, batch, config.max_len);
  x = ops::Dropout(x, config.dropout, rng, training());
  Variable h = gru.Forward(x);
  return ops::Dropout(h, config.dropout, rng, training());
}

void Gru4Rec::Fit(const data::SequenceDataset& train,
                  const TrainOptions& opts) {
  num_items_ = train.num_items();
  rng_ = Rng(opts.seed);
  net_ = std::make_unique<Net>(config_, num_items_, &rng_);
  net_->SetTraining(true);

  data::SequenceBatcher::Options batch_opts;
  batch_opts.max_len = config_.max_len;
  batch_opts.batch_size = opts.batch_size;
  batch_opts.pad_left = false;  // recurrent: sequence starts at position 0
  batch_opts.seed = opts.seed + 1;
  data::SequenceBatcher batcher(&train, batch_opts);

  optim::Adam::Options adam_opts;
  adam_opts.lr = opts.learning_rate;
  optim::Adam optimizer(net_->Parameters(), adam_opts);

  TrainRuntime::Hooks hooks;
  hooks.module = net_.get();
  hooks.mutable_module = net_.get();
  hooks.optimizer = &optimizer;
  hooks.rngs = {&rng_};
  hooks.save_data_state = [&batcher](std::string* out) {
    batcher.SaveState(out);
  };
  hooks.load_data_state = [&batcher](const std::string& blob) {
    return batcher.RestoreState(blob);
  };
  hooks.model_name = "gru4rec";
  TrainRuntime runtime(opts, std::move(hooks));

  RunTrainLoop(&batcher, &optimizer, opts, &runtime,
               [this](const data::TrainBatch& batch) {
                 Variable hidden =
                     net_->Encode(batch.inputs, batch.batch_size, &rng_);
                 Variable flat = ops::Reshape(
                     hidden,
                     {batch.batch_size * batch.seq_len, config_.hidden});
                 std::vector<int64_t> rows;
                 std::vector<int32_t> targets;
                 for (int64_t r = 0; r < batch.batch_size * batch.seq_len;
                      ++r) {
                   if (batch.next_targets[r] == -1) continue;
                   rows.push_back(r);
                   targets.push_back(batch.next_targets[r]);
                 }
                 Variable logits = net_->Logits(ops::GatherRows(flat, rows));
                 return ops::SoftmaxCrossEntropy(logits, targets,
                                                 /*ignore_index=*/-1);
               });
  net_->SetTraining(false);
}

std::vector<float> Gru4Rec::Score(const std::vector<int32_t>& fold_in) const {
  std::vector<float> scores;
  ScoreInto(fold_in, &scores);
  return scores;
}

void Gru4Rec::ScoreInto(const std::vector<int32_t>& fold_in,
                       std::vector<float>* scores) const {
  VSAN_CHECK(net_ != nullptr) << "Fit() must be called before Score()";
  ScopedMatMulPrecision precision_guard(eval_precision());
  const std::vector<int32_t> padded = data::SequenceBatcher::PadSequence(
      fold_in, config_.max_len, /*pad_left=*/false);
  Variable hidden = net_->Encode(padded, /*batch=*/1, &rng_);
  // Last real position under right padding.
  const int64_t last = std::min<int64_t>(static_cast<int64_t>(fold_in.size()),
                                         config_.max_len) -
                       1;
  VSAN_CHECK_GE(last, 0);
  Variable row = net_->Logits(ops::Reshape(
      ops::Slice(hidden, /*axis=*/1, last, /*len=*/1), {1, config_.hidden}));
  const Tensor& out = row.value();
  scores->resize(num_items_ + 1);
  const float* src = out.data();
  std::copy(src, src + num_items_ + 1, scores->data());
}

bool Gru4Rec::GetFactorizedHead(FactorizedHead* head) const {
  VSAN_CHECK(net_ != nullptr)
      << "Fit() must be called before GetFactorizedHead()";
  head->dim = config_.hidden;
  head->num_rows = num_items_ + 1;
  head->weights = net_->output.weight_value().data();
  head->items_are_rows = false;
  head->bias =
      net_->output.has_bias() ? net_->output.bias_value().data() : nullptr;
  return true;
}

bool Gru4Rec::EncodeQueryInto(const std::vector<int32_t>& fold_in,
                              std::vector<float>* query) const {
  VSAN_CHECK(net_ != nullptr)
      << "Fit() must be called before EncodeQueryInto()";
  ScopedMatMulPrecision precision_guard(eval_precision());
  const std::vector<int32_t> padded = data::SequenceBatcher::PadSequence(
      fold_in, config_.max_len, /*pad_left=*/false);
  Variable hidden = net_->Encode(padded, /*batch=*/1, &rng_);
  const int64_t last = std::min<int64_t>(static_cast<int64_t>(fold_in.size()),
                                         config_.max_len) -
                       1;
  VSAN_CHECK_GE(last, 0);
  Variable row = ops::Reshape(
      ops::Slice(hidden, /*axis=*/1, last, /*len=*/1), {1, config_.hidden});
  query->resize(static_cast<size_t>(config_.hidden));
  const float* src = row.value().data();
  std::copy(src, src + config_.hidden, query->data());
  return true;
}

}  // namespace models
}  // namespace vsan
