#ifndef VSAN_MODELS_FPMC_H_
#define VSAN_MODELS_FPMC_H_

#include "models/recommender.h"
#include "util/rng.h"

namespace vsan {
namespace models {

// Factorized Personalized Markov Chains (Rendle et al. 2010): a linear
// combination of a matrix-factorization term and a first-order Markov term,
//   score(u, l, j) = <user(u), U_j> + <W_l, Z_j>,
// trained with the S-BPR pairwise objective over consecutive pairs.
//
// As with Bpr, the user factor is composed from a learned item-as-context
// embedding (mean over the recent history) so unseen held-out users can be
// scored under strong generalization.
class Fpmc : public SequentialRecommender {
 public:
  struct Config {
    int64_t d = 32;
    float l2_reg = 1e-4f;
    int32_t max_context_items = 10;
  };

  explicit Fpmc(const Config& config) : config_(config) {}

  std::string name() const override { return "FPMC"; }

  void Fit(const data::SequenceDataset& train,
           const TrainOptions& options) override;

  std::vector<float> Score(const std::vector<int32_t>& fold_in) const override;

 private:
  void ComposeUser(const std::vector<int32_t>& items, int64_t end,
                   float* out) const;

  Config config_;
  int32_t num_items_ = 0;
  std::vector<float> context_;   // [N+1, d] items composing the user factor
  std::vector<float> mf_item_;   // [N+1, d] U: item factors for the MF term
  std::vector<float> mc_prev_;   // [N+1, d] W: previous-item factors
  std::vector<float> mc_next_;   // [N+1, d] Z: next-item factors
};

}  // namespace models
}  // namespace vsan

#endif  // VSAN_MODELS_FPMC_H_
