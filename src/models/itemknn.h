#ifndef VSAN_MODELS_ITEMKNN_H_
#define VSAN_MODELS_ITEMKNN_H_

#include "models/recommender.h"

namespace vsan {
namespace models {

// Item-based k-nearest-neighbour collaborative filtering (extension
// baseline, not in the paper's Table III): items are similar when many
// users co-consume them (cosine over the user-item incidence matrix).
// Scoring sums the similarity of each candidate to the user's recent
// history, optionally with recency decay -- a strong cheap baseline that
// needs no training loop.
class ItemKnn : public SequentialRecommender {
 public:
  struct Config {
    // Keep only the top-k most similar items per item (0 = keep all).
    int32_t k = 50;
    // Exponential recency weight: the most recent history item gets weight
    // 1, the one before decay, then decay^2, ...  1.0 = plain set-based KNN.
    double recency_decay = 0.8;
    // Cap on the number of recent history items used at scoring time.
    int32_t max_history = 20;
  };

  explicit ItemKnn(const Config& config) : config_(config) {}

  std::string name() const override { return "ItemKNN"; }

  void Fit(const data::SequenceDataset& train,
           const TrainOptions& options) override;

  std::vector<float> Score(const std::vector<int32_t>& fold_in) const override;

  // Cosine similarity between two items (for tests/analysis).
  float Similarity(int32_t a, int32_t b) const;

 private:
  struct Neighbor {
    int32_t item;
    float similarity;
  };

  Config config_;
  int32_t num_items_ = 0;
  // Top-k neighbour lists per item, sorted by similarity descending.
  std::vector<std::vector<Neighbor>> neighbors_;
};

}  // namespace models
}  // namespace vsan

#endif  // VSAN_MODELS_ITEMKNN_H_
