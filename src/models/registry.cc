#include "models/registry.h"

#include <algorithm>

#include "core/vsan.h"
#include "models/bpr.h"
#include "models/caser.h"
#include "models/fpmc.h"
#include "models/gru4rec.h"
#include "models/itemknn.h"
#include "models/pop.h"
#include "models/sasrec.h"
#include "models/svae.h"
#include "models/transrec.h"

namespace vsan {
namespace models {
namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

std::unique_ptr<SequentialRecommender> CreateModel(const std::string& name,
                                                   const ModelSizing& sizing) {
  const std::string key = Lower(name);
  if (key == "pop") return std::make_unique<Pop>();
  if (key == "itemknn") return std::make_unique<ItemKnn>(ItemKnn::Config{});
  if (key == "bpr") {
    Bpr::Config cfg;
    cfg.d = sizing.d;
    return std::make_unique<Bpr>(cfg);
  }
  if (key == "fpmc") {
    Fpmc::Config cfg;
    cfg.d = sizing.d;
    return std::make_unique<Fpmc>(cfg);
  }
  if (key == "transrec") {
    TransRec::Config cfg;
    cfg.d = sizing.d;
    return std::make_unique<TransRec>(cfg);
  }
  if (key == "gru4rec") {
    Gru4Rec::Config cfg;
    cfg.max_len = sizing.max_len;
    cfg.d = sizing.d;
    cfg.hidden = sizing.d;
    cfg.dropout = sizing.dropout;
    cfg.seed = sizing.seed;
    return std::make_unique<Gru4Rec>(cfg);
  }
  if (key == "caser") {
    Caser::Config cfg;
    cfg.d = sizing.d;
    cfg.dropout = sizing.dropout;
    cfg.seed = sizing.seed;
    return std::make_unique<Caser>(cfg);
  }
  if (key == "svae") {
    Svae::Config cfg;
    cfg.max_len = sizing.max_len;
    cfg.d = sizing.d;
    cfg.hidden = sizing.d;
    cfg.latent = std::max<int64_t>(sizing.d / 2, 2);
    cfg.next_k = 4;  // the paper's best k for SVAE (Sec. V-G.1)
    cfg.dropout = sizing.dropout;
    cfg.seed = sizing.seed;
    return std::make_unique<Svae>(cfg);
  }
  if (key == "sasrec") {
    SasRec::Config cfg;
    cfg.max_len = sizing.max_len;
    cfg.d = sizing.d;
    cfg.num_blocks = std::max(sizing.blocks, 1);
    cfg.dropout = sizing.dropout;
    cfg.seed = sizing.seed;
    return std::make_unique<SasRec>(cfg);
  }
  if (key == "vsan") {
    core::VsanConfig cfg;
    cfg.max_len = sizing.max_len;
    cfg.d = sizing.d;
    cfg.h1 = std::max(sizing.blocks, 1);
    cfg.h2 = 1;
    cfg.dropout = sizing.dropout;
    cfg.beta_max = 0.002f;
    cfg.anneal_steps = 400;
    return std::make_unique<core::Vsan>(cfg);
  }
  return nullptr;
}

std::vector<std::string> RegisteredModelNames() {
  return {"pop",   "bpr",   "fpmc",   "transrec", "gru4rec",
          "caser", "svae",  "sasrec", "vsan",     "itemknn"};
}

}  // namespace models
}  // namespace vsan
