#include "models/embedding_mips.h"

#include <algorithm>
#include <cmath>

#include "tensor/gemm.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace vsan {
namespace models {

void EmbeddingMips::Fit(const data::SequenceDataset& train,
                        const TrainOptions& options) {
  (void)options;  // nothing to train
  FitCatalog(train.num_items());
}

void EmbeddingMips::FitCatalog(int32_t num_items) {
  VSAN_CHECK_GT(num_items, 0);
  num_items_ = num_items;
  const int64_t rows = static_cast<int64_t>(num_items) + 1;
  table_.assign(static_cast<size_t>(rows * config_.d), 0.0f);
  bias_.clear();
  // Row-seeded init so the table is identical however it is (re)built and
  // large catalogs fill in parallel deterministically.
  const float scale = 1.0f / std::sqrt(static_cast<float>(config_.d));
  const uint64_t seed = config_.seed;
  ParallelFor(1, rows, 1024, [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      Rng rng(MixSeed(seed, static_cast<uint64_t>(r)));
      float* row = table_.data() + r * config_.d;
      for (int64_t j = 0; j < config_.d; ++j) {
        row[j] = static_cast<float>(rng.Uniform(-1.0, 1.0)) * scale;
      }
    }
  });
  if (config_.with_bias) {
    bias_.assign(static_cast<size_t>(rows), 0.0f);
    ParallelFor(1, rows, 4096, [&](int64_t begin, int64_t end) {
      for (int64_t r = begin; r < end; ++r) {
        Rng rng(MixSeed(seed ^ 0x5bd1e995u, static_cast<uint64_t>(r)));
        bias_[r] = static_cast<float>(rng.Uniform(-0.01, 0.01));
      }
    });
  }
}

std::vector<float> EmbeddingMips::Score(
    const std::vector<int32_t>& fold_in) const {
  std::vector<float> scores;
  ScoreInto(fold_in, &scores);
  return scores;
}

void EmbeddingMips::ScoreInto(const std::vector<int32_t>& fold_in,
                              std::vector<float>* scores) const {
  VSAN_CHECK_GT(num_items_, 0) << "Fit() must be called before Score()";
  std::vector<float> query;
  EncodeQueryInto(fold_in, &query);
  const int64_t rows = static_cast<int64_t>(num_items_) + 1;
  scores->assign(static_cast<size_t>(rows), 0.0f);
  // scores = query . table^T — the same blocked GEMM the trained models'
  // output projections run, so exact-mode timings are representative.
  Gemm(query.data(), table_.data(), scores->data(), /*m=*/1, /*n=*/rows,
       /*k=*/config_.d, /*trans_a=*/false, /*trans_b=*/true);
  if (!bias_.empty()) {
    for (int64_t r = 0; r < rows; ++r) (*scores)[r] += bias_[r];
  }
}

bool EmbeddingMips::GetFactorizedHead(FactorizedHead* head) const {
  VSAN_CHECK_GT(num_items_, 0)
      << "Fit() must be called before GetFactorizedHead()";
  head->dim = config_.d;
  head->num_rows = static_cast<int64_t>(num_items_) + 1;
  head->weights = table_.data();
  head->items_are_rows = true;
  head->bias = bias_.empty() ? nullptr : bias_.data();
  return true;
}

bool EmbeddingMips::EncodeQueryInto(const std::vector<int32_t>& fold_in,
                                    std::vector<float>* query) const {
  VSAN_CHECK_GT(num_items_, 0)
      << "Fit() must be called before EncodeQueryInto()";
  query->assign(static_cast<size_t>(config_.d), 0.0f);
  int64_t used = 0;
  for (int32_t item : fold_in) {
    if (item <= 0 || item > num_items_) continue;
    const float* row = table_.data() + static_cast<int64_t>(item) * config_.d;
    for (int64_t j = 0; j < config_.d; ++j) (*query)[j] += row[j];
    ++used;
  }
  if (used > 0) {
    const float inv = 1.0f / static_cast<float>(used);
    for (int64_t j = 0; j < config_.d; ++j) (*query)[j] *= inv;
  }
  return true;
}

}  // namespace models
}  // namespace vsan
