#include "models/svae.h"

#include <algorithm>

#include "autograd/ops.h"
#include "data/batcher.h"
#include "models/epoch_report.h"
#include "models/train_runtime.h"
#include "obs/trace.h"
#include "optim/adam.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace vsan {
namespace models {

Svae::Net::Net(const Config& cfg, int32_t num_items, Rng* rng)
    : config(cfg),
      item_emb(num_items + 1, cfg.d, rng),
      gru(cfg.d, cfg.hidden, rng),
      mu_head(cfg.hidden, cfg.latent, rng),
      logvar_head(cfg.hidden, cfg.latent, rng),
      dec1(cfg.latent, cfg.hidden, rng),
      output(cfg.hidden, num_items + 1, rng) {
  RegisterSubmodule(&item_emb);
  RegisterSubmodule(&gru);
  RegisterSubmodule(&mu_head);
  RegisterSubmodule(&logvar_head);
  RegisterSubmodule(&dec1);
  RegisterSubmodule(&output);
  // Start the posterior near-deterministic (as in core/vsan.cc).
  logvar_head.ScaleWeight(0.1f);
  logvar_head.SetBiasConstant(-3.0f);
}

Svae::Net::Outputs Svae::Net::Forward(const std::vector<int32_t>& inputs,
                                      int64_t batch, Rng* rng) const {
  const int64_t n = config.max_len;
  Variable x = item_emb.Forward(inputs, batch, n);
  x = ops::Dropout(x, config.dropout, rng, training());
  Variable h = gru.Forward(x);  // [B, n, hidden]
  Variable h_flat = ops::Reshape(h, {batch * n, config.hidden});

  Outputs out;
  out.mu = mu_head.Forward(h_flat);
  out.logvar = logvar_head.Forward(h_flat);
  // Sample during training, use the posterior mean at evaluation.
  out.z = ops::Reparameterize(out.mu, out.logvar, rng,
                              /*sample=*/training());
  return out;
}

Variable Svae::Net::DecodeHidden(const Variable& z_rows, Rng* rng) const {
  Variable dec = ops::Tanh(dec1.Forward(z_rows));
  return ops::Dropout(dec, config.dropout, rng, training());
}

Variable Svae::Net::Decode(const Variable& z_rows, Rng* rng) const {
  return output.Forward(DecodeHidden(z_rows, rng));
}

void Svae::Fit(const data::SequenceDataset& train, const TrainOptions& opts) {
  num_items_ = train.num_items();
  rng_ = Rng(opts.seed);
  net_ = std::make_unique<Net>(config_, num_items_, &rng_);
  net_->SetTraining(true);

  data::SequenceBatcher::Options batch_opts;
  batch_opts.max_len = config_.max_len;
  batch_opts.batch_size = opts.batch_size;
  batch_opts.next_k = std::max(config_.next_k, 2);  // always fill sets
  batch_opts.pad_left = false;
  batch_opts.seed = opts.seed + 1;
  data::SequenceBatcher batcher(&train, batch_opts);

  optim::Adam::Options adam_opts;
  adam_opts.lr = opts.learning_rate;
  optim::Adam optimizer(net_->Parameters(), adam_opts);

  TrainRuntime::Hooks hooks;
  hooks.module = net_.get();
  hooks.mutable_module = net_.get();
  hooks.optimizer = &optimizer;
  hooks.rngs = {&rng_};
  hooks.save_data_state = [&batcher](std::string* out) {
    batcher.SaveState(out);
  };
  hooks.load_data_state = [&batcher](const std::string& blob) {
    return batcher.RestoreState(blob);
  };
  hooks.model_name = "svae";
  TrainRuntime runtime(opts, std::move(hooks));

  int64_t step = 0;
  int32_t epoch = 0;
  if (!runtime.Begin(&step, &epoch)) return;
  while (epoch < opts.epochs) {
    VSAN_TRACE_SPAN("train/epoch", kTrain);
    Stopwatch epoch_timer;
    batcher.NewEpoch();
    double loss_sum = 0.0;
    double recon_sum = 0.0;
    double kl_sum = 0.0;
    double grad_norm_sum = 0.0;
    float last_beta = 0.0f;
    int64_t batches = 0;
    bool rolled_back = false;
    bool stop = false;
    data::TrainBatch batch;
    while (batcher.NextBatch(&batch)) {
      if (runtime.PreStep(step + 1)) return;  // simulated kill
      const int64_t sched_step = step;
      ++step;
      Net::Outputs out = net_->Forward(batch.inputs, batch.batch_size, &rng_);
      // Decode only positions with targets, trimmed to the configured k
      // (the batcher filled >= k items per set).
      std::vector<int64_t> rows;
      std::vector<std::vector<int32_t>> targets;
      for (int64_t r = 0; r < batch.batch_size * batch.seq_len; ++r) {
        if (batch.nextk_targets[r].empty()) continue;
        rows.push_back(r);
        std::vector<int32_t> set = batch.nextk_targets[r];
        if (static_cast<int32_t>(set.size()) > config_.next_k) {
          set.resize(config_.next_k);
        }
        targets.push_back(std::move(set));
      }
      Variable logits =
          net_->Decode(ops::GatherRows(out.z, rows), &rng_);
      Variable recon = ops::MultiLabelSoftmaxCrossEntropy(logits, targets);
      Variable kl =
          ops::KlStandardNormal(out.mu, out.logvar, batch.position_mask);
      const float beta =
          config_.anneal_steps > 0
              ? config_.beta_max *
                    std::min(1.0f,
                             static_cast<float>(sched_step) /
                                 static_cast<float>(config_.anneal_steps))
              : config_.beta_max;
      Variable loss = ops::Add(recon, ops::Scale(kl, beta));
      last_beta = beta;
      float loss_value = loss.value()[0];
      TrainRuntime::StepAction action = runtime.GuardLoss(&loss_value, step);
      if (action == TrainRuntime::StepAction::kSkip) continue;
      if (action == TrainRuntime::StepAction::kStop) {
        stop = true;
        break;
      }
      if (action == TrainRuntime::StepAction::kRollback) {
        runtime.Rollback(&step, &epoch);
        rolled_back = true;
        break;
      }
      optimizer.ZeroGrad();
      loss.Backward();
      if (opts.grad_clip_norm > 0.0f) {
        const double norm = optimizer.ClipGradNorm(opts.grad_clip_norm);
        action = runtime.GuardGradNorm(norm, step);
        if (action == TrainRuntime::StepAction::kSkip) continue;
        if (action == TrainRuntime::StepAction::kStop) {
          stop = true;
          break;
        }
        if (action == TrainRuntime::StepAction::kRollback) {
          runtime.Rollback(&step, &epoch);
          rolled_back = true;
          break;
        }
        grad_norm_sum += norm;
      }
      optimizer.Step();
      loss_sum += loss_value;
      recon_sum += recon.value()[0];
      kl_sum += kl.value()[0];
      ++batches;
    }
    if (rolled_back) continue;  // replay from the last checkpoint
    if (batches > 0) {
      EpochStats stats;
      stats.epoch = epoch;
      stats.loss = loss_sum / batches;
      stats.wall_ms = epoch_timer.ElapsedMillis();
      stats.batches = batches;
      if (opts.grad_clip_norm > 0.0f) {
        stats.grad_norm = grad_norm_sum / batches;
      }
      stats.learning_rate = optimizer.learning_rate();
      std::vector<std::pair<std::string, double>> extras;
      extras.emplace_back("recon", recon_sum / batches);
      extras.emplace_back("kl", kl_sum / batches);
      extras.emplace_back("beta", static_cast<double>(last_beta));
      ReportEpoch(opts, stats, step, std::move(extras));
    }
    if (stop) break;
    runtime.EndEpoch(epoch, step);
    ++epoch;
  }
  net_->SetTraining(false);
}

std::vector<float> Svae::Score(const std::vector<int32_t>& fold_in) const {
  std::vector<float> scores;
  ScoreInto(fold_in, &scores);
  return scores;
}

void Svae::ScoreInto(const std::vector<int32_t>& fold_in,
                    std::vector<float>* scores) const {
  VSAN_CHECK(net_ != nullptr) << "Fit() must be called before Score()";
  ScopedMatMulPrecision precision_guard(eval_precision());
  const std::vector<int32_t> padded = data::SequenceBatcher::PadSequence(
      fold_in, config_.max_len, /*pad_left=*/false);
  Net::Outputs out = net_->Forward(padded, /*batch=*/1, &rng_);
  const int64_t last = std::min<int64_t>(static_cast<int64_t>(fold_in.size()),
                                         config_.max_len) -
                       1;
  VSAN_CHECK_GE(last, 0);
  Variable row = net_->Decode(ops::GatherRows(out.z, {last}), &rng_);
  const Tensor& v = row.value();
  scores->resize(num_items_ + 1);
  const float* src = v.data();
  std::copy(src, src + num_items_ + 1, scores->data());
}

bool Svae::GetFactorizedHead(FactorizedHead* head) const {
  VSAN_CHECK(net_ != nullptr)
      << "Fit() must be called before GetFactorizedHead()";
  head->dim = config_.hidden;
  head->num_rows = num_items_ + 1;
  head->weights = net_->output.weight_value().data();
  head->items_are_rows = false;
  head->bias =
      net_->output.has_bias() ? net_->output.bias_value().data() : nullptr;
  return true;
}

bool Svae::EncodeQueryInto(const std::vector<int32_t>& fold_in,
                           std::vector<float>* query) const {
  VSAN_CHECK(net_ != nullptr)
      << "Fit() must be called before EncodeQueryInto()";
  ScopedMatMulPrecision precision_guard(eval_precision());
  const std::vector<int32_t> padded = data::SequenceBatcher::PadSequence(
      fold_in, config_.max_len, /*pad_left=*/false);
  Net::Outputs out = net_->Forward(padded, /*batch=*/1, &rng_);
  const int64_t last = std::min<int64_t>(static_cast<int64_t>(fold_in.size()),
                                         config_.max_len) -
                       1;
  VSAN_CHECK_GE(last, 0);
  Variable hidden =
      net_->DecodeHidden(ops::GatherRows(out.z, {last}), &rng_);
  query->resize(static_cast<size_t>(config_.hidden));
  const float* src = hidden.value().data();
  std::copy(src, src + config_.hidden, query->data());
  return true;
}

}  // namespace models
}  // namespace vsan
