#include "models/transrec.h"

#include <cmath>

#include "models/epoch_report.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace vsan {
namespace models {
namespace {

float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

void TransRec::Fit(const data::SequenceDataset& train,
                   const TrainOptions& opts) {
  num_items_ = train.num_items();
  const int64_t d = config_.d;
  Rng rng(opts.seed);
  gamma_.resize(static_cast<int64_t>(num_items_ + 1) * d);
  for (float& x : gamma_) x = static_cast<float>(rng.Normal(0.0, 0.05));
  beta_.assign(num_items_ + 1, 0.0f);
  global_t_.assign(d, 0.0f);
  user_t_.assign(static_cast<int64_t>(train.num_users()) * d, 0.0f);

  std::vector<std::pair<int32_t, int32_t>> positions;
  for (int32_t u = 0; u < train.num_users(); ++u) {
    const auto& seq = train.sequence(u);
    for (int32_t t = 1; t < static_cast<int32_t>(seq.size()); ++t) {
      positions.emplace_back(u, t);
    }
  }
  VSAN_CHECK(!positions.empty());

  const float lr = opts.learning_rate;
  const float reg = config_.l2_reg;
  std::vector<float> translated(d);

  // score(j) = beta_j - || translated - gamma_j ||^2,
  // translated = gamma_prev + t + t_u.
  auto score_item = [&](int32_t j) {
    const float* gj = gamma_.data() + static_cast<int64_t>(j) * d;
    float dist = 0.0f;
    for (int64_t k = 0; k < d; ++k) {
      const float diff = translated[k] - gj[k];
      dist += diff * diff;
    }
    return beta_[j] - dist;
  };

  int64_t step = 0;
  for (int32_t epoch = 0; epoch < opts.epochs; ++epoch) {
    VSAN_TRACE_SPAN("train/epoch", kTrain);
    Stopwatch epoch_timer;
    double loss_sum = 0.0;
    for (size_t s = 0; s < positions.size(); ++s) {
      const auto [u, t] = positions[rng.UniformInt(positions.size())];
      const auto& seq = train.sequence(u);
      const int32_t prev = seq[t - 1];
      const int32_t pos = seq[t];
      int32_t neg = static_cast<int32_t>(rng.UniformInt(1, num_items_));
      while (neg == pos) {
        neg = static_cast<int32_t>(rng.UniformInt(1, num_items_));
      }

      float* gprev = gamma_.data() + static_cast<int64_t>(prev) * d;
      float* gpos = gamma_.data() + static_cast<int64_t>(pos) * d;
      float* gneg = gamma_.data() + static_cast<int64_t>(neg) * d;
      float* tu = user_t_.data() + static_cast<int64_t>(u) * d;
      for (int64_t k = 0; k < d; ++k) {
        translated[k] = gprev[k] + global_t_[k] + tu[k];
      }
      const float x = score_item(pos) - score_item(neg);
      if (!std::isfinite(x)) {
        // Divergence guard: drop the poisoned sample instead of spreading
        // NaN through the factor tables.
        obs::MetricsRegistry::Global()
            .GetCounter("fault.nonfinite_loss")
            ->Increment();
        continue;
      }
      const float coeff = SigmoidF(-x);
      loss_sum += std::log1p(std::exp(-x));

      // d(score_pos - score_neg)/d(translated) = -2(translated - gpos)
      //                                          +2(translated - gneg).
      beta_[pos] += lr * (coeff - reg * beta_[pos]);
      beta_[neg] += lr * (-coeff - reg * beta_[neg]);
      for (int64_t k = 0; k < d; ++k) {
        const float dp = translated[k] - gpos[k];
        const float dn = translated[k] - gneg[k];
        const float g_translated = coeff * (-2.0f * dp + 2.0f * dn);
        gpos[k] += lr * (coeff * 2.0f * dp - reg * gpos[k]);
        gneg[k] += lr * (-coeff * 2.0f * dn - reg * gneg[k]);
        gprev[k] += lr * (g_translated - reg * gprev[k]);
        global_t_[k] += lr * (g_translated - reg * global_t_[k]);
        tu[k] += lr * (g_translated - reg * tu[k]);
      }
    }
    step += static_cast<int64_t>(positions.size());
    EpochStats stats;
    stats.epoch = epoch;
    stats.loss = loss_sum / positions.size();
    stats.wall_ms = epoch_timer.ElapsedMillis();
    stats.batches = static_cast<int64_t>(positions.size());
    stats.learning_rate = lr;
    ReportEpoch(opts, stats, step);
  }
}

std::vector<float> TransRec::Score(const std::vector<int32_t>& fold_in) const {
  VSAN_CHECK_GT(num_items_, 0) << "Fit() must be called before Score()";
  const int64_t d = config_.d;
  const int32_t prev = fold_in.empty() ? 0 : fold_in.back();
  std::vector<float> translated(d, 0.0f);
  if (prev != 0) {
    const float* gprev = gamma_.data() + static_cast<int64_t>(prev) * d;
    for (int64_t k = 0; k < d; ++k) translated[k] = gprev[k] + global_t_[k];
  }
  std::vector<float> scores(num_items_ + 1, 0.0f);
  for (int32_t item = 1; item <= num_items_; ++item) {
    const float* gj = gamma_.data() + static_cast<int64_t>(item) * d;
    float dist = 0.0f;
    for (int64_t k = 0; k < d; ++k) {
      const float diff = translated[k] - gj[k];
      dist += diff * diff;
    }
    scores[item] = beta_[item] - dist;
  }
  return scores;
}

}  // namespace models
}  // namespace vsan
