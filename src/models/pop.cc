#include "models/pop.h"

#include "util/logging.h"

namespace vsan {
namespace models {

void Pop::Fit(const data::SequenceDataset& train, const TrainOptions&) {
  counts_.assign(train.num_items() + 1, 0.0f);
  for (int32_t u = 0; u < train.num_users(); ++u) {
    for (int32_t item : train.sequence(u)) counts_[item] += 1.0f;
  }
}

std::vector<float> Pop::Score(const std::vector<int32_t>&) const {
  VSAN_CHECK(!counts_.empty()) << "Fit() must be called before Score()";
  return counts_;
}

}  // namespace models
}  // namespace vsan
