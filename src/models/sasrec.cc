#include "models/sasrec.h"

#include <algorithm>
#include <cmath>

#include "autograd/ops.h"
#include "data/batcher.h"
#include "models/train_loop.h"
#include "optim/adam.h"
#include "util/logging.h"

namespace vsan {
namespace models {
namespace {

// Zeroes the rows of `x` ([B, n, d]) whose input item is the padding item,
// as SASRec does after adding position embeddings (padding must contribute
// nothing to attention values).
Variable MaskPaddingRows(const Variable& x,
                         const std::vector<int32_t>& inputs) {
  Tensor mask(x.value().shape());
  const int64_t d = x.value().dim(2);
  for (size_t r = 0; r < inputs.size(); ++r) {
    if (inputs[r] == data::kPaddingItem) continue;
    float* row = mask.data() + static_cast<int64_t>(r) * d;
    for (int64_t j = 0; j < d; ++j) row[j] = 1.0f;
  }
  return ops::Mul(x, Variable::Constant(std::move(mask)));
}

}  // namespace

SasRec::Net::Net(const Config& cfg, int32_t num_items, Rng* rng)
    : config(cfg),
      item_emb(num_items + 1, cfg.d, rng),
      causal_mask(nn::MakeCausalMask(cfg.max_len)) {
  RegisterSubmodule(&item_emb);
  pos_emb = RegisterParameter(
      "pos_emb", Tensor::RandomNormal({cfg.max_len, cfg.d}, rng, 0.02f));
  nn::SelfAttentionBlockConfig block_cfg;
  block_cfg.d = cfg.d;
  block_cfg.dropout = cfg.dropout;
  for (int32_t b = 0; b < cfg.num_blocks; ++b) {
    blocks.push_back(std::make_unique<nn::SelfAttentionBlock>(block_cfg, rng));
    RegisterSubmodule(blocks.back().get());
  }
}

Variable SasRec::Net::Encode(const std::vector<int32_t>& inputs, int64_t batch,
                             Rng* rng) const {
  Variable x = item_emb.Forward(inputs, batch, config.max_len);
  x = ops::Scale(x, std::sqrt(static_cast<float>(config.d)));
  x = ops::AddBroadcastMatrixVar(x, pos_emb);
  x = MaskPaddingRows(x, inputs);
  x = ops::Dropout(x, config.dropout, rng, training());
  for (const auto& block : blocks) {
    x = block->Forward(x, causal_mask, rng);
    x = MaskPaddingRows(x, inputs);
  }
  return x;
}

Variable SasRec::Net::Logits(const Variable& hidden) const {
  // Tied projection onto the item embedding table: [B,n,d] x [d, V].
  return ops::MatMul(hidden, ops::Transpose(item_emb.table()));
}

void SasRec::Fit(const data::SequenceDataset& train,
                 const TrainOptions& opts) {
  num_items_ = train.num_items();
  rng_ = Rng(opts.seed);
  net_ = std::make_unique<Net>(config_, num_items_, &rng_);
  net_->SetTraining(true);

  data::SequenceBatcher::Options batch_opts;
  batch_opts.max_len = config_.max_len;
  batch_opts.batch_size = opts.batch_size;
  batch_opts.seed = opts.seed + 1;
  data::SequenceBatcher batcher(&train, batch_opts);

  optim::Adam::Options adam_opts;
  adam_opts.lr = opts.learning_rate;
  optim::Adam optimizer(net_->Parameters(), adam_opts);

  TrainRuntime::Hooks hooks;
  hooks.module = net_.get();
  hooks.mutable_module = net_.get();
  hooks.optimizer = &optimizer;
  hooks.rngs = {&rng_};
  hooks.save_data_state = [&batcher](std::string* out) {
    batcher.SaveState(out);
  };
  hooks.load_data_state = [&batcher](const std::string& blob) {
    return batcher.RestoreState(blob);
  };
  hooks.model_name = "sasrec";
  TrainRuntime runtime(opts, std::move(hooks));

  RunTrainLoop(&batcher, &optimizer, opts, &runtime,
               [this](const data::TrainBatch& batch) {
                 Variable hidden =
                     net_->Encode(batch.inputs, batch.batch_size, &rng_);
                 Variable flat = ops::Reshape(
                     hidden,
                     {batch.batch_size * batch.seq_len, config_.d});
                 // Project only positions with a target: the vocabulary
                 // projection dominates step cost.
                 std::vector<int64_t> rows;
                 std::vector<int32_t> targets;
                 for (int64_t r = 0; r < batch.batch_size * batch.seq_len;
                      ++r) {
                   if (batch.next_targets[r] == -1) continue;
                   rows.push_back(r);
                   targets.push_back(batch.next_targets[r]);
                 }
                 Variable logits =
                     net_->Logits(ops::GatherRows(flat, rows));
                 if (config_.loss == LossType::kFullSoftmax) {
                   return ops::SoftmaxCrossEntropy(logits, targets,
                                                   /*ignore_index=*/-1);
                 }
                 // Original SASRec objective: BCE against uniform sampled
                 // negatives (never the positive itself).
                 std::vector<std::vector<int32_t>> negatives(targets.size());
                 for (size_t r = 0; r < targets.size(); ++r) {
                   for (int32_t j = 0; j < config_.num_negatives; ++j) {
                     int32_t neg = static_cast<int32_t>(
                         rng_.UniformInt(1, num_items_));
                     while (neg == targets[r]) {
                       neg = static_cast<int32_t>(
                           rng_.UniformInt(1, num_items_));
                     }
                     negatives[r].push_back(neg);
                   }
                 }
                 return ops::SampledBinaryCrossEntropy(logits, targets,
                                                       negatives);
               });
  net_->SetTraining(false);
}

std::vector<float> SasRec::Score(const std::vector<int32_t>& fold_in) const {
  std::vector<float> scores;
  ScoreInto(fold_in, &scores);
  return scores;
}

void SasRec::ScoreInto(const std::vector<int32_t>& fold_in,
                      std::vector<float>* scores) const {
  VSAN_CHECK(net_ != nullptr) << "Fit() must be called before Score()";
  ScopedMatMulPrecision precision_guard(eval_precision());
  const std::vector<int32_t> padded =
      data::SequenceBatcher::PadSequence(fold_in, config_.max_len);
  Variable hidden = net_->Encode(padded, /*batch=*/1, &rng_);
  // The last position is the most recent item (left padding).
  Variable last = ops::Reshape(
      ops::Slice(hidden, /*axis=*/1, config_.max_len - 1, /*len=*/1),
      {1, config_.d});
  Variable logits = net_->Logits(last);
  const Tensor& out = logits.value();
  scores->resize(num_items_ + 1);
  const float* src = out.data();
  std::copy(src, src + num_items_ + 1, scores->data());
}

bool SasRec::GetFactorizedHead(FactorizedHead* head) const {
  VSAN_CHECK(net_ != nullptr) << "Fit() must be called before GetFactorizedHead()";
  head->dim = config_.d;
  head->num_rows = num_items_ + 1;
  head->weights = net_->item_emb.table().value().data();
  head->items_are_rows = true;
  head->bias = nullptr;
  return true;
}

bool SasRec::EncodeQueryInto(const std::vector<int32_t>& fold_in,
                             std::vector<float>* query) const {
  VSAN_CHECK(net_ != nullptr) << "Fit() must be called before EncodeQueryInto()";
  ScopedMatMulPrecision precision_guard(eval_precision());
  const std::vector<int32_t> padded =
      data::SequenceBatcher::PadSequence(fold_in, config_.max_len);
  Variable hidden = net_->Encode(padded, /*batch=*/1, &rng_);
  Variable last = ops::Reshape(
      ops::Slice(hidden, /*axis=*/1, config_.max_len - 1, /*len=*/1),
      {1, config_.d});
  query->resize(static_cast<size_t>(config_.d));
  const float* src = last.value().data();
  std::copy(src, src + config_.d, query->data());
  return true;
}

bool SasRec::EncodeBatchInto(const std::vector<std::vector<int32_t>>& fold_ins,
                             std::vector<float>* queries) const {
  VSAN_CHECK(net_ != nullptr)
      << "Fit() must be called before EncodeBatchInto()";
  const int64_t count = static_cast<int64_t>(fold_ins.size());
  queries->resize(static_cast<size_t>(count * config_.d));
  if (count == 0) return true;
  ScopedMatMulPrecision precision_guard(eval_precision());
  std::vector<int32_t> flat(static_cast<size_t>(count * config_.max_len));
  for (int64_t i = 0; i < count; ++i) {
    const std::vector<int32_t> padded =
        data::SequenceBatcher::PadSequence(fold_ins[i], config_.max_len);
    std::copy(padded.begin(), padded.end(),
              flat.begin() + i * config_.max_len);
  }
  Variable hidden = net_->Encode(flat, count, &rng_);
  Variable last = ops::Reshape(
      ops::Slice(hidden, /*axis=*/1, config_.max_len - 1, /*len=*/1),
      {count, config_.d});
  const float* src = last.value().data();
  std::copy(src, src + count * config_.d, queries->data());
  return true;
}

}  // namespace models
}  // namespace vsan
