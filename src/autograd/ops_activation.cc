#include <cmath>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

// Activations are expressed through the Apply/ZipInPlace templates in
// tensor_ops.h: the functor is a lambda the compiler inlines into a dense
// pointer loop, so these passes vectorize instead of paying an indirect
// call per element (the old std::function-based Apply).

namespace vsan {
namespace ops {

using autograd::AccumulateGrad;
using autograd::Node;

Variable Relu(const Variable& x) {
  Tensor out = Apply(x.value(), [](float v) { return v < 0.0f ? 0.0f : v; });
  Tensor saved = out;
  return Variable::MakeNode(
      std::move(out), {x},
      [saved](Node* self) {
        Tensor gx = self->grad;
        ZipInPlace(&gx, saved,
                   [](float g, float y) { return y <= 0.0f ? 0.0f : g; });
        AccumulateGrad(self->parents[0].get(), gx);
      },
      "relu");
}

Variable Sigmoid(const Variable& x) {
  Tensor out = Apply(x.value(),
                     [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
  Tensor saved = out;
  return Variable::MakeNode(
      std::move(out), {x},
      [saved](Node* self) {
        Tensor gx = self->grad;
        ZipInPlace(&gx, saved,
                   [](float g, float y) { return g * y * (1.0f - y); });
        AccumulateGrad(self->parents[0].get(), gx);
      },
      "sigmoid");
}

Variable Tanh(const Variable& x) {
  Tensor out = Apply(x.value(), [](float v) { return std::tanh(v); });
  Tensor saved = out;
  return Variable::MakeNode(
      std::move(out), {x},
      [saved](Node* self) {
        Tensor gx = self->grad;
        ZipInPlace(&gx, saved,
                   [](float g, float y) { return g * (1.0f - y * y); });
        AccumulateGrad(self->parents[0].get(), gx);
      },
      "tanh");
}

Variable Exp(const Variable& x) {
  Tensor out = Apply(x.value(), [](float v) { return std::exp(v); });
  Tensor saved = out;
  return Variable::MakeNode(
      std::move(out), {x},
      [saved](Node* self) {
        AccumulateGrad(self->parents[0].get(), vsan::Mul(self->grad, saved));
      },
      "exp");
}

Variable Log(const Variable& x) {
  Tensor in = x.value();
  Tensor out = Apply(in, [](float v) {
    VSAN_DCHECK(v > 0.0f);
    return std::log(v);
  });
  return Variable::MakeNode(
      std::move(out), {x},
      [in](Node* self) {
        Tensor gx = self->grad;
        ZipInPlace(&gx, in, [](float g, float v) { return g / v; });
        AccumulateGrad(self->parents[0].get(), gx);
      },
      "log");
}

Variable Softmax(const Variable& x) {
  Tensor out = SoftmaxLastDim(x.value());
  Tensor saved = out;
  const int64_t n = out.dim(out.ndim() - 1);
  return Variable::MakeNode(
      std::move(out), {x},
      [saved, n](Node* self) {
        // dx = y * (dy - sum_j dy_j y_j) rowwise.
        Tensor gx = self->grad;
        const int64_t rows = gx.numel() / n;
        for (int64_t r = 0; r < rows; ++r) {
          float* g = gx.data() + r * n;
          const float* y = saved.data() + r * n;
          double dot = 0.0;
          for (int64_t j = 0; j < n; ++j) dot += g[j] * y[j];
          const float d = static_cast<float>(dot);
          for (int64_t j = 0; j < n; ++j) g[j] = y[j] * (g[j] - d);
        }
        AccumulateGrad(self->parents[0].get(), gx);
      },
      "softmax");
}

Variable Dropout(const Variable& x, float rate, Rng* rng, bool training) {
  VSAN_CHECK_GE(rate, 0.0f);
  VSAN_CHECK_LT(rate, 1.0f);
  if (!training || rate == 0.0f) return x;
  const float keep_scale = 1.0f / (1.0f - rate);
  Tensor mask(x.value().shape());
  float* pm = mask.data();
  for (int64_t i = 0; i < mask.numel(); ++i) {
    pm[i] = rng->Bernoulli(rate) ? 0.0f : keep_scale;
  }
  return Variable::MakeNode(
      vsan::Mul(x.value(), mask), {x},
      [mask](Node* self) {
        AccumulateGrad(self->parents[0].get(), vsan::Mul(self->grad, mask));
      },
      "dropout");
}

}  // namespace ops
}  // namespace vsan
