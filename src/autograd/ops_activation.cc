#include <cmath>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

// Activations are expressed through the Apply/ZipInPlace templates in
// tensor_ops.h: the functor is a lambda the compiler inlines into a dense
// pointer loop, so these passes vectorize instead of paying an indirect
// call per element (the old std::function-based Apply).
//
// Backward closures read the saved forward result through `self->value`
// (and inputs through `self->parents[i]->value`) instead of capturing
// tensor copies: the node already keeps those buffers alive for the life
// of the tape, so capturing would only duplicate pool traffic.

namespace vsan {
namespace ops {

using autograd::AccumulateGrad;
using autograd::Node;

Variable Relu(const Variable& x) {
  Tensor out = Apply(x.value(), [](float v) { return v < 0.0f ? 0.0f : v; });
  return Variable::MakeNode(
      std::move(out), {x},
      [](Node* self) {
        Tensor gx = self->grad;
        ZipInPlace(&gx, self->value,
                   [](float g, float y) { return y <= 0.0f ? 0.0f : g; });
        AccumulateGrad(self->parents[0].get(), std::move(gx));
      },
      "relu");
}

Variable Sigmoid(const Variable& x) {
  Tensor out = Apply(x.value(),
                     [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
  return Variable::MakeNode(
      std::move(out), {x},
      [](Node* self) {
        Tensor gx = self->grad;
        ZipInPlace(&gx, self->value,
                   [](float g, float y) { return g * y * (1.0f - y); });
        AccumulateGrad(self->parents[0].get(), std::move(gx));
      },
      "sigmoid");
}

Variable Tanh(const Variable& x) {
  Tensor out = Apply(x.value(), [](float v) { return std::tanh(v); });
  return Variable::MakeNode(
      std::move(out), {x},
      [](Node* self) {
        Tensor gx = self->grad;
        ZipInPlace(&gx, self->value,
                   [](float g, float y) { return g * (1.0f - y * y); });
        AccumulateGrad(self->parents[0].get(), std::move(gx));
      },
      "tanh");
}

Variable Exp(const Variable& x) {
  Tensor out = Apply(x.value(), [](float v) { return std::exp(v); });
  return Variable::MakeNode(
      std::move(out), {x},
      [](Node* self) {
        AccumulateGrad(self->parents[0].get(),
                       vsan::Mul(self->grad, self->value));
      },
      "exp");
}

Variable Log(const Variable& x) {
  Tensor out = Apply(x.value(), [](float v) {
    VSAN_DCHECK(v > 0.0f);
    return std::log(v);
  });
  return Variable::MakeNode(
      std::move(out), {x},
      [](Node* self) {
        Tensor gx = self->grad;
        ZipInPlace(&gx, self->parents[0]->value,
                   [](float g, float v) { return g / v; });
        AccumulateGrad(self->parents[0].get(), std::move(gx));
      },
      "log");
}

Variable Softmax(const Variable& x) {
  Tensor out = SoftmaxLastDim(x.value());
  const int64_t n = out.dim(out.ndim() - 1);
  return Variable::MakeNode(
      std::move(out), {x},
      [n](Node* self) {
        // dx = y * (dy - sum_j dy_j y_j) rowwise.
        Tensor gx = self->grad;
        const int64_t rows = gx.numel() / n;
        for (int64_t r = 0; r < rows; ++r) {
          float* g = gx.data() + r * n;
          const float* y = self->value.data() + r * n;
          double dot = 0.0;
          for (int64_t j = 0; j < n; ++j) dot += g[j] * y[j];
          const float d = static_cast<float>(dot);
          for (int64_t j = 0; j < n; ++j) g[j] = y[j] * (g[j] - d);
        }
        AccumulateGrad(self->parents[0].get(), std::move(gx));
      },
      "softmax");
}

Variable Dropout(const Variable& x, float rate, Rng* rng, bool training) {
  VSAN_CHECK_GE(rate, 0.0f);
  VSAN_CHECK_LT(rate, 1.0f);
  if (!training || rate == 0.0f) return x;
  const float keep_scale = 1.0f / (1.0f - rate);
  Tensor mask = Tensor::Uninitialized(x.value().shape());
  float* pm = mask.data();
  for (int64_t i = 0; i < mask.numel(); ++i) {
    pm[i] = rng->Bernoulli(rate) ? 0.0f : keep_scale;
  }
  // Compute the masked value before the lambda capture moves `mask` (the
  // two are function arguments, so their evaluation order is unspecified).
  Tensor out = vsan::Mul(x.value(), mask);
  return Variable::MakeNode(
      std::move(out), {x},
      [mask = std::move(mask)](Node* self) {
        AccumulateGrad(self->parents[0].get(), vsan::Mul(self->grad, mask));
      },
      "dropout");
}

}  // namespace ops
}  // namespace vsan
