#include <cmath>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace vsan {
namespace ops {

using autograd::AccumulateGrad;
using autograd::Node;

Variable Relu(const Variable& x) {
  Tensor out = x.value();
  for (int64_t i = 0; i < out.numel(); ++i) {
    if (out[i] < 0.0f) out[i] = 0.0f;
  }
  Tensor saved = out;
  return Variable::MakeNode(
      std::move(out), {x},
      [saved](Node* self) {
        Tensor gx = self->grad;
        for (int64_t i = 0; i < gx.numel(); ++i) {
          if (saved[i] <= 0.0f) gx[i] = 0.0f;
        }
        AccumulateGrad(self->parents[0].get(), gx);
      },
      "relu");
}

Variable Sigmoid(const Variable& x) {
  Tensor out = x.value();
  for (int64_t i = 0; i < out.numel(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-out[i]));
  }
  Tensor saved = out;
  return Variable::MakeNode(
      std::move(out), {x},
      [saved](Node* self) {
        Tensor gx = self->grad;
        for (int64_t i = 0; i < gx.numel(); ++i) {
          gx[i] *= saved[i] * (1.0f - saved[i]);
        }
        AccumulateGrad(self->parents[0].get(), gx);
      },
      "sigmoid");
}

Variable Tanh(const Variable& x) {
  Tensor out = x.value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] = std::tanh(out[i]);
  Tensor saved = out;
  return Variable::MakeNode(
      std::move(out), {x},
      [saved](Node* self) {
        Tensor gx = self->grad;
        for (int64_t i = 0; i < gx.numel(); ++i) {
          gx[i] *= 1.0f - saved[i] * saved[i];
        }
        AccumulateGrad(self->parents[0].get(), gx);
      },
      "tanh");
}

Variable Exp(const Variable& x) {
  Tensor out = x.value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] = std::exp(out[i]);
  Tensor saved = out;
  return Variable::MakeNode(
      std::move(out), {x},
      [saved](Node* self) {
        AccumulateGrad(self->parents[0].get(), vsan::Mul(self->grad, saved));
      },
      "exp");
}

Variable Log(const Variable& x) {
  Tensor in = x.value();
  Tensor out = in;
  for (int64_t i = 0; i < out.numel(); ++i) {
    VSAN_DCHECK(out[i] > 0.0f);
    out[i] = std::log(out[i]);
  }
  return Variable::MakeNode(
      std::move(out), {x},
      [in](Node* self) {
        Tensor gx = self->grad;
        for (int64_t i = 0; i < gx.numel(); ++i) gx[i] /= in[i];
        AccumulateGrad(self->parents[0].get(), gx);
      },
      "log");
}

Variable Softmax(const Variable& x) {
  Tensor out = SoftmaxLastDim(x.value());
  Tensor saved = out;
  const int64_t n = out.dim(out.ndim() - 1);
  return Variable::MakeNode(
      std::move(out), {x},
      [saved, n](Node* self) {
        // dx = y * (dy - sum_j dy_j y_j) rowwise.
        Tensor gx = self->grad;
        const int64_t rows = gx.numel() / n;
        for (int64_t r = 0; r < rows; ++r) {
          float* g = gx.data() + r * n;
          const float* y = saved.data() + r * n;
          double dot = 0.0;
          for (int64_t j = 0; j < n; ++j) dot += g[j] * y[j];
          const float d = static_cast<float>(dot);
          for (int64_t j = 0; j < n; ++j) g[j] = y[j] * (g[j] - d);
        }
        AccumulateGrad(self->parents[0].get(), gx);
      },
      "softmax");
}

Variable Dropout(const Variable& x, float rate, Rng* rng, bool training) {
  VSAN_CHECK_GE(rate, 0.0f);
  VSAN_CHECK_LT(rate, 1.0f);
  if (!training || rate == 0.0f) return x;
  const float keep_scale = 1.0f / (1.0f - rate);
  Tensor mask(x.value().shape());
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask[i] = rng->Bernoulli(rate) ? 0.0f : keep_scale;
  }
  return Variable::MakeNode(
      vsan::Mul(x.value(), mask), {x},
      [mask](Node* self) {
        AccumulateGrad(self->parents[0].get(), vsan::Mul(self->grad, mask));
      },
      "dropout");
}

}  // namespace ops
}  // namespace vsan
