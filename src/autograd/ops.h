#ifndef VSAN_AUTOGRAD_OPS_H_
#define VSAN_AUTOGRAD_OPS_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "util/rng.h"

// Differentiable operations on Variable.  Every function returns a new tape
// node whose backward closure accumulates gradients into its parents.

namespace vsan {
namespace ops {

// --- Elementwise / broadcast ------------------------------------------------

Variable Add(const Variable& a, const Variable& b);   // same shape
Variable Sub(const Variable& a, const Variable& b);   // same shape
Variable Mul(const Variable& a, const Variable& b);   // same shape
Variable Scale(const Variable& x, float s);
Variable AddConst(const Variable& x, float c);
// x + bias, bias broadcast along the last dimension.
Variable AddBias(const Variable& x, const Variable& bias);
// x + m for 3-D x [B, r, c] and constant 2-D mask m [r, c] (no grad to m).
Variable AddBroadcastMatrix(const Variable& x, const Tensor& m);
// Differentiable variant: m is a learnable [r, c] Variable (e.g. position
// embeddings); its gradient sums over the batch dimension.
Variable AddBroadcastMatrixVar(const Variable& x, const Variable& m);

// --- Shape ------------------------------------------------------------------

Variable Reshape(const Variable& x, std::vector<int64_t> shape);
// Concatenation along `axis` (all other dims equal).
Variable Concat(const std::vector<Variable>& xs, int axis);
// Contiguous slice [start, start+len) along `axis`.
Variable Slice(const Variable& x, int axis, int64_t start, int64_t len);
Variable Transpose(const Variable& x);       // 2-D
Variable TransposeLast2(const Variable& x);  // 3-D

// --- Linear algebra -----------------------------------------------------------

// Matrix product.  Supported shapes:
//   [m,k]x[k,n] -> [m,n]
//   [B,m,k]x[B,k,n] -> [B,m,n]   (batched)
//   [B,m,k]x[k,n]   -> [B,m,n]   (weight broadcast over batch)
Variable MatMul(const Variable& a, const Variable& b);

// --- Activations --------------------------------------------------------------

Variable Relu(const Variable& x);
Variable Sigmoid(const Variable& x);
Variable Tanh(const Variable& x);
Variable Exp(const Variable& x);
// Natural log; input must be positive.
Variable Log(const Variable& x);
// Softmax over the last dimension.
Variable Softmax(const Variable& x);
// Inverted dropout: active only when `training`; scales kept units by
// 1/(1-rate).
Variable Dropout(const Variable& x, float rate, Rng* rng, bool training);

// --- Reductions ----------------------------------------------------------------

Variable Sum(const Variable& x);   // scalar
Variable Mean(const Variable& x);  // scalar
// Max over axis 1 of a 3-D tensor: [B, t, f] -> [B, f].  Gradient flows to
// the argmax element (first one on ties).
Variable MaxOverAxis1(const Variable& x);
// Mean over axis 1 of a 3-D tensor: [B, t, f] -> [B, f].
Variable MeanOverAxis1(const Variable& x);

// --- Normalization ---------------------------------------------------------------

// Layer normalization over the last dimension with learned gain/bias.
Variable LayerNorm(const Variable& x, const Variable& gamma,
                   const Variable& beta, float eps = 1e-5f);

// --- Embeddings -------------------------------------------------------------------

// Gathers rows of `table` ([V, d]) at `indices` (values in [0, V)), returning
// [batch, steps, d].  `indices.size()` must equal batch*steps.  When
// `mask_zero` is set, index 0 produces a zero row and receives no gradient
// (the padding-item convention used throughout the models).
Variable EmbeddingLookup(const Variable& table,
                         const std::vector<int32_t>& indices, int64_t batch,
                         int64_t steps, bool mask_zero = true);

// Gathers rows of a 2-D tensor: out[i] = x[indices[i]].  Gradient
// scatter-adds back (duplicate indices accumulate).  Used to restrict the
// output projection + loss to positions that actually have targets.
Variable GatherRows(const Variable& x, const std::vector<int64_t>& indices);

// --- Losses and variational ops ------------------------------------------------------

// Mean softmax cross-entropy over rows of `logits` ([R, C]) against integer
// `targets` (size R).  Rows whose target is `ignore_index` contribute
// nothing.  Returns a scalar.
Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int32_t>& targets,
                             int32_t ignore_index = -1);

// Multi-hot variant (Eq. 18/20 of the paper): each row's loss is
// -sum_{t in targets[r]} log softmax(logits[r])[t]; rows with no targets are
// skipped.  Returns the mean over contributing rows.
Variable MultiLabelSoftmaxCrossEntropy(
    const Variable& logits, const std::vector<std::vector<int32_t>>& targets);

// Sampled binary cross-entropy, the original SASRec training objective:
// for each row r, loss = -log sigmoid(logits[r, pos[r]])
//                 - sum_j log(1 - sigmoid(logits[r, neg[r][j]])).
// Returns the mean over rows.  `positives` uses -1 to skip a row.
Variable SampledBinaryCrossEntropy(
    const Variable& logits, const std::vector<int32_t>& positives,
    const std::vector<std::vector<int32_t>>& negatives);

// KL(N(mu, exp(logvar)) || N(0, I)) averaged over rows selected by
// `row_mask` (1 = count the row).  `mu`/`logvar` are [R, d]; `row_mask` has
// size R (empty = all rows).  Returns a scalar (Eq. 20's KL term).
Variable KlStandardNormal(const Variable& mu, const Variable& logvar,
                          const std::vector<float>& row_mask = {});

// Reparameterization trick (Eq. 13): z = mu + exp(0.5*logvar) * eps with
// eps ~ N(0, I) drawn from `rng`.  When `sample` is false, returns mu
// (evaluation-time behaviour per Sec. IV-E).
Variable Reparameterize(const Variable& mu, const Variable& logvar, Rng* rng,
                        bool sample);

}  // namespace ops
}  // namespace vsan

#endif  // VSAN_AUTOGRAD_OPS_H_
