#include <cmath>
#include <utility>

#include "autograd/ops.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace vsan {
namespace ops {

using autograd::AccumulateGrad;
using autograd::Node;

Variable LayerNorm(const Variable& x, const Variable& gamma,
                   const Variable& beta, float eps) {
  VSAN_TRACE_SPAN("ops/layer_norm", kAutograd);
  const Tensor& xv = x.value();
  const int64_t n = xv.dim(xv.ndim() - 1);
  VSAN_CHECK_EQ(gamma.value().ndim(), 1);
  VSAN_CHECK_EQ(gamma.value().dim(0), n);
  VSAN_CHECK_EQ(beta.value().ndim(), 1);
  VSAN_CHECK_EQ(beta.value().dim(0), n);
  const int64_t rows = xv.numel() / n;

  // All three are written in full by the row loop below.
  Tensor out = Tensor::Uninitialized(xv.shape());
  Tensor xhat = Tensor::Uninitialized(xv.shape());  // saved for backward
  Tensor inv_std = Tensor::Uninitialized({rows});   // 1/sqrt(var+eps)/row
  const float* px = xv.data();
  const float* pg = gamma.value().data();
  const float* pb = beta.value().data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = px + r * n;
    double mean = 0.0;
    for (int64_t j = 0; j < n; ++j) mean += row[j];
    mean /= n;
    double var = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      const double d = row[j] - mean;
      var += d * d;
    }
    var /= n;
    const float istd = static_cast<float>(1.0 / std::sqrt(var + eps));
    inv_std[r] = istd;
    float* xh = xhat.data() + r * n;
    float* po = out.data() + r * n;
    for (int64_t j = 0; j < n; ++j) {
      xh[j] = (row[j] - static_cast<float>(mean)) * istd;
      po[j] = pg[j] * xh[j] + pb[j];
    }
  }

  return Variable::MakeNode(
      std::move(out), {x, gamma, beta},
      [xhat = std::move(xhat), inv_std = std::move(inv_std), n,
       rows](Node* self) {
        Node* px_node = self->parents[0].get();
        Node* pg_node = self->parents[1].get();
        Node* pb_node = self->parents[2].get();
        const Tensor& gy = self->grad;

        if (pg_node->requires_grad || pb_node->requires_grad) {
          // Zero-initialized accumulators.
          Tensor dgamma({n});
          Tensor dbeta({n});
          for (int64_t r = 0; r < rows; ++r) {
            const float* g = gy.data() + r * n;
            const float* xh = xhat.data() + r * n;
            for (int64_t j = 0; j < n; ++j) {
              dgamma[j] += g[j] * xh[j];
              dbeta[j] += g[j];
            }
          }
          AccumulateGrad(pg_node, std::move(dgamma));
          AccumulateGrad(pb_node, std::move(dbeta));
        }

        if (px_node->requires_grad) {
          Tensor gx = Tensor::Uninitialized(xhat.shape());
          const float* pg = self->parents[1]->value.data();
          for (int64_t r = 0; r < rows; ++r) {
            const float* g = gy.data() + r * n;
            const float* xh = xhat.data() + r * n;
            float* out_row = gx.data() + r * n;
            // dxhat = gy * gamma; dx = istd*(dxhat - mean(dxhat)
            //                                - xhat*mean(dxhat*xhat)).
            double m1 = 0.0, m2 = 0.0;
            for (int64_t j = 0; j < n; ++j) {
              const double dxh = static_cast<double>(g[j]) * pg[j];
              m1 += dxh;
              m2 += dxh * xh[j];
            }
            m1 /= n;
            m2 /= n;
            const float istd = inv_std[r];
            for (int64_t j = 0; j < n; ++j) {
              const float dxh = g[j] * pg[j];
              out_row[j] = istd * (dxh - static_cast<float>(m1) -
                                   xh[j] * static_cast<float>(m2));
            }
          }
          AccumulateGrad(px_node, std::move(gx));
        }
      },
      "layer_norm");
}

}  // namespace ops
}  // namespace vsan
