#include <cmath>
#include <utility>

#include "autograd/ops.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace vsan {
namespace ops {

using autograd::AccumulateGrad;
using autograd::Node;

Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int32_t>& targets,
                             int32_t ignore_index) {
  VSAN_TRACE_SPAN("ops/softmax_xent", kAutograd);
  const Tensor& lv = logits.value();
  VSAN_CHECK_EQ(lv.ndim(), 2);
  const int64_t rows = lv.dim(0);
  const int64_t classes = lv.dim(1);
  VSAN_CHECK_EQ(static_cast<int64_t>(targets.size()), rows);

  Tensor probs = SoftmaxLastDim(lv);
  double loss = 0.0;
  int64_t count = 0;
  for (int64_t r = 0; r < rows; ++r) {
    const int32_t t = targets[r];
    if (t == ignore_index) continue;
    VSAN_CHECK_GE(t, 0);
    VSAN_CHECK_LT(t, classes);
    const float p = probs.at(r, t);
    loss += -std::log(std::max(p, 1e-12f));
    ++count;
  }
  VSAN_CHECK_GT(count, 0) << "all rows ignored in cross-entropy";
  loss /= count;

  return Variable::MakeNode(
      Tensor::Scalar(static_cast<float>(loss)), {logits},
      [probs = std::move(probs), targets, ignore_index, count,
       classes](Node* self) {
        Node* parent = self->parents[0].get();
        if (!parent->requires_grad) return;
        const float scale = self->grad[0] / static_cast<float>(count);
        // Zero-initialized: ignored rows get no gradient.
        Tensor gx(probs.shape());
        for (int64_t r = 0; r < probs.dim(0); ++r) {
          const int32_t t = targets[r];
          if (t == ignore_index) continue;
          float* grow = gx.data() + r * classes;
          const float* prow = probs.data() + r * classes;
          for (int64_t j = 0; j < classes; ++j) grow[j] = prow[j] * scale;
          grow[t] -= scale;
        }
        AccumulateGrad(parent, std::move(gx));
      },
      "softmax_cross_entropy");
}

Variable MultiLabelSoftmaxCrossEntropy(
    const Variable& logits, const std::vector<std::vector<int32_t>>& targets) {
  VSAN_TRACE_SPAN("ops/multilabel_xent", kAutograd);
  const Tensor& lv = logits.value();
  VSAN_CHECK_EQ(lv.ndim(), 2);
  const int64_t rows = lv.dim(0);
  const int64_t classes = lv.dim(1);
  VSAN_CHECK_EQ(static_cast<int64_t>(targets.size()), rows);

  Tensor probs = SoftmaxLastDim(lv);
  double loss = 0.0;
  int64_t count = 0;
  for (int64_t r = 0; r < rows; ++r) {
    if (targets[r].empty()) continue;
    for (int32_t t : targets[r]) {
      VSAN_CHECK_GE(t, 0);
      VSAN_CHECK_LT(t, classes);
      loss += -std::log(std::max(probs.at(r, t), 1e-12f));
    }
    ++count;
  }
  VSAN_CHECK_GT(count, 0) << "no labelled rows in multi-label cross-entropy";
  loss /= count;

  return Variable::MakeNode(
      Tensor::Scalar(static_cast<float>(loss)), {logits},
      [probs = std::move(probs), targets, count, classes](Node* self) {
        Node* parent = self->parents[0].get();
        if (!parent->requires_grad) return;
        const float scale = self->grad[0] / static_cast<float>(count);
        // Zero-initialized: unlabelled rows get no gradient.
        Tensor gx(probs.shape());
        for (int64_t r = 0; r < probs.dim(0); ++r) {
          if (targets[r].empty()) continue;
          float* grow = gx.data() + r * classes;
          const float* prow = probs.data() + r * classes;
          const float k = static_cast<float>(targets[r].size());
          for (int64_t j = 0; j < classes; ++j) {
            grow[j] = k * prow[j] * scale;
          }
          for (int32_t t : targets[r]) grow[t] -= scale;
        }
        AccumulateGrad(parent, std::move(gx));
      },
      "multilabel_softmax_cross_entropy");
}

Variable SampledBinaryCrossEntropy(
    const Variable& logits, const std::vector<int32_t>& positives,
    const std::vector<std::vector<int32_t>>& negatives) {
  const Tensor& lv = logits.value();
  VSAN_CHECK_EQ(lv.ndim(), 2);
  const int64_t rows = lv.dim(0);
  const int64_t classes = lv.dim(1);
  VSAN_CHECK_EQ(static_cast<int64_t>(positives.size()), rows);
  VSAN_CHECK_EQ(static_cast<int64_t>(negatives.size()), rows);

  auto sigmoid = [](float x) { return 1.0f / (1.0f + std::exp(-x)); };
  // Numerically stable -log sigmoid(x) = log(1 + exp(-x)) = softplus(-x).
  auto softplus = [](float x) {
    return x > 0.0f ? x + std::log1p(std::exp(-x)) : std::log1p(std::exp(x));
  };

  double loss = 0.0;
  int64_t count = 0;
  for (int64_t r = 0; r < rows; ++r) {
    const int32_t pos = positives[r];
    if (pos < 0) continue;
    VSAN_CHECK_LT(pos, classes);
    loss += softplus(-lv.at(r, pos));
    for (int32_t neg : negatives[r]) {
      VSAN_CHECK_GE(neg, 0);
      VSAN_CHECK_LT(neg, classes);
      loss += softplus(lv.at(r, neg));
    }
    ++count;
  }
  VSAN_CHECK_GT(count, 0) << "no labelled rows in sampled BCE";
  loss /= count;

  return Variable::MakeNode(
      Tensor::Scalar(static_cast<float>(loss)), {logits},
      [positives, negatives, count, sigmoid](Node* self) {
        Node* parent = self->parents[0].get();
        if (!parent->requires_grad) return;
        // The logits live in the parent node; no captured copy needed.
        const Tensor& saved = parent->value;
        const float scale = self->grad[0] / static_cast<float>(count);
        // Zero-initialized: only sampled entries receive gradient.
        Tensor gx(saved.shape());
        for (int64_t r = 0; r < saved.dim(0); ++r) {
          const int32_t pos = positives[r];
          if (pos < 0) continue;
          // d softplus(-x)/dx = -sigmoid(-x) = sigmoid(x) - 1.
          gx.at(r, pos) += scale * (sigmoid(saved.at(r, pos)) - 1.0f);
          for (int32_t neg : negatives[r]) {
            gx.at(r, neg) += scale * sigmoid(saved.at(r, neg));
          }
        }
        AccumulateGrad(parent, std::move(gx));
      },
      "sampled_binary_cross_entropy");
}

Variable KlStandardNormal(const Variable& mu, const Variable& logvar,
                          const std::vector<float>& row_mask) {
  VSAN_TRACE_SPAN("ops/kl_standard_normal", kAutograd);
  const Tensor& mv = mu.value();
  const Tensor& lv = logvar.value();
  VSAN_CHECK(mv.SameShape(lv));
  const int64_t d = mv.dim(mv.ndim() - 1);
  const int64_t rows = mv.numel() / d;
  VSAN_CHECK(row_mask.empty() ||
             static_cast<int64_t>(row_mask.size()) == rows);

  double kl = 0.0;
  double count = 0.0;
  for (int64_t r = 0; r < rows; ++r) {
    const float w = row_mask.empty() ? 1.0f : row_mask[r];
    if (w == 0.0f) continue;
    const float* pm = mv.data() + r * d;
    const float* pl = lv.data() + r * d;
    double row_kl = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      row_kl += std::exp(pl[j]) + pm[j] * pm[j] - 1.0f - pl[j];
    }
    kl += 0.5 * w * row_kl;
    count += w;
  }
  VSAN_CHECK_GT(count, 0.0) << "empty row mask in KL term";
  kl /= count;

  return Variable::MakeNode(
      Tensor::Scalar(static_cast<float>(kl)), {mu, logvar},
      [row_mask, d, rows, count](Node* self) {
        Node* pmu = self->parents[0].get();
        Node* plv = self->parents[1].get();
        const float scale = self->grad[0] / static_cast<float>(count);
        if (pmu->requires_grad) {
          // Zero-initialized: masked rows get no gradient.
          Tensor gm(pmu->value.shape());
          for (int64_t r = 0; r < rows; ++r) {
            const float w = row_mask.empty() ? 1.0f : row_mask[r];
            if (w == 0.0f) continue;
            const float* pm = pmu->value.data() + r * d;
            float* g = gm.data() + r * d;
            for (int64_t j = 0; j < d; ++j) g[j] = w * scale * pm[j];
          }
          AccumulateGrad(pmu, std::move(gm));
        }
        if (plv->requires_grad) {
          Tensor gl(plv->value.shape());
          for (int64_t r = 0; r < rows; ++r) {
            const float w = row_mask.empty() ? 1.0f : row_mask[r];
            if (w == 0.0f) continue;
            const float* pl = plv->value.data() + r * d;
            float* g = gl.data() + r * d;
            for (int64_t j = 0; j < d; ++j) {
              g[j] = w * scale * 0.5f * (std::exp(pl[j]) - 1.0f);
            }
          }
          AccumulateGrad(plv, std::move(gl));
        }
      },
      "kl_standard_normal");
}

Variable Reparameterize(const Variable& mu, const Variable& logvar, Rng* rng,
                        bool sample) {
  if (!sample) return mu;  // evaluation uses the posterior mean (Sec. IV-E)
  const Tensor& mv = mu.value();
  const Tensor& lv = logvar.value();
  VSAN_CHECK(mv.SameShape(lv));

  // eps and sigma are written in full below.
  Tensor eps = Tensor::Uninitialized(mv.shape());
  Tensor sigma = Tensor::Uninitialized(mv.shape());
  Tensor z = mv;
  for (int64_t i = 0; i < z.numel(); ++i) {
    eps[i] = static_cast<float>(rng->Normal());
    sigma[i] = std::exp(0.5f * lv[i]);
    z[i] += sigma[i] * eps[i];
  }

  return Variable::MakeNode(
      std::move(z), {mu, logvar},
      [eps = std::move(eps), sigma = std::move(sigma)](Node* self) {
        Node* pmu = self->parents[0].get();
        Node* plv = self->parents[1].get();
        AccumulateGrad(pmu, self->grad);
        if (plv->requires_grad) {
          Tensor gl = self->grad;
          for (int64_t i = 0; i < gl.numel(); ++i) {
            gl[i] *= 0.5f * sigma[i] * eps[i];
          }
          AccumulateGrad(plv, std::move(gl));
        }
      },
      "reparameterize");
}

}  // namespace ops
}  // namespace vsan
