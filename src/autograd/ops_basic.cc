#include <cstring>
#include <utility>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace vsan {
namespace ops {

using autograd::AccumulateGrad;
using autograd::Node;

Variable Add(const Variable& a, const Variable& b) {
  VSAN_CHECK(a.value().SameShape(b.value()));
  return Variable::MakeNode(
      vsan::Add(a.value(), b.value()), {a, b},
      [](Node* self) {
        AccumulateGrad(self->parents[0].get(), self->grad);
        AccumulateGrad(self->parents[1].get(), self->grad);
      },
      "add");
}

Variable Sub(const Variable& a, const Variable& b) {
  VSAN_CHECK(a.value().SameShape(b.value()));
  return Variable::MakeNode(
      vsan::Sub(a.value(), b.value()), {a, b},
      [](Node* self) {
        AccumulateGrad(self->parents[0].get(), self->grad);
        AccumulateGrad(self->parents[1].get(), MulScalar(self->grad, -1.0f));
      },
      "sub");
}

Variable Mul(const Variable& a, const Variable& b) {
  VSAN_CHECK(a.value().SameShape(b.value()));
  return Variable::MakeNode(
      vsan::Mul(a.value(), b.value()), {a, b},
      [](Node* self) {
        // Operands live in the parent nodes for the tape's lifetime; no
        // need to capture copies.
        AccumulateGrad(self->parents[0].get(),
                       vsan::Mul(self->grad, self->parents[1]->value));
        AccumulateGrad(self->parents[1].get(),
                       vsan::Mul(self->grad, self->parents[0]->value));
      },
      "mul");
}

Variable Scale(const Variable& x, float s) {
  return Variable::MakeNode(
      MulScalar(x.value(), s), {x},
      [s](Node* self) {
        AccumulateGrad(self->parents[0].get(), MulScalar(self->grad, s));
      },
      "scale");
}

Variable AddConst(const Variable& x, float c) {
  return Variable::MakeNode(
      AddScalar(x.value(), c), {x},
      [](Node* self) {
        AccumulateGrad(self->parents[0].get(), self->grad);
      },
      "add_const");
}

Variable AddBias(const Variable& x, const Variable& bias) {
  const int64_t n = x.value().dim(x.value().ndim() - 1);
  VSAN_CHECK_EQ(bias.value().ndim(), 1);
  VSAN_CHECK_EQ(bias.value().dim(0), n);
  return Variable::MakeNode(
      AddBiasLastDim(x.value(), bias.value()), {x, bias},
      [n](Node* self) {
        AccumulateGrad(self->parents[0].get(), self->grad);
        Node* bias_node = self->parents[1].get();
        if (bias_node->requires_grad) {
          Tensor gb({n});
          const float* g = self->grad.data();
          const int64_t rows = self->grad.numel() / n;
          for (int64_t r = 0; r < rows; ++r) {
            const float* row = g + r * n;
            for (int64_t j = 0; j < n; ++j) gb[j] += row[j];
          }
          AccumulateGrad(bias_node, std::move(gb));
        }
      },
      "add_bias");
}

Variable AddBroadcastMatrix(const Variable& x, const Tensor& m) {
  VSAN_CHECK_EQ(x.value().ndim(), 3);
  VSAN_CHECK_EQ(m.ndim(), 2);
  VSAN_CHECK_EQ(x.value().dim(1), m.dim(0));
  VSAN_CHECK_EQ(x.value().dim(2), m.dim(1));
  Tensor out = x.value();
  const int64_t stride = m.numel();
  for (int64_t b = 0; b < out.dim(0); ++b) {
    float* dst = out.data() + b * stride;
    const float* src = m.data();
    for (int64_t i = 0; i < stride; ++i) dst[i] += src[i];
  }
  return Variable::MakeNode(
      std::move(out), {x},
      [](Node* self) {
        AccumulateGrad(self->parents[0].get(), self->grad);
      },
      "add_broadcast_matrix");
}

Variable AddBroadcastMatrixVar(const Variable& x, const Variable& m) {
  VSAN_CHECK_EQ(x.value().ndim(), 3);
  VSAN_CHECK_EQ(m.value().ndim(), 2);
  VSAN_CHECK_EQ(x.value().dim(1), m.value().dim(0));
  VSAN_CHECK_EQ(x.value().dim(2), m.value().dim(1));
  Tensor out = x.value();
  const int64_t stride = m.value().numel();
  for (int64_t b = 0; b < out.dim(0); ++b) {
    float* dst = out.data() + b * stride;
    const float* src = m.value().data();
    for (int64_t i = 0; i < stride; ++i) dst[i] += src[i];
  }
  const std::vector<int64_t> m_shape = m.value().shape();
  return Variable::MakeNode(
      std::move(out), {x, m},
      [m_shape, stride](Node* self) {
        AccumulateGrad(self->parents[0].get(), self->grad);
        Node* m_node = self->parents[1].get();
        if (m_node->requires_grad) {
          Tensor gm(m_shape);
          const float* g = self->grad.data();
          const int64_t batch = self->grad.numel() / stride;
          for (int64_t b = 0; b < batch; ++b) {
            const float* src = g + b * stride;
            for (int64_t i = 0; i < stride; ++i) gm[i] += src[i];
          }
          AccumulateGrad(m_node, std::move(gm));
        }
      },
      "add_broadcast_matrix_var");
}

Variable Reshape(const Variable& x, std::vector<int64_t> shape) {
  std::vector<int64_t> old_shape = x.value().shape();
  return Variable::MakeNode(
      x.value().Reshaped(std::move(shape)), {x},
      [old_shape](Node* self) {
        AccumulateGrad(self->parents[0].get(),
                       self->grad.Reshaped(old_shape));
      },
      "reshape");
}

namespace {

// Decomposes a shape around `axis` into (outer, axis_len, inner) so that the
// flat layout is outer blocks of axis_len*inner contiguous elements.
struct AxisDims {
  int64_t outer = 1;
  int64_t axis = 1;
  int64_t inner = 1;
};

AxisDims SplitAxis(const std::vector<int64_t>& shape, int axis) {
  VSAN_CHECK_GE(axis, 0);
  VSAN_CHECK_LT(axis, static_cast<int>(shape.size()));
  AxisDims d;
  for (int i = 0; i < axis; ++i) d.outer *= shape[i];
  d.axis = shape[axis];
  for (size_t i = axis + 1; i < shape.size(); ++i) d.inner *= shape[i];
  return d;
}

}  // namespace

Variable Concat(const std::vector<Variable>& xs, int axis) {
  VSAN_CHECK(!xs.empty());
  const std::vector<int64_t>& base = xs[0].value().shape();
  std::vector<int64_t> out_shape = base;
  int64_t total_axis = 0;
  for (const Variable& x : xs) {
    VSAN_CHECK_EQ(x.value().ndim(), static_cast<int>(base.size()));
    for (int i = 0; i < x.value().ndim(); ++i) {
      if (i != axis) VSAN_CHECK_EQ(x.value().dim(i), base[i]);
    }
    total_axis += x.value().dim(axis);
  }
  out_shape[axis] = total_axis;
  // Fully covered by the memcpys below.
  Tensor out = Tensor::Uninitialized(out_shape);
  const AxisDims od = SplitAxis(out_shape, axis);

  int64_t offset = 0;  // running position along the concat axis
  std::vector<int64_t> offsets;
  for (const Variable& x : xs) {
    offsets.push_back(offset);
    const AxisDims xd = SplitAxis(x.value().shape(), axis);
    for (int64_t o = 0; o < xd.outer; ++o) {
      const float* src = x.value().data() + o * xd.axis * xd.inner;
      float* dst =
          out.data() + (o * od.axis + offset) * od.inner;
      std::memcpy(dst, src, sizeof(float) * xd.axis * xd.inner);
    }
    offset += x.value().dim(axis);
  }

  std::vector<std::vector<int64_t>> in_shapes;
  for (const Variable& x : xs) in_shapes.push_back(x.value().shape());
  return Variable::MakeNode(
      std::move(out), xs,
      [axis, od, offsets, in_shapes](Node* self) {
        for (size_t p = 0; p < self->parents.size(); ++p) {
          Node* parent = self->parents[p].get();
          if (!parent->requires_grad) continue;
          const AxisDims xd = SplitAxis(in_shapes[p], axis);
          Tensor gx = Tensor::Uninitialized(in_shapes[p]);
          for (int64_t o = 0; o < xd.outer; ++o) {
            const float* src =
                self->grad.data() + (o * od.axis + offsets[p]) * od.inner;
            float* dst = gx.data() + o * xd.axis * xd.inner;
            std::memcpy(dst, src, sizeof(float) * xd.axis * xd.inner);
          }
          AccumulateGrad(parent, std::move(gx));
        }
      },
      "concat");
}

Variable Slice(const Variable& x, int axis, int64_t start, int64_t len) {
  const std::vector<int64_t>& shape = x.value().shape();
  VSAN_CHECK_GE(start, 0);
  VSAN_CHECK_GT(len, 0);
  VSAN_CHECK_LE(start + len, shape[axis]);
  std::vector<int64_t> out_shape = shape;
  out_shape[axis] = len;
  const AxisDims xd = SplitAxis(shape, axis);
  Tensor out = Tensor::Uninitialized(out_shape);
  for (int64_t o = 0; o < xd.outer; ++o) {
    const float* src = x.value().data() + (o * xd.axis + start) * xd.inner;
    float* dst = out.data() + o * len * xd.inner;
    std::memcpy(dst, src, sizeof(float) * len * xd.inner);
  }
  std::vector<int64_t> in_shape = shape;
  return Variable::MakeNode(
      std::move(out), {x},
      [axis, start, len, xd, in_shape](Node* self) {
        Node* parent = self->parents[0].get();
        if (!parent->requires_grad) return;
        // Zero-initialized: only the sliced band receives gradient.
        Tensor gx(in_shape);
        for (int64_t o = 0; o < xd.outer; ++o) {
          const float* src = self->grad.data() + o * len * xd.inner;
          float* dst = gx.data() + (o * xd.axis + start) * xd.inner;
          std::memcpy(dst, src, sizeof(float) * len * xd.inner);
        }
        AccumulateGrad(parent, std::move(gx));
      },
      "slice");
}

Variable Transpose(const Variable& x) {
  return Variable::MakeNode(
      Transpose2D(x.value()), {x},
      [](Node* self) {
        AccumulateGrad(self->parents[0].get(), Transpose2D(self->grad));
      },
      "transpose");
}

Variable TransposeLast2(const Variable& x) {
  return Variable::MakeNode(
      vsan::TransposeLast2(x.value()), {x},
      [](Node* self) {
        AccumulateGrad(self->parents[0].get(),
                       vsan::TransposeLast2(self->grad));
      },
      "transpose_last2");
}

Variable GatherRows(const Variable& x, const std::vector<int64_t>& indices) {
  VSAN_CHECK_EQ(x.value().ndim(), 2);
  const int64_t rows = x.value().dim(0);
  const int64_t cols = x.value().dim(1);
  const int64_t k = static_cast<int64_t>(indices.size());
  VSAN_CHECK_GT(k, 0);
  Tensor out = Tensor::Uninitialized({k, cols});
  for (int64_t i = 0; i < k; ++i) {
    VSAN_CHECK_GE(indices[i], 0);
    VSAN_CHECK_LT(indices[i], rows);
    std::memcpy(out.data() + i * cols, x.value().data() + indices[i] * cols,
                sizeof(float) * cols);
  }
  const std::vector<int64_t> in_shape = x.value().shape();
  return Variable::MakeNode(
      std::move(out), {x},
      [indices, in_shape, cols](Node* self) {
        Node* parent = self->parents[0].get();
        if (!parent->requires_grad) return;
        // Zero-initialized: the scatter-add touches gathered rows only.
        Tensor gx(in_shape);
        for (size_t i = 0; i < indices.size(); ++i) {
          const float* src =
              self->grad.data() + static_cast<int64_t>(i) * cols;
          float* dst = gx.data() + indices[i] * cols;
          for (int64_t j = 0; j < cols; ++j) dst[j] += src[j];
        }
        AccumulateGrad(parent, std::move(gx));
      },
      "gather_rows");
}

Variable Sum(const Variable& x) {
  std::vector<int64_t> shape = x.value().shape();
  return Variable::MakeNode(
      Tensor::Scalar(x.value().Sum()), {x},
      [shape](Node* self) {
        AccumulateGrad(self->parents[0].get(),
                       Tensor::Full(shape, self->grad[0]));
      },
      "sum");
}

Variable Mean(const Variable& x) {
  std::vector<int64_t> shape = x.value().shape();
  const float inv = 1.0f / static_cast<float>(x.value().numel());
  return Variable::MakeNode(
      Tensor::Scalar(x.value().Mean()), {x},
      [shape, inv](Node* self) {
        AccumulateGrad(self->parents[0].get(),
                       Tensor::Full(shape, self->grad[0] * inv));
      },
      "mean");
}

Variable MaxOverAxis1(const Variable& x) {
  VSAN_CHECK_EQ(x.value().ndim(), 3);
  const int64_t batch = x.value().dim(0);
  const int64_t t = x.value().dim(1);
  const int64_t f = x.value().dim(2);
  Tensor out = Tensor::Uninitialized({batch, f});
  // argmax per (batch, feature), saved for the backward scatter.
  std::vector<int64_t> argmax(batch * f, 0);
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t j = 0; j < f; ++j) {
      float best = x.value().at(b, 0, j);
      int64_t best_i = 0;
      for (int64_t i = 1; i < t; ++i) {
        const float v = x.value().at(b, i, j);
        if (v > best) {
          best = v;
          best_i = i;
        }
      }
      out.at(b, j) = best;
      argmax[b * f + j] = best_i;
    }
  }
  std::vector<int64_t> in_shape = x.value().shape();
  return Variable::MakeNode(
      std::move(out), {x},
      [argmax, in_shape, batch, f](Node* self) {
        Node* parent = self->parents[0].get();
        if (!parent->requires_grad) return;
        // Zero-initialized: gradient scatters to argmax positions only.
        Tensor gx(in_shape);
        for (int64_t b = 0; b < batch; ++b) {
          for (int64_t j = 0; j < f; ++j) {
            gx.at(b, argmax[b * f + j], j) = self->grad.at(b, j);
          }
        }
        AccumulateGrad(parent, std::move(gx));
      },
      "max_over_axis1");
}

Variable MeanOverAxis1(const Variable& x) {
  VSAN_CHECK_EQ(x.value().ndim(), 3);
  const int64_t batch = x.value().dim(0);
  const int64_t t = x.value().dim(1);
  const int64_t f = x.value().dim(2);
  Tensor out({batch, f});
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t i = 0; i < t; ++i) {
      for (int64_t j = 0; j < f; ++j) out.at(b, j) += x.value().at(b, i, j);
    }
  }
  const float inv = 1.0f / static_cast<float>(t);
  for (int64_t i = 0; i < out.numel(); ++i) out[i] *= inv;
  std::vector<int64_t> in_shape = x.value().shape();
  return Variable::MakeNode(
      std::move(out), {x},
      [in_shape, batch, t, f, inv](Node* self) {
        Node* parent = self->parents[0].get();
        if (!parent->requires_grad) return;
        Tensor gx = Tensor::Uninitialized(in_shape);
        for (int64_t b = 0; b < batch; ++b) {
          for (int64_t i = 0; i < t; ++i) {
            for (int64_t j = 0; j < f; ++j) {
              gx.at(b, i, j) = self->grad.at(b, j) * inv;
            }
          }
        }
        AccumulateGrad(parent, std::move(gx));
      },
      "mean_over_axis1");
}

}  // namespace ops
}  // namespace vsan
