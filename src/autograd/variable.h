#ifndef VSAN_AUTOGRAD_VARIABLE_H_
#define VSAN_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace vsan {

namespace autograd {

// One node of the dynamic computation tape.
struct Node {
  Tensor value;
  // Gradient of the final scalar loss w.r.t. `value`.  Allocated lazily on
  // first accumulation (see AccumulateGrad); shape matches `value`.
  Tensor grad;
  bool has_grad = false;
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  // Propagates `grad` into the parents.  Null for leaves.
  std::function<void(Node* self)> backward_fn;
  // Op name for debugging ("matmul", "layer_norm", ...).
  const char* op = "leaf";
};

// Adds `g` into `node->grad` (no-op when the node does not require grad).
void AccumulateGrad(Node* node, const Tensor& g);
// Overload for temporaries: moves `g` into the node on first accumulation
// instead of deep-copying, so backward closures hand their scratch buffers
// straight to the tape.
void AccumulateGrad(Node* node, Tensor&& g);

}  // namespace autograd

// A tensor tracked by the autograd tape.  Cheap to copy (shared handle).
//
// Typical flow:
//   Variable w(Tensor::RandomNormal({d, d}, &rng, 0.02f), /*requires_grad=*/true);
//   Variable loss = ...ops over w...;
//   loss.Backward();           // fills w.grad()
//   ... optimizer consumes w.grad(), then w.ZeroGrad() ...
class Variable {
 public:
  // Null handle; defined() is false.
  Variable() = default;

  // Wraps a value as a tape leaf.
  explicit Variable(Tensor value, bool requires_grad = false);

  // Leaf that never requires grad (e.g. input batches, masks).
  static Variable Constant(Tensor value);

  // Interior node; used by the op library.  `requires_grad` is inferred from
  // the parents.
  static Variable MakeNode(Tensor value, std::vector<Variable> parents,
                           std::function<void(autograd::Node*)> backward_fn,
                           const char* op);

  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const;
  // Mutable access for optimizers (in-place parameter updates).
  Tensor& mutable_value();

  // Gradient; CHECK-fails unless a backward pass has accumulated into this
  // node.  Use has_grad() to query.
  const Tensor& grad() const;
  // Mutable gradient access for optimizers (clipping, in-place decay).
  Tensor& mutable_grad();
  bool has_grad() const;
  bool requires_grad() const;

  // Runs reverse-mode accumulation from this scalar (numel()==1) node.
  void Backward();

  // Clears this node's accumulated gradient.
  void ZeroGrad();

  // Identity for hashing/debugging.
  const autograd::Node* node_ptr() const { return node_.get(); }
  const std::shared_ptr<autograd::Node>& node() const { return node_; }

 private:
  std::shared_ptr<autograd::Node> node_;
};

}  // namespace vsan

#endif  // VSAN_AUTOGRAD_VARIABLE_H_
