#include "autograd/ops.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace vsan {
namespace ops {

using autograd::AccumulateGrad;
using autograd::Node;

namespace {

// The backward rules below are expressed entirely as forward GEMMs, so they
// inherit the thread-pool parallelism and the bitwise-determinism contract
// of tensor_ops.cc: gradients are identical at every thread count (checked
// by tests/parallel_equivalence_test.cc, including a finite-difference
// gradcheck run under the pool).

// dA = G * B^T, dB = A^T * G (2-D case).
void Backward2D(Node* self, const Tensor& a, const Tensor& b) {
  Node* pa = self->parents[0].get();
  Node* pb = self->parents[1].get();
  if (pa->requires_grad) {
    AccumulateGrad(pa, MatMul2D(self->grad, b, /*trans_a=*/false,
                                /*trans_b=*/true));
  }
  if (pb->requires_grad) {
    AccumulateGrad(pb, MatMul2D(a, self->grad, /*trans_a=*/true,
                                /*trans_b=*/false));
  }
}

// Batched case: per-batch 2-D rule.
void BackwardBatched(Node* self, const Tensor& a, const Tensor& b) {
  Node* pa = self->parents[0].get();
  Node* pb = self->parents[1].get();
  if (pa->requires_grad) {
    AccumulateGrad(pa, BatchedMatMul(self->grad, b, /*trans_a=*/false,
                                     /*trans_b=*/true));
  }
  if (pb->requires_grad) {
    AccumulateGrad(pb, BatchedMatMul(a, self->grad, /*trans_a=*/true,
                                     /*trans_b=*/false));
  }
}

// Broadcast case ([B,m,k] x [k,n]): dW sums over the batch, which equals one
// flattened 2-D GEMM.
void BackwardBroadcast(Node* self, const Tensor& a, const Tensor& w) {
  Node* pa = self->parents[0].get();
  Node* pw = self->parents[1].get();
  const int64_t bm = a.dim(0) * a.dim(1);
  if (pa->requires_grad) {
    Tensor ga2 = MatMul2D(self->grad.Reshaped({bm, w.dim(1)}), w,
                          /*trans_a=*/false, /*trans_b=*/true);
    AccumulateGrad(pa, ga2.Reshaped(a.shape()));
  }
  if (pw->requires_grad) {
    AccumulateGrad(pw, MatMul2D(a.Reshaped({bm, a.dim(2)}),
                                self->grad.Reshaped({bm, w.dim(1)}),
                                /*trans_a=*/true, /*trans_b=*/false));
  }
}

}  // namespace

Variable MatMul(const Variable& a, const Variable& b) {
  VSAN_TRACE_SPAN("ops/matmul", kAutograd);
  const Tensor& av = a.value();
  const Tensor& bv = b.value();
  if (av.ndim() == 2 && bv.ndim() == 2) {
    Tensor a_saved = av;
    Tensor b_saved = bv;
    return Variable::MakeNode(
        MatMul2D(av, bv), {a, b},
        [a_saved, b_saved](Node* self) {
          Backward2D(self, a_saved, b_saved);
        },
        "matmul2d");
  }
  if (av.ndim() == 3 && bv.ndim() == 3) {
    Tensor a_saved = av;
    Tensor b_saved = bv;
    return Variable::MakeNode(
        BatchedMatMul(av, bv), {a, b},
        [a_saved, b_saved](Node* self) {
          BackwardBatched(self, a_saved, b_saved);
        },
        "matmul_batched");
  }
  if (av.ndim() == 3 && bv.ndim() == 2) {
    Tensor a_saved = av;
    Tensor b_saved = bv;
    return Variable::MakeNode(
        BatchedMatMulBroadcast(av, bv), {a, b},
        [a_saved, b_saved](Node* self) {
          BackwardBroadcast(self, a_saved, b_saved);
        },
        "matmul_broadcast");
  }
  VSAN_LOG_FATAL << "unsupported matmul ranks: " << av.ndim() << " x "
                 << bv.ndim();
  return Variable();
}

}  // namespace ops
}  // namespace vsan
