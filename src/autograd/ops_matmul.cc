#include "autograd/ops.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace vsan {
namespace ops {

using autograd::AccumulateGrad;
using autograd::Node;

namespace {

// The backward rules below are expressed entirely as forward GEMMs, so they
// inherit the thread-pool parallelism and the bitwise-determinism contract
// of tensor_ops.cc: gradients are identical at every thread count (checked
// by tests/parallel_equivalence_test.cc, including a finite-difference
// gradcheck run under the pool).
//
// Inputs are read back through self->parents[i]->value — the tape keeps
// both operands alive, so the closures capture nothing.

// dA = G * B^T, dB = A^T * G (2-D case).
void Backward2D(Node* self) {
  Node* pa = self->parents[0].get();
  Node* pb = self->parents[1].get();
  if (pa->requires_grad) {
    AccumulateGrad(pa, MatMul2D(self->grad, pb->value, /*trans_a=*/false,
                                /*trans_b=*/true));
  }
  if (pb->requires_grad) {
    AccumulateGrad(pb, MatMul2D(pa->value, self->grad, /*trans_a=*/true,
                                /*trans_b=*/false));
  }
}

// Batched case: per-batch 2-D rule.
void BackwardBatched(Node* self) {
  Node* pa = self->parents[0].get();
  Node* pb = self->parents[1].get();
  if (pa->requires_grad) {
    AccumulateGrad(pa, BatchedMatMul(self->grad, pb->value, /*trans_a=*/false,
                                     /*trans_b=*/true));
  }
  if (pb->requires_grad) {
    AccumulateGrad(pb, BatchedMatMul(pa->value, self->grad, /*trans_a=*/true,
                                     /*trans_b=*/false));
  }
}

// Broadcast case ([B,m,k] x [k,n]): dW sums over the batch, which equals one
// flattened 2-D GEMM.
void BackwardBroadcast(Node* self) {
  Node* pa = self->parents[0].get();
  Node* pw = self->parents[1].get();
  const Tensor& a = pa->value;
  const Tensor& w = pw->value;
  const int64_t bm = a.dim(0) * a.dim(1);
  if (pa->requires_grad) {
    Tensor ga2 = MatMul2D(self->grad.Reshaped({bm, w.dim(1)}), w,
                          /*trans_a=*/false, /*trans_b=*/true);
    AccumulateGrad(pa, std::move(ga2).Reshaped(a.shape()));
  }
  if (pw->requires_grad) {
    AccumulateGrad(pw, MatMul2D(a.Reshaped({bm, a.dim(2)}),
                                self->grad.Reshaped({bm, w.dim(1)}),
                                /*trans_a=*/true, /*trans_b=*/false));
  }
}

}  // namespace

Variable MatMul(const Variable& a, const Variable& b) {
  VSAN_TRACE_SPAN("ops/matmul", kAutograd);
  const Tensor& av = a.value();
  const Tensor& bv = b.value();
  if (av.ndim() == 2 && bv.ndim() == 2) {
    return Variable::MakeNode(MatMul2D(av, bv), {a, b}, Backward2D,
                              "matmul2d");
  }
  if (av.ndim() == 3 && bv.ndim() == 3) {
    return Variable::MakeNode(BatchedMatMul(av, bv), {a, b}, BackwardBatched,
                              "matmul_batched");
  }
  if (av.ndim() == 3 && bv.ndim() == 2) {
    return Variable::MakeNode(BatchedMatMulBroadcast(av, bv), {a, b},
                              BackwardBroadcast, "matmul_broadcast");
  }
  VSAN_LOG_FATAL << "unsupported matmul ranks: " << av.ndim() << " x "
                 << bv.ndim();
  return Variable();
}

}  // namespace ops
}  // namespace vsan
