#include "autograd/variable.h"

#include <unordered_set>
#include <utility>

#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace vsan {

namespace autograd {

void AccumulateGrad(Node* node, const Tensor& g) {
  if (!node->requires_grad) return;
  VSAN_CHECK(g.shape() == node->value.shape())
      << "gradient shape mismatch for op " << node->op;
  if (!node->has_grad) {
    // Copy-assignment reuses the existing grad allocation when the bucket
    // matches (see pool::Buffer), so parameter gradients kept alive across
    // steps by ZeroGrad() become a memcpy here instead of an allocation.
    node->grad = g;
    node->has_grad = true;
  } else {
    Axpy(1.0f, g, &node->grad);
  }
}

void AccumulateGrad(Node* node, Tensor&& g) {
  if (!node->requires_grad) return;
  VSAN_CHECK(g.shape() == node->value.shape())
      << "gradient shape mismatch for op " << node->op;
  if (!node->has_grad) {
    node->grad = std::move(g);
    node->has_grad = true;
  } else {
    Axpy(1.0f, g, &node->grad);
  }
}

}  // namespace autograd

using autograd::Node;

Variable::Variable(Tensor value, bool requires_grad)
    : node_(std::make_shared<Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

Variable Variable::Constant(Tensor value) {
  return Variable(std::move(value), /*requires_grad=*/false);
}

Variable Variable::MakeNode(Tensor value, std::vector<Variable> parents,
                            std::function<void(Node*)> backward_fn,
                            const char* op) {
  Variable v(std::move(value), /*requires_grad=*/false);
  v.node_->op = op;
  for (const Variable& p : parents) {
    VSAN_CHECK(p.defined()) << "undefined parent for op " << op;
    v.node_->requires_grad |= p.requires_grad();
    v.node_->parents.push_back(p.node_);
  }
  if (v.node_->requires_grad) {
    v.node_->backward_fn = std::move(backward_fn);
  } else {
    // Prune the tape below nodes that cannot influence any parameter.
    v.node_->parents.clear();
  }
  return v;
}

const Tensor& Variable::value() const {
  VSAN_CHECK(defined());
  return node_->value;
}

Tensor& Variable::mutable_value() {
  VSAN_CHECK(defined());
  return node_->value;
}

const Tensor& Variable::grad() const {
  VSAN_CHECK(defined());
  VSAN_CHECK(node_->has_grad) << "no gradient accumulated (op " << node_->op
                              << ")";
  return node_->grad;
}

Tensor& Variable::mutable_grad() {
  VSAN_CHECK(defined());
  VSAN_CHECK(node_->has_grad);
  return node_->grad;
}

bool Variable::has_grad() const { return defined() && node_->has_grad; }

bool Variable::requires_grad() const {
  return defined() && node_->requires_grad;
}

void Variable::Backward() {
  VSAN_TRACE_SPAN("autograd/backward", kAutograd);
  VSAN_CHECK(defined());
  VSAN_CHECK_EQ(node_->value.numel(), 1)
      << "Backward() requires a scalar root";
  VSAN_CHECK(node_->requires_grad)
      << "Backward() on a graph with no trainable parameters";

  // Iterative post-order DFS producing a topological order (children after
  // all their ancestors once reversed).
  std::vector<Node*> topo;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({node_.get(), 0});
  visited.insert(node_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      Node* parent = frame.node->parents[frame.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      topo.push_back(frame.node);
      stack.pop_back();
    }
  }

  autograd::AccumulateGrad(node_.get(), Tensor::Ones(node_->value.shape()));
  // topo is post-order: parents appear before children, so iterate from the
  // back (root first).
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn && n->has_grad) {
#if VSAN_OBS_ENABLED
      // n->op is a static string literal, as SpanEvent::name requires.
      obs::ScopedSpan span(n->op, obs::SpanCategory::kAutograd);
#endif
      n->backward_fn(n);
    }
  }
}

void Variable::ZeroGrad() {
  VSAN_CHECK(defined());
  // Keep the grad tensor itself: its allocation is reused by the next
  // backward pass (AccumulateGrad copy-assigns into it), so per-step
  // gradient storage for parameters is allocated exactly once.
  node_->has_grad = false;
}

}  // namespace vsan
