#include <cstring>
#include <utility>

#include "autograd/ops.h"
#include "util/logging.h"

namespace vsan {
namespace ops {

using autograd::AccumulateGrad;
using autograd::Node;

Variable EmbeddingLookup(const Variable& table,
                         const std::vector<int32_t>& indices, int64_t batch,
                         int64_t steps, bool mask_zero) {
  const Tensor& tv = table.value();
  VSAN_CHECK_EQ(tv.ndim(), 2);
  VSAN_CHECK_EQ(static_cast<int64_t>(indices.size()), batch * steps);
  const int64_t vocab = tv.dim(0);
  const int64_t d = tv.dim(1);

  Tensor out({batch, steps, d});
  for (int64_t r = 0; r < batch * steps; ++r) {
    const int32_t idx = indices[r];
    VSAN_CHECK_GE(idx, 0);
    VSAN_CHECK_LT(idx, vocab);
    if (mask_zero && idx == 0) continue;  // zero row for the padding item
    std::memcpy(out.data() + r * d, tv.data() + idx * d, sizeof(float) * d);
  }

  std::vector<int64_t> table_shape = tv.shape();
  return Variable::MakeNode(
      std::move(out), {table},
      [indices, table_shape, d, mask_zero](Node* self) {
        Node* parent = self->parents[0].get();
        if (!parent->requires_grad) return;
        Tensor gt(table_shape);
        const float* g = self->grad.data();
        for (size_t r = 0; r < indices.size(); ++r) {
          const int32_t idx = indices[r];
          if (mask_zero && idx == 0) continue;
          float* dst = gt.data() + static_cast<int64_t>(idx) * d;
          const float* src = g + static_cast<int64_t>(r) * d;
          for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
        }
        AccumulateGrad(parent, std::move(gt));
      },
      "embedding_lookup");
}

}  // namespace ops
}  // namespace vsan
