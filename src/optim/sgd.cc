#include "optim/sgd.h"

#include "tensor/tensor_ops.h"

namespace vsan {
namespace optim {

Sgd::Sgd(std::vector<Variable> params, const Options& options)
    : Optimizer(std::move(params)), options_(options) {
  velocity_.resize(params_.size());
}

void Sgd::SaveState(std::ostream& out) const {
  WriteTag(out, "OPTSGD01");
  WriteBuffers(out, velocity_);
}

Status Sgd::LoadState(std::istream& in) {
  Status status = CheckTag(in, "OPTSGD01");
  if (!status.ok()) return status;
  std::vector<Tensor> velocity;
  status = ReadBuffers(in, &velocity);
  if (!status.ok()) return status;
  velocity_ = std::move(velocity);
  return Status::Ok();
}

void Sgd::Step() {
  const float lr = options_.lr;
  const float wd = options_.weight_decay;
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (!p.has_grad()) continue;
    const Tensor& g = p.grad();
    Tensor& w = p.mutable_value();
    if (options_.momentum > 0.0f) {
      if (velocity_[i].numel() == 0) velocity_[i] = Tensor(w.shape());
      // Three-array sweep: raw pointers so the loop vectorizes.
      const float momentum = options_.momentum;
      const float* gp = g.data();
      float* wp = w.data();
      float* vp = velocity_[i].data();
      const int64_t count = w.numel();
      for (int64_t j = 0; j < count; ++j) {
        const float grad = gp[j] + wd * wp[j];
        vp[j] = momentum * vp[j] + grad;
        wp[j] -= lr * vp[j];
      }
    } else {
      ZipInPlace(&w, g,
                 [lr, wd](float w_j, float g_j) {
                   return w_j - lr * (g_j + wd * w_j);
                 });
    }
  }
}

}  // namespace optim
}  // namespace vsan
