#include "optim/sgd.h"

namespace vsan {
namespace optim {

Sgd::Sgd(std::vector<Variable> params, const Options& options)
    : Optimizer(std::move(params)), options_(options) {
  velocity_.resize(params_.size());
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (!p.has_grad()) continue;
    const Tensor& g = p.grad();
    Tensor& w = p.mutable_value();
    if (options_.momentum > 0.0f) {
      if (velocity_[i].numel() == 0) velocity_[i] = Tensor(w.shape());
      Tensor& v = velocity_[i];
      for (int64_t j = 0; j < w.numel(); ++j) {
        const float grad = g[j] + options_.weight_decay * w[j];
        v[j] = options_.momentum * v[j] + grad;
        w[j] -= options_.lr * v[j];
      }
    } else {
      for (int64_t j = 0; j < w.numel(); ++j) {
        const float grad = g[j] + options_.weight_decay * w[j];
        w[j] -= options_.lr * grad;
      }
    }
  }
}

}  // namespace optim
}  // namespace vsan
