#ifndef VSAN_OPTIM_ADAM_H_
#define VSAN_OPTIM_ADAM_H_

#include "optim/optimizer.h"

namespace vsan {
namespace optim {

// Adam (Kingma & Ba 2015) with bias correction; the paper trains all models
// with Adam at lr = 1e-3 (Sec. V-D).
class Adam : public Optimizer {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
  };

  Adam(std::vector<Variable> params, const Options& options);

  void Step() override;

  void set_learning_rate(float lr) override { options_.lr = lr; }
  float learning_rate() const override { return options_.lr; }

  // Persists/restores the bias-correction step count and both moment
  // buffers; required for exact training resume (a fresh Adam would re-run
  // the bias-correction warmup and diverge from the uninterrupted run).
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

  int64_t step_count() const { return step_count_; }

 private:
  Options options_;
  int64_t step_count_ = 0;
  std::vector<Tensor> m_;  // first-moment estimates, lazily allocated
  std::vector<Tensor> v_;  // second-moment estimates
};

}  // namespace optim
}  // namespace vsan

#endif  // VSAN_OPTIM_ADAM_H_
