#ifndef VSAN_OPTIM_OPTIMIZER_H_
#define VSAN_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace vsan {
namespace optim {

// Base class for gradient-descent optimizers over a fixed parameter list.
// Parameters without an accumulated gradient are skipped by Step() (this
// happens legitimately, e.g. ablated sub-layers excluded from the graph).
class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  // Adjusts the learning rate (for LR schedules; see optim/lr_schedule.h).
  virtual void set_learning_rate(float lr) = 0;
  virtual float learning_rate() const = 0;

  // Clears accumulated gradients on all parameters.
  void ZeroGrad();

  // Scales all gradients so their global L2 norm is at most `max_norm`.
  // Returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

 protected:
  std::vector<Variable> params_;
};

}  // namespace optim
}  // namespace vsan

#endif  // VSAN_OPTIM_OPTIMIZER_H_
