#ifndef VSAN_OPTIM_OPTIMIZER_H_
#define VSAN_OPTIM_OPTIMIZER_H_

#include <istream>
#include <ostream>
#include <vector>

#include "autograd/variable.h"
#include "util/status.h"

namespace vsan {
namespace optim {

// Base class for gradient-descent optimizers over a fixed parameter list.
// Parameters without an accumulated gradient are skipped by Step() (this
// happens legitimately, e.g. ablated sub-layers excluded from the graph).
class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  // Adjusts the learning rate (for LR schedules; see optim/lr_schedule.h).
  virtual void set_learning_rate(float lr) = 0;
  virtual float learning_rate() const = 0;

  // Clears accumulated gradients on all parameters.
  void ZeroGrad();

  // Scales all gradients so their global L2 norm is at most `max_norm`.
  // Returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  // Serializes the optimizer's internal state (moment/velocity buffers and
  // step counts — everything beyond the parameters themselves) so training
  // can resume exactly where it left off.  Each implementation writes a
  // fixed 8-byte tag first; LoadState verifies it, so a checkpoint written
  // with one optimizer cannot be silently loaded into another.  The base
  // implementations cover stateless optimizers.
  virtual void SaveState(std::ostream& out) const;
  virtual Status LoadState(std::istream& in);

  const std::vector<Variable>& params() const { return params_; }

 protected:
  // Shared (de)serialization helpers for subclasses: the fixed 8-byte state
  // tag and lazily-allocated per-parameter buffer vectors (Adam moments,
  // SGD velocity).  ReadBuffers validates the buffer count and every
  // element count against params_, so a checkpoint from a differently
  // shaped model fails with a descriptive Status instead of corrupting
  // memory.
  static void WriteTag(std::ostream& out, const char (&tag)[9]);
  static Status CheckTag(std::istream& in, const char (&tag)[9]);
  void WriteBuffers(std::ostream& out,
                    const std::vector<Tensor>& buffers) const;
  Status ReadBuffers(std::istream& in, std::vector<Tensor>* buffers) const;

  std::vector<Variable> params_;
};

}  // namespace optim
}  // namespace vsan

#endif  // VSAN_OPTIM_OPTIMIZER_H_
