#ifndef VSAN_OPTIM_SGD_H_
#define VSAN_OPTIM_SGD_H_

#include "optim/optimizer.h"

namespace vsan {
namespace optim {

// Stochastic gradient descent with optional momentum and L2 weight decay.
class Sgd : public Optimizer {
 public:
  struct Options {
    float lr = 0.01f;
    float momentum = 0.0f;
    float weight_decay = 0.0f;
  };

  Sgd(std::vector<Variable> params, const Options& options);

  void Step() override;

  void set_learning_rate(float lr) override { options_.lr = lr; }
  float learning_rate() const override { return options_.lr; }

  // Persists/restores the momentum velocity buffers (a no-op payload for
  // momentum-free SGD, but the tag still guards optimizer-type mismatches).
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

 private:
  Options options_;
  std::vector<Tensor> velocity_;  // allocated lazily, one per parameter
};

}  // namespace optim
}  // namespace vsan

#endif  // VSAN_OPTIM_SGD_H_
