#include "optim/optimizer.h"

#include <cmath>

namespace vsan {
namespace optim {

Optimizer::Optimizer(std::vector<Variable> params)
    : params_(std::move(params)) {}

void Optimizer::ZeroGrad() {
  for (Variable& p : params_) p.ZeroGrad();
}

float Optimizer::ClipGradNorm(float max_norm) {
  double sq = 0.0;
  for (const Variable& p : params_) {
    if (!p.has_grad()) continue;
    const Tensor& g = p.grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      sq += static_cast<double>(g[i]) * g[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Variable& p : params_) {
      if (!p.has_grad()) continue;
      Tensor& g = p.mutable_grad();
      for (int64_t i = 0; i < g.numel(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

}  // namespace optim
}  // namespace vsan
