#include "optim/optimizer.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace vsan {
namespace optim {

Optimizer::Optimizer(std::vector<Variable> params)
    : params_(std::move(params)) {}

void Optimizer::ZeroGrad() {
  for (Variable& p : params_) p.ZeroGrad();
}

float Optimizer::ClipGradNorm(float max_norm) {
  double sq = 0.0;
  for (const Variable& p : params_) {
    if (!p.has_grad()) continue;
    const Tensor& g = p.grad();
    const float* gp = g.data();
    const int64_t count = g.numel();
    for (int64_t i = 0; i < count; ++i) {
      sq += static_cast<double>(gp[i]) * gp[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Variable& p : params_) {
      if (!p.has_grad()) continue;
      ApplyInPlace(&p.mutable_grad(), [scale](float g) { return g * scale; });
    }
  }
  return norm;
}

}  // namespace optim
}  // namespace vsan
