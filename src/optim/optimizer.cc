#include "optim/optimizer.h"

#include <cmath>
#include <cstring>

#include "tensor/tensor_ops.h"
#include "util/string_util.h"

namespace vsan {
namespace optim {

Optimizer::Optimizer(std::vector<Variable> params)
    : params_(std::move(params)) {}

void Optimizer::ZeroGrad() {
  for (Variable& p : params_) p.ZeroGrad();
}

void Optimizer::SaveState(std::ostream& out) const {
  WriteTag(out, "OPTNONE1");
}

Status Optimizer::LoadState(std::istream& in) {
  return CheckTag(in, "OPTNONE1");
}

void Optimizer::WriteTag(std::ostream& out, const char (&tag)[9]) {
  out.write(tag, 8);
}

Status Optimizer::CheckTag(std::istream& in, const char (&tag)[9]) {
  char got[8];
  in.read(got, sizeof(got));
  if (!in.good()) {
    return Status::InvalidArgument("optimizer state: truncated tag");
  }
  if (std::memcmp(got, tag, sizeof(got)) != 0) {
    return Status::InvalidArgument(
        StrCat("optimizer state: tag mismatch, expected ",
               std::string(tag, 8), ", got ", std::string(got, 8)));
  }
  return Status::Ok();
}

void Optimizer::WriteBuffers(std::ostream& out,
                             const std::vector<Tensor>& buffers) const {
  const int64_t count = static_cast<int64_t>(buffers.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& t : buffers) {
    const uint8_t allocated = t.numel() > 0 ? 1 : 0;
    out.write(reinterpret_cast<const char*>(&allocated), sizeof(allocated));
    if (!allocated) continue;
    const int64_t numel = t.numel();
    out.write(reinterpret_cast<const char*>(&numel), sizeof(numel));
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(sizeof(float) * numel));
  }
}

Status Optimizer::ReadBuffers(std::istream& in,
                              std::vector<Tensor>* buffers) const {
  int64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in.good()) {
    return Status::InvalidArgument("optimizer state: truncated buffer count");
  }
  if (count != static_cast<int64_t>(params_.size())) {
    return Status::InvalidArgument(
        StrCat("optimizer state: buffer count mismatch, state has ", count,
               ", optimizer has ", params_.size()));
  }
  buffers->assign(params_.size(), Tensor());
  for (int64_t i = 0; i < count; ++i) {
    uint8_t allocated = 0;
    in.read(reinterpret_cast<char*>(&allocated), sizeof(allocated));
    if (!in.good()) {
      return Status::InvalidArgument(
          StrCat("optimizer state: buffer ", i, ": truncated"));
    }
    if (allocated == 0) continue;
    if (allocated != 1) {
      return Status::InvalidArgument(
          StrCat("optimizer state: buffer ", i, ": bad flag"));
    }
    int64_t numel = 0;
    in.read(reinterpret_cast<char*>(&numel), sizeof(numel));
    if (!in.good() || numel != params_[i].value().numel()) {
      return Status::InvalidArgument(
          StrCat("optimizer state: buffer ", i, ": element count mismatch"));
    }
    Tensor t(params_[i].value().shape());
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(sizeof(float) * numel));
    if (!in.good()) {
      return Status::InvalidArgument(
          StrCat("optimizer state: buffer ", i, ": truncated data"));
    }
    (*buffers)[i] = std::move(t);
  }
  return Status::Ok();
}

float Optimizer::ClipGradNorm(float max_norm) {
  double sq = 0.0;
  for (const Variable& p : params_) {
    if (!p.has_grad()) continue;
    const Tensor& g = p.grad();
    const float* gp = g.data();
    const int64_t count = g.numel();
    for (int64_t i = 0; i < count; ++i) {
      sq += static_cast<double>(gp[i]) * gp[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Variable& p : params_) {
      if (!p.has_grad()) continue;
      ApplyInPlace(&p.mutable_grad(), [scale](float g) { return g * scale; });
    }
  }
  return norm;
}

}  // namespace optim
}  // namespace vsan
