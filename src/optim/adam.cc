#include "optim/adam.h"

#include <cmath>

namespace vsan {
namespace optim {

Adam::Adam(std::vector<Variable> params, const Options& options)
    : Optimizer(std::move(params)), options_(options) {
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::Step() {
  ++step_count_;
  const float bc1 =
      1.0f - std::pow(options_.beta1, static_cast<float>(step_count_));
  const float bc2 =
      1.0f - std::pow(options_.beta2, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (!p.has_grad()) continue;
    const Tensor& g = p.grad();
    Tensor& w = p.mutable_value();
    if (m_[i].numel() == 0) {
      m_[i] = Tensor(w.shape());
      v_[i] = Tensor(w.shape());
    }
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (int64_t j = 0; j < w.numel(); ++j) {
      const float grad = g[j] + options_.weight_decay * w[j];
      m[j] = options_.beta1 * m[j] + (1.0f - options_.beta1) * grad;
      v[j] = options_.beta2 * v[j] + (1.0f - options_.beta2) * grad * grad;
      const float m_hat = m[j] / bc1;
      const float v_hat = v[j] / bc2;
      w[j] -= options_.lr * m_hat / (std::sqrt(v_hat) + options_.eps);
    }
  }
}

}  // namespace optim
}  // namespace vsan
