#include "optim/adam.h"

#include <cmath>

namespace vsan {
namespace optim {

Adam::Adam(std::vector<Variable> params, const Options& options)
    : Optimizer(std::move(params)), options_(options) {
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::SaveState(std::ostream& out) const {
  WriteTag(out, "OPTADAM1");
  out.write(reinterpret_cast<const char*>(&step_count_), sizeof(step_count_));
  WriteBuffers(out, m_);
  WriteBuffers(out, v_);
}

Status Adam::LoadState(std::istream& in) {
  Status status = CheckTag(in, "OPTADAM1");
  if (!status.ok()) return status;
  int64_t step_count = 0;
  in.read(reinterpret_cast<char*>(&step_count), sizeof(step_count));
  if (!in.good() || step_count < 0) {
    return Status::InvalidArgument("adam state: bad step count");
  }
  std::vector<Tensor> m, v;
  status = ReadBuffers(in, &m);
  if (!status.ok()) return status;
  status = ReadBuffers(in, &v);
  if (!status.ok()) return status;
  step_count_ = step_count;
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::Ok();
}

void Adam::Step() {
  ++step_count_;
  const float bc1 =
      1.0f - std::pow(options_.beta1, static_cast<float>(step_count_));
  const float bc2 =
      1.0f - std::pow(options_.beta2, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (!p.has_grad()) continue;
    const Tensor& g = p.grad();
    Tensor& w = p.mutable_value();
    if (m_[i].numel() == 0) {
      m_[i] = Tensor(w.shape());
      v_[i] = Tensor(w.shape());
    }
    // Raw-pointer loop (not Tensor::operator[], which is an out-of-line
    // call) so the update vectorizes; one fused sweep over w/m/v/g.
    const float* gp = g.data();
    float* wp = w.data();
    float* mp = m_[i].data();
    float* vp = v_[i].data();
    const int64_t count = w.numel();
    const float b1 = options_.beta1, b2 = options_.beta2;
    const float wd = options_.weight_decay, lr = options_.lr;
    const float eps = options_.eps;
    for (int64_t j = 0; j < count; ++j) {
      const float grad = gp[j] + wd * wp[j];
      mp[j] = b1 * mp[j] + (1.0f - b1) * grad;
      vp[j] = b2 * vp[j] + (1.0f - b2) * grad * grad;
      const float m_hat = mp[j] / bc1;
      const float v_hat = vp[j] / bc2;
      wp[j] -= lr * m_hat / (std::sqrt(v_hat) + eps);
    }
  }
}

}  // namespace optim
}  // namespace vsan
