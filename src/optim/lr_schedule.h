#ifndef VSAN_OPTIM_LR_SCHEDULE_H_
#define VSAN_OPTIM_LR_SCHEDULE_H_

#include <algorithm>
#include <cstdint>

#include "util/logging.h"

namespace vsan {
namespace optim {

// Learning-rate schedules.  The paper trains with a constant Adam lr of
// 1e-3; the schedules below are standard practice for squeezing extra
// quality out of longer runs and are exercised by the extension benches.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  // Learning rate to use at optimization step `step` (0-based).
  virtual float LearningRate(int64_t step) const = 0;
};

class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) { VSAN_CHECK_GT(lr, 0.0f); }
  float LearningRate(int64_t) const override { return lr_; }

 private:
  float lr_;
};

// Multiplies the rate by `factor` every `steps_per_decay` steps.
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(float initial, float factor, int64_t steps_per_decay)
      : initial_(initial), factor_(factor), steps_per_decay_(steps_per_decay) {
    VSAN_CHECK_GT(initial, 0.0f);
    VSAN_CHECK_GT(factor, 0.0f);
    VSAN_CHECK_LE(factor, 1.0f);
    VSAN_CHECK_GT(steps_per_decay, 0);
  }

  float LearningRate(int64_t step) const override {
    float lr = initial_;
    for (int64_t s = steps_per_decay_; s <= step; s += steps_per_decay_) {
      lr *= factor_;
    }
    return lr;
  }

 private:
  float initial_;
  float factor_;
  int64_t steps_per_decay_;
};

// Linear warmup to `peak` over `warmup_steps`, then linear decay to zero at
// `total_steps` (the Transformer-style trapezoid, simplified).
class WarmupLinearLr : public LrSchedule {
 public:
  WarmupLinearLr(float peak, int64_t warmup_steps, int64_t total_steps)
      : peak_(peak), warmup_steps_(warmup_steps), total_steps_(total_steps) {
    VSAN_CHECK_GT(peak, 0.0f);
    VSAN_CHECK_GE(warmup_steps, 0);
    VSAN_CHECK_GT(total_steps, warmup_steps);
  }

  float LearningRate(int64_t step) const override {
    if (step < warmup_steps_) {
      return peak_ * static_cast<float>(step + 1) /
             static_cast<float>(warmup_steps_ + 1);
    }
    const float remaining =
        static_cast<float>(total_steps_ - std::min(step, total_steps_));
    const float span = static_cast<float>(total_steps_ - warmup_steps_);
    return peak_ * std::max(remaining / span, 0.0f);
  }

 private:
  float peak_;
  int64_t warmup_steps_;
  int64_t total_steps_;
};

}  // namespace optim
}  // namespace vsan

#endif  // VSAN_OPTIM_LR_SCHEDULE_H_
