#include "util/crc32.h"

#include <array>

namespace vsan {
namespace {

constexpr uint32_t kPolynomial = 0xedb88320u;

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? kPolynomial ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

uint32_t UpdateRaw(uint32_t state, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& table = Table();
  for (size_t i = 0; i < len; ++i) {
    state = table[(state ^ p[i]) & 0xffu] ^ (state >> 8);
  }
  return state;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  return UpdateRaw(seed ^ 0xffffffffu, data, len) ^ 0xffffffffu;
}

void Crc32Stream::Update(const void* data, size_t len) {
  state_ = UpdateRaw(state_, data, len);
}

uint32_t Crc32Stream::value() const { return state_ ^ 0xffffffffu; }

void Crc32Stream::Reset() { state_ = 0xffffffffu; }

}  // namespace vsan
