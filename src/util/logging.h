#ifndef VSAN_UTIL_LOGGING_H_
#define VSAN_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

// Lightweight logging and assertion macros in the spirit of glog.
//
// Library code does not use exceptions; programmer errors (shape mismatches,
// invalid arguments, broken invariants) terminate through VSAN_CHECK so that
// failures are loud and carry a source location.
//
// Runtime filtering: the environment variable VSAN_MIN_LOG_LEVEL
// ("info" | "warning" | "error" | "fatal", or 0-3) suppresses lines below
// the given severity without recompiling — benchmarks set it to "error" to
// keep INFO chatter out of timed regions.  FATAL is never suppressed.
// SetMinLogSeverity() overrides the environment at runtime (tests).

namespace vsan {
namespace internal {

enum class LogSeverity { kInfo, kWarning, kError, kFatal };

// Whether `severity` is at or above the configured minimum (from
// VSAN_MIN_LOG_LEVEL via util/env.h, cached on first use).  Out-of-line in
// logging.cc; the kFatal short-circuit keeps CHECK failure paths
// filter-free.
bool LogSeverityAtLeastMin(LogSeverity severity);

inline bool LogSeverityEnabled(LogSeverity severity) {
  return severity == LogSeverity::kFatal || LogSeverityAtLeastMin(severity);
}

// Swallows a discarded log statement's stream expression in the suppressed
// branch of the VSAN_LOG_* ternary (the glog LogMessageVoidify idiom: '&'
// binds looser than '<<' but tighter than '?:').
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

// Accumulates one log line and emits it (with severity prefix) on
// destruction.  FATAL messages abort the process.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line)
      : severity_(severity) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << SeverityTag() << " " << base << ":" << line << "] ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    stream_ << "\n";
    std::cerr << stream_.str();
    if (severity_ == LogSeverity::kFatal) {
      std::cerr.flush();
      std::abort();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  const char* SeverityTag() const {
    switch (severity_) {
      case LogSeverity::kInfo:
        return "[I";
      case LogSeverity::kWarning:
        return "[W";
      case LogSeverity::kError:
        return "[E";
      case LogSeverity::kFatal:
        return "[F";
    }
    return "[?";
  }

  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

// Runtime log filtering (see the file comment).  The initial minimum comes
// from VSAN_MIN_LOG_LEVEL on first log statement; SetMinLogSeverity takes
// precedence once called.
void SetMinLogSeverity(internal::LogSeverity severity);
internal::LogSeverity MinLogSeverity();

}  // namespace vsan

// Each VSAN_LOG_* is a single expression statement: when the severity is
// filtered out the right arm (message construction and every streamed
// operand) is never evaluated.
#define VSAN_LOG_SEVERITY(severity)                                     \
  !::vsan::internal::LogSeverityEnabled(severity)                       \
      ? (void)0                                                         \
      : ::vsan::internal::LogMessageVoidify() &                         \
            ::vsan::internal::LogMessage(severity, __FILE__, __LINE__)  \
                .stream()

#define VSAN_LOG_INFO VSAN_LOG_SEVERITY(::vsan::internal::LogSeverity::kInfo)
#define VSAN_LOG_WARNING \
  VSAN_LOG_SEVERITY(::vsan::internal::LogSeverity::kWarning)
#define VSAN_LOG_ERROR \
  VSAN_LOG_SEVERITY(::vsan::internal::LogSeverity::kError)
#define VSAN_LOG_FATAL \
  VSAN_LOG_SEVERITY(::vsan::internal::LogSeverity::kFatal)

// Fatal unless `condition` holds.  Usable as a stream:
//   VSAN_CHECK(a == b) << "details";
#define VSAN_CHECK(condition) \
  if (condition)              \
    ;                         \
  else                        \
    VSAN_LOG_FATAL << "Check failed: " #condition " "

#define VSAN_CHECK_EQ(a, b) \
  VSAN_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define VSAN_CHECK_NE(a, b) \
  VSAN_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define VSAN_CHECK_LT(a, b) \
  VSAN_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define VSAN_CHECK_LE(a, b) \
  VSAN_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define VSAN_CHECK_GT(a, b) \
  VSAN_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define VSAN_CHECK_GE(a, b) \
  VSAN_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define VSAN_DCHECK(condition) \
  while (false) VSAN_CHECK(condition)
#else
#define VSAN_DCHECK(condition) VSAN_CHECK(condition)
#endif

#endif  // VSAN_UTIL_LOGGING_H_
