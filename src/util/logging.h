#ifndef VSAN_UTIL_LOGGING_H_
#define VSAN_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

// Lightweight logging and assertion macros in the spirit of glog.
//
// Library code does not use exceptions; programmer errors (shape mismatches,
// invalid arguments, broken invariants) terminate through VSAN_CHECK so that
// failures are loud and carry a source location.

namespace vsan {
namespace internal {

enum class LogSeverity { kInfo, kWarning, kError, kFatal };

// Accumulates one log line and emits it (with severity prefix) on
// destruction.  FATAL messages abort the process.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line)
      : severity_(severity) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << SeverityTag() << " " << base << ":" << line << "] ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    stream_ << "\n";
    std::cerr << stream_.str();
    if (severity_ == LogSeverity::kFatal) {
      std::cerr.flush();
      std::abort();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  const char* SeverityTag() const {
    switch (severity_) {
      case LogSeverity::kInfo:
        return "[I";
      case LogSeverity::kWarning:
        return "[W";
      case LogSeverity::kError:
        return "[E";
      case LogSeverity::kFatal:
        return "[F";
    }
    return "[?";
  }

  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace vsan

#define VSAN_LOG_INFO                                                \
  ::vsan::internal::LogMessage(::vsan::internal::LogSeverity::kInfo, \
                               __FILE__, __LINE__)                   \
      .stream()
#define VSAN_LOG_WARNING                                                \
  ::vsan::internal::LogMessage(::vsan::internal::LogSeverity::kWarning, \
                               __FILE__, __LINE__)                      \
      .stream()
#define VSAN_LOG_ERROR                                                \
  ::vsan::internal::LogMessage(::vsan::internal::LogSeverity::kError, \
                               __FILE__, __LINE__)                    \
      .stream()
#define VSAN_LOG_FATAL                                                \
  ::vsan::internal::LogMessage(::vsan::internal::LogSeverity::kFatal, \
                               __FILE__, __LINE__)                    \
      .stream()

// Fatal unless `condition` holds.  Usable as a stream:
//   VSAN_CHECK(a == b) << "details";
#define VSAN_CHECK(condition) \
  if (condition)              \
    ;                         \
  else                        \
    VSAN_LOG_FATAL << "Check failed: " #condition " "

#define VSAN_CHECK_EQ(a, b) \
  VSAN_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define VSAN_CHECK_NE(a, b) \
  VSAN_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define VSAN_CHECK_LT(a, b) \
  VSAN_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define VSAN_CHECK_LE(a, b) \
  VSAN_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define VSAN_CHECK_GT(a, b) \
  VSAN_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define VSAN_CHECK_GE(a, b) \
  VSAN_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define VSAN_DCHECK(condition) \
  while (false) VSAN_CHECK(condition)
#else
#define VSAN_DCHECK(condition) VSAN_CHECK(condition)
#endif

#endif  // VSAN_UTIL_LOGGING_H_
