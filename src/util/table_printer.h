#ifndef VSAN_UTIL_TABLE_PRINTER_H_
#define VSAN_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace vsan {

// Builds and prints fixed-width ASCII tables for the experiment binaries,
// mirroring the row/column layout of the paper's tables.
//
//   TablePrinter t({"Model", "NDCG@10", "Recall@10"});
//   t.AddRow({"SASRec", "5.105", "7.796"});
//   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Appends a row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> cells);

  // Inserts a horizontal separator before the next row.
  void AddSeparator();

  // Renders the table.
  void Print(std::ostream& os) const;

  // Renders the table to a string.
  std::string ToString() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace vsan

#endif  // VSAN_UTIL_TABLE_PRINTER_H_
