#ifndef VSAN_UTIL_THREAD_POOL_H_
#define VSAN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

// Fixed-size worker pool behind the library's data-parallel loops.
//
// Determinism contract: ParallelFor partitions [begin, end) into contiguous
// shards, each processed by exactly one thread, so a kernel whose per-index
// work is independent of the partition produces bitwise-identical results at
// every thread count (including 1).  Callers that need reductions must merge
// per-shard results in index order themselves (see eval::EvaluateRanking).

namespace vsan {

class ThreadPool {
 public:
  // `num_threads` counts the calling thread: a pool of N spawns N-1 workers
  // and runs one shard on the caller.  Clamped to at least 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Invokes fn(shard_begin, shard_end) over contiguous shards of
  // [begin, end) and blocks until all shards finish.  `grain` is the minimum
  // number of indices per shard (so every shard has at least `grain` indices
  // whenever the range does); ranges smaller than 2*grain, pools of one
  // thread, and calls made from inside a ParallelFor shard all run serially
  // on the calling thread.  The first exception thrown by any shard is
  // rethrown on the calling thread after all shards complete.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  // Process-wide pool used by the kernels, lazily created with
  // DefaultNumThreads().  Stable until SetGlobalNumThreads() replaces it.
  static ThreadPool* Global();

  // Replaces the global pool with one of `num_threads` threads.  Must not
  // race with in-flight ParallelFor calls on the old pool; intended for
  // tests and benchmarks that sweep thread counts between runs.
  static void SetGlobalNumThreads(int num_threads);

  // VSAN_NUM_THREADS when set to a positive integer, otherwise
  // std::thread::hardware_concurrency() (at least 1).
  static int DefaultNumThreads();

 private:
  void WorkerLoop();

  const int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

// ParallelFor on the global pool.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace vsan

#endif  // VSAN_UTIL_THREAD_POOL_H_
