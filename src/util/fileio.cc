#include "util/fileio.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "util/string_util.h"

namespace vsan {
namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return StrCat(what, " ", path, ": ", std::strerror(errno));
}

}  // namespace

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    if (!FileExists(path)) {
      return Status::NotFound(StrCat("no such file: ", path));
    }
    return Status::Internal(StrCat("cannot open ", path));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::Internal(StrCat("read failed: ", path));
  *out = buffer.str();
  return Status::Ok();
}

Status AtomicWriteFile(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::Internal(ErrnoMessage("cannot create", tmp));

  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Internal(ErrnoMessage("write failed", tmp));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal(ErrnoMessage("fsync failed", tmp));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::Internal(ErrnoMessage("close failed", tmp));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::Internal(ErrnoMessage("rename failed", path));
  }

  // fsync the containing directory so the rename survives power loss.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);  // best-effort: some filesystems reject directory fsync
    ::close(dir_fd);
  }
  return Status::Ok();
}

Status EnsureDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::Ok();
  }
  return Status::Internal(ErrnoMessage("cannot create directory", path));
}

}  // namespace vsan
