#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace vsan {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  VSAN_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  VSAN_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(Row{/*separator=*/false, std::move(cells)});
}

void TablePrinter::AddSeparator() {
  rows_.push_back(Row{/*separator=*/true, {}});
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto render_separator = [&](std::ostringstream& oss) {
    oss << "+";
    for (size_t w : widths) {
      oss << std::string(w + 2, '-') << "+";
    }
    oss << "\n";
  };
  auto render_row = [&](std::ostringstream& oss,
                        const std::vector<std::string>& cells) {
    oss << "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      oss << " " << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
          << " |";
    }
    oss << "\n";
  };

  std::ostringstream oss;
  render_separator(oss);
  render_row(oss, header_);
  render_separator(oss);
  for (const Row& row : rows_) {
    if (row.separator) {
      render_separator(oss);
    } else {
      render_row(oss, row.cells);
    }
  }
  render_separator(oss);
  return oss.str();
}

}  // namespace vsan
