#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace vsan {

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? needed : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace vsan
