#include "util/flags.h"

#include <cstdlib>

namespace vsan {

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  queried_[name] = true;
  return flags_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& def) const {
  queried_[name] = true;
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t def) const {
  queried_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  return end == it->second.c_str() ? def : static_cast<int64_t>(parsed);
}

double FlagParser::GetDouble(const std::string& name, double def) const {
  queried_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? def : parsed;
}

bool FlagParser::GetBool(const std::string& name, bool def) const {
  queried_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second != "false" && it->second != "0";
}

std::vector<std::string> FlagParser::UnqueriedFlags() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : flags_) {
    if (queried_.find(name) == queried_.end()) out.push_back(name);
  }
  return out;
}

}  // namespace vsan
