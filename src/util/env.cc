#include "util/env.h"

#include <cstdlib>

namespace vsan {

double GetEnvDouble(const std::string& name, double def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return def;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end == v) ? def : parsed;
}

int64_t GetEnvInt(const std::string& name, int64_t def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end == v) ? def : static_cast<int64_t>(parsed);
}

std::string GetEnvString(const std::string& name, const std::string& def) {
  const char* v = std::getenv(name.c_str());
  return (v == nullptr) ? def : std::string(v);
}

}  // namespace vsan
