#include "util/logging.h"

#include <atomic>
#include <cctype>

#include "util/env.h"

namespace vsan {
namespace {

// -1 = not yet initialized from the environment.
std::atomic<int> g_min_severity{-1};

int ParseMinSeverity() {
  std::string value = GetEnvString("VSAN_MIN_LOG_LEVEL", "info");
  for (char& c : value) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  if (value == "info" || value == "0") return 0;
  if (value == "warning" || value == "warn" || value == "1") return 1;
  if (value == "error" || value == "2") return 2;
  if (value == "fatal" || value == "3") return 3;
  return 0;  // unparsable: log everything rather than hide a surprise
}

}  // namespace

namespace internal {

bool LogSeverityAtLeastMin(LogSeverity severity) {
  int min = g_min_severity.load(std::memory_order_relaxed);
  if (min < 0) {
    min = ParseMinSeverity();
    g_min_severity.store(min, std::memory_order_relaxed);
  }
  return static_cast<int>(severity) >= min;
}

}  // namespace internal

void SetMinLogSeverity(internal::LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity),
                       std::memory_order_relaxed);
}

internal::LogSeverity MinLogSeverity() {
  int min = g_min_severity.load(std::memory_order_relaxed);
  if (min < 0) {
    min = ParseMinSeverity();
    g_min_severity.store(min, std::memory_order_relaxed);
  }
  return static_cast<internal::LogSeverity>(min);
}

}  // namespace vsan
