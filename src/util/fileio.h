#ifndef VSAN_UTIL_FILEIO_H_
#define VSAN_UTIL_FILEIO_H_

#include <string>

#include "util/status.h"

namespace vsan {

// Small POSIX file helpers for the crash-safe checkpoint path.  The
// std::fstream API cannot express durability (no fsync), so the atomic
// writer goes through raw descriptors.

// True when `path` exists (any file type).
bool FileExists(const std::string& path);

// Reads the whole file into `*out`.  kNotFound when the file does not
// exist, kInternal for any other I/O failure.
Status ReadFileToString(const std::string& path, std::string* out);

// Crash-safe whole-file write: writes `bytes` to `path + ".tmp"`, fsyncs
// the temp file, renames it over `path`, then fsyncs the directory so the
// rename itself is durable.  Readers therefore see either the old complete
// file or the new complete file, never a torn write.
Status AtomicWriteFile(const std::string& path, const std::string& bytes);

// mkdir -p for a single level: creates `path` if missing (parent must
// exist).  OK when the directory already exists.
Status EnsureDirectory(const std::string& path);

}  // namespace vsan

#endif  // VSAN_UTIL_FILEIO_H_
