#ifndef VSAN_UTIL_RNG_H_
#define VSAN_UTIL_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace vsan {

// Deterministic pseudo-random number generator (xoshiro256**) with the
// distributions the library needs.  A hand-rolled generator keeps results
// reproducible across standard-library implementations, which matters for
// the experiment harness (seeds are recorded in EXPERIMENTS.md).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Core 64-bit output.
  uint64_t Next();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n).  Requires n > 0.
  int64_t UniformInt(int64_t n);

  // Uniform integer in [lo, hi].  Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (cached second deviate).
  double Normal();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // True with probability p.
  bool Bernoulli(double p);

  // Index in [0, weights.size()) drawn proportionally to `weights`.
  // Weights must be non-negative with a positive sum.
  int64_t Categorical(const std::vector<double>& weights);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int64_t i = static_cast<int64_t>(v->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  // `k` distinct values sampled uniformly from [0, n) (k <= n).
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  // Serialized size of one stream: 4 state words + the Box-Muller cache
  // (flag + deviate).  Fixed so checkpoint readers can bounds-check.
  static constexpr size_t kStateBytes = 4 * sizeof(uint64_t) + 1 + sizeof(double);

  // Appends the exact stream position (including the cached Box-Muller
  // deviate) to `*out`; RestoreState resumes the stream bit-for-bit.  Used
  // by the training checkpoint so a resumed run draws the same dropout
  // masks, latent noise, and negative samples an uninterrupted run would.
  void SaveState(std::string* out) const;
  Status RestoreState(const char* data, size_t len);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

// Mixes `value` into `seed` with a splitmix64 finalizer, for deriving
// independent per-stream seeds from one base seed (e.g. one Rng per
// held-out user so parallel evaluation stays deterministic).  Chain calls
// to fold a whole key into the seed: MixSeed(MixSeed(s, a), b).
uint64_t MixSeed(uint64_t seed, uint64_t value);

}  // namespace vsan

#endif  // VSAN_UTIL_RNG_H_
