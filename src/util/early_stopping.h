#ifndef VSAN_UTIL_EARLY_STOPPING_H_
#define VSAN_UTIL_EARLY_STOPPING_H_

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include "util/logging.h"
#include "util/status.h"

namespace vsan {

// Tracks a to-be-maximized validation metric (e.g. Recall@20) and signals
// when training should stop: after `patience` consecutive evaluations
// without an improvement of at least `min_delta`.
//
//   EarlyStopper stopper(/*patience=*/3);
//   for each epoch: if (stopper.Update(validation_recall)) break;
class EarlyStopper {
 public:
  explicit EarlyStopper(int32_t patience, double min_delta = 0.0)
      : patience_(patience), min_delta_(min_delta) {
    VSAN_CHECK_GT(patience, 0);
    VSAN_CHECK_GE(min_delta, 0.0);
  }

  // Records one evaluation; returns true when training should stop.
  bool Update(double metric) {
    ++round_;
    if (metric > best_ + min_delta_) {
      best_ = metric;
      best_round_ = round_;
      bad_rounds_ = 0;
    } else {
      ++bad_rounds_;
    }
    return bad_rounds_ >= patience_;
  }

  double best() const { return best_; }
  // 1-based index of the evaluation that produced the best metric (0 if
  // none yet).
  int32_t best_round() const { return best_round_; }
  int32_t rounds() const { return round_; }

  // Serialized size of the mutable state (best metric, best round, bad
  // rounds, round counter).  patience/min_delta are construction-time
  // configuration and are carried for validation only.
  static constexpr size_t kStateBytes =
      2 * sizeof(double) + 4 * sizeof(int32_t);

  // Appends the stopper's progress to `*out` so a resumed run keeps the
  // original best metric and patience countdown; without this a resume
  // re-arms patience and trains past the point the original run would have
  // stopped at.
  void SaveState(std::string* out) const {
    auto append = [out](const void* p, size_t n) {
      out->append(reinterpret_cast<const char*>(p), n);
    };
    append(&min_delta_, sizeof(min_delta_));
    append(&best_, sizeof(best_));
    append(&patience_, sizeof(patience_));
    append(&best_round_, sizeof(best_round_));
    append(&bad_rounds_, sizeof(bad_rounds_));
    append(&round_, sizeof(round_));
  }

  // Restores state written by SaveState.  Fails when the blob is the wrong
  // size or was written by a stopper configured differently (patience or
  // min_delta mismatch) — resuming under a different stopping rule would
  // silently change when training ends.
  Status RestoreState(const char* data, size_t len) {
    if (len != kStateBytes) {
      return Status::InvalidArgument("early-stopper state: wrong size");
    }
    double min_delta = 0.0;
    int32_t patience = 0;
    const char* p = data;
    auto take = [&p](void* dst, size_t n) {
      std::memcpy(dst, p, n);
      p += n;
    };
    take(&min_delta, sizeof(min_delta));
    double best = 0.0;
    take(&best, sizeof(best));
    take(&patience, sizeof(patience));
    if (patience != patience_ || min_delta != min_delta_) {
      return Status::InvalidArgument(
          "early-stopper state: patience/min_delta mismatch");
    }
    best_ = best;
    take(&best_round_, sizeof(best_round_));
    take(&bad_rounds_, sizeof(bad_rounds_));
    take(&round_, sizeof(round_));
    return Status::Ok();
  }

 private:
  int32_t patience_;
  double min_delta_;
  double best_ = -std::numeric_limits<double>::infinity();
  int32_t best_round_ = 0;
  int32_t bad_rounds_ = 0;
  int32_t round_ = 0;
};

}  // namespace vsan

#endif  // VSAN_UTIL_EARLY_STOPPING_H_
