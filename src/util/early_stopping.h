#ifndef VSAN_UTIL_EARLY_STOPPING_H_
#define VSAN_UTIL_EARLY_STOPPING_H_

#include <cstdint>
#include <limits>

#include "util/logging.h"

namespace vsan {

// Tracks a to-be-maximized validation metric (e.g. Recall@20) and signals
// when training should stop: after `patience` consecutive evaluations
// without an improvement of at least `min_delta`.
//
//   EarlyStopper stopper(/*patience=*/3);
//   for each epoch: if (stopper.Update(validation_recall)) break;
class EarlyStopper {
 public:
  explicit EarlyStopper(int32_t patience, double min_delta = 0.0)
      : patience_(patience), min_delta_(min_delta) {
    VSAN_CHECK_GT(patience, 0);
    VSAN_CHECK_GE(min_delta, 0.0);
  }

  // Records one evaluation; returns true when training should stop.
  bool Update(double metric) {
    ++round_;
    if (metric > best_ + min_delta_) {
      best_ = metric;
      best_round_ = round_;
      bad_rounds_ = 0;
    } else {
      ++bad_rounds_;
    }
    return bad_rounds_ >= patience_;
  }

  double best() const { return best_; }
  // 1-based index of the evaluation that produced the best metric (0 if
  // none yet).
  int32_t best_round() const { return best_round_; }
  int32_t rounds() const { return round_; }

 private:
  int32_t patience_;
  double min_delta_;
  double best_ = -std::numeric_limits<double>::infinity();
  int32_t best_round_ = 0;
  int32_t bad_rounds_ = 0;
  int32_t round_ = 0;
};

}  // namespace vsan

#endif  // VSAN_UTIL_EARLY_STOPPING_H_
