#ifndef VSAN_UTIL_ENV_H_
#define VSAN_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace vsan {

// Environment-variable overrides for the experiment harness
// (e.g. VSAN_BENCH_SCALE, VSAN_BENCH_EPOCHS).  Each returns `def` when the
// variable is unset or unparsable.

double GetEnvDouble(const std::string& name, double def);
int64_t GetEnvInt(const std::string& name, int64_t def);
std::string GetEnvString(const std::string& name, const std::string& def);

}  // namespace vsan

#endif  // VSAN_UTIL_ENV_H_
