#include "util/rng.h"

#include <cmath>
#include <cstring>

#include "util/logging.h"

namespace vsan {
namespace {

// splitmix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (uint64_t& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t n) {
  VSAN_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t r = Next();
  while (r >= limit) r = Next();
  return static_cast<int64_t>(r % un);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  VSAN_CHECK_LE(lo, hi);
  return lo + UniformInt(hi - lo + 1);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int64_t Rng::Categorical(const std::vector<double>& weights) {
  VSAN_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    VSAN_CHECK_GE(w, 0.0);
    total += w;
  }
  VSAN_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

void Rng::SaveState(std::string* out) const {
  out->append(reinterpret_cast<const char*>(state_), sizeof(state_));
  const char flag = has_cached_normal_ ? 1 : 0;
  out->push_back(flag);
  out->append(reinterpret_cast<const char*>(&cached_normal_),
              sizeof(cached_normal_));
}

Status Rng::RestoreState(const char* data, size_t len) {
  if (len != kStateBytes) {
    return Status::InvalidArgument("rng state: wrong size");
  }
  std::memcpy(state_, data, sizeof(state_));
  has_cached_normal_ = data[sizeof(state_)] != 0;
  std::memcpy(&cached_normal_, data + sizeof(state_) + 1,
              sizeof(cached_normal_));
  return Status::Ok();
}

uint64_t MixSeed(uint64_t seed, uint64_t value) {
  uint64_t x = seed + 0x9e3779b97f4a7c15ULL + value;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  VSAN_CHECK_GE(n, k);
  VSAN_CHECK_GE(k, 0);
  // Partial Fisher-Yates over an index vector.
  std::vector<int64_t> idx(n);
  for (int64_t i = 0; i < n; ++i) idx[i] = i;
  for (int64_t i = 0; i < k; ++i) {
    int64_t j = UniformInt(i, n - 1);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace vsan
