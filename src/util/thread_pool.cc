#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>

#include "obs/trace.h"
#include "util/env.h"

namespace vsan {
namespace {

// Set while a thread is executing a ParallelFor shard; nested calls from
// inside a shard fall back to serial so worker threads never block on work
// that only other (possibly busy) workers could pick up.
thread_local bool t_in_parallel_shard = false;

std::mutex g_global_pool_mu;
std::unique_ptr<ThreadPool> g_global_pool;  // guarded by g_global_pool_mu

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t range = end - begin;
  if (range <= 0) return;
  const int64_t min_per_shard = std::max<int64_t>(1, grain);
  // Floor division: every shard gets at least `grain` indices.
  const int64_t max_shards = std::max<int64_t>(1, range / min_per_shard);
  const int64_t shards = std::min<int64_t>(num_threads_, max_shards);
  if (shards <= 1 || t_in_parallel_shard) {
    fn(begin, end);
    return;
  }
  VSAN_TRACE_SPAN("pool/parallel_for", kPool);

  struct Sync {
    std::mutex mu;
    std::condition_variable done;
    int64_t pending;
    std::exception_ptr error;
  };
  Sync sync;
  sync.pending = shards;

  // `sync` and `fn` outlive every shard because the caller blocks on
  // `pending` below, so reference captures are safe.
  auto run_shard = [&sync, &fn](int64_t b, int64_t e) {
    t_in_parallel_shard = true;
    try {
      fn(b, e);
    } catch (...) {
      std::lock_guard<std::mutex> lock(sync.mu);
      if (!sync.error) sync.error = std::current_exception();
    }
    t_in_parallel_shard = false;
    std::lock_guard<std::mutex> lock(sync.mu);
    if (--sync.pending == 0) sync.done.notify_one();
  };

  // Static contiguous partition: shard s covers base+1 indices for s < rem,
  // base indices otherwise, tiling [begin, end) in order.
  const int64_t base = range / shards;
  const int64_t rem = range % shards;
  int64_t cursor = begin;
  int64_t caller_begin = 0;
  int64_t caller_end = 0;
#if VSAN_OBS_ENABLED
  // Queued shards split into a queue-wait span (enqueue -> first
  // instruction on a worker) and a body span, so a trace separates pool
  // starvation from actual work.
  const bool traced = obs::Tracer::Global().enabled();
#endif
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int64_t s = 0; s < shards; ++s) {
      const int64_t b = cursor;
      const int64_t e = b + base + (s < rem ? 1 : 0);
      cursor = e;
      if (s == 0) {
        caller_begin = b;
        caller_end = e;
        continue;
      }
#if VSAN_OBS_ENABLED
      if (traced) {
        const int64_t enqueue_ns = obs::Tracer::Global().NowNs();
        queue_.emplace_back([run_shard, b, e, enqueue_ns] {
          obs::Tracer& tracer = obs::Tracer::Global();
          tracer.RecordSpan("pool/queue_wait", obs::SpanCategory::kPool,
                            enqueue_ns, tracer.NowNs() - enqueue_ns);
          VSAN_TRACE_SPAN("pool/shard", kPool);
          run_shard(b, e);
        });
        continue;
      }
#endif
      queue_.emplace_back([run_shard, b, e] { run_shard(b, e); });
    }
  }
  cv_.notify_all();
  run_shard(caller_begin, caller_end);

  std::unique_lock<std::mutex> lock(sync.mu);
  sync.done.wait(lock, [&sync] { return sync.pending == 0; });
  if (sync.error) std::rethrow_exception(sync.error);
}

ThreadPool* ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  if (g_global_pool == nullptr) {
    g_global_pool = std::make_unique<ThreadPool>(DefaultNumThreads());
  }
  return g_global_pool.get();
}

void ThreadPool::SetGlobalNumThreads(int num_threads) {
  std::unique_ptr<ThreadPool> fresh =
      std::make_unique<ThreadPool>(num_threads);
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  g_global_pool = std::move(fresh);
}

int ThreadPool::DefaultNumThreads() {
  const int64_t env = GetEnvInt("VSAN_NUM_THREADS", 0);
  if (env > 0) return static_cast<int>(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool::Global()->ParallelFor(begin, end, grain, fn);
}

}  // namespace vsan
