#ifndef VSAN_UTIL_STATUS_H_
#define VSAN_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/logging.h"

namespace vsan {

// Error codes for recoverable failures (data loading, configuration).
// Programmer errors go through VSAN_CHECK instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kInternal,
};

// Minimal absl::Status-alike: an error code plus a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return message_.empty() ? CodeName() : CodeName() + ": " + message_;
  }

 private:
  std::string CodeName() const {
    switch (code_) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "INVALID_ARGUMENT";
      case StatusCode::kNotFound:
        return "NOT_FOUND";
      case StatusCode::kOutOfRange:
        return "OUT_OF_RANGE";
      case StatusCode::kInternal:
        return "INTERNAL";
    }
    return "UNKNOWN";
  }

  StatusCode code_;
  std::string message_;
};

// Value-or-error result.  `value()` CHECK-fails on error.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {                 // NOLINT
    VSAN_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    VSAN_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T& value() & {
    VSAN_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T&& value() && {
    VSAN_CHECK(ok()) << status_.ToString();
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace vsan

#endif  // VSAN_UTIL_STATUS_H_
