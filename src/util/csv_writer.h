#ifndef VSAN_UTIL_CSV_WRITER_H_
#define VSAN_UTIL_CSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

namespace vsan {

// Writes rows of cells as RFC-4180-ish CSV.  Used by the experiment binaries
// to dump machine-readable copies of every reproduced table/figure.
class CsvWriter {
 public:
  // Opens (truncates) `path`.  ok() reports whether the file opened.
  explicit CsvWriter(const std::string& path);

  bool ok() const { return out_.good(); }

  void WriteRow(const std::vector<std::string>& cells);

 private:
  static std::string Escape(const std::string& cell);

  std::ofstream out_;
};

}  // namespace vsan

#endif  // VSAN_UTIL_CSV_WRITER_H_
