#ifndef VSAN_UTIL_FAULT_H_
#define VSAN_UTIL_FAULT_H_

#include <cstdint>
#include <string>

namespace vsan {
namespace fault {

// Fault-injection harness for crash-safety testing.  Compiled in always and
// inert (a relaxed boolean load per tap) unless the VSAN_FAULT environment
// variable is set, so production binaries pay nothing and the kill-and-
// resume integration tests can drive the *shipped* code paths rather than a
// test double.
//
// VSAN_FAULT is a comma-separated list of directives:
//
//   abort_at_step=N            _Exit(134) when training step N begins —
//                              simulates a hard kill (no destructors, no
//                              flushes), exactly what SIGKILL would do.
//   stop_at_step=N             make Fit() return when step N begins — the
//                              in-process analogue of a crash, used by tests
//                              that cannot lose their own process.
//   nan_loss_at_step=N         force the observed loss to NaN at step N so
//                              the divergence guard fires.  One-shot: a
//                              rollback that replays step N does not re-fire
//                              (the injected fault models a transient).
//   corrupt_checkpoint_bytes=K flip K bytes of every checkpoint file right
//                              after it is written (deterministic positions).
//
// Example: VSAN_FAULT=abort_at_step=37 vsan_cli train --checkpoint_dir=ck
//
// Steps are 1-based: directive N fires as the Nth optimizer step begins,
// i.e. after N-1 completed steps (the counter the checkpoint persists).

// True when any directive is armed (env var set or SetSpecForTest called).
bool Enabled();

// Re-parses the spec from a string instead of the environment; empty or
// nullptr disarms everything and resets the one-shot latches.  Test-only.
void SetSpecForTest(const char* spec);

// Tap at the top of each training step: terminates the process when
// abort_at_step matches `step`.
void MaybeCrashAtStep(int64_t step);

// Tap at the top of each training step: true once when stop_at_step
// matches, after which the train loop should return.
bool ShouldStopAtStep(int64_t step);

// Tap on the observed batch loss: true once when nan_loss_at_step matches;
// the caller replaces the loss with NaN.
bool ShouldInjectNanLoss(int64_t step);

// Tap after a checkpoint file is written: flips corrupt_checkpoint_bytes
// bytes of `path` in place (no-op when unarmed).
void MaybeCorruptFile(const std::string& path);

}  // namespace fault
}  // namespace vsan

#endif  // VSAN_UTIL_FAULT_H_
