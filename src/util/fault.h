#ifndef VSAN_UTIL_FAULT_H_
#define VSAN_UTIL_FAULT_H_

#include <cstdint>
#include <string>

namespace vsan {
namespace fault {

// Fault-injection harness for crash-safety testing.  Compiled in always and
// inert (a relaxed boolean load per tap) unless the VSAN_FAULT environment
// variable is set, so production binaries pay nothing and the kill-and-
// resume integration tests can drive the *shipped* code paths rather than a
// test double.
//
// VSAN_FAULT is a comma-separated list of directives:
//
//   abort_at_step=N            _Exit(134) when training step N begins —
//                              simulates a hard kill (no destructors, no
//                              flushes), exactly what SIGKILL would do.
//   stop_at_step=N             make Fit() return when step N begins — the
//                              in-process analogue of a crash, used by tests
//                              that cannot lose their own process.
//   nan_loss_at_step=N         force the observed loss to NaN at step N so
//                              the divergence guard fires.  One-shot: a
//                              rollback that replays step N does not re-fire
//                              (the injected fault models a transient).
//   corrupt_checkpoint_bytes=K flip K bytes of every checkpoint file right
//                              after it is written (deterministic positions).
//
// Serve-path chaos directives (the serving plane's injection points; see
// tests/serve_chaos_test.cc — each models a production failure the daemon
// must absorb without dropping or corrupting a response):
//
//   serve_encode_stall_ms=N    sleep N ms inside every encode-stage flush,
//                              before the model forward — a slow/overloaded
//                              encoder.  Queues back up behind it, so this
//                              is how 429 shedding and deadline expiry are
//                              driven deterministically.
//   serve_flush_delay_ms=N     sleep N ms in the batch-queue flush thread
//                              (both stages) before each flush — scheduler
//                              jitter on the one thread the pipeline
//                              serializes through.
//   socket_reset_after_bytes=N truncate an HTTP response to its first N
//                              bytes and close the connection — a client-
//                              visible mid-response connection reset.
//   socket_reset_every=K       ... on every Kth response only (default 1 =
//                              every response), so mixed healthy/reset
//                              traffic can flow in one run.
//   corrupt_reload_bytes=K     flip K bytes of a checkpoint file as it is
//                              opened for hot reload (ServeDaemon::Reload)
//                              — the swap-validation path: the load must
//                              fail cleanly and the old generation keep
//                              serving.
//   cache_insert_fail_every=K  silently drop every Kth encoded-state cache
//                              insert — a cache write failure must cost
//                              only hit rate, never correctness.
//
// Example: VSAN_FAULT=abort_at_step=37 vsan_cli train --checkpoint_dir=ck
//
// Steps are 1-based: directive N fires as the Nth optimizer step begins,
// i.e. after N-1 completed steps (the counter the checkpoint persists).

// True when any directive is armed (env var set or SetSpecForTest called).
bool Enabled();

// Re-parses the spec from a string instead of the environment; empty or
// nullptr disarms everything and resets the one-shot latches.  Test-only.
void SetSpecForTest(const char* spec);

// Tap at the top of each training step: terminates the process when
// abort_at_step matches `step`.
void MaybeCrashAtStep(int64_t step);

// Tap at the top of each training step: true once when stop_at_step
// matches, after which the train loop should return.
bool ShouldStopAtStep(int64_t step);

// Tap on the observed batch loss: true once when nan_loss_at_step matches;
// the caller replaces the loss with NaN.
bool ShouldInjectNanLoss(int64_t step);

// Tap after a checkpoint file is written: flips corrupt_checkpoint_bytes
// bytes of `path` in place (no-op when unarmed).
void MaybeCorruptFile(const std::string& path);

// --- Serve-path chaos taps (src/serve/, src/obs/http_server.cc) ----------

// Tap at the top of every encode-stage flush: sleeps serve_encode_stall_ms
// milliseconds (no-op when unarmed).
void MaybeStallServeEncode();

// Tap in the batch-queue flush thread before each flush callback: sleeps
// serve_flush_delay_ms milliseconds (no-op when unarmed).
void MaybeDelayServeFlush();

// Tap before an HTTP response is sent.  True when this response should be
// cut short: `*truncate_to` receives socket_reset_after_bytes and the
// caller sends at most that many bytes, then closes.  Fires on every
// socket_reset_every'th response (process-wide counter).
bool ShouldResetSocketSend(int64_t* truncate_to);

// Tap as a checkpoint is opened for hot reload: flips corrupt_reload_bytes
// bytes of `path` in place (no-op when unarmed).  Distinct from
// MaybeCorruptFile so reload corruption can be armed without also
// corrupting checkpoints the training path writes.
void MaybeCorruptReloadFile(const std::string& path);

// Tap on encoded-state cache inserts: true when this insert should be
// dropped (every cache_insert_fail_every'th, process-wide counter).
bool ShouldDropCacheInsert();

}  // namespace fault
}  // namespace vsan

#endif  // VSAN_UTIL_FAULT_H_
