#ifndef VSAN_UTIL_CRC32_H_
#define VSAN_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace vsan {

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum guarding the
// on-disk parameter and checkpoint formats (nn/serialize, nn/checkpoint).
// Table-driven, byte-at-a-time: integrity checking is off the hot path, so
// simplicity beats a sliced implementation.

// One-shot CRC over a buffer.  Pass a previous result as `seed` to chain
// buffers: Crc32(b, nb, Crc32(a, na)).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

// Incremental CRC for streamed writes/reads.
class Crc32Stream {
 public:
  void Update(const void* data, size_t len);
  uint32_t value() const;
  void Reset();

 private:
  // Stored pre-finalization (bit-inverted) so Update can continue.
  uint32_t state_ = 0xffffffffu;
};

}  // namespace vsan

#endif  // VSAN_UTIL_CRC32_H_
