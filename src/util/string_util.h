#ifndef VSAN_UTIL_STRING_UTIL_H_
#define VSAN_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace vsan {

// Concatenates the streamable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace vsan

#endif  // VSAN_UTIL_STRING_UTIL_H_
