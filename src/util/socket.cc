#include "util/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace vsan {

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::SendAll(const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE instead of killing
    // the process with SIGPIPE.
    const ssize_t n = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

int64_t Socket::Recv(void* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, len, 0);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

bool Socket::RecvUntilClosed(std::string* out, size_t max_bytes) {
  char buf[4096];
  while (out->size() < max_bytes) {
    const int64_t n = Recv(buf, sizeof(buf));
    if (n < 0) return false;
    if (n == 0) return true;
    out->append(buf, static_cast<size_t>(n));
  }
  return true;
}

bool Socket::SetRecvTimeout(int64_t timeout_ms) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

bool Socket::SetSendTimeout(int64_t timeout_ms) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  return ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0;
}

bool ListenSocket::Listen(int port, bool bind_any, int backlog) {
  Socket fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return false;
  const int one = 1;
  ::setsockopt(fd.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(bind_any ? INADDR_ANY : INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd.fd(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return false;
  }
  if (::listen(fd.fd(), backlog) != 0) return false;
  // Read back the bound port — the whole point of port 0.
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) != 0) {
    return false;
  }
  port_ = ntohs(addr.sin_port);
  fd_ = std::move(fd);
  return true;
}

Socket ListenSocket::Accept() {
  if (!fd_.valid()) return Socket();
  for (;;) {
    const int client = ::accept(fd_.fd(), nullptr, nullptr);
    if (client >= 0) return Socket(client);
    if (errno == EINTR) continue;
    return Socket();  // closed from another thread, or a hard error
  }
}

void ListenSocket::Close() {
  if (fd_.valid()) {
    // shutdown() wakes a blocked accept() on most kernels; the close()
    // invalidates the fd so retries fail fast either way.
    ::shutdown(fd_.fd(), SHUT_RDWR);
    fd_.Close();
  }
  port_ = 0;
}

Socket TcpConnect(const std::string& host, int port) {
  struct in_addr ip;
  const std::string resolved =
      (host == "localhost") ? std::string("127.0.0.1") : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &ip) != 1) return Socket();
  Socket fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Socket();
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr = ip;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  for (;;) {
    if (::connect(fd.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (errno == EINTR) continue;
    return Socket();
  }
}

}  // namespace vsan
