#include "util/fault.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "util/logging.h"

namespace vsan {
namespace fault {
namespace {

struct Spec {
  int64_t abort_at_step = -1;
  int64_t stop_at_step = -1;
  int64_t nan_loss_at_step = -1;
  int64_t corrupt_checkpoint_bytes = 0;
  // Serve-path chaos (see fault.h).
  int64_t serve_encode_stall_ms = 0;
  int64_t serve_flush_delay_ms = 0;
  int64_t socket_reset_after_bytes = -1;  // -1 = disarmed (0 is a valid cut)
  int64_t socket_reset_every = 1;
  int64_t corrupt_reload_bytes = 0;
  int64_t cache_insert_fail_every = 0;
};

Spec ParseSpec(const std::string& text) {
  Spec spec;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    const std::string directive = text.substr(start, end - start);
    const size_t eq = directive.find('=');
    if (eq != std::string::npos) {
      const std::string key = directive.substr(0, eq);
      const int64_t value =
          std::strtoll(directive.c_str() + eq + 1, nullptr, 10);
      if (key == "abort_at_step") {
        spec.abort_at_step = value;
      } else if (key == "stop_at_step") {
        spec.stop_at_step = value;
      } else if (key == "nan_loss_at_step") {
        spec.nan_loss_at_step = value;
      } else if (key == "corrupt_checkpoint_bytes") {
        spec.corrupt_checkpoint_bytes = value;
      } else if (key == "serve_encode_stall_ms") {
        spec.serve_encode_stall_ms = value;
      } else if (key == "serve_flush_delay_ms") {
        spec.serve_flush_delay_ms = value;
      } else if (key == "socket_reset_after_bytes") {
        spec.socket_reset_after_bytes = value;
      } else if (key == "socket_reset_every") {
        spec.socket_reset_every = value > 0 ? value : 1;
      } else if (key == "corrupt_reload_bytes") {
        spec.corrupt_reload_bytes = value;
      } else if (key == "cache_insert_fail_every") {
        spec.cache_insert_fail_every = value;
      } else if (!key.empty()) {
        VSAN_LOG_WARNING << "VSAN_FAULT: unknown directive '" << key << "'";
      }
    }
    start = end + 1;
  }
  return spec;
}

struct State {
  // Published copy of the parsed spec, one atomic per directive: the serve
  // taps read these from daemon handler/flush threads while the chaos tests
  // re-arm directives on a live daemon via SetSpecForTest, so plain members
  // would be a data race.  Store() writes the fields relaxed; the caller
  // then flips `enabled` with a release store, and Enabled()'s acquire load
  // guarantees a reader that observes the armed flag also observes the
  // directive values published with it.
  std::atomic<int64_t> abort_at_step{-1};
  std::atomic<int64_t> stop_at_step{-1};
  std::atomic<int64_t> nan_loss_at_step{-1};
  std::atomic<int64_t> corrupt_checkpoint_bytes{0};
  std::atomic<int64_t> serve_encode_stall_ms{0};
  std::atomic<int64_t> serve_flush_delay_ms{0};
  std::atomic<int64_t> socket_reset_after_bytes{-1};
  std::atomic<int64_t> socket_reset_every{1};
  std::atomic<int64_t> corrupt_reload_bytes{0};
  std::atomic<int64_t> cache_insert_fail_every{0};
  std::atomic<bool> enabled{false};
  // One-shot latches: an injected fault models a transient, so a rollback
  // that replays the same step must not re-fire it.
  std::atomic<bool> stop_fired{false};
  std::atomic<bool> nan_fired{false};
  // Process-wide every-Kth counters for the serve-path taps.
  std::atomic<int64_t> socket_sends{0};
  std::atomic<int64_t> cache_inserts{0};

  void Store(const Spec& spec) {
    abort_at_step.store(spec.abort_at_step, std::memory_order_relaxed);
    stop_at_step.store(spec.stop_at_step, std::memory_order_relaxed);
    nan_loss_at_step.store(spec.nan_loss_at_step, std::memory_order_relaxed);
    corrupt_checkpoint_bytes.store(spec.corrupt_checkpoint_bytes,
                                   std::memory_order_relaxed);
    serve_encode_stall_ms.store(spec.serve_encode_stall_ms,
                                std::memory_order_relaxed);
    serve_flush_delay_ms.store(spec.serve_flush_delay_ms,
                               std::memory_order_relaxed);
    socket_reset_after_bytes.store(spec.socket_reset_after_bytes,
                                   std::memory_order_relaxed);
    socket_reset_every.store(spec.socket_reset_every,
                             std::memory_order_relaxed);
    corrupt_reload_bytes.store(spec.corrupt_reload_bytes,
                               std::memory_order_relaxed);
    cache_insert_fail_every.store(spec.cache_insert_fail_every,
                                  std::memory_order_relaxed);
  }
};

State& GlobalState() {
  static State* state = [] {
    auto* s = new State();
    const char* env = std::getenv("VSAN_FAULT");
    if (env != nullptr && env[0] != '\0') {
      s->Store(ParseSpec(env));
      s->enabled.store(true, std::memory_order_release);
    }
    return s;
  }();
  return *state;
}

}  // namespace

bool Enabled() {
  // Acquire pairs with SetSpecForTest's release: seeing the armed flag
  // implies seeing the directive fields stored before it.
  return GlobalState().enabled.load(std::memory_order_acquire);
}

void SetSpecForTest(const char* spec) {
  State& state = GlobalState();
  state.stop_fired.store(false, std::memory_order_relaxed);
  state.nan_fired.store(false, std::memory_order_relaxed);
  state.socket_sends.store(0, std::memory_order_relaxed);
  state.cache_inserts.store(0, std::memory_order_relaxed);
  if (spec == nullptr || spec[0] == '\0') {
    state.Store(Spec());
    state.enabled.store(false, std::memory_order_release);
    return;
  }
  state.Store(ParseSpec(spec));
  state.enabled.store(true, std::memory_order_release);
}

void MaybeCrashAtStep(int64_t step) {
  if (!Enabled()) return;
  State& state = GlobalState();
  const int64_t at = state.abort_at_step.load(std::memory_order_relaxed);
  if (at >= 0 && step == at) {
    VSAN_LOG_ERROR << "VSAN_FAULT: aborting at step " << step;
    // _Exit: no destructors, no stream flushes — a hard kill, so whatever
    // the checkpoint path already made durable is all that survives.
    std::_Exit(134);
  }
}

bool ShouldStopAtStep(int64_t step) {
  if (!Enabled()) return false;
  State& state = GlobalState();
  const int64_t at = state.stop_at_step.load(std::memory_order_relaxed);
  if (at < 0 || step != at) return false;
  return !state.stop_fired.exchange(true, std::memory_order_relaxed);
}

bool ShouldInjectNanLoss(int64_t step) {
  if (!Enabled()) return false;
  State& state = GlobalState();
  const int64_t at = state.nan_loss_at_step.load(std::memory_order_relaxed);
  if (at < 0 || step != at) return false;
  return !state.nan_fired.exchange(true, std::memory_order_relaxed);
}

namespace {

void CorruptBytes(const std::string& path, int64_t k) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!f.good()) return;
  f.seekg(0, std::ios::end);
  const int64_t size = static_cast<int64_t>(f.tellg());
  if (size <= 0) return;
  // Deterministic positions (multiplicative hash over the byte index) so a
  // corruption run is reproducible from the spec alone.
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(size);
  for (int64_t i = 0; i < k; ++i) {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    const int64_t pos = static_cast<int64_t>(h % static_cast<uint64_t>(size));
    f.seekg(pos);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(pos);
    f.write(&byte, 1);
  }
  f.flush();
  VSAN_LOG_WARNING << "VSAN_FAULT: corrupted " << k << " byte(s) of "
                   << path;
}

}  // namespace

void MaybeCorruptFile(const std::string& path) {
  if (!Enabled()) return;
  State& state = GlobalState();
  const int64_t k =
      state.corrupt_checkpoint_bytes.load(std::memory_order_relaxed);
  if (k <= 0) return;
  CorruptBytes(path, k);
}

void MaybeStallServeEncode() {
  if (!Enabled()) return;
  State& state = GlobalState();
  const int64_t ms =
      state.serve_encode_stall_ms.load(std::memory_order_relaxed);
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void MaybeDelayServeFlush() {
  if (!Enabled()) return;
  State& state = GlobalState();
  const int64_t ms =
      state.serve_flush_delay_ms.load(std::memory_order_relaxed);
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

bool ShouldResetSocketSend(int64_t* truncate_to) {
  if (!Enabled()) return false;
  State& state = GlobalState();
  const int64_t after =
      state.socket_reset_after_bytes.load(std::memory_order_relaxed);
  if (after < 0) return false;
  // ParseSpec clamps socket_reset_every to >= 1, but a concurrent re-arm
  // could interleave field stores; guard the modulus anyway.
  const int64_t every =
      std::max<int64_t>(1, state.socket_reset_every.load(
                               std::memory_order_relaxed));
  const int64_t n =
      state.socket_sends.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % every != 0) return false;
  *truncate_to = after;
  return true;
}

void MaybeCorruptReloadFile(const std::string& path) {
  if (!Enabled()) return;
  State& state = GlobalState();
  const int64_t k = state.corrupt_reload_bytes.load(std::memory_order_relaxed);
  if (k <= 0) return;
  CorruptBytes(path, k);
}

bool ShouldDropCacheInsert() {
  if (!Enabled()) return false;
  State& state = GlobalState();
  const int64_t every =
      state.cache_insert_fail_every.load(std::memory_order_relaxed);
  if (every <= 0) return false;
  const int64_t n =
      state.cache_inserts.fetch_add(1, std::memory_order_relaxed) + 1;
  return n % every == 0;
}

}  // namespace fault
}  // namespace vsan
