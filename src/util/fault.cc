#include "util/fault.h"

#include <atomic>
#include <cstdlib>
#include <fstream>

#include "util/logging.h"

namespace vsan {
namespace fault {
namespace {

struct Spec {
  int64_t abort_at_step = -1;
  int64_t stop_at_step = -1;
  int64_t nan_loss_at_step = -1;
  int64_t corrupt_checkpoint_bytes = 0;
};

Spec ParseSpec(const std::string& text) {
  Spec spec;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    const std::string directive = text.substr(start, end - start);
    const size_t eq = directive.find('=');
    if (eq != std::string::npos) {
      const std::string key = directive.substr(0, eq);
      const int64_t value =
          std::strtoll(directive.c_str() + eq + 1, nullptr, 10);
      if (key == "abort_at_step") {
        spec.abort_at_step = value;
      } else if (key == "stop_at_step") {
        spec.stop_at_step = value;
      } else if (key == "nan_loss_at_step") {
        spec.nan_loss_at_step = value;
      } else if (key == "corrupt_checkpoint_bytes") {
        spec.corrupt_checkpoint_bytes = value;
      } else if (!key.empty()) {
        VSAN_LOG_WARNING << "VSAN_FAULT: unknown directive '" << key << "'";
      }
    }
    start = end + 1;
  }
  return spec;
}

struct State {
  Spec spec;
  std::atomic<bool> enabled{false};
  // One-shot latches: an injected fault models a transient, so a rollback
  // that replays the same step must not re-fire it.
  std::atomic<bool> stop_fired{false};
  std::atomic<bool> nan_fired{false};
};

State& GlobalState() {
  static State* state = [] {
    auto* s = new State();
    const char* env = std::getenv("VSAN_FAULT");
    if (env != nullptr && env[0] != '\0') {
      s->spec = ParseSpec(env);
      s->enabled.store(true, std::memory_order_relaxed);
    }
    return s;
  }();
  return *state;
}

}  // namespace

bool Enabled() {
  return GlobalState().enabled.load(std::memory_order_relaxed);
}

void SetSpecForTest(const char* spec) {
  State& state = GlobalState();
  state.stop_fired.store(false, std::memory_order_relaxed);
  state.nan_fired.store(false, std::memory_order_relaxed);
  if (spec == nullptr || spec[0] == '\0') {
    state.spec = Spec();
    state.enabled.store(false, std::memory_order_relaxed);
    return;
  }
  state.spec = ParseSpec(spec);
  state.enabled.store(true, std::memory_order_relaxed);
}

void MaybeCrashAtStep(int64_t step) {
  if (!Enabled()) return;
  State& state = GlobalState();
  if (state.spec.abort_at_step >= 0 && step == state.spec.abort_at_step) {
    VSAN_LOG_ERROR << "VSAN_FAULT: aborting at step " << step;
    // _Exit: no destructors, no stream flushes — a hard kill, so whatever
    // the checkpoint path already made durable is all that survives.
    std::_Exit(134);
  }
}

bool ShouldStopAtStep(int64_t step) {
  if (!Enabled()) return false;
  State& state = GlobalState();
  if (state.spec.stop_at_step < 0 || step != state.spec.stop_at_step) {
    return false;
  }
  return !state.stop_fired.exchange(true, std::memory_order_relaxed);
}

bool ShouldInjectNanLoss(int64_t step) {
  if (!Enabled()) return false;
  State& state = GlobalState();
  if (state.spec.nan_loss_at_step < 0 ||
      step != state.spec.nan_loss_at_step) {
    return false;
  }
  return !state.nan_fired.exchange(true, std::memory_order_relaxed);
}

void MaybeCorruptFile(const std::string& path) {
  if (!Enabled()) return;
  State& state = GlobalState();
  const int64_t k = state.spec.corrupt_checkpoint_bytes;
  if (k <= 0) return;
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!f.good()) return;
  f.seekg(0, std::ios::end);
  const int64_t size = static_cast<int64_t>(f.tellg());
  if (size <= 0) return;
  // Deterministic positions (multiplicative hash over the byte index) so a
  // corruption run is reproducible from the spec alone.
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(size);
  for (int64_t i = 0; i < k; ++i) {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    const int64_t pos = static_cast<int64_t>(h % static_cast<uint64_t>(size));
    f.seekg(pos);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(pos);
    f.write(&byte, 1);
  }
  f.flush();
  VSAN_LOG_WARNING << "VSAN_FAULT: corrupted " << k << " byte(s) of "
                   << path;
}

}  // namespace fault
}  // namespace vsan
