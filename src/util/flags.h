#ifndef VSAN_UTIL_FLAGS_H_
#define VSAN_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vsan {

// Minimal command-line flag parser for the CLI tools.
//
// Accepted forms: --key=value, --key value, and bare --key (boolean true).
// Everything that does not start with "--" is a positional argument.
class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& def = "") const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Flags that were passed but never queried through the getters above;
  // lets a CLI reject typos ("--epocs").
  std::vector<std::string> UnqueriedFlags() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace vsan

#endif  // VSAN_UTIL_FLAGS_H_
