#ifndef VSAN_UTIL_SOCKET_H_
#define VSAN_UTIL_SOCKET_H_

#include <cstdint>
#include <string>

// Thin POSIX TCP wrappers — the listener/connection substrate under the
// observability HTTP endpoint (obs/http_server.h) and, eventually, the
// vsan_serve request loop.  Blocking I/O with EINTR retry; no external
// dependencies, IPv4 loopback-oriented (a monitoring plane, not a general
// networking stack).

namespace vsan {

// Owning socket file descriptor.  Movable, closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  // Writes all `len` bytes (retrying short writes and EINTR).  False on
  // error, e.g. the peer closed mid-write.
  bool SendAll(const void* data, size_t len);
  bool SendAll(const std::string& data) {
    return SendAll(data.data(), data.size());
  }

  // Reads at most `len` bytes; returns the byte count, 0 on orderly peer
  // shutdown, -1 on error.  Retries EINTR.
  int64_t Recv(void* buf, size_t len);

  // Appends to `*out` until the peer closes or `max_bytes` accumulate.
  // False on a read error (a clean close is success).
  bool RecvUntilClosed(std::string* out, size_t max_bytes = 1 << 24);

  // SO_RCVTIMEO, so a stuck peer cannot wedge a handler thread forever.
  bool SetRecvTimeout(int64_t timeout_ms);

  // SO_SNDTIMEO, the write-side twin: a stalled reader (full receive
  // window, never draining) makes SendAll fail instead of pinning the
  // handler thread.
  bool SetSendTimeout(int64_t timeout_ms);

 private:
  int fd_ = -1;
};

// Listening TCP socket bound to 127.0.0.1 (the observability plane is a
// local monitoring surface; bind_any widens it to 0.0.0.0 deliberately).
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() = default;
  ListenSocket(ListenSocket&&) = default;
  ListenSocket& operator=(ListenSocket&&) = default;

  // Binds and listens.  `port` 0 picks an ephemeral port (the bound one is
  // readable via port() — tests and parallel runs rely on this).  False on
  // bind/listen failure (port in use, permissions).
  bool Listen(int port, bool bind_any = false, int backlog = 64);

  // Blocks until a connection arrives; invalid Socket on error or after
  // the listener was closed from another thread (the shutdown path).
  Socket Accept();

  bool listening() const { return fd_.valid(); }
  int port() const { return port_; }

  // Unblocks any Accept() in progress (shutdown + close); subsequent
  // Accepts return invalid sockets.
  void Close();

 private:
  Socket fd_;
  int port_ = 0;
};

// Blocking TCP connect to host:port ("127.0.0.1", "localhost", or a
// dotted quad).  Invalid Socket on failure.
Socket TcpConnect(const std::string& host, int port);

}  // namespace vsan

#endif  // VSAN_UTIL_SOCKET_H_
