#ifndef VSAN_UTIL_STOPWATCH_H_
#define VSAN_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace vsan {

// Wall-clock stopwatch for coarse experiment timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vsan

#endif  // VSAN_UTIL_STOPWATCH_H_
