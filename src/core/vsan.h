#ifndef VSAN_CORE_VSAN_H_
#define VSAN_CORE_VSAN_H_

#include <memory>
#include <string>
#include <vector>

#include "models/recommender.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "util/rng.h"
#include "util/status.h"

namespace vsan {
namespace core {

// Configuration of the Variational Self-Attention Network (Sec. IV).
struct VsanConfig {
  int64_t max_len = 50;  // n, the modeled sequence length
  int64_t d = 64;        // embedding dimension

  int32_t h1 = 1;  // inference self-attention blocks (Eq. 11)
  int32_t h2 = 1;  // generative self-attention blocks (Eq. 17)

  // Attention heads per block.  The paper (and SASRec) use single-head
  // attention; multi-head is provided as a Transformer-faithful extension
  // (bench_ablation_heads measures it).
  int32_t num_heads = 1;

  // k of Eq. 18: each position's target is the next k items (multi-hot).
  int32_t next_k = 1;

  float dropout = 0.2f;

  // KL weight (Eq. 20).  With fixed_beta < 0 (default), beta anneals
  // linearly 0 -> beta_max over anneal_steps optimization steps (Sec. IV-E,
  // KL annealing); otherwise beta is held at fixed_beta (Fig. 6 ablation).
  float beta_max = 0.2f;
  int64_t anneal_steps = 1000;
  float fixed_beta = -1.0f;

  // Output projection.  Eq. 19 uses a free W_g in R^{N x d}; with
  // tie_output the projection reuses the item-embedding table (plus a free
  // per-item bias), which trains far better in the sparse small-corpus
  // regime of the synthetic benchmarks (see DESIGN.md).  Both paths are
  // implemented; bench_ablation_output compares them.
  bool tie_output = true;

  // Ablation switches.
  bool use_latent = true;  // false = VSAN-z: feed G_i^{h1} straight into the
                           // generative layer (Table V)
  bool infer_ffn = true;   // false = drop FFN in inference blocks (Table VI)
  bool gen_ffn = true;     // false = drop FFN in generative blocks
};

// Posterior snapshot for one user (used by the uncertainty examples): the
// Gaussian the inference network places over the final sequence position.
struct PosteriorStats {
  std::vector<float> mu;     // size d
  std::vector<float> sigma;  // size d, exp(0.5 * logvar)
  // Mean posterior stddev -- a scalar uncertainty summary.
  float MeanSigma() const;
};

// Variational Self-Attention Network (the paper's contribution).
//
// Pipeline per Sec. IV: item+position embeddings -> h1 causal self-attention
// blocks (inference network) -> per-position Gaussian (mu, sigma) -> latent z
// by reparameterization -> h2 causal self-attention blocks (generative
// network) -> per-position softmax over items.  Trained on the beta-ELBO of
// Eq. 20 with KL annealing; evaluation decodes from z = mu (Sec. IV-E).
class Vsan : public SequentialRecommender {
 public:
  explicit Vsan(const VsanConfig& config) : config_(config) {}

  std::string name() const override;

  void Fit(const data::SequenceDataset& train,
           const TrainOptions& options) override;

  std::vector<float> Score(const std::vector<int32_t>& fold_in) const override;
  void ScoreInto(const std::vector<int32_t>& fold_in,
                 std::vector<float>* scores) const override;

  // Fast-retrieval seam.  Tied mode factorizes as (item_emb row, output
  // bias); untied mode as (prediction weight column, prediction bias).  The
  // query is the final position of the generative stack's hidden states —
  // exactly what Predict() projects in ScoreInto.
  bool GetFactorizedHead(FactorizedHead* head) const override;
  bool EncodeQueryInto(const std::vector<int32_t>& fold_in,
                       std::vector<float>* query) const override;
  // True multi-query encode: one Forward over the whole batch (a single
  // blocked-GEMM cascade over [count * max_len] rows), bitwise-identical
  // per query to EncodeQueryInto.  The serving daemon's batched hot path.
  bool EncodeBatchInto(const std::vector<std::vector<int32_t>>& fold_ins,
                       std::vector<float>* queries) const override;

  // Posterior of the final position for an unseen user's history; exposes
  // the uncertainty the latent layer captured (Fig. 1's dashed ellipse).
  PosteriorStats InspectPosterior(const std::vector<int32_t>& fold_in) const;

  // Like Score(), but decodes from a *sampled* z ~ N(mu, sigma^2) instead of
  // the posterior mean.  Each call draws fresh noise: repeated calls expose
  // the spread of recommendations the posterior supports (the dashed
  // ellipse of Fig. 1 made operational).
  std::vector<float> ScoreWithSampledLatent(
      const std::vector<int32_t>& fold_in) const;

  // Attention map of the first inference self-attention block over the
  // user's (left-padded) history: an [n, n] row-stochastic matrix whose
  // entry (i, j) is how much query position i attends to key position j.
  // Requires h1 >= 1.  For multi-head configs the heads are averaged.
  Tensor InspectAttention(const std::vector<int32_t>& fold_in) const;

  // Checkpointing: Save() persists the configuration, item count, and all
  // trained parameters; Load() reconstructs an identical, ready-to-score
  // model.  Fit() must have been called before Save().
  Status Save(const std::string& path) const;
  static Result<std::unique_ptr<Vsan>> Load(const std::string& path);

  const VsanConfig& config() const { return config_; }
  // Catalogue size the model was fitted/loaded with (0 before Fit/Load).
  int32_t num_items() const { return num_items_; }
  int64_t NumParameters() const;

  // Trained network (null before Fit); exposed for checkpoint tests that
  // compare parameters bitwise across resumed runs.
  const nn::Module* module() const;

 private:
  struct Net : public nn::Module {
    Net(const VsanConfig& config, int32_t num_items, Rng* rng);

    struct Outputs {
      Variable hidden;  // G_g^{h2}: [B, n, d]
      Variable mu;      // [B*n, d] (undefined when !use_latent)
      Variable logvar;  // [B*n, d]
    };

    // inputs: flattened [B * max_len] left-padded ids.  `sample_latent`
    // forces z to be sampled even in evaluation mode (used by
    // ScoreWithSampledLatent; training always samples).
    Outputs Forward(const std::vector<int32_t>& inputs, int64_t batch,
                    Rng* rng, bool sample_latent = false) const;

    // Embedding pipeline + first inference block with attention capture.
    Tensor FirstBlockAttention(const std::vector<int32_t>& inputs,
                               Rng* rng) const;

    // Prediction layer (Eq. 19) on 2-D rows [R, d] -> [R, V+1].  Training
    // gathers only rows with targets before projecting (the projection onto
    // the item vocabulary dominates step cost).
    Variable Predict(const Variable& rows) const;

    VsanConfig config;
    nn::Embedding item_emb;
    Variable pos_emb;  // [n, d]
    std::vector<std::unique_ptr<nn::SelfAttentionBlock>> infer_blocks;
    std::vector<std::unique_ptr<nn::SelfAttentionBlock>> gen_blocks;
    nn::Linear mu_head;      // l1 of Eq. 12
    nn::Linear logvar_head;  // l2 of Eq. 12 (parameterized as log variance)
    nn::Linear prediction;   // W_g, b_g of Eq. 19 (untied mode)
    Variable output_bias;    // b_g in tied mode ([V+1])
    Tensor causal_mask;
  };

  VsanConfig config_;
  int32_t num_items_ = 0;
  std::unique_ptr<Net> net_;
  mutable Rng rng_{2021};
};

}  // namespace core
}  // namespace vsan

#endif  // VSAN_CORE_VSAN_H_
