#include "core/vsan.h"

#include <algorithm>
#include <cmath>

#include <fstream>

#include "autograd/ops.h"
#include "data/batcher.h"
#include "models/epoch_report.h"
#include "models/train_runtime.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/adam.h"
#include "optim/lr_schedule.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace vsan {
namespace core {
namespace {

// Zeroes rows belonging to padding inputs ([B, n, d]); padding must carry no
// signal into attention values.
Variable MaskPaddingRows(const Variable& x,
                         const std::vector<int32_t>& inputs) {
  Tensor mask(x.value().shape());
  const int64_t d = x.value().dim(2);
  for (size_t r = 0; r < inputs.size(); ++r) {
    if (inputs[r] == data::kPaddingItem) continue;
    float* row = mask.data() + static_cast<int64_t>(r) * d;
    for (int64_t j = 0; j < d; ++j) row[j] = 1.0f;
  }
  return ops::Mul(x, Variable::Constant(std::move(mask)));
}

}  // namespace

float PosteriorStats::MeanSigma() const {
  if (sigma.empty()) return 0.0f;
  double sum = 0.0;
  for (float s : sigma) sum += s;
  return static_cast<float>(sum / sigma.size());
}

std::string Vsan::name() const {
  if (!config_.use_latent) return "VSAN-z";
  if (!config_.infer_ffn && !config_.gen_ffn) return "VSAN-all-feed";
  if (!config_.infer_ffn) return "VSAN-infer-feed";
  if (!config_.gen_ffn) return "VSAN-gene-feed";
  return "VSAN";
}

Vsan::Net::Net(const VsanConfig& cfg, int32_t num_items, Rng* rng)
    : config(cfg),
      item_emb(num_items + 1, cfg.d, rng),
      mu_head(cfg.d, cfg.d, rng),
      logvar_head(cfg.d, cfg.d, rng),
      prediction(cfg.d, num_items + 1, rng),
      causal_mask(nn::MakeCausalMask(cfg.max_len)) {
  RegisterSubmodule(&item_emb);
  pos_emb = RegisterParameter(
      "pos_emb", Tensor::RandomNormal({cfg.max_len, cfg.d}, rng, 0.02f));

  nn::SelfAttentionBlockConfig infer_cfg;
  infer_cfg.d = cfg.d;
  infer_cfg.num_heads = cfg.num_heads;
  infer_cfg.dropout = cfg.dropout;
  infer_cfg.use_ffn = cfg.infer_ffn;
  for (int32_t b = 0; b < cfg.h1; ++b) {
    infer_blocks.push_back(
        std::make_unique<nn::SelfAttentionBlock>(infer_cfg, rng));
    RegisterSubmodule(infer_blocks.back().get());
  }

  nn::SelfAttentionBlockConfig gen_cfg;
  gen_cfg.d = cfg.d;
  gen_cfg.num_heads = cfg.num_heads;
  gen_cfg.dropout = cfg.dropout;
  gen_cfg.use_ffn = cfg.gen_ffn;
  for (int32_t b = 0; b < cfg.h2; ++b) {
    gen_blocks.push_back(
        std::make_unique<nn::SelfAttentionBlock>(gen_cfg, rng));
    RegisterSubmodule(gen_blocks.back().get());
  }

  if (cfg.use_latent) {
    RegisterSubmodule(&mu_head);
    RegisterSubmodule(&logvar_head);
    // Near-identity init for the mu head so the latent layer starts as a
    // pass-through (residual-style), and a near-deterministic posterior
    // (sigma ~ exp(-2.5) ~ 0.08): large initial noise or an arbitrary
    // linear bottleneck drowns the reconstruction signal early in training.
    // The KL term later grows sigma where warranted.
    mu_head.ScaleWeight(0.1f);
    mu_head.AddIdentityToWeight();
    logvar_head.ScaleWeight(0.1f);
    logvar_head.SetBiasConstant(-5.0f);
  }
  if (cfg.tie_output) {
    output_bias =
        RegisterParameter("output_bias", Tensor::Zeros({num_items + 1}));
  } else {
    RegisterSubmodule(&prediction);
  }
}

Vsan::Net::Outputs Vsan::Net::Forward(const std::vector<int32_t>& inputs,
                                      int64_t batch, Rng* rng,
                                      bool sample_latent) const {
  const int64_t n = config.max_len;
  const int64_t d = config.d;

  // Embedding layer (Eq. 4): item embedding + learnable positions.
  Variable x = item_emb.Forward(inputs, batch, n);
  x = ops::Scale(x, std::sqrt(static_cast<float>(d)));
  x = ops::AddBroadcastMatrixVar(x, pos_emb);
  x = MaskPaddingRows(x, inputs);
  x = ops::Dropout(x, config.dropout, rng, training());

  // Inference self-attention layer (Eq. 5-11): G_i^{h1}.
  for (const auto& block : infer_blocks) {
    x = block->Forward(x, causal_mask, rng);
    x = MaskPaddingRows(x, inputs);
  }

  Outputs out;
  Variable g;  // input to the generative layer
  if (config.use_latent) {
    // Variational parameters (Eq. 12) and latent variable (Eq. 13).
    Variable flat = ops::Reshape(x, {batch * n, d});
    out.mu = mu_head.Forward(flat);
    out.logvar = logvar_head.Forward(flat);
    Variable z = ops::Reparameterize(out.mu, out.logvar, rng,
                                     /*sample=*/training() || sample_latent);
    g = ops::Reshape(z, {batch, n, d});
  } else {
    // VSAN-z ablation: deterministic bridge.
    g = x;
  }

  // Generative self-attention layer (Eq. 15-17): G_g^{h2}.
  for (const auto& block : gen_blocks) {
    g = block->Forward(g, causal_mask, rng);
    g = MaskPaddingRows(g, inputs);
  }

  out.hidden = g;
  return out;
}

Tensor Vsan::Net::FirstBlockAttention(const std::vector<int32_t>& inputs,
                                      Rng* rng) const {
  VSAN_CHECK(!infer_blocks.empty()) << "h1 must be >= 1 to inspect attention";
  const int64_t n = config.max_len;
  Variable x = item_emb.Forward(inputs, /*batch=*/1, n);
  x = ops::Scale(x, std::sqrt(static_cast<float>(config.d)));
  x = ops::AddBroadcastMatrixVar(x, pos_emb);
  x = MaskPaddingRows(x, inputs);
  x = ops::Dropout(x, config.dropout, rng, training());
  Tensor attention;
  infer_blocks[0]->Forward(x, causal_mask, rng, &attention);
  return attention.Reshaped({n, n});
}

Variable Vsan::Net::Predict(const Variable& rows) const {
  if (!config.tie_output) return prediction.Forward(rows);
  // Tied projection onto the item-embedding table plus a free item bias.
  return ops::AddBias(
      ops::MatMul(rows, ops::Transpose(item_emb.table())), output_bias);
}

void Vsan::Fit(const data::SequenceDataset& train, const TrainOptions& opts) {
  num_items_ = train.num_items();
  rng_ = Rng(opts.seed);
  net_ = std::make_unique<Net>(config_, num_items_, &rng_);
  net_->SetTraining(true);

  data::SequenceBatcher::Options batch_opts;
  batch_opts.max_len = config_.max_len;
  batch_opts.batch_size = opts.batch_size;
  batch_opts.next_k = config_.next_k;
  batch_opts.seed = opts.seed + 1;
  data::SequenceBatcher batcher(&train, batch_opts);

  optim::Adam::Options adam_opts;
  adam_opts.lr = opts.learning_rate;
  optim::Adam optimizer(net_->Parameters(), adam_opts);

  models::TrainRuntime::Hooks hooks;
  hooks.module = net_.get();
  hooks.mutable_module = net_.get();
  hooks.optimizer = &optimizer;
  hooks.rngs = {&rng_};
  hooks.save_data_state = [&batcher](std::string* out) {
    batcher.SaveState(out);
  };
  hooks.load_data_state = [&batcher](const std::string& blob) {
    return batcher.RestoreState(blob);
  };
  hooks.model_name = "vsan";
  models::TrainRuntime runtime(opts, std::move(hooks));

  // Same live-metrics set as the shared loop (models/train_loop.h), so a
  // /metrics scrape reads identically whichever model is training.
  obs::Counter* step_counter =
      obs::MetricsRegistry::Global().GetCounter("train.steps");
  obs::Histogram* loss_hist = obs::MetricsRegistry::Global().GetHistogram(
      "train.batch_loss", obs::ExponentialBuckets(1e-3, 2.0, 24));
  obs::SlidingWindowHistogram* step_ms_hist =
      obs::MetricsRegistry::Global().GetSlidingHistogram(
          "train.step_ms", obs::ExponentialBuckets(0.1, 2.0, 20));

  int64_t step = 0;
  int32_t epoch = 0;
  if (!runtime.Begin(&step, &epoch)) return;
  while (epoch < opts.epochs) {
    VSAN_TRACE_SPAN("train/epoch", kTrain);
    Stopwatch epoch_timer;
    batcher.NewEpoch();
    double loss_sum = 0.0;
    double recon_sum = 0.0;
    double kl_sum = 0.0;
    double grad_norm_sum = 0.0;
    float last_beta = config_.use_latent
                          ? (config_.fixed_beta >= 0.0f ? config_.fixed_beta
                                                        : 0.0f)
                          : 0.0f;
    float last_lr = optimizer.learning_rate();
    int64_t batches = 0;
    bool rolled_back = false;
    bool stop = false;
    data::TrainBatch batch;
    while (batcher.NextBatch(&batch)) {
      VSAN_TRACE_SPAN("train/step", kTrain);
      Stopwatch step_timer;
      if (runtime.PreStep(step + 1)) return;  // simulated kill
      if (opts.lr_schedule != nullptr) {
        optimizer.set_learning_rate(opts.lr_schedule->LearningRate(step));
      }
      last_lr = optimizer.learning_rate();
      // Schedules (lr above, beta anneal below) key off the pre-increment
      // step so a resumed run reproduces the same curves.
      const int64_t sched_step = step;
      ++step;
#if VSAN_OBS_ENABLED
      // The forward pass spans several statements, so it is timed with an
      // explicit RecordSpan instead of a scoped one.
      obs::Tracer& tracer = obs::Tracer::Global();
      const int64_t fwd_start = tracer.enabled() ? tracer.NowNs() : -1;
#endif
      Net::Outputs out = net_->Forward(batch.inputs, batch.batch_size, &rng_);
      Variable flat_hidden = ops::Reshape(
          out.hidden, {batch.batch_size * batch.seq_len, config_.d});

      // Project and score only the positions that carry a target (left
      // padding makes most positions empty on sparse corpora).
      std::vector<int64_t> rows;
      std::vector<int32_t> targets;
      std::vector<std::vector<int32_t>> multi_targets;
      for (int64_t r = 0; r < batch.batch_size * batch.seq_len; ++r) {
        if (batch.next_targets[r] == -1) continue;
        rows.push_back(r);
        if (config_.next_k > 1) {
          multi_targets.push_back(batch.nextk_targets[r]);
        } else {
          targets.push_back(batch.next_targets[r]);
        }
      }
      Variable logits = net_->Predict(ops::GatherRows(flat_hidden, rows));

      // Reconstruction term of Eq. 20: next-item (k=1) or next-k multi-hot.
      Variable recon =
          (config_.next_k > 1)
              ? ops::MultiLabelSoftmaxCrossEntropy(logits, multi_targets)
              : ops::SoftmaxCrossEntropy(logits, targets,
                                         /*ignore_index=*/-1);

      Variable loss = recon;
      double kl_value = 0.0;
      if (config_.use_latent) {
        // beta * KL term of Eq. 20, with KL annealing.
        Variable kl =
            ops::KlStandardNormal(out.mu, out.logvar, batch.position_mask);
        float beta = config_.fixed_beta;
        if (beta < 0.0f) {
          beta = config_.anneal_steps > 0
                     ? config_.beta_max *
                           std::min(
                               1.0f,
                               static_cast<float>(sched_step) /
                                   static_cast<float>(config_.anneal_steps))
                     : config_.beta_max;
        }
        last_beta = beta;
        kl_value = kl.value()[0];
        loss = ops::Add(recon, ops::Scale(kl, beta));
      }
#if VSAN_OBS_ENABLED
      if (fwd_start >= 0) {
        tracer.RecordSpan("train/forward", obs::SpanCategory::kTrain,
                          fwd_start, tracer.NowNs() - fwd_start);
      }
#endif

      float loss_value = loss.value()[0];
      models::TrainRuntime::StepAction action =
          runtime.GuardLoss(&loss_value, step);
      if (action == models::TrainRuntime::StepAction::kSkip) continue;
      if (action == models::TrainRuntime::StepAction::kStop) {
        stop = true;
        break;
      }
      if (action == models::TrainRuntime::StepAction::kRollback) {
        runtime.Rollback(&step, &epoch);
        rolled_back = true;
        break;
      }

      optimizer.ZeroGrad();
      {
        VSAN_TRACE_SPAN("train/backward", kTrain);
        loss.Backward();
      }
      {
        VSAN_TRACE_SPAN("train/optimizer", kTrain);
        if (opts.grad_clip_norm > 0.0f) {
          const double norm = optimizer.ClipGradNorm(opts.grad_clip_norm);
          action = runtime.GuardGradNorm(norm, step);
          if (action == models::TrainRuntime::StepAction::kSkip) continue;
          if (action == models::TrainRuntime::StepAction::kStop) {
            stop = true;
            break;
          }
          if (action == models::TrainRuntime::StepAction::kRollback) {
            runtime.Rollback(&step, &epoch);
            rolled_back = true;
            break;
          }
          grad_norm_sum += norm;
        }
        optimizer.Step();
      }
      loss_sum += loss_value;
      recon_sum += recon.value()[0];
      kl_sum += kl_value;
      loss_hist->Observe(loss_value);
      step_ms_hist->Observe(step_timer.ElapsedMillis());
      step_counter->Increment();
      ++batches;
    }
    if (rolled_back) continue;  // replay from the last checkpoint
    if (batches > 0) {
      EpochStats stats;
      stats.epoch = epoch;
      stats.loss = loss_sum / batches;
      stats.wall_ms = epoch_timer.ElapsedMillis();
      stats.batches = batches;
      if (opts.grad_clip_norm > 0.0f) {
        stats.grad_norm = grad_norm_sum / batches;
      }
      stats.learning_rate = last_lr;
      std::vector<std::pair<std::string, double>> extras;
      extras.emplace_back("recon", recon_sum / batches);
      if (config_.use_latent) {
        extras.emplace_back("kl", kl_sum / batches);
        extras.emplace_back("beta", static_cast<double>(last_beta));
      }
      models::ReportEpoch(opts, stats, step, std::move(extras));
      if (opts.verbose) {
        VSAN_LOG_INFO << name() << " epoch " << epoch << " loss "
                      << FormatDouble(stats.loss, 4);
      }
    }
    if (stop) break;
    runtime.EndEpoch(epoch, step);
    ++epoch;
  }
  net_->SetTraining(false);
}

std::vector<float> Vsan::Score(const std::vector<int32_t>& fold_in) const {
  std::vector<float> scores;
  ScoreInto(fold_in, &scores);
  return scores;
}

void Vsan::ScoreInto(const std::vector<int32_t>& fold_in,
                    std::vector<float>* scores) const {
  VSAN_CHECK(net_ != nullptr) << "Fit() must be called before Score()";
  ScopedMatMulPrecision precision_guard(eval_precision());
  const std::vector<int32_t> padded =
      data::SequenceBatcher::PadSequence(fold_in, config_.max_len);
  Net::Outputs out = net_->Forward(padded, /*batch=*/1, &rng_);
  Variable last = ops::Reshape(
      ops::Slice(out.hidden, /*axis=*/1, config_.max_len - 1, /*len=*/1),
      {1, config_.d});
  Variable logits = net_->Predict(last);
  const Tensor& v = logits.value();
  scores->resize(num_items_ + 1);
  const float* src = v.data();
  std::copy(src, src + num_items_ + 1, scores->data());
}

bool Vsan::GetFactorizedHead(FactorizedHead* head) const {
  VSAN_CHECK(net_ != nullptr) << "Fit() must be called before GetFactorizedHead()";
  head->dim = config_.d;
  head->num_rows = num_items_ + 1;
  if (config_.tie_output) {
    head->weights = net_->item_emb.table().value().data();
    head->items_are_rows = true;
    head->bias = net_->output_bias.value().data();
  } else {
    head->weights = net_->prediction.weight_value().data();
    head->items_are_rows = false;
    head->bias = net_->prediction.has_bias()
                     ? net_->prediction.bias_value().data()
                     : nullptr;
  }
  return true;
}

bool Vsan::EncodeQueryInto(const std::vector<int32_t>& fold_in,
                           std::vector<float>* query) const {
  VSAN_CHECK(net_ != nullptr) << "Fit() must be called before EncodeQueryInto()";
  ScopedMatMulPrecision precision_guard(eval_precision());
  const std::vector<int32_t> padded =
      data::SequenceBatcher::PadSequence(fold_in, config_.max_len);
  Net::Outputs out = net_->Forward(padded, /*batch=*/1, &rng_);
  Variable last = ops::Reshape(
      ops::Slice(out.hidden, /*axis=*/1, config_.max_len - 1, /*len=*/1),
      {1, config_.d});
  query->resize(static_cast<size_t>(config_.d));
  const float* src = last.value().data();
  std::copy(src, src + config_.d, query->data());
  return true;
}

bool Vsan::EncodeBatchInto(const std::vector<std::vector<int32_t>>& fold_ins,
                           std::vector<float>* queries) const {
  VSAN_CHECK(net_ != nullptr)
      << "Fit() must be called before EncodeBatchInto()";
  const int64_t count = static_cast<int64_t>(fold_ins.size());
  queries->resize(static_cast<size_t>(count * config_.d));
  if (count == 0) return true;
  ScopedMatMulPrecision precision_guard(eval_precision());
  std::vector<int32_t> flat(static_cast<size_t>(count * config_.max_len));
  for (int64_t i = 0; i < count; ++i) {
    const std::vector<int32_t> padded =
        data::SequenceBatcher::PadSequence(fold_ins[i], config_.max_len);
    std::copy(padded.begin(), padded.end(),
              flat.begin() + i * config_.max_len);
  }
  Net::Outputs out = net_->Forward(flat, count, &rng_);
  // [count, 1, d] -> the final position of every sequence, contiguous.
  Variable last = ops::Reshape(
      ops::Slice(out.hidden, /*axis=*/1, config_.max_len - 1, /*len=*/1),
      {count, config_.d});
  const float* src = last.value().data();
  std::copy(src, src + count * config_.d, queries->data());
  return true;
}

std::vector<float> Vsan::ScoreWithSampledLatent(
    const std::vector<int32_t>& fold_in) const {
  VSAN_CHECK(net_ != nullptr) << "Fit() must be called before Score()";
  VSAN_CHECK(config_.use_latent) << "VSAN-z has no posterior to sample";
  ScopedMatMulPrecision precision_guard(eval_precision());
  const std::vector<int32_t> padded =
      data::SequenceBatcher::PadSequence(fold_in, config_.max_len);
  Net::Outputs out =
      net_->Forward(padded, /*batch=*/1, &rng_, /*sample_latent=*/true);
  Variable last = ops::Reshape(
      ops::Slice(out.hidden, /*axis=*/1, config_.max_len - 1, /*len=*/1),
      {1, config_.d});
  Variable logits = net_->Predict(last);
  const Tensor& v = logits.value();
  std::vector<float> scores(num_items_ + 1);
  for (int32_t i = 0; i <= num_items_; ++i) scores[i] = v[i];
  return scores;
}

Tensor Vsan::InspectAttention(const std::vector<int32_t>& fold_in) const {
  VSAN_CHECK(net_ != nullptr) << "Fit() must be called before Score()";
  const std::vector<int32_t> padded =
      data::SequenceBatcher::PadSequence(fold_in, config_.max_len);
  return net_->FirstBlockAttention(padded, &rng_);
}

PosteriorStats Vsan::InspectPosterior(
    const std::vector<int32_t>& fold_in) const {
  VSAN_CHECK(net_ != nullptr) << "Fit() must be called before Score()";
  VSAN_CHECK(config_.use_latent) << "VSAN-z has no posterior to inspect";
  const std::vector<int32_t> padded =
      data::SequenceBatcher::PadSequence(fold_in, config_.max_len);
  Net::Outputs out = net_->Forward(padded, /*batch=*/1, &rng_);
  PosteriorStats stats;
  const int64_t d = config_.d;
  const int64_t last = config_.max_len - 1;  // most recent position
  stats.mu.resize(d);
  stats.sigma.resize(d);
  for (int64_t j = 0; j < d; ++j) {
    stats.mu[j] = out.mu.value().at(last, j);
    stats.sigma[j] = std::exp(0.5f * out.logvar.value().at(last, j));
  }
  return stats;
}

Status Vsan::Save(const std::string& path) const {
  if (net_ == nullptr) {
    return Status::InvalidArgument("Fit() must be called before Save()");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return Status::NotFound(StrCat("cannot open ", path));
  // Text header (one line) followed by the binary parameter blob.
  out << "VSAN-CHECKPOINT v1 " << config_.max_len << " " << config_.d << " "
      << config_.h1 << " " << config_.h2 << " " << config_.num_heads << " "
      << config_.next_k << " "
      << config_.dropout << " " << config_.beta_max << " "
      << config_.anneal_steps << " " << config_.fixed_beta << " "
      << config_.tie_output << " " << config_.use_latent << " "
      << config_.infer_ffn << " " << config_.gen_ffn << " " << num_items_
      << "\n";
  return nn::SaveParameters(*net_, out);
}

Result<std::unique_ptr<Vsan>> Vsan::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::NotFound(StrCat("cannot open ", path));
  std::string tag, version;
  VsanConfig cfg;
  int32_t num_items = 0;
  in >> tag >> version >> cfg.max_len >> cfg.d >> cfg.h1 >> cfg.h2 >>
      cfg.num_heads >> cfg.next_k >> cfg.dropout >> cfg.beta_max >>
      cfg.anneal_steps >> cfg.fixed_beta >> cfg.tie_output >>
      cfg.use_latent >> cfg.infer_ffn >> cfg.gen_ffn >> num_items;
  if (!in.good() || tag != "VSAN-CHECKPOINT" || version != "v1") {
    return Status::InvalidArgument(StrCat(path, ": not a VSAN v1 checkpoint"));
  }
  in.get();  // consume the newline before the binary blob

  auto model = std::make_unique<Vsan>(cfg);
  model->num_items_ = num_items;
  model->net_ = std::make_unique<Net>(cfg, num_items, &model->rng_);
  Status status = nn::LoadParameters(model->net_.get(), in);
  if (!status.ok()) return status;
  model->net_->SetTraining(false);
  return model;
}

int64_t Vsan::NumParameters() const {
  return net_ ? net_->NumParameters() : 0;
}

const nn::Module* Vsan::module() const { return net_.get(); }

}  // namespace core
}  // namespace vsan
