#ifndef VSAN_OBS_PROFILER_H_
#define VSAN_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"  // VSAN_OBS_ENABLED

// Signal-based sampling CPU profiler: a SIGPROF timer (ITIMER_PROF, i.e.
// process CPU time, so idle waits are never sampled) fires at `hz`; the
// handler captures a backtrace into a preallocated lock-free buffer — no
// allocation, no locks, nothing async-signal-unsafe on the sampling path.
// Stop() disarms the timer and symbolizes the raw program counters
// (dladdr + demangling) into folded-stack lines
//
//   vsan::core::Vsan::Fit;vsan::models::RunTrainLoop;vsan::Gemm 412
//
// the format flamegraph.pl / speedscope / inferno consume directly.
//
// Symbolization resolves through the dynamic symbol table, which is why
// CMake links with -rdynamic when VSAN_OBS is ON; frames in static or
// anonymous-namespace functions that were not inlined fall back to a
// module+offset pseudo-frame.  Sampling overhead at the default 99 Hz is
// one backtrace per tick (~microseconds) — see EXPERIMENTS.md for the
// measured train-epoch delta.
//
// One profiler per process (SIGPROF is process-global); use the Global()
// instance.  Under -DVSAN_OBS=OFF the whole surface compiles to a no-op.

namespace vsan {
namespace obs {

struct ProfilerOptions {
  int hz = 99;             // sampling frequency (prime avoids lockstep)
  int max_stack_depth = 64;
  // Preallocated sample storage in words (one word per frame plus one per
  // sample); samples past the cap are counted as dropped, not recorded.
  int64_t buffer_words = 1 << 20;  // 8 MiB, ~6 min of 20-deep stacks @99 Hz
};

struct ProfileStats {
  int64_t samples = 0;  // recorded samples
  int64_t dropped = 0;  // ticks lost to a full buffer
  // Of the recorded samples: fraction whose leaf frame resolved to a
  // symbol, and fraction with at least one resolved frame anywhere in the
  // stack (what a flamegraph can attribute).  Filled by Stop().
  double leaf_symbolized_fraction = 0.0;
  double any_symbolized_fraction = 0.0;
};

#if VSAN_OBS_ENABLED

class SamplingProfiler {
 public:
  static SamplingProfiler& Global();

  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  // Arms SIGPROF.  False if already running or the timer cannot be set.
  bool Start(const ProfilerOptions& options = {});

  // Disarms the timer, waits for in-flight handlers, symbolizes, and
  // returns the run's stats.  Samples stay available to FoldedStacks()
  // until the next Start().  No-op (zero stats) when not running.
  ProfileStats Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Folded-stack lines ("frame;frame;leaf count\n"), aggregated and
  // sorted by count descending.  Valid after Stop().
  std::string FoldedStacks() const;

  // Writes FoldedStacks() to `path`; false on I/O failure.
  bool WriteFolded(const std::string& path) const;

  // Stats of the last stopped run.
  ProfileStats stats() const { return stats_; }

 private:
  SamplingProfiler() = default;
  static void SignalHandler(int signo);
  void Symbolize();

  ProfilerOptions options_;
  std::atomic<bool> running_{false};
  std::atomic<bool> capturing_{false};
  std::atomic<int64_t> in_handler_{0};
  std::atomic<int64_t> pos_{0};      // bump allocator over buffer_
  std::atomic<int64_t> dropped_{0};
  std::vector<void*> buffer_;  // [depth, frame0..frameN-1] records
  ProfileStats stats_;
  // Symbolized, folded stacks with counts (filled by Stop()).
  std::vector<std::pair<std::string, int64_t>> folded_;
};

#else  // VSAN_OBS_ENABLED == 0: header-only no-op

class SamplingProfiler {
 public:
  static SamplingProfiler& Global() {
    static SamplingProfiler profiler;
    return profiler;
  }
  bool Start(const ProfilerOptions& = {}) { return false; }
  ProfileStats Stop() { return {}; }
  bool running() const { return false; }
  std::string FoldedStacks() const { return ""; }
  bool WriteFolded(const std::string&) const { return false; }
  ProfileStats stats() const { return {}; }
};

#endif  // VSAN_OBS_ENABLED

}  // namespace obs
}  // namespace vsan

#endif  // VSAN_OBS_PROFILER_H_
