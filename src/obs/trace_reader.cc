#include "obs/trace_reader.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/json.h"

namespace vsan {
namespace obs {
namespace {

// Nearest-rank percentile over an unsorted sample of durations; sorts in
// place.  Groups in a trace are small (thousands of spans at most), so a
// full sort per group is cheap and exact.
void FillPercentiles(std::vector<double>* durations, SpanTotals* totals) {
  std::sort(durations->begin(), durations->end());
  auto at = [&](double p) {
    const size_t rank = static_cast<size_t>(
        std::max(1.0, std::ceil(p / 100.0 * durations->size())));
    return (*durations)[rank - 1];
  };
  totals->p50_us = at(50.0);
  totals->p95_us = at(95.0);
  totals->p99_us = at(99.0);
}

}  // namespace

bool ReadChromeTrace(std::istream& in, std::vector<ParsedSpan>* spans,
                     std::string* error) {
  return ReadChromeTrace(in, spans, /*metrics=*/nullptr, error);
}

bool ReadChromeTrace(std::istream& in, std::vector<ParsedSpan>* spans,
                     std::map<std::string, double>* metrics,
                     std::string* error) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  JsonValue root;
  if (!ParseJson(buffer.str(), &root, error)) return false;

  const JsonValue* events = nullptr;
  if (root.is_array()) {
    events = &root;
  } else if (root.is_object()) {
    events = root.Find("traceEvents");
  }
  if (metrics != nullptr) {
    metrics->clear();
    const JsonValue* m =
        root.is_object() ? root.Find("metrics") : nullptr;
    if (m != nullptr && m->is_object()) {
      for (const auto& [name, value] : m->object) {
        if (value.is_number()) (*metrics)[name] = value.number;
      }
    }
  }
  if (events == nullptr || !events->is_array()) {
    if (error != nullptr) *error = "no traceEvents array";
    return false;
  }

  spans->clear();
  spans->reserve(events->array.size());
  for (const JsonValue& e : events->array) {
    if (!e.is_object()) continue;
    if (e.StringOr("ph", "X") != "X") continue;  // only complete events
    ParsedSpan span;
    span.name = e.StringOr("name", "");
    span.category = e.StringOr("cat", "other");
    span.tid = static_cast<int64_t>(e.NumberOr("tid", 0));
    span.ts_us = e.NumberOr("ts", 0.0);
    span.dur_us = e.NumberOr("dur", 0.0);
    spans->push_back(std::move(span));
  }
  return true;
}

TraceSummary SummarizeTrace(const std::vector<ParsedSpan>& spans) {
  TraceSummary summary;
  if (spans.empty()) return summary;

  double min_ts = spans[0].ts_us;
  double max_end = spans[0].ts_us + spans[0].dur_us;
  std::map<int64_t, std::vector<std::pair<double, double>>> per_tid;
  std::map<std::string, std::vector<double>> cat_durations;
  std::map<std::string, std::vector<double>> name_durations;
  for (const ParsedSpan& s : spans) {
    min_ts = std::min(min_ts, s.ts_us);
    max_end = std::max(max_end, s.ts_us + s.dur_us);
    SpanTotals& cat = summary.by_category[s.category];
    ++cat.count;
    cat.total_us += s.dur_us;
    cat_durations[s.category].push_back(s.dur_us);
    SpanTotals& name = summary.by_name[s.name];
    ++name.count;
    name.total_us += s.dur_us;
    name_durations[s.name].push_back(s.dur_us);
    per_tid[s.tid].emplace_back(s.ts_us, s.ts_us + s.dur_us);
  }
  summary.wall_us = max_end - min_ts;
  for (auto& [category, durations] : cat_durations) {
    FillPercentiles(&durations, &summary.by_category[category]);
  }
  for (auto& [name, durations] : name_durations) {
    FillPercentiles(&durations, &summary.by_name[name]);
  }

  // Interval union per thread; the busiest thread's covered time over the
  // trace wall is the attribution figure.
  double best_union = 0.0;
  for (auto& [tid, intervals] : per_tid) {
    std::sort(intervals.begin(), intervals.end());
    double covered = 0.0;
    double cur_begin = intervals[0].first;
    double cur_end = intervals[0].second;
    for (size_t i = 1; i < intervals.size(); ++i) {
      if (intervals[i].first > cur_end) {
        covered += cur_end - cur_begin;
        cur_begin = intervals[i].first;
        cur_end = intervals[i].second;
      } else {
        cur_end = std::max(cur_end, intervals[i].second);
      }
    }
    covered += cur_end - cur_begin;
    best_union = std::max(best_union, covered);
  }
  summary.coverage = summary.wall_us > 0.0 ? best_union / summary.wall_us : 0.0;
  return summary;
}

}  // namespace obs
}  // namespace vsan
