#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace vsan {
namespace obs {
namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWhitespace();
    if (!ParseValue(out)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_->empty()) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseNested(out, &Parser::ParseObject);
      case '[':
        return ParseNested(out, &Parser::ParseArray);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
        if (!ConsumeLiteral("true")) return Fail("bad literal");
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return true;
      case 'f':
        if (!ConsumeLiteral("false")) return Fail("bad literal");
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return true;
      case 'n':
        if (!ConsumeLiteral("null")) return Fail("bad literal");
        out->type = JsonValue::Type::kNull;
        return true;
      default:
        return ParseNumber(out);
    }
  }

  // The parser recurses once per nesting level, so adversarial input
  // ("[[[[..." a megabyte deep) would otherwise trade 1 byte of body for a
  // stack frame and crash the handler thread.  128 levels is far beyond
  // any legitimate payload this plane exchanges.
  bool ParseNested(JsonValue* out, bool (Parser::*parse)(JsonValue*)) {
    if (++depth_ > 128) return Fail("nesting too deep");
    const bool ok = (this->*parse)(out);
    --depth_;
    return ok;
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return true;
    for (;;) {
      SkipWhitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return true;
    for (;;) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          *out += esc;
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= h - '0';
            } else if (h >= 'a' && h <= 'f') {
              code |= h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              code |= h - 'A' + 10;
            } else {
              return Fail("bad \\u escape");
            }
          }
          // The exporter only emits \u00XX control escapes; encode the
          // general case as UTF-8 anyway (no surrogate-pair handling).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return Fail("expected value");
    pos_ += end - start;
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double def) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number : def;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& def) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->str : def;
}

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  std::string local_error;
  Parser parser(text, error != nullptr ? error : &local_error);
  *out = JsonValue();
  return parser.Parse(out);
}

}  // namespace obs
}  // namespace vsan
