#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace vsan {
namespace obs {

double PercentileFromBuckets(const std::vector<double>& bounds,
                             const std::vector<int64_t>& counts, double p) {
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  p = std::min(100.0, std::max(0.0, p));
  // Target rank in [1, total].
  const double rank = std::max(1.0, std::ceil(p / 100.0 * total));
  int64_t cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (cum + counts[i] >= rank) {
      if (i == bounds.size()) return bounds.back();  // overflow bucket
      const double lower = (i == 0) ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double fraction = (rank - cum) / static_cast<double>(counts[i]);
      return lower + (upper - lower) * fraction;
    }
    cum += counts[i];
  }
  return bounds.back();
}

double HistogramSnapshot::Percentile(double p) const {
  return PercentileFromBuckets(bounds, buckets, p);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  VSAN_CHECK(!bounds_.empty()) << "histogram needs at least one bound";
  VSAN_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  const size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets = BucketCounts();
  snap.count = count();
  snap.sum = sum();
  return snap;
}

double Histogram::Percentile(double p) const {
  return PercentileFromBuckets(bounds_, BucketCounts(), p);
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  count_.store(0);
  sum_.store(0.0);
}

SlidingWindowHistogram::SlidingWindowHistogram(std::vector<double> bounds,
                                               int64_t window_ns,
                                               int num_slices)
    : bounds_(std::move(bounds)), num_slices_(num_slices) {
  VSAN_CHECK(!bounds_.empty()) << "histogram needs at least one bound";
  VSAN_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  VSAN_CHECK_GT(num_slices_, 0);
  VSAN_CHECK_GT(window_ns, 0);
  slice_ns_ = std::max<int64_t>(1, window_ns / num_slices_);
  slices_ = std::vector<Slice>(static_cast<size_t>(num_slices_));
  for (Slice& s : slices_) {
    s.buckets.reset(new std::atomic<int64_t>[bounds_.size() + 1]);
    for (size_t i = 0; i <= bounds_.size(); ++i) s.buckets[i].store(0);
  }
}

SlidingWindowHistogram::Slice* SlidingWindowHistogram::SliceFor(
    int64_t slice_epoch) {
  Slice& slice = slices_[static_cast<size_t>(slice_epoch % num_slices_)];
  if (slice.epoch.load(std::memory_order_acquire) == slice_epoch) {
    return &slice;
  }
  // The slot holds an expired slice (or is empty).  Recycle under the
  // mutex — once per slice duration — so only one thread zeroes it; the
  // release store of the new epoch publishes the zeroed buckets.
  std::lock_guard<std::mutex> lock(recycle_mu_);
  if (slice.epoch.load(std::memory_order_acquire) != slice_epoch) {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      slice.buckets[i].store(0, std::memory_order_relaxed);
    }
    slice.count.store(0, std::memory_order_relaxed);
    slice.sum.store(0.0, std::memory_order_relaxed);
    slice.epoch.store(slice_epoch, std::memory_order_release);
  }
  return &slice;
}

void SlidingWindowHistogram::ObserveAt(double value, int64_t now_ns) {
  Slice* slice = SliceFor(now_ns / slice_ns_);
  const size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  slice->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  slice->count.fetch_add(1, std::memory_order_relaxed);
  slice->sum.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot SlidingWindowHistogram::SnapshotAt(int64_t now_ns) const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  snap.window_ns = window_ns();
  // Live slices are those whose epoch lies within the window ending at the
  // current slice (inclusive): epochs in (current - num_slices, current].
  const int64_t current = now_ns / slice_ns_;
  for (const Slice& slice : slices_) {
    const int64_t epoch = slice.epoch.load(std::memory_order_acquire);
    if (epoch < 0 || epoch > current || epoch <= current - num_slices_) {
      continue;
    }
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      snap.buckets[i] += slice.buckets[i].load(std::memory_order_relaxed);
    }
    snap.count += slice.count.load(std::memory_order_relaxed);
    snap.sum += slice.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

void SlidingWindowHistogram::Reset() {
  std::lock_guard<std::mutex> lock(recycle_mu_);
  for (Slice& slice : slices_) {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      slice.buckets[i].store(0, std::memory_order_relaxed);
    }
    slice.count.store(0, std::memory_order_relaxed);
    slice.sum.store(0.0, std::memory_order_relaxed);
    slice.epoch.store(-1, std::memory_order_release);
  }
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  VSAN_CHECK_GT(start, 0.0);
  VSAN_CHECK_GT(factor, 1.0);
  VSAN_CHECK_GT(count, 0);
  std::vector<double> bounds(count);
  double edge = start;
  for (int i = 0; i < count; ++i) {
    bounds[i] = edge;
    edge *= factor;
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

SlidingWindowHistogram* MetricsRegistry::GetSlidingHistogram(
    const std::string& name, const std::vector<double>& bounds,
    int64_t window_ns, int num_slices) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = sliding_histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<SlidingWindowHistogram>(bounds, window_ns,
                                                    num_slices);
  }
  return slot.get();
}

std::string MetricsRegistry::ScrapeText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    os << "counter " << name << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    os << "gauge " << name << " " << FormatDouble(gauge->value(), 6) << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    os << "histogram " << name << " count=" << hist->count()
       << " sum=" << FormatDouble(hist->sum(), 3)
       << " p50=" << FormatDouble(hist->Percentile(50), 3)
       << " p95=" << FormatDouble(hist->Percentile(95), 3)
       << " p99=" << FormatDouble(hist->Percentile(99), 3) << "\n";
  }
  for (const auto& [name, hist] : sliding_histograms_) {
    const HistogramSnapshot snap = hist->Snapshot();
    os << "sliding " << name
       << " window_s=" << FormatDouble(snap.window_ns / 1e9, 1)
       << " count=" << snap.count
       << " sum=" << FormatDouble(snap.sum, 3)
       << " p50=" << FormatDouble(snap.Percentile(50), 3)
       << " p95=" << FormatDouble(snap.Percentile(95), 3)
       << " p99=" << FormatDouble(snap.Percentile(99), 3) << "\n";
  }
  return os.str();
}

std::map<std::string, double> MetricsRegistry::SnapshotScalars() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = static_cast<double>(counter->value());
  }
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  // Histograms contribute their count and headline quantiles as scalars so
  // downstream sinks (trace "metrics" snapshot, telemetry extras) keep the
  // latency shape instead of dropping it.
  for (const auto& [name, hist] : histograms_) {
    const HistogramSnapshot snap = hist->Snapshot();
    out[name + ".count"] = static_cast<double>(snap.count);
    out[name + ".p50"] = snap.Percentile(50);
    out[name + ".p95"] = snap.Percentile(95);
    out[name + ".p99"] = snap.Percentile(99);
  }
  for (const auto& [name, hist] : sliding_histograms_) {
    const HistogramSnapshot snap = hist->Snapshot();
    out[name + ".count"] = static_cast<double>(snap.count);
    out[name + ".p50"] = snap.Percentile(50);
    out[name + ".p95"] = snap.Percentile(95);
    out[name + ".p99"] = snap.Percentile(99);
  }
  return out;
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::SnapshotHistograms()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, hist] : histograms_) out[name] = hist->Snapshot();
  for (const auto& [name, hist] : sliding_histograms_) {
    out[name] = hist->Snapshot();
  }
  return out;
}

std::map<std::string, int64_t> MetricsRegistry::SnapshotCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::map<std::string, double> MetricsRegistry::SnapshotGauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
  for (auto& [name, hist] : sliding_histograms_) hist->Reset();
}

}  // namespace obs
}  // namespace vsan
