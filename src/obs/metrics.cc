#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace vsan {
namespace obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  VSAN_CHECK(!bounds_.empty()) << "histogram needs at least one bound";
  VSAN_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  const size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::Percentile(double p) const {
  const std::vector<int64_t> counts = BucketCounts();
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  p = std::min(100.0, std::max(0.0, p));
  // Target rank in [1, total].
  const double rank = std::max(1.0, std::ceil(p / 100.0 * total));
  int64_t cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (cum + counts[i] >= rank) {
      if (i == bounds_.size()) return bounds_.back();  // overflow bucket
      const double lower = (i == 0) ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double fraction = (rank - cum) / static_cast<double>(counts[i]);
      return lower + (upper - lower) * fraction;
    }
    cum += counts[i];
  }
  return bounds_.back();
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  count_.store(0);
  sum_.store(0.0);
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  VSAN_CHECK_GT(start, 0.0);
  VSAN_CHECK_GT(factor, 1.0);
  VSAN_CHECK_GT(count, 0);
  std::vector<double> bounds(count);
  double edge = start;
  for (int i = 0; i < count; ++i) {
    bounds[i] = edge;
    edge *= factor;
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

std::string MetricsRegistry::ScrapeText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    os << "counter " << name << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    os << "gauge " << name << " " << FormatDouble(gauge->value(), 6) << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    os << "histogram " << name << " count=" << hist->count()
       << " sum=" << FormatDouble(hist->sum(), 3)
       << " p50=" << FormatDouble(hist->Percentile(50), 3)
       << " p95=" << FormatDouble(hist->Percentile(95), 3)
       << " p99=" << FormatDouble(hist->Percentile(99), 3) << "\n";
  }
  return os.str();
}

std::map<std::string, double> MetricsRegistry::SnapshotScalars() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = static_cast<double>(counter->value());
  }
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace obs
}  // namespace vsan
