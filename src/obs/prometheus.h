#ifndef VSAN_OBS_PROMETHEUS_H_
#define VSAN_OBS_PROMETHEUS_H_

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

// Prometheus text exposition (version 0.0.4) writer for the metrics
// registry, plus the small parser vsan_top and the tests use to read a
// scrape back.  Writer and parser round-trip each other; the parser also
// accepts any well-formed exposition text from elsewhere.

namespace vsan {
namespace obs {

// "pool.acquire.hits" -> "vsan_pool_acquire_hits": a "vsan_" prefix plus
// every character outside [a-zA-Z0-9_:] mapped to '_', the Prometheus
// metric-name alphabet.
std::string PrometheusName(const std::string& name);

// Renders the registry into exposition text:
//   - counters as `<name>_total` counter families,
//   - gauges as gauge families,
//   - histograms (cumulative and sliding) as histogram families with
//     cumulative `_bucket{le="..."}` series, `_sum`, and `_count`, plus
//     `_p50` / `_p95` / `_p99` gauge families with the interpolated
//     quantiles (sliding windows additionally label their buckets with
//     window="<seconds>s" and quantiles reflect only that window).
std::string WritePrometheusText(const MetricsRegistry& registry);

// One sample line parsed back from exposition text.
struct PrometheusSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

// Parses exposition text into samples plus the `# TYPE` declarations
// (metric family name -> counter|gauge|histogram|...).  Returns false with
// `*error` set on a malformed sample line; comment and blank lines are
// skipped.
bool ParsePrometheusText(const std::string& text,
                         std::vector<PrometheusSample>* samples,
                         std::map<std::string, std::string>* types,
                         std::string* error);

}  // namespace obs
}  // namespace vsan

#endif  // VSAN_OBS_PROMETHEUS_H_
