#ifndef VSAN_OBS_METRICS_H_
#define VSAN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms.  Updates are lock-free atomics so instruments can be hit from
// ParallelFor shards; aggregation across threads happens implicitly at
// scrape time (the atomics hold the global totals).
//
// Instruments are created on first Get*() and live for the process, so
// callers may cache the returned pointers (the hot-path pattern: look up
// once, Increment()/Observe() forever).

namespace vsan {
namespace obs {

class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram for non-negative samples (durations, sizes).
// `bounds` are ascending bucket upper edges; an implicit overflow bucket
// catches everything above the last bound.  Percentiles are estimated by
// linear interpolation inside the bucket containing the target rank (the
// first bucket's lower edge is taken as 0; the overflow bucket reports the
// last bound, i.e. percentiles saturate there).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  // p in [0, 100].  Returns 0 when empty.
  double Percentile(double p) const;
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<int64_t> BucketCounts() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  // bounds_.size() + 1 buckets; the last is the overflow bucket.
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// `count` bucket bounds starting at `start`, each `factor` times the
// previous — the usual latency-histogram shape.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count);

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Each returns the existing instrument when the name is already
  // registered (for GetHistogram, the original bounds win).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  // Human/CI-readable scrape, sorted by name:
  //   counter <name> <value>
  //   gauge <name> <value>
  //   histogram <name> count=<n> sum=<s> p50=<..> p95=<..> p99=<..>
  std::string ScrapeText() const;

  // Point-in-time numeric values of every counter and gauge (histograms are
  // excluded — they have no single scalar).  Used by the trace exporter to
  // embed metric values alongside span events.
  std::map<std::string, double> SnapshotScalars() const;

  // Zeroes every instrument (pointers stay valid).  For tests/benchmarks.
  void Reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace vsan

#endif  // VSAN_OBS_METRICS_H_
