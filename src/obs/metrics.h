#ifndef VSAN_OBS_METRICS_H_
#define VSAN_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms — cumulative (process lifetime) and sliding-window (the last N
// seconds, for live p50/p95/p99 under the HTTP /metrics endpoint).  Updates
// are lock-free atomics so instruments can be hit from ParallelFor shards;
// aggregation across threads happens implicitly at scrape time (the atomics
// hold the global totals).
//
// Instruments are created on first Get*() and live for the process, so
// callers may cache the returned pointers (the hot-path pattern: look up
// once, Increment()/Observe() forever).

namespace vsan {
namespace obs {

class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Point-in-time view of a histogram (either kind), the currency of
// SnapshotHistograms() and the Prometheus exposition writer.
struct HistogramSnapshot {
  std::vector<double> bounds;    // ascending finite upper edges
  std::vector<int64_t> buckets;  // bounds.size() + 1; last = overflow
  int64_t count = 0;
  double sum = 0.0;
  // 0 for cumulative histograms; the merge horizon for sliding windows.
  int64_t window_ns = 0;

  // p in [0, 100], interpolated inside the owning bucket; 0 when empty.
  double Percentile(double p) const;
};

// Shared percentile estimator over fixed buckets: linear interpolation
// inside the bucket containing the target rank (the first bucket's lower
// edge is taken as 0; the overflow bucket reports the last bound, i.e.
// percentiles saturate there).  Returns 0 when the counts sum to 0.
double PercentileFromBuckets(const std::vector<double>& bounds,
                             const std::vector<int64_t>& counts, double p);

// Fixed-bucket histogram for non-negative samples (durations, sizes).
// `bounds` are ascending bucket upper edges; an implicit overflow bucket
// catches everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  // p in [0, 100].  Returns 0 when empty.
  double Percentile(double p) const;
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<int64_t> BucketCounts() const;
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  // bounds_.size() + 1 buckets; the last is the overflow bucket.
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Sliding-window histogram: a time-bucketed ring of `num_slices` fixed-
// bucket histograms, each owning one slice of the window; reads merge the
// slices whose slice-epoch still falls inside the window, so percentiles
// reflect roughly the last `window` of wall time instead of the process
// lifetime (resolution: one slice — a snapshot covers between
// window - window/num_slices and window of history).
//
// Observe() is lock-free in the steady state (relaxed atomic adds into the
// current slice); a mutex is taken only when a slice expires and must be
// recycled, i.e. once per slice duration, never per sample.  Concurrent
// Observe/Snapshot from any number of threads is safe (everything is
// atomics — TSAN-clean); a sample landing in a slice as it recycles may be
// attributed to the wrong side of the boundary, which is harmless for
// monitoring quantiles.
//
// The *At(now_ns) variants take an explicit steady-clock timestamp so tests
// can drive the window deterministically; the clockless forms read
// std::chrono::steady_clock.
class SlidingWindowHistogram {
 public:
  SlidingWindowHistogram(std::vector<double> bounds, int64_t window_ns,
                         int num_slices);

  void Observe(double value) { ObserveAt(value, NowNs()); }
  void ObserveAt(double value, int64_t now_ns);

  HistogramSnapshot Snapshot() const { return SnapshotAt(NowNs()); }
  HistogramSnapshot SnapshotAt(int64_t now_ns) const;

  const std::vector<double>& bounds() const { return bounds_; }
  int64_t window_ns() const { return slice_ns_ * num_slices_; }
  void Reset();

  static int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  struct Slice {
    // Which slice-index (now_ns / slice_ns_) this slot currently holds;
    // -1 = empty.  Written release after the buckets are zeroed so readers
    // never merge a half-recycled slice under the stale epoch.
    std::atomic<int64_t> epoch{-1};
    std::unique_ptr<std::atomic<int64_t>[]> buckets;
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  Slice* SliceFor(int64_t slice_epoch);

  std::vector<double> bounds_;
  int64_t slice_ns_;
  int num_slices_;
  std::vector<Slice> slices_;
  std::mutex recycle_mu_;  // serializes slice resets, not observations
};

// `count` bucket bounds starting at `start`, each `factor` times the
// previous — the usual latency-histogram shape.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count);

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Each returns the existing instrument when the name is already
  // registered (for the histogram getters, the original configuration
  // wins).  Cumulative and sliding histograms share a namespace with
  // counters/gauges only at scrape time; the four instrument kinds keep
  // separate maps, so reusing one name across kinds is possible but will
  // collide in SnapshotScalars — don't.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);
  SlidingWindowHistogram* GetSlidingHistogram(
      const std::string& name, const std::vector<double>& bounds,
      int64_t window_ns = 30ll * 1000 * 1000 * 1000, int num_slices = 10);

  // Human/CI-readable scrape, sorted by name:
  //   counter <name> <value>
  //   gauge <name> <value>
  //   histogram <name> count=<n> sum=<s> p50=<..> p95=<..> p99=<..>
  //   sliding <name> window_s=<w> count=<n> p50=<..> p95=<..> p99=<..>
  std::string ScrapeText() const;

  // Point-in-time numeric values of every instrument.  Counters and gauges
  // appear under their own names; each histogram (cumulative and sliding)
  // contributes <name>.count, <name>.p50, <name>.p95, and <name>.p99, so
  // the trace exporter's embedded "metrics" snapshot and telemetry extras
  // carry latency data instead of dropping it.
  std::map<std::string, double> SnapshotScalars() const;

  // Full bucket state of every histogram, cumulative and sliding (sliding
  // windows are merged as of now).  The Prometheus exposition writer
  // (obs/prometheus.h) is the main consumer.
  std::map<std::string, HistogramSnapshot> SnapshotHistograms() const;

  // Typed point-in-time views for sinks that must distinguish instrument
  // kinds (the Prometheus writer emits counters and gauges as different
  // metric families).
  std::map<std::string, int64_t> SnapshotCounters() const;
  std::map<std::string, double> SnapshotGauges() const;

  // Zeroes every instrument (pointers stay valid).  For tests/benchmarks.
  void Reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<SlidingWindowHistogram>>
      sliding_histograms_;
};

}  // namespace obs
}  // namespace vsan

#endif  // VSAN_OBS_METRICS_H_
