#include "obs/telemetry.h"

#include <cmath>
#include <cstdio>

namespace vsan {
namespace obs {
namespace {

// JSON number: shortest round-trippable form; non-finite values (which JSON
// cannot carry) become null so a reader fails loudly instead of parsing a
// bare `inf` token.
void AppendJsonNumber(double v, std::string* out) {
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double roundtrip;
  std::sscanf(buf, "%lf", &roundtrip);
  for (int precision = 6; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    std::sscanf(shorter, "%lf", &roundtrip);
    if (roundtrip == v) {
      *out += shorter;
      return;
    }
  }
  *out += buf;
}

void AppendJsonKey(const std::string& key, std::string* out) {
  *out += '"';
  for (char c : key) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
  *out += "\":";
}

}  // namespace

int64_t ReadPeakRssKb() {
  std::ifstream status("/proc/self/status");
  if (!status) return -1;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    long long kb = -1;
    if (std::sscanf(line.c_str(), "VmHWM: %lld", &kb) == 1) return kb;
    return -1;
  }
  return -1;
}

TelemetryRecorder::TelemetryRecorder(const std::string& path)
    : path_(path), out_(path, std::ios::trunc) {
  ok_ = out_.good();
}

void TelemetryRecorder::RecordEpoch(const EpochRecord& record) {
  if (!ok_) return;
  std::string line = "{";
  AppendJsonKey("epoch", &line);
  line += std::to_string(record.epoch);
  line += ",";
  AppendJsonKey("loss", &line);
  AppendJsonNumber(record.loss, &line);
  line += ",";
  AppendJsonKey("wall_ms", &line);
  AppendJsonNumber(record.wall_ms, &line);
  line += ",";
  AppendJsonKey("batches", &line);
  line += std::to_string(record.batches);
  line += ",";
  AppendJsonKey("step", &line);
  line += std::to_string(record.step);
  if (record.wall_ms > 0.0) {
    line += ",";
    AppendJsonKey("steps_per_sec", &line);
    AppendJsonNumber(record.batches / (record.wall_ms / 1e3), &line);
  }
  if (record.grad_norm >= 0.0) {
    line += ",";
    AppendJsonKey("grad_norm", &line);
    AppendJsonNumber(record.grad_norm, &line);
  }
  if (record.learning_rate >= 0.0) {
    line += ",";
    AppendJsonKey("lr", &line);
    AppendJsonNumber(record.learning_rate, &line);
  }
  for (const auto& [key, value] : record.extras) {
    line += ",";
    AppendJsonKey(key, &line);
    AppendJsonNumber(value, &line);
  }
  // Sampled at write time rather than passed in: every epoch line carries
  // the process high-water mark with no train-loop plumbing.
  const int64_t peak_rss_kb = ReadPeakRssKb();
  if (peak_rss_kb >= 0) {
    line += ",";
    AppendJsonKey("peak_rss_kb", &line);
    line += std::to_string(peak_rss_kb);
  }
  line += "}\n";

  std::lock_guard<std::mutex> lock(mu_);
  out_ << line;
  out_.flush();
  ++records_;
}

}  // namespace obs
}  // namespace vsan
