#include "obs/prometheus.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace vsan {
namespace obs {
namespace {

std::string FormatValue(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// One histogram family: cumulative le-buckets, _sum, _count, and the
// interpolated headline quantiles as sibling gauge families.
void WriteHistogram(const std::string& raw_name,
                    const HistogramSnapshot& snap, std::ostringstream* os) {
  const std::string name = PrometheusName(raw_name);
  std::string window_label;
  if (snap.window_ns > 0) {
    window_label =
        "window=\"" + FormatValue(snap.window_ns / 1e9) + "s\"";
  }
  *os << "# TYPE " << name << " histogram\n";
  int64_t cumulative = 0;
  for (size_t i = 0; i < snap.bounds.size(); ++i) {
    cumulative += snap.buckets[i];
    *os << name << "_bucket{le=\"" << FormatValue(snap.bounds[i]) << "\""
        << (window_label.empty() ? "" : "," + window_label) << "} "
        << cumulative << "\n";
  }
  cumulative += snap.buckets.back();
  *os << name << "_bucket{le=\"+Inf\""
      << (window_label.empty() ? "" : "," + window_label) << "} "
      << cumulative << "\n";
  *os << name << "_sum " << FormatValue(snap.sum) << "\n";
  *os << name << "_count " << snap.count << "\n";
  for (const auto& [suffix, p] :
       {std::pair<const char*, double>{"_p50", 50.0},
        {"_p95", 95.0},
        {"_p99", 99.0}}) {
    *os << "# TYPE " << name << suffix << " gauge\n";
    *os << name << suffix << " " << FormatValue(snap.Percentile(p)) << "\n";
  }
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "vsan_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string WritePrometheusText(const MetricsRegistry& registry) {
  std::ostringstream os;
  for (const auto& [name, value] : registry.SnapshotCounters()) {
    const std::string pname = PrometheusName(name) + "_total";
    os << "# TYPE " << pname << " counter\n";
    os << pname << " " << value << "\n";
  }
  for (const auto& [name, value] : registry.SnapshotGauges()) {
    const std::string pname = PrometheusName(name);
    os << "# TYPE " << pname << " gauge\n";
    os << pname << " " << FormatValue(value) << "\n";
  }
  for (const auto& [name, snap] : registry.SnapshotHistograms()) {
    WriteHistogram(name, snap, &os);
  }
  return os.str();
}

bool ParsePrometheusText(const std::string& text,
                         std::vector<PrometheusSample>* samples,
                         std::map<std::string, std::string>* types,
                         std::string* error) {
  samples->clear();
  if (types != nullptr) types->clear();
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = message + " at line " + std::to_string(line_no);
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++line_no;
    size_t pos = line.find_first_not_of(" \t");
    if (pos == std::string::npos) continue;
    if (line[pos] == '#') {
      // Only `# TYPE <name> <type>` comments carry structure.
      std::istringstream comment(line.substr(pos + 1));
      std::string keyword, name, type;
      if (comment >> keyword >> name >> type && keyword == "TYPE" &&
          types != nullptr) {
        (*types)[name] = type;
      }
      continue;
    }
    PrometheusSample sample;
    // Metric name: [a-zA-Z_:][a-zA-Z0-9_:]*
    const size_t name_start = pos;
    while (pos < line.size()) {
      const char c = line[pos];
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      c == '_' || c == ':' ||
                      (pos > name_start && c >= '0' && c <= '9');
      if (!ok) break;
      ++pos;
    }
    if (pos == name_start) return fail("expected metric name");
    sample.name = line.substr(name_start, pos - name_start);
    if (pos < line.size() && line[pos] == '{') {
      ++pos;
      while (pos < line.size() && line[pos] != '}') {
        while (pos < line.size() && (line[pos] == ' ' || line[pos] == ',')) {
          ++pos;
        }
        const size_t key_start = pos;
        while (pos < line.size() && line[pos] != '=') ++pos;
        if (pos >= line.size()) return fail("unterminated label");
        const std::string key = line.substr(key_start, pos - key_start);
        ++pos;  // '='
        if (pos >= line.size() || line[pos] != '"') {
          return fail("expected label value quote");
        }
        ++pos;
        std::string value;
        while (pos < line.size() && line[pos] != '"') {
          if (line[pos] == '\\' && pos + 1 < line.size()) {
            ++pos;
            if (line[pos] == 'n') {
              value += '\n';
            } else {
              value += line[pos];  // \" and \\ (and anything else verbatim)
            }
          } else {
            value += line[pos];
          }
          ++pos;
        }
        if (pos >= line.size()) return fail("unterminated label value");
        ++pos;  // closing quote
        sample.labels[key] = value;
      }
      if (pos >= line.size()) return fail("unterminated label set");
      ++pos;  // '}'
    }
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
      ++pos;
    }
    if (pos >= line.size()) return fail("missing sample value");
    const std::string value_text = line.substr(pos);
    if (value_text.rfind("+Inf", 0) == 0) {
      sample.value = HUGE_VAL;
    } else if (value_text.rfind("-Inf", 0) == 0) {
      sample.value = -HUGE_VAL;
    } else {
      char* end = nullptr;
      sample.value = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str()) return fail("bad sample value");
    }
    samples->push_back(std::move(sample));
  }
  return true;
}

}  // namespace obs
}  // namespace vsan
