#include "obs/http_server.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <sstream>

#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace vsan {
namespace obs {

#if VSAN_OBS_ENABLED

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Internal Server Error";
  }
}

std::string RenderResponse(const HttpResponse& response) {
  std::ostringstream os;
  os << "HTTP/1.1 " << response.status << " " << StatusText(response.status)
     << "\r\n"
     << "Content-Type: " << response.content_type << "\r\n"
     << "Content-Length: " << response.body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << response.body;
  return os.str();
}

// %XX and '+' decoding for query values (metric names are plain ASCII, but
// a curl user typing /trace?ms=100 should never trip over encoding).
std::string UrlDecode(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]);
      const int lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
      } else {
        out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

// Parses "GET /path?k=v HTTP/1.1" out of a raw header block.  False on
// anything that is not a well-formed request line.
bool ParseRequestLine(const std::string& header, HttpRequest* request) {
  const size_t line_end = header.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? header : header.substr(0, line_end);
  std::istringstream is(line);
  std::string target, version;
  if (!(is >> request->method >> target >> version)) return false;
  if (version.rfind("HTTP/", 0) != 0) return false;
  const size_t q = target.find('?');
  request->path = target.substr(0, q);
  if (request->path.empty() || request->path[0] != '/') return false;
  if (q != std::string::npos) {
    const std::string query = target.substr(q + 1);
    size_t pos = 0;
    while (pos < query.size()) {
      size_t amp = query.find('&', pos);
      if (amp == std::string::npos) amp = query.size();
      const std::string pair = query.substr(pos, amp - pos);
      const size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        if (!pair.empty()) request->query[UrlDecode(pair)] = "";
      } else {
        request->query[UrlDecode(pair.substr(0, eq))] =
            UrlDecode(pair.substr(eq + 1));
      }
      pos = amp + 1;
    }
  }
  return true;
}

// Content-Length of a raw header block: -1 when the header is absent
// (RFC 9110: no Content-Length and no Transfer-Encoding means no body),
// -2 when present but unparsable.  Field names are case-insensitive;
// values are plain digits.
int64_t ParseContentLength(const std::string& header) {
  size_t pos = header.find("\r\n");
  while (pos != std::string::npos && pos + 2 < header.size()) {
    const size_t line_start = pos + 2;
    const size_t line_end = header.find("\r\n", line_start);
    const std::string line = header.substr(
        line_start, line_end == std::string::npos ? std::string::npos
                                                  : line_end - line_start);
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = line.substr(0, colon);
      std::transform(name.begin(), name.end(), name.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (name == "content-length") {
        const char* value = line.c_str() + colon + 1;
        while (*value == ' ' || *value == '\t') ++value;
        char* end = nullptr;
        const long long n = std::strtoll(value, &end, 10);
        return (end == value || n < 0) ? -2 : static_cast<int64_t>(n);
      }
    }
    pos = line_end;
  }
  return -1;
}

}  // namespace

HttpServer::HttpServer() = default;

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& path, HttpHandler handler) {
  VSAN_CHECK(!running()) << "register routes before Start()";
  handlers_[path] = std::move(handler);
}

void HttpServer::HandlePost(const std::string& path, HttpHandler handler) {
  VSAN_CHECK(!running()) << "register routes before Start()";
  post_handlers_[path] = std::move(handler);
}

bool HttpServer::Start(const HttpServerOptions& options) {
  VSAN_CHECK(!running()) << "HttpServer::Start called twice";
  options_ = options;

  // Default routes; a caller's Handle() registration for the same path
  // wins (emplace does not overwrite).
  handlers_.emplace("/healthz", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok\n";
    return response;
  });
  handlers_.emplace("/metrics", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = WritePrometheusText(MetricsRegistry::Global());
    return response;
  });
  handlers_.emplace("/trace", [this](const HttpRequest& request) {
    HttpResponse response;
    int64_t ms = 200;
    const auto it = request.query.find("ms");
    if (it != request.query.end()) {
      ms = std::atoll(it->second.c_str());
      if (ms <= 0 || ms > 10000) {
        response.status = 400;
        response.body = "ms must be in (0, 10000]\n";
        return response;
      }
    }
    // One live-trace window at a time, and never on top of a session some
    // other surface (e.g. vsan_cli --trace_out) already runs: Start/Stop
    // are quiesce-point APIs, so stealing an active session would corrupt
    // the other owner's collection.
    std::unique_lock<std::mutex> lock(trace_mu_, std::try_to_lock);
    if (!lock.owns_lock() || Tracer::Global().enabled()) {
      response.status = 409;
      response.body = "a trace session is already active\n";
      return response;
    }
    Tracer::Global().StartSession({});
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    Tracer::Global().StopSession();
    const std::map<std::string, double> metrics =
        MetricsRegistry::Global().SnapshotScalars();
    std::ostringstream os;
    WriteChromeTrace(Tracer::Global().Collect(), os, &metrics);
    response.content_type = "application/json";
    response.body = os.str();
    return response;
  });

  if (!listener_.Listen(options_.port, options_.bind_any)) {
    VSAN_LOG_WARNING << "http: cannot listen on port " << options_.port;
    return false;
  }
  port_ = listener_.port();
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  const int handler_threads = std::max(1, options_.handler_threads);
  handler_threads_.reserve(static_cast<size_t>(handler_threads));
  for (int i = 0; i < handler_threads; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  return true;
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Wake the blocked accept() with a throwaway self-connection instead of
  // closing the fd under it — the listener is only touched from this
  // thread once the accept loop has joined, so there is no cross-thread
  // fd mutation for TSAN to mind.
  { Socket wake = TcpConnect("127.0.0.1", port_); }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_cv_.notify_all();
  }
  for (std::thread& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  handler_threads_.clear();
  listener_.Close();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    pending_.clear();
  }
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Socket conn = listener_.Accept();
    if (stopping_.load(std::memory_order_acquire)) break;  // wake-up dummy
    if (!conn.valid()) continue;
    std::lock_guard<std::mutex> lock(queue_mu_);
    pending_.push_back(std::move(conn));
    queue_cv_.notify_one();
  }
}

void HttpServer::HandlerLoop() {
  for (;;) {
    Socket conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !pending_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (pending_.empty()) return;  // stopping
      conn = std::move(pending_.front());
      pending_.pop_front();
    }
    ServeConnection(std::move(conn));
  }
}

void HttpServer::ServeConnection(Socket conn) {
  static Counter* requests =
      MetricsRegistry::Global().GetCounter("http.requests");
  static Counter* errors = MetricsRegistry::Global().GetCounter("http.errors");
  static SlidingWindowHistogram* latency =
      MetricsRegistry::Global().GetSlidingHistogram(
          "http.request_us", ExponentialBuckets(1.0, 2.0, 22));
  const auto start = std::chrono::steady_clock::now();

  conn.SetRecvTimeout(options_.recv_timeout_ms);
  conn.SetSendTimeout(options_.send_timeout_ms);
  // Read until the end of the header block; only POST requests carry a
  // body, read afterwards up to Content-Length.
  std::string raw;
  char buf[4096];
  bool complete = false;
  size_t header_end = std::string::npos;
  while (raw.size() < (1 << 14)) {
    const int64_t n = conn.Recv(buf, sizeof(buf));
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
    header_end = raw.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      complete = true;
      break;
    }
  }

  HttpResponse response;
  HttpRequest request;
  if (!complete && raw.size() >= (1 << 14)) {
    response.status = 431;
    response.body = "header too large\n";
  } else if (raw.empty() || !ParseRequestLine(raw, &request)) {
    response.status = 400;
    response.body = "malformed request\n";
  } else if (request.method == "GET") {
    const auto it = handlers_.find(request.path);
    if (it == handlers_.end()) {
      response.status = 404;
      response.body = "not found\n";
    } else {
      response = it->second(request);
    }
  } else if (request.method == "POST") {
    const auto it = post_handlers_.find(request.path);
    // An absent Content-Length is a body-less POST (`curl -X POST /reload`);
    // a present-but-garbled one is a client bug worth rejecting loudly.
    const int64_t parsed_length =
        ParseContentLength(raw.substr(0, header_end + 2));
    const int64_t content_length = parsed_length == -1 ? 0 : parsed_length;
    if (it == post_handlers_.end()) {
      // No POST route for this path: 405 whether or not a GET route
      // exists, so monitoring paths never accept mutations.
      response.status = 405;
      response.body = "method not allowed\n";
    } else if (content_length < 0) {
      response.status = 400;
      response.body = "malformed Content-Length\n";
    } else if (content_length > options_.max_body_bytes) {
      response.status = 413;
      response.body = "body too large\n";
    } else {
      // Bytes past the header block already read belong to the body.
      request.body = raw.substr(header_end + 4);
      bool body_complete = true;
      while (static_cast<int64_t>(request.body.size()) < content_length) {
        const int64_t n = conn.Recv(buf, sizeof(buf));
        if (n <= 0) {
          body_complete = false;
          break;
        }
        request.body.append(buf, static_cast<size_t>(n));
      }
      if (!body_complete) {
        response.status = 400;
        response.body = "truncated body\n";
      } else {
        request.body.resize(static_cast<size_t>(content_length));
        response = it->second(request);
      }
    }
  } else {
    response.status = 405;
    response.body = "method not allowed\n";
  }

  requests->Increment();
  if (response.status >= 400) errors->Increment();
  const std::string rendered = RenderResponse(response);
  int64_t truncate_to = 0;
  if (fault::ShouldResetSocketSend(&truncate_to)) {
    // Chaos tap: cut the response short and slam the connection — the
    // client sees a mid-response reset, exactly what a dying proxy or
    // kernel RST delivers.  The daemon itself must not care.
    const size_t n = std::min(rendered.size(),
                              static_cast<size_t>(std::max<int64_t>(
                                  truncate_to, 0)));
    if (n > 0) conn.SendAll(rendered.data(), n);
    conn.Close();
  } else {
    conn.SendAll(rendered);
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  latency->Observe(std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count());
}

#endif  // VSAN_OBS_ENABLED

namespace {

// Shared request/response round trip for the two clients: sends `request`,
// reads to close, parses the status line and splits off the body.
bool HttpRoundTrip(const std::string& host, int port,
                   const std::string& request, int* status,
                   std::string* body) {
  Socket conn = TcpConnect(host, port);
  if (!conn.valid()) return false;
  conn.SetRecvTimeout(30000);
  if (!conn.SendAll(request)) return false;
  std::string raw;
  if (!conn.RecvUntilClosed(&raw)) return false;
  // "HTTP/1.1 200 OK\r\n...\r\n\r\n<body>"
  if (raw.rfind("HTTP/", 0) != 0) return false;
  const size_t space = raw.find(' ');
  if (space == std::string::npos) return false;
  const int parsed_status = std::atoi(raw.c_str() + space + 1);
  if (parsed_status < 100) return false;
  if (status != nullptr) *status = parsed_status;
  if (body != nullptr) {
    const size_t header_end = raw.find("\r\n\r\n");
    *body = header_end == std::string::npos ? std::string()
                                            : raw.substr(header_end + 4);
  }
  return true;
}

}  // namespace

bool HttpPost(const std::string& host, int port, const std::string& path,
              const std::string& request_body, const std::string& content_type,
              int* status, std::string* response_body) {
  const std::string request =
      StrCat("POST ", path, " HTTP/1.1\r\nHost: ", host,
             "\r\nContent-Type: ", content_type,
             "\r\nContent-Length: ", request_body.size(),
             "\r\nConnection: close\r\n\r\n", request_body);
  return HttpRoundTrip(host, port, request, status, response_body);
}

bool HttpGet(const std::string& host, int port, const std::string& path,
             int* status, std::string* body) {
  const std::string request = StrCat("GET ", path, " HTTP/1.1\r\nHost: ",
                                     host, "\r\nConnection: close\r\n\r\n");
  return HttpRoundTrip(host, port, request, status, body);
}

}  // namespace obs
}  // namespace vsan
