#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "obs/metrics.h"

namespace vsan {
namespace obs {
namespace {

// Which session the calling thread's cached buffer belongs to.  A stale
// session id forces re-registration, so a buffer freed by StartSession() is
// never written again.
struct TlsSlot {
  uint64_t session = 0;  // 0 = never registered (session ids start at 1)
  Tracer::ThreadBuffer* buffer = nullptr;
};
thread_local TlsSlot t_slot;

void AppendJsonEscaped(const char* s, std::string* out) {
  for (const char* p = s; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += static_cast<char>(c);
        }
    }
  }
}

}  // namespace

const char* SpanCategoryName(SpanCategory category) {
  switch (category) {
    case SpanCategory::kKernel:
      return "kernel";
    case SpanCategory::kAutograd:
      return "autograd";
    case SpanCategory::kData:
      return "data";
    case SpanCategory::kEval:
      return "eval";
    case SpanCategory::kTrain:
      return "train";
    case SpanCategory::kPool:
      return "pool";
    case SpanCategory::kModel:
      return "model";
    case SpanCategory::kAlloc:
      return "alloc";
    case SpanCategory::kOther:
      return "other";
  }
  return "other";
}

void Tracer::StartSession(const TracerOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  capacity_ = std::max<int64_t>(1, options.buffer_capacity);
  session_start_ = std::chrono::steady_clock::now();
  session_.fetch_add(1, std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::StopSession() {
  enabled_.store(false, std::memory_order_release);
}

Tracer::ThreadBuffer* Tracer::AcquireBuffer() {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>(
      capacity_, static_cast<uint32_t>(buffers_.size())));
  return buffers_.back().get();
}

void Tracer::RecordSpan(const char* name, SpanCategory category,
                        int64_t start_ns, int64_t dur_ns) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const uint64_t session = session_.load(std::memory_order_acquire);
  TlsSlot& slot = t_slot;
  if (slot.session != session) {
    slot.buffer = AcquireBuffer();
    slot.session = session;
  }
  ThreadBuffer* buffer = slot.buffer;
  const uint64_t n = buffer->count.load(std::memory_order_relaxed);
  SpanEvent& e = buffer->slots[n % buffer->slots.size()];
  e.name = name;
  e.category = category;
  e.tid = buffer->tid;
  e.start_ns = start_ns;
  e.dur_ns = dur_ns;
  buffer->count.store(n + 1, std::memory_order_release);
}

std::vector<SpanEvent> Tracer::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanEvent> out;
  for (const auto& buffer : buffers_) {
    const uint64_t n = buffer->count.load(std::memory_order_acquire);
    const uint64_t cap = buffer->slots.size();
    const uint64_t stored = std::min<uint64_t>(n, cap);
    for (uint64_t i = n - stored; i < n; ++i) {
      out.push_back(buffer->slots[i % cap]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.dur_ns > b.dur_ns;  // parents before children
            });
  return out;
}

int64_t Tracer::DroppedEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    const int64_t n = static_cast<int64_t>(
        buffer->count.load(std::memory_order_acquire));
    const int64_t cap = static_cast<int64_t>(buffer->slots.size());
    dropped += std::max<int64_t>(0, n - cap);
  }
  return dropped;
}

int64_t Tracer::NumThreads() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t active = 0;
  for (const auto& buffer : buffers_) {
    if (buffer->count.load(std::memory_order_acquire) > 0) ++active;
  }
  return active;
}

void WriteChromeTrace(const std::vector<SpanEvent>& events, std::ostream& os,
                      const std::map<std::string, double>* metrics) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  std::string line;
  char num[64];
  bool first = true;
  for (const SpanEvent& e : events) {
    line.clear();
    if (!first) line += ",";
    first = false;
    line += "\n{\"name\":\"";
    AppendJsonEscaped(e.name, &line);
    line += "\",\"cat\":\"";
    line += SpanCategoryName(e.category);
    line += "\",\"ph\":\"X\",\"ts\":";
    // Chrome trace timestamps are microseconds; keep ns resolution in the
    // fractional digits.
    std::snprintf(num, sizeof(num), "%.3f", e.start_ns / 1e3);
    line += num;
    line += ",\"dur\":";
    std::snprintf(num, sizeof(num), "%.3f", e.dur_ns / 1e3);
    line += num;
    line += ",\"pid\":1,\"tid\":";
    std::snprintf(num, sizeof(num), "%u", e.tid);
    line += num;
    line += "}";
    os << line;
  }
  os << "\n]";
  if (metrics != nullptr && !metrics->empty()) {
    os << ",\"metrics\":{";
    first = true;
    for (const auto& [name, value] : *metrics) {
      line.clear();
      if (!first) line += ",";
      first = false;
      line += "\n\"";
      AppendJsonEscaped(name.c_str(), &line);
      line += "\":";
      std::snprintf(num, sizeof(num), "%.6g", value);
      line += num;
      os << line;
    }
    os << "\n}";
  }
  os << "}\n";
}

bool ExportChromeTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) return false;
  const std::map<std::string, double> metrics =
      MetricsRegistry::Global().SnapshotScalars();
  WriteChromeTrace(Tracer::Global().Collect(), out, &metrics);
  return out.good();
}

std::map<std::string, SpanAggregate> AggregateByCategory(
    const std::vector<SpanEvent>& events) {
  std::map<std::string, SpanAggregate> totals;
  for (const SpanEvent& e : events) {
    SpanAggregate& agg = totals[SpanCategoryName(e.category)];
    ++agg.count;
    agg.total_ns += e.dur_ns;
  }
  return totals;
}

std::map<std::string, SpanAggregate> AggregateByName(
    const std::vector<SpanEvent>& events) {
  std::map<std::string, SpanAggregate> totals;
  for (const SpanEvent& e : events) {
    SpanAggregate& agg = totals[e.name];
    ++agg.count;
    agg.total_ns += e.dur_ns;
  }
  return totals;
}

}  // namespace obs
}  // namespace vsan
