#ifndef VSAN_OBS_TELEMETRY_H_
#define VSAN_OBS_TELEMETRY_H_

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

// Training telemetry sink: one JSON object per epoch, appended as a JSONL
// line, so a run can be tailed live and diffed across commits.  The train
// loops fill an EpochRecord and models add loss-specific terms through
// `extras` (VSAN: reconstruction vs KL term and the current annealed beta
// of Eq. 20 — the signals that expose posterior collapse).

namespace vsan {
namespace obs {

struct EpochRecord {
  int32_t epoch = 0;
  double loss = 0.0;     // mean per-batch training loss
  double wall_ms = 0.0;  // epoch wall time
  int64_t batches = 0;
  int64_t step = 0;  // global optimizer step count after this epoch
  // Mean pre-clip global gradient norm over the epoch's steps (the return
  // value of Optimizer::ClipGradNorm); negative = not measured.
  double grad_norm = -1.0;
  double learning_rate = -1.0;  // negative = not reported
  // Loss-specific terms, e.g. {"recon", ...}, {"kl", ...}, {"beta", ...}.
  std::vector<std::pair<std::string, double>> extras;
};

// Process peak resident-set size (VmHWM from /proc/self/status) in kB, or
// -1 where unavailable (non-Linux).  Monotone over a run, so per-epoch
// samples show when the high-water mark was set — a pooled-allocator
// regression (arena growth, leaked tape) moves this line.
int64_t ReadPeakRssKb();

// Appends JSONL records to a file.  Thread-safe; writes are flushed per
// record so a crashed run keeps every completed epoch.
class TelemetryRecorder {
 public:
  explicit TelemetryRecorder(const std::string& path);

  bool ok() const { return ok_; }
  const std::string& path() const { return path_; }
  int64_t records_written() const { return records_; }

  void RecordEpoch(const EpochRecord& record);

 private:
  std::string path_;
  bool ok_;
  std::mutex mu_;
  std::ofstream out_;
  int64_t records_ = 0;
};

}  // namespace obs
}  // namespace vsan

#endif  // VSAN_OBS_TELEMETRY_H_
