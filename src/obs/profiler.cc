#include "obs/profiler.h"

#if VSAN_OBS_ENABLED

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <string.h>
#include <sys/time.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "util/logging.h"

namespace vsan {
namespace obs {
namespace {

constexpr int kHandlerSkipMax = 3;  // handler + signal trampoline frames

struct sigaction g_previous_action;
bool g_have_previous_action = false;

// Demangles and caches one program counter.  Runs at Stop() time only —
// never in the signal handler — so allocation is fine here.
std::string SymbolForPc(void* pc, bool* resolved) {
  Dl_info info;
  // backtrace() records return addresses; subtract one byte so a call as
  // the last instruction of a function does not attribute to its neighbor.
  void* lookup = static_cast<char*>(pc) - 1;
  if (dladdr(lookup, &info) != 0 && info.dli_sname != nullptr) {
    *resolved = true;
    int demangle_status = 0;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr,
                                          &demangle_status);
    std::string name =
        demangle_status == 0 && demangled != nullptr ? demangled
                                                     : info.dli_sname;
    std::free(demangled);
    // Folded-stack separators are ';' and ' '; keep frames on one token.
    for (char& c : name) {
      if (c == ';') c = ':';
      if (c == ' ') c = '_';
    }
    return name;
  }
  *resolved = false;
  // Module+offset pseudo-frame: still distinguishes hot static functions
  // even when the dynamic symbol table cannot name them.
  char buf[256];
  if (dladdr(lookup, &info) != 0 && info.dli_fname != nullptr) {
    const char* base = strrchr(info.dli_fname, '/');
    base = base != nullptr ? base + 1 : info.dli_fname;
    std::snprintf(buf, sizeof(buf), "[%s+0x%zx]", base,
                  static_cast<size_t>(static_cast<char*>(pc) -
                                      static_cast<char*>(info.dli_fbase)));
  } else {
    std::snprintf(buf, sizeof(buf), "[0x%zx]",
                  reinterpret_cast<size_t>(pc));
  }
  return buf;
}

}  // namespace

SamplingProfiler& SamplingProfiler::Global() {
  static SamplingProfiler* profiler = new SamplingProfiler();
  return *profiler;
}

void SamplingProfiler::SignalHandler(int /*signo*/) {
  SamplingProfiler& p = Global();
  p.in_handler_.fetch_add(1, std::memory_order_acquire);
  if (p.capturing_.load(std::memory_order_relaxed)) {
    void* frames[256];
    const int depth = std::min(p.options_.max_stack_depth,
                               static_cast<int>(sizeof(frames) / sizeof(*frames)));
    // Async-signal-safe by construction: backtrace() allocates only on its
    // first call, which Start() primes before arming the timer.
    const int n = backtrace(frames, depth);
    if (n > 0) {
      const int64_t need = n + 1;
      const int64_t idx = p.pos_.fetch_add(need, std::memory_order_relaxed);
      if (idx + need <= static_cast<int64_t>(p.buffer_.size())) {
        p.buffer_[static_cast<size_t>(idx)] =
            reinterpret_cast<void*>(static_cast<intptr_t>(n));
        for (int i = 0; i < n; ++i) {
          p.buffer_[static_cast<size_t>(idx) + 1 + i] = frames[i];
        }
      } else {
        p.dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  p.in_handler_.fetch_sub(1, std::memory_order_release);
}

bool SamplingProfiler::Start(const ProfilerOptions& options) {
  if (running_.load(std::memory_order_acquire)) return false;
  options_ = options;
  if (options_.hz <= 0) options_.hz = 99;
  options_.max_stack_depth = std::max(2, std::min(options_.max_stack_depth, 256));
  buffer_.assign(static_cast<size_t>(std::max<int64_t>(
                     options_.buffer_words, options_.max_stack_depth + 1)),
                 nullptr);
  pos_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  folded_.clear();
  stats_ = {};

  // Prime backtrace(): its first call may dlopen/allocate, which must not
  // happen inside the signal handler.
  void* prime[4];
  backtrace(prime, 4);

  struct sigaction action;
  memset(&action, 0, sizeof(action));
  action.sa_handler = &SamplingProfiler::SignalHandler;
  action.sa_flags = SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (sigaction(SIGPROF, &action, &g_previous_action) != 0) {
    VSAN_LOG_WARNING << "profiler: sigaction(SIGPROF) failed";
    return false;
  }
  g_have_previous_action = true;

  capturing_.store(true, std::memory_order_release);
  running_.store(true, std::memory_order_release);

  struct itimerval timer;
  timer.it_interval.tv_sec = 0;
  timer.it_interval.tv_usec = static_cast<suseconds_t>(1000000 / options_.hz);
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    VSAN_LOG_WARNING << "profiler: setitimer(ITIMER_PROF) failed";
    capturing_.store(false, std::memory_order_release);
    running_.store(false, std::memory_order_release);
    sigaction(SIGPROF, &g_previous_action, nullptr);
    g_have_previous_action = false;
    return false;
  }
  return true;
}

ProfileStats SamplingProfiler::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return {};

  struct itimerval disarm;
  memset(&disarm, 0, sizeof(disarm));
  setitimer(ITIMER_PROF, &disarm, nullptr);
  capturing_.store(false, std::memory_order_seq_cst);
  // Wait for any handler already past the capturing_ check; its release
  // decrement paired with this acquire spin makes the plain buffer writes
  // visible before we read them.
  while (in_handler_.load(std::memory_order_acquire) > 0) {
    std::this_thread::yield();
  }
  if (g_have_previous_action) {
    sigaction(SIGPROF, &g_previous_action, nullptr);
    g_have_previous_action = false;
  }

  Symbolize();
  return stats_;
}

void SamplingProfiler::Symbolize() {
  const int64_t end =
      std::min(pos_.load(std::memory_order_acquire),
               static_cast<int64_t>(buffer_.size()));
  std::map<void*, std::pair<std::string, bool>> cache;  // pc -> (name, resolved)
  std::map<std::string, int64_t> folded;
  int64_t samples = 0;
  int64_t leaf_resolved = 0;
  int64_t any_resolved = 0;

  int64_t idx = 0;
  while (idx < end) {
    const int n = static_cast<int>(
        reinterpret_cast<intptr_t>(buffer_[static_cast<size_t>(idx)]));
    if (n <= 0 || idx + 1 + n > end) break;  // truncated trailing record
    void** frames = &buffer_[static_cast<size_t>(idx) + 1];
    idx += 1 + n;

    // frames[] is leaf-first and starts inside our handler plus the kernel
    // signal trampoline; skip those so the fold starts at interrupted code.
    int skip = 0;
    while (skip < n && skip < kHandlerSkipMax) {
      auto it = cache.find(frames[skip]);
      if (it == cache.end()) {
        bool pc_resolved = false;
        std::string name = SymbolForPc(frames[skip], &pc_resolved);
        it = cache.emplace(frames[skip], std::make_pair(name, pc_resolved))
                 .first;
      }
      const std::string& name = it->second.first;
      const bool resolved = it->second.second;
      if (name.find("SignalHandler") != std::string::npos ||
          name.find("__restore_rt") != std::string::npos ||
          name.find("killpg") != std::string::npos) {
        ++skip;
        continue;
      }
      // Directly after the handler frame sits the kernel signal
      // trampoline, which glibc's dynamic symbols often cannot name;
      // drop that one unresolved pseudo-frame too.
      if (skip > 0 && !resolved && skip < n - 1) ++skip;
      break;
    }
    if (skip >= n) skip = std::min(n - 1, 2);

    ++samples;
    bool sample_any_resolved = false;
    std::string line;
    // Folded format is root-first; frames[] is leaf-first.
    for (int i = n - 1; i >= skip; --i) {
      auto it = cache.find(frames[i]);
      if (it == cache.end()) {
        bool resolved = false;
        std::string name = SymbolForPc(frames[i], &resolved);
        it = cache.emplace(frames[i], std::make_pair(name, resolved)).first;
      }
      if (it->second.second) {
        sample_any_resolved = true;
        if (i == skip) ++leaf_resolved;
      }
      if (!line.empty()) line += ';';
      line += it->second.first;
    }
    if (sample_any_resolved) ++any_resolved;
    ++folded[line];
  }

  folded_.assign(folded.begin(), folded.end());
  std::sort(folded_.begin(), folded_.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  stats_.samples = samples;
  stats_.dropped = dropped_.load(std::memory_order_relaxed);
  stats_.leaf_symbolized_fraction =
      samples > 0 ? static_cast<double>(leaf_resolved) / samples : 0.0;
  stats_.any_symbolized_fraction =
      samples > 0 ? static_cast<double>(any_resolved) / samples : 0.0;
}

std::string SamplingProfiler::FoldedStacks() const {
  std::ostringstream os;
  for (const auto& [line, count] : folded_) {
    os << line << " " << count << "\n";
  }
  return os.str();
}

bool SamplingProfiler::WriteFolded(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << FoldedStacks();
  return static_cast<bool>(out);
}

}  // namespace obs
}  // namespace vsan

#endif  // VSAN_OBS_ENABLED
