#ifndef VSAN_OBS_JSON_H_
#define VSAN_OBS_JSON_H_

#include <string>
#include <vector>

// Minimal JSON reader for the observability round-trips: parsing back the
// Chrome traces and telemetry JSONL this library itself writes (tools/
// trace_summary, tests).  Full JSON grammar, no streaming, values copied
// into a tree — fine for trace-sized inputs, not a general-purpose parser.

namespace vsan {
namespace obs {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  // First member with `key`, or nullptr.
  const JsonValue* Find(const std::string& key) const;
  // Member `key` coerced to double; `def` when absent or not a number.
  double NumberOr(const std::string& key, double def) const;
  // Member `key` coerced to string; `def` when absent or not a string.
  std::string StringOr(const std::string& key,
                       const std::string& def) const;
};

// Parses exactly one JSON document (trailing whitespace allowed).  On
// failure returns false and describes the problem in `*error`.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

}  // namespace obs
}  // namespace vsan

#endif  // VSAN_OBS_JSON_H_
