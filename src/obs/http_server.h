#ifndef VSAN_OBS_HTTP_SERVER_H_
#define VSAN_OBS_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"  // VSAN_OBS_ENABLED
#include "util/socket.h"

// Embedded HTTP/1.1 endpoint for the live observability plane: a blocking
// accept loop plus a small set of handler threads serving
//
//   GET /metrics      Prometheus text exposition of MetricsRegistry
//                     (counters, gauges, histogram buckets + quantiles)
//   GET /healthz      200 "ok" liveness probe
//   GET /trace?ms=N   records a live span window of N ms (default 200,
//                     cap 10000) and returns Chrome-trace JSON; 409 when a
//                     trace session is already active (e.g. --trace_out)
//
// plus any routes registered with Handle().  GET-only, Connection: close
// per response — a monitoring surface, not a general web server; the
// listener/connection substrate lives in util/socket.h so the future
// serving daemon can reuse it.
//
// Requests are intentionally handled on dedicated threads rather than the
// global ThreadPool: ParallelFor is a barrier primitive, and on a
// single-core host the global pool has no workers to park a blocking
// accept loop on.  Handler threads only ever read atomic snapshots, so
// scrapes never contend with training compute.
//
// Under -DVSAN_OBS=OFF the server compiles to a no-op (Start() refuses,
// nothing listens) just like the tracer macro.

namespace vsan {
namespace obs {

struct HttpRequest {
  std::string method;
  std::string path;                                // without query string
  std::map<std::string, std::string> query;        // decoded ?k=v pairs
  std::string body;                                // POST payload (else empty)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  int port = 0;            // 0 = ephemeral (read back via port())
  bool bind_any = false;   // default loopback-only
  int handler_threads = 3;
  int64_t recv_timeout_ms = 5000;  // per-connection header-read timeout
  // Send-side twin (SO_SNDTIMEO): a client that stops draining its receive
  // window makes the response send fail instead of pinning the handler
  // thread indefinitely.
  int64_t send_timeout_ms = 5000;
  // Largest accepted POST body; bigger requests get 413.  A recommendation
  // request is a few hundred bytes, so the default is generous.
  int64_t max_body_bytes = 1 << 20;
};

#if VSAN_OBS_ENABLED

class HttpServer {
 public:
  HttpServer();
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers `handler` for an exact path.  Must be called before Start().
  void Handle(const std::string& path, HttpHandler handler);

  // Registers `handler` for POST requests to an exact path (request.body
  // carries the payload).  GET and POST routes are separate namespaces, so
  // a POST to a GET-only path (e.g. /metrics) stays 405 — the serving
  // daemon mounts POST /recommend here without widening the monitoring
  // routes.  Must be called before Start().
  void HandlePost(const std::string& path, HttpHandler handler);

  // Binds, installs the default routes, and spawns the accept loop +
  // handler threads.  False when the port cannot be bound.
  bool Start(const HttpServerOptions& options = {});

  // Unblocks the accept loop, drains handler threads, closes the listener.
  // Idempotent; also runs on destruction.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  int port() const { return port_; }
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void HandlerLoop();
  void ServeConnection(Socket conn);

  HttpServerOptions options_;
  ListenSocket listener_;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> requests_served_{0};
  std::thread accept_thread_;
  std::vector<std::thread> handler_threads_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Socket> pending_;
  std::map<std::string, HttpHandler> handlers_;
  std::map<std::string, HttpHandler> post_handlers_;
  std::mutex trace_mu_;  // serializes /trace sessions
};

#else  // VSAN_OBS_ENABLED == 0: header-only no-op (nothing ever listens)

class HttpServer {
 public:
  HttpServer() = default;
  void Handle(const std::string&, HttpHandler) {}
  void HandlePost(const std::string&, HttpHandler) {}
  bool Start(const HttpServerOptions& = {}) { return false; }
  void Stop() {}
  bool running() const { return false; }
  int port() const { return 0; }
  int64_t requests_served() const { return 0; }
};

#endif  // VSAN_OBS_ENABLED

// Minimal HTTP/1.1 GET client for vsan_top, tests, and scripts: fetches
// `path` from host:port, filling `*status` and `*body` from the response.
// False on connect/transport failure or an unparsable status line.  Always
// compiled (it is a client; the VSAN_OBS switch only removes the server).
bool HttpGet(const std::string& host, int port, const std::string& path,
             int* status, std::string* body);

// Minimal HTTP/1.1 POST client (the load generator's and the serve tests'
// request path): sends `request_body` as `content_type` to host:port/path,
// fills `*status` and `*response_body`.  Same failure semantics as HttpGet.
bool HttpPost(const std::string& host, int port, const std::string& path,
              const std::string& request_body, const std::string& content_type,
              int* status, std::string* response_body);

}  // namespace obs
}  // namespace vsan

#endif  // VSAN_OBS_HTTP_SERVER_H_
