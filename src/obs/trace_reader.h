#ifndef VSAN_OBS_TRACE_READER_H_
#define VSAN_OBS_TRACE_READER_H_

#include <cstdint>
#include <istream>
#include <map>
#include <string>
#include <vector>

// Reads back the Chrome trace-event JSON written by WriteChromeTrace and
// folds it into per-category / per-name time tables — the analysis half of
// the tracer, shared by tools/trace_summary.cc and the exporter round-trip
// tests.

namespace vsan {
namespace obs {

// One "X" (complete) event parsed back from a trace file.
struct ParsedSpan {
  std::string name;
  std::string category;
  int64_t tid = 0;
  double ts_us = 0.0;   // start, microseconds
  double dur_us = 0.0;  // duration, microseconds
};

// Parses a Chrome trace (either the {"traceEvents": [...]} wrapper this
// library writes or a bare event array).  Returns false with `*error` set
// on malformed input; non-"X" phases are skipped.  The 4-argument overload
// also fills `*metrics` from the optional top-level "metrics" object the
// exporter embeds (empty when the trace has none).
bool ReadChromeTrace(std::istream& in, std::vector<ParsedSpan>* spans,
                     std::string* error);
bool ReadChromeTrace(std::istream& in, std::vector<ParsedSpan>* spans,
                     std::map<std::string, double>* metrics,
                     std::string* error);

struct SpanTotals {
  int64_t count = 0;
  double total_us = 0.0;
  // Nearest-rank duration percentiles over the group's spans, filled by
  // SummarizeTrace.  With one span all three equal its duration.
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

// Per-trace summary used for CI diffing and wall-time attribution.
struct TraceSummary {
  double wall_us = 0.0;  // max(ts + dur) - min(ts) over all spans
  // Fraction of the busiest thread's wall covered by the union of its span
  // intervals.  Nested spans do not double-count (interval union), so this
  // is "how much of the traced wall-time is attributed to a named span".
  double coverage = 0.0;
  std::map<std::string, SpanTotals> by_category;
  std::map<std::string, SpanTotals> by_name;
};

TraceSummary SummarizeTrace(const std::vector<ParsedSpan>& spans);

}  // namespace obs
}  // namespace vsan

#endif  // VSAN_OBS_TRACE_READER_H_
