#ifndef VSAN_OBS_TRACE_H_
#define VSAN_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

// Low-overhead scoped-span tracer.
//
// Threads record completed spans into per-thread ring buffers (single
// producer each, no locks on the hot path); a collection pass snapshots all
// buffers and can export them as Chrome trace-event JSON loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Cost model: with tracing compiled in but no session running, a
// VSAN_TRACE_SPAN costs one relaxed atomic load and a branch.  With a
// session running it costs two steady_clock reads plus one ring-buffer
// store.  Compiled out entirely (VSAN_OBS_ENABLED=0, set by the CMake
// option VSAN_OBS=OFF) the macro expands to nothing.
//
// Concurrency contract: span emission is thread-safe from any number of
// threads (each writes only its own buffer).  StartSession(), StopSession(),
// and Collect() must be called at quiesce points — no spans in flight — as
// ParallelFor callers naturally are after the call returns.

// The CMake option VSAN_OBS=OFF defines VSAN_OBS_ENABLED=0 project-wide.
#ifndef VSAN_OBS_ENABLED
#define VSAN_OBS_ENABLED 1
#endif

namespace vsan {
namespace obs {

// Coarse attribution buckets; the exporter writes them as the Chrome trace
// "cat" field so a trace can be filtered per subsystem.
enum class SpanCategory : uint8_t {
  kKernel,    // GEMM pack/micro-kernel loops, elementwise sweeps
  kAutograd,  // forward op bodies and backward closures
  kData,      // batching, loading
  kEval,      // ranking evaluation
  kTrain,     // epoch/step structure of a training loop
  kPool,      // ThreadPool shard bodies and queue waits
  kModel,     // nn layer forwards (attention blocks, ...)
  kAlloc,     // tensor-pool slow paths (system new[]/delete[], arena trips)
  kOther,
};

const char* SpanCategoryName(SpanCategory category);

// One completed span.  `name` must point at storage that outlives the
// session (string literals and other static strings).
struct SpanEvent {
  const char* name = nullptr;
  SpanCategory category = SpanCategory::kOther;
  uint32_t tid = 0;      // dense per-session thread id
  int64_t start_ns = 0;  // relative to session start
  int64_t dur_ns = 0;
};

struct TracerOptions {
  // Ring capacity per thread, in events; the oldest events are overwritten
  // once a thread wraps (DroppedEvents() reports how many).
  int64_t buffer_capacity = 1 << 16;
};

// Process-wide tracer.  All methods are usable before any session starts;
// recording is a no-op until StartSession().
class Tracer {
 public:
  static Tracer& Global() {
    static Tracer tracer;
    return tracer;
  }

  // Discards any previous session's events and starts recording.
  void StartSession(const TracerOptions& options = {});

  // Stops recording; events stay available to Collect() until the next
  // StartSession().
  void StopSession();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Nanoseconds since session start.  Meaningful only while a session is
  // active or stopped-but-not-restarted.
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - session_start_)
        .count();
  }

  // Appends one completed span to the calling thread's buffer.  No-op when
  // no session is running.
  void RecordSpan(const char* name, SpanCategory category, int64_t start_ns,
                  int64_t dur_ns);

  // Snapshot of all recorded events, sorted by start time (ties: longer
  // span first, so parents precede their children).
  std::vector<SpanEvent> Collect() const;

  // Events overwritten by ring wraparound across all threads this session.
  int64_t DroppedEvents() const;

  // Threads that recorded at least one event this session.
  int64_t NumThreads() const;

  // Implementation detail, public only so the thread-local registration
  // slot in trace.cc can name it.
  struct ThreadBuffer {
    ThreadBuffer(int64_t capacity, uint32_t tid)
        : slots(static_cast<size_t>(capacity)), tid(tid) {}
    std::vector<SpanEvent> slots;
    // Total events ever written; slot i of event n is n % slots.size().
    // Written with release order after the slot so Collect() (acquire) sees
    // fully written events from other threads.
    std::atomic<uint64_t> count{0};
    uint32_t tid;
  };

 private:
  Tracer() = default;
  ThreadBuffer* AcquireBuffer();

  std::atomic<bool> enabled_{false};
  // Bumped by StartSession so threads re-register instead of writing into a
  // previous session's (freed) buffer.
  std::atomic<uint64_t> session_{0};
  std::chrono::steady_clock::time_point session_start_{};
  int64_t capacity_ = 1 << 16;
  mutable std::mutex mu_;  // guards buffers_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

// RAII span: times its scope and records on destruction.  Prefer the
// VSAN_TRACE_SPAN macro, which compiles out under VSAN_OBS=OFF.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, SpanCategory category)
      : name_(name), category_(category) {
    Tracer& tracer = Tracer::Global();
    armed_ = tracer.enabled();
    if (armed_) start_ns_ = tracer.NowNs();
  }

  ~ScopedSpan() {
    if (!armed_) return;
    Tracer& tracer = Tracer::Global();
    tracer.RecordSpan(name_, category_, start_ns_, tracer.NowNs() - start_ns_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  SpanCategory category_;
  bool armed_;
  int64_t start_ns_ = 0;
};

// Writes `events` in Chrome trace-event JSON ("X" complete events,
// microsecond timestamps) — the format chrome://tracing and Perfetto load.
// When `metrics` is non-null its entries are embedded as a top-level
// "metrics" object (name -> value); Chrome/Perfetto ignore the extra key,
// but trace_reader surfaces it so trace_summary can report counters (the
// pool.* hit/miss/byte figures) next to the span tables.
void WriteChromeTrace(const std::vector<SpanEvent>& events, std::ostream& os,
                      const std::map<std::string, double>* metrics = nullptr);

// Collects the current session — spans plus a scalar-metrics snapshot from
// MetricsRegistry::Global() — and writes it to `path`.  Returns false on
// I/O failure.
bool ExportChromeTrace(const std::string& path);

// Per-key totals for quick in-process attribution (tests, telemetry).
struct SpanAggregate {
  int64_t count = 0;
  int64_t total_ns = 0;
};
std::map<std::string, SpanAggregate> AggregateByCategory(
    const std::vector<SpanEvent>& events);
std::map<std::string, SpanAggregate> AggregateByName(
    const std::vector<SpanEvent>& events);

}  // namespace obs
}  // namespace vsan

#if VSAN_OBS_ENABLED
#define VSAN_OBS_CONCAT_INNER(a, b) a##b
#define VSAN_OBS_CONCAT(a, b) VSAN_OBS_CONCAT_INNER(a, b)
// Times the enclosing scope:  VSAN_TRACE_SPAN("gemm/pack", kKernel);
// `category` is a bare SpanCategory enumerator name.
#define VSAN_TRACE_SPAN(name, category)                              \
  ::vsan::obs::ScopedSpan VSAN_OBS_CONCAT(vsan_trace_span_,          \
                                          __LINE__)(                 \
      (name), ::vsan::obs::SpanCategory::category)
#else
#define VSAN_TRACE_SPAN(name, category)
#endif

#endif  // VSAN_OBS_TRACE_H_
