#ifndef VSAN_DATA_SPLIT_H_
#define VSAN_DATA_SPLIT_H_

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace vsan {
namespace data {

// One held-out user under strong generalization (Sec. V-A): the first
// `fold_in` fraction of the time-ordered history conditions the model, the
// remaining `holdout` items are the evaluation targets T.
struct HeldOutUser {
  std::vector<int32_t> fold_in;
  std::vector<int32_t> holdout;
};

// Strong-generalization split: training users (full histories) are disjoint
// from validation/test users (fold-in prefix + holdout suffix).
struct StrongSplit {
  SequenceDataset train;
  std::vector<HeldOutUser> validation;
  std::vector<HeldOutUser> test;
};

struct SplitOptions {
  int32_t num_validation_users = 0;
  int32_t num_test_users = 0;
  // Fraction of each held-out user's history used as fold-in (paper: 80%).
  double fold_in_fraction = 0.8;
  // Held-out users need enough history to produce a non-empty fold-in and
  // holdout; users shorter than this stay in the training set.
  int32_t min_heldout_length = 3;
  uint64_t seed = 1;
};

// Partitions users at random into train / validation / test per `options`.
StrongSplit MakeStrongSplit(const SequenceDataset& dataset,
                            const SplitOptions& options);

// Weak-generalization (leave-one-out) protocol, as used by SASRec: every
// user with at least `min_length` items contributes their prefix to
// training, their second-to-last item as the validation target, and their
// last item as the test target.  The paper argues strong generalization is
// more realistic (Sec. V-A); this alternative is provided for
// cross-protocol comparisons.  Shorter users go entirely to training.
StrongSplit MakeLeaveOneOutSplit(const SequenceDataset& dataset,
                                 int32_t min_length = 3);

}  // namespace data
}  // namespace vsan

#endif  // VSAN_DATA_SPLIT_H_
