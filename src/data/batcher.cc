#include "data/batcher.h"

#include <algorithm>
#include <cstring>

#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace vsan {
namespace data {

SequenceBatcher::SequenceBatcher(const SequenceDataset* dataset,
                                 const Options& options)
    : dataset_(dataset), options_(options), rng_(options.seed) {
  VSAN_CHECK_GT(options_.max_len, 0);
  VSAN_CHECK_GT(options_.batch_size, 0);
  VSAN_CHECK_GE(options_.next_k, 1);
  for (int32_t u = 0; u < dataset_->num_users(); ++u) {
    if (dataset_->sequence(u).size() >= 2) user_order_.push_back(u);
  }
  NewEpoch();
}

void SequenceBatcher::NewEpoch() {
  rng_.Shuffle(&user_order_);
  cursor_ = 0;
}

void SequenceBatcher::SaveState(std::string* out) const {
  rng_.SaveState(out);
  const int64_t count = num_training_users();
  out->append(reinterpret_cast<const char*>(&count), sizeof(count));
  out->append(reinterpret_cast<const char*>(user_order_.data()),
              sizeof(int32_t) * user_order_.size());
  out->append(reinterpret_cast<const char*>(&cursor_), sizeof(cursor_));
}

Status SequenceBatcher::RestoreState(const std::string& blob) {
  const size_t expected = Rng::kStateBytes + sizeof(int64_t) +
                          sizeof(int32_t) * user_order_.size() +
                          sizeof(int64_t);
  if (blob.size() != expected) {
    return Status::InvalidArgument(
        StrCat("batcher state: expected ", expected, " bytes, got ",
               blob.size()));
  }
  const char* p = blob.data();
  Status status = rng_.RestoreState(p, Rng::kStateBytes);
  if (!status.ok()) return status;
  p += Rng::kStateBytes;
  int64_t count = 0;
  std::memcpy(&count, p, sizeof(count));
  p += sizeof(count);
  if (count != num_training_users()) {
    return Status::InvalidArgument(
        StrCat("batcher state: saved for ", count, " training users, have ",
               num_training_users()));
  }
  std::memcpy(user_order_.data(), p, sizeof(int32_t) * user_order_.size());
  p += sizeof(int32_t) * user_order_.size();
  int64_t cursor = 0;
  std::memcpy(&cursor, p, sizeof(cursor));
  if (cursor < 0 || cursor > count) {
    return Status::InvalidArgument(
        StrCat("batcher state: cursor ", cursor, " out of range"));
  }
  cursor_ = cursor;
  return Status::Ok();
}

int64_t SequenceBatcher::num_batches() const {
  return (num_training_users() + options_.batch_size - 1) /
         options_.batch_size;
}

std::vector<int32_t> SequenceBatcher::PadSequence(
    const std::vector<int32_t>& seq, int64_t max_len, bool pad_left) {
  std::vector<int32_t> out(max_len, kPaddingItem);
  const int64_t len = static_cast<int64_t>(seq.size());
  const int64_t take = std::min(len, max_len);
  const int64_t offset = pad_left ? max_len - take : 0;
  // Keep the most recent `take` items.
  for (int64_t i = 0; i < take; ++i) {
    out[offset + i] = seq[len - take + i];
  }
  return out;
}

void SequenceBatcher::FillRow(int32_t user, int64_t row,
                              TrainBatch* batch) const {
  const std::vector<int32_t>& seq = dataset_->sequence(user);
  const int64_t n = options_.max_len;
  const int64_t len = static_cast<int64_t>(seq.size());
  // The model sees items [0, len-2] and predicts [1, len-1]; keep the most
  // recent n of those input positions.
  const int64_t input_len = len - 1;
  const int64_t take = std::min(input_len, n);
  const int64_t seq_start = input_len - take;  // first input index used

  const int64_t offset = options_.pad_left ? n - take : 0;
  for (int64_t i = 0; i < take; ++i) {
    const int64_t pos = offset + i;             // row position
    const int64_t s = seq_start + i;            // index into seq
    const int64_t flat = row * n + pos;
    batch->inputs[flat] = seq[s];
    batch->next_targets[flat] = seq[s + 1];
    batch->position_mask[flat] = 1.0f;
    if (options_.next_k > 1) {
      std::vector<int32_t>& set = batch->nextk_targets[flat];
      for (int32_t j = 0; j < options_.next_k && s + 1 + j < len; ++j) {
        set.push_back(seq[s + 1 + j]);
      }
    }
  }
}

bool SequenceBatcher::NextBatch(TrainBatch* batch) {
  VSAN_TRACE_SPAN("data/next_batch", kData);
  if (cursor_ >= num_training_users()) return false;
  const int64_t n = options_.max_len;
  const int64_t rows =
      std::min(options_.batch_size, num_training_users() - cursor_);
  batch->batch_size = rows;
  batch->seq_len = n;
  batch->inputs.assign(rows * n, kPaddingItem);
  batch->next_targets.assign(rows * n, -1);
  batch->position_mask.assign(rows * n, 0.0f);
  batch->nextk_targets.clear();
  if (options_.next_k > 1) batch->nextk_targets.resize(rows * n);
  for (int64_t r = 0; r < rows; ++r) {
    FillRow(user_order_[cursor_ + r], r, batch);
  }
  cursor_ += rows;
  return true;
}

}  // namespace data
}  // namespace vsan
