#include "data/loaders.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace vsan {
namespace data {
namespace {

// Splits `line` on the literal separator `sep` (multi-character allowed).
std::vector<std::string> SplitOn(const std::string& line,
                                 const std::string& sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = line.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(line.substr(start));
      break;
    }
    parts.push_back(line.substr(start, pos - start));
    start = pos + sep.size();
  }
  return parts;
}

bool ParseDouble(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

bool ParseInt64(const std::string& s, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(s.c_str(), &end, 10);
  return end != s.c_str() && *end == '\0';
}

// Counts malformed input lines before the parser gives up on the file, so
// operators can tell "one torn line" from "wrong format entirely".
obs::Counter* BadLinesCounter() {
  return obs::MetricsRegistry::Global().GetCounter("data.bad_lines");
}

Result<std::vector<RawInteraction>> ParseWithSeparator(
    std::istream& in, const std::string& sep, bool skip_header,
    bool numeric_ids, const std::string& source) {
  std::vector<RawInteraction> out;
  std::string line;
  int64_t line_no = 0;
  // Error context is "<source>:<line>: ..." so a bad record in a multi-file
  // ingest pipeline is attributable without re-running.
  auto bad = [&](const std::string& detail) {
    BadLinesCounter()->Increment();
    return Status::InvalidArgument(
        StrCat(source, ":", line_no, ": ", detail));
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (skip_header && line_no == 1 &&
        line.find("user") != std::string::npos) {
      continue;
    }
    const std::vector<std::string> parts = SplitOn(line, sep);
    if (parts.size() != 4) {
      return bad(StrCat("expected 4 fields, got ", parts.size()));
    }
    RawInteraction r;
    r.user = parts[0];
    r.item = parts[1];
    if (r.user.empty() || r.item.empty()) {
      return bad("empty user or item id");
    }
    if (numeric_ids) {
      int64_t id = 0;
      if (!ParseInt64(r.user, &id) || id < 0) {
        return bad(StrCat("non-numeric user id '", r.user, "'"));
      }
      if (!ParseInt64(r.item, &id) || id < 0) {
        return bad(StrCat("non-numeric item id '", r.item, "'"));
      }
    }
    if (!ParseDouble(parts[2], &r.rating) || !std::isfinite(r.rating)) {
      return bad(StrCat("bad rating '", parts[2], "'"));
    }
    if (!ParseInt64(parts[3], &r.timestamp) || r.timestamp < 0) {
      return bad(StrCat("bad timestamp '", parts[3],
                        "' (must be a non-negative integer)"));
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace

Result<std::vector<RawInteraction>> ParseMovieLensRatings(
    std::istream& in, const std::string& source) {
  // MovieLens ids are numeric; anything else is a corrupt or misformatted
  // file.
  return ParseWithSeparator(in, "::", /*skip_header=*/false,
                            /*numeric_ids=*/true, source);
}

Result<std::vector<RawInteraction>> ParseAmazonRatingsCsv(
    std::istream& in, const std::string& source) {
  return ParseWithSeparator(in, ",", /*skip_header=*/true,
                            /*numeric_ids=*/false, source);
}

Result<SequenceDataset> Preprocess(std::vector<RawInteraction> interactions,
                                   const PreprocessOptions& options) {
  // 1. Binarize explicit feedback.
  std::vector<RawInteraction> kept;
  kept.reserve(interactions.size());
  for (RawInteraction& r : interactions) {
    if (r.rating >= options.min_rating) kept.push_back(std::move(r));
  }
  if (kept.empty()) {
    return Status::InvalidArgument("no interactions at or above min_rating");
  }

  // 2. Iterative k-core: drop users/items with fewer than k interactions
  //    until the bipartite graph is stable.
  bool changed = true;
  while (changed && !kept.empty()) {
    changed = false;
    std::unordered_map<std::string, int32_t> user_count;
    std::unordered_map<std::string, int32_t> item_count;
    for (const RawInteraction& r : kept) {
      ++user_count[r.user];
      ++item_count[r.item];
    }
    std::vector<RawInteraction> next;
    next.reserve(kept.size());
    for (RawInteraction& r : kept) {
      if (user_count[r.user] >= options.k_core &&
          item_count[r.item] >= options.k_core) {
        next.push_back(std::move(r));
      } else {
        changed = true;
      }
    }
    kept = std::move(next);
  }
  if (kept.empty()) {
    return Status::InvalidArgument(
        StrCat("k-core filter (k=", options.k_core,
               ") removed every interaction"));
  }

  // 3. Densify item ids (1-based; 0 stays the padding item) and group by
  //    user.
  std::unordered_map<std::string, int32_t> item_ids;
  for (const RawInteraction& r : kept) {
    item_ids.emplace(r.item, static_cast<int32_t>(item_ids.size()) + 1);
  }
  std::unordered_map<std::string,
                     std::vector<std::pair<int64_t, int32_t>>>
      by_user;
  for (const RawInteraction& r : kept) {
    by_user[r.user].emplace_back(r.timestamp, item_ids.at(r.item));
  }

  // 4. Chronological sort per user (stable on timestamp ties via item id
  //    for determinism), then emit.  User order is sorted by external id so
  //    the result does not depend on hash-map iteration order.
  SequenceDataset dataset(static_cast<int32_t>(item_ids.size()));
  std::vector<std::string> users;
  users.reserve(by_user.size());
  for (const auto& [user, _] : by_user) users.push_back(user);
  std::sort(users.begin(), users.end());
  for (const std::string& user : users) {
    auto& events = by_user[user];
    std::sort(events.begin(), events.end());
    std::vector<int32_t> seq;
    seq.reserve(events.size());
    for (const auto& [ts, item] : events) seq.push_back(item);
    dataset.AddUser(std::move(seq));
  }
  return dataset;
}

Result<SequenceDataset> LoadRatingsFile(const std::string& path,
                                        const std::string& format,
                                        const PreprocessOptions& options) {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::NotFound(StrCat("cannot open ", path));
  }
  Result<std::vector<RawInteraction>> parsed =
      format == "movielens"    ? ParseMovieLensRatings(in, path)
      : format == "amazon-csv" ? ParseAmazonRatingsCsv(in, path)
                               : Result<std::vector<RawInteraction>>(
                                     Status::InvalidArgument(
                                         StrCat("unknown format ", format)));
  if (!parsed.ok()) return parsed.status();
  return Preprocess(std::move(parsed).value(), options);
}

}  // namespace data
}  // namespace vsan
